# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-json fmt vet lint-doc short ci smoke-tcp smoke-serve smoke-loadgen smoke-chaos api api-check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Suite under the race detector — the concurrent runtime's gate. -short
# skips the long-running cases so the race job fits the CI time budget;
# the full suite still runs race-free in the `test` step.
race:
	$(GO) test -race -short ./...

# One-iteration bench smoke: every benchmark must still run, not be fast.
# Mirrored by the bench-smoke CI job.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

bench: bench-smoke

# Perf trajectory snapshot: the seq-vs-parallel sweep benchmarks, the
# dense-vs-CSR storage backend benchmarks, the mem-vs-TCP-loopback
# transport benchmarks (ns/op, B/op, wire_bytes), the job-engine
# throughput benchmarks (jobs/sec at 1/4/16 concurrent sessions, both
# transports), the mid-run cancellation-latency benchmarks (cancel-ns:
# Cancel landing on a running job → engine idle again, mem vs TCP) and
# the incremental-maintenance benchmarks (AppendThenQuery: warm re-query
# after a ≤1% append vs cold full re-install, delta_rows/warm_hit
# metrics, mem vs TCP), plus the session-setup benchmarks (SessionSetup:
# the fixed bind/end handshake cost a session-pool hit skips, mem vs
# TCP) and the failover-latency benchmarks (Failover: worker lost
# mid-job → detected → share re-placed → job done, failover-ns, mem vs
# TCP loopback), rendered as JSON records (op, iterations, ns/op, B/op,
# custom metrics) for machine comparison across PRs.
# Staged through temp files so a failing bench run (or an empty
# measurement set, which dlra-benchjson rejects) fails the target without
# truncating an existing BENCH_JSON snapshot.
BENCH_JSON ?= BENCH_pr10.json
bench-json:
	$(GO) test -run=NONE -bench='PanelSweepWorkers|ZEstimatorWorkers|DenseVsCSR|Transport|JobsThroughput|CancelLatency|FrameEncodeDecode|AppendThenQuery|SessionSetup|Failover' \
		-benchmem -benchtime=3x . ./internal/comm > $(BENCH_JSON).txt || { rm -f $(BENCH_JSON).txt; exit 1; }
	$(GO) run ./cmd/dlra-benchjson < $(BENCH_JSON).txt > $(BENCH_JSON).tmp || \
		{ rm -f $(BENCH_JSON).txt $(BENCH_JSON).tmp; exit 1; }
	@rm -f $(BENCH_JSON).txt
	mv $(BENCH_JSON).tmp $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# Multi-process smoke: a coordinator plus two external dlra-worker
# processes over loopback TCP run a small sweep end to end — the wire
# protocol (handshake, share installation, op execution, shutdown) as a
# real deployment uses it. SMOKE_BATCH tunes wire batching on both sides
# (0 = unlimited coalescing, 1 = off, k = flush every k frames); the CI
# tcp-smoke matrix runs 1, 8 and 0 — results must be identical at all
# three by the transcript determinism contract.
SMOKE_DIR ?= /tmp/dlra-smoke
SMOKE_ADDR ?= 127.0.0.1:7791
SMOKE_BATCH ?= 0
smoke-tcp:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) build -o $(SMOKE_DIR)/dlra-pca ./cmd/dlra-pca
	$(GO) build -o $(SMOKE_DIR)/dlra-worker ./cmd/dlra-worker
	$(GO) build -o $(SMOKE_DIR)/dlra-datagen ./cmd/dlra-datagen
	$(SMOKE_DIR)/dlra-datagen -dataset forestcover -scale small -output $(SMOKE_DIR)/fc.bin
	$(SMOKE_DIR)/dlra-worker -join $(SMOKE_ADDR) -batch $(SMOKE_BATCH) & \
	$(SMOKE_DIR)/dlra-worker -join $(SMOKE_ADDR) -batch $(SMOKE_BATCH) & \
	$(SMOKE_DIR)/dlra-pca -input $(SMOKE_DIR)/fc.bin -k 5 -servers 3 -seed 7 \
		-transport tcp -tcp-listen $(SMOKE_ADDR) -tcp-spawn=false -batch $(SMOKE_BATCH) \
		-sweep-rows 16,32 && wait
	$(SMOKE_DIR)/dlra-worker -join $(SMOKE_ADDR) -batch $(SMOKE_BATCH) & \
	$(SMOKE_DIR)/dlra-worker -join $(SMOKE_ADDR) -batch $(SMOKE_BATCH) & \
	$(SMOKE_DIR)/dlra-pca -input $(SMOKE_DIR)/fc.bin -k 5 -servers 3 -seed 7 \
		-transport tcp -tcp-listen $(SMOKE_ADDR) -tcp-spawn=false -batch $(SMOKE_BATCH) \
		-rows 16 -append-sweep 8,8 && wait

# Job-engine deployment smoke: dlra-serve as a real HTTP service over a
# loopback TCP cluster (coordinator + 2 spawned worker processes), driven
# through its own HTTP API: 3 concurrent job submissions, polled to
# completion, every result asserted. Mirrored by the serve-smoke CI job.
SERVE_DIR ?= /tmp/dlra-serve-smoke
smoke-serve:
	rm -rf $(SERVE_DIR) && mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/dlra-serve ./cmd/dlra-serve
	$(GO) build -o $(SERVE_DIR)/dlra-datagen ./cmd/dlra-datagen
	$(SERVE_DIR)/dlra-datagen -dataset forestcover -scale small -output $(SERVE_DIR)/fc.bin
	$(SERVE_DIR)/dlra-serve -input $(SERVE_DIR)/fc.bin -servers 3 -transport tcp \
		-addr 127.0.0.1:0 -smoke 3

# Load-generator smoke: dlra-serve over a loopback TCP cluster in the
# background, dlra-loadgen driving it closed- then open-loop at low rate.
# The assertions live in loadgen itself: it exits nonzero when any job
# errors, fewer than -min-completed jobs finish, or the written benchjson
# report fails its read-back round-trip — so a green target means the
# serve tier completed real load and produced a well-formed histogram
# report. Mirrored by the loadgen-smoke CI job.
LOADGEN_DIR ?= /tmp/dlra-loadgen-smoke
LOADGEN_ADDR ?= 127.0.0.1:7793
smoke-loadgen:
	rm -rf $(LOADGEN_DIR) && mkdir -p $(LOADGEN_DIR)
	$(GO) build -o $(LOADGEN_DIR)/dlra-serve ./cmd/dlra-serve
	$(GO) build -o $(LOADGEN_DIR)/dlra-loadgen ./cmd/dlra-loadgen
	$(GO) build -o $(LOADGEN_DIR)/dlra-datagen ./cmd/dlra-datagen
	$(LOADGEN_DIR)/dlra-datagen -dataset forestcover -scale small -output $(LOADGEN_DIR)/fc.bin
	$(LOADGEN_DIR)/dlra-serve -input $(LOADGEN_DIR)/fc.bin -servers 3 -transport tcp \
		-addr $(LOADGEN_ADDR) & echo $$! > $(LOADGEN_DIR)/serve.pid; \
	status=0; \
	$(LOADGEN_DIR)/dlra-loadgen -base http://$(LOADGEN_ADDR) -mode both -conc 4 -jobs 24 \
		-qps 8 -duration 3s -min-completed 24 -json $(LOADGEN_DIR)/loadgen.json || status=$$?; \
	kill $$(cat $(LOADGEN_DIR)/serve.pid) 2>/dev/null; wait; exit $$status

# Failover chaos smoke: the same job batch runs twice on a real
# multi-process cluster (coordinator + 3 external dlra-worker processes
# over loopback TCP). The first leg runs undisturbed. In the second leg
# one worker is killed mid-batch; the failure detector declares its slot
# dead, a hot-spare dlra-worker in -rejoin mode takes the vacated slot,
# the registry re-feeds its share, and every job still completes. The
# gate diffs the per-job tables (words, bytes, sampled rows, projection
# fingerprint) — a failover must be invisible in the transcript — and
# requires the chaos leg to report at least one failover so the target
# fails loudly if the kill landed after the batch already finished.
CHAOS_DIR ?= /tmp/dlra-chaos-smoke
CHAOS_ADDR ?= 127.0.0.1:7795
CHAOS_KILL_AFTER ?= 1
CHAOS_FLAGS = -input $(CHAOS_DIR)/fc.bin -k 5 -servers 4 -seed 7 -rows 48 -boost 12 \
	-transport tcp -tcp-listen $(CHAOS_ADDR) -tcp-spawn=false -jobs 32 -job-concurrency 2
smoke-chaos:
	rm -rf $(CHAOS_DIR) && mkdir -p $(CHAOS_DIR)
	$(GO) build -o $(CHAOS_DIR)/dlra-pca ./cmd/dlra-pca
	$(GO) build -o $(CHAOS_DIR)/dlra-worker ./cmd/dlra-worker
	$(GO) build -o $(CHAOS_DIR)/dlra-datagen ./cmd/dlra-datagen
	$(CHAOS_DIR)/dlra-datagen -dataset forestcover -scale small -output $(CHAOS_DIR)/fc.bin
	$(CHAOS_DIR)/dlra-worker -join $(CHAOS_ADDR) & \
	$(CHAOS_DIR)/dlra-worker -join $(CHAOS_ADDR) & \
	$(CHAOS_DIR)/dlra-worker -join $(CHAOS_ADDR) & \
	$(CHAOS_DIR)/dlra-pca $(CHAOS_FLAGS) > $(CHAOS_DIR)/baseline.txt && wait
	$(CHAOS_DIR)/dlra-worker -join $(CHAOS_ADDR) & \
	$(CHAOS_DIR)/dlra-worker -join $(CHAOS_ADDR) & echo $$! > $(CHAOS_DIR)/victim.pid; \
	$(CHAOS_DIR)/dlra-worker -join $(CHAOS_ADDR) & \
	( sleep $(CHAOS_KILL_AFTER); kill $$(cat $(CHAOS_DIR)/victim.pid); \
	  exec $(CHAOS_DIR)/dlra-worker -rejoin -join $(CHAOS_ADDR) -wait 60s ) & \
	$(CHAOS_DIR)/dlra-pca $(CHAOS_FLAGS) > $(CHAOS_DIR)/chaos.txt && wait
	grep -E '^  [0-9]+ ' $(CHAOS_DIR)/baseline.txt > $(CHAOS_DIR)/baseline.jobs
	grep -E '^  [0-9]+ ' $(CHAOS_DIR)/chaos.txt > $(CHAOS_DIR)/chaos.jobs
	diff -u $(CHAOS_DIR)/baseline.jobs $(CHAOS_DIR)/chaos.jobs
	grep -E '^failovers +: [1-9]' $(CHAOS_DIR)/chaos.txt

# Fails (exit 1) when any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Documentation gate: every exported declaration of the public package —
# everything API.txt lists — must carry a doc comment. dlra-lintdoc prints
# one file:line diagnostic per violation.
lint-doc:
	$(GO) run ./cmd/dlra-lintdoc .

# Regenerate the committed public-API report (API.txt): one sorted line
# per exported declaration of the root package.
api:
	$(GO) run ./cmd/dlra-apireport > API.txt

# apidiff-style gate: fail when the public API drifted from the committed
# report, so every surface change is an explicit, reviewable API.txt hunk.
api-check:
	@$(GO) run ./cmd/dlra-apireport | diff -u API.txt - \
		|| { echo "public API drifted from API.txt — review the diff and run 'make api'"; exit 1; }

# Developer loop: the suite with the long-running cases skipped (~10s).
short:
	$(GO) test -short ./...

ci: fmt vet lint-doc api-check build test race bench-smoke
