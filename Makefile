# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` means a green CI run.

GO ?= go

.PHONY: all build test race bench fmt vet short ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector — the concurrent runtime's gate.
race:
	$(GO) test -race ./...

# One-iteration bench smoke: every benchmark must still run, not be fast.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Fails (exit 1) when any file needs gofmt.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Developer loop: the suite with the long-running cases skipped (~10s).
short:
	$(GO) test -short ./...

ci: fmt vet build race bench
