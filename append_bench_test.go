package repro

// Incremental-maintenance benchmarks: the cost of answering a query after
// a small append (≤ 1% of the dataset) on a warm cluster — delta shipped,
// warm sketches folded forward — against the cold alternative of
// re-installing the full grown matrix and rebuilding every sketch from row
// zero. BENCH_pr8.json records both paths per transport:
//
//	ns/op        — wall time per append+query (warm) / install+query (cold)
//	delta_rows   — rows moved per op (the appended batch vs the full height)
//	delta_words  — words charged under the delta tag per op (warm only)
//	warm_hit     — warm store serves answered from cache per op
//	folded_rows  — rows ingested via the fold-forward path per op
//
// Regenerate with: make bench-json

import (
	"context"
	"fmt"
	"testing"
	"time"
)

const (
	appendBenchN     = 9216 // installed height: ingestion-dominated regime
	appendBenchD     = 24
	appendBenchS     = 6
	appendBenchDelta = 16 // ≈ 0.2% of the installed height
	// appendBenchBudget fixes the sampler's sketch budget independently of
	// the installed height: sketch geometry (and with it the per-query
	// estimation cost both paths share) stays constant, so the two paths
	// differ only in ingestion — exactly the work incremental maintenance
	// claims to save.
	appendBenchBudget = 3072 * 24
)

// benchAppendOpts pins the sampler budget so the z-sampler parameter
// ladder — and with it the warm sketch keys — stays put while the dataset
// grows across iterations.
func benchAppendOpts(dataset string) Options {
	return Options{K: 3, Rows: 8, Seed: 4242, Dataset: dataset,
		SamplerBudget: appendBenchBudget}
}

// benchmarkAppendThenQuery runs the warm and cold variants on clusters
// from the same factory. Huber selects the z-sampler (the sketch-heavy
// protocol), so the warm store has real ingestion work to save.
func benchmarkAppendThenQuery(b *testing.B, newCluster func(b *testing.B) *Cluster) {
	base := benchShares(appendBenchN, appendBenchD, appendBenchS, 21)
	delta := rowsOf(benchShares(appendBenchDelta, appendBenchD, appendBenchS, 22), 0, appendBenchDelta)

	b.Run("warm", func(b *testing.B) {
		c := newCluster(b)
		defer c.Close()
		if err := c.InstallDataset(context.Background(), "warm", rowsOf(base, 0, appendBenchN)); err != nil {
			b.Fatal(err)
		}
		opts := benchAppendOpts("warm")
		if _, err := c.PCA(context.Background(), Huber(1.5), opts); err != nil {
			b.Fatal(err)
		}
		ws0, err := c.WarmStats("warm")
		if err != nil {
			b.Fatal(err)
		}
		dw0 := c.Breakdown()["delta/append"]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.AppendRows(context.Background(), "warm", delta); err != nil {
				b.Fatal(err)
			}
			if _, err := c.PCA(context.Background(), Huber(1.5), opts); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ws, err := c.WarmStats("warm")
		if err != nil {
			b.Fatal(err)
		}
		n := float64(b.N)
		b.ReportMetric(appendBenchDelta, "delta_rows")
		b.ReportMetric(float64(c.Breakdown()["delta/append"]-dw0)/n, "delta_words")
		b.ReportMetric(float64(ws.Hits-ws0.Hits)/n, "warm_hit")
		b.ReportMetric(float64(ws.FoldedRows-ws0.FoldedRows)/n, "folded_rows")
	})

	b.Run("cold", func(b *testing.B) {
		c := newCluster(b)
		defer c.Close()
		// The cold path answers the same logical question — "query the
		// grown matrix" — by installing all appendBenchN+delta rows fresh
		// (a new dataset id per iteration defeats the share cache) and
		// letting the sketches rebuild from row zero.
		grown := make([]*Matrix, appendBenchS)
		for t := range grown {
			nm, err := matrixAppendRef(base[t], delta[t])
			if err != nil {
				b.Fatal(err)
			}
			grown[t] = nm
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := fmt.Sprintf("cold-%d", i)
			if err := c.InstallDataset(context.Background(), id, rowsOf(grown, 0, appendBenchN+appendBenchDelta)); err != nil {
				b.Fatal(err)
			}
			if _, err := c.PCA(context.Background(), Huber(1.5), benchAppendOpts(id)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(appendBenchN+appendBenchDelta, "delta_rows")
		b.ReportMetric(0, "warm_hit")
	})
}

// matrixAppendRef stacks delta below m without going through the cluster.
func matrixAppendRef(m *Matrix, delta Mat) (*Matrix, error) {
	out := NewMatrix(m.Rows()+delta.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		out.SetRow(i, m.Row(i))
	}
	row := make([]float64, m.Cols())
	for i := 0; i < delta.Rows(); i++ {
		for j := range row {
			row[j] = 0
		}
		delta.RowNNZ(i, func(j int, v float64) { row[j] = v })
		out.SetRow(m.Rows()+i, row)
	}
	return out, nil
}

func BenchmarkAppendThenQueryMem(b *testing.B) {
	benchmarkAppendThenQuery(b, func(b *testing.B) *Cluster {
		c, err := NewCluster(appendBenchS)
		if err != nil {
			b.Fatal(err)
		}
		return c
	})
}

func BenchmarkAppendThenQueryTCP(b *testing.B) {
	benchmarkAppendThenQuery(b, func(b *testing.B) *Cluster {
		c, err := ListenCluster(appendBenchS, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		for i := 1; i < appendBenchS; i++ {
			go func() {
				if err := JoinWorker(testCtx(time.Minute), c.Addr()); err != nil {
					b.Errorf("worker: %v", err)
				}
			}()
		}
		if err := c.AwaitWorkers(testCtx(time.Minute)); err != nil {
			b.Fatal(err)
		}
		return c
	})
}
