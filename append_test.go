package repro

// Incremental-maintenance gates for the streaming API: a query issued
// after any number of AppendRows deltas must be indistinguishable — words,
// bytes, per-tag ledger, sampled rows and projection, bit for bit — from
// the same query after a one-shot install of the final matrix, on both
// transports, at every batch size and under every storage backend. Plus
// the fingerprint-chaining cache contract, the update fold's mem/TCP
// agreement, the delta API's error surface, and the pool-balance audit of
// an append-heavy run.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/comm"
)

// rowsOf copies rows [lo,hi) of every share in a roster — the prefix and
// delta slices the streaming tests install and append.
func rowsOf(shares []*Matrix, lo, hi int) []Mat {
	out := make([]Mat, len(shares))
	for t, m := range shares {
		w := NewMatrix(hi-lo, m.Cols())
		for i := lo; i < hi; i++ {
			w.SetRow(i-lo, m.Row(i))
		}
		out[t] = w
	}
	return out
}

// mustMatchFingerprint asserts two job fingerprints are bit-identical in
// every observable the determinism contract names.
func mustMatchFingerprint(t *testing.T, want, got jobFingerprint, label string) {
	t.Helper()
	if want.words != got.words || want.bytes != got.bytes {
		t.Fatalf("%s: ledger drifted: want %d words/%d bytes, got %d/%d",
			label, want.words, want.bytes, got.words, got.bytes)
	}
	for tag, w := range want.tags {
		if got.tags[tag] != w {
			t.Fatalf("%s: per-tag words drifted at %q: want %d, got %d", label, tag, w, got.tags[tag])
		}
	}
	if len(want.tags) != len(got.tags) {
		t.Fatalf("%s: tag sets differ: want %v, got %v", label, want.tags, got.tags)
	}
	for i := range want.rows {
		if want.rows[i] != got.rows[i] {
			t.Fatalf("%s: sampled rows drifted", label)
		}
	}
	if !want.proj.Equalf(got.proj, 0) {
		t.Fatalf("%s: projection drifted", label)
	}
}

// appendDeterminismGate is the tentpole acceptance gate: install a prefix,
// run a warm-up query (so the appended rows later go through the warm fold
// path, not a cold rebuild), append several delta batches querying after
// each, and require the final query to match the same query on a fresh
// cluster holding the one-shot install of the final matrix.
func appendDeterminismGate(t *testing.T, newCluster func(t *testing.T) *Cluster, opts Options) {
	t.Helper()
	const s, d, n0 = 3, 7, 48
	batches := []int{5, 1, 10}
	n := n0
	for _, b := range batches {
		n += b
	}
	full := jobShares(91, n, d, s)
	// Pin the sampler budget so the z-sampler parameter ladder — and with
	// it the warm sketch keys — is identical at the prefix and final
	// heights; without the pin the warm-up entries would simply miss.
	opts.SamplerBudget = int64(n * d)

	ref := newCluster(t)
	defer ref.Close()
	if err := ref.InstallDataset(context.Background(), "stream", rowsOf(full, 0, n)); err != nil {
		t.Fatal(err)
	}
	wantRes, err := ref.PCA(testCtx(time.Minute), Huber(1.5), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintResult(wantRes)

	str := newCluster(t)
	defer str.Close()
	if err := str.InstallDataset(context.Background(), "stream", rowsOf(full, 0, n0)); err != nil {
		t.Fatal(err)
	}
	if _, err := str.PCA(testCtx(time.Minute), Huber(1.5), opts); err != nil {
		t.Fatal(err)
	}
	off := n0
	var gotRes *Result
	for _, b := range batches {
		if err := str.AppendRows(context.Background(), "stream", rowsOf(full, off, off+b)); err != nil {
			t.Fatal(err)
		}
		off += b
		gotRes, err = str.PCA(testCtx(time.Minute), Huber(1.5), opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	mustMatchFingerprint(t, want, fingerprintResult(gotRes), "append vs one-shot")

	// The equality must have come from warm serving, not silent cold
	// rebuilds: the hosted stores must report fold-forward activity.
	ws, err := str.WarmStats("stream")
	if err != nil {
		t.Fatal(err)
	}
	if ws.Hits == 0 || ws.FoldedRows == 0 {
		t.Fatalf("streaming queries never served warm: %+v", ws)
	}
	// And the delta traffic must be visible on the cluster ledger under its
	// own tag, proportional to delta rows only.
	if got := str.Breakdown()["delta/append"]; got <= 0 || got >= int64(n*d) {
		t.Fatalf("delta/append charged %d words, want in (0, %d)", got, n*d)
	}
}

// TestAppendDeterminismGateMem runs the gate on in-process clusters under
// every storage backend (per-run conversion covers dense, CSR and fast).
func TestAppendDeterminismGateMem(t *testing.T) {
	for _, bk := range []struct {
		name string
		b    Backend
	}{{"auto", BackendAuto}, {"dense", BackendDense}, {"csr", BackendCSR}, {"fast", BackendFast}} {
		t.Run(bk.name, func(t *testing.T) {
			appendDeterminismGate(t, func(t *testing.T) *Cluster {
				return mustCluster(t, 3)
			}, Options{K: 3, Rows: 12, Seed: 777, Backend: bk.b})
		})
	}
}

// TestAppendDeterminismGateTCP runs the gate over real TCP worker fleets
// at the three canonical wire batch sizes (1 = batching off, 8 = flush
// every 8 frames, 0 = unbounded coalescing).
func TestAppendDeterminismGateTCP(t *testing.T) {
	for _, batch := range []int{1, 8, 0} {
		t.Run(map[int]string{1: "batch1", 8: "batch8", 0: "batch0"}[batch], func(t *testing.T) {
			appendDeterminismGate(t, func(t *testing.T) *Cluster {
				return tcpCluster(t, 3)
			}, Options{K: 3, Rows: 12, Seed: 777, BatchSize: batch})
		})
	}
}

// TestFingerprintChaining is the registry cache contract: after appends,
// re-installing the dataset's final matrix under the same id must be
// recognized as already resident — nil error, zero additional install
// frames — because the chained fingerprint equals the from-scratch
// fingerprint of the final content. Listings must report the chained
// fingerprint and the current (grown) row count.
func TestFingerprintChaining(t *testing.T) {
	const s, d, n0, n = 3, 6, 56, 64
	full := jobShares(97, n, d, s)

	c := tcpCluster(t, s)
	defer c.Close()
	if err := c.InstallDataset(context.Background(), "chain", rowsOf(full, 0, n0)); err != nil {
		t.Fatal(err)
	}
	frames := c.coord.InstallFrames()
	if frames == 0 {
		t.Fatal("prefix install moved no frames")
	}
	if err := c.AppendRows(context.Background(), "chain", rowsOf(full, n0, n0+4)); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows(context.Background(), "chain", rowsOf(full, n0+4, n)); err != nil {
		t.Fatal(err)
	}

	infos := c.Datasets()
	if len(infos) != 1 {
		t.Fatalf("dataset listing wrong: %+v", infos)
	}
	info := infos[0]
	if info.Rows != n || info.AppendedRows != n-n0 {
		t.Fatalf("listing reports %d rows (%d appended), want %d (%d)", info.Rows, info.AppendedRows, n, n-n0)
	}
	if info.Fingerprint == 0 || info.LastAppend.IsZero() {
		t.Fatalf("listing missing delta metadata: %+v", info)
	}

	// Cache hit: the one-shot final matrix has the chained fingerprint.
	if err := c.InstallDataset(context.Background(), "chain", rowsOf(full, 0, n)); err != nil {
		t.Fatalf("re-install of appended dataset's final matrix: %v", err)
	}
	if got := c.coord.InstallFrames(); got != frames {
		t.Fatalf("re-install moved %d install frames, want 0 — fingerprint chain broken", got-frames)
	}
	// Content-addressing sanity: a fresh cluster installing the same final
	// matrix from scratch derives the identical fingerprint.
	m := mustCluster(t, s)
	defer m.Close()
	if err := m.InstallDataset(context.Background(), "chain", rowsOf(full, 0, n)); err != nil {
		t.Fatal(err)
	}
	if got := m.Datasets()[0].Fingerprint; got != info.Fingerprint {
		t.Fatalf("chained fingerprint %#x != from-scratch fingerprint %#x", info.Fingerprint, got)
	}
	// Different content under the same id must still conflict.
	if err := c.InstallDataset(context.Background(), "chain", rowsOf(full, 0, n0)); !errors.Is(err, ErrDatasetConflict) {
		t.Fatalf("conflicting reinstall after appends: %v", err)
	}
}

// TestUpdateRowsMemTCPAgree: after the same UpdateRows delta, a mem
// cluster and a TCP cluster must produce bit-identical query transcripts
// (both fold the identical chunked delta sequence into their warm
// sketches), and re-installing the updated content must hit the cache via
// the rechained fingerprint.
func TestUpdateRowsMemTCPAgree(t *testing.T) {
	const s, d, n = 3, 6, 60
	full := jobShares(98, n, d, s)
	repl := jobShares(99, 4, d, s)
	idx := []int{0, 7, 7, 59} // duplicate index: last-wins on every path
	opts := Options{K: 3, Rows: 12, Seed: 321, SamplerBudget: int64(n * d)}

	run := func(c *Cluster) jobFingerprint {
		t.Helper()
		if err := c.InstallDataset(context.Background(), "upd", rowsOf(full, 0, n)); err != nil {
			t.Fatal(err)
		}
		// Warm-up so the update exercises the eager fold, not a cold build.
		if _, err := c.PCA(testCtx(time.Minute), Huber(1.5), opts); err != nil {
			t.Fatal(err)
		}
		if err := c.UpdateRows(context.Background(), "upd", idx, rowsOf(repl, 0, len(idx))); err != nil {
			t.Fatal(err)
		}
		res, err := c.PCA(testCtx(time.Minute), Huber(1.5), opts)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintResult(res)
	}

	mem := mustCluster(t, s)
	defer mem.Close()
	want := run(mem)

	tc := tcpCluster(t, s)
	defer tc.Close()
	got := run(tc)
	mustMatchFingerprint(t, want, got, "update mem vs TCP")

	// The update must have been charged under its own tag on both fabrics,
	// identically.
	mw, tw := mem.Breakdown()["delta/update"], tc.Breakdown()["delta/update"]
	if mw <= 0 || mw != tw {
		t.Fatalf("delta/update charged %d words on mem, %d on TCP", mw, tw)
	}

	// Rechained fingerprint: the updated content re-installs as a cache hit.
	frames := tc.coord.InstallFrames()
	final := make([]Mat, s)
	for t2 := 0; t2 < s; t2++ {
		nm, err := matrixUpdateRef(full[t2], idx, repl[t2])
		if err != nil {
			t.Fatal(err)
		}
		final[t2] = nm
	}
	if err := tc.InstallDataset(context.Background(), "upd", final); err != nil {
		t.Fatalf("re-install of updated dataset's final matrix: %v", err)
	}
	if got := tc.coord.InstallFrames(); got != frames {
		t.Fatalf("re-install after update moved %d frames, want 0", got-frames)
	}
}

// matrixUpdateRef builds the expected post-update share without going
// through the cluster: a dense copy with idx-selected rows overwritten,
// duplicates last-wins.
func matrixUpdateRef(m *Matrix, idx []int, repl *Matrix) (Mat, error) {
	out := NewMatrix(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		out.SetRow(i, m.Row(i))
	}
	for k, i := range idx {
		if i < 0 || i >= m.Rows() {
			return nil, errors.New("index out of range")
		}
		out.SetRow(i, repl.Row(k))
	}
	return out, nil
}

// TestDeltaAPIErrors pins the delta entry points' error surface: every
// malformed request is refused with a typed error before anything ships,
// leaving the dataset untouched.
func TestDeltaAPIErrors(t *testing.T) {
	const s, d, n = 2, 5, 20
	full := jobShares(41, n+4, d, s)
	c := mustCluster(t, s)
	defer c.Close()
	if err := c.InstallDataset(context.Background(), "base", rowsOf(full, 0, n)); err != nil {
		t.Fatal(err)
	}
	delta := rowsOf(full, n, n+2)

	if err := c.AppendRows(context.Background(), "ghost", delta); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("append to unknown dataset: %v", err)
	}
	if err := c.AppendRows(context.Background(), "base", delta[:1]); err == nil {
		t.Fatal("wrong delta share count accepted")
	}
	if err := c.AppendRows(context.Background(), "base", []Mat{delta[0], nil}); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("nil delta share: %v", err)
	}
	if err := c.AppendRows(context.Background(), "base", []Mat{NewMatrix(2, d), NewMatrix(3, d)}); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("ragged delta roster: %v", err)
	}
	if err := c.AppendRows(context.Background(), "base", []Mat{NewMatrix(2, d+1), NewMatrix(2, d+1)}); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("column-count mismatch: %v", err)
	}
	if err := c.UpdateRows(context.Background(), "base", []int{0}, delta); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("row/index count mismatch: %v", err)
	}
	if err := c.UpdateRows(context.Background(), "base", []int{n}, rowsOf(full, n, n+1)); err == nil {
		t.Fatal("out-of-range update index accepted")
	}
	// A canceled ctx aborts the delta before publication: the listing keeps
	// the old row count.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.AppendRows(canceled, "base", delta); !errors.Is(err, context.Canceled) {
		t.Fatalf("append under canceled ctx: %v", err)
	}
	if got := c.Datasets()[0].Rows; got != n {
		t.Fatalf("aborted append changed row count to %d", got)
	}
	// Zero-row deltas are complete no-ops.
	if err := c.AppendRows(context.Background(), "base", rowsOf(full, n, n)); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateRows(context.Background(), "base", nil, rowsOf(full, n, n)); err != nil {
		t.Fatal(err)
	}
	if info := c.Datasets()[0]; info.Rows != n || info.AppendedRows != 0 {
		t.Fatalf("zero-row delta perturbed the dataset: %+v", info)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows(context.Background(), "base", delta); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := c.WarmStats("base"); !errors.Is(err, ErrClosed) {
		t.Fatalf("WarmStats after close: %v", err)
	}
}

// TestPoolAccountingAppend mirrors the cancel-path pool audit for the
// delta paths: after an append-heavy run — interleaved appends and warm
// queries, a delta aborted mid-append by ctx cancellation, and a job
// canceled mid-run on the appended dataset — every pooled frame buffer the
// fabric handed out must come back.
func TestPoolAccountingAppend(t *testing.T) {
	gets0, puts0 := comm.PoolStats()
	func() {
		const s, d, n0, n = 3, 8, 40, 80
		full := jobShares(42, n+16, d, s)
		c := tcpCluster(t, s)
		defer c.Close()
		if err := c.InstallDataset(context.Background(), "pool", rowsOf(full, 0, n0)); err != nil {
			t.Fatal(err)
		}
		opts := Options{K: 3, Rows: 12, Seed: 99, SamplerBudget: int64(n * d)}
		if _, err := c.PCA(testCtx(time.Minute), Huber(1.5), opts); err != nil {
			t.Fatal(err)
		}
		for off := n0; off < n; off += 10 {
			if err := c.AppendRows(context.Background(), "pool", rowsOf(full, off, off+10)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.PCA(testCtx(time.Minute), Huber(1.5), opts); err != nil {
				t.Fatal(err)
			}
		}
		// Abort one delta mid-flight.
		canceled, cancel := context.WithCancel(context.Background())
		cancel()
		if err := c.AppendRows(canceled, "pool", rowsOf(full, n, n+16)); !errors.Is(err, context.Canceled) {
			t.Fatalf("append under canceled ctx: %v", err)
		}
		// And cancel a job mid-run against the appended dataset.
		j := submitCancelAt(t, c, 3)
		assertCanceled(t, j)
	}()

	deadline := time.After(10 * time.Second)
	for {
		gets, puts := comm.PoolStats()
		dg, dp := gets-gets0, puts-puts0
		if dg == dp {
			if dg == 0 {
				t.Fatal("scenario moved no pooled buffers — the audit measured nothing")
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("pool unbalanced after teardown: %d gets vs %d puts (leak of %d buffers)", dg, dp, dg-dp)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
