package repro

// Public-API surface of the batching knob: Options.BatchSize /
// WithBatchSize tune wire framing only, so for a fixed seed the job's
// entire fingerprint (word and byte ledgers, per-tag breakdown, sampled
// rows, projection) must be identical to the in-memory run at every
// batch size, including 1 (off).

import (
	"context"
	"reflect"
	"testing"
)

func TestJobBatchSizeSweep(t *testing.T) {
	shares := jobShares(55, 80, 9, 3)
	probe := Options{K: 3, Rows: 16, Seed: 321}

	mem, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if err := mem.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	wantRes, err := mem.PCA(context.Background(), Identity(), probe)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintResult(wantRes)

	for _, batch := range []int{1, 8, 0} {
		c := tcpCluster(t, 3)
		if err := c.SetLocalData(shares); err != nil {
			t.Fatal(err)
		}
		opts := probe
		opts.BatchSize = batch
		gotRes, err := c.PCA(context.Background(), Identity(), opts)
		c.Close()
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		got := fingerprintResult(gotRes)
		if want.words != got.words || want.bytes != got.bytes {
			t.Fatalf("batch=%d: ledger drifted: mem %d words/%d bytes, tcp %d/%d",
				batch, want.words, want.bytes, got.words, got.bytes)
		}
		if !reflect.DeepEqual(want.tags, got.tags) {
			t.Fatalf("batch=%d: per-tag words drifted:\nmem %v\ntcp %v", batch, want.tags, got.tags)
		}
		if !reflect.DeepEqual(want.rows, got.rows) {
			t.Fatalf("batch=%d: sampled rows drifted: mem %v, tcp %v", batch, want.rows, got.rows)
		}
		if !want.proj.Equalf(got.proj, 0) {
			t.Fatalf("batch=%d: projection drifted", batch)
		}
	}
}

// TestWithBatchSizeOption checks the functional option lands on Options.
func TestWithBatchSizeOption(t *testing.T) {
	var o Options
	WithBatchSize(8).apply(&o)
	if o.BatchSize != 8 {
		t.Fatalf("WithBatchSize(8) set %d", o.BatchSize)
	}
}
