package repro

// Benchmark harness for the paper's evaluation: one benchmark per figure
// panel (Figures 1 and 2 share panels — both errors are computed in one
// pass and reported as custom metrics), plus the ablation benchmarks
// DESIGN.md calls out and microbenchmarks of the substrates.
//
// Each panel benchmark runs the full distributed pipeline at Small scale
// with the paper's middle communication ratio and reports:
//
//	additive/err   — Figure 1's y-axis value at k=6
//	relative/err   — Figure 2's y-axis value at k=6
//	words/run      — measured communication
//
// Regenerate the complete sweep (all ratios, k = 3…15, Medium scale) with:
//
//	go run ./cmd/dlra-experiments

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/fn"
	"repro/internal/hashing"
	"repro/internal/hh"
	"repro/internal/linearbaseline"
	"repro/internal/matrix"
	"repro/internal/robust"
	"repro/internal/samplers"
	"repro/internal/sketch"
	"repro/internal/zsampler"
)

// benchPanel runs one figure panel end to end and reports the paper's
// metrics for k = 6 at the given ratio.
func benchPanel(b *testing.B, name string, ratio float64) {
	b.Helper()
	su := experiments.Suite{Scale: dataset.Small, Seed: 2016, Runs: 1, Ks: []int{6}}
	cfg, err := experiments.PanelByName(su, name)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Ratios = []float64{ratio}
	var last *experiments.Panel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = 2016 + int64(i)
		panel, err := experiments.RunPanel(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = panel
	}
	b.StopTimer()
	if last != nil && len(last.Points) > 0 {
		pt := last.Points[0]
		b.ReportMetric(pt.Additive, "additive/err")
		b.ReportMetric(pt.Relative, "relative/err")
		b.ReportMetric(float64(pt.Words), "words/run")
		b.ReportMetric(pt.Prediction, "prediction")
	}
}

// --- Figures 1 & 2, one benchmark per panel -------------------------------

func BenchmarkFig1ForestCover(b *testing.B) { benchPanel(b, "ForestCover", 0.25) }
func BenchmarkFig1KDDCUP99(b *testing.B)    { benchPanel(b, "KDDCUP99", 0.05) }

func BenchmarkFig1Caltech101P1(b *testing.B)  { benchPanel(b, "Caltech-101(P=1)", 0.25) }
func BenchmarkFig1Caltech101P2(b *testing.B)  { benchPanel(b, "Caltech-101(P=2)", 0.25) }
func BenchmarkFig1Caltech101P5(b *testing.B)  { benchPanel(b, "Caltech-101(P=5)", 0.25) }
func BenchmarkFig1Caltech101P20(b *testing.B) { benchPanel(b, "Caltech-101(P=20)", 0.25) }

func BenchmarkFig1ScenesP1(b *testing.B)  { benchPanel(b, "Scenes(P=1)", 0.25) }
func BenchmarkFig1ScenesP2(b *testing.B)  { benchPanel(b, "Scenes(P=2)", 0.25) }
func BenchmarkFig1ScenesP5(b *testing.B)  { benchPanel(b, "Scenes(P=5)", 0.25) }
func BenchmarkFig1ScenesP20(b *testing.B) { benchPanel(b, "Scenes(P=20)", 0.25) }

func BenchmarkFig1Isolet(b *testing.B) { benchPanel(b, "isolet", 0.25) }

// --- Concurrency: sequential vs parallel runtime ---------------------------

// benchPanelSweep runs a full three-ratio, five-k panel sweep — the shape
// of one Figure 1/2 panel — with the given sweep-cell worker count, so
// the sequential-vs-parallel wall-clock ratio is measured, not asserted.
func benchPanelSweep(b *testing.B, workers int) {
	b.Helper()
	su := experiments.Suite{Scale: dataset.Small, Seed: 2016, Runs: 2, Workers: workers}
	cfg, err := experiments.PanelByName(su, "Scenes(P=2)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = 2016 + int64(i)
		if _, err := experiments.RunPanel(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPanelSweepWorkers1(b *testing.B) { benchPanelSweep(b, 1) }
func BenchmarkPanelSweepWorkers4(b *testing.B) { benchPanelSweep(b, 4) }
func BenchmarkPanelSweepWorkers8(b *testing.B) { benchPanelSweep(b, 8) }

// benchZEstimatorWorkers isolates the generalized sampler's sketching
// phase — the dominant cost of every z-sampled panel — at a given level
// fan-out.
func benchZEstimatorWorkers(b *testing.B, workers int) {
	b.Helper()
	v := make([]float64, 1<<14)
	rng := rand.New(rand.NewSource(6))
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	locals := []hh.Vec{hh.DenseVec(v)}
	p := zsampler.ParamsForBudget(1<<16, 1, len(v), 7)
	p.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := comm.NewNetwork(1)
		if _, err := zsampler.BuildEstimator(context.Background(), net, locals, fn.Identity{}, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZEstimatorWorkers1(b *testing.B) { benchZEstimatorWorkers(b, 1) }
func BenchmarkZEstimatorWorkers4(b *testing.B) { benchZEstimatorWorkers(b, 4) }

// --- Ablations (DESIGN.md §5) ----------------------------------------------

// BenchmarkAblationGamma measures the additive error as the sampler's
// probability reports are degraded by multiplicative (1±γ) noise — the
// Lemma 3 robustness claim.
func BenchmarkAblationGamma(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	A := benchLowRank(rng, 400, 16, 4, 0.2)
	for _, gamma := range []float64{0, 0.25, 0.5} {
		b.Run(fmt.Sprintf("gamma=%.2f", gamma), func(b *testing.B) {
			var errSum float64
			for i := 0; i < b.N; i++ {
				net := comm.NewNetwork(1)
				s := &noisyExactSampler{A: A, gamma: gamma, rng: rand.New(rand.NewSource(int64(i)))}
				s.init()
				res, err := core.Run(context.Background(), net, s, fn.Identity{}, 16, core.Options{K: 4, R: 200})
				if err != nil {
					b.Fatal(err)
				}
				errSum += (matrix.ProjectionError2(A, res.P) - matrix.BestRankKError2(A, 4)) / A.FrobNorm2()
			}
			b.ReportMetric(errSum/float64(b.N), "additive/err")
		})
	}
}

// BenchmarkAblationBoost measures error quantiles against the number of
// boosting repetitions.
func BenchmarkAblationBoost(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	A := benchLowRank(rng, 300, 12, 3, 0.5)
	for _, boost := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("boost=%d", boost), func(b *testing.B) {
			var errSum float64
			for i := 0; i < b.N; i++ {
				net := comm.NewNetwork(1)
				s := &noisyExactSampler{A: A, rng: rand.New(rand.NewSource(int64(i)))}
				s.init()
				res, err := core.Run(context.Background(), net, s, fn.Identity{}, 12, core.Options{K: 3, R: 30, Boost: boost})
				if err != nil {
					b.Fatal(err)
				}
				errSum += (matrix.ProjectionError2(A, res.P) - matrix.BestRankKError2(A, 3)) / A.FrobNorm2()
			}
			b.ReportMetric(errSum/float64(b.N), "additive/err")
		})
	}
}

// BenchmarkAblationSampleCount is the k²/r prediction curve: additive error
// against the number of sampled rows.
func BenchmarkAblationSampleCount(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	A := benchLowRank(rng, 500, 16, 4, 0.3)
	for _, r := range []int{25, 100, 400} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var errSum float64
			for i := 0; i < b.N; i++ {
				net := comm.NewNetwork(1)
				s := &noisyExactSampler{A: A, rng: rand.New(rand.NewSource(int64(i)))}
				s.init()
				res, err := core.Run(context.Background(), net, s, fn.Identity{}, 16, core.Options{K: 4, R: r})
				if err != nil {
					b.Fatal(err)
				}
				errSum += (matrix.ProjectionError2(A, res.P) - matrix.BestRankKError2(A, 4)) / A.FrobNorm2()
			}
			b.ReportMetric(errSum/float64(b.N), "additive/err")
			b.ReportMetric(16.0/float64(r), "prediction")
		})
	}
}

// BenchmarkAblationJacobi measures the eigensolver against matrix size —
// the cost center of the CP-side computation.
func BenchmarkAblationJacobi(b *testing.B) {
	for _, d := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			m := benchLowRank(rng, d, d, d/4, 0.5)
			sym := m.Gram()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matrix.EigenSym(sym)
			}
		})
	}
}

// --- Storage backends: dense vs CSR vs fast on sparse data ------------------

// sparseBackendPair materializes the KDDCUP99-sparse corpus (≈6.5% density
// at Medium scale) in all three storage backends for head-to-head hot-path
// benchmarks. The logical matrix is identical, so any output difference
// would be a backend contract violation.
func sparseBackendPair(b *testing.B) (*matrix.Dense, *matrix.CSR, *matrix.Fast) {
	b.Helper()
	csr, _ := dataset.KDDCUP99Sparse(dataset.Medium, 42)
	return matrix.ToDense(csr), csr, matrix.ToFast(csr)
}

// BenchmarkDenseVsCSRRowNorms measures the row-norm hot path (the additive
// error analysis' Σ‖A_i‖² pass) on both backends; words/matrix reports the
// storage footprint each backend pays for the same logical matrix.
func BenchmarkDenseVsCSRRowNorms(b *testing.B) {
	dense, csr, fast := sparseBackendPair(b)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dense.RowNorms2()
		}
		b.ReportMetric(float64(dense.Rows()*dense.Cols()), "words/matrix")
	})
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csr.RowNorms2()
		}
		b.ReportMetric(float64(csr.Words()), "words/matrix")
	})
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fast.RowNorms2()
		}
		b.ReportMetric(float64(fast.Words()), "words/matrix")
	})
}

// BenchmarkDenseVsCSRSketchIngest measures CountSketch ingestion of the
// flattened matrix — the dominant local cost of every sketching protocol.
// Both backends stream identical nonzeros; CSR never scans the zeros.
func BenchmarkDenseVsCSRSketchIngest(b *testing.B) {
	dense, csr, fast := sparseBackendPair(b)
	for _, tc := range []struct {
		name string
		vec  hh.Vec
	}{
		{"dense", hh.MatVec{M: dense}},
		{"csr", hh.MatVec{M: csr}},
		{"fast", hh.MatVec{M: fast}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cs := sketch.NewCountSketch(1, 4, 128)
				cs.UpdateBulk(1, tc.vec.ForEach)
			}
		})
	}
}

// BenchmarkDenseVsCSRCollectRow measures per-draw row assembly (Algorithm 1
// line 7) with the matrix split across 4 servers in each backend.
func BenchmarkDenseVsCSRCollectRow(b *testing.B) {
	_, csr, _ := sparseBackendPair(b)
	const s = 4
	n := csr.Rows()
	// Row-partition the sparse corpus: server t holds rows i ≡ t (mod s).
	denseLocals := make([]matrix.Mat, s)
	csrLocals := make([]matrix.Mat, s)
	fastLocals := make([]matrix.Mat, s)
	for t := 0; t < s; t++ {
		var triples []matrix.Triple
		for i := t; i < n; i += s {
			csr.RowNNZ(i, func(j int, v float64) {
				triples = append(triples, matrix.Triple{Row: i, Col: j, Val: v})
			})
		}
		part := matrix.NewCSR(n, csr.Cols(), triples)
		csrLocals[t] = part
		denseLocals[t] = matrix.ToDense(part)
		fastLocals[t] = matrix.ToFast(part)
	}
	for _, tc := range []struct {
		name   string
		locals []matrix.Mat
	}{{"dense", denseLocals}, {"csr", csrLocals}, {"fast", fastLocals}} {
		b.Run(tc.name, func(b *testing.B) {
			net := comm.NewNetwork(s)
			for i := 0; i < b.N; i++ {
				if _, err := samplers.CollectRawRow(context.Background(), net, tc.locals, i%n, "bench/rows"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate microbenchmarks ---------------------------------------------

func BenchmarkCountSketchUpdate(b *testing.B) {
	cs := sketch.NewCountSketch(1, 5, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Update(uint64(i), 1.5)
	}
}

func BenchmarkCountSketchEstimate(b *testing.B) {
	cs := sketch.NewCountSketch(1, 5, 256)
	for j := uint64(0); j < 10000; j++ {
		cs.Update(j, float64(j%7))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Estimate(uint64(i % 10000))
	}
}

func BenchmarkPolyHashEval(b *testing.B) {
	h := hashing.NewPolyHash(hashing.Seeded(1), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Eval(uint64(i))
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := benchLowRank(rng, 128, 128, 16, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mul(m)
	}
}

func BenchmarkZEstimatorBuild(b *testing.B) {
	v := make([]float64, 1<<14)
	rng := rand.New(rand.NewSource(6))
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	locals := []hh.Vec{hh.DenseVec(v)}
	p := zsampler.ParamsForBudget(1<<16, 1, len(v), 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := comm.NewNetwork(1)
		if _, err := zsampler.BuildEstimator(context.Background(), net, locals, fn.Identity{}, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFKVBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	A := benchLowRank(rng, 1000, 32, 6, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.FKV(A, 6, 200, int64(i))
	}
}

// --- helpers ----------------------------------------------------------------

func benchLowRank(rng *rand.Rand, n, d, rank int, noise float64) *matrix.Dense {
	u := matrix.NewDense(n, rank)
	v := matrix.NewDense(d, rank)
	for i := range u.Data() {
		u.Data()[i] = rng.NormFloat64()
	}
	for i := range v.Data() {
		v.Data()[i] = rng.NormFloat64()
	}
	m := u.Mul(v.T())
	for i := range m.Data() {
		m.Data()[i] += noise * rng.NormFloat64()
	}
	return m
}

// noisyExactSampler draws with exact probabilities, optionally reporting
// them with (1±γ) noise.
type noisyExactSampler struct {
	A     *matrix.Dense
	gamma float64
	rng   *rand.Rand
	cum   []float64
	probs []float64
}

func (s *noisyExactSampler) init() {
	n := s.A.Rows()
	total := s.A.FrobNorm2()
	s.cum = make([]float64, n)
	s.probs = make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		s.probs[i] = s.A.RowNorm2(i) / total
		acc += s.probs[i]
		s.cum[i] = acc
	}
}

func (s *noisyExactSampler) Draw(ctx context.Context) (core.Sample, error) {
	x := s.rng.Float64()
	i := 0
	for i < len(s.cum)-1 && s.cum[i] < x {
		i++
	}
	q := s.probs[i]
	if s.gamma > 0 {
		q *= 1 + s.gamma*(2*s.rng.Float64()-1)
	}
	return core.Sample{Row: i, QHat: q, RawRow: s.A.RowCopy(i)}, nil
}

// BenchmarkAblationEigensolver compares the Jacobi eigendecomposition
// against block subspace iteration for extracting a top-k basis — the
// DESIGN.md §5 "Gram-matrix SVD vs iterative" decision.
func BenchmarkAblationEigensolver(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	for _, d := range []int{64, 128} {
		m := benchLowRank(rng, 4*d, d, 8, 0.3)
		b.Run(fmt.Sprintf("jacobi/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.TopKRightSingular(m, 8)
			}
		})
		b.Run(fmt.Sprintf("subspace/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matrix.TopKSubspaceIteration(m, 8, 30, int64(i))
			}
		})
	}
}

// BenchmarkDyadicVsFlatHH compares CP-side query strategies for heavy
// hitter identification at equal sketch budgets.
func BenchmarkDyadicVsFlatHH(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const m = 1 << 16
	v := make([]float64, m)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.02
	}
	for h := 0; h < 8; h++ {
		v[rng.Intn(m)] = 30
	}
	locals := []hh.Vec{hh.DenseVec(v)}
	p := hh.Params{Depth: 4, Width: 256}
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := comm.NewNetwork(1)
			hh.HeavyHitters(context.Background(), net, locals, 32, p, int64(i), "hh")
		}
	})
	b.Run("dyadic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net := comm.NewNetwork(1)
			if _, err := hh.DyadicHeavyHitters(context.Background(), net, locals, 32, p, int64(i), "dy"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLinearVsGeneralized compares the arbitrary-partition-model
// linear protocol (related work [7]) against this paper's generalized
// protocol at f = identity — the one regime where both apply. The linear
// protocol's words/run show why it wins when no entrywise function is
// needed; the Huber failure case lives in
// linearbaseline.TestLinearBaselineMissesHuber.
func BenchmarkLinearVsGeneralized(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	M := benchLowRank(rng, 500, 20, 5, 0.2)
	s, k := 4, 5
	locals := robust.ArbitraryPartition(M, s, 17)
	b.Run("linear", func(b *testing.B) {
		var words int64
		var add float64
		for i := 0; i < b.N; i++ {
			net := comm.NewNetwork(s)
			res, err := linearbaseline.Run(context.Background(), net, matrix.AsMats(locals), linearbaseline.Options{K: k, Eps: 0.25, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			words += res.Words
			add += baseline.Evaluate(M, res.P, k, -1).Additive
		}
		b.ReportMetric(float64(words)/float64(b.N), "words/run")
		b.ReportMetric(add/float64(b.N), "additive/err")
	})
	b.Run("generalized", func(b *testing.B) {
		var words int64
		var add float64
		for i := 0; i < b.N; i++ {
			net := comm.NewNetwork(s)
			zr, err := samplers.NewZRow(context.Background(), net, matrix.AsMats(locals), fn.Identity{}, zsampler.ParamsForBudget(int64(500*20), s, 500*20, int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Run(context.Background(), net, zr, fn.Identity{}, 20, core.Options{K: k, R: 150})
			if err != nil {
				b.Fatal(err)
			}
			words += net.Words()
			add += baseline.Evaluate(M, res.P, k, -1).Additive
		}
		b.ReportMetric(float64(words)/float64(b.N), "words/run")
		b.ReportMetric(add/float64(b.N), "additive/err")
	})
}
