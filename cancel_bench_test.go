package repro

// Cancellation-latency benchmarks: how long between Job.Cancel landing on
// a mid-run job and the engine being idle again (Wait returned, session
// torn down, workers drained — on TCP the teardown includes the OpAbort
// discard and the drain-until-ack close handshake). The custom metric
// cancel-ns is the paper-facing number BENCH_pr5.json records: the
// mid-run abort path's end-to-end latency, mem vs TCP.
//
// Regenerate with: make bench-json

import (
	"context"
	"errors"
	"testing"
	"time"
)

// benchCancel measures submit → (round 5 completes) → Cancel → Wait
// returns, on an already-installed cluster. The job is sized so round 5
// lands mid-sketching, well before completion.
func benchCancel(b *testing.B, c *Cluster) {
	b.Helper()
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: 1, QueueDepth: 4}); err != nil {
		b.Fatal(err)
	}
	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := c.prepare(context.Background(), Identity(), Options{K: 4, Rows: 400, Seed: int64(i + 1)}, true)
		if err != nil {
			b.Fatal(err)
		}
		var canceledAt time.Time
		j.hookRound = func(seq int64) {
			if seq == 5 {
				canceledAt = time.Now()
				j.Cancel()
			}
		}
		if err := c.eng.submit(context.Background(), j, false); err != nil {
			b.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); !errors.Is(err, ErrCanceled) {
			b.Fatalf("job was not canceled: %v", err)
		}
		if canceledAt.IsZero() {
			b.Fatal("job finished before round 5 — enlarge the probe job")
		}
		total += time.Since(canceledAt)
	}
	b.StopTimer()
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "cancel-ns")
}

func BenchmarkCancelLatencyMem(b *testing.B) {
	const n, d, s = 96, 12, 3
	c, err := NewCluster(s)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(benchShares(n, d, s, 5)); err != nil {
		b.Fatal(err)
	}
	benchCancel(b, c)
}

func BenchmarkCancelLatencyTCP(b *testing.B) {
	const n, d, s = 96, 12, 3
	c, err := ListenCluster(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for i := 1; i < s; i++ {
		go func() {
			if err := JoinWorker(testCtx(5*time.Second), c.Addr()); err != nil {
				b.Errorf("worker: %v", err)
			}
		}()
	}
	if err := c.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		b.Fatal(err)
	}
	if err := c.SetLocalData(benchShares(n, d, s, 5)); err != nil {
		b.Fatal(err)
	}
	benchCancel(b, c)
}
