package repro

// Mid-run cancellation gates for the v2 API: a job canceled between
// protocol rounds — via Job.Cancel, its ctx, or a WithDeadline budget —
// must stop before its next round, report an error matching both
// ErrCanceled and the context cause, leave the fabric clean, and leave
// the cluster in a state where the next job's transcript is bit-identical
// to the same job on a fresh cluster. All of it over both transports.

import (
	"context"
	"errors"
	"testing"
	"time"
)

// submitCancelAt submits a job that cancels itself right after protocol
// round `at` completes — the hookRound seam runs synchronously on the
// protocol goroutine, so the cancellation lands deterministically between
// rounds.
func submitCancelAt(t *testing.T, c *Cluster, at int64) *Job {
	t.Helper()
	j, err := c.prepare(context.Background(), Identity(), Options{K: 3, Rows: 20, Seed: 4242}, true)
	if err != nil {
		t.Fatal(err)
	}
	j.hookRound = func(seq int64) {
		if seq == at {
			j.Cancel()
		}
	}
	if err := c.eng.submit(context.Background(), j, false); err != nil {
		t.Fatal(err)
	}
	return j
}

// assertCanceled checks the full cancellation contract on a finished job.
func assertCanceled(t *testing.T, j *Job) {
	t.Helper()
	res, err := j.Wait(context.Background())
	if res != nil {
		t.Fatal("canceled job returned a result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled job returned %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job returned %v, want it to wrap context.Canceled", err)
	}
	if st := j.State(); st != JobCanceled {
		t.Fatalf("canceled job in state %v", st)
	}
}

// cancelDeterminismGate runs the acceptance gate on a cluster factory: a
// job canceled between rounds must not perturb the next job — its
// fingerprint (words, bytes, per-tag ledger, sampled rows, projection)
// must be bit-identical to the same job on a fresh cluster that never saw
// a cancellation.
func cancelDeterminismGate(t *testing.T, newCluster func(t *testing.T) *Cluster) {
	shares := jobShares(31, 90, 8, 3)
	probe := Options{K: 3, Rows: 18, Seed: 777}

	fresh := newCluster(t)
	defer fresh.Close()
	if err := fresh.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	wantRes, err := fresh.PCA(context.Background(), Identity(), probe)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintResult(wantRes)

	dirty := newCluster(t)
	defer dirty.Close()
	if err := dirty.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	// Cancel one job early (mid-sketching) and one deep (mid-draws), then
	// prove the cluster is indistinguishable from fresh.
	for _, at := range []int64{3, 12} {
		j := submitCancelAt(t, dirty, at)
		assertCanceled(t, j)
		if got := j.Progress(); got.Rounds < at {
			t.Fatalf("canceled job reports %d rounds, want ≥ %d", got.Rounds, at)
		}
	}
	gotRes, err := dirty.PCA(context.Background(), Identity(), probe)
	if err != nil {
		t.Fatalf("job after cancellations failed: %v", err)
	}
	got := fingerprintResult(gotRes)

	if want.words != got.words || want.bytes != got.bytes {
		t.Fatalf("post-cancel job ledger drifted: fresh %d words/%d bytes, after-cancel %d/%d",
			want.words, want.bytes, got.words, got.bytes)
	}
	for tag, w := range want.tags {
		if got.tags[tag] != w {
			t.Fatalf("post-cancel per-tag words drifted at %q: fresh %d, after-cancel %d", tag, w, got.tags[tag])
		}
	}
	if len(want.tags) != len(got.tags) {
		t.Fatalf("post-cancel tag sets differ: fresh %v, after-cancel %v", want.tags, got.tags)
	}
	for i := range want.rows {
		if want.rows[i] != got.rows[i] {
			t.Fatal("post-cancel sampled rows drifted")
		}
	}
	if !want.proj.Equalf(got.proj, 0) {
		t.Fatal("post-cancel projection drifted")
	}
}

// TestCancelMidRunMem: the determinism gate over the in-memory transport.
func TestCancelMidRunMem(t *testing.T) {
	cancelDeterminismGate(t, func(t *testing.T) *Cluster {
		c, err := NewCluster(3)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

// TestCancelMidRunTCP: the same gate over a real TCP worker fleet — the
// canceled session's teardown (OpAbort discard + drain-until-ack) must
// leave the workers and links clean for the next tenant.
func TestCancelMidRunTCP(t *testing.T) {
	cancelDeterminismGate(t, func(t *testing.T) *Cluster {
		return tcpCluster(t, 3)
	})
}

// TestSubmitCtxCancelsRunningJob: canceling the ctx passed to Submit
// stops a job that is already mid-run.
func TestSubmitCtxCancelsRunningJob(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(32, 120, 10, 2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j, err := c.Submit(ctx, Identity(), WithRank(4), WithRows(5000), WithBoost(4))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for real protocol progress, then pull the ctx out from under it.
	deadline := time.After(10 * time.Second)
	for j.Progress().Rounds < 2 {
		select {
		case <-deadline:
			t.Fatal("job made no progress")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if _, err := j.Wait(context.Background()); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("ctx-canceled job returned %v", err)
	}
	if st := j.State(); st != JobCanceled {
		t.Fatalf("ctx-canceled job in state %v", st)
	}
}

// TestWithDeadlineExpiresJob: a WithDeadline budget cancels the job with
// an error matching both ErrCanceled and context.DeadlineExceeded.
func TestWithDeadlineExpiresJob(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(33, 120, 10, 2)); err != nil {
		t.Fatal(err)
	}
	j, err := c.Submit(context.Background(), Identity(),
		WithRank(4), WithRows(5000), WithBoost(4), WithDeadline(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = j.Wait(context.Background())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-expired job returned %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestWaitCtxAbandonsWaitOnly: a ctx firing inside Wait abandons the wait
// without touching the job, which still completes.
func TestWaitCtxAbandonsWaitOnly(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(34, 80, 8, 2)); err != nil {
		t.Fatal(err)
	}
	j, err := c.Submit(context.Background(), Identity(), WithRank(3), WithRows(60))
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	if _, err := j.Wait(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under an expired ctx returned %v", err)
	}
	if res, err := j.Wait(context.Background()); err != nil || res == nil {
		t.Fatalf("job should still complete normally, got %v", err)
	}
	if st := j.State(); st != JobDone {
		t.Fatalf("job in state %v after abandoned wait", st)
	}
}

// TestCancelFinishedJobIsFalse: Cancel after completion reports false and
// changes nothing.
func TestCancelFinishedJobIsFalse(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(35, 40, 6, 2)); err != nil {
		t.Fatal(err)
	}
	j, err := c.Submit(context.Background(), Identity(), WithRank(2), WithRows(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j.Cancel() {
		t.Fatal("Cancel on a finished job reported true")
	}
	if st := j.State(); st != JobDone {
		t.Fatalf("finished job flipped to %v after late Cancel", st)
	}
}

// TestJobRoundsStream: the Rounds channel delivers monotonically numbered
// events with phases and closes at completion; Progress agrees.
func TestJobRoundsStream(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(36, 60, 6, 2)); err != nil {
		t.Fatal(err)
	}
	j, err := c.Submit(context.Background(), Identity(), WithRank(2), WithRows(15))
	if err != nil {
		t.Fatal(err)
	}
	var events int
	var lastSeq int64
	for ev := range j.Rounds() {
		events++
		if ev.Seq <= lastSeq {
			t.Fatalf("round seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Phase == "" {
			t.Fatal("round event with empty phase")
		}
	}
	if events == 0 {
		t.Fatal("no round events observed")
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := j.Progress()
	if p.State != JobDone || p.Rounds < lastSeq || p.Phase == "" || p.Words <= 0 {
		t.Fatalf("final progress implausible: %+v", p)
	}
}

// TestPCACtxCancelReturnsErrCanceled: the blocking PCA under a canceled
// ctx returns the documented ErrCanceled-wrapped error, not a bare ctx
// error from an abandoned wait.
func TestPCACtxCancelReturnsErrCanceled(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(jobShares(37, 120, 10, 2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.PCA(ctx, Identity(), WithRank(4), WithRows(10000), WithBoost(4))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the job get mid-run
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("PCA under canceled ctx returned %v, want ErrCanceled wrapping context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("PCA did not return after ctx cancellation")
	}
}
