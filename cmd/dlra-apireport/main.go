// Command dlra-apireport prints the exported API surface of the root
// repro package, one declaration per line, sorted — an apidiff-style
// report with no external dependencies. CI regenerates it and diffs
// against the committed API.txt, so every public-API change shows up as
// an explicit, reviewable hunk instead of slipping through a refactor
// (see the api-check target in the Makefile).
//
// Usage:
//
//	dlra-apireport [package-dir]   # default "."
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"log"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		log.Fatalf("dlra-apireport: %v", err)
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			lines = append(lines, fileDecls(fset, file)...)
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// fileDecls renders every exported top-level declaration of one file.
func fileDecls(fset *token.FileSet, file *ast.File) []string {
	var out []string
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil {
				recv := exprString(fset, d.Recv.List[0].Type)
				if !exportedRecv(recv) {
					continue
				}
				out = append(out, fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, signature(fset, d.Type)))
			} else {
				out = append(out, fmt.Sprintf("func %s%s", d.Name.Name, signature(fset, d.Type)))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() {
						out = append(out, typeLines(fset, sp)...)
					}
				case *ast.ValueSpec:
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					for _, name := range sp.Names {
						if name.IsExported() {
							out = append(out, fmt.Sprintf("%s %s", kind, name.Name))
						}
					}
				}
			}
		}
	}
	return out
}

// typeLines renders an exported type; struct types additionally list
// their exported fields, so field additions and removals show in the
// report too.
func typeLines(fset *token.FileSet, sp *ast.TypeSpec) []string {
	switch t := sp.Type.(type) {
	case *ast.StructType:
		out := []string{fmt.Sprintf("type %s struct", sp.Name.Name)}
		for _, f := range t.Fields.List {
			ftype := exprString(fset, f.Type)
			if len(f.Names) == 0 {
				// Embedded field: exported iff its type name is.
				if exportedRecv(ftype) {
					out = append(out, fmt.Sprintf("field %s.%s (embedded)", sp.Name.Name, ftype))
				}
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					out = append(out, fmt.Sprintf("field %s.%s %s", sp.Name.Name, name.Name, ftype))
				}
			}
		}
		return out
	case *ast.InterfaceType:
		out := []string{fmt.Sprintf("type %s interface", sp.Name.Name)}
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if name.IsExported() {
					out = append(out, fmt.Sprintf("ifacemethod %s.%s%s", sp.Name.Name, name.Name, exprString(fset, m.Type)))
				}
			}
		}
		return out
	default:
		return []string{fmt.Sprintf("type %s %s", sp.Name.Name, exprString(fset, sp.Type))}
	}
}

// signature renders a function type without the leading "func".
func signature(fset *token.FileSet, ft *ast.FuncType) string {
	return strings.TrimPrefix(exprString(fset, ft), "func")
}

// exprString renders an expression as source.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// exportedRecv reports whether a receiver or embedded type name ("T",
// "*T", "pkg.T") refers to an exported type.
func exportedRecv(t string) bool {
	t = strings.TrimPrefix(t, "*")
	if i := strings.LastIndex(t, "."); i >= 0 {
		t = t[i+1:]
	}
	return ast.IsExported(t)
}
