// Command dlra-benchjson converts `go test -bench` text output (read from
// stdin) into a JSON array of measurements, one object per benchmark:
//
//	{"op": "BenchmarkDenseVsCSRRowNorms/csr", "iterations": 10,
//	 "ns_per_op": 1489572, "bytes_per_op": 524288, "allocs_per_op": 1,
//	 "metrics": {"words/matrix": 1017655}}
//
// ns/op, B/op and allocs/op land in their own fields; every other unit
// (custom b.ReportMetric units like additive/err or words/run) is kept in
// the metrics map. Non-benchmark lines are ignored, so the raw output of
// `go test -run=NONE -bench=. -benchmem ./...` can be piped in directly:
//
//	go test -run=NONE -bench=DenseVsCSR -benchmem . | dlra-benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Measurement is one benchmark result line in JSON form.
type Measurement struct {
	Op         string             `json:"op"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Measurement
	for sc.Scan() {
		if m, ok := parseLine(sc.Text()); ok {
			out = append(out, m)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "dlra-benchjson:", err)
		os.Exit(1)
	}
	if len(out) == 0 {
		// Zero measurements means the bench run itself broke (compile
		// error, panic, empty -bench match); surfacing that beats writing
		// an empty perf snapshot that reads as "measured, nothing found".
		fmt.Fprintln(os.Stderr, "dlra-benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "dlra-benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one "BenchmarkName-P  iters  v unit  v unit ..." line.
func parseLine(line string) (Measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Measurement{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Measurement{}, false
	}
	// Strip the trailing GOMAXPROCS suffix ("-8") from the name.
	op := fields[0]
	if i := strings.LastIndex(op, "-"); i > 0 {
		if _, err := strconv.Atoi(op[i+1:]); err == nil {
			op = op[:i]
		}
	}
	// The suffix stripped from the name is the GOMAXPROCS the benchmark
	// ran at; the testing package omits it entirely at GOMAXPROCS=1.
	// Snapshot comparisons need the value either way, so it survives as
	// an explicit metric on every record instead of vanishing with the
	// suffix.
	procs := 1.0
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			procs = float64(p)
		}
	}
	m := Measurement{Op: op, Iterations: iters, Metrics: map[string]float64{"gomaxprocs": procs}}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Measurement{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
			seen = true
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsOp = v
		default:
			if m.Metrics == nil {
				m.Metrics = make(map[string]float64)
			}
			m.Metrics[unit] = v
		}
	}
	return m, seen
}
