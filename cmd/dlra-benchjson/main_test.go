package main

import "testing"

func TestParseLine(t *testing.T) {
	m, ok := parseLine("BenchmarkDenseVsCSRRowNorms/csr-8         \t      10\t   1489572 ns/op\t   1017655 words/matrix\t  524288 B/op\t       1 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if m.Op != "BenchmarkDenseVsCSRRowNorms/csr" {
		t.Fatalf("op %q", m.Op)
	}
	if m.Iterations != 10 || m.NsPerOp != 1489572 || m.BytesPerOp != 524288 || m.AllocsOp != 1 {
		t.Fatalf("parsed %+v", m)
	}
	if m.Metrics["words/matrix"] != 1017655 {
		t.Fatalf("metrics %v", m.Metrics)
	}
	if m.Metrics["gomaxprocs"] != 8 {
		t.Fatalf("gomaxprocs metric %v", m.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"PASS",
		"ok  \trepro\t3.327s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoNs-8 10 99 widgets/op", // no ns/op measurement
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q accepted", line)
		}
	}
}

func TestParseLineWithoutProcsSuffix(t *testing.T) {
	m, ok := parseLine("BenchmarkPolyHashEval 1000000 52.1 ns/op")
	if !ok || m.Op != "BenchmarkPolyHashEval" || m.NsPerOp != 52.1 {
		t.Fatalf("parsed %+v ok=%v", m, ok)
	}
	// No suffix means the testing package ran at GOMAXPROCS=1; the value
	// must still be recorded explicitly.
	if m.Metrics["gomaxprocs"] != 1 {
		t.Fatalf("gomaxprocs metric %v", m.Metrics)
	}
}
