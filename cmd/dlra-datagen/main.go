// Command dlra-datagen materializes the synthetic stand-in datasets of the
// evaluation (see DESIGN.md §4) as matrix files, so they can be inspected,
// plotted, or fed to dlra-pca.
//
// Usage:
//
//	dlra-datagen -dataset forestcover|kddcup99|caltech101|scenes|isolet
//	             [-scale small|medium|full] [-seed S] [-p P] -output file.csv
//
// For the pooled-code datasets (caltech101, scenes) the output is the
// pooled n×256 feature matrix at exponent -p; the raw datasets emit their
// feature matrices directly.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/matio"
	"repro/internal/matrix"
)

func main() {
	name := flag.String("dataset", "", "forestcover, kddcup99, caltech101, scenes or isolet")
	scaleFlag := flag.String("scale", "medium", "small, medium or full")
	seed := flag.Int64("seed", 2016, "random seed")
	p := flag.Float64("p", 1, "pooling exponent for caltech101/scenes")
	output := flag.String("output", "", "output file (CSV or .bin)")
	flag.Parse()

	if *name == "" || *output == "" {
		log.Fatal("dlra-datagen: -dataset and -output are required")
	}
	var scale dataset.Scale
	switch *scaleFlag {
	case "small":
		scale = dataset.Small
	case "medium":
		scale = dataset.Medium
	case "full":
		scale = dataset.Full
	default:
		log.Fatalf("dlra-datagen: unknown scale %q", *scaleFlag)
	}

	var (
		m    *matrix.Dense
		info dataset.Info
		err  error
	)
	switch *name {
	case "forestcover":
		m, info = dataset.ForestCoverRaw(scale, *seed)
	case "kddcup99":
		m, info = dataset.KDDCUP99Raw(scale, *seed)
	case "isolet":
		m, info = dataset.IsoletRaw(scale, *seed)
	case "caltech101":
		var codes = func() (*matrix.Dense, dataset.Info) {
			c, i := dataset.Caltech101Codes(scale, *seed)
			pooled, perr := c.Pool(*p)
			if perr != nil {
				log.Fatal(perr)
			}
			return pooled, i
		}
		m, info = codes()
	case "scenes":
		c, i := dataset.ScenesCodes(scale, *seed)
		m, err = c.Pool(*p)
		if err != nil {
			log.Fatal(err)
		}
		info = i
	default:
		log.Fatalf("dlra-datagen: unknown dataset %q", *name)
	}

	if err := matio.Save(*output, m); err != nil {
		log.Fatalf("dlra-datagen: writing %s: %v", *output, err)
	}
	fmt.Println(info)
	fmt.Printf("wrote %dx%d matrix to %s\n", m.Rows(), m.Cols(), *output)
}
