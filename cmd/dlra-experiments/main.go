// Command dlra-experiments regenerates the paper's evaluation (Figures 1
// and 2 of Section VIII): for each dataset panel it bounds the total
// communication to a fraction of the data size, runs the distributed PCA
// protocol for k = 3…15, and prints the theoretical prediction k²/r next
// to the measured additive and relative errors — the textual form of the
// figure pair.
//
// Usage:
//
//	dlra-experiments [-scale small|medium|full] [-panel NAME] [-runs N]
//	                 [-seed S] [-csv] [-list] [-backend dense|csr]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "dataset scale: small, medium or full")
	panelFlag := flag.String("panel", "", "run only the named panel (default: all)")
	runsFlag := flag.Int("runs", 5, "repetitions per data point (paper: 5)")
	seedFlag := flag.Int64("seed", 2016, "root random seed")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of tables")
	listFlag := flag.Bool("list", false, "list panel names and exit")
	baselineFlag := flag.Bool("baseline", false, "also run the centralized FKV sampler at the same r per point")
	workersFlag := flag.Int("workers", 0, "worker budget (0 = one per CPU, 1 = sequential): parallelizes across panels when several run, or across one panel's sweep cells")
	backendFlag := flag.String("backend", "auto", "share storage backend: auto (as built), dense, csr or fast (identical results; csr and fast pay O(nnz) per row)")
	flag.Parse()

	var scale dataset.Scale
	switch *scaleFlag {
	case "small":
		scale = dataset.Small
	case "medium":
		scale = dataset.Medium
	case "full":
		scale = dataset.Full
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}

	backend, err := experiments.ParseBackend(*backendFlag)
	if err != nil {
		log.Fatal(err)
	}

	suite := experiments.Suite{Scale: scale, Seed: *seedFlag, Runs: *runsFlag, Workers: *workersFlag, Backend: backend}
	panels := experiments.Panels(suite)

	if *listFlag {
		for _, p := range panels {
			fmt.Println(p.Name)
		}
		return
	}
	if *panelFlag != "" {
		cfg, err := experiments.PanelByName(suite, *panelFlag)
		if err != nil {
			log.Fatal(err)
		}
		panels = []experiments.PanelConfig{cfg}
	}

	if *csvFlag {
		fmt.Println("panel,sampler,ratio,k,r,prediction,additive,relative,words,fkv_additive")
	} else {
		fmt.Printf("# Reproduction of Figures 1 & 2 (scale=%s, runs=%d, seed=%d)\n",
			*scaleFlag, *runsFlag, *seedFlag)
		fmt.Println("# additive = |‖A−AP‖² − ‖A−[A]_k‖²| / ‖A‖²   (Figure 1)")
		fmt.Println("# relative = ‖A−AP‖² / ‖A−[A]_k‖²            (Figure 2)")
		fmt.Println("# prediction = k²/r                          (Figure 1, dashed)")
		fmt.Println()
	}

	// Panels execute on a bounded pool so independent panels overlap;
	// output streams in panel order as soon as each panel and its
	// predecessors are done, so the rendering is identical to a
	// sequential run. The -workers budget is applied to ONE layer, not
	// multiplied across both: with several panels in flight each panel
	// sweeps its cells sequentially, while a single selected panel gets
	// the whole budget for its sweep cells.
	cellWorkers := *workersFlag
	if len(panels) > 1 {
		cellWorkers = 1
	}
	type panelOut struct {
		text string
		err  error
	}
	results := make([]chan panelOut, len(panels))
	pool := parallel.NewPool(*workersFlag)
	for i := range panels {
		results[i] = make(chan panelOut, 1)
		cfg := panels[i]
		cfg.Baseline = *baselineFlag
		cfg.Workers = cellWorkers
		out := results[i]
		pool.Submit(func() {
			// A protocol panic must reach the in-order drain below, not
			// sit in the pool until a Wait that is never reached.
			defer func() {
				if r := recover(); r != nil {
					out <- panelOut{err: fmt.Errorf("%s: panic: %v", cfg.Name, r)}
				}
			}()
			start := time.Now()
			panel, err := experiments.RunPanel(context.Background(), cfg)
			if err != nil {
				out <- panelOut{err: fmt.Errorf("%s: %w", cfg.Name, err)}
				return
			}
			if *csvFlag {
				// Skip the repeated header line.
				csv := panel.CSV()
				for i, c := range csv {
					if c == '\n' {
						out <- panelOut{text: csv[i+1:]}
						return
					}
				}
				out <- panelOut{}
				return
			}
			out <- panelOut{text: fmt.Sprintf("%s\n  [%.1fs]\n\n", panel.Format(), time.Since(start).Seconds())}
		})
	}
	for i := range panels {
		res := <-results[i]
		if res.err != nil {
			log.Fatal(res.err)
		}
		fmt.Print(res.text)
	}
	pool.Wait()
}
