// Command dlra-experiments regenerates the paper's evaluation (Figures 1
// and 2 of Section VIII): for each dataset panel it bounds the total
// communication to a fraction of the data size, runs the distributed PCA
// protocol for k = 3…15, and prints the theoretical prediction k²/r next
// to the measured additive and relative errors — the textual form of the
// figure pair.
//
// Usage:
//
//	dlra-experiments [-scale small|medium|full] [-panel NAME] [-runs N]
//	                 [-seed S] [-csv] [-list]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "dataset scale: small, medium or full")
	panelFlag := flag.String("panel", "", "run only the named panel (default: all)")
	runsFlag := flag.Int("runs", 5, "repetitions per data point (paper: 5)")
	seedFlag := flag.Int64("seed", 2016, "root random seed")
	csvFlag := flag.Bool("csv", false, "emit CSV instead of tables")
	listFlag := flag.Bool("list", false, "list panel names and exit")
	baselineFlag := flag.Bool("baseline", false, "also run the centralized FKV sampler at the same r per point")
	flag.Parse()

	var scale dataset.Scale
	switch *scaleFlag {
	case "small":
		scale = dataset.Small
	case "medium":
		scale = dataset.Medium
	case "full":
		scale = dataset.Full
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}

	suite := experiments.Suite{Scale: scale, Seed: *seedFlag, Runs: *runsFlag}
	panels := experiments.Panels(suite)

	if *listFlag {
		for _, p := range panels {
			fmt.Println(p.Name)
		}
		return
	}
	if *panelFlag != "" {
		cfg, err := experiments.PanelByName(suite, *panelFlag)
		if err != nil {
			log.Fatal(err)
		}
		panels = []experiments.PanelConfig{cfg}
	}

	if *csvFlag {
		fmt.Println("panel,sampler,ratio,k,r,prediction,additive,relative,words,fkv_additive")
	} else {
		fmt.Printf("# Reproduction of Figures 1 & 2 (scale=%s, runs=%d, seed=%d)\n",
			*scaleFlag, *runsFlag, *seedFlag)
		fmt.Println("# additive = |‖A−AP‖² − ‖A−[A]_k‖²| / ‖A‖²   (Figure 1)")
		fmt.Println("# relative = ‖A−AP‖² / ‖A−[A]_k‖²            (Figure 2)")
		fmt.Println("# prediction = k²/r                          (Figure 1, dashed)")
		fmt.Println()
	}

	for _, cfg := range panels {
		cfg.Baseline = *baselineFlag
		start := time.Now()
		panel, err := experiments.RunPanel(cfg)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Name, err)
		}
		if *csvFlag {
			// Skip the repeated header line.
			csv := panel.CSV()
			for i, c := range csv {
				if c == '\n' {
					fmt.Fprint(os.Stdout, csv[i+1:])
					break
				}
			}
		} else {
			fmt.Println(panel.Format())
			fmt.Printf("  [%.1fs]\n\n", time.Since(start).Seconds())
		}
	}
}
