// Command dlra-lintdoc enforces the documentation contract on the public
// repro package: every exported declaration — types, funcs, methods,
// consts, vars and exported struct fields — must carry a doc comment.
// It prints one "file:line: identifier" diagnostic per undocumented
// export and exits nonzero if any are found, which is how the CI docs
// gate keeps API.txt and godoc in lockstep.
//
// Usage:
//
//	dlra-lintdoc [package-dir]
//
// The package directory defaults to ".". Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlra-lintdoc: %v\n", err)
		os.Exit(2)
	}

	var diags []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		diags = append(diags, fmt.Sprintf("%s:%d: undocumented exported %s %s", p.Filename, p.Line, what, name))
	}

	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lintDecl(decl, report)
			}
		}
	}

	sort.Strings(diags)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dlra-lintdoc: %d undocumented exported declaration(s)\n", len(diags))
		os.Exit(1)
	}
}

// lintDecl reports every undocumented exported identifier introduced by
// one top-level declaration.
func lintDecl(decl ast.Decl, report func(token.Pos, string, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		// Methods on unexported receivers are not part of the public API.
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return
		}
		if d.Doc == nil {
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			report(d.Pos(), what, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type", s.Name.Name)
				}
				lintFields(s, report)
			case *ast.ValueSpec:
				for _, id := range s.Names {
					if !id.IsExported() {
						continue
					}
					// A const/var block comment, a per-spec doc comment or a
					// trailing line comment all count as documentation.
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(id.Pos(), strings.ToLower(d.Tok.String()), id.Name)
					}
				}
			}
		}
	}
}

// lintFields walks an exported struct or interface type and reports its
// undocumented exported fields and methods — they render in godoc too.
func lintFields(s *ast.TypeSpec, report func(token.Pos, string, string)) {
	var fields *ast.FieldList
	var what string
	switch t := s.Type.(type) {
	case *ast.StructType:
		fields, what = t.Fields, "field"
	case *ast.InterfaceType:
		fields, what = t.Methods, "interface method"
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, id := range f.Names {
			if id.IsExported() {
				report(id.Pos(), what, s.Name.Name+"."+id.Name)
			}
		}
	}
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
