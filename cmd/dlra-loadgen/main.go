// Command dlra-loadgen drives a running dlra-serve instance with
// sustained PCA job traffic and reports where the latency actually goes.
// It is the measurement instrument behind the engine-throughput work:
// the committed BENCH snapshots measure the engine in-process, while
// loadgen measures the whole serving path — HTTP admission, queue wait,
// session bind, protocol rounds, teardown — against a live server.
//
// Two load shapes, runnable separately or back to back (-mode both):
//
//   - closed loop: -conc workers each submit a job, poll it to a
//     terminal state, and immediately submit the next, until -jobs
//     have completed. Measures capacity (jobs/sec at a fixed
//     concurrency level).
//   - open loop: jobs arrive on a fixed schedule at -qps for -duration,
//     regardless of how many are still in flight. Measures behavior
//     under a traffic rate the server does not control — the shape that
//     exposes queueing collapse a closed loop hides.
//
// Every completed job contributes an end-to-end latency sample and the
// per-phase nanosecond breakdown dlra-serve reports from Job.Progress
// (queue wait, session bind, protocol rounds, teardown), so the output
// separates "the protocol is slow" from "the job sat in the queue".
// The server's /metrics endpoint is scraped before and after the run
// and the counter deltas (jobs done, session-pool hits/misses) ride
// along in the report.
//
// With -json the report is written as a JSON array in the same
// per-record shape as cmd/dlra-benchjson's output (op / iterations /
// ns_per_op / metrics), so a loadgen run can be concatenated with a
// BENCH_pr*.json snapshot for machine comparison:
//
//	dlra-loadgen -base http://127.0.0.1:7793 -mode both -json loadgen.json
//
// Exit status is nonzero when any job errored, when fewer than
// -min-completed jobs finished, or when the written JSON fails to
// round-trip — which is what makes `make smoke-loadgen` a real gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	var (
		base         = flag.String("base", "http://127.0.0.1:7793", "dlra-serve base URL")
		mode         = flag.String("mode", "closed", "load shape: closed, open, or both")
		conc         = flag.Int("conc", 4, "closed loop: concurrent workers")
		jobs         = flag.Int("jobs", 32, "closed loop: total jobs to complete")
		qps          = flag.Float64("qps", 8, "open loop: target arrival rate (jobs/sec)")
		duration     = flag.Duration("duration", 5*time.Second, "open loop: how long to generate arrivals")
		dataset      = flag.String("dataset", "", "dataset id to query (empty = server's active dataset)")
		fn           = flag.String("fn", "identity", "function spec (identity, huber:K, gm:P, l1l2, fair:C, abspow:P, cosine)")
		k            = flag.Int("k", 3, "target rank")
		rows         = flag.Int("rows", 0, "sampled rows (0 = protocol default)")
		seed         = flag.Int64("seed", 0, "base seed forwarded to every job (0 = server default)")
		jsonPath     = flag.String("json", "", "write the report as benchjson-shaped JSON to this file")
		minCompleted = flag.Int("min-completed", 0, "fail unless at least this many jobs completed")
		readyWait    = flag.Duration("ready-wait", 30*time.Second, "how long to wait for the server's /healthz")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("dlra-loadgen: ")

	lg := &loadgen{
		base:   strings.TrimRight(*base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
		spec: submitRequest{
			Dataset: *dataset, Fn: *fn, K: *k, Rows: *rows, Seed: *seed,
		},
	}
	if err := lg.waitReady(*readyWait); err != nil {
		log.Fatal(err)
	}

	before, err := lg.scrapeMetrics()
	if err != nil {
		log.Fatalf("scraping /metrics: %v", err)
	}
	if err := assertMembershipMetrics(before); err != nil {
		log.Fatalf("scraping /metrics: %v", err)
	}

	var records []measurement
	runClosed := *mode == "closed" || *mode == "both"
	runOpen := *mode == "open" || *mode == "both"
	if !runClosed && !runOpen {
		log.Fatalf("unknown -mode %q (want closed, open, or both)", *mode)
	}
	completed := 0
	if runClosed {
		rej0 := lg.rejected.Load()
		res := lg.closedLoop(*conc, *jobs)
		completed += len(res.samples)
		records = append(records, res.record("LoadgenClosed", map[string]float64{
			"concurrency":  float64(*conc),
			"rejected_429": float64(lg.rejected.Load() - rej0),
		}))
		log.Printf("closed loop: %s", res)
	}
	if runOpen {
		rej0 := lg.rejected.Load()
		res := lg.openLoop(*qps, *duration)
		completed += len(res.samples)
		records = append(records, res.record("LoadgenOpen", map[string]float64{
			"target_qps":   *qps,
			"rejected_429": float64(lg.rejected.Load() - rej0),
		}))
		log.Printf("open loop: %s", res)
	}

	after, err := lg.scrapeMetrics()
	if err != nil {
		log.Fatalf("scraping /metrics: %v", err)
	}
	delta := metricsDelta(before, after)
	records = append(records, measurement{
		Op: "LoadgenServerMetrics", Iterations: 1, NsPerOp: 1, Metrics: delta,
	})
	log.Printf("server counters over the run: done=%+.0f canceled=%+.0f pool_hits=%+.0f pool_misses=%+.0f rejected_429=%d",
		delta["dlra_jobs_done_total"], delta["dlra_jobs_canceled_total"],
		delta["dlra_session_pool_hits_total"], delta["dlra_session_pool_misses_total"],
		lg.rejected.Load())

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, records); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d records)", *jsonPath, len(records))
	}
	if lg.errs.Load() > 0 {
		log.Fatalf("%d job(s) errored", lg.errs.Load())
	}
	if completed < *minCompleted {
		log.Fatalf("completed %d jobs, need at least %d", completed, *minCompleted)
	}
}

// submitRequest mirrors dlra-serve's POST /v1/jobs body.
type submitRequest struct {
	Dataset string  `json:"dataset,omitempty"`
	Fn      string  `json:"fn,omitempty"`
	K       int     `json:"k"`
	Eps     float64 `json:"eps,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// jobView mirrors the fields of dlra-serve's job resource the generator
// consumes.
type jobView struct {
	ID         uint64 `json:"id"`
	State      string `json:"state"`
	Error      string `json:"error"`
	Words      int64  `json:"words"`
	QueueNS    int64  `json:"queue_ns"`
	BindNS     int64  `json:"bind_ns"`
	ProtocolNS int64  `json:"protocol_ns"`
	TeardownNS int64  `json:"teardown_ns"`
}

// measurement is one output record, shaped exactly like
// cmd/dlra-benchjson's Measurement so reports merge with BENCH
// snapshots.
type measurement struct {
	Op         string             `json:"op"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// sample is one completed job's latency decomposition.
type sample struct {
	total                          time.Duration
	queue, bind, protocol, teardow time.Duration
	words                          int64
}

type atomicInt struct {
	mu sync.Mutex
	n  int
}

func (a *atomicInt) Add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomicInt) Load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

type loadgen struct {
	base   string
	client *http.Client
	spec   submitRequest
	errs   atomicInt
	// rejected counts submissions the server refused with 429 (queue
	// full) — back-pressure working as designed, reported separately
	// from errors and never failing the run.
	rejected atomicInt
}

// waitReady polls /healthz until the server answers (it may still be
// installing the dataset when loadgen starts).
func (lg *loadgen) waitReady(d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := lg.client.Get(lg.base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s: %v", lg.base, d, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runJob submits one job and polls it to a terminal state, returning
// the end-to-end latency sample. A non-done terminal state or transport
// error counts toward lg.errs and returns ok=false.
func (lg *loadgen) runJob() (sample, bool) {
	start := time.Now()
	body, _ := json.Marshal(lg.spec)
	resp, err := lg.client.Post(lg.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		lg.errs.Add(1)
		return sample{}, false
	}
	var v jobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		// The admission queue pushed back (429 + Retry-After): the job
		// was never accepted, so it is a rejection, not an error.
		lg.rejected.Add(1)
		return sample{}, false
	}
	if err != nil || resp.StatusCode != http.StatusAccepted {
		lg.errs.Add(1)
		return sample{}, false
	}
	url := fmt.Sprintf("%s/v1/jobs/%d", lg.base, v.ID)
	wait := time.Millisecond
	for v.State != "done" && v.State != "canceled" {
		time.Sleep(wait)
		if wait < 16*time.Millisecond {
			wait *= 2
		}
		resp, err := lg.client.Get(url)
		if err != nil {
			lg.errs.Add(1)
			return sample{}, false
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lg.errs.Add(1)
			return sample{}, false
		}
	}
	if v.State != "done" || v.Error != "" {
		lg.errs.Add(1)
		return sample{}, false
	}
	return sample{
		total:    time.Since(start),
		queue:    time.Duration(v.QueueNS),
		bind:     time.Duration(v.BindNS),
		protocol: time.Duration(v.ProtocolNS),
		teardow:  time.Duration(v.TeardownNS),
		words:    v.Words,
	}, true
}

// result aggregates one loop's samples.
type result struct {
	samples []sample
	elapsed time.Duration
}

// closedLoop keeps conc workers saturated until total jobs completed.
func (lg *loadgen) closedLoop(conc, total int) result {
	if conc < 1 {
		conc = 1
	}
	start := time.Now()
	var mu sync.Mutex
	var samples []sample
	next := &atomicInt{}
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.mu.Lock()
				if next.n >= total {
					next.mu.Unlock()
					return
				}
				next.n++
				next.mu.Unlock()
				if s, ok := lg.runJob(); ok {
					mu.Lock()
					samples = append(samples, s)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return result{samples: samples, elapsed: time.Since(start)}
}

// openLoop fires arrivals on a fixed schedule at qps for d, then waits
// for every in-flight job to land.
func (lg *loadgen) openLoop(qps float64, d time.Duration) result {
	if qps <= 0 {
		qps = 1
	}
	interval := time.Duration(float64(time.Second) / qps)
	start := time.Now()
	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	tick := time.NewTicker(interval)
	defer tick.Stop()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		<-tick.C
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s, ok := lg.runJob(); ok {
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return result{samples: samples, elapsed: time.Since(start)}
}

// record renders the loop's latency histogram as one benchjson-shaped
// measurement: ns_per_op is the mean end-to-end latency, the histogram
// quantiles and the per-phase means land in metrics.
func (r result) record(op string, extra map[string]float64) measurement {
	n := len(r.samples)
	m := measurement{Op: op, Iterations: int64(n)}
	met := map[string]float64{
		"gomaxprocs": float64(runtime.GOMAXPROCS(0)),
		"completed":  float64(n),
	}
	for k, v := range extra {
		met[k] = v
	}
	if r.elapsed > 0 {
		met["jobs/sec"] = float64(n) / r.elapsed.Seconds()
	}
	if n > 0 {
		lat := make([]float64, n)
		var tot, qu, bi, pr, te, words float64
		for i, s := range r.samples {
			lat[i] = float64(s.total)
			tot += float64(s.total)
			qu += float64(s.queue)
			bi += float64(s.bind)
			pr += float64(s.protocol)
			te += float64(s.teardow)
			words += float64(s.words)
		}
		sort.Float64s(lat)
		m.NsPerOp = tot / float64(n)
		met["p50_ns"] = quantile(lat, 0.50)
		met["p95_ns"] = quantile(lat, 0.95)
		met["p99_ns"] = quantile(lat, 0.99)
		met["max_ns"] = lat[n-1]
		met["queue_ns_mean"] = qu / float64(n)
		met["bind_ns_mean"] = bi / float64(n)
		met["protocol_ns_mean"] = pr / float64(n)
		met["teardown_ns_mean"] = te / float64(n)
		met["words/job"] = words / float64(n)
	}
	m.Metrics = met
	return m
}

// String renders the human-readable one-liner for the log.
func (r result) String() string {
	n := len(r.samples)
	if n == 0 {
		return fmt.Sprintf("0 jobs completed in %s", r.elapsed.Round(time.Millisecond))
	}
	lat := make([]float64, n)
	for i, s := range r.samples {
		lat[i] = float64(s.total)
	}
	sort.Float64s(lat)
	return fmt.Sprintf("%d jobs in %s (%.1f jobs/sec) p50=%s p95=%s p99=%s",
		n, r.elapsed.Round(time.Millisecond), float64(n)/r.elapsed.Seconds(),
		time.Duration(quantile(lat, 0.50)).Round(10*time.Microsecond),
		time.Duration(quantile(lat, 0.95)).Round(10*time.Microsecond),
		time.Duration(quantile(lat, 0.99)).Round(10*time.Microsecond))
}

// quantile reads the q-quantile from an ascending-sorted sample set
// (nearest-rank; the same convention benchstat-style tools use for
// small n).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeMetrics parses the server's Prometheus text exposition into a
// flat name → value map (labels are not used by dlra-serve's counters).
func (lg *loadgen) scrapeMetrics() (map[string]float64, error) {
	resp, err := lg.client.Get(lg.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	out := make(map[string]float64)
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, nil
}

// assertMembershipMetrics fails the run when the server's /metrics is
// missing the membership series — the scrape gate for the failover
// telemetry (`make smoke-loadgen` runs through here).
func assertMembershipMetrics(m map[string]float64) error {
	for _, name := range []string{
		"dlra_workers_active",
		"dlra_workers_suspect",
		"dlra_worker_failovers_total",
		"dlra_heartbeat_rtt_seconds_sum",
		"dlra_heartbeat_rtt_seconds_count",
	} {
		if _, ok := m[name]; !ok {
			return fmt.Errorf("missing membership metric %s", name)
		}
	}
	return nil
}

// metricsDelta subtracts the before-scrape from the after-scrape
// (gauges land as their after value minus before, which for queue
// depth at idle is 0).
func metricsDelta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}

// writeReport writes the records as indented JSON and re-reads the file
// to prove the report is well-formed — the smoke gate depends on a
// truncated or malformed write failing loudly.
func writeReport(path string, records []measurement) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	back, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var check []measurement
	if err := json.Unmarshal(back, &check); err != nil {
		return fmt.Errorf("report %s does not round-trip: %w", path, err)
	}
	if len(check) != len(records) {
		return fmt.Errorf("report %s lost records (%d of %d)", path, len(check), len(records))
	}
	return nil
}
