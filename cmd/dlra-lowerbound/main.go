// Command dlra-lowerbound runs the paper's Section VII hardness reductions
// on batches of random promise instances and reports their accuracy —
// the executable evidence that relative-error distributed PCA would solve
// communication problems with known Ω(·) lower bounds.
//
// Usage:
//
//	dlra-lowerbound [-theorem 4|6|8|all] [-trials N] [-k K] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/lowerbound"
)

func main() {
	theorem := flag.String("theorem", "all", "which reduction to run: 4, 6, 8 or all")
	trials := flag.Int("trials", 50, "random promise instances per configuration")
	k := flag.Int("k", 3, "rank parameter handed to the PCA oracle")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	switch *theorem {
	case "4":
		runTheorem4(*trials, *k, *seed)
	case "6":
		runTheorem6(*trials, *k, *seed)
	case "8":
		runTheorem8(*trials, *k, *seed)
	case "all":
		runTheorem8(*trials, *k, *seed)
		runTheorem6(*trials, *k, *seed)
		runTheorem4(*trials, *k, *seed)
	default:
		log.Fatalf("dlra-lowerbound: unknown theorem %q", *theorem)
	}
}

func runTheorem8(trials, k int, seed int64) {
	fmt.Printf("Theorem 8 — GHD ⇒ Ω(1/ε²) bits for relative error (k=%d, %d trials)\n", k, trials)
	correct := 0
	for i := 0; i < trials; i++ {
		pos := i%2 == 0
		inst, err := lowerbound.NewGHDInstance(0.25, pos, 4, seed+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		got, err := lowerbound.SolveGHD(inst, k, lowerbound.ExactOracle)
		if err != nil {
			log.Fatal(err)
		}
		if got == pos {
			correct++
		}
	}
	fmt.Printf("  decided %d/%d promise instances correctly\n\n", correct, trials)
}

func runTheorem6(trials, k int, seed int64) {
	if k < 2 {
		k = 2
	}
	fmt.Printf("Theorem 6 — 2-DISJ ⇒ Ω̃(nd) bits for max/Huber (k=%d, %d trials)\n", k, trials)
	for _, comb := range []lowerbound.Combine{lowerbound.CombineMax, lowerbound.CombineHuber} {
		name := "max"
		if comb == lowerbound.CombineHuber {
			name = "huber"
		}
		correct, shellTotal := 0, 0
		for i := 0; i < trials; i++ {
			intersects := i%2 == 0
			inst := lowerbound.NewDisjInstance(16, 4, 0.12, intersects, seed+int64(i))
			got, shell, err := lowerbound.SolveDisj(inst, k, comb, lowerbound.ExactOracle)
			if err != nil {
				log.Fatal(err)
			}
			shellTotal += shell
			if got == intersects {
				correct++
			}
		}
		fmt.Printf("  f=%-5s: %d/%d correct, %.1f shell words/instance\n",
			name, correct, trials, float64(shellTotal)/float64(trials))
	}
	fmt.Println()
}

func runTheorem4(trials, k int, seed int64) {
	p := 2.0
	n, d := 12, 4
	B := lowerbound.TheoremB(0.5, n, d, p)
	fmt.Printf("Theorem 4 — L∞ ⇒ Ω̃((1+ε)^{-2/p}n^{1-1/p}d^{1-4/p}) bits for |x|^p (p=%g, B=%d, k=%d, %d trials)\n",
		p, B, k, trials)
	correct, shellTotal := 0, 0
	for i := 0; i < trials; i++ {
		far := i%2 == 0
		inst := lowerbound.NewLInfInstance(n, d, B, far, seed+int64(i))
		got, shell, err := lowerbound.SolveLInf(inst, k, p, lowerbound.ExactOracle)
		if err != nil {
			log.Fatal(err)
		}
		shellTotal += shell
		if got == far {
			correct++
		}
	}
	fmt.Printf("  decided %d/%d correctly, %.1f shell words/instance\n\n",
		correct, trials, float64(shellTotal)/float64(trials))
}
