// Command dlra-pca runs the distributed additive-error PCA protocol on a
// matrix file: the matrix is partitioned across servers, the requested
// entrywise function is applied to the implicit sum, and the rank-k
// projection basis is written out together with error and communication
// statistics.
//
// Usage:
//
//	dlra-pca -input data.csv -k 10 [-servers 10] [-fn identity|huber:K|gm:P|l1l2|fair:C|cosine]
//	         [-partition row|arbitrary] [-rows R] [-eps E] [-boost B]
//	         [-output basis.csv] [-seed S] [-backend auto|dense|csr|fast]
//	         [-transport mem|tcp] [-tcp-listen 127.0.0.1:0] [-tcp-spawn=true]
//	         [-sweep-rows 16,32,64]
//
// With -transport mem (the default) every server is a goroutine in this
// process over the in-memory transport. With -transport tcp the process
// becomes the coordinator of a real multi-process cluster: it listens on
// -tcp-listen, spawns s−1 worker OS processes by re-executing itself (or
// waits for external cmd/dlra-worker processes when -tcp-spawn=false),
// ships each worker its share as setup traffic, and runs the identical
// protocol over length-prefixed typed frames — for a fixed seed the word
// ledger is identical between the two transports.
//
// -sweep-rows runs the protocol once per requested sample count r on the
// same cluster, printing one summary line per cell — a small-scale sweep.
//
// The input is CSV (or the binary .bin format of internal/matio). With
// -fn gm:P the matrix entries are treated as raw values each server
// contributes; with -partition arbitrary every entry is split into noisy
// additive shares (the hardest regime).
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/matio"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/robust"
)

func main() {
	input := flag.String("input", "", "input matrix file (CSV or .bin)")
	output := flag.String("output", "", "write the d×k projection basis here (optional)")
	k := flag.Int("k", 10, "target rank")
	servers := flag.Int("servers", 10, "number of servers")
	fnSpec := flag.String("fn", "identity", "entrywise function: identity, huber:K, gm:P, l1l2, fair:C, abspow:P")
	partition := flag.String("partition", "row", "how the matrix is split: row or arbitrary")
	rows := flag.Int("rows", 0, "sampled rows r (0 = derive from k and eps)")
	eps := flag.Float64("eps", 0.1, "additive error parameter")
	boost := flag.Int("boost", 1, "success-probability boosting repetitions")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker pool size for the sampler's sketching phase (0 = one per CPU, 1 = sequential)")
	sparse := flag.Bool("sparse", false, "shorthand for -backend csr")
	backendFlag := flag.String("backend", "auto", "share storage backend: auto (as built), dense, csr or fast (identical results; csr and fast pay O(nnz) per row)")
	transport := flag.String("transport", "mem", "fabric transport: mem (in-process) or tcp (multi-process cluster)")
	tcpListen := flag.String("tcp-listen", "127.0.0.1:0", "coordinator listen address for -transport tcp")
	tcpSpawn := flag.Bool("tcp-spawn", true, "spawn s−1 worker processes by re-executing this binary (false: wait for external dlra-worker processes)")
	sweepRows := flag.String("sweep-rows", "", "comma-separated sample counts: run one protocol execution per r on the same cluster")
	appendSweep := flag.String("append-sweep", "", "comma-separated row counts: hold back their sum, install the prefix, then append each batch and re-query — exercising delta installation, warm sketch folding and fingerprint chaining")
	jobs := flag.Int("jobs", 0, "fire N concurrent queries through the job engine (per-job seeds derive from (seed, jobID)) and report throughput")
	jobConc := flag.Int("job-concurrency", 4, "engine runner pool size for -jobs")
	batch := flag.Int("batch", 0, "wire batch size for pipelined TCP frames (0 = unlimited per sequence, 1 = off, k = flush every k); never changes results or the ledger")
	workerJoin := flag.String("worker-join", "", "internal: run as a worker process joining the given coordinator address")
	flag.Parse()

	// Re-exec worker mode: this process hosts one server's share and
	// executes protocol ops until the coordinator shuts the cluster down.
	if *workerJoin != "" {
		if err := cli.JoinWorker(*workerJoin, cli.DefaultJoinWait, *batch); err != nil {
			log.Fatalf("dlra-pca (worker): %v", err)
		}
		return
	}

	if *input == "" {
		log.Fatal("dlra-pca: -input is required")
	}
	M, err := matio.Load(*input)
	if err != nil {
		log.Fatalf("dlra-pca: loading %s: %v", *input, err)
	}
	n, d := M.Dims()
	fmt.Printf("loaded %dx%d matrix from %s\n", n, d, *input)

	f, err := parseFunc(*fnSpec, *servers)
	if err != nil {
		log.Fatal(err)
	}

	var locals []*matrix.Dense
	switch *partition {
	case "row":
		locals = robust.RowPartition(M, *servers, *seed+1)
	case "arbitrary":
		locals = robust.ArbitraryPartition(M, *servers, *seed+1)
	default:
		log.Fatalf("dlra-pca: unknown partition %q", *partition)
	}
	// For GM the shares are the prepared power sums of the local views.
	if strings.HasPrefix(*fnSpec, "gm:") {
		p, _ := strconv.ParseFloat((*fnSpec)[3:], 64)
		for t := range locals {
			locals[t] = repro.PrepareGM(locals[t], p, *servers)
		}
	}

	// The storage backend is decided before installation: TCP workers
	// receive their shares once, in final form, as setup traffic.
	backend, err := matrix.ParseBackend(*backendFlag)
	if err != nil {
		log.Fatalf("dlra-pca: %v", err)
	}
	if *sparse && backend == matrix.BackendAuto {
		backend = matrix.BackendCSR
	}
	shares := matrix.AsMats(locals)
	if backend != matrix.BackendAuto {
		shares = backend.Apply(shares)
		var nnz int64
		for _, m := range locals {
			nnz += m.NNZ()
		}
		fmt.Printf("backend           : %s (share density %.2f%%)\n",
			backend, 100*float64(nnz)/(float64(len(shares))*float64(n)*float64(d)))
	}

	cluster, cleanup := connect(*transport, *servers, *tcpListen, *tcpSpawn, *batch)
	defer cleanup()

	opts := repro.Options{
		K: *k, Eps: *eps, Rows: *rows, Boost: *boost, Seed: *seed,
		Workers: parallel.Workers(*workers), BatchSize: *batch,
	}

	if *appendSweep != "" {
		// The sweep installs its own prefix dataset; shares built above are
		// unused (append-sweep always runs the as-partitioned backend).
		part := func(m *matrix.Dense) []*matrix.Dense {
			var ls []*matrix.Dense
			if *partition == "arbitrary" {
				ls = robust.ArbitraryPartition(m, *servers, *seed+1)
			} else {
				ls = robust.RowPartition(m, *servers, *seed+1)
			}
			if strings.HasPrefix(*fnSpec, "gm:") {
				p, _ := strconv.ParseFloat((*fnSpec)[3:], 64)
				for t := range ls {
					ls[t] = repro.PrepareGM(ls[t], p, *servers)
				}
			}
			return ls
		}
		runAppendSweep(cluster, f, opts, *appendSweep, M, part, *transport)
		return
	}

	if err := cluster.SetLocalMats(shares); err != nil {
		log.Fatal(err)
	}

	if *jobs > 0 {
		runJobs(cluster, f, opts, *jobs, *jobConc, *transport)
		return
	}
	if *sweepRows != "" {
		runSweep(cluster, f, opts, *sweepRows, *transport)
		return
	}

	res, err := cluster.PCA(context.Background(), f, opts)
	if err != nil {
		log.Fatal(err)
	}

	A, err := cluster.ImplicitMatrix(f)
	if err != nil {
		log.Fatal(err)
	}
	got := repro.ProjectionError2(A, res.Projection)
	opt := repro.BestRankKError2(A, *k)
	total := A.FrobNorm2()

	fmt.Printf("function          : %s\n", f.Name())
	fmt.Printf("servers           : %d (%s partition, %s transport)\n", *servers, *partition, *transport)
	fmt.Printf("rows sampled      : %d\n", len(res.SampledRows))
	fmt.Printf("‖A−AP‖²_F         : %.6g\n", got)
	fmt.Printf("‖A−[A]_k‖²_F      : %.6g\n", opt)
	fmt.Printf("additive error    : %.3e of ‖A‖²_F\n", (got-opt)/total)
	if opt > 0 {
		fmt.Printf("relative error    : %.4f\n", got/opt)
	}
	fmt.Printf("communication     : %d words (%d bytes on the wire)\n", res.Words, res.Bytes)
	fmt.Println("breakdown:")
	for tag, words := range res.Breakdown {
		fmt.Printf("  %-26s %d\n", tag, words)
	}

	if *output != "" {
		if err := matio.Save(*output, res.Basis); err != nil {
			log.Fatalf("dlra-pca: writing %s: %v", *output, err)
		}
		fmt.Printf("wrote %dx%d projection basis to %s\n", d, *k, *output)
	}
}

// connect builds the requested cluster fabric and returns it with a
// cleanup function (worker shutdown for tcp).
func connect(transport string, servers int, listen string, spawn bool, batch int) (*repro.Cluster, func()) {
	c, cleanup, err := cli.Connect(context.Background(), transport, servers, listen, spawn, batch, func(addr string, spawned int) {
		if spawned > 0 {
			fmt.Printf("coordinator       : %s (%d worker processes spawned)\n", addr, spawned)
		} else {
			fmt.Printf("coordinator       : %s (waiting for %d external dlra-worker processes)\n", addr, servers-1)
		}
	})
	if err != nil {
		log.Fatalf("dlra-pca: %v", err)
	}
	return c, cleanup
}

// runJobs fires n concurrent queries through the job engine — each in its
// own comm session against the shared installed shares — and reports
// per-job summaries plus aggregate throughput.
func runJobs(cluster *repro.Cluster, f repro.Func, opts repro.Options, n, conc int, transport string) {
	if err := cluster.ConfigureEngine(repro.EngineConfig{MaxConcurrent: conc, QueueDepth: n}); err != nil {
		log.Fatal(err)
	}
	handles := make([]*repro.Job, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		j, err := cluster.Submit(context.Background(), f, opts)
		if err != nil {
			log.Fatalf("dlra-pca: submitting job %d: %v", i+1, err)
		}
		handles = append(handles, j)
	}
	fmt.Printf("jobs (%s transport, %d concurrent sessions):\n", transport, conc)
	fmt.Printf("  %-5s %-8s %-10s %-10s %s\n", "job", "rows", "words", "bytes", "proj-fp")
	var totalWords int64
	for _, j := range handles {
		res, err := j.Wait(context.Background())
		if err != nil {
			log.Fatalf("dlra-pca: job %d: %v", j.ID(), err)
		}
		totalWords += res.Words
		fmt.Printf("  %-5d %-8d %-10d %-10d %016x\n",
			res.JobID, len(res.SampledRows), res.Words, res.Bytes, projFingerprint(res.Projection))
	}
	elapsed := time.Since(start)
	fmt.Printf("completed %d jobs in %.3fs — %.2f jobs/sec, %d words total\n",
		n, elapsed.Seconds(), float64(n)/elapsed.Seconds(), totalWords)
	fmt.Printf("failovers         : %d\n", cluster.MembershipStats().Failovers)
}

// projFingerprint hashes a projection matrix entrywise — FNV-1a over the
// raw float bits in row-major order. The per-job table prints it so a
// chaos run (worker killed mid-job, replacement rejoins) can be diffed
// against an undisturbed run for bit-identity without shipping matrices.
func projFingerprint(p *repro.Matrix) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	r, c := p.Dims()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.At(i, j)))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// runSweep executes one protocol run per requested r on the shared
// cluster — a small-scale sweep with one summary line per cell.
func runSweep(cluster *repro.Cluster, f repro.Func, opts repro.Options, spec, transport string) {
	var rs []int
	for _, part := range strings.Split(spec, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r < 1 {
			log.Fatalf("dlra-pca: bad -sweep-rows entry %q", part)
		}
		rs = append(rs, r)
	}
	A, err := cluster.ImplicitMatrix(f)
	if err != nil {
		log.Fatal(err)
	}
	opt := repro.BestRankKError2(A, opts.K)
	total := A.FrobNorm2()
	fmt.Printf("sweep (%s transport): %-6s %-12s %-10s %-10s %s\n", transport, "r", "additive", "relative", "words", "bytes")
	for _, r := range rs {
		cell := opts
		cell.Rows = r
		res, err := cluster.PCA(context.Background(), f, cell)
		if err != nil {
			log.Fatalf("dlra-pca: sweep cell r=%d: %v", r, err)
		}
		got := repro.ProjectionError2(A, res.Projection)
		rel := 0.0
		if opt > 0 {
			rel = got / opt
		}
		fmt.Printf("                      %-6d %-12.4e %-10.4f %-10d %d\n",
			r, (got-opt)/total, rel, res.Words, res.Bytes)
	}
}

// runAppendSweep exercises the incremental-maintenance path end to end on
// a live cluster: install a prefix of the matrix as its own dataset,
// query it, then append the held-back row batches one at a time — each
// append ships only the delta rows — re-querying after every batch.
// Afterwards the full matrix is re-installed under the same dataset id:
// by fingerprint chaining that must be a cache hit, or the run fails.
func runAppendSweep(cl *repro.Cluster, f repro.Func, opts repro.Options, spec string,
	M *matrix.Dense, part func(*matrix.Dense) []*matrix.Dense, transport string) {
	var batches []int
	hold := 0
	for _, p := range strings.Split(spec, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || b < 1 {
			log.Fatalf("dlra-pca: bad -append-sweep entry %q", p)
		}
		batches = append(batches, b)
		hold += b
	}
	n, d := M.Dims()
	if hold >= n {
		log.Fatalf("dlra-pca: -append-sweep holds back %d rows, input has only %d", hold, n)
	}
	rowsOf := func(lo, hi int) *matrix.Dense {
		rr := make([][]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rr = append(rr, M.Row(i))
		}
		return matrix.FromRows(rr)
	}

	const id = "append-sweep"
	ctx := context.Background()
	base := n - hold
	shares := part(rowsOf(0, base))
	if err := cl.InstallDataset(ctx, id, matrix.AsMats(shares)); err != nil {
		log.Fatal(err)
	}
	opts.Dataset = id
	finals := matrix.AsMats(shares) // grown alongside the appends, for the final re-install

	fmt.Printf("append sweep (%s transport): %-8s %-8s %-10s %-12s %s\n",
		transport, "rows", "delta", "words", "delta-words", "warm hit/miss/folded")
	query := func(label string, delta int) {
		before := cl.Breakdown()[deltaAppendTag]
		res, err := cl.PCA(ctx, f, opts)
		if err != nil {
			log.Fatalf("dlra-pca: append-sweep query at %d rows: %v", base, err)
		}
		ws, err := cl.WarmStats(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("                            %-8s %-8d %-10d %-12d %d/%d/%d\n",
			label, delta, res.Words, cl.Breakdown()[deltaAppendTag]-before, ws.Hits, ws.Misses, ws.FoldedRows)
	}
	query(fmt.Sprintf("%d", base), 0)
	for _, b := range batches {
		delta := part(rowsOf(base, base+b))
		if err := cl.AppendRows(ctx, id, matrix.AsMats(delta)); err != nil {
			log.Fatalf("dlra-pca: appending %d rows: %v", b, err)
		}
		for t := range finals {
			nm, err := matrix.AppendRows(finals[t], delta[t])
			if err != nil {
				log.Fatal(err)
			}
			finals[t] = nm
		}
		base += b
		query(fmt.Sprintf("%d", base), b)
	}
	if tot := cl.Breakdown()[deltaAppendTag]; tot > 0 {
		fmt.Printf("delta traffic             : %d words under %q for %d appended rows (d=%d)\n",
			tot, deltaAppendTag, hold, d)
	}
	// Fingerprint chain check: re-installing the final content under the
	// same id must be recognized as already resident — a conflict here
	// means the chained fingerprint diverged from the real content hash.
	if err := cl.InstallDataset(ctx, id, finals); err != nil {
		log.Fatalf("dlra-pca: fingerprint chain broken — re-install of the final matrix was not a cache hit: %v", err)
	}
	fmt.Println("fingerprint chain ok      : re-install of the final matrix was a cache hit")
}

// deltaAppendTag is the ledger tag AppendRows charges delta traffic under
// (mirrors the repro package's internal constant).
const deltaAppendTag = "delta/append"

func parseFunc(spec string, servers int) (repro.Func, error) {
	switch {
	case spec == "identity":
		return repro.Identity(), nil
	case spec == "l1l2":
		return repro.L1L2(), nil
	case spec == "cosine":
		return repro.Cosine(), nil
	case strings.HasPrefix(spec, "huber:"):
		v, err := strconv.ParseFloat(spec[6:], 64)
		if err != nil || v <= 0 {
			return repro.Func{}, fmt.Errorf("dlra-pca: bad huber threshold %q", spec)
		}
		return repro.Huber(v), nil
	case strings.HasPrefix(spec, "gm:"):
		v, err := strconv.ParseFloat(spec[3:], 64)
		if err != nil || v < 1 {
			return repro.Func{}, fmt.Errorf("dlra-pca: bad GM exponent %q", spec)
		}
		return repro.SoftmaxGM(v), nil
	case strings.HasPrefix(spec, "fair:"):
		v, err := strconv.ParseFloat(spec[5:], 64)
		if err != nil || v <= 0 {
			return repro.Func{}, fmt.Errorf("dlra-pca: bad fair scale %q", spec)
		}
		return repro.Fair(v), nil
	case strings.HasPrefix(spec, "abspow:"):
		v, err := strconv.ParseFloat(spec[7:], 64)
		if err != nil || v <= 0 || v > 1 {
			return repro.Func{}, fmt.Errorf("dlra-pca: bad abspow exponent %q (need 0<p≤1 for property P)", spec)
		}
		return repro.AbsPower(v), nil
	default:
		return repro.Func{}, fmt.Errorf("dlra-pca: unknown function %q", spec)
	}
}
