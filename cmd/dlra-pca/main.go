// Command dlra-pca runs the distributed additive-error PCA protocol on a
// matrix file: the matrix is partitioned across simulated servers, the
// requested entrywise function is applied to the implicit sum, and the
// rank-k projection basis is written out together with error and
// communication statistics.
//
// Usage:
//
//	dlra-pca -input data.csv -k 10 [-servers 10] [-fn identity|huber:K|gm:P|l1l2|fair:C|cosine]
//	         [-partition row|arbitrary] [-rows R] [-eps E] [-boost B]
//	         [-output basis.csv] [-seed S] [-sparse]
//
// The input is CSV (or the binary .bin format of internal/matio). With
// -fn gm:P the matrix entries are treated as raw values each server
// contributes; with -partition arbitrary every entry is split into noisy
// additive shares (the hardest regime).
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro"
	"repro/internal/matio"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/robust"
)

func main() {
	input := flag.String("input", "", "input matrix file (CSV or .bin)")
	output := flag.String("output", "", "write the d×k projection basis here (optional)")
	k := flag.Int("k", 10, "target rank")
	servers := flag.Int("servers", 10, "number of simulated servers")
	fnSpec := flag.String("fn", "identity", "entrywise function: identity, huber:K, gm:P, l1l2, fair:C, abspow:P")
	partition := flag.String("partition", "row", "how the matrix is split: row or arbitrary")
	rows := flag.Int("rows", 0, "sampled rows r (0 = derive from k and eps)")
	eps := flag.Float64("eps", 0.1, "additive error parameter")
	boost := flag.Int("boost", 1, "success-probability boosting repetitions")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "worker pool size for the sampler's sketching phase (0 = one per CPU, 1 = sequential)")
	sparse := flag.Bool("sparse", false, "store the per-server shares as sparse CSR rows (identical results, O(nnz) hot paths)")
	flag.Parse()

	if *input == "" {
		log.Fatal("dlra-pca: -input is required")
	}
	M, err := matio.Load(*input)
	if err != nil {
		log.Fatalf("dlra-pca: loading %s: %v", *input, err)
	}
	n, d := M.Dims()
	fmt.Printf("loaded %dx%d matrix from %s\n", n, d, *input)

	f, err := parseFunc(*fnSpec, *servers)
	if err != nil {
		log.Fatal(err)
	}

	var locals []*matrix.Dense
	switch *partition {
	case "row":
		locals = robust.RowPartition(M, *servers, *seed+1)
	case "arbitrary":
		locals = robust.ArbitraryPartition(M, *servers, *seed+1)
	default:
		log.Fatalf("dlra-pca: unknown partition %q", *partition)
	}
	// For GM the shares are the prepared power sums of the local views.
	if strings.HasPrefix(*fnSpec, "gm:") {
		p, _ := strconv.ParseFloat((*fnSpec)[3:], 64)
		for t := range locals {
			locals[t] = repro.PrepareGM(locals[t], p, *servers)
		}
	}

	backend := repro.BackendAuto
	if *sparse {
		backend = repro.BackendCSR
		var nnz int64
		for _, m := range locals {
			nnz += m.NNZ()
		}
		fmt.Printf("backend           : csr (share density %.2f%%)\n",
			100*float64(nnz)/(float64(len(locals))*float64(n)*float64(d)))
	}

	cluster := repro.NewCluster(*servers)
	if err := cluster.SetLocalData(locals); err != nil {
		log.Fatal(err)
	}
	res, err := cluster.PCA(f, repro.Options{
		K: *k, Eps: *eps, Rows: *rows, Boost: *boost, Seed: *seed,
		Workers: parallel.Workers(*workers), Backend: backend,
	})
	if err != nil {
		log.Fatal(err)
	}

	A, err := cluster.ImplicitMatrix(f)
	if err != nil {
		log.Fatal(err)
	}
	got := repro.ProjectionError2(A, res.Projection)
	opt := repro.BestRankKError2(A, *k)
	total := A.FrobNorm2()

	fmt.Printf("function          : %s\n", f.Name())
	fmt.Printf("servers           : %d (%s partition)\n", *servers, *partition)
	fmt.Printf("rows sampled      : %d\n", len(res.SampledRows))
	fmt.Printf("‖A−AP‖²_F         : %.6g\n", got)
	fmt.Printf("‖A−[A]_k‖²_F      : %.6g\n", opt)
	fmt.Printf("additive error    : %.3e of ‖A‖²_F\n", (got-opt)/total)
	if opt > 0 {
		fmt.Printf("relative error    : %.4f\n", got/opt)
	}
	fmt.Printf("communication     : %d words\n", res.Words)
	fmt.Println("breakdown:")
	for tag, words := range res.Breakdown {
		fmt.Printf("  %-26s %d\n", tag, words)
	}

	if *output != "" {
		if err := matio.Save(*output, res.Basis); err != nil {
			log.Fatalf("dlra-pca: writing %s: %v", *output, err)
		}
		fmt.Printf("wrote %dx%d projection basis to %s\n", d, *k, *output)
	}
}

func parseFunc(spec string, servers int) (repro.Func, error) {
	switch {
	case spec == "identity":
		return repro.Identity(), nil
	case spec == "l1l2":
		return repro.L1L2(), nil
	case spec == "cosine":
		return repro.Cosine(), nil
	case strings.HasPrefix(spec, "huber:"):
		v, err := strconv.ParseFloat(spec[6:], 64)
		if err != nil || v <= 0 {
			return repro.Func{}, fmt.Errorf("dlra-pca: bad huber threshold %q", spec)
		}
		return repro.Huber(v), nil
	case strings.HasPrefix(spec, "gm:"):
		v, err := strconv.ParseFloat(spec[3:], 64)
		if err != nil || v < 1 {
			return repro.Func{}, fmt.Errorf("dlra-pca: bad GM exponent %q", spec)
		}
		return repro.SoftmaxGM(v), nil
	case strings.HasPrefix(spec, "fair:"):
		v, err := strconv.ParseFloat(spec[5:], 64)
		if err != nil || v <= 0 {
			return repro.Func{}, fmt.Errorf("dlra-pca: bad fair scale %q", spec)
		}
		return repro.Fair(v), nil
	case strings.HasPrefix(spec, "abspow:"):
		v, err := strconv.ParseFloat(spec[7:], 64)
		if err != nil || v <= 0 || v > 1 {
			return repro.Func{}, fmt.Errorf("dlra-pca: bad abspow exponent %q (need 0<p≤1 for property P)", spec)
		}
		return repro.AbsPower(v), nil
	default:
		return repro.Func{}, fmt.Errorf("dlra-pca: unknown function %q", spec)
	}
}
