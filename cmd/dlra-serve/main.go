// Command dlra-serve is the HTTP front door of a live distributed
// low-rank cluster: it loads one or more datasets, partitions them across
// the servers, installs the shares once, and then serves PCA queries as
// jobs on the multi-tenant engine — many concurrent queries multiplexed
// over the same persistent workers and the same installed shares, the way
// the paper amortizes one round of setup across many downstream queries.
//
// Usage:
//
//	dlra-serve -input data.csv [-input more.bin] [-addr 127.0.0.1:8080]
//	           [-servers 10] [-partition row|arbitrary] [-seed S]
//	           [-transport mem|tcp] [-tcp-listen 127.0.0.1:0]
//	           [-max-concurrent 4] [-queue-depth 64] [-smoke N]
//
// API:
//
//	GET  /healthz               → {"status":"ok"}
//	GET  /v1/datasets           → installed datasets (current row count,
//	                              chained fingerprint, appended rows and
//	                              last-append time per dataset)
//	POST /v1/datasets/{id}/append → append implicit-matrix rows
//	                              {"rows":[[…],…]}: the server partitions
//	                              the delta exactly as the original matrix
//	                              and ships only it (charged under
//	                              "delta/append"). 404 for unknown ids,
//	                              with the same error envelope as jobs
//	GET  /v1/jobs               → all jobs with states
//	POST /v1/jobs               → submit {"dataset","fn","k","eps","rows","boost","seed"}
//	GET  /v1/jobs/{id}          → one job's state: live protocol progress
//	                              (rounds, phase, words) while running, the
//	                              ledger once done
//	GET  /v1/jobs/{id}/result   → basis, sampled rows, per-phase words
//	DELETE /v1/jobs/{id}        → cancel the job — a true mid-run abort: a
//	                              running job stops before its next protocol
//	                              round. 409 with the terminal state when the
//	                              job already finished; 404 for unknown ids
//	                              (consistently across poll/result/cancel)
//
// With -transport tcp the process spawns s−1 worker OS processes by
// re-executing itself and drives them over loopback TCP — the protocol
// frames really cross process boundaries. -smoke N starts the server,
// submits N concurrent jobs to its own HTTP API, asserts every result,
// and exits — the self-contained deployment smoke test CI runs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/matio"
	"repro/internal/matrix"
	"repro/internal/robust"
)

func main() {
	var inputs inputList
	flag.Var(&inputs, "input", "input matrix file (CSV or .bin); repeatable — each becomes a dataset named after the file")
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	servers := flag.Int("servers", 4, "number of servers")
	partition := flag.String("partition", "row", "how each matrix is split: row or arbitrary")
	seed := flag.Int64("seed", 1, "partition seed")
	transport := flag.String("transport", "mem", "fabric transport: mem (in-process) or tcp (multi-process cluster)")
	tcpListen := flag.String("tcp-listen", "127.0.0.1:0", "coordinator listen address for -transport tcp")
	maxConc := flag.Int("max-concurrent", 4, "jobs running concurrently (each in its own session)")
	queueDepth := flag.Int("queue-depth", 64, "admission queue capacity before submits are rejected")
	smoke := flag.Int("smoke", 0, "self-test: submit N concurrent jobs over the HTTP API, assert results, exit")
	batch := flag.Int("batch", 0, "wire batch size for pipelined TCP frames (0 = unlimited per sequence, 1 = off, k = flush every k); never changes results or the ledger")
	workerJoin := flag.String("worker-join", "", "internal: run as a worker process joining the given coordinator address")
	flag.Parse()

	if *workerJoin != "" {
		if err := cli.JoinWorker(*workerJoin, cli.DefaultJoinWait, *batch); err != nil {
			log.Fatalf("dlra-serve (worker): %v", err)
		}
		return
	}
	if len(inputs) == 0 {
		log.Fatal("dlra-serve: at least one -input is required")
	}

	cluster, cleanup := connect(*transport, *servers, *tcpListen, *batch)
	defer cleanup()
	if err := cluster.ConfigureEngine(repro.EngineConfig{MaxConcurrent: *maxConc, QueueDepth: *queueDepth}); err != nil {
		log.Fatal(err)
	}

	for _, path := range inputs {
		M, err := matio.Load(path)
		if err != nil {
			log.Fatalf("dlra-serve: loading %s: %v", path, err)
		}
		var locals []*matrix.Dense
		switch *partition {
		case "row":
			locals = robust.RowPartition(M, *servers, *seed+1)
		case "arbitrary":
			locals = robust.ArbitraryPartition(M, *servers, *seed+1)
		default:
			log.Fatalf("dlra-serve: unknown partition %q", *partition)
		}
		id := datasetID(path)
		if err := cluster.InstallDataset(context.Background(), id, matrix.AsMats(locals)); err != nil {
			log.Fatalf("dlra-serve: installing %s: %v", id, err)
		}
		n, d := M.Dims()
		log.Printf("installed dataset %q (%dx%d across %d servers)", id, n, d, *servers)
	}

	srv := &server{cluster: cluster, batch: *batch, jobs: make(map[uint64]*jobRecord),
		partition: *partition, servers: *servers, seed: *seed}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dlra-serve: listen %s: %v", *addr, err)
	}
	log.Printf("dlra-serve listening on http://%s (%s transport, %d servers, %d concurrent jobs)",
		ln.Addr(), *transport, *servers, *maxConc)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go watchShutdown(sigc, srv, time.Minute, cleanup, os.Exit)

	if *smoke > 0 {
		go func() {
			if err := runSmoke(fmt.Sprintf("http://%s", ln.Addr()), *smoke); err != nil {
				log.Fatalf("dlra-serve: smoke failed: %v", err)
			}
			log.Printf("smoke ok: %d concurrent jobs completed", *smoke)
			cleanup()
			os.Exit(0)
		}()
	}
	log.Fatal(http.Serve(ln, srv.routes()))
}

// watchShutdown is the graceful-drain path: on SIGTERM (or ^C) the
// server refuses new submissions with 503, lets every queued and
// running job finish (bounded by grace), tears the cluster down, and
// exits 0 — 1 when the drain timed out with jobs still in flight. exit
// is a parameter so the drain sequence is testable in-process.
func watchShutdown(sigc <-chan os.Signal, s *server, grace time.Duration, cleanup func(), exit func(int)) {
	<-sigc
	log.Printf("dlra-serve: draining (no new jobs; waiting for %d running, %d queued)",
		s.cluster.EngineStats().Running, s.cluster.EngineStats().Queued)
	s.beginDrain()
	code := 0
	if !s.awaitIdle(grace) {
		log.Printf("dlra-serve: drain timed out after %v", grace)
		code = 1
	}
	cleanup()
	exit(code)
}

// inputList collects repeated -input flags.
type inputList []string

func (l *inputList) String() string     { return strings.Join(*l, ",") }
func (l *inputList) Set(v string) error { *l = append(*l, v); return nil }

// datasetID names a dataset after its file (sans directory and extension).
func datasetID(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// connect builds the requested cluster fabric and returns it with an
// idempotent cleanup function (worker shutdown for tcp).
func connect(transport string, servers int, listen string, batch int) (*repro.Cluster, func()) {
	c, cleanup, err := cli.Connect(context.Background(), transport, servers, listen, true, batch, func(addr string, spawned int) {
		log.Printf("coordinator on %s with %d worker processes", addr, spawned)
	})
	if err != nil {
		log.Fatalf("dlra-serve: %v", err)
	}
	return c, cleanup
}

// jobRecord pairs a live job handle with its submission spec for listings.
type jobRecord struct {
	job  *repro.Job
	spec submitRequest
}

// maxRetainedJobs bounds the finished jobs (and their results) the server
// keeps for polling; beyond it, the oldest finished records are evicted so
// a long-running service does not grow without bound. Queued and running
// jobs are never evicted.
const maxRetainedJobs = 1024

// server is the HTTP layer over the cluster's job engine.
type server struct {
	cluster *repro.Cluster
	batch   int // wire batch size applied to every submitted job
	// partition/servers/seed reproduce the installation-time share split,
	// so appended rows partition exactly as the original matrix did.
	partition string
	servers   int
	seed      int64
	// draining refuses new submissions with 503 while the engine winds
	// down after SIGTERM (see watchShutdown).
	draining atomic.Bool
	mu       sync.Mutex
	jobs     map[uint64]*jobRecord
	order    []uint64 // submission order, for eviction
}

// beginDrain stops job admission; every other route keeps serving so
// clients can poll their in-flight jobs to completion.
func (s *server) beginDrain() { s.draining.Store(true) }

// awaitIdle polls the engine until no job is queued or running, or the
// grace period elapses; reports whether the engine went idle.
func (s *server) awaitIdle(grace time.Duration) bool {
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		es := s.cluster.EngineStats()
		if es.Running == 0 && es.Queued == 0 {
			return true
		}
		time.Sleep(25 * time.Millisecond)
	}
	es := s.cluster.EngineStats()
	return es.Running == 0 && es.Queued == 0
}

// retain records a new job and evicts the oldest finished records beyond
// the retention bound. Callers hold s.mu.
func (s *server) retain(rec *jobRecord) {
	s.jobs[rec.job.ID()] = rec
	s.order = append(s.order, rec.job.ID())
	excess := len(s.jobs) - maxRetainedJobs
	kept := s.order[:0]
	for _, id := range s.order {
		old := s.jobs[id]
		if excess > 0 && old != nil {
			if st := old.job.State(); st == repro.JobDone || st == repro.JobCanceled {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Dataset string  `json:"dataset,omitempty"`
	Fn      string  `json:"fn,omitempty"` // identity, huber:K, gm:P, l1l2, fair:C, abspow:P, cosine
	K       int     `json:"k"`
	Eps     float64 `json:"eps,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	Boost   int     `json:"boost,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// jobView is the job state the API reports. Rounds/Phase/Words track the
// live protocol while the job runs (from Job.Progress), so polling
// clients watch the rounds advance; once done, Words/Bytes are the final
// per-job ledger.
type jobView struct {
	ID      uint64 `json:"id"`
	State   string `json:"state"`
	Dataset string `json:"dataset"`
	Fn      string `json:"fn"`
	K       int    `json:"k"`
	Rounds  int64  `json:"rounds,omitempty"`
	Phase   string `json:"phase,omitempty"`
	Words   int64  `json:"words,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	Error   string `json:"error,omitempty"`
	// Per-phase wall-clock breakdown (nanoseconds, from Job.Progress):
	// queue wait, session acquire/bind, protocol rounds, teardown.
	// Loadgen aggregates these to attribute latency to the engine vs the
	// protocol.
	QueueNS    int64 `json:"queue_ns,omitempty"`
	BindNS     int64 `json:"bind_ns,omitempty"`
	ProtocolNS int64 `json:"protocol_ns,omitempty"`
	TeardownNS int64 `json:"teardown_ns,omitempty"`
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/datasets", s.handleDatasets)
	mux.HandleFunc("/v1/datasets/", s.handleDatasetAppend)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// handleMetrics serves the engine and session-pool counters in
// Prometheus text exposition format (loadgen scrapes it between runs; a
// real Prometheus can too).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	es := s.cluster.EngineStats()
	ps := s.cluster.SessionPoolStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("dlra_jobs_submitted_total", "Jobs accepted into the admission queue.", es.Submitted)
	counter("dlra_jobs_done_total", "Jobs finished in the done state.", es.Done)
	counter("dlra_jobs_canceled_total", "Jobs finished in the canceled state.", es.Canceled)
	gauge("dlra_jobs_running", "Jobs currently executing.", int64(es.Running))
	gauge("dlra_queue_depth", "Jobs waiting in the admission queue.", int64(es.Queued))
	counter("dlra_session_pool_hits_total", "Jobs served by a pooled bound session.", ps.Hits)
	counter("dlra_session_pool_misses_total", "Jobs that minted and bound a fresh session.", ps.Misses)
	gauge("dlra_session_pool_idle", "Bound sessions currently parked in the pool.", int64(ps.Idle))
	ms := s.cluster.MembershipStats()
	gauge("dlra_workers_active", "Worker slots currently active.", int64(ms.Active))
	gauge("dlra_workers_suspect", "Worker slots currently suspected by the failure detector.", int64(ms.Suspect))
	counter("dlra_worker_failovers_total", "Dead worker slots re-placed by a replacement worker.", ms.Failovers)
	fmt.Fprintf(&b, "# HELP dlra_heartbeat_rtt_seconds Heartbeat round-trip time summary.\n"+
		"# TYPE dlra_heartbeat_rtt_seconds summary\n"+
		"dlra_heartbeat_rtt_seconds_sum %g\n"+
		"dlra_heartbeat_rtt_seconds_count %d\n",
		ms.HeartbeatRTTSum.Seconds(), ms.HeartbeatCount)
	io.WriteString(w, b.String())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Datasets())
}

// appendRequest is the POST /v1/datasets/{id}/append body: dense rows of
// the implicit matrix to append. The server partitions them across the
// cluster exactly as it partitioned the dataset at startup, then ships
// only the delta.
type appendRequest struct {
	Rows [][]float64 `json:"rows"`
}

// handleDatasetAppend serves POST /v1/datasets/{id}/append. Unknown
// datasets — like unknown jobs on poll/result/cancel — are 404 with the
// same error envelope.
func (s *server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/datasets/")
	id, ok := strings.CutSuffix(rest, "/append")
	if !ok || id == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such route %q", r.URL.Path))
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("append needs at least one row"))
		return
	}
	delta := matrix.FromRows(req.Rows)
	var locals []*matrix.Dense
	switch s.partition {
	case "arbitrary":
		locals = robust.ArbitraryPartition(delta, s.servers, s.seed+1)
	default:
		locals = robust.RowPartition(delta, s.servers, s.seed+1)
	}
	err := s.cluster.AppendRows(r.Context(), id, matrix.AsMats(locals))
	switch {
	case err == nil:
	case errors.Is(err, repro.ErrUnknownDataset):
		writeErr(w, http.StatusNotFound, err)
		return
	default:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	for _, info := range s.cluster.Datasets() {
		if info.ID == id {
			writeJSON(w, http.StatusOK, info)
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("no dataset %q", id))
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		views := make([]jobView, 0, len(s.jobs))
		for _, rec := range s.jobs {
			views = append(views, s.view(rec))
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, views)
	case http.MethodPost:
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, errors.New("server is draining"))
			return
		}
		var req submitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if req.Fn == "" {
			req.Fn = "identity"
		}
		f, err := parseFunc(req.Fn)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		// The job's lifetime belongs to the engine, not to this HTTP
		// request: submissions are asynchronous, so the request ctx must
		// not cancel the job when the client disconnects.
		job, err := s.cluster.Submit(context.Background(), f, repro.Options{
			Dataset: req.Dataset, K: req.K, Eps: req.Eps,
			Rows: req.Rows, Boost: req.Boost, Seed: req.Seed,
			BatchSize: s.batch,
		})
		if err != nil {
			code := http.StatusBadRequest
			if err == repro.ErrJobQueueFull {
				code = http.StatusTooManyRequests
				// The queue drains on protocol timescales: tell
				// well-behaved clients when to come back instead of
				// letting them hammer the admission path.
				w.Header().Set("Retry-After", "1")
			}
			writeErr(w, code, err)
			return
		}
		rec := &jobRecord{job: job, spec: req}
		s.mu.Lock()
		s.retain(rec)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, s.view(rec))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleJob serves /v1/jobs/{id} and /v1/jobs/{id}/result.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	wantResult := false
	if strings.HasSuffix(rest, "/result") {
		wantResult = true
		rest = strings.TrimSuffix(rest, "/result")
	}
	// Unknown ids — including unparseable ones — are 404 on every verb:
	// poll, result and cancel agree that a job that does not exist is not
	// found (not a bad request, not a silent success).
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %q", rest))
		return
	}
	s.mu.Lock()
	rec := s.jobs[id]
	s.mu.Unlock()
	if rec == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	switch {
	case r.Method == http.MethodDelete:
		// Cancel is a true abort: a queued job fails immediately, a
		// running one stops before its next protocol round. Only a job
		// that already reached a terminal state refuses, with 409 naming
		// that state.
		if rec.job.Cancel() {
			writeJSON(w, http.StatusOK, s.view(rec))
			return
		}
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job %d already finished", id),
			"state": rec.job.State().String(),
		})
	case r.Method != http.MethodGet:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	case !wantResult:
		writeJSON(w, http.StatusOK, s.view(rec))
	default:
		if st := rec.job.State(); st != repro.JobDone {
			writeErr(w, http.StatusConflict, fmt.Errorf("job %d is %s", id, st))
			return
		}
		res, err := rec.job.Wait(r.Context())
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		d, k := res.Basis.Rows(), res.Basis.Cols()
		writeJSON(w, http.StatusOK, map[string]any{
			"id": id, "dataset": rec.job.Dataset(),
			"basis_rows": d, "basis_cols": k, "basis": res.Basis.Data(),
			"sampled_rows": res.SampledRows,
			"words":        res.Words, "bytes": res.Bytes,
			"breakdown": res.Breakdown,
		})
	}
}

// view snapshots a job for the API: live protocol progress (rounds,
// phase, session words) while queued or running, the final ledger once
// done.
func (s *server) view(rec *jobRecord) jobView {
	p := rec.job.Progress()
	v := jobView{
		ID: rec.job.ID(), State: p.State.String(),
		Dataset: rec.job.Dataset(), Fn: rec.spec.Fn, K: rec.spec.K,
		Rounds: p.Rounds, Phase: p.Phase, Words: p.Words,
		QueueNS:    int64(p.Queue),
		BindNS:     int64(p.Bind),
		ProtocolNS: int64(p.Protocol),
		TeardownNS: int64(p.Teardown),
	}
	if p.State == repro.JobDone {
		if res, err := rec.job.Wait(context.Background()); err != nil {
			v.Error = err.Error()
		} else {
			v.Words, v.Bytes = res.Words, res.Bytes
		}
	}
	return v
}

func parseFunc(spec string) (repro.Func, error) {
	parseVal := func(prefix string) (float64, error) {
		return strconv.ParseFloat(spec[len(prefix):], 64)
	}
	switch {
	case spec == "identity":
		return repro.Identity(), nil
	case spec == "l1l2":
		return repro.L1L2(), nil
	case spec == "cosine":
		return repro.Cosine(), nil
	case strings.HasPrefix(spec, "huber:"):
		v, err := parseVal("huber:")
		if err != nil || v <= 0 {
			return repro.Func{}, fmt.Errorf("bad huber threshold %q", spec)
		}
		return repro.Huber(v), nil
	case strings.HasPrefix(spec, "gm:"):
		v, err := parseVal("gm:")
		if err != nil || v < 1 {
			return repro.Func{}, fmt.Errorf("bad GM exponent %q", spec)
		}
		return repro.SoftmaxGM(v), nil
	case strings.HasPrefix(spec, "fair:"):
		v, err := parseVal("fair:")
		if err != nil || v <= 0 {
			return repro.Func{}, fmt.Errorf("bad fair scale %q", spec)
		}
		return repro.Fair(v), nil
	case strings.HasPrefix(spec, "abspow:"):
		v, err := parseVal("abspow:")
		if err != nil || v <= 0 || v > 1 {
			return repro.Func{}, fmt.Errorf("bad abspow exponent %q (need 0<p≤1)", spec)
		}
		return repro.AbsPower(v), nil
	default:
		return repro.Func{}, fmt.Errorf("unknown function %q", spec)
	}
}

// runSmoke drives the server's own HTTP API end to end: submit n
// concurrent jobs, poll them to completion, fetch and sanity-check every
// result.
func runSmoke(base string, n int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		body, _ := json.Marshal(submitRequest{Fn: "identity", K: 3, Rows: 16, Seed: int64(100 + i)})
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("submit %d: HTTP %d (%s)", i, resp.StatusCode, v.Error)
		}
		ids[i] = v.ID
	}
	deadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("job %d did not finish in time", id)
			}
			resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/%d", base, id))
			if err != nil {
				return err
			}
			var v jobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if v.State == "done" {
				if v.Error != "" {
					return fmt.Errorf("job %d failed: %s", id, v.Error)
				}
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/%d/result", base, id))
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("result %d: HTTP %d: %s", id, resp.StatusCode, raw)
		}
		var res struct {
			BasisRows int   `json:"basis_rows"`
			BasisCols int   `json:"basis_cols"`
			Words     int64 `json:"words"`
		}
		if err := json.Unmarshal(raw, &res); err != nil {
			return fmt.Errorf("result %d: %w", id, err)
		}
		if res.BasisRows <= 0 || res.BasisCols != 3 || res.Words <= 0 {
			return fmt.Errorf("result %d implausible: %dx%d basis, %d words", id, res.BasisRows, res.BasisCols, res.Words)
		}
	}
	return nil
}
