package main

// HTTP-layer tests for the cancel/poll semantics: unknown job ids are 404
// on every verb, DELETE on a finished job is 409 naming the terminal
// state, DELETE on a live job is a true mid-run abort, and poll views
// expose the live protocol progress.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"repro"
)

// newTestServer boots a 2-server in-process cluster with one small
// dataset and wraps it in the HTTP layer.
func newTestServer(t *testing.T) (*httptest.Server, *repro.Cluster) {
	ts, cluster, _ := newTestServerFull(t)
	return ts, cluster
}

// newTestServerFull is newTestServer plus the *server handle, for tests
// that drive server-level machinery (the graceful drain) directly.
func newTestServerFull(t *testing.T) (*httptest.Server, *repro.Cluster, *server) {
	t.Helper()
	cluster, err := repro.New(2, repro.WithEngineConfig(repro.EngineConfig{MaxConcurrent: 2}))
	if err != nil {
		t.Fatal(err)
	}
	const n, d = 96, 8
	rng := rand.New(rand.NewSource(7))
	locals := make([]*repro.Matrix, 2)
	for i := range locals {
		locals[i] = repro.NewMatrix(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := float64(i%5) * float64(j+1)
			sh := rng.NormFloat64()
			locals[0].Set(i, j, sh)
			locals[1].Set(i, j, v-sh)
		}
	}
	if err := cluster.SetLocalData(locals); err != nil {
		t.Fatal(err)
	}
	srv := &server{cluster: cluster, jobs: make(map[uint64]*jobRecord)}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		ts.Close()
		cluster.Close()
	})
	return ts, cluster, srv
}

func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		raw, _ := json.Marshal(body)
		reader = bytes.NewReader(raw)
	} else {
		reader = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// TestUnknownJobIs404Everywhere: poll, result and cancel agree that a job
// that does not exist — numeric or garbage — is 404.
func TestUnknownJobIs404Everywhere(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/v1/jobs/999", "/v1/jobs/999/result", "/v1/jobs/notanid"} {
		if code, _ := doJSON(t, http.MethodGet, ts.URL+path, nil); code != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, code)
		}
	}
	for _, path := range []string{"/v1/jobs/999", "/v1/jobs/notanid"} {
		if code, _ := doJSON(t, http.MethodDelete, ts.URL+path, nil); code != http.StatusNotFound {
			t.Fatalf("DELETE %s: %d, want 404", path, code)
		}
	}
}

// TestDeleteFinishedJobIs409: canceling a job that already reached a
// terminal state reports conflict with that state, not success.
func TestDeleteFinishedJobIs409(t *testing.T) {
	ts, _ := newTestServer(t)
	code, v := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitRequest{Fn: "identity", K: 2, Rows: 10, Seed: 5})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, v)
	}
	id := uint64(v["id"].(float64))
	url := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id)
	waitState(t, url, "done")
	code, body := doJSON(t, http.MethodDelete, url, nil)
	if code != http.StatusConflict {
		t.Fatalf("DELETE on done job: %d, want 409", code)
	}
	if body["state"] != "done" {
		t.Fatalf("409 body must name the terminal state, got %v", body)
	}
	// A second DELETE behaves identically (idempotent refusal).
	if code, _ := doJSON(t, http.MethodDelete, url, nil); code != http.StatusConflict {
		t.Fatalf("second DELETE on done job: %d, want 409", code)
	}
}

// TestDeleteAbortsRunningJob: DELETE on a live job stops it mid-run; the
// job reaches the canceled state and its result endpoint reports 409.
func TestDeleteAbortsRunningJob(t *testing.T) {
	ts, _ := newTestServer(t)
	// Big enough that it is still running when the DELETE lands.
	code, v := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitRequest{Fn: "identity", K: 4, Rows: 8000, Boost: 4, Seed: 9})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, v)
	}
	id := uint64(v["id"].(float64))
	url := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id)
	code, view := doJSON(t, http.MethodDelete, url, nil)
	if code != http.StatusOK {
		t.Fatalf("DELETE on live job: %d (%v), want 200", code, view)
	}
	waitState(t, url, "canceled")
	if code, _ := doJSON(t, http.MethodGet, url+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of canceled job: %d, want 409", code)
	}
}

// TestPollReportsProgress: while (and after) a job runs, the poll view
// carries protocol progress — rounds and phase.
func TestPollReportsProgress(t *testing.T) {
	ts, _ := newTestServer(t)
	code, v := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitRequest{Fn: "identity", K: 3, Rows: 40, Seed: 11})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, v)
	}
	id := uint64(v["id"].(float64))
	url := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id)
	waitState(t, url, "done")
	_, view := doJSON(t, http.MethodGet, url, nil)
	if view["rounds"] == nil || view["rounds"].(float64) <= 0 {
		t.Fatalf("done job view has no round progress: %v", view)
	}
	if view["phase"] == nil || view["phase"].(string) == "" {
		t.Fatalf("done job view has no phase: %v", view)
	}
}

// TestGracefulDrainOnSIGTERM: a SIGTERM lets in-flight jobs finish while
// new submissions get 503, then tears down and exits 0 — the whole
// watchShutdown sequence driven by a real signal through httptest.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	ts, cluster, srv := newTestServerFull(t)

	// An in-flight job big enough to still be running when the drain hits.
	code, v := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitRequest{Fn: "identity", K: 3, Rows: 4000, Boost: 2, Seed: 13})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", code, v)
	}
	id := uint64(v["id"].(float64))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	defer signal.Stop(sigc)
	exited := make(chan int, 1)
	cleaned := make(chan struct{})
	go watchShutdown(sigc, srv, 30*time.Second,
		func() { close(cleaned) },
		func(code int) { exited <- code })
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Submissions are refused while draining; the in-flight job keeps its
	// poll route and runs to completion.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", submitRequest{Fn: "identity", K: 2, Rows: 10, Seed: 5})
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still admitted while draining (last: %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("drain exited %d, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain never completed")
	}
	<-cleaned
	// The drained job really finished — it was not cut off.
	if st := cluster.EngineStats(); st.Done < 1 {
		t.Fatalf("in-flight job did not finish before exit: %+v", st)
	}
	_, view := doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id), nil)
	if view["state"] != "done" {
		t.Fatalf("drained job state %v, want done", view["state"])
	}
}

// waitState polls the job view until it reaches want (or times out).
func waitState(t *testing.T, url, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, v := doJSON(t, http.MethodGet, url, nil)
		if v["state"] == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached %q (last: %v)", want, v["state"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
