// Command dlra-worker hosts one server of a multi-process dlra cluster:
// it joins a coordinator (cmd/dlra-pca with -transport tcp, or any
// repro.ListenCluster caller) by address, receives its share of the
// implicit matrix as setup traffic, and then executes protocol ops —
// sketching its share, answering row and value requests — over
// length-prefixed typed frames until the coordinator shuts the cluster
// down.
//
// Usage:
//
//	dlra-worker -join host:port [-wait 30s] [-rejoin]
//
// Start s−1 workers for a coordinator of s servers. Workers may start
// before the coordinator listens; they retry the connection for -wait.
//
// With -rejoin the worker is elastic: a lost link (coordinator
// detectable crash aside) makes it dial back in and take over whatever
// vacated slot the coordinator assigns — the replacement half of a
// failover. It exits 0 on a clean cluster shutdown.
package main

import (
	"flag"
	"log"

	"repro/internal/cli"
)

func main() {
	join := flag.String("join", "", "coordinator address to join (required)")
	wait := flag.Duration("wait", cli.DefaultJoinWait, "how long to retry the initial connection (with -rejoin: each rejoin window)")
	batch := flag.Int("batch", 0, "reply batch cap: coalesce up to N replies into one wire envelope (0 = one envelope per request envelope, 1 = individual replies)")
	rejoin := flag.Bool("rejoin", false, "on a lost link, rejoin the coordinator into a vacated slot instead of exiting")
	flag.Parse()
	if *join == "" {
		log.Fatal("dlra-worker: -join is required")
	}
	serve := cli.JoinWorker
	if *rejoin {
		serve = cli.RejoinWorker
	}
	if err := serve(*join, *wait, *batch); err != nil {
		log.Fatalf("dlra-worker: %v", err)
	}
}
