package repro

// This file is the job engine: the layer that multiplexes many concurrent
// distributed-low-rank queries over one live cluster. Each job runs inside
// its own comm session (a namespaced view of the shared fabric), against a
// dataset resolved from the cluster's share cache, with a private RNG seed
// derived from (seed, job id) — so a job's result and its communication
// transcript depend only on its own (seed, jobID), never on how many
// tenants ran beside it. Admission is a bounded FIFO queue drained by a
// fixed pool of runner goroutines; Submit rejects with ErrJobQueueFull
// when the queue is at capacity instead of blocking the caller.
//
// Since the v2 API every job carries a context derived from the caller's
// ctx (plus the WithDeadline budget): cancellation is real, not
// queue-only. A queued job is removed and failed immediately; a running
// job's protocol stops before its next round — the abort checkpoints
// thread from here through runPCA into every protocol layer — and on TCP
// clusters the workers discard the session's still-queued ops.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashing"
)

// JobState is the lifecycle of a submitted job.
type JobState int32

// The job lifecycle: Queued → Running → Done, or → Canceled from either
// non-terminal state.
const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobCanceled
)

// String renders the state for logs and the dlra-serve API.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("JobState(%d)", int32(s))
	}
}

// roundEventBuffer bounds the Rounds() stream: a consumer that lags more
// than this many rounds loses the oldest pending events (the protocol
// never blocks on observers).
const roundEventBuffer = 64

// maxJobAttempts bounds how many times one job runs before a worker
// loss is surfaced to the caller: the first run plus up to two failover
// resubmissions.
const maxJobAttempts = 3

// failoverBreath is the pause between a job observing a lost worker and
// its resubmission: long enough for the link-down handler to mark the
// slot dead (so the requeue finds the queue held for the re-placement)
// and for the mem fabric's explicit healer to run, short enough to be
// invisible next to a real failover.
const failoverBreath = 10 * time.Millisecond

// RoundEvent is one completed protocol round of a running job, as
// delivered by Job.Rounds.
type RoundEvent struct {
	// Seq is the 1-based round number within the job.
	Seq int64
	// Phase is the round's ledger tag (e.g. "zest/heavy/seed",
	// "sampler/rows", "core/projection").
	Phase string
	// Words is the job's session ledger total after the round.
	Words int64
}

// Progress is a point-in-time snapshot of a job's protocol state.
type Progress struct {
	// State is the job's lifecycle state.
	State JobState
	// Rounds is the number of protocol rounds completed so far.
	Rounds int64
	// Phase is the ledger tag of the most recently completed round (""
	// before the first).
	Phase string
	// Words is the job's session communication so far, in 64-bit words.
	Words int64
	// Queue is how long the job waited in the admission queue before a
	// runner picked it up (zero while still queued).
	Queue time.Duration
	// Bind is the time spent acquiring the job's comm session and
	// binding it to the dataset — near zero on a session-pool hit, a
	// per-worker control broadcast on a miss over TCP.
	Bind time.Duration
	// Protocol is the time inside the protocol rounds themselves.
	Protocol time.Duration
	// Teardown is the session end/abort handshake time — near zero when
	// the session was recycled into the pool instead.
	Teardown time.Duration
}

// Job is one queued or running PCA query on a cluster. Create jobs with
// Cluster.Submit; a Job's methods are safe for concurrent use.
type Job struct {
	id      uint64
	cluster *Cluster
	f       Func
	opts    Options
	seed    int64 // effective protocol seed (derived for Submit jobs)
	ds      *datasetEntry

	// ctx is the job's private context (caller ctx + WithDeadline);
	// cancelCtx trips it, stopWatch releases the cancellation watcher.
	ctx       context.Context
	cancelCtx context.CancelFunc
	stopWatch func() bool

	// Wall-clock phase markers (unix nanos) and phase durations (nanos):
	// queuedNS is written once at submission, the rest by the engine and
	// execute as the job moves through its phases; Progress reads them.
	queuedNS   int64
	startedNS  atomic.Int64
	bindNS     atomic.Int64
	protoNS    atomic.Int64
	teardownNS atomic.Int64

	// Live protocol state, updated by the session's round observer.
	rounds atomic.Int64
	words  atomic.Int64
	phase  atomic.Value // string
	events chan RoundEvent
	// hookRound, when non-nil, observes rounds synchronously on the
	// protocol goroutine — a test seam for deterministic between-rounds
	// cancellation (set before the job is submitted).
	hookRound func(seq int64)

	// attempts counts completed runs; touched only by the runner that
	// holds the job, so no atomic is needed. A run ending in
	// ErrWorkerLost resubmits until maxJobAttempts is reached.
	attempts int

	mu    sync.Mutex
	state JobState
	res   *Result
	err   error
	done  chan struct{}
}

// ID returns the job's cluster-unique id (assigned in submission order,
// starting at 1). The job's protocol seed is DeriveSeed(seed, ID).
func (j *Job) ID() uint64 { return j.id }

// Dataset returns the id of the dataset the job runs against.
func (j *Job) Dataset() string { return j.ds.id }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Progress snapshots the job's live protocol state: how many rounds have
// completed, which phase ran last, and the session words so far. After
// the job finishes the snapshot is the final tally.
func (j *Job) Progress() Progress {
	p := Progress{
		State:  j.State(),
		Rounds: j.rounds.Load(),
		Words:  j.words.Load(),
	}
	if s, ok := j.phase.Load().(string); ok {
		p.Phase = s
	}
	if s := j.startedNS.Load(); s > 0 && j.queuedNS > 0 {
		p.Queue = time.Duration(s - j.queuedNS)
	}
	p.Bind = time.Duration(j.bindNS.Load())
	p.Protocol = time.Duration(j.protoNS.Load())
	p.Teardown = time.Duration(j.teardownNS.Load())
	return p
}

// Rounds streams the job's completed protocol rounds. The channel is
// buffered and best-effort: observers that lag more than roundEventBuffer
// rounds lose the oldest pending events (the protocol never blocks on a
// slow consumer). It is closed when the job finishes, so ranging over it
// terminates.
func (j *Job) Rounds() <-chan RoundEvent { return j.events }

// noteRound publishes one completed round (called from the job's session
// round observer, possibly concurrently for forked protocol phases).
func (j *Job) noteRound(seq int64, tag string, words int64) {
	// CAS loop: concurrent forked-phase observers must never move the
	// round counter backwards below an already-delivered event's Seq.
	for {
		cur := j.rounds.Load()
		if seq <= cur || j.rounds.CompareAndSwap(cur, seq) {
			break
		}
	}
	j.words.Store(words)
	j.phase.Store(tag)
	select {
	case j.events <- RoundEvent{Seq: seq, Phase: tag, Words: words}:
	default: // consumer lagging: drop rather than stall the protocol
	}
	if j.hookRound != nil {
		j.hookRound(seq)
	}
}

// Wait blocks until the job finishes and returns its result, or the error
// that stopped it (ErrCanceled, ErrClosed, or a protocol failure). A ctx
// that fires first abandons the wait — the job itself keeps its own
// lifecycle; cancel the job's ctx (or call Cancel) to stop it.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
	default:
		select {
		case <-j.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Cancel stops the job: a job still queued is removed and fails
// immediately; a job already running is stopped before its next protocol
// round (its Wait returns an error matching both ErrCanceled and
// context.Canceled). Cancel reports whether the cancellation was
// delivered while the job was still live — false means the job had
// already finished. A running job that is already past its final abort
// checkpoint when the cancellation lands may still complete as JobDone;
// State (and a dlra-serve poll) reports the authoritative outcome.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	finished := j.state == JobDone || j.state == JobCanceled
	j.mu.Unlock()
	if finished {
		return false
	}
	// Trip the job context first: if the job is mid-run, the protocol's
	// next abort checkpoint observes it.
	j.cancelCtx()
	// If it is still queued, remove it and publish the outcome now.
	e := j.cluster.eng
	e.mu.Lock()
	for i, q := range e.queue {
		if q == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.cond.Broadcast()
			e.mu.Unlock()
			// cancelCtx ran above, so the cause is Canceled — or
			// DeadlineExceeded when a WithDeadline budget fired first.
			cause := j.ctx.Err()
			if cause == nil {
				cause = context.Canceled
			}
			j.finish(nil, canceledErr(cause), JobCanceled)
			return true
		}
	}
	e.mu.Unlock()
	// Close the racing window where the job finished Done between the
	// state check above and the ctx trip: the cancel had no effect then.
	j.mu.Lock()
	doneFirst := j.state == JobDone
	j.mu.Unlock()
	return !doneFirst
}

// release frees a job's cancellation resources (the ctx watcher and the
// derived context) for jobs that never reach finish — i.e. rejected
// submissions.
func (j *Job) release() {
	if j.stopWatch != nil {
		j.stopWatch()
	}
	if j.cancelCtx != nil {
		j.cancelCtx()
	}
}

// finish publishes the job's outcome exactly once and releases the
// cancellation watcher and the rounds stream.
func (j *Job) finish(res *Result, err error, state JobState) {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobCanceled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.res, j.err = res, err
	j.mu.Unlock()
	if state == JobCanceled {
		j.cluster.eng.canceledJobs.Add(1)
	} else {
		j.cluster.eng.doneJobs.Add(1)
	}
	j.release()
	close(j.events)
	close(j.done)
}

// resetForRetry rewinds a job's observable progress before a failover
// resubmission, so the retried run reports rounds, words and phases
// from zero exactly like a first run. The job keeps its id — and
// therefore its derived protocol seed — which is what makes the retry's
// transcript bit-identical to an undisturbed run.
func (j *Job) resetForRetry() {
	j.rounds.Store(0)
	j.words.Store(0)
	j.phase.Store("")
	j.bindNS.Store(0)
	j.protoNS.Store(0)
	j.teardownNS.Store(0)
	j.mu.Lock()
	if j.state == JobRunning {
		j.state = JobQueued
	}
	j.mu.Unlock()
}

func (j *Job) setRunning() {
	j.startedNS.Store(time.Now().UnixNano())
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobRunning
	}
	j.mu.Unlock()
}

// EngineConfig bounds the job engine: how many jobs run concurrently
// (each in its own comm session) and how many may wait in the admission
// queue before Submit rejects with ErrJobQueueFull.
type EngineConfig struct {
	// MaxConcurrent is the runner pool size (default 4).
	MaxConcurrent int
	// QueueDepth is the admission queue capacity (default 64).
	QueueDepth int
}

// engine is the bounded job queue and its runner pool.
type engine struct {
	c *Cluster

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job
	running int
	maxConc int
	depth   int
	started bool
	closed  bool
	// paused holds runners off the queue during a failover: a dead
	// worker makes every admitted job doomed until its share is
	// re-placed, so the queue waits instead of burning retry attempts.
	// Admission stays open; shutdown overrides a pause.
	paused bool
	wg     sync.WaitGroup

	// Lifetime counters (see EngineStats): jobs accepted into the
	// queue, and finished outcomes by terminal state.
	submitted    atomic.Int64
	doneJobs     atomic.Int64
	canceledJobs atomic.Int64
}

func newEngine(c *Cluster) *engine {
	e := &engine{c: c, maxConc: 4, depth: 64}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// configure adjusts the engine bounds; only valid before the first job.
func (e *engine) configure(cfg EngineConfig) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("repro: ConfigureEngine after the first job was submitted")
	}
	if cfg.MaxConcurrent > 0 {
		e.maxConc = cfg.MaxConcurrent
	}
	if cfg.QueueDepth > 0 {
		e.depth = cfg.QueueDepth
	}
	return nil
}

// submit enqueues a job. block selects the admission policy at capacity:
// reject (Submit) or wait for space (the blocking PCA wrapper, whose wait
// honors ctx).
func (e *engine) submit(ctx context.Context, j *Job, block bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if block {
		// Wake the admission wait when the caller's ctx fires, so PCA does
		// not stay parked on a full queue past its deadline.
		stop := context.AfterFunc(ctx, func() {
			e.mu.Lock()
			e.cond.Broadcast()
			e.mu.Unlock()
		})
		defer stop()
	}
	for {
		if e.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return canceledErr(err)
		}
		if len(e.queue) < e.depth {
			if !e.started {
				e.started = true
				for i := 0; i < e.maxConc; i++ {
					e.wg.Add(1)
					go e.runner()
				}
			}
			j.queuedNS = time.Now().UnixNano()
			e.queue = append(e.queue, j)
			e.submitted.Add(1)
			e.cond.Broadcast()
			return nil
		}
		if !block {
			return ErrJobQueueFull
		}
		e.cond.Wait()
	}
}

// pause holds runners off the queue (idempotent; see engine.paused).
func (e *engine) pause() {
	e.mu.Lock()
	e.paused = true
	e.mu.Unlock()
}

// resume reopens the queue after a re-placement.
func (e *engine) resume() {
	e.mu.Lock()
	e.paused = false
	e.cond.Broadcast()
	e.mu.Unlock()
}

// requeueFront puts a failover-interrupted job back at the head of the
// admission queue, ahead of every waiting job — it already held a
// runner when the fabric broke, so it goes first once the cluster is
// whole. The head slot is exempt from the depth bound. Returns false
// when the engine has shut down (the caller fails the job instead).
func (e *engine) requeueFront(j *Job) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.queue = append([]*Job{j}, e.queue...)
	e.cond.Broadcast()
	return true
}

// runner drains the queue until shutdown.
func (e *engine) runner() {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		for (len(e.queue) == 0 || e.paused) && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.running++
		e.cond.Broadcast() // queue space freed; wake blocked submitters
		e.mu.Unlock()
		e.c.runJob(j)
		e.mu.Lock()
		e.running--
		e.cond.Broadcast() // wake awaitQuiet: a failover gate may be waiting
	}
}

// awaitQuiet blocks until no runner is inside a job — queued jobs held
// by a pause don't count — the engine closes, or the timeout passes
// (reporting false). This is the replacement gate's engine half: a
// rejoining worker may only have its link swapped in once every job the
// failover interrupted has observed the poisoned link and requeued;
// swapping earlier clears the poison under a job still awaiting a reply
// the dead worker took with it, and that job would wait forever.
func (e *engine) awaitQuiet(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	defer wake.Stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.running > 0 && !e.closed {
		if !time.Now().Before(deadline) {
			return false
		}
		e.cond.Wait()
	}
	return true
}

// ifIdle runs fn under the engine lock iff no job is queued or running —
// and because admission and runner pops also take the lock, no job can
// start while fn executes. Returns whether fn ran.
func (e *engine) ifIdle(fn func()) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue)+e.running > 0 {
		return false
	}
	fn()
	return true
}

// shutdown stops admission, fails every still-queued job with ErrClosed,
// and waits for running jobs to drain — so closing a cluster mid-flight
// is an orderly stop, not a panic.
func (e *engine) shutdown() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	q := e.queue
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, j := range q {
		j.finish(nil, ErrClosed, JobCanceled)
	}
	e.wg.Wait()
}

// EngineStats is a point-in-time snapshot of the job engine's counters
// (see Cluster.EngineStats).
type EngineStats struct {
	// Submitted counts jobs accepted into the admission queue over the
	// cluster's lifetime (rejected submissions are not counted).
	Submitted int64
	// Done counts jobs that reached the JobDone terminal state,
	// including ones that finished with a protocol error.
	Done int64
	// Canceled counts jobs that reached the JobCanceled terminal state
	// (canceled, deadline-exceeded, or failed by cluster shutdown).
	Canceled int64
	// Running is the number of jobs currently executing on runners.
	Running int
	// Queued is the current admission-queue depth.
	Queued int
}

func (e *engine) stats() EngineStats {
	e.mu.Lock()
	queued, running := len(e.queue), e.running
	e.mu.Unlock()
	return EngineStats{
		Submitted: e.submitted.Load(),
		Done:      e.doneJobs.Load(),
		Canceled:  e.canceledJobs.Load(),
		Running:   running,
		Queued:    queued,
	}
}

// EngineStats snapshots the job engine's admission and completion
// counters. Operational telemetry only (dlra-serve exposes it on
// /metrics); the counters have no effect on scheduling or transcripts.
func (c *Cluster) EngineStats() EngineStats { return c.eng.stats() }

// jobSeed derives a job's private protocol seed from the caller's seed
// and the job id, so concurrent jobs sharing a seed still see independent
// randomness — and a job's transcript is reproducible from (seed, jobID)
// alone.
func jobSeed(seed int64, jobID uint64) int64 {
	return hashing.DeriveSeed(seed, jobID)
}
