package repro

// This file is the job engine: the layer that multiplexes many concurrent
// distributed-low-rank queries over one live cluster. Each job runs inside
// its own comm session (a namespaced view of the shared fabric), against a
// dataset resolved from the cluster's share cache, with a private RNG seed
// derived from (Options.Seed, job id) — so a job's result and its
// communication transcript depend only on its own (seed, jobID), never on
// how many tenants ran beside it. Admission is a bounded FIFO queue
// drained by a fixed pool of runner goroutines; Submit rejects with
// ErrJobQueueFull when the queue is at capacity instead of blocking the
// caller.

import (
	"fmt"
	"sync"

	"repro/internal/hashing"
)

// JobState is the lifecycle of a submitted job.
type JobState int32

// The job lifecycle: Queued → Running → Done, or Queued → Canceled.
const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobCanceled
)

// String renders the state for logs and the dlra-serve API.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("JobState(%d)", int32(s))
	}
}

// Job is one queued or running PCA query on a cluster. Create jobs with
// Cluster.Submit; a Job's methods are safe for concurrent use.
type Job struct {
	id      uint64
	cluster *Cluster
	f       Func
	opts    Options
	seed    int64 // effective protocol seed (derived for Submit jobs)
	ds      *datasetEntry

	mu    sync.Mutex
	state JobState
	res   *Result
	err   error
	done  chan struct{}
}

// ID returns the job's cluster-unique id (assigned in submission order,
// starting at 1). The job's protocol seed is DeriveSeed(Options.Seed, ID).
func (j *Job) ID() uint64 { return j.id }

// Dataset returns the id of the dataset the job runs against.
func (j *Job) Dataset() string { return j.ds.id }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Wait blocks until the job finishes and returns its result, or the error
// that stopped it (ErrJobCanceled, ErrClosed, or a protocol failure).
func (j *Job) Wait() (*Result, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Cancel removes the job from the queue if it has not started; Wait then
// returns ErrJobCanceled. A job already running (or finished) is not
// interrupted — Cancel reports false and the job completes normally.
func (j *Job) Cancel() bool {
	e := j.cluster.eng
	e.mu.Lock()
	for i, q := range e.queue {
		if q == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.cond.Broadcast()
			e.mu.Unlock()
			j.finish(nil, ErrJobCanceled, JobCanceled)
			return true
		}
	}
	e.mu.Unlock()
	return false
}

// finish publishes the job's outcome exactly once.
func (j *Job) finish(res *Result, err error, state JobState) {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobCanceled {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.res, j.err = res, err
	j.mu.Unlock()
	close(j.done)
}

func (j *Job) setRunning() {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobRunning
	}
	j.mu.Unlock()
}

// EngineConfig bounds the job engine: how many jobs run concurrently
// (each in its own comm session) and how many may wait in the admission
// queue before Submit rejects with ErrJobQueueFull.
type EngineConfig struct {
	// MaxConcurrent is the runner pool size (default 4).
	MaxConcurrent int
	// QueueDepth is the admission queue capacity (default 64).
	QueueDepth int
}

// engine is the bounded job queue and its runner pool.
type engine struct {
	c *Cluster

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job
	running int
	maxConc int
	depth   int
	started bool
	closed  bool
	wg      sync.WaitGroup
}

func newEngine(c *Cluster) *engine {
	e := &engine{c: c, maxConc: 4, depth: 64}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// configure adjusts the engine bounds; only valid before the first job.
func (e *engine) configure(cfg EngineConfig) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("repro: ConfigureEngine after the first job was submitted")
	}
	if cfg.MaxConcurrent > 0 {
		e.maxConc = cfg.MaxConcurrent
	}
	if cfg.QueueDepth > 0 {
		e.depth = cfg.QueueDepth
	}
	return nil
}

// submit enqueues a job. block selects the admission policy at capacity:
// reject (Submit) or wait for space (the blocking PCA wrapper).
func (e *engine) submit(j *Job, block bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.closed {
			return ErrClosed
		}
		if len(e.queue) < e.depth {
			if !e.started {
				e.started = true
				for i := 0; i < e.maxConc; i++ {
					e.wg.Add(1)
					go e.runner()
				}
			}
			e.queue = append(e.queue, j)
			e.cond.Broadcast()
			return nil
		}
		if !block {
			return ErrJobQueueFull
		}
		e.cond.Wait()
	}
}

// runner drains the queue until shutdown.
func (e *engine) runner() {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.running++
		e.cond.Broadcast() // queue space freed; wake blocked submitters
		e.mu.Unlock()
		e.c.runJob(j)
		e.mu.Lock()
		e.running--
	}
}

// ifIdle runs fn under the engine lock iff no job is queued or running —
// and because admission and runner pops also take the lock, no job can
// start while fn executes. Returns whether fn ran.
func (e *engine) ifIdle(fn func()) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue)+e.running > 0 {
		return false
	}
	fn()
	return true
}

// shutdown stops admission, fails every still-queued job with ErrClosed,
// and waits for running jobs to drain — so closing a cluster mid-flight
// is an orderly stop, not a panic.
func (e *engine) shutdown() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	q := e.queue
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, j := range q {
		j.finish(nil, ErrClosed, JobCanceled)
	}
	e.wg.Wait()
}

// jobSeed derives a job's private protocol seed from the caller's seed
// and the job id, so concurrent jobs sharing Options.Seed still see
// independent randomness — and a job's transcript is reproducible from
// (seed, jobID) alone.
func jobSeed(seed int64, jobID uint64) int64 {
	return hashing.DeriveSeed(seed, jobID)
}
