package repro_test

import (
	"context"
	"fmt"
	"math/rand"

	"repro"
)

// ExampleNew shows storage backend selection: the same query runs once on
// the shares as installed (dense) and once indexed into the fast-dense
// backend. The backend only changes local compute cost — the sampled rows,
// the communication ledger and the projection are bit-identical, which is
// the contract every backend must satisfy.
func ExampleNew() {
	const servers, n, d, k = 3, 60, 8, 2

	// A sparse deterministic matrix, row-partitioned across the servers.
	rng := rand.New(rand.NewSource(11))
	locals := make([]*repro.Matrix, servers)
	for t := range locals {
		locals[t] = repro.NewMatrix(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if rng.Float64() < 0.2 {
				locals[i%servers].Set(i, j, float64(i%5)+0.25*float64(j))
			}
		}
	}

	cluster, err := repro.New(servers)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	if err := cluster.SetLocalData(locals); err != nil {
		panic(err)
	}

	query := []repro.Option{
		repro.WithRank(k), repro.WithRows(32), repro.WithSeed(5),
	}
	dense, err := cluster.PCA(context.Background(), repro.Identity(), query...)
	if err != nil {
		panic(err)
	}
	fast, err := cluster.PCA(context.Background(), repro.Identity(),
		append(query, repro.WithBackend(repro.BackendFast))...)
	if err != nil {
		panic(err)
	}

	fmt.Printf("words identical under fast backend: %v\n", dense.Words == fast.Words)
	fmt.Printf("projection bit-identical: %v\n", dense.Projection.Equalf(fast.Projection, 0))
	// Output:
	// words identical under fast backend: true
	// projection bit-identical: true
}
