package repro_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro"
)

// Example demonstrates the smallest complete use of the library: additive
// shares of a deterministic matrix distributed over three servers, PCA of
// the implicit sum, and an exact communication count.
func Example() {
	const servers, n, d, k = 3, 64, 8, 2

	// A deterministic rank-2 matrix.
	M := repro.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			M.Set(i, j, float64((i%4)*(j+1))+0.5*float64((i%7))*float64(j%3))
		}
	}
	// Additive split: no server sees M.
	rng := rand.New(rand.NewSource(1))
	locals := make([]*repro.Matrix, servers)
	for t := range locals {
		locals[t] = repro.NewMatrix(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for t := 0; t < servers-1; t++ {
				sh := rng.NormFloat64()
				locals[t].Set(i, j, sh)
				acc += sh
			}
			locals[servers-1].Set(i, j, M.At(i, j)-acc)
		}
	}

	cluster, err := repro.New(servers)
	if err != nil {
		panic(err)
	}
	if err := cluster.SetLocalData(locals); err != nil {
		panic(err)
	}
	res, err := cluster.PCA(context.Background(), repro.Identity(),
		repro.WithRank(k), repro.WithRows(48), repro.WithSeed(7))
	if err != nil {
		panic(err)
	}

	A, _ := cluster.ImplicitMatrix(repro.Identity())
	got := repro.ProjectionError2(A, res.Projection)
	opt := repro.BestRankKError2(A, k)
	fmt.Printf("rank-2 input recovered: additive error below 0.01: %v\n",
		(got-opt)/A.FrobNorm2() < 0.01)
	fmt.Printf("projection is %dx%d\n", res.Projection.Rows(), res.Projection.Cols())
	// Output:
	// rank-2 input recovered: additive error below 0.01: true
	// projection is 8x8
}

// ExampleCluster_PCA_huber shows robust PCA: entries damaged by huge noise
// are capped by the Huber ψ-function before the subspace is computed.
func ExampleCluster_PCA_huber() {
	const servers, n, d = 2, 50, 6
	rng := rand.New(rand.NewSource(2))
	locals := make([]*repro.Matrix, servers)
	for t := range locals {
		locals[t] = repro.NewMatrix(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := float64(i%3) + 0.1*float64(j)
			sh := rng.NormFloat64()
			locals[0].Set(i, j, sh)
			locals[1].Set(i, j, v-sh)
		}
	}
	// One catastrophic entry, hidden across the shares.
	locals[0].Set(10, 3, locals[0].At(10, 3)+1e9)

	cluster, err := repro.New(servers)
	if err != nil {
		panic(err)
	}
	if err := cluster.SetLocalData(locals); err != nil {
		panic(err)
	}
	if _, err := cluster.PCA(context.Background(), repro.Huber(5),
		repro.WithRank(2), repro.WithRows(40), repro.WithSeed(3)); err != nil {
		panic(err)
	}
	A, _ := cluster.ImplicitMatrix(repro.Huber(5))
	fmt.Printf("largest |entry| after Huber capping: %.0f\n", A.MaxAbs())
	// Output:
	// largest |entry| after Huber capping: 5
}

// ExampleCluster_Submit shows the job engine: several PCA queries
// submitted at once run concurrently on one cluster, each in its own
// session with a seed derived from (Options.Seed, job id), and Wait
// collects each job's result with its private communication ledger.
func ExampleCluster_Submit() {
	const servers, n, d = 3, 48, 6
	rng := rand.New(rand.NewSource(9))
	locals := make([]*repro.Matrix, servers)
	for t := range locals {
		locals[t] = repro.NewMatrix(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := float64(i%3) * float64(j+1)
			var acc float64
			for t := 0; t < servers-1; t++ {
				sh := rng.NormFloat64()
				locals[t].Set(i, j, locals[t].At(i, j)+sh)
				acc += sh
			}
			locals[servers-1].Set(i, j, locals[servers-1].At(i, j)+v-acc)
		}
	}

	cluster, err := repro.New(servers)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	if err := cluster.SetLocalData(locals); err != nil {
		panic(err)
	}

	// Three concurrent queries against the shared (cached) dataset.
	jobs := make([]*repro.Job, 3)
	for i := range jobs {
		jobs[i], err = cluster.Submit(context.Background(), repro.Identity(),
			repro.WithRank(2), repro.WithRows(24), repro.WithSeed(42))
		if err != nil {
			panic(err)
		}
	}
	for _, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			panic(err)
		}
		fmt.Printf("job %d: %dx%d projection, positive comm cost: %v\n",
			res.JobID, res.Projection.Rows(), res.Projection.Cols(), res.Words > 0)
	}
	// Output:
	// job 1: 6x6 projection, positive comm cost: true
	// job 2: 6x6 projection, positive comm cost: true
	// job 3: 6x6 projection, positive comm cost: true
}

// ExamplePrepareGM shows the softmax encoding: each server raises its raw
// values to the p-th power so the implicit sum reproduces the generalized
// mean — which for large p tracks the entrywise max across servers.
func ExamplePrepareGM() {
	raw := [][]float64{
		{1, 9}, // server 0's observations
		{8, 2}, // server 1's observations
	}
	const p = 20
	shares := make([]*repro.Matrix, 2)
	for t := range shares {
		shares[t] = repro.PrepareGM(repro.FromRows([][]float64{raw[t]}), p, 2)
	}
	sum := shares[0].Add(shares[1])
	// f(x) = x^{1/p} of the summed shares ≈ max of the raw values.
	approxMax0 := math.Pow(sum.At(0, 0), 1.0/p)
	approxMax1 := math.Pow(sum.At(0, 1), 1.0/p)
	fmt.Printf("GM(1,8) ≈ %.1f; GM(9,2) ≈ %.1f\n", approxMax0, approxMax1)
	// Output:
	// GM(1,8) ≈ 7.7; GM(9,2) ≈ 8.7
}

// ExampleJob_Cancel shows real mid-run cancellation: a submitted job is
// stopped between protocol rounds and reports an error matching both
// repro.ErrCanceled and context.Canceled.
func ExampleJob_Cancel() {
	const servers, n, d = 2, 80, 8
	rng := rand.New(rand.NewSource(4))
	locals := make([]*repro.Matrix, servers)
	for t := range locals {
		locals[t] = repro.NewMatrix(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := float64(i%4) + 0.2*float64(j)
			sh := rng.NormFloat64()
			locals[0].Set(i, j, sh)
			locals[1].Set(i, j, v-sh)
		}
	}
	cluster, err := repro.New(servers)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	if err := cluster.SetLocalData(locals); err != nil {
		panic(err)
	}

	// A deliberately heavy query, canceled as soon as it is in flight.
	job, err := cluster.Submit(context.Background(), repro.Identity(),
		repro.WithRank(4), repro.WithRows(10000), repro.WithBoost(4))
	if err != nil {
		panic(err)
	}
	job.Cancel()
	_, err = job.Wait(context.Background())
	fmt.Printf("canceled: %v (state %s)\n",
		errors.Is(err, repro.ErrCanceled) && errors.Is(err, context.Canceled), job.State())
	// Output:
	// canceled: true (state canceled)
}
