// Command fourier_features reproduces the paper's Section VI-A application:
// approximate kernel PCA of distributed data via Gaussian random Fourier
// features. The raw points live on different servers (and are even split
// additively within a point); each server expands its share through a
// shared random feature map, and the cluster computes a PCA of the implicit
// cosine expansion with uniform row sampling — the feature rows all have
// squared norm ≈ d, which is exactly why uniform sampling suffices.
//
// Run with:
//
//	go run ./examples/fourier_features
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/rff"
	"repro/internal/robust"
)

func main() {
	const (
		servers  = 10
		n        = 2000 // data points
		m        = 20   // raw dimension
		features = 64   // Fourier features
		k        = 8    // projection rank
	)

	// Clustered raw data: the kind of geometry kernel PCA is for.
	raw := rff.GaussianMixture(n, m, 5, 0.8, 7)

	// Shared random feature map — in a real deployment only its seed
	// travels; every server rebuilds Z and b locally.
	mp, err := repro.NewRFFMap(m, features, 4.0, 99)
	if err != nil {
		log.Fatal(err)
	}

	// Row-partition the raw data ("we randomly distributed the original
	// data to different servers"), then expand each share locally.
	parts := robust.RowPartition(raw, servers, 3)
	locals := repro.ExpandRFF(parts, mp)

	cluster, err := repro.New(servers)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.SetLocalData(locals); err != nil {
		log.Fatal(err)
	}

	res, err := cluster.PCA(context.Background(), repro.Cosine(), repro.WithRank(k), repro.WithRows(400), repro.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	A, _ := cluster.ImplicitMatrix(repro.Cosine())
	got := repro.ProjectionError2(A, res.Projection)
	opt := repro.BestRankKError2(A, k)

	fmt.Printf("kernel PCA via random Fourier features (%d points, %d features, %d servers)\n",
		n, features, servers)
	fmt.Printf("  additive error : %.2e of ‖A‖²_F\n", (got-opt)/A.FrobNorm2())
	fmt.Printf("  relative error : %.4f\n", got/opt)
	fmt.Printf("  communication  : %d words vs %d words to centralize the expansion\n",
		res.Words, n*features)

	// Sanity: the feature map approximates the RBF kernel.
	rng := rand.New(rand.NewSource(1))
	var errSum float64
	const pairs = 200
	for i := 0; i < pairs; i++ {
		x := raw.Row(rng.Intn(n))
		y := raw.Row(rng.Intn(n))
		diff := mp.Kernel(x, y) - mp.ApproxKernel(x, y)
		errSum += diff * diff
	}
	fmt.Printf("  kernel RMSE    : %.3f over %d random pairs\n", errSum/pairs, pairs)
}
