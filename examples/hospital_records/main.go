// Command hospital_records implements the paper's introductory motivating
// example: each person is characterized by health indicators whose values
// differ across the hospitals holding records for that person. Because a
// detected problem raises the probability the problem is real, the right
// global value for an indicator is (approximately) the MAXIMUM across
// hospitals — which no previous distributed PCA model could express, since
// max is not a linear combination of the shares.
//
// Theorem 6 shows exact max admits no cheap relative-error protocol; the
// paper's answer (Section VI-B) is the softmax: with generalized-mean
// exponent p = log(nd), GM exceeds c′·max for any constant c′ < 1 while
// the sampler cost stays independent of p. This example builds the
// per-hospital record matrices, runs the softmax PCA, and verifies that
// the implicit matrix is entrywise within a constant of the true max.
//
// Run with:
//
//	go run ./examples/hospital_records
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	const (
		hospitals  = 12
		patients   = 1500
		indicators = 48
		k          = 6
	)
	rng := rand.New(rand.NewSource(3))

	// Ground truth: each patient has a latent severity profile; each
	// hospital observes a noisy, partially-missing view of it (missing ⇒
	// recorded as 0, the "hospital never measured this" case).
	latent := repro.NewMatrix(patients, indicators)
	profiles := make([][]float64, 6)
	for r := range profiles {
		profiles[r] = make([]float64, indicators)
		for j := range profiles[r] {
			profiles[r][j] = math.Abs(rng.NormFloat64())
		}
	}
	for i := 0; i < patients; i++ {
		row := latent.Row(i)
		w := make([]float64, len(profiles))
		for r := range w {
			w[r] = math.Abs(rng.NormFloat64())
		}
		for j := 0; j < indicators; j++ {
			for r := range profiles {
				row[j] += w[r] * profiles[r][j]
			}
		}
	}

	views := make([]*repro.Matrix, hospitals)
	for h := range views {
		views[h] = repro.NewMatrix(patients, indicators)
		for i := 0; i < patients; i++ {
			for j := 0; j < indicators; j++ {
				if rng.Float64() < 0.55 {
					continue // this hospital has no record of the indicator
				}
				obs := latent.At(i, j) * (0.6 + 0.4*rng.Float64())
				views[h].Set(i, j, obs)
			}
		}
	}

	// Softmax exponent p = log(n·d) per Section VI-B.
	p := math.Log(float64(patients * indicators))
	fmt.Printf("softmax exponent p = log(nd) = %.1f\n", p)

	// Each hospital prepares its share |view|^p / s locally.
	locals := make([]*repro.Matrix, hospitals)
	for h, v := range views {
		locals[h] = repro.PrepareGM(v, p, hospitals)
	}

	cluster, err := repro.New(hospitals)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.SetLocalData(locals); err != nil {
		log.Fatal(err)
	}
	res, err := cluster.PCA(context.Background(), repro.SoftmaxGM(p), repro.WithRank(k), repro.WithRows(400), repro.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}

	// Verify the paper's GM ≈ max claim on the implicit matrix.
	A, _ := cluster.ImplicitMatrix(repro.SoftmaxGM(p))
	worst := 1.0
	for i := 0; i < patients; i++ {
		for j := 0; j < indicators; j++ {
			mx := 0.0
			for h := range views {
				if v := math.Abs(views[h].At(i, j)); v > mx {
					mx = v
				}
			}
			if mx == 0 {
				continue
			}
			if ratio := A.At(i, j) / mx; ratio < worst {
				worst = ratio
			}
		}
	}

	got := repro.ProjectionError2(A, res.Projection)
	opt := repro.BestRankKError2(A, k)
	fmt.Printf("worst GM/max ratio over all entries : %.3f (GM never exceeds max)\n", worst)
	fmt.Printf("PCA additive error                  : %.2e of ‖A‖²_F\n", (got-opt)/A.FrobNorm2())
	fmt.Printf("PCA relative error                  : %.4f\n", got/opt)
	fmt.Printf("communication                       : %d words (centralizing: %d)\n",
		res.Words, hospitals*patients*indicators)
}
