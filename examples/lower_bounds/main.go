// Command lower_bounds makes the paper's Section VII hardness results
// tangible: it runs the three reduction protocols (Theorems 4, 6, 8) that
// convert a hypothetical low-communication *relative-error* PCA protocol
// into solvers for communication problems with known Ω(·) lower bounds,
// using an exact PCA oracle as the hypothetical protocol. Watching the
// reductions decide L∞, 2-DISJ and Gap-Hamming instances correctly is the
// executable form of "relative error would be too expensive — settle for
// additive error".
//
// Run with:
//
//	go run ./examples/lower_bounds
package main

import (
	"fmt"
	"log"

	"repro/internal/lowerbound"
)

func main() {
	fmt.Println("Theorem 8 — GHD ⇒ Ω(1/ε²) bits for relative error, f(x)=x")
	for _, pos := range []bool{true, false} {
		inst, err := lowerbound.NewGHDInstance(0.25, pos, 4, 11)
		if err != nil {
			log.Fatal(err)
		}
		got, err := lowerbound.SolveGHD(inst, 2, lowerbound.ExactOracle)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ⟨x,y⟩ = %+5.0f  → protocol answers gap>+2/ε: %-5v (truth %v)\n",
			inst.InnerProduct(), got, pos)
	}

	fmt.Println("\nTheorem 6 — 2-DISJ ⇒ Ω̃(nd) bits for f = max(·) or Huber ψ")
	for _, comb := range []lowerbound.Combine{lowerbound.CombineMax, lowerbound.CombineHuber} {
		name := "max"
		if comb == lowerbound.CombineHuber {
			name = "huber"
		}
		for _, intersects := range []bool{true, false} {
			inst := lowerbound.NewDisjInstance(16, 4, 0.15, intersects, 7)
			got, shell, err := lowerbound.SolveDisj(inst, 3, comb, lowerbound.ExactOracle)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  f=%-5s intersects=%-5v → answered %-5v with %d shell words\n",
				name, intersects, got, shell)
		}
	}

	fmt.Println("\nTheorem 4 — L∞ ⇒ Ω̃((1+ε)^{-2/p}·n^{1-1/p}·d^{1-4/p}) bits for f=Ω(|x|^p)")
	p := 2.0
	n, d := 12, 4
	B := lowerbound.TheoremB(0.5, n, d, p)
	for _, far := range []bool{true, false} {
		inst := lowerbound.NewLInfInstance(n, d, B, far, 13)
		got, shell, err := lowerbound.SolveLInf(inst, 2, p, lowerbound.ExactOracle)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  B=%d far=%-5v → answered %-5v with %d shell words\n", B, far, got, shell)
	}

	fmt.Println("\nEvery reduction decided its promise problem using only O(log) shell")
	fmt.Println("words beyond the PCA oracle calls — so a cheap relative-error PCA")
	fmt.Println("protocol would violate the communication lower bounds. This is why")
	fmt.Println("the paper (and this library) target additive error.")
}
