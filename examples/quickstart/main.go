// Command quickstart is the smallest end-to-end use of the library: four
// servers hold additive shares of a matrix, and the cluster computes a
// rank-5 PCA of the implicit sum without ever assembling it in one place.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const (
		servers = 4
		n, d    = 1000, 40
		rank    = 5
	)
	rng := rand.New(rand.NewSource(1))

	// Build a low-rank ground-truth matrix...
	M := repro.NewMatrix(n, d)
	u := make([]float64, rank)
	v := make([][]float64, rank)
	for r := range v {
		v[r] = make([]float64, d)
		for j := range v[r] {
			v[r][j] = rng.NormFloat64()
		}
	}
	for i := 0; i < n; i++ {
		for r := range u {
			u[r] = rng.NormFloat64()
		}
		row := M.Row(i)
		for j := 0; j < d; j++ {
			for r := 0; r < rank; r++ {
				row[j] += u[r] * v[r][j]
			}
			row[j] += 0.05 * rng.NormFloat64()
		}
	}

	// ...and split it additively across the servers: no server sees M.
	locals := make([]*repro.Matrix, servers)
	for t := range locals {
		locals[t] = repro.NewMatrix(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for t := 0; t < servers-1; t++ {
				share := rng.NormFloat64()
				locals[t].Set(i, j, share)
				acc += share
			}
			locals[servers-1].Set(i, j, M.At(i, j)-acc)
		}
	}

	cluster, err := repro.New(servers)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.SetLocalData(locals); err != nil {
		log.Fatal(err)
	}

	res, err := cluster.PCA(context.Background(), repro.Identity(), repro.WithRank(rank), repro.WithEpsilon(0.2), repro.WithRows(200), repro.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate against ground truth (only possible because this demo holds
	// the full matrix; the protocol itself never does).
	A, _ := cluster.ImplicitMatrix(repro.Identity())
	got := repro.ProjectionError2(A, res.Projection)
	opt := repro.BestRankKError2(A, rank)

	fmt.Printf("distributed PCA of an implicit %dx%d matrix across %d servers\n", n, d, servers)
	fmt.Printf("  rank                 : %d\n", rank)
	fmt.Printf("  rows sampled         : %d\n", len(res.SampledRows))
	fmt.Printf("  ‖A−AP‖²_F            : %.4f\n", got)
	fmt.Printf("  optimal ‖A−[A]_k‖²_F : %.4f\n", opt)
	fmt.Printf("  additive error       : %.2e of ‖A‖²_F\n", (got-opt)/A.FrobNorm2())
	fmt.Printf("  communication        : %d words (%.1f%% of the %d-word matrix)\n",
		res.Words, 100*float64(res.Words)/float64(n*d), n*d)
}
