// Command robust_pca reproduces the paper's Section VI-C / isolet
// experiment: a feature matrix is contaminated with a handful of extreme
// entries and arbitrarily partitioned across servers, so that no server can
// detect the corruption locally. Applying the Huber ψ-function to the
// implicit sum caps the damaged entries; PCA of the capped matrix recovers
// the clean subspace where plain PCA is destroyed by the outliers.
//
// Run with:
//
//	go run ./examples/robust_pca
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/matrix"
	"repro/internal/robust"
)

func main() {
	const (
		servers = 6
		n, d    = 800, 60
		rank    = 8
		k       = 8
	)
	rng := rand.New(rand.NewSource(2))

	// Clean low-rank signal.
	clean := repro.NewMatrix(n, d)
	basis := make([][]float64, rank)
	for r := range basis {
		basis[r] = make([]float64, d)
		for j := range basis[r] {
			basis[r][j] = rng.NormFloat64()
		}
	}
	for i := 0; i < n; i++ {
		row := clean.Row(i)
		for r := 0; r < rank; r++ {
			c := rng.NormFloat64()
			for j := 0; j < d; j++ {
				row[j] += c * basis[r][j]
			}
		}
		for j := 0; j < d; j++ {
			row[j] += 0.1 * rng.NormFloat64()
		}
	}

	// Corrupt 50 entries to ±10⁴ (the paper's protocol on isolet).
	corrupted, record, err := robust.Corrupt(clean, 50, 1e4, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Arbitrary partition: shares are noisy, outliers invisible locally.
	locals := robust.ArbitraryPartition(corrupted, servers, 5)

	cluster, err := repro.New(servers)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.SetLocalData(locals); err != nil {
		log.Fatal(err)
	}

	// Huber threshold at ≈ 6 standard deviations of the clean entries.
	huber := repro.Huber(12)
	res, err := cluster.PCA(context.Background(), huber, repro.WithRank(k), repro.WithRows(300), repro.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}

	// Compare subspace quality ON THE CLEAN DATA:
	evaluate := func(P *repro.Matrix) float64 {
		return repro.ProjectionError2(clean, P) / clean.FrobNorm2()
	}
	robustErr := evaluate(res.Projection)

	// Naive PCA on the corrupted matrix (centralized, no capping).
	naive := corruptedTopK(corrupted, k)
	naiveErr := evaluate(naive)

	// The unbeatable reference: exact PCA of the clean matrix.
	ideal := corruptedTopK(clean, k)
	idealErr := evaluate(ideal)

	fmt.Printf("robust PCA with the Huber ψ (%d corrupted entries of magnitude 1e4)\n", len(record.Rows))
	fmt.Printf("  clean-data residual of ideal PCA      : %.4f\n", idealErr)
	fmt.Printf("  clean-data residual of robust (Huber) : %.4f\n", robustErr)
	fmt.Printf("  clean-data residual of naive PCA      : %.4f\n", naiveErr)
	fmt.Printf("  communication                         : %d words\n", res.Words)
	if robustErr < naiveErr {
		fmt.Println("→ the Huber protocol recovers the clean subspace; naive PCA chases outliers.")
	}
}

// corruptedTopK computes a centralized exact top-k projection (for
// comparison only — it sees the whole matrix).
func corruptedTopK(M *repro.Matrix, k int) *repro.Matrix {
	return matrix.ProjectionTopK(M, k)
}
