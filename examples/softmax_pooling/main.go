// Command softmax_pooling reproduces the paper's Section VI-B application:
// PCA of P-norm pooled image features where the patches of every image are
// scattered across servers. Each server pools its own patches; the
// cross-server combination is a generalized mean (softmax), which for large
// p approximates taking the max — the paper's hospital example uses the
// same mechanism. The generalized Z-sampler handles f(x) = x^{1/p}.
//
// Run with:
//
//	go run ./examples/softmax_pooling
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/pooling"
)

func main() {
	const (
		servers  = 8
		images   = 600
		codebook = 128
		patches  = 150
		k        = 10
	)

	// Synthetic 1-of-V codes (Zipfian codeword usage), standing in for
	// SIFT descriptors quantized against a learned codebook.
	codes := pooling.SyntheticCodes(images, codebook, patches, 1.1, 21)

	for _, p := range []float64{1, 2, 5, 20} {
		// Scatter each image's patches across the servers and pool locally.
		split := codes.Split(servers, 4)
		pools := make([]*repro.Matrix, servers)
		for t, c := range split {
			pool, err := c.Pool(p)
			if err != nil {
				log.Fatal(err)
			}
			pools[t] = pool
		}

		// Encode for the softmax model: share = |pool|^p / s, so that
		// f(Σ shares) = GM across servers.
		locals := make([]*repro.Matrix, servers)
		for t, pool := range pools {
			locals[t] = repro.PrepareGM(pool, p, servers)
		}

		cluster, err := repro.New(servers)
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.SetLocalData(locals); err != nil {
			log.Fatal(err)
		}
		res, err := cluster.PCA(context.Background(), repro.SoftmaxGM(p), repro.WithRank(k), repro.WithRows(300), repro.WithSeed(17))
		if err != nil {
			log.Fatal(err)
		}

		// Ground truth for evaluation only.
		A := pooling.GlobalGM(pools, p)
		got := repro.ProjectionError2(A, res.Projection)
		opt := repro.BestRankKError2(A, k)
		fmt.Printf("P=%-3g additive error %.2e, relative %.4f, communication %d words (data %d)\n",
			p, (got-opt)/A.FrobNorm2(), got/opt, res.Words, servers*images*codebook)
	}
	fmt.Println("\nlarger P pushes the pooled features toward max pooling while the")
	fmt.Println("sampler cost stays independent of P (Section VI-B of the paper).")
}
