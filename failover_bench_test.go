package repro

// Failover-latency benchmarks: each op is one complete worker-loss
// cycle — a job is interrupted by a dead link, the fabric heals (a
// HealLink on mem, a spare worker's rejoin handshake plus share
// re-installation on TCP), and the retried job completes. failover-ns
// is the mean loss-to-result latency; on TCP it covers the entire
// re-placement machine (vacancy detection, join handshake, quiesce
// gate, share re-feed, engine resume). Regenerate with: make bench-json
//
//	BENCH_JSON=BENCH_pr10.json make bench-json

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
)

// failoverOptions shapes the benchmark job; matches the jobs-throughput
// benchmarks so words/job is comparable across BENCH files.
var failoverOptions = Options{K: 3, Rows: 24, Seed: 17}

func BenchmarkFailoverMem(b *testing.B) {
	const n, d, s, victim = 96, 12, 3, 2
	c, err := NewCluster(s)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.SetLocalData(benchShares(n, d, s, 5)); err != nil {
		b.Fatal(err)
	}
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: 1}); err != nil {
		b.Fatal(err)
	}
	tr, ok := c.net.Transport().(*comm.MemTransport)
	if !ok {
		b.Fatal("mem cluster without MemTransport")
	}
	var lat time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		// Poison the victim's link before the job's first round so the
		// loss is observed deterministically; heal inside the retry
		// backoff window so the requeued run finds the fabric whole.
		tr.FailLink(victim, ErrWorkerLost)
		j, err := c.Submit(context.Background(), Identity(), failoverOptions)
		if err != nil {
			b.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond)
		tr.HealLink(victim)
		if _, err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		lat += time.Since(start)
	}
	b.StopTimer()
	b.ReportMetric(float64(lat.Nanoseconds())/float64(b.N), "failover-ns")
}

func BenchmarkFailoverTCP(b *testing.B) {
	const n, d, s, victim = 96, 12, 3, 2
	c, err := ListenCluster(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i < s; i++ {
		go func() {
			_ = JoinWorker(testCtx(30*time.Second), c.Addr())
		}()
	}
	if err := c.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		b.Fatal(err)
	}
	if err := c.SetLocalData(benchShares(n, d, s, 5)); err != nil {
		b.Fatal(err)
	}
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: 1}); err != nil {
		b.Fatal(err)
	}
	// One persistent spare: redials whenever its link dies (each op kills
	// the victim slot's current occupant), exits on clean shutdown.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := cluster.DialBatch(context.Background(), c.Addr(), 0); err == nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	var lat time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := c.coord.DropWorker(victim); err != nil {
			b.Fatal(err)
		}
		j, err := c.Submit(context.Background(), Identity(), failoverOptions)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		lat += time.Since(start)
	}
	b.StopTimer()
	b.ReportMetric(float64(lat.Nanoseconds())/float64(b.N), "failover-ns")
	if got := c.MembershipStats().Failovers; got < int64(b.N) {
		b.Fatalf("recorded %d failovers over %d ops", got, b.N)
	}
	stop.Store(true)
	c.Close()
	wg.Wait()
}
