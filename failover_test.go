package repro

// Failover determinism gates: killing a worker mid-batch on a
// membership-enabled TCP cluster and letting a spare take over the slot
// must leave every per-job fingerprint (word and byte ledgers, per-tag
// breakdown, sampled rows, projection) bit-identical to an undisturbed
// run — a retried job reuses its id, hence its derived seed, hence its
// transcript. The sweep covers wire batch sizes 1 (off), 8 and 0
// (unlimited) because failover interacts with framing: an interrupted
// batch envelope must not leak partial replies into the retry.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// failoverCluster is tcpCluster's chaos twin: its in-goroutine workers
// tolerate losing their link, because the test severs one on purpose.
func failoverCluster(t *testing.T, s int) *Cluster {
	t.Helper()
	c, err := ListenCluster(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < s; i++ {
		go func() {
			_ = JoinWorker(testCtx(30*time.Second), c.Addr())
		}()
	}
	if err := c.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	return c
}

// rejoinSpare dials the coordinator until it wins a vacated slot (any
// pre-vacancy or handshake-race rejection just backs off), then serves
// as the replacement worker until the cluster shuts down.
func rejoinSpare(c *Cluster, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			ctx, cancel := context.WithDeadline(context.Background(), deadline)
			err := cluster.DialBatch(ctx, c.Addr(), 0)
			cancel()
			if err == nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
}

// submitFailoverJobs submits k jobs with per-job wire batching and
// returns them unwaited, so the caller can kill a worker while they run.
func submitFailoverJobs(t *testing.T, c *Cluster, k, conc, batch int) []*Job {
	t.Helper()
	if err := c.ConfigureEngine(EngineConfig{MaxConcurrent: conc}); err != nil {
		t.Fatal(err)
	}
	jobs := make([]*Job, k)
	for i := range jobs {
		j, err := c.Submit(context.Background(), Identity(), Options{K: 3, Rows: 40, Boost: 6, Seed: 4242, BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	return jobs
}

func waitFingerprints(t *testing.T, jobs []*Job) []jobFingerprint {
	t.Helper()
	out := make([]jobFingerprint, len(jobs))
	for i, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
		out[i] = fingerprintResult(res)
	}
	return out
}

// TestFailoverMidJobDeterminismTCP kills worker 2 while a batch of jobs
// runs, rejoins a spare into the vacated slot, and requires the
// disturbed run's fingerprints to match an undisturbed in-memory
// baseline exactly — at every wire batch size.
func TestFailoverMidJobDeterminismTCP(t *testing.T) {
	const s, k, conc = 4, 8, 2
	shares := jobShares(61, 120, 10, s)

	base, err := NewCluster(s)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if err := base.SetLocalData(shares); err != nil {
		t.Fatal(err)
	}
	want := waitFingerprints(t, submitFailoverJobs(t, base, k, conc, 0))

	for _, batch := range []int{1, 8, 0} {
		t.Run(batchName(batch), func(t *testing.T) {
			c := failoverCluster(t, s)
			defer c.Close()
			if err := c.SetLocalData(shares); err != nil {
				t.Fatal(err)
			}
			jobs := submitFailoverJobs(t, c, k, conc, batch)
			// Let the engine get jobs in flight, then sever a worker and
			// send in the spare.
			time.Sleep(25 * time.Millisecond)
			if err := c.coord.DropWorker(2); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			rejoinSpare(c, &wg)

			got := waitFingerprints(t, jobs)
			compareFingerprints(t, want, got)

			stats := c.MembershipStats()
			if stats.Failovers < 1 {
				t.Fatalf("no failover recorded: %+v", stats)
			}
			c.Close()
			wg.Wait()
		})
	}
}

func batchName(batch int) string {
	switch batch {
	case 0:
		return "batch=unlimited"
	case 1:
		return "batch=off"
	default:
		return "batch=8"
	}
}
