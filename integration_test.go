package repro

// Integration tests exercising full protocol stacks across module
// boundaries: public API → core framework → samplers → zsampler → hh →
// sketch → comm, with ground truth from internal/baseline.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/matrix"
	"repro/internal/pooling"
	"repro/internal/samplers"
	"repro/internal/zsampler"
)

// TestDistributedMatchesFKVRegime: at equal sample counts, the distributed
// Z-sampler protocol must land in the same error regime as the centralized
// FKV ideal — the entire point of Sections III–V.
func TestDistributedMatchesFKVRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	M := lowRankMatrix(rng, 400, 20, 5, 0.2)
	s, k, r := 4, 5, 250
	locals := splitMatrix(M, s, rng)

	c := mustCluster(t, s)
	if err := c.SetLocalData(locals); err != nil {
		t.Fatal(err)
	}
	res, err := c.PCA(context.Background(), Identity(), Options{K: k, Rows: r, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	A, _ := c.ImplicitMatrix(Identity())
	distributed := baseline.Evaluate(A, res.Projection, k, -1)

	fkvP := baseline.FKV(A, k, r, 3)
	ideal := baseline.Evaluate(A, fkvP, k, -1)

	t.Logf("distributed additive %.4g, FKV additive %.4g", distributed.Additive, ideal.Additive)
	if distributed.Additive > 10*ideal.Additive+0.05 {
		t.Fatalf("distributed %.4g far above FKV ideal %.4g", distributed.Additive, ideal.Additive)
	}
}

// TestPublicAPIDeterministic: the same seed must produce the identical
// projection, bit for bit, across complete protocol runs.
func TestPublicAPIDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	M := lowRankMatrix(rng, 150, 10, 3, 0.2)
	run := func() *Matrix {
		r2 := rand.New(rand.NewSource(77))
		c := mustCluster(t, 3)
		if err := c.SetLocalData(splitMatrix(M, 3, r2)); err != nil {
			t.Fatal(err)
		}
		res, err := c.PCA(context.Background(), Huber(100), Options{K: 3, Rows: 80, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Projection
	}
	if !run().Equalf(run(), 0) {
		t.Fatal("same-seed runs differ")
	}
}

// TestCommunicationScalesWithSamples verifies the O(s·k²·d/ε² + C)
// structure of Theorem 1: doubling r adds ≈ r·(s−1)·d words on top of the
// fixed sketching cost C.
func TestCommunicationScalesWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	M := lowRankMatrix(rng, 300, 16, 4, 0.2)
	s := 5
	words := func(r int) int64 {
		r2 := rand.New(rand.NewSource(9))
		c := mustCluster(t, s)
		if err := c.SetLocalData(splitMatrix(M, s, r2)); err != nil {
			t.Fatal(err)
		}
		res, err := c.PCA(context.Background(), Identity(), Options{K: 4, Rows: r, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res.Words
	}
	w100 := words(100)
	w200 := words(200)
	// Each extra row costs one request word plus d row words per non-CP
	// server (the row index announcement is a real frame too).
	perRow := int64((s - 1) * (16 + 1))
	gotDelta := w200 - w100
	wantDelta := 100 * perRow
	if gotDelta != wantDelta {
		t.Fatalf("marginal cost of 100 rows = %d words, want %d", gotDelta, wantDelta)
	}
}

// TestGMPooledEndToEnd drives the complete Caltech-style pipeline through
// internal packages directly (codes → split → pool → shares → Z-sampler →
// Algorithm 1) and checks the additive bound.
func TestGMPooledEndToEnd(t *testing.T) {
	codes := pooling.SyntheticCodes(200, 64, 80, 1.1, 11)
	s, p, k := 5, 5.0, 4
	split := codes.Split(s, 13)
	pools := make([]*Matrix, s)
	for t2, part := range split {
		pool, err := part.Pool(p)
		if err != nil {
			t.Fatal(err)
		}
		pools[t2] = pool
	}
	locals := pooling.GMShares(pools, p)
	A := pooling.GlobalGM(pools, p)

	net := comm.NewNetwork(s)
	g := fn.GM{P: p}
	zp := zsampler.ParamsForBudget(int64(200*64), s, 200*64, 17)
	zr, err := samplers.NewZRow(context.Background(), net, matrix.AsMats(locals), g, zp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), net, zr, g, 64, core.Options{K: k, R: 200})
	if err != nil {
		t.Fatal(err)
	}
	m := baseline.Evaluate(A, res.P, k, -1)
	t.Logf("pooled GM additive %.4g relative %.4g words %d", m.Additive, m.Relative, net.Words())
	if m.Additive > 0.15 {
		t.Fatalf("additive error %.4g", m.Additive)
	}
}

// TestEpsilonDrivesSampleCount: tightening ε without an explicit Rows
// override must increase r and decrease error on average.
func TestEpsilonDrivesSampleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	M := lowRankMatrix(rng, 500, 12, 3, 0.4)
	s := 3
	runEps := func(eps float64) (int, float64) {
		r2 := rand.New(rand.NewSource(21))
		c := mustCluster(t, s)
		if err := c.SetLocalData(splitMatrix(M, s, r2)); err != nil {
			t.Fatal(err)
		}
		res, err := c.PCA(context.Background(), Identity(), Options{K: 3, Eps: eps, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		A, _ := c.ImplicitMatrix(Identity())
		return len(res.SampledRows), baseline.Evaluate(A, res.Projection, 3, -1).Additive
	}
	rLoose, errLoose := runEps(0.9)
	rTight, errTight := runEps(0.25)
	if rTight <= rLoose {
		t.Fatalf("tighter ε did not increase r: %d vs %d", rTight, rLoose)
	}
	if errTight > errLoose+0.02 {
		t.Fatalf("tighter ε worsened error: %.4g vs %.4g", errTight, errLoose)
	}
}

// TestHuberSampleBias: with a bounded ψ the Z-sampler must not
// over-concentrate on the (capped) outlier rows — capped entries carry
// weight K², not their raw magnitude.
func TestHuberSampleBias(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	M := lowRankMatrix(rng, 300, 10, 3, 0.1)
	// One row full of enormous values.
	for j := 0; j < 10; j++ {
		M.Set(7, j, 1e6)
	}
	s := 3
	locals := splitMatrix(M, s, rng)
	c := mustCluster(t, s)
	if err := c.SetLocalData(locals); err != nil {
		t.Fatal(err)
	}
	f := Huber(5)
	res, err := c.PCA(context.Background(), f, Options{K: 3, Rows: 200, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, r := range res.SampledRows {
		if r == 7 {
			hits++
		}
	}
	// Row 7's capped share of ‖ψ(A)‖² is 10K²/(Σ) — a few percent, far from
	// the ≈100% its raw magnitude would demand.
	A, _ := c.ImplicitMatrix(f)
	share := A.RowNorm2(7) / A.FrobNorm2()
	maxExpected := int(float64(len(res.SampledRows))*share*5) + 8
	if hits > maxExpected {
		t.Fatalf("capped outlier row drawn %d/200 times (share %.3f)", hits, share)
	}
}

// TestProjectionActuallyProjects: A·P rows lie in the basis span and the
// projection leaves basis vectors fixed.
func TestProjectionActuallyProjects(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	M := lowRankMatrix(rng, 100, 8, 3, 0.2)
	c := mustCluster(t, 2)
	if err := c.SetLocalData(splitMatrix(M, 2, rng)); err != nil {
		t.Fatal(err)
	}
	res, err := c.PCA(context.Background(), Identity(), Options{K: 3, Rows: 80, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	P, V := res.Projection, res.Basis
	// P·v = v for basis columns.
	for j := 0; j < V.Cols(); j++ {
		col := V.ColCopy(j)
		pv := P.MulVec(col)
		for i := range col {
			if math.Abs(pv[i]-col[i]) > 1e-8 {
				t.Fatal("P does not fix its own basis")
			}
		}
	}
	// P annihilates vectors orthogonal to the basis.
	ortho := make([]float64, 8)
	rng2 := rand.New(rand.NewSource(1))
	for i := range ortho {
		ortho[i] = rng2.NormFloat64()
	}
	for j := 0; j < V.Cols(); j++ {
		col := V.ColCopy(j)
		dot := 0.0
		for i := range col {
			dot += col[i] * ortho[i]
		}
		for i := range col {
			ortho[i] -= dot * col[i]
		}
	}
	po := P.MulVec(ortho)
	for i := range po {
		if math.Abs(po[i]) > 1e-8 {
			t.Fatal("P does not annihilate the orthogonal complement")
		}
	}
}
