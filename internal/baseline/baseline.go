// Package baseline provides the reference computations the distributed
// protocols are measured against: exact centralized PCA (for the ground
// truth ‖A−[A]_k‖_F²), the Frieze–Kannan–Vempala additive-error sampling
// algorithm with exact probabilities (reference [11]), and error metrics
// matching the paper's evaluation (Section VIII).
package baseline

import (
	"math"

	"repro/internal/hashing"
	"repro/internal/matrix"
)

// ExactPCA returns the best rank-k projection of A (from the full SVD) and
// the optimal residual ‖A−[A]_k‖_F².
func ExactPCA(A *matrix.Dense, k int) (P *matrix.Dense, residual2 float64) {
	svd := matrix.SVD(A)
	d := A.Cols()
	if k > d {
		k = d
	}
	V := svd.V.SubMatrix(0, d, 0, k)
	P = V.Mul(V.T())
	var captured float64
	for i := 0; i < k && i < len(svd.Values); i++ {
		captured += svd.Values[i] * svd.Values[i]
	}
	residual2 = A.FrobNorm2() - captured
	if residual2 < 0 {
		residual2 = 0
	}
	return P, residual2
}

// Spectrum returns the squared singular values of A in descending order.
func Spectrum(A *matrix.Dense) []float64 {
	svd := matrix.SVD(A)
	out := make([]float64, len(svd.Values))
	for i, s := range svd.Values {
		out[i] = s * s
	}
	return out
}

// OptimalResiduals returns ‖A−[A]_k‖_F² for every k in ks from one SVD.
func OptimalResiduals(A *matrix.Dense, ks []int) map[int]float64 {
	spec := Spectrum(A)
	total := A.FrobNorm2()
	out := make(map[int]float64, len(ks))
	for _, k := range ks {
		var cap float64
		for i := 0; i < k && i < len(spec); i++ {
			cap += spec[i]
		}
		r := total - cap
		if r < 0 {
			r = 0
		}
		out[k] = r
	}
	return out
}

// FKV runs the Frieze–Kannan–Vempala sampling algorithm centrally with
// exact squared-norm probabilities: sample r rows of A with Q_i =
// ‖A_i‖²/‖A‖_F², rescale by 1/√(rQ_i), project onto the top-k right
// singular vectors of the sample. It is the idealized algorithm that
// Algorithm 1 implements distributively with approximate probabilities.
func FKV(A *matrix.Dense, k, r int, seed int64) *matrix.Dense {
	n, d := A.Dims()
	total := A.FrobNorm2()
	cum := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += A.RowNorm2(i) / total
		cum[i] = acc
	}
	rng := hashing.Seeded(seed)
	B := matrix.NewDense(r, d)
	for t := 0; t < r; t++ {
		x := rng.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		q := A.RowNorm2(lo) / total
		scale := 1 / math.Sqrt(float64(r)*q)
		src := A.Row(lo)
		dst := B.Row(t)
		for c, v := range src {
			dst[c] = v * scale
		}
	}
	return matrix.ProjectionTopK(B, k)
}

// Metrics bundles the two errors the paper plots for a computed projection.
type Metrics struct {
	// Additive is |‖A−AP‖_F² − ‖A−[A]_k‖_F²| / ‖A‖_F² (Figure 1's y-axis).
	Additive float64
	// Relative is ‖A−AP‖_F² / ‖A−[A]_k‖_F² (Figure 2's y-axis).
	Relative float64
	// Residual2 is ‖A−AP‖_F².
	Residual2 float64
	// Optimal2 is ‖A−[A]_k‖_F².
	Optimal2 float64
}

// Evaluate measures a projection P against ground truth for rank k.
// optimal2 may be precomputed (pass ≥ 0) to avoid repeated SVDs; pass a
// negative value to compute it here.
func Evaluate(A, P *matrix.Dense, k int, optimal2 float64) Metrics {
	if optimal2 < 0 {
		_, optimal2 = ExactPCA(A, k)
	}
	res := matrix.ProjectionError2(A, P)
	total := A.FrobNorm2()
	m := Metrics{Residual2: res, Optimal2: optimal2}
	if total > 0 {
		m.Additive = math.Abs(res-optimal2) / total
	}
	// ‖A−AP‖² ≥ ‖A−[A]_k‖² holds mathematically; an optimal residual at
	// roundoff level (exactly low-rank input) is treated as zero so the
	// ratio stays meaningful.
	switch {
	case optimal2 > 1e-12*total:
		m.Relative = res / optimal2
		if m.Relative < 1 {
			m.Relative = 1
		}
	case res <= 1e-12*total:
		m.Relative = 1
	default:
		m.Relative = math.Inf(1)
	}
	return m
}
