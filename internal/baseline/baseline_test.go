package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func lowRank(rng *rand.Rand, n, d, rank int, noise float64) *matrix.Dense {
	u := matrix.NewDense(n, rank)
	v := matrix.NewDense(d, rank)
	for i := range u.Data() {
		u.Data()[i] = rng.NormFloat64()
	}
	for i := range v.Data() {
		v.Data()[i] = rng.NormFloat64()
	}
	m := u.Mul(v.T())
	for i := range m.Data() {
		m.Data()[i] += noise * rng.NormFloat64()
	}
	return m
}

func TestExactPCAOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	A := lowRank(rng, 60, 10, 3, 0.1)
	P, res := ExactPCA(A, 3)
	if math.Abs(res-matrix.BestRankKError2(A, 3)) > 1e-7*A.FrobNorm2() {
		t.Fatal("residual mismatch")
	}
	if math.Abs(matrix.ProjectionError2(A, P)-res) > 1e-7*A.FrobNorm2() {
		t.Fatal("projection residual mismatch")
	}
}

func TestSpectrumSumsToEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	A := lowRank(rng, 40, 8, 4, 0.2)
	spec := Spectrum(A)
	var sum float64
	for _, s := range spec {
		sum += s
	}
	if math.Abs(sum-A.FrobNorm2()) > 1e-7*A.FrobNorm2() {
		t.Fatal("spectrum energy")
	}
	for i := 1; i < len(spec); i++ {
		if spec[i] > spec[i-1]+1e-9 {
			t.Fatal("spectrum not sorted")
		}
	}
}

func TestOptimalResidualsMatchSingleSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	A := lowRank(rng, 50, 9, 3, 0.3)
	res := OptimalResiduals(A, []int{1, 3, 5, 9})
	for k, v := range res {
		if math.Abs(v-matrix.BestRankKError2(A, k)) > 1e-6*A.FrobNorm2() {
			t.Fatalf("k=%d: %g vs %g", k, v, matrix.BestRankKError2(A, k))
		}
	}
}

// TestFKVAdditiveError reproduces the Frieze–Kannan–Vempala guarantee the
// whole paper builds on: sampling ∝ squared row norms gives additive error.
func TestFKVAdditiveError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	A := lowRank(rng, 500, 12, 4, 0.2)
	k := 4
	P := FKV(A, k, 400, 5)
	add := (matrix.ProjectionError2(A, P) - matrix.BestRankKError2(A, k)) / A.FrobNorm2()
	if add > 0.05 {
		t.Fatalf("FKV additive error %g", add)
	}
}

func TestFKVErrorDecreasesWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	A := lowRank(rng, 400, 10, 3, 0.5)
	k := 3
	errAt := func(r int) float64 {
		var sum float64
		for trial := 0; trial < 5; trial++ {
			P := FKV(A, k, r, int64(trial))
			sum += (matrix.ProjectionError2(A, P) - matrix.BestRankKError2(A, k)) / A.FrobNorm2()
		}
		return sum / 5
	}
	small, large := errAt(15), errAt(600)
	t.Logf("err(15)=%g err(600)=%g", small, large)
	if large > small {
		t.Fatal("more samples made FKV worse")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	A := lowRank(rng, 30, 6, 2, 0.1)
	P, opt := ExactPCA(A, 2)
	m := Evaluate(A, P, 2, opt)
	if m.Additive > 1e-9 {
		t.Fatalf("optimal projection has additive error %g", m.Additive)
	}
	if math.Abs(m.Relative-1) > 1e-6 {
		t.Fatalf("optimal projection has relative error %g", m.Relative)
	}
	// With optimal2 < 0, Evaluate computes it itself.
	m2 := Evaluate(A, P, 2, -1)
	if math.Abs(m2.Additive-m.Additive) > 1e-12 {
		t.Fatal("self-computed optimal mismatch")
	}
}

func TestEvaluateWorseProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	A := lowRank(rng, 30, 6, 2, 0.1)
	// Projection onto the *bottom* singular vectors: terrible.
	svd := matrix.SVD(A)
	V := svd.V.SubMatrix(0, 6, 4, 6)
	P := V.Mul(V.T())
	m := Evaluate(A, P, 2, -1)
	if m.Relative < 1 {
		t.Fatalf("bad projection has relative %g < 1", m.Relative)
	}
	if m.Additive <= 0 {
		t.Fatalf("bad projection has additive %g", m.Additive)
	}
}

func TestEvaluateZeroResidualCases(t *testing.T) {
	// Exactly rank-1 matrix, k=1: optimal residual 0, relative defined as 1
	// when the protocol also achieves 0.
	u := matrix.FromRows([][]float64{{1}, {2}, {3}})
	v := matrix.FromRows([][]float64{{4, 5}})
	A := u.Mul(v)
	P, opt := ExactPCA(A, 1)
	if opt > 1e-9 {
		t.Fatalf("rank-1 optimal residual %g", opt)
	}
	m := Evaluate(A, P, 1, opt)
	if m.Relative != 1 {
		t.Fatalf("relative = %g for exact recovery of rank-1", m.Relative)
	}
}
