// Package cli holds the cluster bring-up logic the commands share:
// building a mem or TCP fabric, self-spawning worker processes by
// re-executing the current binary with a -worker-join flag, and tearing
// everything down exactly once.
package cli

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"repro"
)

// Connect builds the requested cluster fabric and returns it with an
// idempotent cleanup function (worker shutdown for tcp). With transport
// "tcp" and spawn true, s−1 worker OS processes are started by
// re-executing this binary with "-worker-join <addr>" (both dlra-pca and
// dlra-serve implement that flag); with spawn false the coordinator waits
// for external dlra-worker processes. announce, if non-nil, is called
// with the coordinator address and the spawned-process count after
// listening starts but before workers are awaited — so users of external
// workers see where to join while the coordinator blocks.
func Connect(transport string, servers int, listen string, spawn bool, announce func(addr string, spawned int)) (*repro.Cluster, func(), error) {
	switch transport {
	case "mem":
		c, err := repro.NewCluster(servers)
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	case "tcp":
		c, err := repro.ListenCluster(servers, listen)
		if err != nil {
			return nil, nil, err
		}
		var procs []*exec.Cmd
		if spawn {
			self, err := os.Executable()
			if err != nil {
				c.Close()
				return nil, nil, err
			}
			for i := 1; i < servers; i++ {
				cmd := exec.Command(self, "-worker-join", c.Addr())
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					c.Close()
					return nil, nil, fmt.Errorf("spawning worker %d: %w", i, err)
				}
				procs = append(procs, cmd)
			}
		}
		if announce != nil {
			announce(c.Addr(), len(procs))
		}
		var once sync.Once
		cleanup := func() {
			once.Do(func() {
				c.Close()
				for _, p := range procs {
					p.Wait()
				}
			})
		}
		if err := c.AwaitWorkers(60 * time.Second); err != nil {
			cleanup()
			return nil, nil, err
		}
		return c, cleanup, nil
	default:
		return nil, nil, fmt.Errorf("unknown transport %q", transport)
	}
}
