// Package cli holds the cluster bring-up logic the commands share:
// building a mem or TCP fabric, self-spawning worker processes by
// re-executing the current binary with a -worker-join flag, and tearing
// everything down exactly once. All blocking steps are ctx-based — one
// context bounds the whole bring-up instead of per-call duration flags.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/cluster"
)

// DefaultJoinWait bounds how long a worker retries its initial connection
// to the coordinator (workers typically start first).
const DefaultJoinWait = 30 * time.Second

// JoinWorker runs a worker process's serve loop against the coordinator
// at addr, retrying the initial connection for up to wait — the single
// implementation behind every binary's -worker-join / -join flag, so the
// retry loop lives here once instead of per command. replyBatch caps how
// many replies the worker coalesces into one wire batch envelope (0 =
// one envelope per request envelope, 1 = individual replies); it shapes
// framing only, never the reply frames or their order.
func JoinWorker(addr string, wait time.Duration, replyBatch int) error {
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	return cluster.DialBatch(ctx, addr, replyBatch)
}

// RejoinWorker runs an elastic worker: join the coordinator, serve
// until the cluster shuts down cleanly (returns nil), and on a lost
// link dial back in to take over a vacated slot — the -rejoin mode of
// cmd/dlra-worker, and the replacement half of a failover. Every
// (re)join attempt has a wait-bounded window. cluster.ErrNoVacancy —
// the coordinator has no vacated slot yet, typically because the
// failure detector has not declared the crashed predecessor dead —
// backs off briefly and retries inside the window; a window that
// expires without completing a handshake gives up with the last error.
func RejoinWorker(addr string, wait time.Duration, replyBatch int) error {
	for {
		deadline := time.Now().Add(wait)
		for {
			ctx, cancel := context.WithDeadline(context.Background(), deadline)
			err := cluster.DialBatch(ctx, addr, replyBatch)
			cancel()
			if err == nil {
				return nil
			}
			if errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			if !errors.Is(err, cluster.ErrNoVacancy) {
				// Served and lost the link (or a broken handshake): go
				// around with a fresh window and rejoin.
				break
			}
			if time.Now().Add(noVacancyBackoff).After(deadline) {
				return err
			}
			time.Sleep(noVacancyBackoff)
		}
	}
}

// noVacancyBackoff spaces a rejoining worker's attempts while it waits
// for the coordinator's detector to vacate its slot.
const noVacancyBackoff = 100 * time.Millisecond

// Connect builds the requested cluster fabric and returns it with an
// idempotent cleanup function (worker shutdown for tcp). With transport
// "tcp" and spawn true, s−1 worker OS processes are started by
// re-executing this binary with "-worker-join <addr>" (both dlra-pca and
// dlra-serve implement that flag); with spawn false the coordinator waits
// for external dlra-worker processes. batch is forwarded to spawned
// workers as their reply-batching cap (external workers set their own
// -batch). ctx bounds the worker bring-up (AwaitWorkers); a ctx without
// a deadline gets a 60-second one so a missing worker cannot hang the
// command forever. announce, if non-nil, is called with the coordinator
// address and the spawned-process count after listening starts but
// before workers are awaited — so users of external workers see where to
// join while the coordinator blocks.
func Connect(ctx context.Context, transport string, servers int, listen string, spawn bool, batch int, announce func(addr string, spawned int)) (*repro.Cluster, func(), error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch transport {
	case "mem":
		c, err := repro.NewCluster(servers)
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	case "tcp":
		c, err := repro.ListenCluster(servers, listen)
		if err != nil {
			return nil, nil, err
		}
		var procs []*exec.Cmd
		if spawn {
			self, err := os.Executable()
			if err != nil {
				c.Close()
				return nil, nil, err
			}
			for i := 1; i < servers; i++ {
				cmd := exec.Command(self, "-worker-join", c.Addr(), "-batch", strconv.Itoa(batch))
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					c.Close()
					return nil, nil, fmt.Errorf("spawning worker %d: %w", i, err)
				}
				procs = append(procs, cmd)
			}
		}
		if announce != nil {
			announce(c.Addr(), len(procs))
		}
		var once sync.Once
		cleanup := func() {
			once.Do(func() {
				c.Close()
				for _, p := range procs {
					p.Wait()
				}
			})
		}
		awaitCtx := ctx
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			awaitCtx, cancel = context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
		}
		if err := c.AwaitWorkers(awaitCtx); err != nil {
			cleanup()
			return nil, nil, err
		}
		return c, cleanup, nil
	default:
		return nil, nil, fmt.Errorf("unknown transport %q", transport)
	}
}
