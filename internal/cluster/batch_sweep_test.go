package cluster

// Batch-size determinism sweep: the op-batching layer is pure wire
// framing, so for a fixed seed the complete ledger — words, bytes, tags,
// per-link order, the full transcript — and the protocol result must be
// bit-identical to the in-memory run at EVERY batch size: 1 (batching
// off), a mid-size flush threshold, and 0 (one envelope per pipelined
// sequence). The batch side ledger proves batching actually engaged where
// it should and stayed out where it shouldn't.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/matrix"
)

// assertRunsEqual demands two protocol runs are indistinguishable in
// every observable: totals, per-tag and per-link ledgers, the message
// transcript, sampled rows and the projection.
func assertRunsEqual(t *testing.T, label string, want, got runStats) {
	t.Helper()
	if want.words != got.words || want.msgs != got.msgs || want.bytes != got.bytes {
		t.Fatalf("%s: ledger totals differ: want %d words/%d msgs/%d bytes, got %d/%d/%d",
			label, want.words, want.msgs, want.bytes, got.words, got.msgs, got.bytes)
	}
	if !reflect.DeepEqual(want.byTag, got.byTag) {
		t.Fatalf("%s: per-tag words differ:\nwant %v\ngot  %v", label, want.byTag, got.byTag)
	}
	if !reflect.DeepEqual(want.byTagB, got.byTagB) {
		t.Fatalf("%s: per-tag bytes differ:\nwant %v\ngot  %v", label, want.byTagB, got.byTagB)
	}
	if !reflect.DeepEqual(want.byLink, got.byLink) {
		t.Fatalf("%s: per-link words differ:\nwant %v\ngot  %v", label, want.byLink, got.byLink)
	}
	if len(want.trace) != len(got.trace) {
		t.Fatalf("%s: transcript lengths differ: %d vs %d", label, len(want.trace), len(got.trace))
	}
	for i := range want.trace {
		if want.trace[i] != got.trace[i] {
			t.Fatalf("%s: transcript message %d differs:\nwant %+v\ngot  %+v", label, i, want.trace[i], got.trace[i])
		}
	}
	if !reflect.DeepEqual(want.rows, got.rows) {
		t.Fatalf("%s: sampled rows differ: want %v, got %v", label, want.rows, got.rows)
	}
	if !want.project.Equalf(got.project, 0) {
		t.Fatalf("%s: projection matrices differ bitwise", label)
	}
}

// TestBatchSizeSweepTranscripts is the tentpole determinism gate: the
// mem run is the canonical transcript, and TCP runs at batch sizes 1, 8
// and 0 (unlimited) must all reproduce it exactly.
func TestBatchSizeSweepTranscripts(t *testing.T) {
	const n, d, s, seed = 80, 10, 4, 1234
	locals := buildShares(seed, n, d, s)
	mem := runProtocol(t, comm.NewNetwork(s), locals, seed)

	for _, batch := range []int{1, 8, 0} {
		coord := startTCP(t, locals)
		net := coord.Network()
		net.SetBatchSize(batch)
		tcp := runProtocol(t, net, coord.MaskShares(locals), seed)
		sent, recv, over := net.BatchOverhead()
		coord.Close()

		label := fmt.Sprintf("batch=%d", batch)
		assertRunsEqual(t, label, mem, tcp)
		if batch == 1 {
			// Batching disabled: no envelope may touch the wire in either
			// direction (workers batch replies only per request envelope).
			if sent != 0 || recv != 0 || over != 0 {
				t.Fatalf("%s: envelopes on the wire with batching off: sent %d, recv %d, %d overhead bytes",
					label, sent, recv, over)
			}
		} else {
			// Batching on: the pipelined rounds must actually coalesce, and
			// the overhead must live only in the side ledger (the word/byte
			// equality above already proved it never reached a tag).
			if sent == 0 || recv == 0 {
				t.Fatalf("%s: batching never engaged: sent %d, recv %d envelopes", label, sent, recv)
			}
			if over <= 0 {
				t.Fatalf("%s: %d envelopes with %d overhead bytes", label, sent+recv, over)
			}
		}
	}
}

// TestBatchSizeSweepBackends crosses batching with the storage backends:
// CSR and fast-dense shares at a mid-size batch must still reproduce the
// canonical dense mem transcript (the PR 2 backend-invariance contract
// composed with the batching layer).
func TestBatchSizeSweepBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("backend×batch sweep skipped in -short")
	}
	const n, d, s, seed = 80, 10, 4, 1234
	dense := buildShares(seed, n, d, s)
	mem := runProtocol(t, comm.NewNetwork(s), dense, seed)

	for _, backend := range []matrix.Backend{matrix.BackendCSR, matrix.BackendFast} {
		shares := backend.Apply(append([]matrix.Mat(nil), dense...))
		coord := startTCP(t, shares)
		net := coord.Network()
		net.SetBatchSize(8)
		tcp := runProtocol(t, net, coord.MaskShares(shares), seed)
		coord.Close()
		assertRunsEqual(t, fmt.Sprintf("%s/batch=8", backend), mem, tcp)
	}
}
