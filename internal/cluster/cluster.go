// Package cluster turns the simulated star topology into a real one: a
// coordinator process hosting the CP and its accounting fabric, plus
// worker processes each hosting one server's share and executing protocol
// ops against it. The wire protocol is the comm codec's frame format over
// length-prefixed TCP; the op vocabulary (and its single implementation of
// every share-side computation) is package ops, so a worker's reply is
// byte-identical to what the in-process execution of the same op produces
// — which is exactly what makes mem and tcp transcripts comparable.
//
// Lifecycle:
//
//	coord, _ := cluster.Listen(s, "127.0.0.1:0")
//	// workers: cluster.Dial(coord.Addr()) in other processes (or goroutines)
//	coord.AwaitWorkers(timeout)
//	coord.InstallShares(locals)          // setup traffic, never charged
//	net := coord.Network()               // remote-aware accounting fabric
//	...protocols run against net with coord.MaskShares(locals)...
//	coord.Close()                        // shuts workers down
package cluster

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/comm"
	"repro/internal/hh"
	"repro/internal/matrix"
	"repro/internal/ops"
	"repro/internal/sketch"
)

// protocolVersion gates the worker handshake; bump when the op vocabulary
// changes incompatibly.
const protocolVersion = 1

// Setup tags (never charged — the model assumes data already resides on
// the servers; everything after setup is real, accounted protocol
// traffic).
const (
	tagHello    = "setup/hello"
	tagAssign   = "setup/assign"
	tagShare    = "setup/share"
	tagShutdown = "setup/shutdown"
)

// Coordinator owns the listening socket, the worker connections and the
// remote-aware accounting fabric.
type Coordinator struct {
	s     int
	ln    net.Listener
	conns []net.Conn
	tr    *comm.TCPTransport
	net   *comm.Network
}

// Listen starts a coordinator for s servers (the CP plus s−1 workers to
// come) on addr (use "127.0.0.1:0" for an ephemeral loopback port).
func Listen(s int, addr string) (*Coordinator, error) {
	if s < 2 {
		return nil, errors.New("cluster: a TCP cluster needs at least 2 servers (one worker)")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return &Coordinator{s: s, ln: ln, conns: make([]net.Conn, s)}, nil
}

// Addr returns the address workers should join.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// AwaitWorkers accepts and handshakes s−1 worker connections, assigning
// server ids 1…s−1 in connection order, then builds the TCP transport and
// the remote-aware fabric.
func (c *Coordinator) AwaitWorkers(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for t := 1; t < c.s; t++ {
		if tcpLn, ok := c.ln.(*net.TCPListener); ok {
			if err := tcpLn.SetDeadline(deadline); err != nil {
				return err
			}
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: waiting for worker %d/%d: %w", t, c.s-1, err)
		}
		// The handshake honors the same deadline as the accept loop: a
		// connected-but-silent peer (port scanner, crashed worker) must
		// not hang the coordinator.
		if err := conn.SetDeadline(deadline); err != nil {
			conn.Close()
			return err
		}
		hello, err := readFrame(conn, tagHello)
		if err != nil {
			conn.Close()
			return fmt.Errorf("cluster: worker %d handshake: %w", t, err)
		}
		if len(hello.Words) != 1 || hello.Words[0] != protocolVersion {
			conn.Close()
			return fmt.Errorf("cluster: worker %d speaks protocol %v, want %d", t, hello.Words, protocolVersion)
		}
		assign := &comm.Frame{Kind: comm.KindControl, From: comm.CP, To: t, Tag: tagAssign,
			Words: []uint64{uint64(t), uint64(c.s)}}
		if err := comm.WriteWireFrame(conn, comm.EncodeFrame(assign)); err != nil {
			conn.Close()
			return fmt.Errorf("cluster: worker %d assign: %w", t, err)
		}
		if err := conn.SetDeadline(time.Time{}); err != nil {
			conn.Close()
			return err
		}
		c.conns[t] = conn
	}
	c.tr = comm.NewTCPTransport(c.conns)
	remote := make([]bool, c.s)
	for t := 1; t < c.s; t++ {
		remote[t] = true
	}
	c.net = comm.NewNetworkWith(c.s, c.tr, remote)
	return nil
}

// Network returns the remote-aware accounting fabric (valid after
// AwaitWorkers).
func (c *Coordinator) Network() *comm.Network { return c.net }

// installChunkWords bounds the value payload of one share-install frame
// (8 MiB of values), comfortably under the codec's hard frame cap so a
// share of any size installs as a sequence of frames instead of one
// frame that cannot be encoded. A variable so tests can force multi-chunk
// installs with small matrices.
var installChunkWords = 1 << 20

// InstallShares ships share t to worker t as uncharged setup traffic (the
// protocol model's premise is that the data already resides on the
// servers; the install frames exist so the workers can answer ops, not as
// protocol communication). Shares travel dense, chunked, with a backend
// marker; CSR shares are rebuilt as CSR on the worker.
func (c *Coordinator) InstallShares(locals []matrix.Mat) error {
	if len(locals) != c.s {
		return fmt.Errorf("cluster: %d shares for %d servers", len(locals), c.s)
	}
	for t := 1; t < c.s; t++ {
		m := locals[t]
		if m == nil {
			return fmt.Errorf("cluster: share %d is nil", t)
		}
		backend := uint64(0)
		if _, ok := m.(*matrix.CSR); ok {
			backend = 1
		}
		vals := comm.FloatWords(ops.ShareDump(m))
		total := len(vals)
		for off := 0; ; off += installChunkWords {
			end := off + installChunkWords
			if end > total {
				end = total
			}
			// Chunk header: n, d, backend, offset, total values.
			words := []uint64{uint64(m.Rows()), uint64(m.Cols()), backend, uint64(off), uint64(total)}
			words = append(words, vals[off:end]...)
			f := &comm.Frame{Kind: comm.KindShare, Op: ops.OpInstallShare, From: comm.CP, To: t,
				Tag: tagShare, Words: words}
			if err := comm.WriteWireFrame(c.conns[t], comm.EncodeFrame(f)); err != nil {
				return fmt.Errorf("cluster: installing share on worker %d: %w", t, err)
			}
			if end == total {
				break
			}
		}
	}
	return nil
}

// MaskShares returns the coordinator-side view of the shares: the CP's own
// share in slot 0, nil for every worker-hosted share — protocol code can
// only reach those through the fabric.
func (c *Coordinator) MaskShares(locals []matrix.Mat) []matrix.Mat {
	masked := make([]matrix.Mat, c.s)
	masked[comm.CP] = locals[comm.CP]
	return masked
}

// Close asks every worker to shut down and releases the sockets.
func (c *Coordinator) Close() error {
	var first error
	for t := 1; t < c.s; t++ {
		if c.conns[t] == nil {
			continue
		}
		f := &comm.Frame{Kind: comm.KindControl, Op: ops.OpShutdown, From: comm.CP, To: t, Tag: tagShutdown}
		if err := comm.WriteWireFrame(c.conns[t], comm.EncodeFrame(f)); err != nil && first == nil {
			first = err
		}
	}
	if c.tr != nil {
		if err := c.tr.Close(); err != nil && first == nil {
			first = err
		}
	} else {
		for _, conn := range c.conns {
			if conn != nil {
				conn.Close()
			}
		}
	}
	if err := c.ln.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// readFrame reads and decodes one frame, checking its setup tag.
func readFrame(conn net.Conn, wantTag string) (*comm.Frame, error) {
	buf, err := comm.ReadWireFrame(conn)
	if err != nil {
		return nil, err
	}
	f, err := comm.DecodeFrame(buf)
	if err != nil {
		return nil, err
	}
	if f.Tag != wantTag {
		return nil, fmt.Errorf("cluster: frame tagged %q, want %q", f.Tag, wantTag)
	}
	return f, nil
}

// workerState is one worker's installed share, in both views the op
// vocabulary needs, plus the in-progress chunked installation.
type workerState struct {
	id  int
	s   int
	mat matrix.Mat
	vec ops.Vec

	pending       *matrix.Dense // share being assembled from install chunks
	pendingFilled int
	pendingCSR    bool
}

// Serve runs the worker side of the wire protocol on an established
// connection: handshake, share installation, then the op-execution loop
// until OpShutdown or connection loss. It is what cmd/dlra-worker runs in
// its own process, and what tests and benchmarks run in goroutines over
// loopback TCP.
func Serve(conn net.Conn) error {
	defer conn.Close()
	hello := &comm.Frame{Kind: comm.KindControl, Tag: tagHello, Words: []uint64{protocolVersion}}
	if err := comm.WriteWireFrame(conn, comm.EncodeFrame(hello)); err != nil {
		return fmt.Errorf("cluster: hello: %w", err)
	}
	assign, err := readFrame(conn, tagAssign)
	if err != nil {
		return fmt.Errorf("cluster: awaiting assignment: %w", err)
	}
	if len(assign.Words) != 2 {
		return fmt.Errorf("cluster: malformed assignment %v", assign.Words)
	}
	w := &workerState{id: int(assign.Words[0]), s: int(assign.Words[1])}

	for {
		buf, err := comm.ReadWireFrame(conn)
		if err != nil {
			return fmt.Errorf("cluster: worker %d read: %w", w.id, err)
		}
		f, err := comm.DecodeFrame(buf)
		if err != nil {
			return fmt.Errorf("cluster: worker %d decode: %w", w.id, err)
		}
		switch {
		case f.Op == ops.OpShutdown:
			return nil
		case f.Op == ops.OpInstallShare:
			if err := w.install(f); err != nil {
				return err
			}
		case f.RTag != "":
			kind, payload, err := w.exec(f)
			if err != nil {
				return fmt.Errorf("cluster: worker %d op %d (%s): %w", w.id, f.Op, f.Tag, err)
			}
			reply := &comm.Frame{Kind: kind, From: w.id, To: comm.CP, Stream: f.Stream,
				Tag: f.RTag, Words: comm.FloatWords(payload)}
			if err := comm.WriteWireFrame(conn, comm.EncodeFrame(reply)); err != nil {
				return fmt.Errorf("cluster: worker %d reply: %w", w.id, err)
			}
		default:
			// Broadcast with no reply expected (seed announcements, the
			// projection basis): shared knowledge, consumed and done.
		}
	}
}

// install accumulates one chunk of a share installation and finalizes
// the share when the last chunk arrives.
func (w *workerState) install(f *comm.Frame) error {
	if len(f.Words) < 5 {
		return fmt.Errorf("cluster: malformed share frame (%d words)", len(f.Words))
	}
	n, d, backend := int(f.Words[0]), int(f.Words[1]), f.Words[2]
	off, total := int(f.Words[3]), int(f.Words[4])
	vals := comm.WordFloats(f.Words[5:])
	if n < 0 || d < 0 || total != n*d || off < 0 || off+len(vals) > total {
		return fmt.Errorf("cluster: share chunk out of bounds (%dx%d, offset %d, %d values)", n, d, off, len(vals))
	}
	if off == 0 {
		w.pending = matrix.NewDense(n, d)
		w.pendingFilled = 0
		w.pendingCSR = backend == 1
	}
	if w.pending == nil || w.pending.Rows() != n || w.pending.Cols() != d || off != w.pendingFilled {
		return fmt.Errorf("cluster: share chunk at offset %d does not continue the pending install", off)
	}
	copy(w.pending.Data()[off:], vals)
	w.pendingFilled += len(vals)
	if w.pendingFilled < total {
		return nil
	}
	w.mat = matrix.Mat(w.pending)
	if w.pendingCSR {
		w.mat = matrix.ToCSR(w.pending)
	}
	w.vec = ops.MatVec{M: w.mat}
	w.pending = nil
	return nil
}

// exec runs one protocol op against the installed share. Every branch
// calls the same builder the coordinator uses for in-process shares.
func (w *workerState) exec(f *comm.Frame) (comm.Kind, []float64, error) {
	if w.mat == nil {
		return 0, nil, errors.New("no share installed")
	}
	switch f.Op {
	case ops.OpFlatSketch:
		seed, depth, width, err := ops.ParseFlatSketch(f.Words)
		if err != nil {
			return 0, nil, err
		}
		cs := ops.FlatSketch(w.vec, seed, depth, width, 0)
		return comm.KindSketch, ops.FlattenSketches([]*sketch.CountSketch{cs}), nil
	case ops.OpBucketSketch:
		repSeed, buckets, depth, width, filt, err := ops.ParseBucketSketch(f.Words)
		if err != nil {
			return 0, nil, err
		}
		v := w.vec
		if filt != nil {
			v = ops.Filtered{Base: v, Keep: filt.Keep()}
		}
		return comm.KindSketch, ops.FlattenSketches(ops.BucketSketches(v, repSeed, buckets, depth, width)), nil
	case ops.OpDyadicSketch:
		seed, depth, width, err := ops.ParseFlatSketch(f.Words)
		if err != nil {
			return 0, nil, err
		}
		return comm.KindSketch, hh.BuildLocalDyadic(w.vec, seed, hh.Params{Depth: depth, Width: width}).Flat(), nil
	case ops.OpRow:
		i, err := ops.ParseIndex(f.Words)
		if err != nil {
			return 0, nil, err
		}
		row, err := ops.Row(w.mat, int(i))
		if err != nil {
			return 0, nil, err
		}
		return comm.KindRow, row, nil
	case ops.OpValue:
		j, err := ops.ParseIndex(f.Words)
		if err != nil {
			return 0, nil, err
		}
		if j >= w.vec.Len() {
			return 0, nil, fmt.Errorf("coordinate %d out of range", j)
		}
		return comm.KindValue, []float64{w.vec.At(j)}, nil
	case ops.OpShareDump:
		return comm.KindShare, ops.ShareDump(w.mat), nil
	case ops.OpLinearSketch:
		seed, rows, err := ops.ParseLinearSketch(f.Words)
		if err != nil {
			return 0, nil, err
		}
		return comm.KindSketch, ops.LinearSketch(w.mat, seed, rows), nil
	default:
		return 0, nil, fmt.Errorf("unknown op %d", f.Op)
	}
}

// Dial connects to a coordinator and serves until shutdown, retrying the
// initial connection for up to wait (workers typically start before the
// coordinator listens).
func Dial(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return Serve(conn)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: joining %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
