// Package cluster turns the simulated star topology into a real one: a
// coordinator process hosting the CP and its accounting fabric, plus
// worker processes each hosting one server's shares and executing protocol
// ops against them. The wire protocol is the comm codec's frame format
// over length-prefixed TCP; the op vocabulary (and its single
// implementation of every share-side computation) is package ops, so a
// worker's reply is byte-identical to what the in-process execution of the
// same op produces — which is exactly what makes mem and tcp transcripts
// comparable.
//
// Since PR 4 the cluster is multi-tenant: workers hold a cache of
// installed shares keyed by dataset, and every protocol run happens inside
// a comm session whose id rides in the top 16 bits of each frame's stream
// field. The worker demultiplexes incoming frames by session into one
// serial op-runner per session, so concurrent jobs execute in parallel on
// the worker while each job's op order — and therefore its transcript —
// stays exactly sequential. Re-installing a dataset that is already cached
// moves zero setup traffic.
//
// Lifecycle:
//
//	coord, _ := cluster.Listen(s, "127.0.0.1:0")
//	// workers: cluster.Dial(coord.Addr()) in other processes (or goroutines)
//	coord.AwaitWorkers(timeout)
//	coord.InstallDataset(key, locals)    // setup traffic, cached, never charged
//	net := coord.Network()               // remote-aware accounting fabric
//	sess, _ := net.NewSession()          // one per concurrent job
//	coord.OpenSession(sess.ID(), key)
//	...protocol runs against sess.Network with coord.MaskShares(locals)...
//	coord.CloseSession(sess.ID())
//	sess.Close()
//	coord.Close()                        // idempotent; shuts workers down
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/hh"
	"repro/internal/matrix"
	"repro/internal/membership"
	"repro/internal/ops"
	"repro/internal/parallel"
	"repro/internal/sketch"
	"repro/internal/warm"
)

// protocolVersion gates the worker handshake; bump when the op vocabulary
// changes incompatibly. Version 4: elastic membership — the hello frame
// carries {version, flags}, the assignment carries {slot, s, epoch}, a
// worker can join after AwaitWorkers into a vacated slot (NoVacancySlot
// refuses it when every slot is alive), and workers answer OpPing
// heartbeats from their read loop.
const protocolVersion = 4

// NoVacancySlot is the assignment sentinel the coordinator sends a
// late-joining worker when no slot is dead: the worker backs off and
// retries (see ErrNoVacancy and dlra-worker -rejoin).
const NoVacancySlot = 0xFFFFFFFF

// ErrClosed is returned by coordinator operations after Close. Close
// itself is idempotent and returns nil on repeated calls.
var ErrClosed = errors.New("cluster: coordinator is closed")

// ErrNoVacancy is returned by Dial/Serve when the coordinator's cluster
// is fully populated: every slot has a live worker, so the joiner should
// back off and retry — a slot opens when a worker dies.
var ErrNoVacancy = errors.New("cluster: no vacant worker slot")

// Setup tags (never charged — the model assumes data already resides on
// the servers; everything after setup is real, accounted protocol
// traffic).
const (
	tagHello    = "setup/hello"
	tagAssign   = "setup/assign"
	tagShare    = "setup/share"
	tagShutdown = "setup/shutdown"
	tagBind     = "setup/bind"
	tagEndSess  = "setup/endsession"
	tagEndAck   = "setup/endack"
	tagAbort    = "setup/abort"
)

// tagHeartbeat is the control ledger tag for heartbeat pings and pongs.
// Heartbeat traffic is charged exclusively through Network.ChargeControl
// under this tag — never the protocol word ledger — so membership probes
// cannot perturb words/run gates or transcripts.
const tagHeartbeat = "ctl/heartbeat"

// Coordinator owns the listening socket, the worker connections, the
// remote-aware accounting fabric and the record of which datasets the
// workers already hold.
type Coordinator struct {
	s     int
	ln    net.Listener
	conns []net.Conn
	tr    *comm.TCPTransport
	net   *comm.Network

	// installMu serializes whole dataset installations: interleaved chunk
	// streams for the same key would corrupt the workers' pending-install
	// assembly, and a key must only enter the cache once its shipping
	// fully succeeded.
	installMu     sync.Mutex
	mu            sync.Mutex
	closed        bool
	installed     map[uint64]bool
	installFrames int64

	// Membership machinery, live after EnableMembership: the table, the
	// heartbeat/detector goroutines' stop channel, and the join loop that
	// handshakes replacement workers into vacated slots. joinMu serializes
	// slot selection so two concurrent joiners cannot claim one slot;
	// joinTok (guarded by joinMu) counts claims per slot, so a joiner that
	// stalled in the quiesce gate long enough for the detector to re-kill
	// its slot — and a second joiner to claim it — can tell it lost and
	// bow out without touching the winner's link.
	mt      *membership.Table
	hbStop  chan struct{}
	hbWG    sync.WaitGroup
	joinMu  sync.Mutex
	joinTok map[int]uint64

	// Recovery callbacks (set before EnableMembership): onDead fires once
	// per link death with the wrapped ErrWorkerLost cause; onReplaced runs
	// after a replacement worker is handshaked and its link swapped in —
	// the layer above re-feeds shares from its registry there — and must
	// succeed before the slot is activated.
	cbMu            sync.Mutex
	onDead          func(worker int, err error)
	onReplaced      func(worker int) error
	onBeforeReplace func(worker int) error
}

// Listen starts a coordinator for s servers (the CP plus s−1 workers to
// come) on addr (use "127.0.0.1:0" for an ephemeral loopback port).
func Listen(s int, addr string) (*Coordinator, error) {
	if s < 2 {
		return nil, errors.New("cluster: a TCP cluster needs at least 2 servers (one worker)")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	return &Coordinator{s: s, ln: ln, conns: make([]net.Conn, s), installed: make(map[uint64]bool)}, nil
}

// Addr returns the address workers should join.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// AwaitWorkers accepts and handshakes s−1 worker connections, assigning
// server ids 1…s−1 in connection order, then builds the TCP transport and
// the remote-aware fabric. ctx bounds the whole bring-up: its deadline
// (or cancellation) interrupts both the accept loop and an in-progress
// handshake.
func (c *Coordinator) AwaitWorkers(ctx context.Context) error {
	if err := c.live(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tcpLn, _ := c.ln.(*net.TCPListener)
	deadline, hasDeadline := ctx.Deadline()
	// Cancellation without a deadline still unblocks Accept: expire the
	// listener the moment ctx fires.
	stop := context.AfterFunc(ctx, func() {
		if tcpLn != nil {
			tcpLn.SetDeadline(time.Now().Add(-time.Second))
		}
	})
	defer stop()
	for t := 1; t < c.s; t++ {
		if hasDeadline && tcpLn != nil {
			if err := tcpLn.SetDeadline(deadline); err != nil {
				return err
			}
		}
		// A cancellation landing between the AfterFunc's past-deadline
		// write and the SetDeadline above would be silently overwritten;
		// re-checking ctx here closes that window.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: waiting for worker %d/%d: %w", t, c.s-1, err)
		}
		conn, err := c.ln.Accept()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fmt.Errorf("cluster: waiting for worker %d/%d: %w", t, c.s-1, ctxErr)
			}
			return fmt.Errorf("cluster: waiting for worker %d/%d: %w", t, c.s-1, err)
		}
		// The handshake honors the same bound as the accept loop: a
		// connected-but-silent peer (port scanner, crashed worker) must
		// not hang the coordinator.
		stopConn := context.AfterFunc(ctx, func() {
			conn.SetDeadline(time.Now().Add(-time.Second))
		})
		if hasDeadline {
			if err := conn.SetDeadline(deadline); err != nil {
				stopConn()
				conn.Close()
				return err
			}
		}
		if err := ctx.Err(); err != nil { // same overwrite window as above
			stopConn()
			conn.Close()
			return fmt.Errorf("cluster: waiting for worker %d/%d: %w", t, c.s-1, err)
		}
		hello, err := readFrame(conn, tagHello)
		if err != nil {
			stopConn()
			conn.Close()
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fmt.Errorf("cluster: worker %d handshake: %w", t, ctxErr)
			}
			return fmt.Errorf("cluster: worker %d handshake: %w", t, err)
		}
		if len(hello.Words) != 2 || hello.Words[0] != protocolVersion {
			stopConn()
			conn.Close()
			return fmt.Errorf("cluster: worker %d speaks protocol %v, want %d", t, hello.Words, protocolVersion)
		}
		assign := &comm.Frame{Kind: comm.KindControl, From: comm.CP, To: t, Tag: tagAssign,
			Words: []uint64{uint64(t), uint64(c.s), 1}}
		if err := writeFrame(conn, assign); err != nil {
			stopConn()
			conn.Close()
			return fmt.Errorf("cluster: worker %d assign: %w", t, err)
		}
		stopConn()
		if err := conn.SetDeadline(time.Time{}); err != nil {
			conn.Close()
			return err
		}
		c.conns[t] = conn
	}
	c.tr = comm.NewTCPTransport(c.conns)
	remote := make([]bool, c.s)
	for t := 1; t < c.s; t++ {
		remote[t] = true
	}
	c.net = comm.NewNetworkWith(c.s, c.tr, remote)
	return nil
}

// Network returns the remote-aware accounting fabric (valid after
// AwaitWorkers).
func (c *Coordinator) Network() *comm.Network { return c.net }

// live reports ErrClosed once the coordinator has been closed.
func (c *Coordinator) live() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return nil
}

// send pushes a setup frame to worker t through the transport, so setup
// traffic serializes with in-flight protocol frames on the connection.
func (c *Coordinator) send(t int, f *comm.Frame) error {
	return c.tr.Send(comm.CP, t, comm.EncodeFrame(f))
}

// installChunkWords bounds the value payload of one share-install frame
// (8 MiB of values), comfortably under the codec's hard frame cap so a
// share of any size installs as a sequence of frames instead of one
// frame that cannot be encoded. A variable so tests can force multi-chunk
// installs with small matrices.
var installChunkWords = 1 << 20

// InstallChunkWords reports the value-payload bound of one share-install
// frame; delta installations chunk their row payloads by the same bound
// so any delta encodes under the codec frame cap.
func InstallChunkWords() int { return installChunkWords }

// InstallDatasetCtx is InstallDataset with an abort checkpoint between
// chunks: a fired ctx stops the shipping loop early and the dataset does
// not enter the cache (the install stays retryable).
func (c *Coordinator) InstallDatasetCtx(ctx context.Context, key uint64, locals []matrix.Mat) error {
	return c.installDataset(ctx, key, locals, false)
}

// InstallDataset ships share t of the keyed dataset to worker t as
// uncharged setup traffic (the protocol model's premise is that the data
// already resides on the servers; the install frames exist so the workers
// can answer ops, not as protocol communication). Shares travel dense,
// chunked, with a backend marker; CSR and fast-dense shares are rebuilt
// in their own backend on the worker. A dataset whose key the workers already hold is a cache hit:
// the call returns immediately having moved nothing.
func (c *Coordinator) InstallDataset(key uint64, locals []matrix.Mat) error {
	return c.installDataset(context.Background(), key, locals, false)
}

// InstallShares is the single-tenant installation path: the shares land
// under dataset key 0 — the key unbound sessions default to — and are
// always re-shipped (no cache), preserving the pre-multi-tenant contract
// that installing new shares replaces the old ones.
func (c *Coordinator) InstallShares(locals []matrix.Mat) error {
	return c.installDataset(context.Background(), 0, locals, true)
}

func (c *Coordinator) installDataset(ctx context.Context, key uint64, locals []matrix.Mat, force bool) error {
	if err := c.live(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if c.tr == nil {
		return errors.New("cluster: AwaitWorkers before installing datasets")
	}
	if len(locals) != c.s {
		return fmt.Errorf("cluster: %d shares for %d servers", len(locals), c.s)
	}
	c.installMu.Lock()
	defer c.installMu.Unlock()
	c.mu.Lock()
	hit := c.installed[key] && !force
	c.mu.Unlock()
	if hit {
		return nil
	}
	for t := 1; t < c.s; t++ {
		m := locals[t]
		if m == nil {
			return fmt.Errorf("cluster: share %d is nil", t)
		}
		backend := uint64(0)
		switch m.(type) {
		case *matrix.CSR:
			backend = 1
		case *matrix.Fast:
			backend = 2
		}
		vals := comm.FloatWords(ops.ShareDump(m))
		total := len(vals)
		for off := 0; ; off += installChunkWords {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("cluster: installing share on worker %d: %w", t, err)
			}
			end := off + installChunkWords
			if end > total {
				end = total
			}
			// Chunk header: dataset key, n, d, backend, offset, total values.
			words := []uint64{key, uint64(m.Rows()), uint64(m.Cols()), backend, uint64(off), uint64(total)}
			words = append(words, vals[off:end]...)
			f := &comm.Frame{Kind: comm.KindShare, Op: ops.OpInstallShare, From: comm.CP, To: t,
				Tag: tagShare, Words: words}
			if err := c.send(t, f); err != nil {
				return fmt.Errorf("cluster: installing share on worker %d: %w", t, err)
			}
			c.mu.Lock()
			c.installFrames++
			c.mu.Unlock()
			if end == total {
				break
			}
		}
	}
	// Only a fully shipped dataset enters the cache: a failed install must
	// stay retryable, never become a phantom cache hit.
	c.mu.Lock()
	c.installed[key] = true
	c.mu.Unlock()
	return nil
}

// Installed reports whether the keyed dataset is already resident on the
// workers (an InstallDataset cache hit would move zero traffic).
func (c *Coordinator) Installed(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.installed[key]
}

// InstallFrames returns the number of share-installation frames shipped so
// far — the observable a share-cache hit must leave unchanged.
func (c *Coordinator) InstallFrames() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.installFrames
}

// OpenSession binds a comm session namespace to an installed dataset on
// every worker: ops the session issues afterwards execute against that
// dataset's share. Setup traffic, never charged.
func (c *Coordinator) OpenSession(sess uint16, key uint64) error {
	if err := c.live(); err != nil {
		return err
	}
	if c.tr == nil {
		return errors.New("cluster: AwaitWorkers before opening sessions")
	}
	for t := 1; t < c.s; t++ {
		f := &comm.Frame{Kind: comm.KindControl, Op: ops.OpBindSession, From: comm.CP, To: t,
			Stream: uint32(sess) << 16, Tag: tagBind, Words: []uint64{key}}
		if err := c.send(t, f); err != nil {
			return fmt.Errorf("cluster: binding session %d on worker %d: %w", sess, t, err)
		}
	}
	return nil
}

// AbortSession tells every worker that the session was canceled mid-run:
// each worker flags the session's serial op runner so the ops still
// queued behind the one currently executing are discarded instead of
// executed — the wasted-work window of a mid-run cancel shrinks to at
// most one op per worker. Control traffic, never charged; always follow
// with CloseSession, whose drain-until-ack also swallows the replies any
// already-executing ops still produce.
func (c *Coordinator) AbortSession(sess uint16) error {
	if err := c.live(); err != nil {
		return err
	}
	if c.tr == nil {
		return errors.New("cluster: AwaitWorkers before aborting sessions")
	}
	stream := uint32(sess) << 16
	var first error
	for t := 1; t < c.s; t++ {
		f := &comm.Frame{Kind: comm.KindControl, Op: ops.OpAbort, From: comm.CP, To: t,
			Stream: stream, Tag: tagAbort}
		if err := c.send(t, f); err != nil {
			// A dead worker cannot be aborted — and does not need to be;
			// keep flagging the living ones and report the first failure.
			if first == nil {
				first = fmt.Errorf("cluster: aborting session %d on worker %d: %w", sess, t, err)
			}
		}
	}
	return first
}

// CloseSession tears down a session binding on every worker and waits for
// each worker's acknowledgement — which the worker only sends after every
// earlier op of the session has executed, so once CloseSession returns no
// stale frame of the session can still be in flight and the comm session
// id is safe to recycle.
func (c *Coordinator) CloseSession(sess uint16) error {
	if err := c.live(); err != nil {
		return err
	}
	if c.tr == nil {
		return errors.New("cluster: AwaitWorkers before closing sessions")
	}
	stream := uint32(sess) << 16
	sendFailed := make([]bool, c.s)
	var first error
	for t := 1; t < c.s; t++ {
		f := &comm.Frame{Kind: comm.KindControl, Op: ops.OpEndSession, From: comm.CP, To: t,
			Stream: stream, Tag: tagEndSess, RTag: tagEndAck}
		if err := c.send(t, f); err != nil {
			// A dead worker's session died with it — skip its drain, keep
			// tearing the session down on the living workers.
			sendFailed[t] = true
			if first == nil {
				first = fmt.Errorf("cluster: ending session %d on worker %d: %w", sess, t, err)
			}
		}
	}
	for t := 1; t < c.s; t++ {
		if sendFailed[t] {
			continue
		}
		if err := c.drainEndAck(sess, t, stream); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// drainEndAck drains one worker's session stream until its end-session
// ack: an aborted round may have left stale replies queued ahead of it.
// The drain is bounded — a worker that dies between the end-session send
// and its ack poisons the link (immediate error), and the rare race
// where a replacement clears the poison mid-drain is cut off by the
// timeout instead of hanging the teardown.
func (c *Coordinator) drainEndAck(sess uint16, t int, stream uint32) error {
	cancel := make(chan struct{})
	tm := time.AfterFunc(5*time.Second, func() { close(cancel) })
	defer tm.Stop()
	for {
		buf, err := c.tr.Recv(t, comm.CP, stream, cancel)
		if err != nil {
			return fmt.Errorf("cluster: session %d end ack from worker %d: %w", sess, t, err)
		}
		f, err := comm.DecodeFrame(buf)
		comm.ReleaseFrame(buf)
		if err != nil {
			return fmt.Errorf("cluster: session %d end ack from worker %d: %w", sess, t, err)
		}
		if f.Tag == tagEndAck {
			return nil
		}
	}
}

// MaskShares returns the coordinator-side view of the shares: the CP's own
// share in slot 0, nil for every worker-hosted share — protocol code can
// only reach those through the fabric.
func (c *Coordinator) MaskShares(locals []matrix.Mat) []matrix.Mat {
	masked := make([]matrix.Mat, c.s)
	masked[comm.CP] = locals[comm.CP]
	return masked
}

// OnWorkerDead installs the death observer, fired once per link loss
// (from a transport reader or the detector's enforcement) with the
// worker index and the wrapped comm.ErrWorkerLost cause. Set it before
// EnableMembership.
func (c *Coordinator) OnWorkerDead(fn func(worker int, err error)) {
	c.cbMu.Lock()
	c.onDead = fn
	c.cbMu.Unlock()
}

// OnBeforeReplace installs the pre-replacement gate, run after a
// replacement worker has claimed a vacated slot but before its link is
// swapped into the transport. The layer above blocks here until every
// protocol run the failover interrupted has observed the poisoned link
// and unwound: the link swap clears the poison, so swapping while a run
// is still mid-round would leave it awaiting a reply the dead worker
// took with it. A returned error rejects the joiner (it retries).
func (c *Coordinator) OnBeforeReplace(fn func(worker int) error) {
	c.cbMu.Lock()
	c.onBeforeReplace = fn
	c.cbMu.Unlock()
}

// OnWorkerReplaced installs the re-placement hook, run after a
// replacement worker is handshaked into a vacated slot and its link
// swapped into the transport, but before the slot turns Active. The
// layer above re-feeds the slot's shares from its dataset registry here
// (ReinstallShare) and resumes its engine; a returned error rejects the
// replacement and the slot goes back to dead.
func (c *Coordinator) OnWorkerReplaced(fn func(worker int) error) {
	c.cbMu.Lock()
	c.onReplaced = fn
	c.cbMu.Unlock()
}

// EnableMembership turns the post-AwaitWorkers cluster live: a
// membership table over every worker slot, heartbeat probes and the
// clock-driven failure detector on cfg's cadence, per-worker pong
// drains, and a join loop accepting replacement workers into vacated
// slots. Idempotent after the first successful call.
func (c *Coordinator) EnableMembership(cfg membership.Config) error {
	if err := c.live(); err != nil {
		return err
	}
	if c.tr == nil {
		return errors.New("cluster: AwaitWorkers before enabling membership")
	}
	c.mu.Lock()
	if c.mt != nil {
		c.mu.Unlock()
		return nil
	}
	workers := make([]int, 0, c.s-1)
	for t := 1; t < c.s; t++ {
		workers = append(workers, t)
	}
	c.mt = membership.NewTable(workers, cfg)
	c.hbStop = make(chan struct{})
	c.joinTok = make(map[int]uint64)
	c.mu.Unlock()

	c.tr.SetLinkDownHandler(func(worker int, err error) {
		c.mt.MarkDead(worker)
		c.cbMu.Lock()
		fn := c.onDead
		c.cbMu.Unlock()
		if fn != nil {
			fn(worker, err)
		}
	})
	// AwaitWorkers may have left a context deadline armed on the
	// listener; the join loop accepts forever.
	if tcpLn, ok := c.ln.(*net.TCPListener); ok {
		tcpLn.SetDeadline(time.Time{})
	}
	c.hbWG.Add(2)
	go c.acceptLoop()
	go c.heartbeatLoop()
	for t := 1; t < c.s; t++ {
		c.hbWG.Add(1)
		go c.pongDrain(t)
	}
	return nil
}

// Membership returns the membership table, nil before EnableMembership.
func (c *Coordinator) Membership() *membership.Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mt
}

// DropWorker forcibly severs the link to worker t — the chaos seam for
// failover tests and a real administrative kill. The link's reader
// observes the closed connection and the death flows through the same
// path a crashed worker takes.
func (c *Coordinator) DropWorker(t int) error {
	if err := c.live(); err != nil {
		return err
	}
	if c.tr == nil {
		return errors.New("cluster: AwaitWorkers before dropping workers")
	}
	if t <= 0 || t >= c.s {
		return fmt.Errorf("cluster: no worker %d", t)
	}
	return c.tr.CloseLink(t)
}

// heartbeatLoop probes every live worker each interval and runs the
// failure detector; a slot the detector declares dead has its link
// severed, which routes the death through the transport's link-down
// path exactly once.
func (c *Coordinator) heartbeatLoop() {
	defer c.hbWG.Done()
	tick := time.NewTicker(c.mt.Interval())
	defer tick.Stop()
	var seq uint64
	for {
		select {
		case <-c.hbStop:
			return
		case <-tick.C:
		}
		seq++
		now := time.Now().UnixNano()
		for _, m := range c.mt.Members() {
			if m.State == membership.Dead || m.State == membership.Draining {
				continue
			}
			f := &comm.Frame{Kind: comm.KindControl, Op: ops.OpPing, From: comm.CP, To: m.Index,
				Stream: comm.ControlStream, Tag: tagHeartbeat, Words: ops.HeartbeatParams(seq, now)}
			enc := comm.EncodeFrame(f)
			nb := int64(len(enc))
			if err := c.tr.Send(comm.CP, m.Index, enc); err == nil {
				c.net.ChargeControl(tagHeartbeat, 2, nb)
			}
		}
		for _, tr := range c.mt.Tick() {
			if tr.Member.State == membership.Dead {
				c.tr.CloseLink(tr.Member.Index)
			}
		}
	}
}

// pongDrain consumes worker t's heartbeat pongs off the reserved control
// stream, feeding the membership table and the control ledger. It rides
// through link deaths (the queue un-poisons when the slot is re-placed)
// and exits when the coordinator closes.
func (c *Coordinator) pongDrain(t int) {
	defer c.hbWG.Done()
	for {
		select {
		case <-c.hbStop:
			return
		default:
		}
		buf, err := c.tr.Recv(t, comm.CP, comm.ControlStream, c.hbStop)
		if err != nil {
			if errors.Is(err, comm.ErrRecvAborted) {
				return
			}
			// The link is down (poisoned queue) or the transport is gone:
			// wait an interval and re-check — a re-placed slot's pongs
			// resume on the same stream.
			select {
			case <-c.hbStop:
				return
			case <-time.After(c.mt.Interval()):
			}
			continue
		}
		f, derr := comm.DecodeFrame(buf)
		nb := int64(len(buf))
		comm.ReleaseFrame(buf)
		if derr != nil || f.Op != ops.OpPong {
			continue
		}
		_, sent, perr := ops.ParseHeartbeat(f.Words)
		if perr != nil {
			continue
		}
		rtt := time.Duration(time.Now().UnixNano() - sent)
		if rtt < 0 {
			rtt = 0
		}
		c.mt.Beat(t, rtt)
		c.net.ChargeControl(tagHeartbeat, 2, nb)
	}
}

// acceptLoop admits replacement workers after AwaitWorkers; it exits
// when the listener closes.
func (c *Coordinator) acceptLoop() {
	defer c.hbWG.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.handleJoin(conn)
	}
}

// handleJoin handshakes one late-joining worker: protocol v4 hello, a
// vacated (dead) slot or the NoVacancySlot refusal, the link swap, the
// re-placement hook (share re-feed), then activation. Slot selection is
// serialized so concurrent joiners never claim the same slot, and the
// claim carries a token: the quiesce gate can block for seconds, long
// enough for the detector to re-mark the slot Dead and a second joiner
// to claim it, so every step that touches the slot first re-validates
// the claim and a joiner that lost it bows out without closing the
// winner's link or double-counting the failover.
func (c *Coordinator) handleJoin(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	hello, err := readFrame(conn, tagHello)
	if err != nil || len(hello.Words) != 2 || hello.Words[0] != protocolVersion {
		conn.Close()
		return
	}
	c.joinMu.Lock()
	slot := -1
	var epoch uint64
	for _, m := range c.mt.Members() {
		if m.State == membership.Dead {
			slot, epoch = m.Index, m.Epoch+1
			break
		}
	}
	if slot < 0 {
		c.joinMu.Unlock()
		writeFrame(conn, &comm.Frame{Kind: comm.KindControl, From: comm.CP, Tag: tagAssign,
			Words: []uint64{NoVacancySlot, uint64(c.s), 0}})
		conn.Close()
		return
	}
	c.joinTok[slot]++
	tok := c.joinTok[slot]
	c.mt.Joining(slot)
	c.joinMu.Unlock()

	// reject returns the slot to Dead (vacant) — but only while this
	// joiner still holds the claim; after losing it, the slot belongs to
	// a later joiner and marking it dead would kill that join.
	reject := func() {
		conn.Close()
		c.joinMu.Lock()
		if c.claimHeldLocked(slot, tok) {
			c.mt.MarkDead(slot)
		}
		c.joinMu.Unlock()
	}
	// The quiesce gate: the link swap below discards the dead link's
	// poison, so it must wait until every protocol run the failure
	// interrupted has unwound (OnBeforeReplace blocks until then).
	c.cbMu.Lock()
	gate := c.onBeforeReplace
	c.cbMu.Unlock()
	if gate != nil {
		if err := gate(slot); err != nil {
			reject()
			return
		}
	}
	// The gate may have blocked for seconds. Re-validate the claim before
	// assigning the slot: if the detector re-killed it meanwhile a later
	// joiner may already own it.
	c.joinMu.Lock()
	held := c.claimHeldLocked(slot, tok)
	c.joinMu.Unlock()
	if !held {
		conn.Close()
		return
	}
	assign := &comm.Frame{Kind: comm.KindControl, From: comm.CP, To: slot, Tag: tagAssign,
		Words: []uint64{uint64(slot), uint64(c.s), epoch}}
	if err := writeFrame(conn, assign); err != nil {
		reject()
		return
	}
	conn.SetDeadline(time.Time{})
	// Swap the link in before the share re-feed: the reinstall frames
	// ship through the transport like any install. The swap happens
	// under joinMu with the claim re-validated, so a joiner whose slot
	// was re-killed and re-claimed during the gate never replaces the
	// winner's link.
	c.joinMu.Lock()
	held = c.claimHeldLocked(slot, tok)
	if held {
		err = c.tr.Replace(slot, conn)
	}
	c.joinMu.Unlock()
	if !held {
		conn.Close()
		return
	}
	if err != nil {
		reject()
		return
	}
	c.cbMu.Lock()
	fn := c.onReplaced
	c.cbMu.Unlock()
	if fn != nil {
		if err := fn(slot); err != nil {
			// Tear the slot down only if the claim is still ours: a
			// re-feed that failed because the detector re-killed the slot
			// (and a new joiner replaced the link) must not close the new
			// joiner's connection.
			c.joinMu.Lock()
			if c.claimHeldLocked(slot, tok) {
				c.tr.CloseLink(slot)
				c.mt.MarkDead(slot)
			}
			c.joinMu.Unlock()
			return
		}
	}
	c.joinMu.Lock()
	if c.claimHeldLocked(slot, tok) {
		c.mt.Activate(slot)
	}
	c.joinMu.Unlock()
}

// claimHeldLocked reports whether the joiner holding token tok still
// owns slot: the slot is still Joining and no later joiner has claimed
// it. Callers hold joinMu.
func (c *Coordinator) claimHeldLocked(slot int, tok uint64) bool {
	if c.joinTok[slot] != tok {
		return false
	}
	m, ok := c.mt.Get(slot)
	return ok && m.State == membership.Joining
}

// ReinstallShare re-feeds one dataset share to one worker — the
// re-placement path after a failover. The chunking and framing are
// byte-identical to InstallDataset's; the install cache is left alone
// (the dataset never stopped being resident on the other workers).
func (c *Coordinator) ReinstallShare(ctx context.Context, t int, key uint64, local matrix.Mat) error {
	if err := c.live(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if c.tr == nil {
		return errors.New("cluster: AwaitWorkers before installing datasets")
	}
	if t <= 0 || t >= c.s {
		return fmt.Errorf("cluster: no worker %d", t)
	}
	if local == nil {
		return fmt.Errorf("cluster: share %d is nil", t)
	}
	c.installMu.Lock()
	defer c.installMu.Unlock()
	backend := uint64(0)
	switch local.(type) {
	case *matrix.CSR:
		backend = 1
	case *matrix.Fast:
		backend = 2
	}
	vals := comm.FloatWords(ops.ShareDump(local))
	total := len(vals)
	for off := 0; ; off += installChunkWords {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: reinstalling share on worker %d: %w", t, err)
		}
		end := off + installChunkWords
		if end > total {
			end = total
		}
		words := []uint64{key, uint64(local.Rows()), uint64(local.Cols()), backend, uint64(off), uint64(total)}
		words = append(words, vals[off:end]...)
		f := &comm.Frame{Kind: comm.KindShare, Op: ops.OpInstallShare, From: comm.CP, To: t,
			Tag: tagShare, Words: words}
		if err := c.send(t, f); err != nil {
			return fmt.Errorf("cluster: reinstalling share on worker %d: %w", t, err)
		}
		c.mu.Lock()
		c.installFrames++
		c.mu.Unlock()
		if end == total {
			break
		}
	}
	return nil
}

// Close asks every worker to shut down and releases the sockets. It is
// idempotent: the second and later calls return nil without touching the
// (already released) resources. Callers must not close while protocol
// runs are in flight — the job engine above drains running jobs first.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	mt := c.mt
	stop := c.hbStop
	c.mu.Unlock()

	// Stop the heartbeat, detector and pong-drain loops before tearing
	// links down, so a shutdown never reads as a mass death.
	if stop != nil {
		close(stop)
	}

	var first error
	for t := 1; t < c.s; t++ {
		f := &comm.Frame{Kind: comm.KindControl, Op: ops.OpShutdown, From: comm.CP, To: t, Tag: tagShutdown}
		var err error
		if c.tr != nil {
			// Dead or half-joined slots have no worker to shut down;
			// c.conns may alias the transport's (Replace-mutated) slice,
			// so the transport's own nil/closed handling is the check.
			if mt != nil {
				if m, ok := mt.Get(t); ok && (m.State == membership.Dead || m.State == membership.Joining) {
					continue
				}
			}
			err = c.send(t, f)
		} else {
			if c.conns[t] == nil {
				continue
			}
			err = writeFrame(c.conns[t], f)
		}
		if err != nil && first == nil {
			first = err
		}
	}
	if c.tr != nil {
		if err := c.tr.Close(); err != nil && first == nil {
			first = err
		}
	} else {
		for _, conn := range c.conns {
			if conn != nil {
				conn.Close()
			}
		}
	}
	if err := c.ln.Close(); err != nil && first == nil {
		first = err
	}
	if stop != nil {
		c.hbWG.Wait()
	}
	return first
}

// writeFrame encodes f into a pooled buffer, writes it length-prefixed
// and recycles the buffer (comm.WriteWireFrame itself is non-owning).
func writeFrame(w io.Writer, f *comm.Frame) error {
	enc := comm.EncodeFrame(f)
	err := comm.WriteWireFrame(w, enc)
	comm.ReleaseFrame(enc)
	return err
}

// readFrame reads and decodes one frame, checking its setup tag. The
// pooled wire buffer is recycled here — DecodeFrame copies everything out.
func readFrame(conn net.Conn, wantTag string) (*comm.Frame, error) {
	buf, err := comm.ReadWireFrame(conn)
	if err != nil {
		return nil, err
	}
	f, err := comm.DecodeFrame(buf)
	comm.ReleaseFrame(buf)
	if err != nil {
		return nil, err
	}
	if f.Tag != wantTag {
		return nil, fmt.Errorf("cluster: frame tagged %q, want %q", f.Tag, wantTag)
	}
	return f, nil
}

// workerShare is one installed dataset share, in both views the op
// vocabulary needs, plus the warm sketch store that persists across the
// share's delta history (the vec wraps the matrix in a warm.Share so the
// sketch builders can discover the store).
type workerShare struct {
	mat   matrix.Mat
	vec   ops.Vec
	store *warm.Store
}

// newWorkerShare wires a freshly installed matrix with a fresh warm store
// (stale sketches must never survive a content replacement).
func newWorkerShare(mat matrix.Mat) *workerShare {
	st := warm.NewStore(0)
	return &workerShare{mat: mat, vec: ops.MatVec{M: warm.Wrap(mat, st)}, store: st}
}

// rebind swaps in a new matrix snapshot after a delta, carrying the warm
// store over — that continuity is the whole point of the delta path.
func (sh *workerShare) rebind(mat matrix.Mat) {
	sh.mat = mat
	sh.vec = ops.MatVec{M: warm.Wrap(mat, sh.store)}
}

// pendingInstall is a share being assembled from install chunks.
type pendingInstall struct {
	dense   *matrix.Dense
	filled  int
	backend uint64
}

// workerState is one worker's installed share cache and session bindings,
// shared between the connection's read loop and the per-session op
// runners.
type workerState struct {
	id   int
	s    int
	conn net.Conn
	wmu  sync.Mutex // serializes reply writes onto the connection

	// replyBatch caps how many replies coalesce into one reply envelope
	// (0 = one envelope per request envelope, 1 = individual replies).
	// Replies to a batched request group always flush before the next
	// group starts, so the CP's drain order never stalls on a held reply.
	replyBatch int

	mu         sync.RWMutex
	shares     map[uint64]*workerShare
	pending    map[uint64]*pendingInstall
	bindings   map[uint16]uint64
	defaultKey uint64
	hasDefault bool

	failOnce sync.Once
	failErr  error
}

// fail records the first fatal error and tears the connection down so the
// read loop unblocks; Serve reports the recorded error.
func (w *workerState) fail(err error) {
	w.failOnce.Do(func() {
		w.failErr = err
		w.conn.Close()
	})
}

// opGroup is the unit the read loop hands a session runner: either a
// single frame, or the decoded sub-frames of one request envelope. The
// grouping is remembered so the runner can answer a batched request
// group with a batched reply envelope (one write per group).
type opGroup struct {
	frames  []*comm.Frame
	batched bool
}

// sessionRunner executes one session's ops serially, in arrival order, so
// the session's transcript is exactly what a sequential run produces —
// while distinct sessions run in parallel.
type sessionRunner struct {
	ch   chan opGroup
	done chan struct{} // closed when the runner exits (end op or teardown)
	// aborted is set by the read loop the moment an OpAbort frame for the
	// session arrives (out of band — not behind the op queue): the runner
	// then discards queued ops without executing or answering them, and
	// only the eventual OpEndSession is still honored with an ack.
	aborted atomic.Bool
}

// Serve runs the worker side of the wire protocol on an established
// connection: handshake, then the demultiplexing loop — share
// installation in-line, every session's ops forwarded to that session's
// serial runner — until OpShutdown or connection loss. It is what
// cmd/dlra-worker runs in its own process, and what tests, benchmarks and
// dlra-serve run in goroutines over loopback TCP.
func Serve(conn net.Conn) error { return ServeBatch(conn, 0) }

// ServeBatch is Serve with an explicit reply-batching cap: replies to a
// batched request group coalesce into reply envelopes of at most
// replyBatch frames (0 = one envelope per request envelope, 1 = plain
// individual replies). The cap shapes wire framing only — the reply
// frames themselves, and the order the CP drains them in, are identical
// at every setting.
func ServeBatch(conn net.Conn, replyBatch int) error {
	defer conn.Close()
	hello := &comm.Frame{Kind: comm.KindControl, Tag: tagHello, Words: []uint64{protocolVersion, 0}}
	if err := writeFrame(conn, hello); err != nil {
		return fmt.Errorf("cluster: hello: %w", err)
	}
	assign, err := readFrame(conn, tagAssign)
	if err != nil {
		return fmt.Errorf("cluster: awaiting assignment: %w", err)
	}
	if len(assign.Words) != 3 {
		return fmt.Errorf("cluster: malformed assignment %v", assign.Words)
	}
	if assign.Words[0] == NoVacancySlot {
		return ErrNoVacancy
	}
	if replyBatch < 0 {
		replyBatch = 0
	}
	w := &workerState{
		id:         int(assign.Words[0]),
		s:          int(assign.Words[1]),
		conn:       conn,
		replyBatch: replyBatch,
		shares:     make(map[uint64]*workerShare),
		pending:    make(map[uint64]*pendingInstall),
		bindings:   make(map[uint16]uint64),
	}

	runners := make(map[uint16]*sessionRunner)
	var wg sync.WaitGroup
	stop := func() {
		for _, r := range runners {
			close(r.ch)
		}
		wg.Wait()
	}

	for {
		buf, err := comm.ReadWireFrame(conn)
		if err != nil {
			stop()
			if w.failErr != nil {
				return fmt.Errorf("cluster: worker %d: %w", w.id, w.failErr)
			}
			return fmt.Errorf("cluster: worker %d read: %w", w.id, err)
		}
		f, err := comm.DecodeFrame(buf)
		if err != nil {
			comm.ReleaseFrame(buf)
			stop()
			return fmt.Errorf("cluster: worker %d decode: %w", w.id, err)
		}
		g := opGroup{frames: []*comm.Frame{f}}
		if f.Kind == comm.KindBatch {
			// A request envelope: decode every sub-frame (DecodeFrame
			// copies, so the aliasing Sub views die with the buffer) and
			// keep them together as one group so the replies can travel
			// as one envelope too.
			g = opGroup{frames: make([]*comm.Frame, 0, len(f.Sub)), batched: true}
			for _, sub := range f.Sub {
				sf, err := comm.DecodeFrame(sub)
				if err != nil {
					comm.ReleaseFrame(buf)
					stop()
					return fmt.Errorf("cluster: worker %d batch decode: %w", w.id, err)
				}
				g.frames = append(g.frames, sf)
			}
		}
		comm.ReleaseFrame(buf)
		if len(g.frames) == 0 {
			continue
		}
		lead := g.frames[0]
		switch {
		case !g.batched && lead.Op == ops.OpShutdown:
			stop()
			return nil
		case !g.batched && lead.Op == ops.OpPing:
			// Heartbeat probes answer from the read loop, never a session
			// runner: a worker whose runners are deep in sketch builds
			// still pongs immediately, so compute-busy never reads as
			// dead. The pong echoes the probe's payload (sequence, send
			// time) so the coordinator measures RTT on its own clock.
			pong := &comm.Frame{Kind: comm.KindControl, Op: ops.OpPong, From: w.id, To: comm.CP,
				Stream: lead.Stream, Tag: lead.Tag, Words: lead.Words}
			if err := w.reply(pong); err != nil {
				stop()
				return fmt.Errorf("cluster: worker %d pong: %w", w.id, err)
			}
		case !g.batched && lead.Op == ops.OpInstallShare:
			// Installation runs in the read loop: chunks arrive in order
			// and must be resident before any session binds the dataset.
			if err := w.install(lead); err != nil {
				stop()
				return err
			}
		case !g.batched && lead.Op == ops.OpAppendRows:
			// Delta installs also run in the read loop: connection order
			// guarantees every session op sent after the delta executes
			// against the folded share, never a half-applied one.
			if err := w.applyAppend(lead); err != nil {
				stop()
				return err
			}
		case !g.batched && lead.Op == ops.OpUpdateRows:
			if err := w.applyUpdate(lead); err != nil {
				stop()
				return err
			}
		case !g.batched && lead.Op == ops.OpAbort:
			// Flag the runner directly instead of queueing the frame: the
			// discard must take effect ahead of the ops already waiting in
			// the runner's channel. No runner means nothing is in flight —
			// the abort is a no-op then.
			if r, ok := runners[comm.SessionOf(lead.Stream)]; ok {
				r.aborted.Store(true)
			}
		default:
			sess := comm.SessionOf(lead.Stream)
			r, ok := runners[sess]
			if !ok {
				r = &sessionRunner{ch: make(chan opGroup, 16), done: make(chan struct{})}
				runners[sess] = r
				wg.Add(1)
				go func() {
					defer wg.Done()
					w.runSession(sess, r)
				}()
			}
			select {
			case r.ch <- g:
			case <-r.done:
				// The runner died on an earlier op (fail closed the
				// connection); drop the frame — the read loop is about to
				// observe the teardown.
			}
			if !g.batched && lead.Op == ops.OpEndSession {
				// Wait for the runner to drain and acknowledge before
				// reading on: a recycled session id must never race the
				// previous tenant's teardown.
				<-r.done
				delete(runners, sess)
			}
		}
	}
}

// runSession is one session's serial op loop. Groups arrive in wire
// order and every group's ops execute in order, so the session's reply
// stream is exactly what a sequential, unbatched run produces.
func (w *workerState) runSession(sess uint16, r *sessionRunner) {
	defer close(r.done)
	for g := range r.ch {
		ended, err := w.runGroup(sess, r, g)
		if err != nil {
			w.fail(err)
			return
		}
		if ended {
			return
		}
	}
}

// runGroup executes one op group. Replies to a batched group are encoded
// as they are produced and flushed as reply envelopes — one per request
// envelope by default, split earlier at the worker's replyBatch cap or
// the envelope byte cap. Non-batched frames reply individually, exactly
// as before batching existed.
//
// Within a group, maximal runs of consecutive reply-bearing ops fan out
// on all cores (see execRun) — the runner stays the ordering authority
// because replies are still committed in canonical arrival order, one
// run at a time.
func (w *workerState) runGroup(sess uint16, r *sessionRunner, g opGroup) (ended bool, err error) {
	var pend [][]byte
	var pendBytes int
	stream := g.frames[0].Stream
	batching := g.batched && w.replyBatch != 1
	flush := func() error {
		if len(pend) == 0 {
			return nil
		}
		fs := pend
		pend, pendBytes = nil, 0
		w.wmu.Lock()
		defer w.wmu.Unlock()
		// WriteWireBatch owns and recycles the encoded reply buffers
		// (and degrades to a plain frame write for a single reply).
		return comm.WriteWireBatch(w.conn, w.id, comm.CP, stream, fs)
	}
	for i := 0; i < len(g.frames); i++ {
		f := g.frames[i]
		switch {
		case f.Op == ops.OpBindSession:
			if len(f.Words) != 1 {
				return true, fmt.Errorf("malformed session bind %v", f.Words)
			}
			w.mu.Lock()
			w.bindings[sess] = f.Words[0]
			w.mu.Unlock()
		case f.Op == ops.OpEndSession:
			if err := flush(); err != nil {
				return true, fmt.Errorf("session %d replies: %w", sess, err)
			}
			w.mu.Lock()
			delete(w.bindings, sess)
			w.mu.Unlock()
			ack := &comm.Frame{Kind: comm.KindControl, From: w.id, To: comm.CP, Stream: f.Stream, Tag: f.RTag}
			if err := w.reply(ack); err != nil {
				return true, fmt.Errorf("session %d end ack: %w", sess, err)
			}
			return true, nil
		case f.RTag != "":
			// Gather the maximal run of consecutive reply-bearing ops.
			// Ops inside one request envelope are the requests of a
			// pipelined round sequence — independent by construction (no
			// request depends on an earlier reply, or the CP could not
			// have issued them together) — so the run executes on all
			// cores while the replies commit in canonical order below.
			end := i + 1
			for end < len(g.frames) {
				nf := g.frames[end]
				if nf.RTag == "" || nf.Op == ops.OpEndSession {
					break
				}
				end++
			}
			run := g.frames[i:end]
			i = end - 1
			kinds, payloads, skipped, execErr := w.execRun(sess, r, run)
			if execErr != nil {
				return true, execErr
			}
			for k, f := range run {
				if skipped[k] {
					continue // discarded: session aborted mid-run
				}
				reply := &comm.Frame{Kind: kinds[k], From: w.id, To: comm.CP, Stream: f.Stream, Tag: f.RTag}
				enc := comm.EncodeFrameFloats(reply, payloads[k])
				if !batching {
					w.wmu.Lock()
					werr := comm.WriteWireFrame(w.conn, enc)
					w.wmu.Unlock()
					comm.ReleaseFrame(enc)
					if werr != nil {
						return true, fmt.Errorf("reply: %w", werr)
					}
					continue
				}
				if pendBytes > 0 && pendBytes+len(enc)+4+comm.FrameHeaderLen > comm.MaxBatchBytes {
					if err := flush(); err != nil {
						return true, fmt.Errorf("session %d replies: %w", sess, err)
					}
				}
				pend = append(pend, enc)
				pendBytes += len(enc)
				if w.replyBatch > 1 && len(pend) >= w.replyBatch {
					if err := flush(); err != nil {
						return true, fmt.Errorf("session %d replies: %w", sess, err)
					}
				}
			}
		default:
			// Broadcast with no reply expected (seed announcements, the
			// projection basis): shared knowledge, consumed and done.
		}
	}
	if err := flush(); err != nil {
		return true, fmt.Errorf("session %d replies: %w", sess, err)
	}
	return false, nil
}

// execRun executes one run of independent ops, fanning out on
// GOMAXPROCS workers when the run has more than one op (a single op —
// every unbatched request — takes the plain inline path, as does any
// run on a single-CPU host). Each body writes only its own index's
// slots, and the caller commits replies sequentially in run order, so
// the reply stream is bit-identical to serial execution. An op the
// abort flag reached before it started is marked skipped (no reply);
// ops already executing when the abort lands still complete and reply,
// exactly as one serial op past the abort check would.
func (w *workerState) execRun(sess uint16, r *sessionRunner, run []*comm.Frame) ([]comm.Kind, [][]float64, []bool, error) {
	kinds := make([]comm.Kind, len(run))
	payloads := make([][]float64, len(run))
	skipped := make([]bool, len(run))
	errs := make([]error, len(run))
	parallel.For(0, len(run), func(k int) {
		if r.aborted.Load() {
			skipped[k] = true // session canceled: discard without executing
			return
		}
		kinds[k], payloads[k], errs[k] = w.exec(sess, run[k])
	})
	for k, f := range run {
		if errs[k] != nil {
			return nil, nil, nil, fmt.Errorf("op %d (%s): %w", f.Op, f.Tag, errs[k])
		}
	}
	return kinds, payloads, skipped, nil
}

// reply writes one frame back to the coordinator, serialized against the
// other session runners.
func (w *workerState) reply(f *comm.Frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, f)
}

// install accumulates one chunk of a dataset-keyed share installation and
// publishes the share into the cache when the last chunk arrives.
func (w *workerState) install(f *comm.Frame) error {
	if len(f.Words) < 6 {
		return fmt.Errorf("cluster: malformed share frame (%d words)", len(f.Words))
	}
	key := f.Words[0]
	n, d, backend := int(f.Words[1]), int(f.Words[2]), f.Words[3]
	off, total := int(f.Words[4]), int(f.Words[5])
	vals := comm.WordFloats(f.Words[6:])
	if n < 0 || d < 0 || total != n*d || off < 0 || off+len(vals) > total {
		return fmt.Errorf("cluster: share chunk out of bounds (%dx%d, offset %d, %d values)", n, d, off, len(vals))
	}
	p := w.pending[key]
	if off == 0 {
		p = &pendingInstall{dense: matrix.NewDense(n, d), backend: backend}
		w.pending[key] = p
	}
	if p == nil || p.dense.Rows() != n || p.dense.Cols() != d || off != p.filled {
		return fmt.Errorf("cluster: share chunk at offset %d does not continue the pending install", off)
	}
	copy(p.dense.Data()[off:], vals)
	p.filled += len(vals)
	if p.filled < total {
		return nil
	}
	mat := matrix.Mat(p.dense)
	switch p.backend {
	case 1:
		mat = matrix.ToCSR(p.dense)
	case 2:
		mat = matrix.ToFast(p.dense)
	}
	delete(w.pending, key)
	w.mu.Lock()
	w.shares[key] = newWorkerShare(mat)
	w.defaultKey = key
	w.hasDefault = true
	w.mu.Unlock()
	return nil
}

// applyAppend folds one OpAppendRows chunk into the keyed share: the
// resident matrix is swapped for a copy-on-append snapshot (ops already
// executing keep their consistent old view) and the warm store folds the
// new rows forward lazily on its next serve.
func (w *workerState) applyAppend(f *comm.Frame) error {
	key, n0, d, delta, err := ops.ParseAppendRows(f.Words)
	if err != nil {
		return fmt.Errorf("cluster: worker %d append: %w", w.id, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	sh := w.shares[key]
	if sh == nil {
		return fmt.Errorf("cluster: worker %d append to uninstalled dataset %#x", w.id, key)
	}
	if sh.mat.Rows() != n0 || sh.mat.Cols() != d {
		return fmt.Errorf("cluster: worker %d append against stale shape %dx%d (share is %dx%d)",
			w.id, n0, d, sh.mat.Rows(), sh.mat.Cols())
	}
	nm, err := matrix.AppendRows(sh.mat, delta)
	if err != nil {
		return fmt.Errorf("cluster: worker %d append: %w", w.id, err)
	}
	sh.rebind(nm)
	return nil
}

// applyUpdate folds one OpUpdateRows frame into the keyed share: the
// per-coordinate deltas (new−old) are folded into every warm sketch
// eagerly — they were computed against the old snapshot — and the matrix
// is swapped for the updated copy.
func (w *workerState) applyUpdate(f *comm.Frame) error {
	key, n, d, idx, rows, err := ops.ParseUpdateRows(f.Words)
	if err != nil {
		return fmt.Errorf("cluster: worker %d update: %w", w.id, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	sh := w.shares[key]
	if sh == nil {
		return fmt.Errorf("cluster: worker %d update to uninstalled dataset %#x", w.id, key)
	}
	if sh.mat.Rows() != n || sh.mat.Cols() != d {
		return fmt.Errorf("cluster: worker %d update against stale shape %dx%d (share is %dx%d)",
			w.id, n, d, sh.mat.Rows(), sh.mat.Cols())
	}
	js, deltas := ops.UpdateDeltas(sh.mat, idx, rows)
	nm, err := matrix.UpdateRows(sh.mat, idx, rows)
	if err != nil {
		return fmt.Errorf("cluster: worker %d update: %w", w.id, err)
	}
	sh.store.FoldUpdate(d, js, deltas)
	sh.rebind(nm)
	return nil
}

// resolve returns the share a session's ops execute against: the bound
// dataset, or — for unbound sessions, including the single-tenant session
// 0 — the most recently installed one.
func (w *workerState) resolve(sess uint16) (*workerShare, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	key, ok := w.bindings[sess]
	if !ok {
		if !w.hasDefault {
			return nil, errors.New("no share installed")
		}
		key = w.defaultKey
	}
	sh := w.shares[key]
	if sh == nil {
		return nil, fmt.Errorf("session %d bound to uninstalled dataset %#x", sess, key)
	}
	return sh, nil
}

// exec runs one protocol op against the session's share. Every branch
// calls the same builder the coordinator uses for in-process shares.
func (w *workerState) exec(sess uint16, f *comm.Frame) (comm.Kind, []float64, error) {
	sh, err := w.resolve(sess)
	if err != nil {
		return 0, nil, err
	}
	switch f.Op {
	case ops.OpFlatSketch:
		seed, depth, width, err := ops.ParseFlatSketch(f.Words)
		if err != nil {
			return 0, nil, err
		}
		cs := ops.FlatSketch(sh.vec, seed, depth, width, 0)
		return comm.KindSketch, ops.FlattenSketches([]*sketch.CountSketch{cs}), nil
	case ops.OpBucketSketch:
		repSeed, buckets, depth, width, filt, err := ops.ParseBucketSketch(f.Words)
		if err != nil {
			return 0, nil, err
		}
		sks := ops.BucketSketchesFiltered(sh.vec, repSeed, buckets, depth, width, filt, nil)
		return comm.KindSketch, ops.FlattenSketches(sks), nil
	case ops.OpDyadicSketch:
		seed, depth, width, err := ops.ParseFlatSketch(f.Words)
		if err != nil {
			return 0, nil, err
		}
		return comm.KindSketch, hh.BuildLocalDyadic(sh.vec, seed, hh.Params{Depth: depth, Width: width}).Flat(), nil
	case ops.OpRow:
		i, err := ops.ParseIndex(f.Words)
		if err != nil {
			return 0, nil, err
		}
		row, err := ops.Row(sh.mat, int(i))
		if err != nil {
			return 0, nil, err
		}
		return comm.KindRow, row, nil
	case ops.OpValue:
		j, err := ops.ParseIndex(f.Words)
		if err != nil {
			return 0, nil, err
		}
		if j >= sh.vec.Len() {
			return 0, nil, fmt.Errorf("coordinate %d out of range", j)
		}
		return comm.KindValue, []float64{sh.vec.At(j)}, nil
	case ops.OpShareDump:
		return comm.KindShare, ops.ShareDump(sh.mat), nil
	case ops.OpLinearSketch:
		seed, rows, err := ops.ParseLinearSketch(f.Words)
		if err != nil {
			return 0, nil, err
		}
		return comm.KindSketch, ops.LinearSketch(sh.mat, seed, rows), nil
	default:
		return 0, nil, fmt.Errorf("unknown op %d", f.Op)
	}
}

// Dial connects to a coordinator and serves until shutdown. ctx bounds
// the connection phase only — workers typically start before the
// coordinator listens, so the dial retries until ctx fires; once the
// connection is established the serve loop runs until the coordinator
// shuts the cluster down, regardless of ctx.
func Dial(ctx context.Context, addr string) error { return DialBatch(ctx, addr, 0) }

// DialBatch is Dial with the worker's reply-batching cap (see ServeBatch).
func DialBatch(ctx context.Context, addr string, replyBatch int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var d net.Dialer
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return ServeBatch(conn, replyBatch)
		}
		if ctx.Err() != nil {
			return fmt.Errorf("cluster: joining %s: %w", addr, err)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("cluster: joining %s: %w", addr, ctx.Err())
		}
	}
}
