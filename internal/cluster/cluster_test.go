package cluster

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/linearbaseline"
	"repro/internal/matrix"
	"repro/internal/samplers"
	"repro/internal/zsampler"
)

// buildShares additively partitions a deterministic low-rank-ish matrix
// across s servers.
func buildShares(seed int64, n, d, s int) []matrix.Mat {
	rng := rand.New(rand.NewSource(seed))
	M := matrix.NewDense(n, d)
	for i := range M.Data() {
		M.Data()[i] = rng.NormFloat64() * 0.1
	}
	for _, i := range []int{1, n / 2, n - 2} {
		for j := 0; j < d; j++ {
			M.Set(i, j, 5+rng.Float64())
		}
	}
	out := make([]*matrix.Dense, s)
	for t := range out {
		out[t] = matrix.NewDense(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for t := 0; t < s-1; t++ {
				sh := rng.NormFloat64() * 0.05
				out[t].Set(i, j, sh)
				acc += sh
			}
			out[s-1].Set(i, j, M.At(i, j)-acc)
		}
	}
	return matrix.AsMats(out)
}

// startTCP brings up a coordinator with s−1 in-process workers over real
// loopback TCP sockets and installs the shares.
func startTCP(t *testing.T, locals []matrix.Mat) *Coordinator {
	t.Helper()
	s := len(locals)
	coord, err := Listen(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < s; i++ {
		go func() {
			if err := Dial(testCtx(5*time.Second), coord.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := coord.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := coord.InstallShares(locals); err != nil {
		t.Fatal(err)
	}
	return coord
}

type runStats struct {
	words   int64
	bytes   int64
	msgs    int64
	byTag   map[string]int64
	byTagB  map[string]int64
	byLink  map[[2]int]int64
	trace   []comm.Message
	rows    []int
	projOK  bool
	project *matrix.Dense
}

// runProtocol drives the full generalized-sampler pipeline (Z-estimator
// with a parallel level sweep — so forked streams interleave on the links
// — then Algorithm 1 with row collection and the projection broadcast).
func runProtocol(t *testing.T, net *comm.Network, locals []matrix.Mat, seed int64) runStats {
	t.Helper()
	net.EnableTrace()
	n, d := locals[comm.CP].Rows(), locals[comm.CP].Cols()
	p := zsampler.ParamsForBudget(1<<13, net.Servers(), n*d, seed)
	p.Workers = 3
	zr, err := samplers.NewZRow(context.Background(), net, locals, fn.Identity{}, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), net, zr, fn.Identity{}, d, core.Options{K: 3, R: 15})
	if err != nil {
		t.Fatal(err)
	}
	return runStats{
		words:   net.Words(),
		bytes:   net.Bytes(),
		msgs:    net.Messages(),
		byTag:   net.Breakdown(),
		byTagB:  net.ByteBreakdown(),
		byLink:  net.LinkBreakdown(),
		trace:   net.Transcript(),
		rows:    res.Rows,
		projOK:  true,
		project: res.P,
	}
}

// TestMemVsTCPTranscriptEquivalence is the transport determinism gate: for
// a fixed seed, the word ledger — tags, words, bytes, message order per
// link — and the protocol's result must be identical whether the servers
// are goroutines over the in-memory transport or worker processes over
// TCP. In the spirit of the PR 2 dense-vs-CSR tests, equality is exact,
// not approximate.
func TestMemVsTCPTranscriptEquivalence(t *testing.T) {
	const n, d, s, seed = 80, 10, 4, 1234
	locals := buildShares(seed, n, d, s)

	mem := runProtocol(t, comm.NewNetwork(s), locals, seed)

	coord := startTCP(t, locals)
	defer coord.Close()
	tcp := runProtocol(t, coord.Network(), coord.MaskShares(locals), seed)

	if mem.words != tcp.words || mem.msgs != tcp.msgs {
		t.Fatalf("ledger totals differ: mem %d words/%d msgs, tcp %d words/%d msgs",
			mem.words, mem.msgs, tcp.words, tcp.msgs)
	}
	if mem.bytes != tcp.bytes {
		t.Fatalf("byte totals differ: mem %d, tcp %d", mem.bytes, tcp.bytes)
	}
	if !reflect.DeepEqual(mem.byTag, tcp.byTag) {
		t.Fatalf("per-tag words differ:\nmem %v\ntcp %v", mem.byTag, tcp.byTag)
	}
	if !reflect.DeepEqual(mem.byTagB, tcp.byTagB) {
		t.Fatalf("per-tag bytes differ:\nmem %v\ntcp %v", mem.byTagB, tcp.byTagB)
	}
	if !reflect.DeepEqual(mem.byLink, tcp.byLink) {
		t.Fatalf("per-link words differ:\nmem %v\ntcp %v", mem.byLink, tcp.byLink)
	}
	if len(mem.trace) != len(tcp.trace) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(mem.trace), len(tcp.trace))
	}
	for i := range mem.trace {
		if mem.trace[i] != tcp.trace[i] {
			t.Fatalf("transcript message %d differs: mem %+v, tcp %+v", i, mem.trace[i], tcp.trace[i])
		}
	}
	if !reflect.DeepEqual(mem.rows, tcp.rows) {
		t.Fatalf("sampled rows differ: mem %v, tcp %v", mem.rows, tcp.rows)
	}
	if !mem.project.Equalf(tcp.project, 0) {
		t.Fatal("projection matrices differ bitwise between transports")
	}
}

// TestBytesVsWordsCrossCheck enforces the accounting-layer invariant over
// a real protocol run: for EVERY protocol tag, the encoded bytes on the
// wire equal 8·(charged words) + header overhead, and every tag actually
// moved frames — the word model is enforced, not trusted, and no payload
// bypassed the fabric.
func TestBytesVsWordsCrossCheck(t *testing.T) {
	const n, d, s, seed = 60, 8, 3, 777
	locals := buildShares(seed, n, d, s)
	net := comm.NewNetwork(s)
	runProtocol(t, net, locals, seed)

	words := net.Breakdown()
	bytes := net.ByteBreakdown()
	hdr := net.HeaderBreakdown()
	msgs := net.MessageBreakdown()
	if len(words) == 0 {
		t.Fatal("protocol charged nothing")
	}
	for tag, w := range words {
		if bytes[tag] == 0 {
			t.Fatalf("tag %q bypassed the fabric: %d words, no bytes", tag, w)
		}
		if bytes[tag] != 8*w+hdr[tag] {
			t.Fatalf("tag %q: %d bytes != 8·%d words + %d header", tag, bytes[tag], w, hdr[tag])
		}
		// Header overhead is per message and bounded: at least the fixed
		// header, at most fixed header plus both tag strings.
		if hdr[tag] < msgs[tag]*comm.FrameHeaderLen || hdr[tag] > msgs[tag]*int64(comm.FrameHeaderLen+2*len(tag)+64) {
			t.Fatalf("tag %q: header bytes %d implausible for %d messages", tag, hdr[tag], msgs[tag])
		}
	}
	if net.Bytes() != 8*net.Words()+net.HeaderBytes() {
		t.Fatalf("totals: %d bytes != 8·%d words + %d header", net.Bytes(), net.Words(), net.HeaderBytes())
	}
}

// TestTCPClusterReuseAcrossRuns reuses one worker fleet for consecutive
// protocol runs with a Reset in between — the sweep-cell pattern of the
// multi-process mode — and demands each run's ledger be identical to a
// fresh in-process run.
func TestTCPClusterReuseAcrossRuns(t *testing.T) {
	const n, d, s, seed = 50, 6, 3, 99
	locals := buildShares(seed, n, d, s)

	coord := startTCP(t, locals)
	defer coord.Close()
	masked := coord.MaskShares(locals)

	first := runProtocol(t, coord.Network(), masked, seed)
	coord.Network().Reset()
	second := runProtocol(t, coord.Network(), masked, seed)

	if !reflect.DeepEqual(first.byTag, second.byTag) {
		t.Fatalf("reused fabric drifted:\nfirst %v\nsecond %v", first.byTag, second.byTag)
	}
	if len(first.trace) != len(second.trace) {
		t.Fatalf("reused fabric transcript drifted: %d vs %d messages", len(first.trace), len(second.trace))
	}
	mem := runProtocol(t, comm.NewNetwork(s), locals, seed)
	if !reflect.DeepEqual(mem.byTag, second.byTag) {
		t.Fatalf("post-reset run differs from fresh mem run:\nmem %v\ntcp %v", mem.byTag, second.byTag)
	}
}

// TestChunkedShareInstall forces the share installation through many
// tiny chunks and checks the protocol still sees the identical share
// (transcript equal to the in-process run).
func TestChunkedShareInstall(t *testing.T) {
	old := installChunkWords
	installChunkWords = 7
	defer func() { installChunkWords = old }()

	const n, d, s, seed = 30, 5, 3, 42
	locals := buildShares(seed, n, d, s)
	mem := runProtocol(t, comm.NewNetwork(s), locals, seed)

	coord := startTCP(t, locals)
	defer coord.Close()
	tcp := runProtocol(t, coord.Network(), coord.MaskShares(locals), seed)

	if !reflect.DeepEqual(mem.byTag, tcp.byTag) {
		t.Fatalf("chunked install changed the protocol:\nmem %v\ntcp %v", mem.byTag, tcp.byTag)
	}
	if !mem.project.Equalf(tcp.project, 0) {
		t.Fatal("chunked install corrupted the share")
	}
}

// TestLinearBaselineOverTCP drives the linear-model baseline across
// worker processes — the OpLinearSketch wire path — and checks word-for-
// word, bit-for-bit parity with the in-process run.
func TestLinearBaselineOverTCP(t *testing.T) {
	const n, d, s, seed = 40, 6, 3, 7
	locals := buildShares(seed, n, d, s)
	opts := linearbaseline.Options{K: 3, Eps: 0.5, Seed: seed}

	memNet := comm.NewNetwork(s)
	memNet.EnableTrace()
	memRes, err := linearbaseline.Run(context.Background(), memNet, locals, opts)
	if err != nil {
		t.Fatal(err)
	}

	coord := startTCP(t, locals)
	defer coord.Close()
	tcpNet := coord.Network()
	tcpNet.EnableTrace()
	tcpRes, err := linearbaseline.Run(context.Background(), tcpNet, coord.MaskShares(locals), opts)
	if err != nil {
		t.Fatal(err)
	}

	if memRes.Words != tcpRes.Words {
		t.Fatalf("linear baseline words differ: mem %d, tcp %d", memRes.Words, tcpRes.Words)
	}
	if !reflect.DeepEqual(memNet.Transcript(), tcpNet.Transcript()) {
		t.Fatalf("linear baseline transcripts differ:\nmem %v\ntcp %v", memNet.Breakdown(), tcpNet.Breakdown())
	}
	if !memRes.P.Equalf(tcpRes.P, 0) {
		t.Fatal("linear baseline projection differs between transports")
	}
}

// TestTCPClusterCSRShares ships CSR and fast-dense shares to the workers
// and checks the backend invariance (the PR 2 contract) holds across the
// wire: every backend of the same logical matrix produces an identical
// transcript. The install path exercises the per-backend wire markers —
// workers rebuild each share in its installed backend from the dense
// chunks.
func TestTCPClusterCSRShares(t *testing.T) {
	const n, d, s, seed = 40, 6, 3, 2024
	dense := buildShares(seed, n, d, s)

	coordDense := startTCP(t, dense)
	defer coordDense.Close()
	a := runProtocol(t, coordDense.Network(), coordDense.MaskShares(dense), seed)

	for _, backend := range []matrix.Backend{matrix.BackendCSR, matrix.BackendFast} {
		shares := backend.Apply(append([]matrix.Mat(nil), dense...))
		coord := startTCP(t, shares)
		b := runProtocol(t, coord.Network(), coord.MaskShares(shares), seed)
		coord.Close()

		if !reflect.DeepEqual(a.byTag, b.byTag) {
			t.Fatalf("backend tallies differ over TCP:\ndense %v\n%s %v", a.byTag, backend, b.byTag)
		}
		for i := range a.trace {
			if a.trace[i] != b.trace[i] {
				t.Fatalf("transcript message %d differs between dense and %s", i, backend)
			}
		}
		if !a.project.Equalf(b.project, 0) {
			t.Fatalf("projection differs between dense and %s shares over TCP", backend)
		}
	}
}
