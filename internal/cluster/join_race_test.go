package cluster

// Regression for the stalled-joiner race: a joiner can block in the
// OnBeforeReplace quiesce gate long enough for the failure detector to
// re-mark its claimed slot Dead and a second joiner to claim it. The
// stalled joiner must then bow out — without swapping its link in,
// closing the winner's connection, or advancing the epoch/failover
// counters a second time.

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/membership"
)

// awaitMember polls the membership table until worker idx satisfies ok,
// failing the test at the deadline.
func awaitMember(t *testing.T, coord *Coordinator, idx int, what string, ok func(membership.Member) bool) membership.Member {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m, found := coord.Membership().Get(idx); found && ok(m) {
			return m
		}
		time.Sleep(2 * time.Millisecond)
	}
	m, _ := coord.Membership().Get(idx)
	t.Fatalf("worker %d never became %s; last state %+v", idx, what, m)
	return membership.Member{}
}

func TestStalledJoinerLosesSlotToSecondJoiner(t *testing.T) {
	const s = 3
	coord, err := Listen(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for i := 1; i < s; i++ {
		go func() { _ = Dial(testCtx(10*time.Second), coord.Addr()) }()
	}
	if err := coord.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// The first joiner's gate call blocks until released; every later
	// call (the second joiner's) passes straight through.
	gateRelease := make(chan struct{})
	var gateCalls int32
	coord.OnBeforeReplace(func(worker int) error {
		if atomic.AddInt32(&gateCalls, 1) == 1 {
			<-gateRelease
		}
		return nil
	})
	// A fast detector so the stalled join is re-killed within the test:
	// probes every 10ms, dead after 5 misses.
	if err := coord.EnableMembership(membership.Config{
		Interval: 10 * time.Millisecond, SuspectAfter: 2, DeadAfter: 5,
	}); err != nil {
		t.Fatal(err)
	}

	// Kill worker 2 and wait for the vacancy.
	if err := coord.DropWorker(2); err != nil {
		t.Fatal(err)
	}
	awaitMember(t, coord, 2, "dead", func(m membership.Member) bool { return m.State == membership.Dead })

	// First joiner claims the slot and stalls in the gate.
	firstDone := make(chan error, 1)
	go func() { firstDone <- Dial(testCtx(10*time.Second), coord.Addr()) }()
	awaitMember(t, coord, 2, "joining", func(m membership.Member) bool { return m.State == membership.Joining })

	// The detector re-kills the stalled join, and a second joiner wins
	// the vacated slot.
	awaitMember(t, coord, 2, "dead again", func(m membership.Member) bool { return m.State == membership.Dead })
	secondDone := make(chan error, 1)
	go func() { secondDone <- Dial(testCtx(10*time.Second), coord.Addr()) }()
	won := awaitMember(t, coord, 2, "active at epoch 2", func(m membership.Member) bool {
		return m.State == membership.Active && m.Epoch == 2
	})

	// Release the stalled joiner: it must notice its claim is gone and
	// bow out without touching the winner.
	close(gateRelease)
	if err := <-firstDone; err == nil {
		t.Fatal("stalled joiner served a slot it had lost")
	}

	// The winner stays active through several detector windows — if the
	// loser had closed the winner's link or re-marked the slot, the
	// table would flip it dead here.
	time.Sleep(150 * time.Millisecond)
	m, _ := coord.Membership().Get(2)
	if m.State != membership.Active || m.Epoch != won.Epoch {
		t.Fatalf("winner disturbed by the stalled joiner: %+v (was %+v)", m, won)
	}
	if f := coord.Membership().Failovers(); f != 1 {
		t.Fatalf("failovers double-counted: %d, want 1", f)
	}

	coord.Close()
	<-secondDone
}
