package cluster

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/matrix"
	"repro/internal/samplers"
	"repro/internal/zsampler"
)

// TestConcurrentSessionsOverTCP interleaves several complete protocol
// runs, each inside its own comm session bound to its own dataset, on one
// TCP worker fleet — and demands every session's ledger, transcript and
// projection be bit-identical to the same protocol run alone on a fresh
// single-tenant fabric. This is the multi-tenant determinism gate at the
// cluster layer.
func TestConcurrentSessionsOverTCP(t *testing.T) {
	const n, d, s, k = 60, 8, 3, 4
	seeds := []int64{101, 202, 303, 404}

	// Reference: each protocol run alone over mem.
	want := make([]runStats, k)
	datasets := make([][]matrix.Mat, k)
	for i := 0; i < k; i++ {
		datasets[i] = buildShares(seeds[i], n, d, s)
		want[i] = runProtocol(t, comm.NewNetwork(s), datasets[i], seeds[i])
	}

	coord, err := Listen(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for i := 1; i < s; i++ {
		go func() {
			if err := Dial(testCtx(5*time.Second), coord.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := coord.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := coord.InstallDataset(uint64(i+1), datasets[i]); err != nil {
			t.Fatal(err)
		}
	}

	got := make([]runStats, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		sess, err := coord.Network().NewSession()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.OpenSession(sess.ID(), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *comm.Session) {
			defer wg.Done()
			got[i] = runProtocol(t, sess.Network, coord.MaskShares(datasets[i]), seeds[i])
			if err := coord.CloseSession(sess.ID()); err != nil {
				t.Errorf("closing session: %v", err)
			}
			sess.Close()
		}(i, sess)
	}
	wg.Wait()

	for i := 0; i < k; i++ {
		if want[i].words != got[i].words || want[i].bytes != got[i].bytes {
			t.Fatalf("job %d totals drifted under tenancy: alone %d/%d, shared %d/%d",
				i, want[i].words, want[i].bytes, got[i].words, got[i].bytes)
		}
		if !reflect.DeepEqual(want[i].byTag, got[i].byTag) {
			t.Fatalf("job %d per-tag words drifted:\nalone  %v\nshared %v", i, want[i].byTag, got[i].byTag)
		}
		if !reflect.DeepEqual(want[i].trace, got[i].trace) {
			t.Fatalf("job %d transcript drifted under tenancy", i)
		}
		if !want[i].project.Equalf(got[i].project, 0) {
			t.Fatalf("job %d projection drifted under tenancy", i)
		}
	}
}

// TestShareCacheSkipsReinstall: re-installing an already-resident dataset
// must ship zero installation frames; a genuinely new dataset must ship
// some.
func TestShareCacheSkipsReinstall(t *testing.T) {
	const n, d, s = 30, 5, 3
	a := buildShares(1, n, d, s)
	b := buildShares(2, n, d, s)

	coord := startTCP(t, a) // startTCP uses the legacy InstallShares path (key 0)
	defer coord.Close()

	base := coord.InstallFrames()
	if base == 0 {
		t.Fatal("installation shipped no frames")
	}
	if err := coord.InstallDataset(7, a); err != nil {
		t.Fatal(err)
	}
	afterNew := coord.InstallFrames()
	if afterNew <= base {
		t.Fatal("new dataset key shipped no frames")
	}
	if err := coord.InstallDataset(7, a); err != nil {
		t.Fatal(err)
	}
	if got := coord.InstallFrames(); got != afterNew {
		t.Fatalf("cache hit shipped %d frames", got-afterNew)
	}
	if !coord.Installed(7) || coord.Installed(8) {
		t.Fatal("Installed() disagrees with the cache")
	}
	if err := coord.InstallDataset(8, b); err != nil {
		t.Fatal(err)
	}
	if got := coord.InstallFrames(); got <= afterNew {
		t.Fatal("second dataset shipped no frames")
	}
}

// TestCoordinatorCloseIdempotent: a second Close must be a nil no-op, and
// coordinator operations after Close must report ErrClosed instead of
// panicking — the PR 4 close-semantics regression gate.
func TestCoordinatorCloseIdempotent(t *testing.T) {
	locals := buildShares(3, 20, 4, 3)
	coord := startTCP(t, locals)
	if err := coord.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := coord.Close(); err != nil {
		t.Fatalf("second close not idempotent: %v", err)
	}
	if err := coord.InstallDataset(1, locals); !errors.Is(err, ErrClosed) {
		t.Fatalf("install after close: %v, want ErrClosed", err)
	}
	if err := coord.OpenSession(1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("open session after close: %v, want ErrClosed", err)
	}
	if err := coord.CloseSession(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("close session after close: %v, want ErrClosed", err)
	}

	// A coordinator that never completed AwaitWorkers must also close
	// cleanly, twice.
	c2, err := Listen(3, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("unawaited close: %v", err)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("unawaited second close: %v", err)
	}
}

// TestCanceledSessionTeardownClean is the cluster-layer half of the
// mid-run cancellation gate: a protocol run whose ctx fires between
// rounds inside a TCP session — followed by the cancellation teardown
// (AbortSession so workers discard the session's queued ops, then
// CloseSession's drain-until-ack) — must leave the worker fleet and the
// links so clean that the next session's full protocol run is
// bit-identical to the same run on a fresh single-tenant fabric.
func TestCanceledSessionTeardownClean(t *testing.T) {
	const n, d, s, seed = 60, 8, 3, 505
	locals := buildShares(seed, n, d, s)

	// Reference: the probe protocol alone over mem.
	want := runProtocol(t, comm.NewNetwork(s), locals, seed)

	coord, err := Listen(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for i := 1; i < s; i++ {
		go func() {
			if err := Dial(testCtx(5*time.Second), coord.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := coord.AwaitWorkers(testCtx(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := coord.InstallDataset(1, locals); err != nil {
		t.Fatal(err)
	}

	// Session A: cancel after the 4th protocol round, mid-pipeline.
	sessA, err := coord.Network().NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.OpenSession(sessA.ID(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sessA.OnRound(func(seq int64, tag string) {
		if seq == 4 {
			cancel()
		}
	})
	masked := coord.MaskShares(locals)
	p := zsampler.ParamsForBudget(1<<13, s, n*d, seed)
	zr, err := samplers.NewZRow(ctx, sessA.Network, masked, fn.Identity{}, p)
	if err == nil {
		_, err = core.Run(ctx, sessA.Network, zr, fn.Identity{}, d, core.Options{K: 3, R: 15})
	}
	if err == nil {
		t.Fatal("protocol survived a ctx canceled after round 4")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want a context.Canceled chain", err)
	}
	// Cancellation teardown, exactly as the job engine performs it.
	if err := coord.AbortSession(sessA.ID()); err != nil {
		t.Fatal(err)
	}
	if err := coord.CloseSession(sessA.ID()); err != nil {
		t.Fatal(err)
	}
	sessA.Close()

	// Session B (which recycles A's id): the probe run must match the
	// fresh-fabric reference exactly — ledger, transcript and projection.
	sessB, err := coord.Network().NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.OpenSession(sessB.ID(), 1); err != nil {
		t.Fatal(err)
	}
	got := runProtocol(t, sessB.Network, masked, seed)
	if err := coord.CloseSession(sessB.ID()); err != nil {
		t.Fatal(err)
	}
	sessB.Close()

	if want.words != got.words || want.bytes != got.bytes || want.msgs != got.msgs {
		t.Fatalf("post-cancel session drifted: fresh %d words/%d bytes/%d msgs, got %d/%d/%d",
			want.words, want.bytes, want.msgs, got.words, got.bytes, got.msgs)
	}
	if !reflect.DeepEqual(want.byTag, got.byTag) {
		t.Fatalf("post-cancel per-tag words drifted:\nfresh %v\ngot   %v", want.byTag, got.byTag)
	}
	if !reflect.DeepEqual(want.trace, got.trace) {
		t.Fatal("post-cancel transcript drifted")
	}
	if !want.project.Equalf(got.project, 0) {
		t.Fatal("post-cancel projection drifted")
	}
}
