package cluster

// Parallel op execution gate: a worker fans the independent reply-bearing
// ops of one pipelined round sequence out on a parallel.For, then commits
// the replies in canonical arrival order — so the transcript must be
// bit-identical to the serial loop no matter how many CPUs the worker
// has. The gate runs the full protocol at GOMAXPROCS 1 (the fan-out
// degrades to the exact serial loop) and 4 (real concurrent exec bodies)
// and demands both reproduce the canonical in-memory transcript. Run
// under -race (make race / CI) this doubles as the data-race proof for
// the shared-share read path.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/comm"
)

// TestParallelOpExecutionTranscript crosses worker parallelism with the
// batched wire framing that produces multi-op round groups (batch 8 and
// 0 both coalesce pipelined rounds into envelopes the workers split into
// runs; batch 8 is additionally asserted to have engaged, so the fan-out
// path demonstrably saw runs longer than one op).
func TestParallelOpExecutionTranscript(t *testing.T) {
	const n, d, s, seed = 80, 10, 4, 1234
	locals := buildShares(seed, n, d, s)
	mem := runProtocol(t, comm.NewNetwork(s), locals, seed)

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, batch := range []int{8, 0} {
			coord := startTCP(t, locals)
			net := coord.Network()
			net.SetBatchSize(batch)
			tcp := runProtocol(t, net, coord.MaskShares(locals), seed)
			sent, _, _ := net.BatchOverhead()
			coord.Close()

			label := fmt.Sprintf("gomaxprocs=%d/batch=%d", procs, batch)
			assertRunsEqual(t, label, mem, tcp)
			if sent == 0 {
				t.Fatalf("%s: batching never engaged — no multi-op runs were exercised", label)
			}
		}
	}
}
