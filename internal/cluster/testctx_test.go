package cluster

import (
	"context"
	"time"
)

// testCtx returns a context that expires after d, with the cancel driven
// by the timer so call sites stay as terse as duration parameters were.
func testCtx(d time.Duration) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	time.AfterFunc(d, cancel)
	return ctx
}
