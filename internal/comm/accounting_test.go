package comm

import (
	"context"
	"reflect"
	"testing"
)

// TestBytesMatchWordsPlusHeaders is the accounting-layer invariant in
// miniature: every frame-borne tag must satisfy
// bytes == 8·words + header bytes, with headers exactly the per-message
// fixed header plus the tag strings.
func TestBytesMatchWordsPlusHeaders(t *testing.T) {
	n := NewNetwork(3)
	n.SendFloats(1, 0, "up", make([]float64, 5))
	n.SendScalar(2, 0, "up", 1)
	n.BroadcastSeed(CP, "seed", 42)
	n.PostFloats(1, 0, "post", []float64{1, 2})
	n.RecvFloats(1, 0, "post")

	words, bytes, hdr, msgs := n.Breakdown(), n.ByteBreakdown(), n.HeaderBreakdown(), n.MessageBreakdown()
	for tag := range words {
		if bytes[tag] != 8*words[tag]+hdr[tag] {
			t.Fatalf("tag %q: bytes %d != 8·%d words + %d header", tag, bytes[tag], words[tag], hdr[tag])
		}
		if bytes[tag] == 0 {
			t.Fatalf("tag %q bypassed the codec (no bytes recorded)", tag)
		}
	}
	// Header bytes are exactly accountable: fixed header + tag per message
	// (none of these frames carry reply tags).
	for tag := range words {
		want := msgs[tag] * int64(FrameHeaderLen+len(tag))
		if hdr[tag] != want {
			t.Fatalf("tag %q: header bytes %d, want %d over %d msgs", tag, hdr[tag], want, msgs[tag])
		}
	}
	if n.Bytes() != 8*n.Words()+n.HeaderBytes() {
		t.Fatalf("totals: %d bytes != 8·%d + %d", n.Bytes(), n.Words(), n.HeaderBytes())
	}
}

// TestChargeIsWordOnly pins the legacy Charge path: words move, no bytes —
// which is exactly why protocol code must not use it for payloads.
func TestChargeIsWordOnly(t *testing.T) {
	n := NewNetwork(2)
	n.Charge(1, 0, "legacy", 10)
	if n.Words() != 10 || n.Bytes() != 0 {
		t.Fatalf("charge: %d words, %d bytes", n.Words(), n.Bytes())
	}
}

// TestResetClearsEverything is the sweep-cell leak regression: Reset must
// drop the trace log, every per-tag and per-link tally (words and bytes),
// and any frames still queued in the transport, so a traced fabric reused
// across cells cannot accumulate unbounded memory or stale frames.
func TestResetClearsEverything(t *testing.T) {
	n := NewNetwork(3)
	n.EnableTrace()
	n.SendFloats(1, 0, "x", make([]float64, 4))
	n.PostFloats(2, 0, "stale", []float64{1, 2, 3}) // never received
	n.Charge(1, 0, "legacy", 2)

	n.Reset()

	if n.Words() != 0 || n.Messages() != 0 || n.Bytes() != 0 || n.HeaderBytes() != 0 {
		t.Fatalf("totals survived reset: %d words %d msgs %d bytes", n.Words(), n.Messages(), n.Bytes())
	}
	for name, m := range map[string]int{
		"byTag":   len(n.Breakdown()),
		"byTagB":  len(n.ByteBreakdown()),
		"byTagH":  len(n.HeaderBreakdown()),
		"byTagM":  len(n.MessageBreakdown()),
		"byLink":  len(n.LinkBreakdown()),
		"byLinkB": len(n.LinkByteBreakdown()),
	} {
		if m != 0 {
			t.Fatalf("%s survived reset (%d entries)", name, m)
		}
	}
	if len(n.Transcript()) != 0 {
		t.Fatal("trace log survived reset")
	}

	// The stale frame must be gone: a fresh post/recv pair sees exactly
	// its own payload, not the pre-reset one.
	n.PostFloats(2, 0, "fresh", []float64{9})
	got := n.RecvFloats(2, 0, "fresh")
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("stale frame leaked across reset: %v", got)
	}
	// Tracing stays enabled across Reset (the flag is configuration, the
	// log is state).
	if len(n.Transcript()) != 1 {
		t.Fatalf("trace after reset recorded %d messages", len(n.Transcript()))
	}
}

// TestRunRoundMemAccounting pins the op-round charging order and shape on
// the in-process transport: requests in server order, then replies in
// server order, all as real frames.
func TestRunRoundMemAccounting(t *testing.T) {
	n := NewNetwork(3)
	n.EnableTrace()
	err := n.RunRound(context.Background(), Round{
		Op:       1,
		Params:   []uint64{7, 8},
		ReqTag:   "phase/seed",
		RespTag:  "phase/sketch",
		RespKind: KindSketch,
		Local: func(t int) ([]float64, error) {
			return []float64{float64(t), float64(t), float64(t)}, nil
		},
		OnResp: func(srv int, payload []float64) error {
			if len(payload) != 3 || payload[0] != float64(srv) {
				t.Fatalf("server %d payload %v", srv, payload)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := n.Breakdown()
	if b["phase/seed"] != 2*2 || b["phase/sketch"] != 2*3 {
		t.Fatalf("round words: %v", b)
	}
	tr := n.Transcript()
	wantRoutes := [][2]int{{0, 1}, {0, 2}, {1, 0}, {2, 0}}
	if len(tr) != len(wantRoutes) {
		t.Fatalf("transcript has %d messages", len(tr))
	}
	for i, m := range tr {
		if m.From != wantRoutes[i][0] || m.To != wantRoutes[i][1] {
			t.Fatalf("message %d route %d→%d, want %d→%d", i, m.From, m.To, wantRoutes[i][0], wantRoutes[i][1])
		}
		if m.Bytes == 0 {
			t.Fatalf("message %d bypassed the codec", i)
		}
	}
}

// TestRunRoundBroadcastOnly covers the no-reply (payload broadcast) form.
func TestRunRoundBroadcastOnly(t *testing.T) {
	n := NewNetwork(4)
	if err := n.RunRound(context.Background(), Round{Op: 2, Data: []float64{1, 2, 3}, Kind: KindProjection, ReqTag: "proj"}); err != nil {
		t.Fatal(err)
	}
	if n.Words() != 3*3 {
		t.Fatalf("broadcast words = %d", n.Words())
	}
	if n.Messages() != 3 {
		t.Fatalf("broadcast messages = %d", n.Messages())
	}
}

// TestForkJoinReplaysBytes extends the fork determinism contract to the
// byte ledger: joining forks must reproduce byte tallies exactly.
func TestForkJoinReplaysBytes(t *testing.T) {
	run := func(forked bool) (map[string]int64, []Message) {
		n := NewNetwork(3)
		n.EnableTrace()
		if forked {
			f1, f2 := n.Fork(), n.Fork()
			f1.SendFloats(1, 0, "a", make([]float64, 5))
			f2.SendFloats(2, 0, "b", make([]float64, 7))
			n.Join(f1, f2)
		} else {
			n.SendFloats(1, 0, "a", make([]float64, 5))
			n.SendFloats(2, 0, "b", make([]float64, 7))
		}
		return n.ByteBreakdown(), n.Transcript()
	}
	directB, directT := run(false)
	forkB, forkT := run(true)
	if !reflect.DeepEqual(directB, forkB) {
		t.Fatalf("byte tallies differ: %v vs %v", directB, forkB)
	}
	if !reflect.DeepEqual(directT, forkT) {
		t.Fatalf("transcripts differ: %v vs %v", directT, forkT)
	}
}

// TestForkStreamsAreDistinct: concurrent forks get distinct stream ids so
// their frames can interleave on one physical link without collisions.
func TestForkStreamsAreDistinct(t *testing.T) {
	n := NewNetwork(2)
	f1, f2 := n.Fork(), n.Fork()
	if f1.stream == f2.stream || f1.stream == n.stream || f2.stream == n.stream {
		t.Fatalf("stream ids collide: root %d forks %d %d", n.stream, f1.stream, f2.stream)
	}
}
