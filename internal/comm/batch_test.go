package comm

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
)

// encodeTestBatch builds a batch envelope over freshly encoded copies of
// the given frames.
func encodeTestBatch(t *testing.T, from, to int, stream uint32, frames ...*Frame) []byte {
	t.Helper()
	sub := make([][]byte, len(frames))
	for i, f := range frames {
		sub[i] = EncodeFrame(f)
	}
	return EncodeFrame(&Frame{Kind: KindBatch, From: from, To: to, Stream: stream, Sub: sub})
}

func TestBatchEnvelopeRoundTrip(t *testing.T) {
	inner := []*Frame{
		{Kind: KindControl, Op: 9, From: CP, To: 2, Stream: 3, Tag: "hh/seed", RTag: "hh/sketch", Words: []uint64{1, 2, 3}},
		{Kind: KindValue, From: CP, To: 2, Stream: 3, Tag: "zest/values", Words: FloatWords([]float64{-7.5})},
		{Kind: KindControl, From: CP, To: 2, Stream: 3, Tag: "empty"},
	}
	enc := encodeTestBatch(t, CP, 2, 3, inner...)
	env, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Kind != KindBatch || env.From != CP || env.To != 2 || env.Stream != 3 {
		t.Fatalf("envelope header mismatch: %+v", env)
	}
	if env.Tag != "" || env.RTag != "" || len(env.Words) != 0 {
		t.Fatalf("envelope carries payload fields: %+v", env)
	}
	if len(env.Sub) != len(inner) {
		t.Fatalf("envelope has %d sub-frames, want %d", len(env.Sub), len(inner))
	}
	for i, sub := range env.Sub {
		dec, err := DecodeFrame(sub)
		if err != nil {
			t.Fatalf("sub %d: %v", i, err)
		}
		want := *inner[i]
		if dec.Words == nil {
			dec.Words = want.Words[:0]
		}
		if want.Words == nil {
			want.Words = []uint64{}
			dec.Words = []uint64{}
		}
		if !reflect.DeepEqual(*dec, want) {
			t.Fatalf("sub %d mismatch:\n got %+v\nwant %+v", i, *dec, want)
		}
	}
	// Fixed point: re-encoding the decoded envelope reproduces the bytes.
	re := EncodeFrame(env)
	if !bytes.Equal(re, enc) {
		t.Fatal("batch envelope re-encode is not a fixed point")
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	good := encodeTestBatch(t, CP, 1, 0,
		&Frame{Kind: KindControl, Op: 2, From: CP, To: 1, Tag: "a", RTag: "b", Words: []uint64{4}},
		&Frame{Kind: KindValue, From: CP, To: 1, Tag: "c", Words: FloatWords([]float64{1})})
	nested := EncodeFrame(&Frame{Kind: KindBatch, From: CP, To: 1, Sub: [][]byte{
		append([]byte{}, good...),
	}})
	cases := map[string]func() []byte{
		"zero sub-frames": func() []byte {
			b := append([]byte{}, good[:FrameHeaderLen]...)
			binary.BigEndian.PutUint32(b[24:], 0) // count field
			return b
		},
		"truncated sub prefix": func() []byte { return good[:FrameHeaderLen+2] },
		"truncated sub body":   func() []byte { return good[:len(good)-3] },
		"trailing bytes":       func() []byte { return append(append([]byte{}, good...), 0, 0, 0) },
		"count overstates":     func() []byte { b := append([]byte{}, good...); binary.BigEndian.PutUint32(b[24:], 3); return b },
		"count understates":    func() []byte { b := append([]byte{}, good...); binary.BigEndian.PutUint32(b[24:], 1); return b },
		"nested envelope":      func() []byte { return nested },
		"envelope with tag": func() []byte {
			b := append([]byte{}, good...)
			binary.BigEndian.PutUint16(b[20:], 1) // tagLen must be zero on envelopes
			return b
		},
		"sub with bad magic": func() []byte {
			b := append([]byte{}, good...)
			b[FrameHeaderLen+4] = 0x00 // first sub's magic byte
			return b
		},
	}
	for name, build := range cases {
		if _, err := DecodeFrame(build()); err == nil {
			t.Fatalf("%s: decoder accepted malformed batch envelope", name)
		}
	}
}

// TestWriteWireBatchRoundTrip drives the scatter-gather writer against a
// real decode: the reader must see one envelope whose sub-frames are the
// written frames, byte for byte.
func TestWriteWireBatchRoundTrip(t *testing.T) {
	inner := []*Frame{
		{Kind: KindControl, Op: 5, From: CP, To: 1, Stream: 9, Tag: "x", RTag: "y", Words: []uint64{11, 22}},
		{Kind: KindSketch, From: CP, To: 1, Stream: 9, Tag: "s", Words: FloatWords(make([]float64, 40))},
	}
	frames := make([][]byte, len(inner))
	want := make([][]byte, len(inner))
	for i, f := range inner {
		frames[i] = EncodeFrame(f)
		want[i] = append([]byte{}, frames[i]...)
	}
	var buf bytes.Buffer
	if err := WriteWireBatch(&buf, CP, 1, 9, frames); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWireFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseFrame(got)
	env, err := DecodeFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindBatch || len(env.Sub) != len(want) {
		t.Fatalf("envelope %+v, want %d sub-frames", env, len(want))
	}
	for i := range want {
		if !bytes.Equal(env.Sub[i], want[i]) {
			t.Fatalf("sub %d bytes differ after the wire", i)
		}
	}
}

// TestWriteWireBatchSingleFrame checks the degenerate case: one frame
// travels as a plain wire frame, not an envelope.
func TestWriteWireBatchSingleFrame(t *testing.T) {
	f := &Frame{Kind: KindValue, From: 1, To: CP, Tag: "v", Words: FloatWords([]float64{2})}
	enc := EncodeFrame(f)
	want := append([]byte{}, enc...)
	var buf bytes.Buffer
	if err := WriteWireBatch(&buf, 1, CP, 0, [][]byte{enc}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWireFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseFrame(got)
	if !bytes.Equal(got, want) {
		t.Fatal("single-frame batch did not degrade to a plain wire frame")
	}
}

// TestTCPTransportSplitsBatches sends a batch envelope through a real TCP
// transport pair and asserts the receiver sees the individual sub-frames,
// in order, with the envelope counted only in the batch side ledger.
func TestTCPTransportSplitsBatches(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		acceptCh <- accepted{c, err}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	acc := <-acceptCh
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	defer acc.conn.Close()

	tr := NewTCPTransport([]net.Conn{nil, acc.conn})
	defer tr.Close()

	inner := []*Frame{
		{Kind: KindValue, From: 1, To: CP, Stream: 4, Tag: "v1", Words: FloatWords([]float64{1})},
		{Kind: KindValue, From: 1, To: CP, Stream: 4, Tag: "v2", Words: FloatWords([]float64{2})},
		{Kind: KindRow, From: 1, To: CP, Stream: 4, Tag: "r", Words: FloatWords([]float64{3, 4})},
	}
	frames := make([][]byte, len(inner))
	for i, f := range inner {
		frames[i] = EncodeFrame(f)
	}
	if err := WriteWireBatch(cli, 1, CP, 4, frames); err != nil {
		t.Fatal(err)
	}
	for i, want := range inner {
		buf, err := tr.Recv(1, CP, 4, nil)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		dec, err := DecodeFrame(buf)
		ReleaseFrame(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if dec.Tag != want.Tag || len(dec.Words) != len(want.Words) {
			t.Fatalf("frame %d: got %q/%d words, want %q/%d", i, dec.Tag, len(dec.Words), want.Tag, len(want.Words))
		}
	}
	sent, recv, over := tr.BatchStats()
	if sent != 0 || recv != 1 {
		t.Fatalf("batch stats sent=%d recv=%d, want 0/1", sent, recv)
	}
	if wantOver := int64(4 + FrameHeaderLen + 4*len(inner)); over != wantOver {
		t.Fatalf("batch overhead %d bytes, want %d", over, wantOver)
	}
}
