package comm

// This file is the codec layer of the fabric: the typed binary wire format
// every protocol message is encoded into before it moves — whether over an
// in-process channel link, a loopback round-trip, or a TCP connection to a
// worker process. One Frame is one accountable message: its payload is a
// sequence of 64-bit words (the unit the paper's cost model charges), and
// its header carries the routing and typing metadata that the word ledger
// treats as overhead. The accounting layer (comm.go) tallies both, so the
// invariant
//
//	frame bytes == 8·charged words + header bytes
//
// can be asserted per protocol tag instead of trusted.
//
// Wire layout (big endian), version 1:
//
//	offset size  field
//	0      2     magic 0xD17A
//	2      1     version (1)
//	3      1     kind (payload type)
//	4      2     op (protocol opcode for control requests; 0 otherwise)
//	6      1     flags (bit 0: prepaid — sender-side accounting)
//	7      1     reserved (0)
//	8      4     from (server id)
//	12     4     to (server id)
//	16     4     stream (ledger id: 0 root, forks allocate fresh ids)
//	20     2     tag length
//	22     2     reply-tag length
//	24     4     payload word count
//	28     …     tag bytes, reply-tag bytes, payload (8 bytes per word)
//
// A batch envelope (KindBatch) coalesces several frames bound for one
// destination into a single wire write. It reuses the fixed header with
// no tags and the word-count field carrying the sub-frame count; the body
// is each sub-frame as a 4-byte big-endian length prefix plus its encoded
// bytes. Envelopes are pure transport framing: receivers split them and
// account each sub-frame under its own tag, the ledger never sees the
// envelope itself (TCPTransport.BatchStats reports that overhead on the
// side), and sub-frames may not nest further envelopes — which is what
// keeps transcripts bit-identical at every batch size.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Kind identifies the payload type of a frame.
type Kind uint8

// The payload kinds every protocol message reduces to.
const (
	// KindControl carries op requests and parameter broadcasts: the words
	// are opcode parameters (seeds, shapes, indices).
	KindControl Kind = 1 + iota
	// KindFloats, KindInts, KindUint64s, KindScalar are the generic typed
	// payloads of the Send*/Post* API.
	KindFloats
	KindInts
	KindUint64s
	KindScalar
	// KindSketch is a flattened CountSketch counter block (flat, bucketed
	// or dyadic — the op that requested it fixes the sub-shape).
	KindSketch
	// KindRow is a raw-row gather response (one dense local row).
	KindRow
	// KindValue is a single collected coordinate value.
	KindValue
	// KindShare is a whole-share dump (baseline full gather; also the
	// uncharged setup installation of worker shares).
	KindShare
	// KindProjection is the rank-k projection basis broadcast.
	KindProjection
)

// KindBatch is the batch envelope: not a payload kind (valid excludes
// it, so it can never be charged under a tag) but a transport framing
// wrapper carrying N sub-frames to one destination in one write.
const KindBatch Kind = 11

func (k Kind) valid() bool { return k >= KindControl && k <= KindProjection }

const (
	frameMagic   = 0xD17A
	frameVersion = 1

	// FlagPrepaid marks frames charged by the sender (SendFloatsAsync);
	// the receiver collects them without charging again.
	FlagPrepaid = 1 << 0

	// FrameHeaderLen is the fixed portion of the header; the full header
	// adds the tag and reply-tag bytes.
	FrameHeaderLen = 28

	// MaxTagLen bounds tag strings on the wire.
	MaxTagLen = 1 << 10

	// MaxFrameWords bounds the payload of a single frame (128 MiB of
	// payload); a decoder never allocates more than the buffer it was
	// handed, and the TCP reader rejects larger length prefixes outright.
	MaxFrameWords = 1 << 24

	// MaxBatchSubFrames bounds the sub-frame count a decoder accepts in
	// one batch envelope.
	MaxBatchSubFrames = 1 << 16

	// MaxBatchBytes caps the frame bytes a sender coalesces into one
	// batch envelope; a larger pending batch flushes in segments.
	// Segmentation is invisible to the ledger (envelopes are framing, not
	// accounting), so the cap only bounds buffering.
	MaxBatchBytes = 1 << 22
)

// Frame is one wire message: an accountable transfer of Words between two
// servers under a ledger tag.
type Frame struct {
	Kind   Kind
	Op     uint16 // protocol opcode for KindControl requests
	Flags  uint8
	From   int
	To     int
	Stream uint32
	Tag    string // ledger tag this frame is charged under
	RTag   string // for op requests: the tag the reply must carry
	Words  []uint64
	// Sub holds a batch envelope's sub-frames (KindBatch only; nil for
	// payload frames). Decoded Sub slices alias the envelope buffer —
	// they are views, valid only until that buffer is recycled.
	Sub [][]byte
}

// HeaderLen returns the encoded header size of the frame.
func (f *Frame) HeaderLen() int { return FrameHeaderLen + len(f.Tag) + len(f.RTag) }

// EncodedLen returns the total encoded size of the frame.
func (f *Frame) EncodedLen() int {
	if f.Kind == KindBatch {
		n := FrameHeaderLen
		for _, s := range f.Sub {
			n += 4 + len(s)
		}
		return n
	}
	return f.HeaderLen() + 8*len(f.Words)
}

// Prepaid reports whether the frame was charged by its sender.
func (f *Frame) Prepaid() bool { return f.Flags&FlagPrepaid != 0 }

// putHeader writes the fixed 28-byte frame header; count is the payload
// word count (or the sub-frame count for batch envelopes).
func putHeader(buf []byte, f *Frame, count int) {
	binary.BigEndian.PutUint16(buf[0:], frameMagic)
	buf[2] = frameVersion
	buf[3] = byte(f.Kind)
	binary.BigEndian.PutUint16(buf[4:], f.Op)
	buf[6] = f.Flags
	buf[7] = 0
	binary.BigEndian.PutUint32(buf[8:], uint32(f.From))
	binary.BigEndian.PutUint32(buf[12:], uint32(f.To))
	binary.BigEndian.PutUint32(buf[16:], f.Stream)
	binary.BigEndian.PutUint16(buf[20:], uint16(len(f.Tag)))
	binary.BigEndian.PutUint16(buf[22:], uint16(len(f.RTag)))
	binary.BigEndian.PutUint32(buf[24:], uint32(count))
}

// checkEncodable panics on frames that must never reach the wire.
func checkEncodable(f *Frame, words int) {
	if !f.Kind.valid() {
		panic(fmt.Sprintf("comm: encoding frame with invalid kind %d", f.Kind))
	}
	if len(f.Tag) > MaxTagLen || len(f.RTag) > MaxTagLen {
		panic(fmt.Sprintf("comm: tag too long (%d/%d bytes)", len(f.Tag), len(f.RTag)))
	}
	if words > MaxFrameWords {
		panic(fmt.Sprintf("comm: frame payload %d words exceeds cap %d", words, MaxFrameWords))
	}
}

// EncodeFrame serializes a frame to its wire form.
func EncodeFrame(f *Frame) []byte {
	if f.Kind == KindBatch {
		return encodeBatch(f)
	}
	checkEncodable(f, len(f.Words))
	buf := getBuf(f.EncodedLen())
	putHeader(buf, f, len(f.Words))
	at := FrameHeaderLen
	at += copy(buf[at:], f.Tag)
	at += copy(buf[at:], f.RTag)
	for _, w := range f.Words {
		binary.BigEndian.PutUint64(buf[at:], w)
		at += 8
	}
	return buf
}

// EncodeFrameFloats serializes a frame whose payload is vals, writing the
// float bit patterns directly into the pooled wire buffer — the zero-copy
// encode for reply frames (no []uint64 staging slice). f.Words must be
// empty; the encoded word count is len(vals).
func EncodeFrameFloats(f *Frame, vals []float64) []byte {
	if f.Kind == KindBatch {
		panic("comm: batch envelopes carry sub-frames, not floats")
	}
	if len(f.Words) != 0 {
		panic("comm: EncodeFrameFloats frame already carries words")
	}
	checkEncodable(f, len(vals))
	buf := getBuf(f.HeaderLen() + 8*len(vals))
	putHeader(buf, f, len(vals))
	at := FrameHeaderLen
	at += copy(buf[at:], f.Tag)
	at += copy(buf[at:], f.RTag)
	for _, x := range vals {
		binary.BigEndian.PutUint64(buf[at:], math.Float64bits(x))
		at += 8
	}
	return buf
}

// encodeBatch serializes a batch envelope from f.Sub.
func encodeBatch(f *Frame) []byte {
	if len(f.Sub) == 0 {
		panic("comm: encoding empty batch envelope")
	}
	if len(f.Sub) > MaxBatchSubFrames {
		panic(fmt.Sprintf("comm: batch envelope of %d sub-frames exceeds cap %d", len(f.Sub), MaxBatchSubFrames))
	}
	if len(f.Tag) != 0 || len(f.RTag) != 0 || len(f.Words) != 0 {
		panic("comm: batch envelope carries tags or words")
	}
	buf := getBuf(f.EncodedLen())
	putHeader(buf, f, len(f.Sub))
	at := FrameHeaderLen
	for _, s := range f.Sub {
		binary.BigEndian.PutUint32(buf[at:], uint32(len(s)))
		at += 4
		at += copy(buf[at:], s)
	}
	return buf
}

// DecodeFrame parses a wire buffer back into a frame. Malformed, truncated
// and oversized buffers return errors; the decoder never allocates beyond
// the buffer it was handed. Batch envelopes decode to a frame whose Sub
// slices alias buf — the caller owns buf until it is done with them.
func DecodeFrame(buf []byte) (*Frame, error) {
	if len(buf) >= FrameHeaderLen &&
		binary.BigEndian.Uint16(buf[0:]) == frameMagic &&
		buf[2] == frameVersion && Kind(buf[3]) == KindBatch {
		return decodeBatch(buf)
	}
	v, err := parseFrame(buf)
	if err != nil {
		return nil, err
	}
	f := &Frame{
		Kind:   v.kind,
		Op:     v.op,
		Flags:  v.flags,
		From:   v.from,
		To:     v.to,
		Stream: v.stream,
		Tag:    v.tag,
		RTag:   v.rtag,
	}
	if v.words > 0 {
		// Pooled backing: receive paths that fully consume the payload
		// recycle it via putWords; paths that hand it to the caller
		// (RecvUint64s) simply don't, and the slice ages out as garbage.
		f.Words = getWords(v.words)
		at := 0
		for i := range f.Words {
			f.Words[i] = binary.BigEndian.Uint64(v.payload[at:])
			at += 8
		}
	}
	return f, nil
}

// frameView is the zero-copy parse of a payload frame: scalar header
// fields copied out, payload aliasing the wire buffer. A view is valid
// only while its buffer is — the drain path converts the payload and
// recycles the buffer in one step without staging a []uint64.
type frameView struct {
	kind    Kind
	op      uint16
	flags   uint8
	from    int
	to      int
	stream  uint32
	tag     string
	rtag    string
	words   int
	payload []byte // 8·words bytes aliasing the decode buffer
}

// parseFrame validates a payload frame's wire image and returns its
// zero-copy view (batch envelopes are rejected; use DecodeFrame).
func parseFrame(buf []byte) (frameView, error) {
	var v frameView
	if len(buf) < FrameHeaderLen {
		return v, fmt.Errorf("comm: frame truncated (%d bytes < %d header)", len(buf), FrameHeaderLen)
	}
	if m := binary.BigEndian.Uint16(buf[0:]); m != frameMagic {
		return v, fmt.Errorf("comm: bad frame magic %#04x", m)
	}
	if ver := buf[2]; ver != frameVersion {
		return v, fmt.Errorf("comm: unsupported frame version %d", ver)
	}
	kind := Kind(buf[3])
	if !kind.valid() {
		return v, fmt.Errorf("comm: unknown payload kind %d", kind)
	}
	tagLen := int(binary.BigEndian.Uint16(buf[20:]))
	rtagLen := int(binary.BigEndian.Uint16(buf[22:]))
	words := binary.BigEndian.Uint32(buf[24:])
	if tagLen > MaxTagLen || rtagLen > MaxTagLen {
		return v, fmt.Errorf("comm: tag length %d/%d exceeds cap", tagLen, rtagLen)
	}
	if words > MaxFrameWords {
		return v, fmt.Errorf("comm: payload of %d words exceeds cap %d", words, MaxFrameWords)
	}
	want := FrameHeaderLen + tagLen + rtagLen + 8*int(words)
	if len(buf) != want {
		return v, fmt.Errorf("comm: frame length %d, header declares %d", len(buf), want)
	}
	v = frameView{
		kind:   kind,
		op:     binary.BigEndian.Uint16(buf[4:]),
		flags:  buf[6],
		from:   int(int32(binary.BigEndian.Uint32(buf[8:]))),
		to:     int(int32(binary.BigEndian.Uint32(buf[12:]))),
		stream: binary.BigEndian.Uint32(buf[16:]),
	}
	at := FrameHeaderLen
	v.tag = internTag(buf[at : at+tagLen])
	at += tagLen
	v.rtag = internTag(buf[at : at+rtagLen])
	at += rtagLen
	v.words = int(words)
	v.payload = buf[at:]
	return v, nil
}

// floats converts the view's payload into a pooled []float64 (recycle
// with putFloats); the view's buffer may be recycled afterwards.
func (v *frameView) floats() []float64 {
	out := getFloats(v.words)
	at := 0
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(v.payload[at:]))
		at += 8
	}
	return out
}

// decodeBatch parses a batch envelope; magic and version were checked by
// DecodeFrame. The returned Sub slices alias buf.
func decodeBatch(buf []byte) (*Frame, error) {
	if tagLen, rtagLen := binary.BigEndian.Uint16(buf[20:]), binary.BigEndian.Uint16(buf[22:]); tagLen != 0 || rtagLen != 0 {
		return nil, fmt.Errorf("comm: batch envelope carries tags (%d/%d bytes)", tagLen, rtagLen)
	}
	count := binary.BigEndian.Uint32(buf[24:])
	if count == 0 {
		return nil, fmt.Errorf("comm: empty batch envelope")
	}
	if count > MaxBatchSubFrames {
		return nil, fmt.Errorf("comm: batch envelope of %d sub-frames exceeds cap %d", count, MaxBatchSubFrames)
	}
	subs, err := splitBatch(buf[FrameHeaderLen:], int(count))
	if err != nil {
		return nil, err
	}
	return &Frame{
		Kind:   KindBatch,
		Op:     binary.BigEndian.Uint16(buf[4:]),
		Flags:  buf[6],
		From:   int(int32(binary.BigEndian.Uint32(buf[8:]))),
		To:     int(int32(binary.BigEndian.Uint32(buf[12:]))),
		Stream: binary.BigEndian.Uint32(buf[16:]),
		Sub:    subs,
	}, nil
}

// splitBatch walks count length-prefixed sub-frames, validating each one
// far enough (header present, magic/version, payload kind, no nesting)
// that a receiver can safely route it. The returned slices alias p.
func splitBatch(p []byte, count int) ([][]byte, error) {
	subs := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 4 {
			return nil, fmt.Errorf("comm: batch envelope truncated at sub-frame %d length", i)
		}
		n := int(binary.BigEndian.Uint32(p))
		p = p[4:]
		if n < FrameHeaderLen || n > MaxWireFrameBytes {
			return nil, fmt.Errorf("comm: batch sub-frame %d length %d out of range", i, n)
		}
		if len(p) < n {
			return nil, fmt.Errorf("comm: batch envelope truncated inside sub-frame %d (%d of %d bytes)", i, len(p), n)
		}
		sub := p[:n]
		p = p[n:]
		if m := binary.BigEndian.Uint16(sub[0:]); m != frameMagic {
			return nil, fmt.Errorf("comm: batch sub-frame %d: bad magic %#04x", i, m)
		}
		if ver := sub[2]; ver != frameVersion {
			return nil, fmt.Errorf("comm: batch sub-frame %d: unsupported version %d", i, ver)
		}
		if k := Kind(sub[3]); k == KindBatch {
			return nil, fmt.Errorf("comm: batch sub-frame %d: nested batch envelope", i)
		} else if !k.valid() {
			return nil, fmt.Errorf("comm: batch sub-frame %d: unknown payload kind %d", i, k)
		}
		subs = append(subs, sub)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("comm: batch envelope carries %d trailing bytes", len(p))
	}
	return subs, nil
}

// frameStream peeks the stream id of an encoded frame without a full
// decode (the TCP reader demultiplexes on it).
func frameStream(buf []byte) (uint32, error) {
	if len(buf) < FrameHeaderLen {
		return 0, fmt.Errorf("comm: frame truncated (%d bytes)", len(buf))
	}
	return binary.BigEndian.Uint32(buf[16:]), nil
}

// FloatWords converts a float64 payload to wire words (bit patterns).
func FloatWords(xs []float64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = math.Float64bits(x)
	}
	return out
}

// WordFloats is the inverse of FloatWords.
func WordFloats(ws []uint64) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = math.Float64frombits(w)
	}
	return out
}

// IntWords converts an int payload to wire words (two's complement).
func IntWords(xs []int) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(int64(x))
	}
	return out
}

// WordInts is the inverse of IntWords.
func WordInts(ws []uint64) []int {
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = int(int64(w))
	}
	return out
}
