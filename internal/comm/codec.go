package comm

// This file is the codec layer of the fabric: the typed binary wire format
// every protocol message is encoded into before it moves — whether over an
// in-process channel link, a loopback round-trip, or a TCP connection to a
// worker process. One Frame is one accountable message: its payload is a
// sequence of 64-bit words (the unit the paper's cost model charges), and
// its header carries the routing and typing metadata that the word ledger
// treats as overhead. The accounting layer (comm.go) tallies both, so the
// invariant
//
//	frame bytes == 8·charged words + header bytes
//
// can be asserted per protocol tag instead of trusted.
//
// Wire layout (big endian), version 1:
//
//	offset size  field
//	0      2     magic 0xD17A
//	2      1     version (1)
//	3      1     kind (payload type)
//	4      2     op (protocol opcode for control requests; 0 otherwise)
//	6      1     flags (bit 0: prepaid — sender-side accounting)
//	7      1     reserved (0)
//	8      4     from (server id)
//	12     4     to (server id)
//	16     4     stream (ledger id: 0 root, forks allocate fresh ids)
//	20     2     tag length
//	22     2     reply-tag length
//	24     4     payload word count
//	28     …     tag bytes, reply-tag bytes, payload (8 bytes per word)

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Kind identifies the payload type of a frame.
type Kind uint8

// The payload kinds every protocol message reduces to.
const (
	// KindControl carries op requests and parameter broadcasts: the words
	// are opcode parameters (seeds, shapes, indices).
	KindControl Kind = 1 + iota
	// KindFloats, KindInts, KindUint64s, KindScalar are the generic typed
	// payloads of the Send*/Post* API.
	KindFloats
	KindInts
	KindUint64s
	KindScalar
	// KindSketch is a flattened CountSketch counter block (flat, bucketed
	// or dyadic — the op that requested it fixes the sub-shape).
	KindSketch
	// KindRow is a raw-row gather response (one dense local row).
	KindRow
	// KindValue is a single collected coordinate value.
	KindValue
	// KindShare is a whole-share dump (baseline full gather; also the
	// uncharged setup installation of worker shares).
	KindShare
	// KindProjection is the rank-k projection basis broadcast.
	KindProjection
)

func (k Kind) valid() bool { return k >= KindControl && k <= KindProjection }

const (
	frameMagic   = 0xD17A
	frameVersion = 1

	// FlagPrepaid marks frames charged by the sender (SendFloatsAsync);
	// the receiver collects them without charging again.
	FlagPrepaid = 1 << 0

	// FrameHeaderLen is the fixed portion of the header; the full header
	// adds the tag and reply-tag bytes.
	FrameHeaderLen = 28

	// MaxTagLen bounds tag strings on the wire.
	MaxTagLen = 1 << 10

	// MaxFrameWords bounds the payload of a single frame (128 MiB of
	// payload); a decoder never allocates more than the buffer it was
	// handed, and the TCP reader rejects larger length prefixes outright.
	MaxFrameWords = 1 << 24
)

// Frame is one wire message: an accountable transfer of Words between two
// servers under a ledger tag.
type Frame struct {
	Kind   Kind
	Op     uint16 // protocol opcode for KindControl requests
	Flags  uint8
	From   int
	To     int
	Stream uint32
	Tag    string // ledger tag this frame is charged under
	RTag   string // for op requests: the tag the reply must carry
	Words  []uint64
}

// HeaderLen returns the encoded header size of the frame.
func (f *Frame) HeaderLen() int { return FrameHeaderLen + len(f.Tag) + len(f.RTag) }

// EncodedLen returns the total encoded size of the frame.
func (f *Frame) EncodedLen() int { return f.HeaderLen() + 8*len(f.Words) }

// Prepaid reports whether the frame was charged by its sender.
func (f *Frame) Prepaid() bool { return f.Flags&FlagPrepaid != 0 }

// EncodeFrame serializes a frame to its wire form.
func EncodeFrame(f *Frame) []byte {
	if !f.Kind.valid() {
		panic(fmt.Sprintf("comm: encoding frame with invalid kind %d", f.Kind))
	}
	if len(f.Tag) > MaxTagLen || len(f.RTag) > MaxTagLen {
		panic(fmt.Sprintf("comm: tag too long (%d/%d bytes)", len(f.Tag), len(f.RTag)))
	}
	if len(f.Words) > MaxFrameWords {
		panic(fmt.Sprintf("comm: frame payload %d words exceeds cap %d", len(f.Words), MaxFrameWords))
	}
	buf := getBuf(f.EncodedLen())
	binary.BigEndian.PutUint16(buf[0:], frameMagic)
	buf[2] = frameVersion
	buf[3] = byte(f.Kind)
	binary.BigEndian.PutUint16(buf[4:], f.Op)
	buf[6] = f.Flags
	buf[7] = 0
	binary.BigEndian.PutUint32(buf[8:], uint32(f.From))
	binary.BigEndian.PutUint32(buf[12:], uint32(f.To))
	binary.BigEndian.PutUint32(buf[16:], f.Stream)
	binary.BigEndian.PutUint16(buf[20:], uint16(len(f.Tag)))
	binary.BigEndian.PutUint16(buf[22:], uint16(len(f.RTag)))
	binary.BigEndian.PutUint32(buf[24:], uint32(len(f.Words)))
	at := FrameHeaderLen
	at += copy(buf[at:], f.Tag)
	at += copy(buf[at:], f.RTag)
	for _, w := range f.Words {
		binary.BigEndian.PutUint64(buf[at:], w)
		at += 8
	}
	return buf
}

// DecodeFrame parses a wire buffer back into a frame. Malformed, truncated
// and oversized buffers return errors; the decoder never allocates beyond
// the buffer it was handed.
func DecodeFrame(buf []byte) (*Frame, error) {
	if len(buf) < FrameHeaderLen {
		return nil, fmt.Errorf("comm: frame truncated (%d bytes < %d header)", len(buf), FrameHeaderLen)
	}
	if m := binary.BigEndian.Uint16(buf[0:]); m != frameMagic {
		return nil, fmt.Errorf("comm: bad frame magic %#04x", m)
	}
	if v := buf[2]; v != frameVersion {
		return nil, fmt.Errorf("comm: unsupported frame version %d", v)
	}
	kind := Kind(buf[3])
	if !kind.valid() {
		return nil, fmt.Errorf("comm: unknown payload kind %d", kind)
	}
	tagLen := int(binary.BigEndian.Uint16(buf[20:]))
	rtagLen := int(binary.BigEndian.Uint16(buf[22:]))
	words := binary.BigEndian.Uint32(buf[24:])
	if tagLen > MaxTagLen || rtagLen > MaxTagLen {
		return nil, fmt.Errorf("comm: tag length %d/%d exceeds cap", tagLen, rtagLen)
	}
	if words > MaxFrameWords {
		return nil, fmt.Errorf("comm: payload of %d words exceeds cap %d", words, MaxFrameWords)
	}
	want := FrameHeaderLen + tagLen + rtagLen + 8*int(words)
	if len(buf) != want {
		return nil, fmt.Errorf("comm: frame length %d, header declares %d", len(buf), want)
	}
	f := &Frame{
		Kind:   kind,
		Op:     binary.BigEndian.Uint16(buf[4:]),
		Flags:  buf[6],
		From:   int(int32(binary.BigEndian.Uint32(buf[8:]))),
		To:     int(int32(binary.BigEndian.Uint32(buf[12:]))),
		Stream: binary.BigEndian.Uint32(buf[16:]),
	}
	at := FrameHeaderLen
	f.Tag = internTag(buf[at : at+tagLen])
	at += tagLen
	f.RTag = internTag(buf[at : at+rtagLen])
	at += rtagLen
	if words > 0 {
		// Pooled backing: receive paths that fully consume the payload
		// recycle it via putWords; paths that hand it to the caller
		// (RecvUint64s) simply don't, and the slice ages out as garbage.
		f.Words = getWords(int(words))
		for i := range f.Words {
			f.Words[i] = binary.BigEndian.Uint64(buf[at:])
			at += 8
		}
	}
	return f, nil
}

// frameStream peeks the stream id of an encoded frame without a full
// decode (the TCP reader demultiplexes on it).
func frameStream(buf []byte) (uint32, error) {
	if len(buf) < FrameHeaderLen {
		return 0, fmt.Errorf("comm: frame truncated (%d bytes)", len(buf))
	}
	return binary.BigEndian.Uint32(buf[16:]), nil
}

// FloatWords converts a float64 payload to wire words (bit patterns).
func FloatWords(xs []float64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = math.Float64bits(x)
	}
	return out
}

// WordFloats is the inverse of FloatWords.
func WordFloats(ws []uint64) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = math.Float64frombits(w)
	}
	return out
}

// IntWords converts an int payload to wire words (two's complement).
func IntWords(xs []int) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(int64(x))
	}
	return out
}

// WordInts is the inverse of IntWords.
func WordInts(ws []uint64) []int {
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = int(int64(w))
	}
	return out
}
