package comm

// Per-kind codec micro-benchmarks: encode and decode cost of one
// representative frame of every payload kind plus the batch envelope,
// with allocs/op from -benchmem. These are the numbers the zero-copy
// encode/decode work is judged by — the pooled paths should hold
// allocs/op near zero at any payload size. Wired into `make bench-json`.

import (
	"fmt"
	"testing"
)

// benchFrames returns one representative frame per payload kind, sized
// like the protocol's real traffic (sketch blocks dominate).
func benchFrames() []*Frame {
	return []*Frame{
		{Kind: KindControl, Op: 7, From: CP, To: 2, Stream: 3, Tag: "hh/seed", RTag: "hh/bucket-sketch", Words: []uint64{5, 4, 128, 61}},
		{Kind: KindFloats, From: 1, To: CP, Tag: "up", Words: FloatWords(make([]float64, 64))},
		{Kind: KindInts, From: 2, To: CP, Tag: "idx", Words: IntWords(make([]int, 16))},
		{Kind: KindUint64s, From: 1, To: CP, Tag: "coords", Words: make([]uint64, 16)},
		{Kind: KindScalar, From: 3, To: CP, Tag: "v", Words: FloatWords([]float64{3.14})},
		{Kind: KindSketch, From: 2, To: CP, Stream: 9, Tag: "zest/levels/bucket-sketch", Words: FloatWords(make([]float64, 5*128))},
		{Kind: KindRow, From: 1, To: CP, Tag: "sampler/rows", Words: FloatWords(make([]float64, 12))},
		{Kind: KindValue, From: 4, To: CP, Tag: "zest/values", Words: FloatWords(make([]float64, 1))},
		{Kind: KindShare, From: 1, To: CP, Tag: "baseline/full-gather", Words: FloatWords(make([]float64, 96*12))},
		{Kind: KindProjection, From: CP, To: 2, Tag: "core/projection", Words: FloatWords(make([]float64, 12*4))},
	}
}

// kindName labels the per-kind sub-benchmarks.
func kindName(k Kind) string {
	switch k {
	case KindControl:
		return "control"
	case KindFloats:
		return "floats"
	case KindInts:
		return "ints"
	case KindUint64s:
		return "uint64s"
	case KindScalar:
		return "scalar"
	case KindSketch:
		return "sketch"
	case KindRow:
		return "row"
	case KindValue:
		return "value"
	case KindShare:
		return "share"
	case KindProjection:
		return "projection"
	case KindBatch:
		return "batch"
	}
	return fmt.Sprintf("kind%d", k)
}

// BenchmarkFrameEncodeDecode measures encode and decode ns/op and
// allocs/op per frame kind — the codec half of the transport cost.
func BenchmarkFrameEncodeDecode(b *testing.B) {
	for _, f := range benchFrames() {
		f := f
		b.Run(kindName(f.Kind)+"/encode", func(b *testing.B) {
			b.SetBytes(int64(f.EncodedLen()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ReleaseFrame(EncodeFrame(f))
			}
		})
		enc := EncodeFrame(f)
		b.Run(kindName(f.Kind)+"/decode", func(b *testing.B) {
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dec, err := DecodeFrame(enc)
				if err != nil {
					b.Fatal(err)
				}
				putWords(dec.Words)
			}
		})
		ReleaseFrame(enc)
	}

	// The zero-copy reply path: float payload encoded straight into the
	// wire buffer, decoded through the aliasing view.
	vals := make([]float64, 5*128)
	replyProto := &Frame{Kind: KindSketch, From: 2, To: CP, Tag: "zest/levels/bucket-sketch"}
	b.Run("sketch/encode-floats", func(b *testing.B) {
		b.SetBytes(int64(replyProto.HeaderLen() + 8*len(vals)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ReleaseFrame(EncodeFrameFloats(replyProto, vals))
		}
	})
	viewEnc := EncodeFrameFloats(replyProto, vals)
	b.Run("sketch/decode-view", func(b *testing.B) {
		b.SetBytes(int64(len(viewEnc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v, err := parseFrame(viewEnc)
			if err != nil {
				b.Fatal(err)
			}
			putFloats(v.floats())
		}
	})
	ReleaseFrame(viewEnc)

	// The batch envelope: eight value-sized sub-frames, the shape the
	// pipelined zsampler rounds put on the wire.
	subs := make([][]byte, 8)
	for i := range subs {
		subs[i] = EncodeFrame(&Frame{Kind: KindValue, From: CP, To: 1, Tag: "zest/values", Words: FloatWords([]float64{float64(i)})})
	}
	env := &Frame{Kind: KindBatch, From: CP, To: 1, Sub: subs}
	b.Run("batch8/encode", func(b *testing.B) {
		b.SetBytes(int64(env.EncodedLen()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ReleaseFrame(EncodeFrame(env))
		}
	})
	envEnc := EncodeFrame(env)
	b.Run("batch8/decode", func(b *testing.B) {
		b.SetBytes(int64(len(envEnc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeFrame(envEnc); err != nil {
				b.Fatal(err)
			}
		}
	})
	ReleaseFrame(envEnc)
	for _, s := range subs {
		ReleaseFrame(s)
	}
}
