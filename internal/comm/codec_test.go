package comm

import (
	"reflect"
	"testing"

	"repro/internal/matrix"
	"repro/internal/ops"
)

func TestFrameRoundTripPerKind(t *testing.T) {
	cases := []Frame{
		{Kind: KindControl, Op: 7, From: CP, To: 3, Stream: 2, Tag: "hh/seed", RTag: "hh/sketch", Words: []uint64{1, 2, 3}},
		{Kind: KindFloats, From: 1, To: CP, Tag: "up", Words: FloatWords([]float64{1.5, -2.25, 0})},
		{Kind: KindInts, From: 2, To: CP, Tag: "idx", Words: IntWords([]int{-4, 9})},
		{Kind: KindUint64s, From: 1, To: CP, Tag: "coords", Words: []uint64{42}},
		{Kind: KindScalar, From: 3, To: CP, Tag: "v", Words: FloatWords([]float64{3.14})},
		{Kind: KindSketch, From: 2, To: CP, Stream: 9, Tag: "zest/levels/bucket-sketch", Words: FloatWords(make([]float64, 64))},
		{Kind: KindRow, From: 1, To: CP, Tag: "sampler/rows", Words: FloatWords([]float64{0.5, 0.25})},
		{Kind: KindValue, From: 4, To: CP, Tag: "zest/values", Words: FloatWords([]float64{-7})},
		{Kind: KindShare, From: 1, To: CP, Tag: "baseline/full-gather", Words: FloatWords(make([]float64, 12))},
		{Kind: KindProjection, From: CP, To: 2, Tag: "core/projection", Words: FloatWords(make([]float64, 6))},
		{Kind: KindFloats, Flags: FlagPrepaid, From: CP, To: 1, Tag: "down", Words: FloatWords([]float64{1})},
		{Kind: KindControl, From: CP, To: 1, Tag: "empty"}, // zero-word control frame
	}
	for _, c := range cases {
		c := c
		enc := EncodeFrame(&c)
		if len(enc) != c.EncodedLen() {
			t.Fatalf("%q: encoded %d bytes, EncodedLen says %d", c.Tag, len(enc), c.EncodedLen())
		}
		if want := c.HeaderLen() + 8*len(c.Words); len(enc) != want {
			t.Fatalf("%q: encoded %d bytes, want header %d + 8·%d words", c.Tag, len(enc), c.HeaderLen(), len(c.Words))
		}
		dec, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("%q: decode: %v", c.Tag, err)
		}
		if dec.Words == nil {
			dec.Words = c.Words[:0] // normalize empty payload for DeepEqual
		}
		if !reflect.DeepEqual(*dec, c) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *dec, c)
		}
	}
}

func TestFloatWordConversions(t *testing.T) {
	xs := []float64{0, 1, -1.5, 3.25e300, -0.0}
	if got := WordFloats(FloatWords(xs)); !reflect.DeepEqual(got, xs) {
		t.Fatalf("float round trip: %v", got)
	}
	is := []int{0, -1, 1 << 40, -(1 << 40)}
	if got := WordInts(IntWords(is)); !reflect.DeepEqual(got, is) {
		t.Fatalf("int round trip: %v", got)
	}
}

func TestDecodeFrameRejectsMalformed(t *testing.T) {
	good := EncodeFrame(&Frame{Kind: KindFloats, From: 1, To: 0, Tag: "x", Words: FloatWords([]float64{1, 2})})
	cases := map[string]func() []byte{
		"truncated header": func() []byte { return good[:FrameHeaderLen-1] },
		"truncated body":   func() []byte { return good[:len(good)-3] },
		"trailing junk":    func() []byte { return append(append([]byte{}, good...), 0xFF) },
		"bad magic": func() []byte {
			b := append([]byte{}, good...)
			b[0] = 0x00
			return b
		},
		"bad version": func() []byte {
			b := append([]byte{}, good...)
			b[2] = 99
			return b
		},
		"bad kind": func() []byte {
			b := append([]byte{}, good...)
			b[3] = 0xEE
			return b
		},
		"oversized word count": func() []byte {
			b := append([]byte{}, good...)
			b[24], b[25], b[26], b[27] = 0xFF, 0xFF, 0xFF, 0xFF
			return b
		},
		"empty": func() []byte { return nil },
	}
	for name, build := range cases {
		if _, err := DecodeFrame(build()); err == nil {
			t.Fatalf("%s: decoder accepted malformed frame", name)
		}
	}
}

// FuzzDecodeFrame is the codec's malformed-input gate: arbitrary buffers
// must either decode to a frame that re-encodes consistently or return an
// error — never panic, and never allocate beyond the input's declared
// size.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(&Frame{Kind: KindControl, Op: 3, From: CP, To: 1, Tag: "hh/seed", RTag: "hh/sketch", Words: []uint64{5, 4, 128}}))
	f.Add(EncodeFrame(&Frame{Kind: KindFloats, From: 2, To: CP, Stream: 7, Tag: "up", Words: FloatWords([]float64{1, 2, 3})}))
	f.Add(EncodeFrame(&Frame{Kind: KindShare, From: 1, To: CP, Tag: "setup/share", Words: FloatWords(make([]float64, 32))}))
	long := EncodeFrame(&Frame{Kind: KindSketch, From: 3, To: CP, Tag: "zest/heavy/bucket-sketch", Words: FloatWords(make([]float64, 257))})
	f.Add(long)
	f.Add(long[:17])
	// Batch envelopes: a well-formed two-frame envelope, its truncations
	// (inside a sub-frame's length prefix and inside a sub-frame body), and
	// a zero-count envelope — the decoder must reject all malformed shapes
	// without panicking, like any other kind.
	env := EncodeFrame(&Frame{Kind: KindBatch, From: CP, To: 2, Stream: 5, Sub: [][]byte{
		EncodeFrame(&Frame{Kind: KindControl, Op: 3, From: CP, To: 2, Stream: 5, Tag: "hh/seed", RTag: "hh/sketch", Words: []uint64{5, 4, 128}}),
		EncodeFrame(&Frame{Kind: KindValue, From: CP, To: 2, Stream: 5, Tag: "zest/values", Words: FloatWords([]float64{9})}),
	}})
	f.Add(env)
	f.Add(env[:FrameHeaderLen+2])
	f.Add(env[:len(env)-5])
	// Delta-install frames: well-formed append and update payloads, a
	// truncated append (cut inside the value words), and an update whose
	// header declares an absurd row count. The codec treats the payload as
	// opaque words — these seeds steer the fuzzer through the shapes the
	// delta parsers downstream must reject with typed errors.
	delta := matrix.NewDenseData(2, 3, []float64{1, 0, -2.5, 0, 4, 5})
	app := EncodeFrame(&Frame{Kind: KindShare, Op: ops.OpAppendRows, From: CP, To: 1,
		Tag: "delta/append", Words: ops.AppendRowsPayload(7, 8, 3, delta)})
	f.Add(app)
	f.Add(app[:len(app)-9])
	upd := EncodeFrame(&Frame{Kind: KindShare, Op: ops.OpUpdateRows, From: CP, To: 2,
		Tag: "delta/update", Words: ops.UpdateRowsPayload(7, 10, 3, []int{4, 0}, delta)})
	f.Add(upd)
	f.Add(EncodeFrame(&Frame{Kind: KindShare, Op: ops.OpUpdateRows, From: CP, To: 2,
		Tag: "delta/update", Words: []uint64{7, 1 << 40, 3, 2}}))
	// Heartbeat frames ride the reserved control stream between protocol
	// rounds, so the decoder sees them interleaved with every other kind:
	// a probe, its echoed pong, and a probe truncated inside the payload.
	ping := EncodeFrame(&Frame{Kind: KindControl, Op: ops.OpPing, From: CP, To: 2,
		Stream: ControlStream, Tag: "ctl/heartbeat", Words: ops.HeartbeatParams(9, 1<<60)})
	f.Add(ping)
	f.Add(EncodeFrame(&Frame{Kind: KindControl, Op: ops.OpPong, From: 2, To: CP,
		Stream: ControlStream, Tag: "ctl/heartbeat", Words: ops.HeartbeatParams(9, 1<<60)}))
	f.Add(ping[:len(ping)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeFrame(data)
		if err != nil {
			return
		}
		re := EncodeFrame(frame)
		if len(re) != len(data) {
			t.Fatalf("re-encode changed length: %d → %d", len(data), len(re))
		}
		back, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if back.Tag != frame.Tag || len(back.Words) != len(frame.Words) || back.Kind != frame.Kind {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}
