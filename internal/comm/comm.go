// Package comm simulates the paper's distributed star topology: s servers,
// server 0 acting as the Central Processor (CP), with every protocol
// message routed through an accounting layer that charges communication in
// words (one word = one 64-bit value, matching the paper's cost model).
//
// The fabric is layered:
//
//   - codec.go is the wire format: every payload that crosses the fabric is
//     encoded into a typed binary Frame and decoded on arrival, so the word
//     ledger describes real byte streams instead of Go values.
//   - transport.go / tcp.go move encoded frames: MemTransport over
//     in-process channel links, TCPTransport over real connections to
//     worker processes.
//   - this file is the ledger: words charged per tag and per link (the
//     paper-facing numbers), and, alongside, the encoded bytes each tag put
//     on the wire — so tests can assert bytes == 8·words + header overhead
//     for every protocol phase instead of trusting the word model.
//
// The fabric is synchronous and deterministic: protocol code moves data
// between servers by calling the Send/Broadcast/RunRound helpers, which
// tally the cost per tag so experiments can report exactly how much
// communication each protocol phase consumed. Data that never crosses the
// fabric is, by construction, local computation — which the model allows
// in polynomial time and linear space.
package comm

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// CP is the index of the Central Processor (the paper's "server 1").
const CP = 0

// Network is the accounting fabric connecting s servers. Accounting is
// always serialized under the mutex; payload movement flows as encoded
// frames over the Transport.
type Network struct {
	mu       sync.Mutex
	servers  int
	words    int64
	msgs     int64
	bytes    int64
	hdrBytes int64
	byTag    map[string]int64
	byTagB   map[string]int64 // encoded bytes per tag
	byTagH   map[string]int64 // header bytes per tag
	byTagM   map[string]int64 // messages per tag
	byLink   map[[2]int]int64
	byLinkB  map[[2]int]int64
	trace    bool
	log      []Message

	tr     Transport
	remote []bool // remote[t]: server t is hosted by a worker process

	// batch is the op-batching knob for pipelined round sequences
	// (RunRounds): 0 coalesces without bound (the default), 1 disables
	// coalescing, k flushes every k same-destination request frames.
	// Purely a transport-framing choice — transcripts are identical at
	// every value.
	batch int

	// onRound, when set, observes every completed protocol round (see
	// OnRound); roundSeq is the round counter it reports, shared with every
	// fork of this ledger so a session's rounds number monotonically no
	// matter which forked phase completed them.
	onRound  RoundFunc
	roundSeq *int64
	// session is the tenancy namespace this ledger belongs to: its id is
	// folded into the top 16 bits of every stream id the ledger stamps on
	// frames, so concurrent sessions interleave on shared links without
	// consuming each other's frames. The root fabric is session 0.
	session uint16
	// stream is this ledger's id on the shared transport (session<<16 for
	// a session's root ledger; forks allocate fresh ids from streamSeq
	// within the session's namespace).
	stream    uint32
	streamSeq *uint32

	// Session-id allocation state, meaningful on the root fabric only.
	sessMu   sync.Mutex
	sessNext uint16
	sessFree []uint16

	// abort, non-nil while RunServers is active, is closed when a server
	// role panics so peers blocked on a link receive fail fast.
	abort chan struct{}

	// failed poisons the fabric after a round aborted mid-drain: replies
	// already sent by workers may still sit in the transport queues, so
	// further rounds would consume stale frames. Reset clears it along
	// with the queues.
	failed error

	// Control side ledger: fabric-management traffic (heartbeat probes and
	// their pongs) charged under control tags such as "ctl/heartbeat".
	// Deliberately outside Words()/Bytes()/Breakdown(): membership probes
	// are asynchronous to the protocol, so charging them in the word ledger
	// would make transcripts timing-dependent and break the protocol-word
	// gates. Root-fabric state, shared by reference with sessions/forks.
	ctl *controlLedger
}

// controlLedger tallies control-plane traffic per tag, outside the
// protocol word ledger.
type controlLedger struct {
	mu    sync.Mutex
	words map[string]int64
	bytes map[string]int64
	msgs  map[string]int64
}

// Message records one transfer for transcript-based tests: the route, the
// ledger tag, the charged words and the encoded frame bytes (0 for legacy
// word-only charges).
type Message struct {
	From, To int
	Tag      string
	Words    int64
	Bytes    int64
}

// NewNetwork creates a fabric for s ≥ 1 in-process servers connected by
// the in-memory transport.
func NewNetwork(s int) *Network {
	return NewNetworkWith(s, NewMemTransport(), nil)
}

// NewNetworkWith creates a fabric over an explicit transport. remote[t]
// marks servers hosted by worker processes (nil means all are local); the
// CP is always local.
func NewNetworkWith(s int, tr Transport, remote []bool) *Network {
	if s < 1 {
		panic("comm: need at least one server")
	}
	if remote == nil {
		remote = make([]bool, s)
	}
	if len(remote) != s || remote[CP] {
		panic("comm: invalid remote-server mask")
	}
	n := &Network{
		servers:   s,
		tr:        tr,
		remote:    remote,
		streamSeq: new(uint32),
		roundSeq:  new(int64),
		ctl: &controlLedger{
			words: make(map[string]int64),
			bytes: make(map[string]int64),
			msgs:  make(map[string]int64),
		},
	}
	n.resetTallies()
	return n
}

// ChargeControl records control-plane traffic (a heartbeat ping or pong)
// in the control side ledger. Nothing here touches Words(), Bytes(), the
// per-tag breakdowns or the transcript — control traffic is invisible to
// every protocol-word gate by construction.
func (n *Network) ChargeControl(tag string, words, frameBytes int64) {
	n.ctl.mu.Lock()
	n.ctl.words[tag] += words
	n.ctl.bytes[tag] += frameBytes
	n.ctl.msgs[tag]++
	n.ctl.mu.Unlock()
}

// ControlBreakdown returns the control side ledger: words, encoded bytes
// and message counts per control tag, as copied maps.
func (n *Network) ControlBreakdown() (words, bytes, msgs map[string]int64) {
	n.ctl.mu.Lock()
	defer n.ctl.mu.Unlock()
	return copyMap(n.ctl.words), copyMap(n.ctl.bytes), copyMap(n.ctl.msgs)
}

// RoundFunc observes completed protocol rounds: seq is the 1-based round
// number within this ledger's lifetime, tag the round's request ledger
// tag. Observers may be called concurrently when forked protocol phases
// run in parallel, and must not call back into the fabric.
type RoundFunc func(seq int64, tag string)

// OnRound installs a round observer on this ledger (and, through Fork, on
// every sub-ledger forked from it afterwards). Progress reporting only —
// the observer has no effect on accounting or transcripts.
func (n *Network) OnRound(fn RoundFunc) {
	if n.roundSeq == nil {
		n.roundSeq = new(int64)
	}
	n.onRound = fn
}

// noteRound bumps the shared round counter and feeds the observer.
func (n *Network) noteRound(tag string) {
	if n.onRound == nil {
		return
	}
	n.onRound(atomic.AddInt64(n.roundSeq, 1), tag)
}

// Servers returns the number of servers (including the CP).
func (n *Network) Servers() int { return n.servers }

// Remote reports whether server t is hosted by a worker process.
func (n *Network) Remote(t int) bool { n.check(t); return n.remote[t] }

// HasRemote reports whether any server is hosted remotely.
func (n *Network) HasRemote() bool {
	for _, r := range n.remote {
		if r {
			return true
		}
	}
	return false
}

// Transport exposes the fabric's frame mover (cluster setup needs it).
func (n *Network) Transport() Transport { return n.tr }

// SetBatchSize sets the op-batching knob for pipelined round sequences:
// 0 coalesces queued same-destination request frames without bound (the
// default), 1 disables coalescing (every frame is its own wire write),
// k ≥ 2 flushes every k frames. The knob changes transport framing only;
// words, bytes, tags and per-link order are bit-identical at every value.
// Sessions and forks minted after the call inherit the setting.
func (n *Network) SetBatchSize(k int) {
	if k < 0 {
		k = 0
	}
	n.mu.Lock()
	n.batch = k
	n.mu.Unlock()
}

// BatchSize returns the current op-batching knob (see SetBatchSize).
func (n *Network) BatchSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.batch
}

// batchStatser is implemented by transports that track batch envelopes.
type batchStatser interface {
	BatchStats() (sent, received, overheadBytes int64)
}

// BatchOverhead reports the batch envelopes the underlying transport
// moved and their framing overhead in bytes. This is a side ledger,
// deliberately outside Words/Bytes and the per-tag tallies: envelope
// framing varies with the batch size while the transcript may not, so it
// is never charged under a tag. Transports without batch framing (the
// in-memory transport) report zeros.
func (n *Network) BatchOverhead() (sent, received, overheadBytes int64) {
	if bs, ok := n.tr.(batchStatser); ok {
		return bs.BatchStats()
	}
	return 0, 0, 0
}

// EnableTrace turns on per-message transcript recording (tests only; it
// grows without bound between Resets).
func (n *Network) EnableTrace() { n.trace = true }

// Transcript returns a copy of the recorded messages.
func (n *Network) Transcript() []Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Message, len(n.log))
	copy(out, n.log)
	return out
}

func (n *Network) check(id int) {
	if id < 0 || id >= n.servers {
		panic(fmt.Sprintf("comm: server %d out of range [0,%d)", id, n.servers))
	}
}

// commit records one transfer: words on the ledger and, when the transfer
// moved an encoded frame, its byte footprint. It is the primitive every
// charged operation reduces to.
func (n *Network) commit(from, to int, tag string, words, frameBytes int64) {
	n.check(from)
	n.check(to)
	if words < 0 {
		panic("comm: negative charge")
	}
	if from == to {
		return // local movement is free
	}
	var hdr int64
	if frameBytes > 0 {
		hdr = frameBytes - 8*words
		if hdr < 0 {
			panic(fmt.Sprintf("comm: frame of %d bytes cannot carry %d words", frameBytes, words))
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.words += words
	n.msgs++
	n.bytes += frameBytes
	n.hdrBytes += hdr
	n.byTag[tag] += words
	n.byTagB[tag] += frameBytes
	n.byTagH[tag] += hdr
	n.byTagM[tag]++
	n.byLink[[2]int{from, to}] += words
	n.byLinkB[[2]int{from, to}] += frameBytes
	if n.trace {
		n.log = append(n.log, Message{From: from, To: to, Tag: tag, Words: words, Bytes: frameBytes})
	}
}

// Charge records a word-only transfer under a cost tag. It survives as the
// accounting primitive for tests and word-model estimates; protocol
// payloads must move as frames instead (Send*/Post*/RunRound), which is
// what keeps the bytes-vs-words cross-check meaningful.
func (n *Network) Charge(from, to int, tag string, words int64) {
	n.commit(from, to, tag, words, 0)
}

// checkHosted refuses legacy payload paths that pretend to move data to
// or from a worker-hosted server: a loopback "delivery" there would charge
// words and bytes for traffic that never crossed the wire — exactly the
// fake accounting the codec layer exists to rule out. Remote servers are
// reachable only through RunRound and the broadcast helpers.
func (n *Network) checkHosted(from, to int, what string) {
	if n.remote[from] || n.remote[to] {
		panic(fmt.Sprintf("comm: %s on link %d→%d would bypass the wire to a worker-hosted server (use RunRound)", what, from, to))
	}
}

// loopback pushes a frame through the codec (encode, account, decode) and
// returns the decoded frame — the synchronous transfer path: the receiver
// gets exactly what a wire delivery would have produced.
func (n *Network) loopback(f *Frame) *Frame {
	n.checkHosted(f.From, f.To, "synchronous send")
	enc := EncodeFrame(f)
	dec, err := DecodeFrame(enc)
	if err != nil {
		panic(fmt.Sprintf("comm: frame failed to round-trip: %v", err))
	}
	n.commit(f.From, f.To, f.Tag, int64(len(f.Words)), int64(len(enc)))
	// DecodeFrame copied everything out; the wire image is scratch now.
	putBuf(enc)
	return dec
}

// SendFloats transfers a float64 slice, charging one word per element. The
// payload is encoded to its wire form and decoded back, so the receiver
// cannot alias the sender's memory and the byte ledger sees the frame.
func (n *Network) SendFloats(from, to int, tag string, data []float64) []float64 {
	n.check(from)
	n.check(to)
	if from == to {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	ws := floatWords(data)
	dec := n.loopback(&Frame{Kind: KindFloats, From: from, To: to, Stream: n.stream, Tag: tag, Words: ws})
	putWords(ws)
	out := WordFloats(dec.Words)
	putWords(dec.Words)
	return out
}

// SendInts transfers an int slice, charging one word per element.
func (n *Network) SendInts(from, to int, tag string, data []int) []int {
	n.check(from)
	n.check(to)
	if from == to {
		out := make([]int, len(data))
		copy(out, data)
		return out
	}
	dec := n.loopback(&Frame{Kind: KindInts, From: from, To: to, Stream: n.stream, Tag: tag, Words: IntWords(data)})
	return WordInts(dec.Words)
}

// SendUint64s transfers a uint64 slice, charging one word per element.
func (n *Network) SendUint64s(from, to int, tag string, data []uint64) []uint64 {
	n.check(from)
	n.check(to)
	if from == to {
		out := make([]uint64, len(data))
		copy(out, data)
		return out
	}
	// No defensive copy needed: EncodeFrame serializes into a fresh
	// buffer and the receiver sees DecodeFrame's own allocation.
	dec := n.loopback(&Frame{Kind: KindUint64s, From: from, To: to, Stream: n.stream, Tag: tag, Words: data})
	return dec.Words
}

// SendScalar transfers a single float64 value (one word).
func (n *Network) SendScalar(from, to int, tag string, v float64) float64 {
	n.check(from)
	n.check(to)
	if from == to {
		return v
	}
	ws := getWords(1)
	ws[0] = math.Float64bits(v)
	dec := n.loopback(&Frame{Kind: KindScalar, From: from, To: to, Stream: n.stream, Tag: tag, Words: ws})
	putWords(ws)
	out := math.Float64frombits(dec.Words[0])
	putWords(dec.Words)
	return out
}

// broadcastFrame accounts one frame per destination and genuinely
// encodes and transmits it to remotely hosted destinations. Local
// destinations consume nothing — the shared knowledge is already in
// process — so their wire image is never built; only its EncodedLen is
// charged (bit-identical to encoding it).
//
// A failed transmit (the worker's link died) poisons the fabric instead
// of panicking: the ledger entry stands (accounting is sender-order
// deterministic), remaining destinations still receive their frames, and
// the next round fails fast with the wrapped ErrWorkerLost so the engine
// can retry the job after the slot is re-placed.
func (n *Network) broadcastFrame(from int, f func(to int) *Frame) {
	for t := 0; t < n.servers; t++ {
		if t == from {
			continue
		}
		fr := f(t)
		n.commit(from, t, fr.Tag, int64(len(fr.Words)), int64(fr.EncodedLen()))
		if n.remote[t] {
			if err := n.tr.Send(from, t, EncodeFrame(fr)); err != nil {
				n.poison(fmt.Errorf("comm: broadcast to server %d: %w", t, err))
			}
		}
	}
}

// poison marks the fabric failed (first error wins); subsequent rounds
// fail fast instead of consuming stale or missing frames.
func (n *Network) poison(err error) {
	n.mu.Lock()
	if n.failed == nil {
		n.failed = err
	}
	n.mu.Unlock()
}

// Failed returns the fabric's poison, if a round aborted or a broadcast
// could not reach a worker (nil on a healthy fabric).
func (n *Network) Failed() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failed
}

// ShipCharged accounts one already-built frame in the word/byte ledger
// and genuinely transmits it when the destination is remotely hosted —
// the single-destination form of broadcastFrame, used by the delta-install
// path so append/update traffic is charged identically on mem and TCP
// clusters. Self-sends are free, like every hosted transfer of shared
// state the CP already holds.
func (n *Network) ShipCharged(f *Frame) error {
	n.check(f.From)
	n.check(f.To)
	if f.From == f.To {
		return nil
	}
	n.commit(f.From, f.To, f.Tag, int64(len(f.Words)), int64(f.EncodedLen()))
	if n.remote[f.To] {
		return n.tr.Send(f.From, f.To, EncodeFrame(f))
	}
	return nil
}

// BroadcastSeed models server `from` broadcasting a random seed to every
// other server: s−1 control frames of one word each.
func (n *Network) BroadcastSeed(from int, tag string, seed int64) int64 {
	n.check(from)
	n.broadcastFrame(from, func(to int) *Frame {
		return &Frame{Kind: KindControl, From: from, To: to, Stream: n.stream, Tag: tag, Words: []uint64{uint64(seed)}}
	})
	return seed
}

// BroadcastPayload ships a float64 payload from `from` to every other
// server (the projection matrix going back out, parameter vectors, …),
// charging one word per element per destination.
func (n *Network) BroadcastPayload(from int, tag string, kind Kind, data []float64) {
	n.check(from)
	words := FloatWords(data)
	n.broadcastFrame(from, func(to int) *Frame {
		return &Frame{Kind: kind, From: from, To: to, Stream: n.stream, Tag: tag, Words: words}
	})
}

// BroadcastWords charges for broadcasting `words` words from `from` to all
// other servers. Legacy word-only accounting: no frame moves, so the byte
// ledger ignores it — protocol code ships real payloads with
// BroadcastPayload instead.
func (n *Network) BroadcastWords(from int, tag string, words int64) {
	for t := 0; t < n.servers; t++ {
		if t != from {
			n.Charge(from, t, tag, words)
		}
	}
}

// GatherScalars models each server sending one float64 to the CP; it
// charges s−1 one-word frames and returns the provided values (the CP's
// own value travels for free).
func (n *Network) GatherScalars(tag string, values []float64) []float64 {
	if len(values) != n.servers {
		panic("comm: GatherScalars needs one value per server")
	}
	out := make([]float64, len(values))
	out[CP] = values[CP]
	for t := 1; t < n.servers; t++ {
		out[t] = n.SendScalar(t, CP, tag, values[t])
	}
	return out
}

// Relay models point-to-point traffic in the star topology exactly as the
// paper describes: server i sends to server j by routing through the CP
// with the destination identity attached, costing two messages and one
// extra address word ("a multiplicative factor of 2 in the number of
// messages and an additive factor of log₂ s per message" — one word covers
// the address at any practical s).
func (n *Network) Relay(from, to int, tag string, data []float64) []float64 {
	if from == CP || to == CP {
		return n.SendFloats(from, to, tag, data)
	}
	// Payload plus destination id to the CP, then the payload onward.
	hop := append([]float64{float64(to)}, data...)
	fwd := n.SendFloats(from, CP, tag, hop)
	return n.SendFloats(CP, to, tag, fwd[1:])
}

// Words returns the total number of words transferred so far.
func (n *Network) Words() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.words
}

// Bits returns total communication in bits (64 per word).
func (n *Network) Bits() int64 { return 64 * n.Words() }

// Bytes returns the total encoded frame bytes put on the wire (headers
// included; word-only legacy charges contribute nothing).
func (n *Network) Bytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.bytes
}

// HeaderBytes returns the header share of Bytes — the wire overhead the
// word model does not count.
func (n *Network) HeaderBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hdrBytes
}

// Messages returns the number of point-to-point transfers.
func (n *Network) Messages() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgs
}

func copyMap[K comparable](m map[K]int64) map[K]int64 {
	out := make(map[K]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Breakdown returns words charged per tag, as a copied map.
func (n *Network) Breakdown() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return copyMap(n.byTag)
}

// ByteBreakdown returns encoded frame bytes per tag.
func (n *Network) ByteBreakdown() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return copyMap(n.byTagB)
}

// HeaderBreakdown returns header bytes per tag.
func (n *Network) HeaderBreakdown() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return copyMap(n.byTagH)
}

// MessageBreakdown returns message counts per tag.
func (n *Network) MessageBreakdown() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return copyMap(n.byTagM)
}

// LinkBreakdown returns words charged per directed (from, to) link, as a
// copied map.
func (n *Network) LinkBreakdown() map[[2]int]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return copyMap(n.byLink)
}

// LinkByteBreakdown returns encoded bytes per directed link.
func (n *Network) LinkByteBreakdown() map[[2]int]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return copyMap(n.byLinkB)
}

// BreakdownString renders the per-tag costs sorted by descending words.
func (n *Network) BreakdownString() string {
	b := n.Breakdown()
	type kv struct {
		tag   string
		words int64
	}
	items := make([]kv, 0, len(b))
	for k, v := range b {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].words != items[j].words {
			return items[i].words > items[j].words
		}
		return items[i].tag < items[j].tag
	})
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%-28s %12d words\n", it.tag, it.words)
	}
	return s
}

func (n *Network) resetTallies() {
	n.words, n.msgs, n.bytes, n.hdrBytes = 0, 0, 0, 0
	n.byTag = make(map[string]int64)
	n.byTagB = make(map[string]int64)
	n.byTagH = make(map[string]int64)
	n.byTagM = make(map[string]int64)
	n.byLink = make(map[[2]int]int64)
	n.byLinkB = make(map[[2]int]int64)
	n.log = nil
}

// ResetLedger zeroes the counters, per-tag/per-link tallies, trace log
// and failure poison without touching the transport — safe while other
// tenants (or this fabric's own in-flight rounds) still have frames
// queued.
func (n *Network) ResetLedger() {
	n.mu.Lock()
	n.resetTallies()
	n.failed = nil
	n.mu.Unlock()
}

// Reset zeroes every counter and per-tag/per-link tally, drops the trace
// log, clears a failed-round poison marker, and drains queued frames — so
// a traced fabric reused across sweep cells starts each cell with bounded
// memory and a clean wire. On the root fabric the whole transport is
// drained (single-occupancy semantics; never call this with live
// sessions); on a session only the session's own streams are discarded,
// so concurrent tenants are untouched.
func (n *Network) Reset() {
	n.ResetLedger()
	if n.session != 0 {
		if d, ok := n.tr.(sessionDiscarder); ok {
			d.discardSession(n.session)
		}
		return
	}
	// A root reset implies single occupancy (the transport drain below
	// would destroy live tenants' frames anyway), so the fork-stream
	// counter can recycle too — a fabric reused across unbounded sweep
	// cells never exhausts its 16-bit fork namespace.
	atomic.StoreUint32(n.streamSeq, 0)
	type resettable interface{ reset() }
	if r, ok := n.tr.(resettable); ok {
		r.reset()
	}
}

// Snapshot captures the current total so callers can measure a phase:
// delta := net.Since(snap).
func (n *Network) Snapshot() int64 { return n.Words() }

// Since returns the words transferred since the given snapshot.
func (n *Network) Since(snap int64) int64 { return n.Words() - snap }

// nextStream allocates a fresh ledger id on the shared transport, inside
// this ledger's session namespace: the session id occupies the top 16
// bits, the per-session sequence the bottom 16.
func (n *Network) nextStream() uint32 {
	seq := atomic.AddUint32(n.streamSeq, 1)
	if seq > 0xFFFF {
		panic(fmt.Sprintf("comm: session %d exhausted its 65535 fork streams", n.session))
	}
	return uint32(n.session)<<16 | seq
}

// SessionOf extracts the session namespace from a frame stream id.
func SessionOf(stream uint32) uint16 { return uint16(stream >> 16) }
