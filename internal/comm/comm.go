// Package comm simulates the paper's distributed star topology: s servers,
// server 0 acting as the Central Processor (CP), with every protocol
// message routed through an accounting layer that charges communication in
// words (one word = one 64-bit value, matching the paper's cost model).
//
// The fabric is synchronous and deterministic: protocol code moves data
// between servers by calling the Send/Broadcast helpers, which tally the
// cost per tag so experiments can report exactly how much communication
// each protocol phase consumed. Data that never crosses a Send call is, by
// construction, local computation — which the model allows in polynomial
// time and linear space.
package comm

import (
	"fmt"
	"sort"
	"sync"
)

// CP is the index of the Central Processor (the paper's "server 1").
const CP = 0

// Network is the accounting fabric connecting s servers. Accounting is
// always serialized under the mutex; payload movement may additionally
// flow concurrently over typed channel links (see runtime.go).
type Network struct {
	mu      sync.Mutex
	servers int
	words   int64
	msgs    int64
	byTag   map[string]int64
	byLink  map[[2]int]int64
	trace   bool
	log     []Message
	links   map[[2]int]chan parcel
	// abort, non-nil while RunServers is active, is closed when a server
	// role panics so peers blocked on a link receive fail fast.
	abort chan struct{}
}

// Message records one transfer for transcript-based tests.
type Message struct {
	From, To int
	Tag      string
	Words    int64
}

// NewNetwork creates a fabric for s ≥ 1 servers.
func NewNetwork(s int) *Network {
	if s < 1 {
		panic("comm: need at least one server")
	}
	return &Network{servers: s, byTag: make(map[string]int64), byLink: make(map[[2]int]int64)}
}

// Servers returns the number of servers (including the CP).
func (n *Network) Servers() int { return n.servers }

// EnableTrace turns on per-message transcript recording (tests only; it
// grows without bound).
func (n *Network) EnableTrace() { n.trace = true }

// Transcript returns a copy of the recorded messages.
func (n *Network) Transcript() []Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Message, len(n.log))
	copy(out, n.log)
	return out
}

func (n *Network) check(id int) {
	if id < 0 || id >= n.servers {
		panic(fmt.Sprintf("comm: server %d out of range [0,%d)", id, n.servers))
	}
}

// Charge records a transfer of the given number of words from one server to
// another under a cost tag. It is the primitive all typed helpers reduce to.
func (n *Network) Charge(from, to int, tag string, words int64) {
	n.check(from)
	n.check(to)
	if words < 0 {
		panic("comm: negative charge")
	}
	if from == to {
		return // local movement is free
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.words += words
	n.msgs++
	n.byTag[tag] += words
	n.byLink[[2]int{from, to}] += words
	if n.trace {
		n.log = append(n.log, Message{From: from, To: to, Tag: tag, Words: words})
	}
}

// SendFloats transfers a float64 slice, charging one word per element, and
// returns a copy so the receiver cannot alias the sender's memory.
func (n *Network) SendFloats(from, to int, tag string, data []float64) []float64 {
	n.Charge(from, to, tag, int64(len(data)))
	out := make([]float64, len(data))
	copy(out, data)
	return out
}

// SendInts transfers an int slice, charging one word per element.
func (n *Network) SendInts(from, to int, tag string, data []int) []int {
	n.Charge(from, to, tag, int64(len(data)))
	out := make([]int, len(data))
	copy(out, data)
	return out
}

// SendUint64s transfers a uint64 slice, charging one word per element.
func (n *Network) SendUint64s(from, to int, tag string, data []uint64) []uint64 {
	n.Charge(from, to, tag, int64(len(data)))
	out := make([]uint64, len(data))
	copy(out, data)
	return out
}

// SendScalar transfers a single float64 value (one word).
func (n *Network) SendScalar(from, to int, tag string, v float64) float64 {
	n.Charge(from, to, tag, 1)
	return v
}

// BroadcastSeed models server `from` broadcasting a random seed to every
// other server: s−1 messages of one word each.
func (n *Network) BroadcastSeed(from int, tag string, seed int64) int64 {
	for t := 0; t < n.servers; t++ {
		if t != from {
			n.Charge(from, t, tag, 1)
		}
	}
	return seed
}

// BroadcastWords charges for broadcasting `words` words from `from` to all
// other servers (used for shipping a projection matrix or parameters).
func (n *Network) BroadcastWords(from int, tag string, words int64) {
	for t := 0; t < n.servers; t++ {
		if t != from {
			n.Charge(from, t, tag, words)
		}
	}
}

// GatherScalars models each server sending one float64 to the CP; it
// charges s−1 words and returns the provided values (the CP's own value
// travels for free).
func (n *Network) GatherScalars(tag string, values []float64) []float64 {
	if len(values) != n.servers {
		panic("comm: GatherScalars needs one value per server")
	}
	for t := 1; t < n.servers; t++ {
		n.Charge(t, CP, tag, 1)
	}
	out := make([]float64, len(values))
	copy(out, values)
	return out
}

// Relay models point-to-point traffic in the star topology exactly as the
// paper describes: server i sends to server j by routing through the CP
// with the destination identity attached, costing two messages and one
// extra address word ("a multiplicative factor of 2 in the number of
// messages and an additive factor of log₂ s per message" — one word covers
// the address at any practical s).
func (n *Network) Relay(from, to int, tag string, data []float64) []float64 {
	if from == CP || to == CP {
		return n.SendFloats(from, to, tag, data)
	}
	n.Charge(from, CP, tag, int64(len(data))+1) // payload + destination id
	return n.SendFloats(CP, to, tag, data)
}

// Words returns the total number of words transferred so far.
func (n *Network) Words() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.words
}

// Bits returns total communication in bits (64 per word).
func (n *Network) Bits() int64 { return 64 * n.Words() }

// Messages returns the number of point-to-point transfers.
func (n *Network) Messages() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgs
}

// Breakdown returns words charged per tag, as a copied map.
func (n *Network) Breakdown() map[string]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]int64, len(n.byTag))
	for k, v := range n.byTag {
		out[k] = v
	}
	return out
}

// BreakdownString renders the per-tag costs sorted by descending words.
func (n *Network) BreakdownString() string {
	b := n.Breakdown()
	type kv struct {
		tag   string
		words int64
	}
	items := make([]kv, 0, len(b))
	for k, v := range b {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].words != items[j].words {
			return items[i].words > items[j].words
		}
		return items[i].tag < items[j].tag
	})
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%-28s %12d words\n", it.tag, it.words)
	}
	return s
}

// Reset zeroes all counters and the transcript.
func (n *Network) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.words, n.msgs = 0, 0
	n.byTag = make(map[string]int64)
	n.byLink = make(map[[2]int]int64)
	n.log = nil
}

// Snapshot captures the current total so callers can measure a phase:
// delta := net.Since(snap).
func (n *Network) Snapshot() int64 { return n.Words() }

// Since returns the words transferred since the given snapshot.
func (n *Network) Since(snap int64) int64 { return n.Words() - snap }
