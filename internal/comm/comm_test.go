package comm

import (
	"sync"
	"testing"
)

func TestSendFloatsCountsWords(t *testing.T) {
	n := NewNetwork(3)
	out := n.SendFloats(1, 0, "x", []float64{1, 2, 3})
	if len(out) != 3 || out[2] != 3 {
		t.Fatal("payload corrupted")
	}
	if n.Words() != 3 {
		t.Fatalf("words = %d", n.Words())
	}
	if n.Messages() != 1 {
		t.Fatalf("messages = %d", n.Messages())
	}
	if n.Bits() != 192 {
		t.Fatalf("bits = %d", n.Bits())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	n := NewNetwork(2)
	src := []float64{1}
	dst := n.SendFloats(1, 0, "x", src)
	dst[0] = 99
	if src[0] != 1 {
		t.Fatal("receiver aliases sender memory")
	}
}

func TestLocalTransferFree(t *testing.T) {
	n := NewNetwork(2)
	n.SendFloats(1, 1, "x", []float64{1, 2})
	if n.Words() != 0 {
		t.Fatal("self-send should be free")
	}
}

func TestBroadcastSeed(t *testing.T) {
	n := NewNetwork(5)
	n.BroadcastSeed(CP, "seed", 42)
	if n.Words() != 4 {
		t.Fatalf("broadcast to 4 others = %d words", n.Words())
	}
}

func TestBroadcastWords(t *testing.T) {
	n := NewNetwork(3)
	n.BroadcastWords(CP, "proj", 100)
	if n.Words() != 200 {
		t.Fatalf("words = %d", n.Words())
	}
}

func TestGatherScalars(t *testing.T) {
	n := NewNetwork(4)
	vals := n.GatherScalars("g", []float64{1, 2, 3, 4})
	if len(vals) != 4 || vals[3] != 4 {
		t.Fatal("gather payload")
	}
	if n.Words() != 3 {
		t.Fatalf("gather words = %d (CP's own value is free)", n.Words())
	}
}

func TestBreakdownByTag(t *testing.T) {
	n := NewNetwork(2)
	n.SendFloats(1, 0, "a", make([]float64, 5))
	n.SendInts(1, 0, "b", make([]int, 7))
	n.SendUint64s(1, 0, "a", make([]uint64, 2))
	b := n.Breakdown()
	if b["a"] != 7 || b["b"] != 7 {
		t.Fatalf("breakdown = %v", b)
	}
	if s := n.BreakdownString(); s == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestSnapshotSince(t *testing.T) {
	n := NewNetwork(2)
	n.SendScalar(1, 0, "x", 3.14)
	snap := n.Snapshot()
	n.SendFloats(1, 0, "x", make([]float64, 9))
	if n.Since(snap) != 9 {
		t.Fatalf("since = %d", n.Since(snap))
	}
}

func TestReset(t *testing.T) {
	n := NewNetwork(2)
	n.SendScalar(1, 0, "x", 1)
	n.Reset()
	if n.Words() != 0 || n.Messages() != 0 || len(n.Breakdown()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTranscript(t *testing.T) {
	n := NewNetwork(2)
	n.EnableTrace()
	n.SendFloats(1, 0, "phase1", make([]float64, 3))
	n.SendScalar(0, 1, "phase2", 1)
	tr := n.Transcript()
	if len(tr) != 2 {
		t.Fatalf("transcript length %d", len(tr))
	}
	if tr[0].Tag != "phase1" || tr[0].Words != 3 || tr[0].From != 1 {
		t.Fatalf("transcript[0] = %+v", tr[0])
	}
	if tr[1].To != 1 {
		t.Fatalf("transcript[1] = %+v", tr[1])
	}
}

func TestChargePanicsOnBadServer(t *testing.T) {
	n := NewNetwork(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Charge(0, 5, "x", 1)
}

func TestChargePanicsOnNegative(t *testing.T) {
	n := NewNetwork(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Charge(0, 1, "x", -1)
}

func TestNewNetworkPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(0)
}

func TestConcurrentCharges(t *testing.T) {
	n := NewNetwork(3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				n.Charge(1, 0, "c", 1)
			}
		}()
	}
	wg.Wait()
	if n.Words() != 8000 {
		t.Fatalf("concurrent words = %d", n.Words())
	}
}

func TestGatherScalarsWrongLenPanics(t *testing.T) {
	n := NewNetwork(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.GatherScalars("g", []float64{1})
}

func TestRelayThroughCP(t *testing.T) {
	n := NewNetwork(4)
	out := n.Relay(2, 3, "r", []float64{1, 2, 3})
	if len(out) != 3 || out[2] != 3 {
		t.Fatal("relay payload")
	}
	// 3 payload + 1 address to the CP, then 3 payload onward.
	if n.Words() != 7 {
		t.Fatalf("relay words = %d, want 7", n.Words())
	}
	if n.Messages() != 2 {
		t.Fatalf("relay messages = %d, want 2", n.Messages())
	}
}

func TestRelayToFromCPDirect(t *testing.T) {
	n := NewNetwork(3)
	n.Relay(1, CP, "r", []float64{1, 2})
	if n.Words() != 2 || n.Messages() != 1 {
		t.Fatalf("to-CP relay: %d words %d msgs", n.Words(), n.Messages())
	}
	n.Reset()
	n.Relay(CP, 2, "r", []float64{1})
	if n.Words() != 1 || n.Messages() != 1 {
		t.Fatalf("from-CP relay: %d words %d msgs", n.Words(), n.Messages())
	}
}
