package comm

// Free lists for frame scratch. An encoded frame has single ownership at
// every point of its life: the sender encodes it, the transport hands the
// buffer over (MemTransport moves the sender's buffer, the TCP reader
// allocates one per frame), and DecodeFrame copies every field out — so a
// buffer is dead the moment a decode returns, and the runtime recycles it
// here instead of leaving it to the GC. The same holds for the []uint64
// payload staging on both codec sides; the decode-side words are recycled
// only by receive paths that convert them (RecvUint64s hands them to the
// caller and must not).
//
// The lists are plain mutex-guarded stacks of slice headers rather than
// sync.Pool: Put-ing a slice into a sync.Pool boxes the header (one
// allocation per recycle — measurably worse than the garbage it saves on
// the small frames the protocols mostly move). Each size class keeps a
// bounded stack and drops overflow on the floor for the GC.

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minPoolBits..maxPoolBits bound the pooled size classes; class c holds
	// buffers with capacity in [2^c, 2^{c+1}). Larger buffers (beyond 16 MiB
	// — only whole-share dumps get close) fall through to the allocator.
	minPoolBits = 4
	maxPoolBits = 24

	// poolDepth bounds each size-class stack. Protocol rounds keep at most
	// a handful of frames in flight per server; overflow is garbage again.
	poolDepth = 64
)

type byteFreeList struct {
	mu    sync.Mutex
	stack [][]byte
}

type wordFreeList struct {
	mu    sync.Mutex
	stack [][]uint64
}

type floatFreeList struct {
	mu    sync.Mutex
	stack [][]float64
}

var (
	bytePools  [maxPoolBits + 1]byteFreeList
	wordPools  [maxPoolBits + 1]wordFreeList
	floatPools [maxPoolBits + 1]floatFreeList

	// poolGets/poolPuts count every byte-buffer checkout and return —
	// the lifecycle audit PoolStats exposes. A balanced fabric returns
	// every frame buffer it took, including on abort and teardown paths.
	poolGets atomic.Int64
	poolPuts atomic.Int64
)

// getBuf returns a length-n byte slice, reusing pooled capacity when
// available. Contents are unspecified; callers overwrite every byte.
func getBuf(n int) []byte {
	poolGets.Add(1)
	c := poolClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	p := &bytePools[c]
	p.mu.Lock()
	if l := len(p.stack); l > 0 {
		b := p.stack[l-1]
		p.stack = p.stack[:l-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]byte, n, 1<<c)
}

// putBuf recycles a buffer previously obtained from getBuf or any other
// single-owner allocation (e.g. the TCP frame reader).
func putBuf(b []byte) {
	poolPuts.Add(1)
	c := bits.Len(uint(cap(b))) - 1 // floor log2: the class cap(b) can serve
	if c < minPoolBits || c > maxPoolBits {
		return
	}
	p := &bytePools[c]
	p.mu.Lock()
	if len(p.stack) < poolDepth {
		p.stack = append(p.stack, b[:0])
	}
	p.mu.Unlock()
}

// PoolStats reports the cumulative frame-buffer checkouts and returns.
// The counters audit the single-ownership lifecycle: after a scenario
// fully tears down (sessions closed, transports drained, workers exited),
// gets minus puts must be zero or the fabric leaked buffers.
func PoolStats() (gets, puts int64) {
	return poolGets.Load(), poolPuts.Load()
}

// ReleaseFrame returns a frame buffer obtained from the codec or wire
// reader to the free lists. It is the exported recycle point for
// packages outside comm (the cluster worker loop) that own decoded
// buffers.
func ReleaseFrame(buf []byte) { putBuf(buf) }

// getFloats returns a length-n float64 slice with unspecified contents,
// recycled through the same size classes as the word pool.
func getFloats(n int) []float64 {
	c := poolClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	p := &floatPools[c]
	p.mu.Lock()
	if l := len(p.stack); l > 0 {
		xs := p.stack[l-1]
		p.stack = p.stack[:l-1]
		p.mu.Unlock()
		return xs[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// putFloats recycles a drain-side payload slice.
func putFloats(xs []float64) {
	c := bits.Len(uint(cap(xs))) - 1
	if c < minPoolBits || c > maxPoolBits {
		return
	}
	p := &floatPools[c]
	p.mu.Lock()
	if len(p.stack) < poolDepth {
		p.stack = append(p.stack, xs[:0])
	}
	p.mu.Unlock()
}

// getWords returns a length-n word slice with unspecified contents.
func getWords(n int) []uint64 {
	c := poolClass(n)
	if c < 0 {
		return make([]uint64, n)
	}
	p := &wordPools[c]
	p.mu.Lock()
	if l := len(p.stack); l > 0 {
		ws := p.stack[l-1]
		p.stack = p.stack[:l-1]
		p.mu.Unlock()
		return ws[:n]
	}
	p.mu.Unlock()
	return make([]uint64, n, 1<<c)
}

// putWords recycles a codec-side payload staging slice.
func putWords(ws []uint64) {
	c := bits.Len(uint(cap(ws))) - 1
	if c < minPoolBits || c > maxPoolBits {
		return
	}
	p := &wordPools[c]
	p.mu.Lock()
	if len(p.stack) < poolDepth {
		p.stack = append(p.stack, ws[:0])
	}
	p.mu.Unlock()
}

// poolClass returns the size class whose pooled buffers can hold n
// elements (capacity ≥ n), or -1 when n is outside the pooled range.
func poolClass(n int) int {
	if n > 1<<maxPoolBits {
		return -1
	}
	c := bits.Len(uint(n - 1)) // ceil log2
	if n <= 1 {
		c = 0
	}
	if c < minPoolBits {
		c = minPoolBits
	}
	return c
}

// floatWords is FloatWords over pooled staging — for encode-side use
// only, paired with putWords once the frame is serialized.
func floatWords(xs []float64) []uint64 {
	out := getWords(len(xs))
	for i, x := range xs {
		out[i] = math.Float64bits(x)
	}
	return out
}

// Ledger tags are drawn from a small fixed vocabulary per protocol, but
// they arrive as raw header bytes in every decoded frame. The intern
// table maps those bytes to one shared string per distinct tag, so
// steady-state decoding allocates nothing for tags. (Go map lookups
// keyed by string(bytes) do not allocate.)
var (
	tagMu     sync.RWMutex
	tagIntern = map[string]string{}
)

// tagInternLimit caps the intern table; protocols use a few dozen tags,
// so the cap only guards against an adversarial stream of unique tags.
const tagInternLimit = 1 << 12

func internTag(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	tagMu.RLock()
	s, ok := tagIntern[string(b)]
	tagMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	tagMu.Lock()
	if len(tagIntern) >= tagInternLimit {
		tagIntern = map[string]string{}
	}
	tagIntern[s] = s
	tagMu.Unlock()
	return s
}
