package comm

import (
	"context"
	"fmt"
	"sync"
)

// This file is the concurrent runtime of the fabric. The accounting model
// of comm.go is unchanged — every transfer still reduces to commit under
// the mutex — but payload movement is not tied to a single orchestrating
// goroutine: each server can execute its protocol role in its own
// goroutine (RunServers) and move encoded frames over the transport links
// (Post*/Recv*), and whole protocol phases run as op rounds (RunRound)
// that treat locally hosted and remote servers identically.
//
// Determinism contract: accounting is committed by the *receiver* at
// Recv time. A protocol whose receivers drain their links in a fixed
// order (the star protocols always drain in server order at the CP)
// therefore produces word, byte, per-tag, per-link tallies and a
// transcript that are identical to a sequential formulation, no matter
// how the sender goroutines are scheduled — and identical across the
// in-memory and TCP transports, because both move the same encoded
// frames.

// PostFloats asynchronously sends a float64 payload from one server to
// another as an encoded frame on the transport link (so the receiver
// cannot alias the sender's memory). One word per element is charged when
// the receiver calls RecvFloats.
func (n *Network) PostFloats(from, to int, tag string, data []float64) {
	ws := floatWords(data)
	n.post(&Frame{Kind: KindFloats, From: from, To: to, Stream: n.stream, Tag: tag, Words: ws})
	putWords(ws)
}

// PostInts asynchronously sends an int payload (see PostFloats).
func (n *Network) PostInts(from, to int, tag string, data []int) {
	n.post(&Frame{Kind: KindInts, From: from, To: to, Stream: n.stream, Tag: tag, Words: IntWords(data)})
}

// PostUint64s asynchronously sends a uint64 payload (see PostFloats; the
// encode at post time is already the copy).
func (n *Network) PostUint64s(from, to int, tag string, data []uint64) {
	n.post(&Frame{Kind: KindUint64s, From: from, To: to, Stream: n.stream, Tag: tag, Words: data})
}

func (n *Network) post(f *Frame) {
	n.check(f.From)
	n.check(f.To)
	n.checkHosted(f.From, f.To, "channel post")
	if f.From == f.To {
		panic("comm: post to self (local movement needs no link)")
	}
	if err := n.tr.Send(f.From, f.To, EncodeFrame(f)); err != nil {
		panic(fmt.Sprintf("comm: post on link %d→%d: %v", f.From, f.To, err))
	}
}

// SendFloatsAsync charges the transfer immediately — sender-side
// accounting, deterministic for a single sender goroutine such as the CP
// scattering to all servers — and posts the frame; the receiver collects
// it with CollectFloats, which does not charge again.
func (n *Network) SendFloatsAsync(from, to int, tag string, data []float64) {
	ws := floatWords(data)
	f := &Frame{Kind: KindFloats, Flags: FlagPrepaid, From: from, To: to, Stream: n.stream, Tag: tag, Words: ws}
	enc := EncodeFrame(f)
	n.commit(from, to, tag, int64(len(f.Words)), int64(len(enc)))
	putWords(ws)
	if err := n.tr.Send(from, to, enc); err != nil {
		panic(fmt.Sprintf("comm: post on link %d→%d: %v", from, to, err))
	}
}

// CollectFloats blocks for a prepaid frame (sent with SendFloatsAsync)
// and returns its payload without charging.
func (n *Network) CollectFloats(from, to int, tag string) []float64 {
	f := n.take(from, to, tag)
	if !f.Prepaid() {
		panic(fmt.Sprintf("comm: collect of unpaid frame %q on link %d→%d (use Recv*)", tag, from, to))
	}
	out := WordFloats(f.Words)
	putWords(f.Words)
	return out
}

// take blocks for the next frame on the from→to link, aborting instead
// of deadlocking if a concurrently running server role panics before
// posting (see RunServers).
func (n *Network) take(from, to int, tag string) *Frame {
	n.check(from)
	n.check(to)
	n.checkHosted(from, to, "channel recv")
	n.mu.Lock()
	abort := n.abort
	n.mu.Unlock()
	buf, err := n.tr.Recv(from, to, n.stream, abort)
	if err != nil {
		panic(fmt.Sprintf("comm: recv on link %d→%d: %v", from, to, err))
	}
	f, err := DecodeFrame(buf)
	if err != nil {
		panic(fmt.Sprintf("comm: recv on link %d→%d: %v", from, to, err))
	}
	putBuf(buf)
	if f.Tag != tag {
		panic(fmt.Sprintf("comm: recv tag %q on link %d→%d, want %q", f.Tag, from, to, tag))
	}
	return f
}

// recv blocks for the next frame on the from→to link, verifies the tag
// (a mismatch is a protocol bug — the links are typed per phase), and
// commits the accounting.
func (n *Network) recv(from, to int, tag string) *Frame {
	f := n.take(from, to, tag)
	if f.Prepaid() {
		panic(fmt.Sprintf("comm: recv of prepaid frame %q on link %d→%d (use CollectFloats)", tag, from, to))
	}
	n.commit(from, to, f.Tag, int64(len(f.Words)), int64(f.EncodedLen()))
	return f
}

// RecvFloats blocks until a float64 frame with the given tag arrives on
// the from→to link and charges it exactly as SendFloats would have.
func (n *Network) RecvFloats(from, to int, tag string) []float64 {
	f := n.recv(from, to, tag)
	out := WordFloats(f.Words)
	putWords(f.Words)
	return out
}

// RecvInts is RecvFloats for int payloads.
func (n *Network) RecvInts(from, to int, tag string) []int {
	f := n.recv(from, to, tag)
	out := WordInts(f.Words)
	putWords(f.Words)
	return out
}

// RecvUint64s is RecvFloats for uint64 payloads.
func (n *Network) RecvUint64s(from, to int, tag string) []uint64 {
	return n.recv(from, to, tag).Words
}

// RunServers executes role(t) for every server t = 0…s−1, each in its own
// goroutine, and returns when all roles have finished. A panic in any
// role aborts every role blocked on a link receive (so a dead sender
// cannot deadlock its receivers) and is re-raised in the caller; when
// several roles fail, the re-raised panic is the first one observed.
func (n *Network) RunServers(role func(server int)) {
	abort := make(chan struct{})
	n.mu.Lock()
	n.abort = abort
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.abort = nil
		n.mu.Unlock()
	}()

	var wg sync.WaitGroup
	var abortOnce sync.Once
	panics := make(chan any, n.servers)
	for t := 0; t < n.servers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- fmt.Sprintf("comm: server %d: %v", t, r)
					abortOnce.Do(func() { close(abort) })
				}
			}()
			role(t)
		}(t)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// GatherFloats runs one concurrent gather round: every server computes
// produce(t) in its own goroutine, non-CP servers post the result to the
// CP under tag, and the CP receives in server order 1…s−1 — so the
// accounting is deterministic — while its own contribution travels for
// free. The returned slice holds every server's payload by server index.
func (n *Network) GatherFloats(tag string, produce func(server int) []float64) [][]float64 {
	out := make([][]float64, n.servers)
	n.RunServers(func(t int) {
		data := produce(t)
		if t != CP {
			n.PostFloats(t, CP, tag, data)
			return
		}
		out[CP] = data
		for from := 1; from < n.servers; from++ {
			out[from] = n.RecvFloats(from, CP, tag)
		}
	})
	return out
}

// Round is one protocol phase executed uniformly across the star: the CP
// broadcasts an op request (parameters, or a payload for data
// broadcasts), every non-CP server produces the op's reply from its local
// share, and the CP consumes the replies in server order. Locally hosted
// servers execute Local in-process (in parallel, with the accounting
// committed in canonical order); remote servers receive the encoded
// request over their transport link and their worker produces the reply —
// byte-identical frames either way.
type Round struct {
	// Op is the protocol opcode stamped on the request frames.
	Op uint16
	// Params are the request's payload words (seeds, shapes, indices);
	// each is charged as one word per destination.
	Params []uint64
	// Data, when non-nil, replaces Params as the request payload (used
	// for payload broadcasts such as the projection basis). Kind sets the
	// frame's payload kind (KindControl when zero).
	Data []float64
	Kind Kind
	// ReqTag is the ledger tag of the request frames.
	ReqTag string
	// RespTag is the ledger tag of the reply frames; empty means the
	// round is a pure broadcast with no replies.
	RespTag string
	// RespKind is the payload kind replies must carry.
	RespKind Kind
	// Local executes the op for a locally hosted server t and returns the
	// reply payload. Never called for remote servers.
	Local func(t int) ([]float64, error)
	// OnResp consumes server t's reply payload, in server order. The
	// payload slice is pooled scratch, valid only during the call —
	// consumers read or copy it, never retain it.
	OnResp func(t int, payload []float64) error
	// Inline executes Local in the drain loop instead of one goroutine
	// per server. The transcript is identical either way; hot-path rounds
	// with tiny payloads (per-draw row collection, value gathers) set it
	// to skip the scheduling cost, heavy sketch rounds leave it unset to
	// keep per-server building parallel.
	Inline bool
}

// localReply builds server t's encoded reply, converting executor panics
// and oversized payloads into errors so a failing op aborts the round
// instead of the process.
func localReply(r Round, stream uint32, t int) (enc []byte, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("comm: round %q local executor on server %d: %v", r.ReqTag, t, rec)
		}
	}()
	payload, err := r.Local(t)
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxFrameWords {
		return nil, fmt.Errorf("comm: round %q reply of %d words from server %d exceeds the %d-word frame cap",
			r.RespTag, len(payload), t, MaxFrameWords)
	}
	f := &Frame{Kind: r.RespKind, From: t, To: CP, Stream: stream, Tag: r.RespTag}
	return EncodeFrameFloats(f, payload), nil
}

// RunRound executes one Round. Request frames are charged (and, for
// remote servers, transmitted) in server order 1…s−1 first; replies are
// then drained and charged in the same order, so the transcript is
// deterministic and transport-independent.
//
// ctx is the round's abort checkpoint: a ctx already done at entry stops
// the round before any request frame moves (the fabric stays clean — no
// poison, nothing in flight), and a ctx firing mid-drain aborts the
// blocking remote receive. The between-rounds contract every protocol
// loop relies on is exactly this entry check.
func (n *Network) RunRound(ctx context.Context, r Round) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	failed := n.failed
	n.mu.Unlock()
	if failed != nil {
		return fmt.Errorf("comm: fabric poisoned by an earlier aborted round (Reset to reuse): %w", failed)
	}
	err := n.runRound(ctx, r)
	if err != nil {
		if n.HasRemote() {
			// A round that aborts after its requests went out may leave
			// worker replies queued; poison the fabric so the next round
			// fails fast instead of consuming a stale frame.
			n.mu.Lock()
			if n.failed == nil {
				n.failed = err
			}
			n.mu.Unlock()
		}
		return err
	}
	n.noteRound(r.ReqTag)
	return nil
}

// resolveRequest validates one round's request payload and resolves its
// frame kind and words. Words staged from Data are pooled — the caller
// recycles them with putWords once the request leg is done.
func resolveRequest(r *Round) (Kind, []uint64, error) {
	kind := r.Kind
	words := r.Params
	if r.Data != nil {
		if len(r.Params) != 0 {
			return 0, nil, fmt.Errorf("comm: round %q carries both params and data", r.ReqTag)
		}
		words = floatWords(r.Data)
		if kind == 0 {
			kind = KindFloats
		}
	}
	if kind == 0 {
		kind = KindControl
	}
	if len(words) > MaxFrameWords {
		putRequestWords(r, words)
		return 0, nil, fmt.Errorf("comm: round %q request of %d words exceeds the %d-word frame cap", r.ReqTag, len(words), MaxFrameWords)
	}
	return kind, words, nil
}

// putRequestWords recycles a request staging slice if resolveRequest
// pooled one (Data rounds only; Params are caller-owned).
func putRequestWords(r *Round, words []uint64) {
	if r.Data != nil && words != nil {
		putWords(words)
	}
}

func (n *Network) runRound(ctx context.Context, r Round) error {
	kind, words, err := resolveRequest(&r)
	if err != nil {
		return err
	}
	// Request leg. Requests to locally hosted servers never move — only
	// their ledger entry matters — so the wire image is built (and handed
	// to the transport) for remote destinations alone.
	for t := 1; t < n.servers; t++ {
		f := &Frame{Kind: kind, Op: r.Op, From: CP, To: t, Stream: n.stream, Tag: r.ReqTag, RTag: r.RespTag, Words: words}
		n.commit(CP, t, r.ReqTag, int64(len(words)), int64(f.EncodedLen()))
		if n.remote[t] {
			if err := n.tr.Send(CP, t, EncodeFrame(f)); err != nil {
				putRequestWords(&r, words)
				return fmt.Errorf("comm: round %q request to server %d: %w", r.ReqTag, t, err)
			}
		}
	}
	putRequestWords(&r, words)
	if r.RespTag == "" {
		return nil
	}
	return n.drainReplies(ctx, &r)
}

// drainReplies runs one round's reply leg: locally hosted servers produce
// their replies (concurrently unless the round is Inline), and the drain
// loop receives, verifies and commits every reply in server order — the
// canonical order that makes the transcript transport-independent.
func (n *Network) drainReplies(ctx context.Context, r *Round) error {
	type local struct {
		enc []byte
		err error
	}
	var locals []chan local
	if !r.Inline {
		locals = make([]chan local, n.servers)
		for t := 1; t < n.servers; t++ {
			if n.remote[t] {
				continue
			}
			if r.Local == nil {
				return fmt.Errorf("comm: round %q has a local server %d but no local executor", r.ReqTag, t)
			}
			ch := make(chan local, 1)
			locals[t] = ch
			go func(t int) {
				enc, err := localReply(*r, n.stream, t)
				ch <- local{enc: enc, err: err}
			}(t)
		}
	}

	// Drain leg, in server order. Replies decode zero-copy: the frame
	// view aliases the wire buffer, the payload converts straight into a
	// pooled float slice, and the buffer recycles before OnResp runs.
	for t := 1; t < n.servers; t++ {
		var enc []byte
		if n.remote[t] {
			buf, err := n.tr.Recv(t, CP, n.stream, ctx.Done())
			if err != nil {
				return fmt.Errorf("comm: round %q reply from server %d: %w", r.RespTag, t, err)
			}
			enc = buf
		} else if r.Inline {
			if r.Local == nil {
				return fmt.Errorf("comm: round %q has a local server %d but no local executor", r.ReqTag, t)
			}
			var err error
			enc, err = localReply(*r, n.stream, t)
			if err != nil {
				return fmt.Errorf("comm: round %q on server %d: %w", r.ReqTag, t, err)
			}
		} else {
			res := <-locals[t]
			if res.err != nil {
				return fmt.Errorf("comm: round %q on server %d: %w", r.ReqTag, t, res.err)
			}
			enc = res.enc
		}
		v, err := parseFrame(enc)
		if err != nil {
			putBuf(enc)
			return fmt.Errorf("comm: round %q reply from server %d: %w", r.RespTag, t, err)
		}
		if v.tag != r.RespTag {
			putBuf(enc)
			return fmt.Errorf("comm: round reply tag %q from server %d, want %q", v.tag, t, r.RespTag)
		}
		if v.kind != r.RespKind {
			putBuf(enc)
			return fmt.Errorf("comm: round reply kind %d from server %d, want %d", v.kind, t, r.RespKind)
		}
		n.commit(t, CP, r.RespTag, int64(v.words), int64(len(enc)))
		payload := v.floats()
		putBuf(enc)
		if r.OnResp != nil {
			if err := r.OnResp(t, payload); err != nil {
				putFloats(payload)
				return err
			}
		}
		putFloats(payload)
	}
	return nil
}

// RunRounds executes a sequence of Rounds with their request frames all
// issued before any replies drain — the round-pipelining path for rounds
// that do not data-depend on each other's replies. On remote links the
// queued same-destination requests coalesce into batch envelopes sized by
// SetBatchSize, so a sequence of k rounds costs one scatter-gather write
// per link instead of k.
//
// The accounting is bit-identical to running the rounds sequentially with
// RunRound: each round's requests and replies commit in canonical order
// (round i's replies before round i+1's requests), whatever the wire
// framing did. Rounds whose OnResp/Local closures feed later rounds in
// the same slice must not be passed here — issue order is all-at-once.
//
// ctx is checked at entry (nothing moves if already done) and before each
// round's reply drain; a mid-sequence abort poisons the fabric exactly as
// an aborted RunRound would.
func (n *Network) RunRounds(ctx context.Context, rounds []Round) error {
	if len(rounds) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	failed := n.failed
	n.mu.Unlock()
	if failed != nil {
		return fmt.Errorf("comm: fabric poisoned by an earlier aborted round (Reset to reuse): %w", failed)
	}
	err := n.runRounds(ctx, rounds)
	if err != nil && n.HasRemote() {
		n.mu.Lock()
		if n.failed == nil {
			n.failed = err
		}
		n.mu.Unlock()
	}
	return err
}

func (n *Network) runRounds(ctx context.Context, rounds []Round) error {
	kinds := make([]Kind, len(rounds))
	wordss := make([][]uint64, len(rounds))
	for i := range rounds {
		k, w, err := resolveRequest(&rounds[i])
		if err != nil {
			for j := 0; j < i; j++ {
				putRequestWords(&rounds[j], wordss[j])
			}
			return err
		}
		kinds[i], wordss[i] = k, w
	}
	defer func() {
		for i := range rounds {
			putRequestWords(&rounds[i], wordss[i])
		}
	}()

	// Phase 1: issue every round's request frames. Nothing commits here —
	// the ledger entries land in phase 2, in the canonical sequential
	// order — so the wire can run ahead of the accounting. Same-
	// destination frames coalesce into batch envelopes on remote links.
	if n.HasRemote() {
		batch := n.BatchSize()
		pend := make([][][]byte, n.servers)
		pendBytes := make([]int, n.servers)
		flush := func(t int) error {
			fs := pend[t]
			if len(fs) == 0 {
				return nil
			}
			pend[t] = nil
			pendBytes[t] = 0
			if len(fs) == 1 {
				return n.tr.Send(CP, t, fs[0])
			}
			if bs, ok := n.tr.(batchSender); ok {
				return bs.SendBatch(CP, t, fs)
			}
			for i, fr := range fs {
				if err := n.tr.Send(CP, t, fr); err != nil {
					for _, rest := range fs[i+1:] {
						putBuf(rest)
					}
					return err
				}
			}
			return nil
		}
		release := func() {
			for t := range pend {
				for _, fr := range pend[t] {
					putBuf(fr)
				}
			}
		}
		for i := range rounds {
			r := &rounds[i]
			for t := 1; t < n.servers; t++ {
				if !n.remote[t] {
					continue
				}
				f := &Frame{Kind: kinds[i], Op: r.Op, From: CP, To: t, Stream: n.stream, Tag: r.ReqTag, RTag: r.RespTag, Words: wordss[i]}
				enc := EncodeFrame(f)
				if batch == 1 {
					if err := n.tr.Send(CP, t, enc); err != nil {
						release()
						return fmt.Errorf("comm: round %q request to server %d: %w", r.ReqTag, t, err)
					}
					continue
				}
				if pendBytes[t] > 0 && pendBytes[t]+len(enc) > MaxBatchBytes {
					if err := flush(t); err != nil {
						putBuf(enc)
						release()
						return fmt.Errorf("comm: round %q request to server %d: %w", r.ReqTag, t, err)
					}
				}
				pend[t] = append(pend[t], enc)
				pendBytes[t] += len(enc)
				if batch > 1 && len(pend[t]) >= batch {
					if err := flush(t); err != nil {
						release()
						return fmt.Errorf("comm: round %q request to server %d: %w", r.ReqTag, t, err)
					}
				}
			}
		}
		for t := 1; t < n.servers; t++ {
			if err := flush(t); err != nil {
				release()
				return fmt.Errorf("comm: pipelined request flush to server %d: %w", t, err)
			}
		}
	}

	// Phase 2: commit and drain round by round, in canonical order.
	for i := range rounds {
		r := &rounds[i]
		if err := ctx.Err(); err != nil {
			return err
		}
		reqLen := int64(FrameHeaderLen + len(r.ReqTag) + len(r.RespTag) + 8*len(wordss[i]))
		for t := 1; t < n.servers; t++ {
			n.commit(CP, t, r.ReqTag, int64(len(wordss[i])), reqLen)
		}
		if r.RespTag != "" {
			if err := n.drainReplies(ctx, r); err != nil {
				return err
			}
		}
		n.noteRound(r.ReqTag)
	}
	return nil
}

// Fork returns a private recording fabric sharing this fabric's transport
// and server roster but owning its own ledger and stream id: charges
// against it accumulate locally (with a full transcript) and do not touch
// the parent until Join. Forks let independent protocol phases run
// concurrently — their frames interleave on the shared links but carry
// the fork's stream id — and still commit their accounting in a canonical
// order.
func (n *Network) Fork() *Network {
	f := &Network{
		servers:   n.servers,
		tr:        n.tr,
		remote:    n.remote,
		session:   n.session,
		stream:    n.nextStream(),
		streamSeq: n.streamSeq,
		onRound:   n.onRound,
		roundSeq:  n.roundSeq,
		trace:     true,
		batch:     n.BatchSize(),
		ctl:       n.ctl,
	}
	f.resetTallies()
	return f
}

// Join replays each fork's transcript into n, in argument order, exactly
// as if the forked phases had run sequentially at this point. Word and
// byte tallies, message counts and (when tracing) the transcript are
// therefore independent of how the forked phases were scheduled.
func (n *Network) Join(forks ...*Network) {
	for _, f := range forks {
		if f.servers != n.servers {
			panic(fmt.Sprintf("comm: joining fork with %d servers into network with %d", f.servers, n.servers))
		}
		for _, m := range f.log {
			n.commit(m.From, m.To, m.Tag, m.Words, m.Bytes)
		}
	}
}
