package comm

import (
	"fmt"
	"sync"
)

// This file is the concurrent runtime of the fabric. The accounting model
// of comm.go is unchanged — every transfer still reduces to Charge under
// the mutex — but payload movement is no longer tied to a single
// orchestrating goroutine: each server can execute its protocol role in
// its own goroutine (RunServers) and move data over typed channel-backed
// links (Post*/Recv*).
//
// Determinism contract: accounting is committed by the *receiver* at
// Recv time. A protocol whose receivers drain their links in a fixed
// order (the star protocols always drain in server order at the CP)
// therefore produces word, message, per-tag, per-link tallies and a
// transcript that are byte-identical to the sequential Send* formulation,
// no matter how the sender goroutines are scheduled.

// linkBuf is the per-link channel capacity. Star protocol phases put at
// most a handful of parcels in flight per link before the CP drains them;
// the buffer only needs to decouple sender completion from receiver
// progress, not to hold a whole protocol.
const linkBuf = 64

// parcel is one in-flight transfer on a link. prepaid parcels were
// charged by the sender (deterministic for a single sender goroutine,
// the scatter direction); the rest are charged by the receiver at Recv
// (deterministic when the receiver drains in a fixed order, the gather
// direction).
type parcel struct {
	tag     string
	words   int64
	prepaid bool
	floats  []float64
	ints    []int
	u64s    []uint64
}

// link returns the channel carrying parcels from `from` to `to`,
// creating it on first use.
func (n *Network) link(from, to int) chan parcel {
	n.check(from)
	n.check(to)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.links == nil {
		n.links = make(map[[2]int]chan parcel)
	}
	key := [2]int{from, to}
	ch, ok := n.links[key]
	if !ok {
		ch = make(chan parcel, linkBuf)
		n.links[key] = ch
	}
	return ch
}

// post enqueues a parcel without charging; accounting happens at Recv.
func (n *Network) post(from, to int, p parcel) {
	if from == to {
		panic("comm: post to self (local movement needs no link)")
	}
	n.link(from, to) <- p
}

// PostFloats asynchronously sends a float64 payload from one server to
// another over the channel link, copying it so the receiver cannot alias
// the sender's memory. One word per element is charged when the receiver
// calls RecvFloats.
func (n *Network) PostFloats(from, to int, tag string, data []float64) {
	out := make([]float64, len(data))
	copy(out, data)
	n.post(from, to, parcel{tag: tag, words: int64(len(data)), floats: out})
}

// PostInts asynchronously sends an int payload (see PostFloats).
func (n *Network) PostInts(from, to int, tag string, data []int) {
	out := make([]int, len(data))
	copy(out, data)
	n.post(from, to, parcel{tag: tag, words: int64(len(data)), ints: out})
}

// PostUint64s asynchronously sends a uint64 payload (see PostFloats).
func (n *Network) PostUint64s(from, to int, tag string, data []uint64) {
	out := make([]uint64, len(data))
	copy(out, data)
	n.post(from, to, parcel{tag: tag, words: int64(len(data)), u64s: out})
}

// SendFloatsAsync charges the transfer immediately — sender-side
// accounting, deterministic for a single sender goroutine such as the CP
// scattering to all servers — and posts the payload; the receiver
// collects it with CollectFloats, which does not charge again.
func (n *Network) SendFloatsAsync(from, to int, tag string, data []float64) {
	n.Charge(from, to, tag, int64(len(data)))
	out := make([]float64, len(data))
	copy(out, data)
	n.post(from, to, parcel{tag: tag, words: int64(len(data)), prepaid: true, floats: out})
}

// CollectFloats blocks for a prepaid parcel (sent with SendFloatsAsync)
// and returns its payload without charging.
func (n *Network) CollectFloats(from, to int, tag string) []float64 {
	p := n.take(from, to, tag)
	if !p.prepaid {
		panic(fmt.Sprintf("comm: collect of unpaid parcel %q on link %d→%d (use Recv*)", tag, from, to))
	}
	return p.floats
}

// take blocks for the next parcel on the from→to link, aborting instead
// of deadlocking if a concurrently running server role panics before
// posting (see RunServers).
func (n *Network) take(from, to int, tag string) parcel {
	ch := n.link(from, to)
	n.mu.Lock()
	abort := n.abort
	n.mu.Unlock()
	var p parcel
	if abort == nil {
		p = <-ch
	} else {
		select {
		case p = <-ch:
		case <-abort:
			panic(fmt.Sprintf("comm: recv on link %d→%d aborted: a peer server role failed", from, to))
		}
	}
	if p.tag != tag {
		panic(fmt.Sprintf("comm: recv tag %q on link %d→%d, want %q", p.tag, from, to, tag))
	}
	return p
}

// recv blocks for the next parcel on the from→to link, verifies the tag
// (a mismatch is a protocol bug — the links are typed per phase), and
// commits the accounting.
func (n *Network) recv(from, to int, tag string) parcel {
	p := n.take(from, to, tag)
	if p.prepaid {
		panic(fmt.Sprintf("comm: recv of prepaid parcel %q on link %d→%d (use CollectFloats)", tag, from, to))
	}
	n.Charge(from, to, p.tag, p.words)
	return p
}

// RecvFloats blocks until a float64 parcel with the given tag arrives on
// the from→to link and charges it exactly as SendFloats would have.
func (n *Network) RecvFloats(from, to int, tag string) []float64 {
	return n.recv(from, to, tag).floats
}

// RecvInts is RecvFloats for int payloads.
func (n *Network) RecvInts(from, to int, tag string) []int {
	return n.recv(from, to, tag).ints
}

// RecvUint64s is RecvFloats for uint64 payloads.
func (n *Network) RecvUint64s(from, to int, tag string) []uint64 {
	return n.recv(from, to, tag).u64s
}

// RunServers executes role(t) for every server t = 0…s−1, each in its own
// goroutine, and returns when all roles have finished. A panic in any
// role aborts every role blocked on a link receive (so a dead sender
// cannot deadlock its receivers) and is re-raised in the caller; when
// several roles fail, the re-raised panic is the first one observed.
func (n *Network) RunServers(role func(server int)) {
	abort := make(chan struct{})
	n.mu.Lock()
	n.abort = abort
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.abort = nil
		n.mu.Unlock()
	}()

	var wg sync.WaitGroup
	var abortOnce sync.Once
	panics := make(chan any, n.servers)
	for t := 0; t < n.servers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- fmt.Sprintf("comm: server %d: %v", t, r)
					abortOnce.Do(func() { close(abort) })
				}
			}()
			role(t)
		}(t)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// GatherFloats runs one concurrent gather round: every server computes
// produce(t) in its own goroutine, non-CP servers post the result to the
// CP under tag, and the CP receives in server order 1…s−1 — so the
// accounting is deterministic — while its own contribution travels for
// free. The returned slice holds every server's payload by server index.
func (n *Network) GatherFloats(tag string, produce func(server int) []float64) [][]float64 {
	out := make([][]float64, n.servers)
	n.RunServers(func(t int) {
		data := produce(t)
		if t != CP {
			n.PostFloats(t, CP, tag, data)
			return
		}
		out[CP] = data
		for from := 1; from < n.servers; from++ {
			out[from] = n.RecvFloats(from, CP, tag)
		}
	})
	return out
}

// Fork returns a private recording fabric with the same server count:
// charges against it accumulate locally (with a full transcript) and do
// not touch the parent until Join. Forks let independent protocol phases
// run concurrently and still commit their accounting in a canonical
// order.
func (n *Network) Fork() *Network {
	f := NewNetwork(n.servers)
	f.trace = true
	return f
}

// Join replays each fork's transcript into n, in argument order, exactly
// as if the forked phases had run sequentially at this point. Tallies,
// message counts and (when tracing) the transcript are therefore
// independent of how the forked phases were scheduled.
func (n *Network) Join(forks ...*Network) {
	for _, f := range forks {
		if f.servers != n.servers {
			panic(fmt.Sprintf("comm: joining fork with %d servers into network with %d", f.servers, n.servers))
		}
		for _, m := range f.log {
			n.Charge(m.From, m.To, m.Tag, m.Words)
		}
	}
}

// LinkBreakdown returns words charged per directed (from, to) link, as a
// copied map.
func (n *Network) LinkBreakdown() map[[2]int]int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[[2]int]int64, len(n.byLink))
	for k, v := range n.byLink {
		out[k] = v
	}
	return out
}
