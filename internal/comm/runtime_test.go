package comm

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// scriptSequential is a small star protocol written against the classic
// synchronous API: seed broadcast, per-server upload, per-server reply.
func scriptSequential(n *Network, payload [][]float64) {
	n.BroadcastSeed(CP, "seed", 7)
	for t := 1; t < n.Servers(); t++ {
		n.SendFloats(t, CP, "up", payload[t])
	}
	for t := 1; t < n.Servers(); t++ {
		n.SendScalar(CP, t, "down", 1)
	}
}

// scriptConcurrent is the same protocol with every server in its own
// goroutine moving payloads over the channel links. The gather direction
// is charged by the CP draining its links in server order; the scatter
// direction is charged by the CP as the single sender — so the accounting
// must match the sequential formulation byte for byte.
func scriptConcurrent(n *Network, payload [][]float64) {
	n.BroadcastSeed(CP, "seed", 7)
	n.RunServers(func(t int) {
		if t != CP {
			n.PostFloats(t, CP, "up", payload[t])
			if got := n.CollectFloats(CP, t, "down"); len(got) != 1 {
				panic("bad reply")
			}
			return
		}
		for from := 1; from < n.Servers(); from++ {
			n.RecvFloats(from, CP, "up")
		}
		for to := 1; to < n.Servers(); to++ {
			n.SendFloatsAsync(CP, to, "down", []float64{1})
		}
	})
}

func TestConcurrentRuntimeMatchesSequentialAccounting(t *testing.T) {
	const s = 5
	payload := make([][]float64, s)
	for t2 := range payload {
		payload[t2] = make([]float64, 3+2*t2)
	}
	seq := NewNetwork(s)
	seq.EnableTrace()
	scriptSequential(seq, payload)

	conc := NewNetwork(s)
	conc.EnableTrace()
	scriptConcurrent(conc, payload)

	if seq.Words() != conc.Words() {
		t.Fatalf("words: sequential %d, concurrent %d", seq.Words(), conc.Words())
	}
	if seq.Messages() != conc.Messages() {
		t.Fatalf("messages: sequential %d, concurrent %d", seq.Messages(), conc.Messages())
	}
	if !reflect.DeepEqual(seq.Breakdown(), conc.Breakdown()) {
		t.Fatalf("per-tag: sequential %v, concurrent %v", seq.Breakdown(), conc.Breakdown())
	}
	if !reflect.DeepEqual(seq.LinkBreakdown(), conc.LinkBreakdown()) {
		t.Fatalf("per-link: sequential %v, concurrent %v", seq.LinkBreakdown(), conc.LinkBreakdown())
	}
	if !reflect.DeepEqual(seq.Transcript(), conc.Transcript()) {
		t.Fatalf("transcripts differ:\nsequential %v\nconcurrent %v", seq.Transcript(), conc.Transcript())
	}
}

func TestPostCopiesPayload(t *testing.T) {
	n := NewNetwork(2)
	src := []float64{1, 2}
	n.PostFloats(1, 0, "x", src)
	src[0] = 99
	got := n.RecvFloats(1, 0, "x")
	if got[0] != 1 {
		t.Fatal("receiver aliases sender memory")
	}
	if n.Words() != 2 || n.Messages() != 1 {
		t.Fatalf("accounting after recv: %d words, %d msgs", n.Words(), n.Messages())
	}
}

func TestTypedPostRecv(t *testing.T) {
	n := NewNetwork(2)
	n.PostInts(1, 0, "i", []int{4, 5, 6})
	n.PostUint64s(1, 0, "u", []uint64{7})
	if got := n.RecvInts(1, 0, "i"); len(got) != 3 || got[2] != 6 {
		t.Fatalf("ints payload %v", got)
	}
	if got := n.RecvUint64s(1, 0, "u"); len(got) != 1 || got[0] != 7 {
		t.Fatalf("uint64s payload %v", got)
	}
	if n.Words() != 4 {
		t.Fatalf("words = %d", n.Words())
	}
}

func TestRecvTagMismatchPanics(t *testing.T) {
	n := NewNetwork(2)
	n.PostFloats(1, 0, "right", []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tag mismatch")
		}
	}()
	n.RecvFloats(1, 0, "wrong")
}

func TestGatherFloats(t *testing.T) {
	n := NewNetwork(4)
	n.EnableTrace()
	rows := n.GatherFloats("g", func(t int) []float64 {
		return []float64{float64(t), float64(t)}
	})
	for t2, row := range rows {
		if len(row) != 2 || row[0] != float64(t2) {
			t.Fatalf("server %d payload %v", t2, row)
		}
	}
	// 3 non-CP servers × 2 words; the CP's own contribution is free.
	if n.Words() != 6 || n.Messages() != 3 {
		t.Fatalf("gather accounting: %d words, %d msgs", n.Words(), n.Messages())
	}
	// The CP drains in server order: the transcript is deterministic.
	tr := n.Transcript()
	for i, m := range tr {
		if m.From != i+1 || m.To != CP {
			t.Fatalf("transcript[%d] = %+v, want from %d", i, m, i+1)
		}
	}
}

func TestForkJoinReplaysCharges(t *testing.T) {
	n := NewNetwork(3)
	n.EnableTrace()
	n.SendScalar(1, 0, "pre", 1)

	f1, f2 := n.Fork(), n.Fork()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); f1.SendFloats(1, 0, "a", make([]float64, 5)) }()
	go func() { defer wg.Done(); f2.SendFloats(2, 0, "b", make([]float64, 7)) }()
	wg.Wait()
	if n.Words() != 1 {
		t.Fatalf("fork charges leaked into parent: %d words", n.Words())
	}
	n.Join(f1, f2)

	if n.Words() != 13 || n.Messages() != 3 {
		t.Fatalf("after join: %d words, %d msgs", n.Words(), n.Messages())
	}
	b := n.Breakdown()
	if b["a"] != 5 || b["b"] != 7 {
		t.Fatalf("per-tag after join: %v", b)
	}
	// Join order, not goroutine scheduling, fixes the transcript.
	tr := n.Transcript()
	if len(tr) != 3 || tr[1].Tag != "a" || tr[2].Tag != "b" {
		t.Fatalf("transcript %v", tr)
	}
}

func TestForkServerMismatchPanics(t *testing.T) {
	n := NewNetwork(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Join(NewNetwork(2))
}

// TestRunServersPanicUnblocksReceivers is the no-deadlock guarantee: a
// role that dies before posting must abort the peer blocked on its link,
// and the whole RunServers call must panic instead of hanging.
func TestRunServersPanicUnblocksReceivers(t *testing.T) {
	n := NewNetwork(3)
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		n.RunServers(func(t int) {
			switch t {
			case 1:
				panic("server 1 died before posting")
			case CP:
				n.RecvFloats(1, CP, "up") // would block forever without the abort
			}
		})
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("RunServers returned without propagating the panic")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunServers deadlocked on a dead sender")
	}
	// The fabric is usable again afterwards.
	n.RunServers(func(t int) {
		if t == 1 {
			n.PostFloats(1, CP, "ok", []float64{1})
		}
		if t == CP {
			n.RecvFloats(1, CP, "ok")
		}
	})
	if n.Words() != 1 {
		t.Fatalf("fabric unusable after aborted round: %d words", n.Words())
	}
}

func TestRunServersPanicPropagates(t *testing.T) {
	n := NewNetwork(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from server role")
		}
	}()
	n.RunServers(func(t int) {
		if t == 2 {
			panic("boom")
		}
	})
}

// TestConcurrentRuntimeHammer drives the runtime from many goroutines at
// once — posts, receives, direct charges and fork/join — and checks the
// final tallies. Run with -race this is the fabric's thread-safety test.
func TestConcurrentRuntimeHammer(t *testing.T) {
	const s, rounds = 8, 200
	n := NewNetwork(s)
	var wg sync.WaitGroup
	for from := 1; from < s; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n.PostFloats(from, CP, "h", []float64{1, 2})
				n.Charge(from, CP, "direct", 1)
			}
		}(from)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for from := 1; from < s; from++ {
			for i := 0; i < rounds; i++ {
				n.RecvFloats(from, CP, "h")
			}
		}
	}()
	forks := make([]*Network, 4)
	for i := range forks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := n.Fork()
			for j := 0; j < rounds; j++ {
				f.SendScalar(1, CP, "forked", 1)
			}
			forks[i] = f
		}(i)
	}
	wg.Wait()
	n.Join(forks...)

	wantWords := int64((s-1)*rounds*2 + (s-1)*rounds + len(forks)*rounds)
	if n.Words() != wantWords {
		t.Fatalf("words = %d, want %d", n.Words(), wantWords)
	}
	b := n.Breakdown()
	if b["h"] != int64((s-1)*rounds*2) || b["direct"] != int64((s-1)*rounds) || b["forked"] != int64(len(forks)*rounds) {
		t.Fatalf("per-tag tallies %v", b)
	}
}
