package comm

// This file is the multi-tenancy layer of the fabric. A Session is a
// namespaced view of one shared Network: it owns a private word/byte
// ledger, trace log and failure poison, and every frame it puts on the
// wire carries the session id in the top 16 bits of the stream field, so
// N concurrent protocol runs interleave on the same mem or TCP links
// without consuming each other's frames or corrupting each other's
// accounting. The pre-session single-occupancy behavior is exactly
// session 0 — the root Network's own ledger.
//
// Determinism: a session's accounting is committed by its own receivers
// in its own drain order (see runtime.go), and no session ever observes
// another session's frames. A job's per-session transcript is therefore
// bit-identical whether the job ran alone or interleaved with any number
// of concurrent tenants.

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrSessionsExhausted is returned by NewSession when all 65534 session
// ids are simultaneously live (id 0xFFFF is reserved for ControlStream).
var ErrSessionsExhausted = errors.New("comm: all 65534 session ids are live")

// ControlStream is the stream id reserved for fabric-control frames —
// heartbeat pings and their pongs. Session ids stop at 0xFFFE, so no
// tenant ever allocates a stream in the 0xFFFF namespace and control
// frames can never collide with (or be consumed by) protocol traffic.
const ControlStream uint32 = 0xFFFF << 16

// sessionDiscarder is implemented by transports that can drop the queued
// frames of one session namespace without touching other tenants.
type sessionDiscarder interface{ discardSession(id uint16) }

// Session is a namespaced view of the fabric: a private ledger sharing
// the root Network's transport and server roster. Protocol code runs
// against the embedded Network exactly as it would against the root;
// Fork/Join sub-ledgers stay inside the session's stream namespace.
type Session struct {
	*Network
	parent *Network
	closed bool
}

// NewSession opens a fresh tenancy namespace on the fabric. Only the root
// Network (session 0) can mint sessions; ids are recycled after Close.
func (n *Network) NewSession() (*Session, error) {
	if n.session != 0 {
		return nil, errors.New("comm: sessions do not nest (mint from the root fabric)")
	}
	n.sessMu.Lock()
	var id uint16
	if k := len(n.sessFree); k > 0 {
		id = n.sessFree[k-1]
		n.sessFree = n.sessFree[:k-1]
	} else {
		if n.sessNext == 0xFFFE {
			n.sessMu.Unlock()
			return nil, ErrSessionsExhausted
		}
		n.sessNext++
		id = n.sessNext
	}
	n.sessMu.Unlock()

	s := &Session{
		Network: &Network{
			servers:   n.servers,
			tr:        n.tr,
			remote:    n.remote,
			session:   id,
			stream:    uint32(id) << 16,
			streamSeq: new(uint32),
			roundSeq:  new(int64),
			batch:     n.BatchSize(),
			ctl:       n.ctl,
		},
		parent: n,
	}
	s.Network.resetTallies()
	return s, nil
}

// ID returns the session's namespace id (1…65535; 0 is the root fabric).
func (s *Session) ID() uint16 { return s.Network.session }

// Recycle prepares a cleanly finished session for its next tenant
// without returning the id to the fabric: it zeroes the private ledger
// (tallies, trace log), restarts the round and fork-stream counters so
// the next run numbers rounds from 1 and never exhausts the 16-bit fork
// namespace, detaches the round observer, and restores the parent
// fabric's current batch setting. It reports false — leaving the
// session untouched — when the session is closed or poisoned by a
// failed round; such sessions must be torn down with Close, not reused.
//
// Callers must only recycle a session whose protocol run completed
// cleanly: every forked stream drained, no frames in flight. A recycled
// session is then observationally identical to a fresh NewSession that
// happened to receive the same id.
func (s *Session) Recycle() bool {
	if s.closed {
		return false
	}
	n := s.Network
	n.mu.Lock()
	poisoned := n.failed != nil
	n.mu.Unlock()
	if poisoned {
		return false
	}
	n.ResetLedger()
	n.onRound = nil
	atomic.StoreInt64(n.roundSeq, 0)
	atomic.StoreUint32(n.streamSeq, 0)
	n.SetBatchSize(s.parent.BatchSize())
	return true
}

// Close discards any frames still queued under the session's streams and
// returns the id to the root fabric for reuse. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if d, ok := s.Network.tr.(sessionDiscarder); ok {
		d.discardSession(s.Network.session)
	}
	p := s.parent
	p.sessMu.Lock()
	p.sessFree = append(p.sessFree, s.Network.session)
	p.sessMu.Unlock()
}

// String identifies the session in logs and errors.
func (s *Session) String() string {
	return fmt.Sprintf("comm.Session(%d)", s.Network.session)
}
