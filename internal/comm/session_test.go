package comm

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// driveSession runs a small fixed protocol (a payload round plus a forked
// gather) against the given ledger and returns its per-tag words.
func driveSession(t *testing.T, n *Network, scale int) map[string]int64 {
	t.Helper()
	payload := make([]float64, 4*scale)
	for i := range payload {
		payload[i] = float64(i + scale)
	}
	err := n.RunRound(context.Background(), Round{
		Op:       1,
		Data:     payload,
		Kind:     KindFloats,
		ReqTag:   "sess/req",
		RespTag:  "sess/resp",
		RespKind: KindFloats,
		Local: func(srv int) ([]float64, error) {
			return []float64{float64(srv) * payload[0]}, nil
		},
		OnResp: func(srv int, got []float64) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	f := n.Fork()
	f.GatherFloats("sess/gather", func(srv int) []float64 {
		return []float64{float64(srv), float64(scale)}
	})
	n.Join(f)
	return n.Breakdown()
}

// TestSessionIsolation interleaves many sessions on one shared in-memory
// fabric and demands each session's ledger be bit-identical to the same
// protocol run alone on a fresh fabric — the multi-tenancy contract.
func TestSessionIsolation(t *testing.T) {
	const s, k = 4, 8
	root := NewNetwork(s)

	// Reference ledgers: each scale run alone.
	want := make([]map[string]int64, k)
	for i := 0; i < k; i++ {
		want[i] = driveSession(t, NewNetwork(s), i+1)
	}

	got := make([]map[string]int64, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		sess, err := root.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sess *Session) {
			defer wg.Done()
			defer sess.Close()
			got[i] = driveSession(t, sess.Network, i+1)
		}(i, sess)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("session %d ledger drifted under concurrency:\nalone    %v\nshared   %v", i, want[i], got[i])
		}
	}
	if w := root.Words(); w != 0 {
		t.Fatalf("root ledger charged %d words by tenant traffic", w)
	}
}

// TestSessionIDRecycling closes sessions and expects their ids to be
// reused, with leftover queued frames discarded at Close.
func TestSessionIDRecycling(t *testing.T) {
	root := NewNetwork(3)
	a, err := root.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	id := a.ID()
	if id == 0 {
		t.Fatal("session got the root id 0")
	}
	// Leave a stray frame queued under the session's stream, then close.
	a.PostFloats(1, CP, "stray", []float64{1, 2, 3})
	a.Close()
	a.Close() // idempotent

	b, err := root.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.ID() != id {
		t.Fatalf("closed id %d not recycled (got %d)", id, b.ID())
	}
	// The recycled session must not see the stray frame: a fresh receive
	// with a cancel that fires immediately must abort, not deliver.
	cancel := make(chan struct{})
	close(cancel)
	if _, err := b.Transport().Recv(1, CP, b.Network.stream, cancel); err == nil {
		t.Fatal("stale frame survived session close into a recycled id")
	}
}

// TestSessionStreamNamespace checks the stream-id folding: every fork of a
// session allocates inside the session's 16-bit namespace.
func TestSessionStreamNamespace(t *testing.T) {
	root := NewNetwork(2)
	sess, err := root.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if got := SessionOf(sess.Network.stream); got != sess.ID() {
		t.Fatalf("session root stream in namespace %d, want %d", got, sess.ID())
	}
	for i := 0; i < 10; i++ {
		f := sess.Fork()
		if got := SessionOf(f.stream); got != sess.ID() {
			t.Fatalf("fork stream %#x escaped session namespace %d", f.stream, sess.ID())
		}
	}
	f := root.Fork()
	if got := SessionOf(f.stream); got != 0 {
		t.Fatalf("root fork stream %#x left namespace 0", f.stream)
	}
}

// TestSessionReset clears only the session's own tallies and queued
// frames, leaving other tenants untouched.
func TestSessionReset(t *testing.T) {
	root := NewNetwork(3)
	a, _ := root.NewSession()
	b, _ := root.NewSession()
	defer a.Close()
	defer b.Close()

	a.SendFloats(1, CP, "a/x", []float64{1, 2})
	b.PostFloats(1, CP, "b/x", []float64{3, 4, 5})
	a.Network.Reset()
	if a.Words() != 0 {
		t.Fatal("session reset kept tallies")
	}
	// b's queued frame must still be deliverable after a's reset.
	got := b.RecvFloats(1, CP, "b/x")
	if len(got) != 3 || got[0] != 3 {
		t.Fatalf("tenant b lost its frame to tenant a's reset: %v", got)
	}
}
