package comm

// TCP transport: the coordinator's side of a cluster that genuinely spans
// OS processes. Each non-CP server is a worker process reached over one
// TCP connection; frames travel length-prefixed, and a per-connection
// reader demultiplexes worker replies by stream id (into the same
// frameQueue the in-memory transport uses) so concurrent sessions and
// forked protocol phases can interleave on one physical link without
// stealing each other's frames.
//
// The worker side of the wire protocol (handshake, share installation and
// the op-execution loop) lives in internal/cluster; this file only moves
// frames.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MaxWireFrameBytes bounds a length prefix the reader will accept before
// allocating; anything larger is a corrupt or hostile stream.
const MaxWireFrameBytes = FrameHeaderLen + 2*MaxTagLen + 8*MaxFrameWords

// WriteWireFrame writes one length-prefixed frame to w as a single
// scatter-gather write (one writev syscall on a TCP conn). The frame
// buffer is not consumed — the caller keeps ownership.
func WriteWireFrame(w io.Writer, frame []byte) error {
	if len(frame) > MaxWireFrameBytes {
		return fmt.Errorf("comm: frame of %d bytes exceeds wire cap", len(frame))
	}
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], uint32(len(frame)))
	bufs := net.Buffers{pfx[:], frame}
	_, err := bufs.WriteTo(w)
	return err
}

// WriteWireBatch writes frames to w as one length-prefixed KindBatch
// envelope in a single scatter-gather write: outer prefix, envelope
// header and every sub-frame prefix live in one pooled block, and the
// frame buffers themselves are gathered in place — no payload copy.
// from/to/stream stamp the envelope header so a reader can route the
// whole envelope before splitting it. Unlike WriteWireFrame, WriteWireBatch
// takes ownership of every frame buffer and recycles them once written.
func WriteWireBatch(w io.Writer, from, to int, stream uint32, frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	if len(frames) == 1 {
		err := WriteWireFrame(w, frames[0])
		putBuf(frames[0])
		return err
	}
	if len(frames) > MaxBatchSubFrames {
		return fmt.Errorf("comm: batch of %d frames exceeds cap %d", len(frames), MaxBatchSubFrames)
	}
	inner := FrameHeaderLen
	for _, fr := range frames {
		inner += 4 + len(fr)
	}
	if inner > MaxWireFrameBytes {
		return fmt.Errorf("comm: batch envelope of %d bytes exceeds wire cap", inner)
	}
	env := &Frame{Kind: KindBatch, From: from, To: to, Stream: stream}
	block := getBuf(4 + FrameHeaderLen + 4*len(frames))
	binary.BigEndian.PutUint32(block[0:], uint32(inner))
	putHeader(block[4:], env, len(frames))
	bufs := make(net.Buffers, 0, 2*len(frames))
	at := 4 + FrameHeaderLen
	binary.BigEndian.PutUint32(block[at:], uint32(len(frames[0])))
	bufs = append(bufs, block[:at+4], frames[0])
	at += 4
	for _, fr := range frames[1:] {
		binary.BigEndian.PutUint32(block[at:], uint32(len(fr)))
		bufs = append(bufs, block[at:at+4], fr)
		at += 4
	}
	_, err := bufs.WriteTo(w)
	putBuf(block)
	for _, fr := range frames {
		putBuf(fr)
	}
	return err
}

// ReadWireFrame reads one length-prefixed frame from r into a pooled
// buffer (recycle with ReleaseFrame/putBuf once decoded), rejecting
// oversized prefixes before allocating.
func ReadWireFrame(r io.Reader) ([]byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < FrameHeaderLen || int64(n) > int64(MaxWireFrameBytes) {
		return nil, fmt.Errorf("comm: wire frame length %d out of range", n)
	}
	buf := getBuf(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		putBuf(buf)
		return nil, err
	}
	return buf, nil
}

// TCPTransport is the coordinator-side transport: conns[t] carries frames
// to and from the worker hosting server t (nil for locally hosted
// servers, including the CP itself). Worker frames always flow toward the
// CP, so inbound queues are keyed (worker, CP, stream).
type TCPTransport struct {
	conns []net.Conn
	wmu   []sync.Mutex
	q     *frameQueue

	// onDown, when set, is called once per accepted link failure with the
	// worker index and the wrapped ErrWorkerLost cause — the membership
	// layer's fast path for noticing a dead connection before the next
	// missed heartbeat.
	downMu sync.Mutex
	onDown func(worker int, err error)

	// The batch side ledger: envelopes sent/received and their framing
	// overhead in bytes. Deliberately outside the word/byte ledger — the
	// transcript must be bit-identical at every batch size, so envelope
	// framing can never be charged under a tag.
	batchSent int64
	batchRecv int64
	batchOver int64
}

// NewTCPTransport wraps established worker connections (index = server
// id; nil entries are locally hosted) and starts one reader per
// connection.
func NewTCPTransport(conns []net.Conn) *TCPTransport {
	t := &TCPTransport{
		conns: conns,
		wmu:   make([]sync.Mutex, len(conns)),
		q:     newFrameQueue(),
	}
	for id, c := range conns {
		if c != nil {
			go t.readLoop(id, c, t.q.gen(id))
		}
	}
	return t
}

// SetLinkDownHandler registers the callback fired (from a reader
// goroutine) when a worker connection dies. Only the first failure per
// link generation fires it; failures during Close or on an
// already-replaced connection are suppressed.
func (t *TCPTransport) SetLinkDownHandler(fn func(worker int, err error)) {
	t.downMu.Lock()
	t.onDown = fn
	t.downMu.Unlock()
}

// linkDown poisons a link's queues and notifies the membership layer.
// Only the first failure of the link's current generation is accepted;
// a stale reader (its connection already replaced) is ignored.
func (t *TCPTransport) linkDown(from int, gen uint64, cause error) {
	err := fmt.Errorf("%w: worker %d link: %v", ErrWorkerLost, from, cause)
	if !t.q.fail(from, gen, err) {
		return
	}
	t.downMu.Lock()
	fn := t.onDown
	t.downMu.Unlock()
	if fn != nil {
		fn(from, err)
	}
}

// CloseLink severs the connection to one worker without replacing it:
// the link's reader observes the close and poisons the link exactly as
// a crashed worker would. This is the failure detector's enforcement
// arm and the chaos seam for failover tests.
func (t *TCPTransport) CloseLink(to int) error {
	if to < 0 || to >= len(t.conns) {
		return fmt.Errorf("comm: no TCP slot for server %d", to)
	}
	t.wmu[to].Lock()
	c := t.conns[to]
	t.wmu[to].Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// Replace swaps the connection to worker `to` for a fresh one: the old
// connection (if any) is closed, the link's poison and queued frames are
// discarded, and a new reader starts under the advanced link generation —
// anything the old reader still reports is ignored as stale.
func (t *TCPTransport) Replace(to int, c net.Conn) error {
	if to < 0 || to >= len(t.conns) {
		return fmt.Errorf("comm: no TCP slot for server %d", to)
	}
	t.wmu[to].Lock()
	defer t.wmu[to].Unlock()
	if old := t.conns[to]; old != nil {
		old.Close()
	}
	t.conns[to] = c
	gen := t.q.resetLink(to)
	go t.readLoop(to, c, gen)
	return nil
}

func (t *TCPTransport) readLoop(from int, c net.Conn, gen uint64) {
	for {
		buf, err := ReadWireFrame(c)
		if err != nil {
			t.linkDown(from, gen, err)
			return
		}
		if len(buf) >= FrameHeaderLen && Kind(buf[3]) == KindBatch {
			// A reply envelope: split it and queue each sub-frame under
			// its own stream. The sub-slices alias the envelope buffer,
			// which is about to be recycled, so each one is copied into a
			// fresh pooled buffer the consumer can recycle independently
			// (putBuf classifies by backing capacity — recycling
			// overlapping sub-slices would corrupt the pool).
			env, err := DecodeFrame(buf)
			if err != nil {
				putBuf(buf)
				t.linkDown(from, gen, err)
				return
			}
			atomic.AddInt64(&t.batchRecv, 1)
			atomic.AddInt64(&t.batchOver, int64(4+FrameHeaderLen+4*len(env.Sub)))
			for _, sub := range env.Sub {
				cp := getBuf(len(sub))
				copy(cp, sub)
				stream, err := frameStream(cp)
				if err != nil {
					stream = 0
				}
				if err := t.q.push(queueKey{from: from, to: CP, stream: stream}, gen, cp); err != nil {
					putBuf(buf)
					return // transport closed or link replaced underneath the reader
				}
			}
			putBuf(buf)
			continue
		}
		stream, err := frameStream(buf)
		if err != nil {
			stream = 0
		}
		if err := t.q.push(queueKey{from: from, to: CP, stream: stream}, gen, buf); err != nil {
			return // transport closed or link replaced underneath the reader
		}
	}
}

// Send implements Transport: frames can only be pushed toward workers
// (the coordinator's outbound direction); worker→coordinator frames
// arrive via the readers. Send takes ownership of the frame buffer and
// recycles it once written.
func (t *TCPTransport) Send(from, to int, frame []byte) error {
	if to < 0 || to >= len(t.conns) {
		putBuf(frame)
		return fmt.Errorf("comm: no TCP link to server %d", to)
	}
	t.wmu[to].Lock()
	c := t.conns[to]
	if c == nil {
		t.wmu[to].Unlock()
		putBuf(frame)
		return fmt.Errorf("comm: no TCP link to server %d", to)
	}
	err := WriteWireFrame(c, frame)
	t.wmu[to].Unlock()
	putBuf(frame)
	if err != nil {
		return fmt.Errorf("%w: send to worker %d: %v", ErrWorkerLost, to, err)
	}
	return nil
}

// SendBatch implements batchSender: the frames travel as one KindBatch
// envelope in a single scatter-gather write, and the receiver splits them
// back into individual frames before they reach any ledger.
func (t *TCPTransport) SendBatch(from, to int, frames [][]byte) error {
	if len(frames) == 1 {
		return t.Send(from, to, frames[0])
	}
	if to < 0 || to >= len(t.conns) {
		for _, fr := range frames {
			putBuf(fr)
		}
		return fmt.Errorf("comm: no TCP link to server %d", to)
	}
	stream, err := frameStream(frames[0])
	if err != nil {
		stream = 0
	}
	atomic.AddInt64(&t.batchSent, 1)
	atomic.AddInt64(&t.batchOver, int64(4+FrameHeaderLen+4*len(frames)))
	t.wmu[to].Lock()
	c := t.conns[to]
	if c == nil {
		t.wmu[to].Unlock()
		for _, fr := range frames {
			putBuf(fr)
		}
		return fmt.Errorf("comm: no TCP link to server %d", to)
	}
	err = WriteWireBatch(c, from, to, stream, frames)
	t.wmu[to].Unlock()
	if err != nil {
		return fmt.Errorf("%w: batch send to worker %d: %v", ErrWorkerLost, to, err)
	}
	return nil
}

// BatchStats reports the batch envelopes this transport moved and their
// framing overhead in bytes — the side ledger for cost the word/byte
// ledger deliberately does not see (envelopes are transport framing; the
// transcript is identical at every batch size).
func (t *TCPTransport) BatchStats() (sent, received, overheadBytes int64) {
	return atomic.LoadInt64(&t.batchSent), atomic.LoadInt64(&t.batchRecv), atomic.LoadInt64(&t.batchOver)
}

// Recv implements Transport: the next frame sent by worker `from` on the
// given stream.
func (t *TCPTransport) Recv(from, to int, stream uint32, cancel <-chan struct{}) ([]byte, error) {
	return t.q.wait(queueKey{from: from, to: to, stream: stream}, cancel)
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.q.close()
	var first error
	for i := range t.conns {
		t.wmu[i].Lock()
		c := t.conns[i]
		t.conns[i] = nil
		t.wmu[i].Unlock()
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// reset drops queued frames between protocol runs on a persistent
// cluster (there should be none after a clean run).
func (t *TCPTransport) reset() { t.q.reset() }

// discardSession implements sessionDiscarder.
func (t *TCPTransport) discardSession(id uint16) { t.q.discardSession(id) }
