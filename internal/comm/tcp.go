package comm

// TCP transport: the coordinator's side of a cluster that genuinely spans
// OS processes. Each non-CP server is a worker process reached over one
// TCP connection; frames travel length-prefixed, and a per-connection
// reader demultiplexes worker replies by stream id (into the same
// frameQueue the in-memory transport uses) so concurrent sessions and
// forked protocol phases can interleave on one physical link without
// stealing each other's frames.
//
// The worker side of the wire protocol (handshake, share installation and
// the op-execution loop) lives in internal/cluster; this file only moves
// frames.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxWireFrameBytes bounds a length prefix the reader will accept before
// allocating; anything larger is a corrupt or hostile stream.
const MaxWireFrameBytes = FrameHeaderLen + 2*MaxTagLen + 8*MaxFrameWords

// WriteWireFrame writes one length-prefixed frame to w.
func WriteWireFrame(w io.Writer, frame []byte) error {
	if len(frame) > MaxWireFrameBytes {
		return fmt.Errorf("comm: frame of %d bytes exceeds wire cap", len(frame))
	}
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], uint32(len(frame)))
	if _, err := w.Write(pfx[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// ReadWireFrame reads one length-prefixed frame from r, rejecting
// oversized prefixes before allocating.
func ReadWireFrame(r io.Reader) ([]byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < FrameHeaderLen || int64(n) > int64(MaxWireFrameBytes) {
		return nil, fmt.Errorf("comm: wire frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// TCPTransport is the coordinator-side transport: conns[t] carries frames
// to and from the worker hosting server t (nil for locally hosted
// servers, including the CP itself). Worker frames always flow toward the
// CP, so inbound queues are keyed (worker, CP, stream).
type TCPTransport struct {
	conns []net.Conn
	wmu   []sync.Mutex
	q     *frameQueue
}

// NewTCPTransport wraps established worker connections (index = server
// id; nil entries are locally hosted) and starts one reader per
// connection.
func NewTCPTransport(conns []net.Conn) *TCPTransport {
	t := &TCPTransport{
		conns: conns,
		wmu:   make([]sync.Mutex, len(conns)),
		q:     newFrameQueue(),
	}
	for id, c := range conns {
		if c != nil {
			go t.readLoop(id, c)
		}
	}
	return t
}

func (t *TCPTransport) readLoop(from int, c net.Conn) {
	for {
		buf, err := ReadWireFrame(c)
		if err != nil {
			t.q.fail(fmt.Errorf("comm: worker %d link: %w", from, err))
			return
		}
		stream, err := frameStream(buf)
		if err != nil {
			stream = 0
		}
		if err := t.q.push(queueKey{from: from, to: CP, stream: stream}, buf); err != nil {
			return // transport closed underneath the reader
		}
	}
}

// Send implements Transport: frames can only be pushed toward workers
// (the coordinator's outbound direction); worker→coordinator frames
// arrive via the readers.
func (t *TCPTransport) Send(from, to int, frame []byte) error {
	if to < 0 || to >= len(t.conns) || t.conns[to] == nil {
		return fmt.Errorf("comm: no TCP link to server %d", to)
	}
	t.wmu[to].Lock()
	defer t.wmu[to].Unlock()
	return WriteWireFrame(t.conns[to], frame)
}

// Recv implements Transport: the next frame sent by worker `from` on the
// given stream.
func (t *TCPTransport) Recv(from, to int, stream uint32, cancel <-chan struct{}) ([]byte, error) {
	return t.q.wait(queueKey{from: from, to: to, stream: stream}, cancel)
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.q.close()
	var first error
	for _, c := range t.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// reset drops queued frames between protocol runs on a persistent
// cluster (there should be none after a clean run).
func (t *TCPTransport) reset() { t.q.reset() }

// discardSession implements sessionDiscarder.
func (t *TCPTransport) discardSession(id uint16) { t.q.discardSession(id) }
