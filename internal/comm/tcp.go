package comm

// TCP transport: the coordinator's side of a cluster that genuinely spans
// OS processes. Each non-CP server is a worker process reached over one
// TCP connection; frames travel length-prefixed, and a per-connection
// reader demultiplexes worker replies by stream id so concurrently forked
// protocol phases can interleave on one physical link without stealing
// each other's frames.
//
// The worker side of the wire protocol (handshake, share installation and
// the op-execution loop) lives in internal/cluster; this file only moves
// frames.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxWireFrameBytes bounds a length prefix the reader will accept before
// allocating; anything larger is a corrupt or hostile stream.
const MaxWireFrameBytes = FrameHeaderLen + 2*MaxTagLen + 8*MaxFrameWords

// WriteWireFrame writes one length-prefixed frame to w.
func WriteWireFrame(w io.Writer, frame []byte) error {
	if len(frame) > MaxWireFrameBytes {
		return fmt.Errorf("comm: frame of %d bytes exceeds wire cap", len(frame))
	}
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], uint32(len(frame)))
	if _, err := w.Write(pfx[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// ReadWireFrame reads one length-prefixed frame from r, rejecting
// oversized prefixes before allocating.
func ReadWireFrame(r io.Reader) ([]byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < FrameHeaderLen || int64(n) > int64(MaxWireFrameBytes) {
		return nil, fmt.Errorf("comm: wire frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// tcpQueueKey addresses one (sender, stream) reply queue.
type tcpQueueKey struct {
	from   int
	stream uint32
}

// TCPTransport is the coordinator-side transport: conns[t] carries frames
// to and from the worker hosting server t (nil for locally hosted
// servers, including the CP itself).
type TCPTransport struct {
	conns []net.Conn
	wmu   []sync.Mutex

	mu     sync.Mutex
	queues map[tcpQueueKey][][]byte
	notify chan struct{}
	err    error
	closed bool
}

// NewTCPTransport wraps established worker connections (index = server
// id; nil entries are locally hosted) and starts one reader per
// connection.
func NewTCPTransport(conns []net.Conn) *TCPTransport {
	t := &TCPTransport{
		conns:  conns,
		wmu:    make([]sync.Mutex, len(conns)),
		queues: make(map[tcpQueueKey][][]byte),
		notify: make(chan struct{}),
	}
	for id, c := range conns {
		if c != nil {
			go t.readLoop(id, c)
		}
	}
	return t
}

func (t *TCPTransport) readLoop(from int, c net.Conn) {
	for {
		buf, err := ReadWireFrame(c)
		if err != nil {
			t.mu.Lock()
			if t.err == nil && !t.closed {
				t.err = fmt.Errorf("comm: worker %d link: %w", from, err)
			}
			close(t.notify)
			t.notify = make(chan struct{})
			t.mu.Unlock()
			return
		}
		stream, err := frameStream(buf)
		if err != nil {
			stream = 0
		}
		t.mu.Lock()
		key := tcpQueueKey{from: from, stream: stream}
		t.queues[key] = append(t.queues[key], buf)
		close(t.notify)
		t.notify = make(chan struct{})
		t.mu.Unlock()
	}
}

// Send implements Transport: frames can only be pushed toward workers
// (the coordinator's outbound direction); worker→coordinator frames
// arrive via the readers.
func (t *TCPTransport) Send(from, to int, frame []byte) error {
	if to < 0 || to >= len(t.conns) || t.conns[to] == nil {
		return fmt.Errorf("comm: no TCP link to server %d", to)
	}
	t.wmu[to].Lock()
	defer t.wmu[to].Unlock()
	return WriteWireFrame(t.conns[to], frame)
}

// Recv implements Transport: the next frame sent by worker `from` on the
// given stream.
func (t *TCPTransport) Recv(from, to int, stream uint32, cancel <-chan struct{}) ([]byte, error) {
	key := tcpQueueKey{from: from, stream: stream}
	for {
		t.mu.Lock()
		if q := t.queues[key]; len(q) > 0 {
			buf := q[0]
			if len(q) == 1 {
				delete(t.queues, key)
			} else {
				t.queues[key] = q[1:]
			}
			t.mu.Unlock()
			return buf, nil
		}
		if t.err != nil {
			err := t.err
			t.mu.Unlock()
			return nil, err
		}
		if t.closed {
			t.mu.Unlock()
			return nil, fmt.Errorf("comm: transport closed")
		}
		ch := t.notify
		t.mu.Unlock()
		if cancel == nil {
			<-ch
			continue
		}
		select {
		case <-ch:
		case <-cancel:
			return nil, fmt.Errorf("%w: link %d→%d", ErrRecvAborted, from, to)
		}
	}
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	close(t.notify)
	t.notify = make(chan struct{})
	t.mu.Unlock()
	var first error
	for _, c := range t.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// reset drops queued frames between protocol runs on a persistent
// cluster (there should be none after a clean run).
func (t *TCPTransport) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.queues = make(map[tcpQueueKey][][]byte)
}
