package comm

// This file is the transport layer of the fabric: how encoded frames
// physically move between server endpoints. The accounting layer never
// touches payload memory directly — it hands encoded frames to a Transport
// and decodes what comes back — so the same protocol code runs unchanged
// whether the servers live in one process (MemTransport) or across real OS
// processes (TCPTransport, tcp.go).

import (
	"errors"
	"fmt"
	"sync"
)

// ErrRecvAborted is returned by Transport.Recv when the cancel channel
// fires before a frame arrives (a peer role failed; see RunServers).
var ErrRecvAborted = errors.New("comm: receive aborted")

// ErrWorkerLost marks fabric errors caused by a dead worker link: the
// connection dropped, a read failed mid-frame, or a write could not be
// delivered. Failures are scoped to the worker that died — traffic on
// other links keeps flowing — and the error wraps through every layer so
// callers can errors.Is it and retry after the slot is re-placed.
var ErrWorkerLost = errors.New("comm: worker lost")

// Transport moves encoded frames between server endpoints.
type Transport interface {
	// Send enqueues an encoded frame on the from→to link.
	Send(from, to int, frame []byte) error
	// Recv blocks for the next frame on the from→to link carrying the
	// given stream id — the multi-tenancy demultiplex point: concurrent
	// sessions' frames interleave on one physical link and each receiver
	// only ever sees its own stream. A firing cancel channel aborts with
	// ErrRecvAborted.
	Recv(from, to int, stream uint32, cancel <-chan struct{}) ([]byte, error)
	// Close releases the transport's resources.
	Close() error
}

// batchSender is implemented by transports that can move several encoded
// frames to one destination as a single batch envelope (one scatter-
// gather write on TCP). Delivery order and accounting semantics are
// identical to sending the frames individually — batching is invisible
// to the ledger. SendBatch takes ownership of every frame buffer.
type batchSender interface {
	SendBatch(from, to int, frames [][]byte) error
}

// queueKey addresses one (from, to, stream) frame queue.
type queueKey struct {
	from, to int
	stream   uint32
}

// frameQueue is the demultiplexing store both transports share: frames
// keyed by (link, stream), receivers woken by a broadcast notify channel.
// Keeping one implementation is what keeps the mem and TCP transports'
// multi-tenancy semantics identical.
//
// Failures are per-origin: a dead worker poisons only waits on frames
// *from* that worker, so one death never wedges the other links. Each
// origin carries a generation counter so a replacement link can clear the
// poison (resetLink) without a stale reader of the dead connection
// re-poisoning it afterwards.
type frameQueue struct {
	mu     sync.Mutex
	queues map[queueKey][][]byte
	notify chan struct{}
	fails  map[int]error
	gens   map[int]uint64
	closed bool
}

func newFrameQueue() *frameQueue {
	return &frameQueue{
		queues: make(map[queueKey][][]byte),
		notify: make(chan struct{}),
		fails:  make(map[int]error),
		gens:   make(map[int]uint64),
	}
}

// wake rebroadcasts the notify channel; callers hold q.mu.
func (q *frameQueue) wake() {
	close(q.notify)
	q.notify = make(chan struct{})
}

// gen returns the current generation of an origin link; a reader captures
// it when it starts and presents it with every push/fail so leftovers of
// a replaced connection are ignored.
func (q *frameQueue) gen(from int) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.gens[from]
}

// push appends a frame to its queue. Pushing to a closed queue recycles
// the frame and reports an error; a frame from a stale link generation is
// silently recycled (its connection was replaced underneath the reader).
func (q *frameQueue) push(key queueKey, gen uint64, frame []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		putBuf(frame)
		return fmt.Errorf("comm: transport closed")
	}
	if gen != q.gens[key.from] {
		putBuf(frame)
		return fmt.Errorf("comm: link %d replaced", key.from)
	}
	q.queues[key] = append(q.queues[key], frame)
	q.wake()
	return nil
}

// fail poisons one origin link (its worker died): receivers drain what
// that worker already queued, then observe the error. The first failure
// per origin wins; failures after close or from a stale link generation
// are ignored. Reports whether the failure was accepted.
func (q *frameQueue) fail(from int, gen uint64, err error) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || gen != q.gens[from] {
		return false
	}
	first := q.fails[from] == nil
	if first {
		q.fails[from] = err
	}
	q.wake()
	return first
}

// failErr returns the poison of an origin link, if any.
func (q *frameQueue) failErr(from int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.fails[from]
}

// resetLink clears an origin link's poison, drops its still-queued frames
// and advances its generation, returning the new generation for the
// replacement reader. Late pushes or fails from the old connection's
// reader carry the stale generation and are discarded.
func (q *frameQueue) resetLink(from int) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.gens[from]++
	delete(q.fails, from)
	for key, frames := range q.queues {
		if key.from == from {
			for _, fr := range frames {
				putBuf(fr)
			}
			delete(q.queues, key)
		}
	}
	q.wake()
	return q.gens[from]
}

// wait blocks for the next frame under key, honoring queued-before-error
// delivery and the cancel channel.
func (q *frameQueue) wait(key queueKey, cancel <-chan struct{}) ([]byte, error) {
	for {
		q.mu.Lock()
		if buf := q.queues[key]; len(buf) > 0 {
			head := buf[0]
			if len(buf) == 1 {
				delete(q.queues, key)
			} else {
				q.queues[key] = buf[1:]
			}
			q.mu.Unlock()
			return head, nil
		}
		if err := q.fails[key.from]; err != nil {
			q.mu.Unlock()
			return nil, err
		}
		if q.closed {
			q.mu.Unlock()
			return nil, fmt.Errorf("comm: transport closed")
		}
		ch := q.notify
		q.mu.Unlock()
		if cancel == nil {
			<-ch
			continue
		}
		select {
		case <-ch:
		case <-cancel:
			return nil, fmt.Errorf("%w: link %d→%d", ErrRecvAborted, key.from, key.to)
		}
	}
}

// close marks the queue closed, recycles every still-queued frame and
// wakes every waiter.
func (q *frameQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		q.recycleAllLocked()
		q.wake()
	}
}

// reset drops every queued frame back to the free lists (single-occupancy
// fabric reuse).
func (q *frameQueue) reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.recycleAllLocked()
}

// recycleAllLocked returns every queued frame to the pools; callers hold
// q.mu.
func (q *frameQueue) recycleAllLocked() {
	for _, frames := range q.queues {
		for _, fr := range frames {
			putBuf(fr)
		}
	}
	q.queues = make(map[queueKey][][]byte)
}

// discardSession drops the queued frames of one session namespace back to
// the free lists, leaving other tenants' queues untouched (see
// Session.Close).
func (q *frameQueue) discardSession(id uint16) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for key, frames := range q.queues {
		if SessionOf(key.stream) == id {
			for _, fr := range frames {
				putBuf(fr)
			}
			delete(q.queues, key)
		}
	}
}

// MemTransport carries frames over in-process per-(link, stream) queues —
// the PR 1 runtime's channels, now moving encoded bytes and demultiplexing
// by stream id exactly as the TCP transport does (the two share the
// frameQueue implementation), so mem and TCP clusters have identical
// multi-tenancy semantics.
type MemTransport struct {
	q *frameQueue
}

// NewMemTransport creates an empty in-process transport.
func NewMemTransport() *MemTransport {
	return &MemTransport{q: newFrameQueue()}
}

// Send implements Transport: the frame is queued under its own stream id.
func (m *MemTransport) Send(from, to int, frame []byte) error {
	stream, err := frameStream(frame)
	if err != nil {
		return fmt.Errorf("comm: mem send on link %d→%d: %w", from, to, err)
	}
	return m.q.push(queueKey{from: from, to: to, stream: stream}, m.q.gen(from), frame)
}

// FailLink synthetically poisons the link from one server: receives of
// that server's frames drain what is already queued and then observe err,
// exactly as a dropped TCP connection would. The error should wrap
// ErrWorkerLost so recovery layers recognize it. In-process failover
// tests and benchmarks drive the worker-lost path through this seam.
func (m *MemTransport) FailLink(from int, err error) {
	m.q.fail(from, m.q.gen(from), err)
}

// HealLink clears a synthetic FailLink, discarding whatever the failed
// link still had queued — the mem analogue of replacing a TCP connection.
func (m *MemTransport) HealLink(from int) {
	m.q.resetLink(from)
}

// SendBatch implements batchSender. The in-memory links have no per-frame
// wire overhead to amortize, so frames are delivered individually — mem
// receivers never see batch envelopes, and mem/TCP transcripts stay
// identical because envelopes are framing, not accounting.
func (m *MemTransport) SendBatch(from, to int, frames [][]byte) error {
	for i, fr := range frames {
		if err := m.Send(from, to, fr); err != nil {
			for _, rest := range frames[i+1:] {
				putBuf(rest)
			}
			return err
		}
	}
	return nil
}

// Recv implements Transport.
func (m *MemTransport) Recv(from, to int, stream uint32, cancel <-chan struct{}) ([]byte, error) {
	return m.q.wait(queueKey{from: from, to: to, stream: stream}, cancel)
}

// Close implements Transport.
func (m *MemTransport) Close() error {
	m.q.close()
	return nil
}

// reset drops every queued frame so a reused fabric starts clean (sweep
// cells reuse one fabric in multi-process mode; see Network.Reset).
func (m *MemTransport) reset() { m.q.reset() }

// discardSession implements sessionDiscarder.
func (m *MemTransport) discardSession(id uint16) { m.q.discardSession(id) }
