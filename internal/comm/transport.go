package comm

// This file is the transport layer of the fabric: how encoded frames
// physically move between server endpoints. The accounting layer never
// touches payload memory directly — it hands encoded frames to a Transport
// and decodes what comes back — so the same protocol code runs unchanged
// whether the servers live in one process (MemTransport) or across real OS
// processes (TCPTransport, tcp.go).

import (
	"errors"
	"fmt"
	"sync"
)

// ErrRecvAborted is returned by Transport.Recv when the cancel channel
// fires before a frame arrives (a peer role failed; see RunServers).
var ErrRecvAborted = errors.New("comm: receive aborted")

// Transport moves encoded frames between server endpoints.
type Transport interface {
	// Send enqueues an encoded frame on the from→to link.
	Send(from, to int, frame []byte) error
	// Recv blocks for the next frame on the from→to link. Transports that
	// multiplex concurrent ledgers over one physical link (TCP) filter by
	// stream id; the in-process transport delivers in link FIFO order and
	// ignores the stream. A firing cancel channel aborts with
	// ErrRecvAborted.
	Recv(from, to int, stream uint32, cancel <-chan struct{}) ([]byte, error)
	// Close releases the transport's resources.
	Close() error
}

// memLinkBuf is the per-link channel capacity of the in-process transport.
// Star protocol phases put at most a handful of frames in flight per link
// before the CP drains them; the buffer only needs to decouple sender
// completion from receiver progress, not to hold a whole protocol.
const memLinkBuf = 64

// MemTransport carries frames over typed in-process channel links — the
// PR 1 runtime's channels, now moving encoded bytes instead of Go values.
type MemTransport struct {
	mu    sync.Mutex
	links map[[2]int]chan []byte
}

// NewMemTransport creates an empty in-process transport.
func NewMemTransport() *MemTransport {
	return &MemTransport{links: make(map[[2]int]chan []byte)}
}

func (m *MemTransport) link(from, to int) chan []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := [2]int{from, to}
	ch, ok := m.links[key]
	if !ok {
		ch = make(chan []byte, memLinkBuf)
		m.links[key] = ch
	}
	return ch
}

// Send implements Transport.
func (m *MemTransport) Send(from, to int, frame []byte) error {
	m.link(from, to) <- frame
	return nil
}

// Recv implements Transport.
func (m *MemTransport) Recv(from, to int, stream uint32, cancel <-chan struct{}) ([]byte, error) {
	ch := m.link(from, to)
	if cancel == nil {
		return <-ch, nil
	}
	select {
	case f := <-ch:
		return f, nil
	case <-cancel:
		return nil, fmt.Errorf("%w: link %d→%d", ErrRecvAborted, from, to)
	}
}

// Close implements Transport.
func (m *MemTransport) Close() error { return nil }

// reset drops every queued frame so a reused fabric starts clean (sweep
// cells reuse one fabric in multi-process mode; see Network.Reset).
func (m *MemTransport) reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.links = make(map[[2]int]chan []byte)
}
