// Package core implements the paper's primary contribution: the framework
// for distributed additive-error PCA of an implicit matrix (Algorithm 1,
// Section IV).
//
// The global matrix A has entries A_ij = f(Σ_t A^t_ij) and is never
// materialized. A RowSampler produces rows of A with probability roughly
// proportional to their squared norms together with an estimate Q̂ of that
// probability; the framework collects r = Θ(k²/ε²) such rows, rescales row
// i′ to A_{i_{i′}}/√(r·Q̂_{i_{i′}}), and returns the projection onto the
// top-k right singular vectors of the rescaled sample matrix B. Lemmas 1–3
// of the paper show ‖A−AP‖_F² ≤ ‖A−[A]_k‖_F² + O(ε)‖A‖_F² even when Q̂ has
// (1±γ) multiplicative error, which is what makes the distributed sampler
// of package zsampler usable.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/fn"
	"repro/internal/matrix"
)

// Sample is one row drawn by a RowSampler: the row index, the sampler's
// estimate Q̂ of the probability that a single draw produces this row, and
// the exact global summed row Σ_t A^t_i (pre-f). The sampler is responsible
// for charging the communication used to assemble RawRow.
type Sample struct {
	Row    int
	QHat   float64
	RawRow []float64
}

// RowSampler produces rows of the implicit matrix with probability
// approximately proportional to the squared norms of the rows of
// A = f(Σ_t A^t). Implementations charge their communication to the shared
// network themselves. Draw honors ctx: a fired ctx aborts before the
// draw's next protocol round.
type RowSampler interface {
	Draw(ctx context.Context) (Sample, error)
}

// BatchRowSampler is implemented by samplers whose draw indices are
// computable without communication (everything remote happened when the
// sampler was built), so a block of draws can fix its indices first and
// pipeline the row collections as one RunRounds sequence. The contract is
// strict equivalence: DrawBatch(ctx, r) must return exactly the samples r
// sequential Draw calls would have, with an identical ledger transcript —
// only the wire framing may differ.
type BatchRowSampler interface {
	RowSampler
	// DrawBatch returns exactly count samples, equivalent to count
	// sequential Draw calls.
	DrawBatch(ctx context.Context, count int) ([]Sample, error)
}

// drawSamples produces r draws, through the pipelined batch path when the
// sampler supports it.
func drawSamples(ctx context.Context, sampler RowSampler, r int) ([]Sample, error) {
	if bs, ok := sampler.(BatchRowSampler); ok {
		ss, err := bs.DrawBatch(ctx, r)
		if err != nil {
			return nil, fmt.Errorf("core: sampler batch draw: %w", err)
		}
		if len(ss) != r {
			return nil, fmt.Errorf("core: batch sampler returned %d samples, want %d", len(ss), r)
		}
		return ss, nil
	}
	ss := make([]Sample, r)
	for i := range ss {
		// Abort checkpoint between draws: every draw is at least one
		// protocol round, so a canceled job stops here at round granularity
		// without a partially assembled row.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := sampler.Draw(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: sampler draw %d: %w", i, err)
		}
		ss[i] = s
	}
	return ss, nil
}

// Options configures a framework run.
type Options struct {
	// K is the target rank.
	K int
	// Eps is the additive error parameter ε.
	Eps float64
	// R overrides the number of sampled rows; 0 derives r = ⌈C·k²/ε²⌉.
	R int
	// RConstant is the C in r = ⌈C·k²/ε²⌉ (default 4; the paper's analysis
	// uses 1440/c but its experiments use far fewer samples and still beat
	// the k²/r prediction, as Figures 1–2 show).
	RConstant float64
	// Boost repeats the whole procedure and keeps the projection with the
	// largest captured energy ‖BP‖_F² (the paper's log(1/δ) boosting);
	// values < 1 mean a single run.
	Boost int
}

// BoostForConfidence returns the number of repetitions needed to push the
// constant success probability of one Algorithm 1 run to at least 1−δ
// ("we can just run Algorithm 1 O(log(1/δ)) times and output the matrix P
// with maximum ‖BP‖²_F"). One run succeeds with probability ≥ 9/10 by
// Lemma 3's Markov bound, so ⌈log₁₀(1/δ)⌉ repetitions suffice; values of
// δ ≥ 1/10 need no boosting.
func BoostForConfidence(delta float64) int {
	if delta <= 0 {
		panic("core: confidence delta must be positive")
	}
	if delta >= 0.1 {
		return 1
	}
	return int(math.Ceil(math.Log10(1 / delta)))
}

// SampleCount returns the number of rows the options imply.
func (o Options) SampleCount() int {
	if o.R > 0 {
		return o.R
	}
	c := o.RConstant
	if c <= 0 {
		c = 4
	}
	eps := o.Eps
	if eps <= 0 {
		eps = 0.1
	}
	r := int(math.Ceil(c * float64(o.K*o.K) / (eps * eps)))
	if r < o.K {
		r = o.K
	}
	return r
}

// Result is the output of one framework run.
type Result struct {
	// P is the d×d rank-k projection matrix V·Vᵀ.
	P *matrix.Dense
	// V is the d×k orthonormal basis of the projection's row space.
	V *matrix.Dense
	// B is the rescaled sampled matrix the projection was computed from.
	B *matrix.Dense
	// Rows are the sampled row indices (with multiplicity).
	Rows []int
	// Score is ‖BP‖_F², the boosting criterion.
	Score float64
	// Words is the communication consumed by this run (including the
	// sampler's share).
	Words int64
}

// Run executes Algorithm 1: draw r rows from the sampler, build B with
// B_{i′} = f(raw_{i′})/√(r·Q̂_{i′}), compute the top-k right singular
// vectors at the CP, and return P = VVᵀ. With Boost > 1 the procedure is
// repeated and the result with maximal ‖BP‖_F² wins.
func Run(ctx context.Context, net *comm.Network, sampler RowSampler, f fn.Func, d int, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("core: rank k must be ≥ 1, got %d", opts.K)
	}
	if d < 1 {
		return nil, errors.New("core: dimension d must be ≥ 1")
	}
	boost := opts.Boost
	if boost < 1 {
		boost = 1
	}
	start := net.Snapshot()
	var best *Result
	for b := 0; b < boost; b++ {
		res, err := runOnce(ctx, net, sampler, f, d, opts)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Score > best.Score {
			best = res
		}
	}
	best.Words = net.Since(start)
	// The CP ships the winning projection basis back to all servers so they
	// can project their local data: (s−1)·d·k words, as a real payload
	// broadcast (remote workers receive the basis frame).
	net.BroadcastPayload(comm.CP, "core/projection", comm.KindProjection, best.V.Data())
	return best, nil
}

func runOnce(ctx context.Context, net *comm.Network, sampler RowSampler, f fn.Func, d int, opts Options) (*Result, error) {
	r := opts.SampleCount()
	samples, err := drawSamples(ctx, sampler, r)
	if err != nil {
		return nil, err
	}
	B := matrix.NewDense(r, d)
	rows := make([]int, r)
	for i, s := range samples {
		if s.QHat <= 0 || math.IsNaN(s.QHat) || math.IsInf(s.QHat, 0) {
			return nil, fmt.Errorf("core: sampler reported invalid Q̂=%g for row %d", s.QHat, s.Row)
		}
		if len(s.RawRow) != d {
			return nil, fmt.Errorf("core: sampler row length %d != d=%d", len(s.RawRow), d)
		}
		scale := 1 / math.Sqrt(float64(r)*s.QHat)
		dst := B.Row(i)
		for c, v := range s.RawRow {
			dst[c] = f.Apply(v) * scale
		}
		rows[i] = s.Row
	}
	svd := matrix.SVD(B)
	V := svd.V.SubMatrix(0, d, 0, min(opts.K, d))
	P := V.Mul(V.T())
	var score float64
	for i := 0; i < opts.K && i < len(svd.Values); i++ {
		score += svd.Values[i] * svd.Values[i]
	}
	return &Result{P: P, V: V, B: B, Rows: rows, Score: score}, nil
}

// RunMultiK runs the sampling stage once with r rows and derives the
// projection for every requested rank from the same SVD. This mirrors the
// paper's experimental protocol, where a single communication budget fixes
// r and the error is then reported for k = 3…15: the per-k projections all
// come from one sample. Boost applies per-k (the best repetition may differ
// per rank).
func RunMultiK(ctx context.Context, net *comm.Network, sampler RowSampler, f fn.Func, d int, ks []int, opts Options) (map[int]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ks) == 0 {
		return nil, errors.New("core: no ranks requested")
	}
	boost := opts.Boost
	if boost < 1 {
		boost = 1
	}
	start := net.Snapshot()
	results := make(map[int]*Result, len(ks))
	for b := 0; b < boost; b++ {
		r := opts.SampleCount()
		samples, err := drawSamples(ctx, sampler, r)
		if err != nil {
			return nil, err
		}
		B := matrix.NewDense(r, d)
		rows := make([]int, r)
		for i, s := range samples {
			if s.QHat <= 0 || math.IsNaN(s.QHat) || math.IsInf(s.QHat, 0) {
				return nil, fmt.Errorf("core: sampler reported invalid Q̂=%g for row %d", s.QHat, s.Row)
			}
			scale := 1 / math.Sqrt(float64(r)*s.QHat)
			dst := B.Row(i)
			for c, v := range s.RawRow {
				dst[c] = f.Apply(v) * scale
			}
			rows[i] = s.Row
		}
		svd := matrix.SVD(B)
		for _, k := range ks {
			if k < 1 || k > d {
				return nil, fmt.Errorf("core: rank %d out of range [1,%d]", k, d)
			}
			var score float64
			for i := 0; i < k && i < len(svd.Values); i++ {
				score += svd.Values[i] * svd.Values[i]
			}
			if cur, ok := results[k]; ok && cur.Score >= score {
				continue
			}
			V := svd.V.SubMatrix(0, d, 0, k)
			results[k] = &Result{P: V.Mul(V.T()), V: V, B: B, Rows: rows, Score: score}
		}
	}
	words := net.Since(start)
	for _, res := range results {
		res.Words = words
	}
	return results, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
