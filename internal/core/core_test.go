package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/fn"
	"repro/internal/matrix"
)

// idealSampler draws rows of a materialized matrix with exact squared-norm
// probabilities, optionally perturbing the reported Q̂ by a multiplicative
// (1±γ) factor — the noisy-probability regime Lemma 3 covers.
type idealSampler struct {
	A     *matrix.Dense
	cum   []float64
	probs []float64
	gamma float64
	rng   *rand.Rand
	fail  error
}

func newIdealSampler(A *matrix.Dense, gamma float64, seed int64) *idealSampler {
	n := A.Rows()
	total := A.FrobNorm2()
	s := &idealSampler{A: A, gamma: gamma, rng: rand.New(rand.NewSource(seed))}
	s.cum = make([]float64, n)
	s.probs = make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		s.probs[i] = A.RowNorm2(i) / total
		acc += s.probs[i]
		s.cum[i] = acc
	}
	return s
}

func (s *idealSampler) Draw(ctx context.Context) (Sample, error) {
	if s.fail != nil {
		return Sample{}, s.fail
	}
	x := s.rng.Float64()
	i := 0
	for i < len(s.cum)-1 && s.cum[i] < x {
		i++
	}
	q := s.probs[i]
	if s.gamma > 0 {
		q *= 1 + s.gamma*(2*s.rng.Float64()-1)
	}
	return Sample{Row: i, QHat: q, RawRow: s.A.RowCopy(i)}, nil
}

func lowRank(rng *rand.Rand, n, d, rank int, noise float64) *matrix.Dense {
	u := matrix.NewDense(n, rank)
	v := matrix.NewDense(d, rank)
	for i := 0; i < n; i++ {
		for j := 0; j < rank; j++ {
			u.Set(i, j, rng.NormFloat64())
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < rank; j++ {
			v.Set(i, j, rng.NormFloat64())
		}
	}
	m := u.Mul(v.T())
	for i := range m.Data() {
		m.Data()[i] += noise * rng.NormFloat64()
	}
	return m
}

func additiveError(A, P *matrix.Dense, k int) float64 {
	return (matrix.ProjectionError2(A, P) - matrix.BestRankKError2(A, k)) / A.FrobNorm2()
}

// TestLemma12Numerically verifies the chain the framework rests on: when B
// approximates AᵀA well, the top-k projection of B is near-optimal for A.
func TestLemma12Numerically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	A := lowRank(rng, 300, 20, 4, 0.1)
	k := 4
	net := comm.NewNetwork(1)
	s := newIdealSampler(A, 0, 2)
	res, err := Run(context.Background(), net, s, fn.Identity{}, 20, Options{K: k, R: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 1 precondition: ‖AᵀA − BᵀB‖_F small relative to ‖A‖²_F.
	diff := A.Gram().Sub(res.B.Gram()).FrobNorm() / A.FrobNorm2()
	if diff > 0.5 {
		t.Fatalf("‖AᵀA−BᵀB‖/‖A‖² = %g", diff)
	}
	// Lemma 2 conclusion: additive error small.
	if add := additiveError(A, res.P, k); add > 0.1 {
		t.Fatalf("additive error %g", add)
	}
}

func TestRunAdditiveErrorShrinksWithR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	A := lowRank(rng, 400, 15, 5, 0.3)
	k := 5
	errs := make(map[int]float64)
	for _, r := range []int{20, 800} {
		var sum float64
		const trials = 5
		for tr := 0; tr < trials; tr++ {
			net := comm.NewNetwork(1)
			s := newIdealSampler(A, 0, int64(100*r+tr))
			res, err := Run(context.Background(), net, s, fn.Identity{}, 15, Options{K: k, R: r})
			if err != nil {
				t.Fatal(err)
			}
			sum += additiveError(A, res.P, k)
		}
		errs[r] = sum / trials
	}
	t.Logf("err(r=20)=%g err(r=800)=%g", errs[20], errs[800])
	if errs[800] > errs[20] {
		t.Fatalf("more samples made it worse: %v", errs)
	}
}

// TestNoisyProbabilityTolerance is the Lemma 3 ablation: (1±γ) noise on Q̂
// must not destroy the guarantee.
func TestNoisyProbabilityTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	A := lowRank(rng, 300, 12, 4, 0.2)
	k := 4
	for _, gamma := range []float64{0, 0.2, 0.4} {
		net := comm.NewNetwork(1)
		s := newIdealSampler(A, gamma, 7)
		res, err := Run(context.Background(), net, s, fn.Identity{}, 12, Options{K: k, R: 300})
		if err != nil {
			t.Fatal(err)
		}
		if add := additiveError(A, res.P, k); add > 0.1 {
			t.Fatalf("γ=%g: additive error %g", gamma, add)
		}
	}
}

func TestRunAppliesF(t *testing.T) {
	// With f = |x|² the framework must approximate f(A), not A.
	rng := rand.New(rand.NewSource(5))
	raw := lowRank(rng, 200, 10, 3, 0.1)
	fA := raw.Apply(func(x float64) float64 { return x * x })
	k := 3
	net := comm.NewNetwork(1)
	// Sample proportionally to f(A) row norms (the sampler contract).
	s := newIdealSampler(fA, 0, 8)
	// But feed raw rows, letting Run apply f.
	rawSampler := &rawRowSampler{inner: s, raw: raw}
	res, err := Run(context.Background(), net, rawSampler, fn.AbsPower{P: 2}, 10, Options{K: k, R: 300})
	if err != nil {
		t.Fatal(err)
	}
	if add := additiveError(fA, res.P, k); add > 0.1 {
		t.Fatalf("additive error on f(A): %g", add)
	}
}

type rawRowSampler struct {
	inner *idealSampler
	raw   *matrix.Dense
}

func (s *rawRowSampler) Draw(ctx context.Context) (Sample, error) {
	smp, err := s.inner.Draw(context.Background())
	if err != nil {
		return Sample{}, err
	}
	smp.RawRow = s.raw.RowCopy(smp.Row)
	return smp, nil
}

func TestBoostNeverWorseOnScore(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	A := lowRank(rng, 200, 10, 3, 0.5)
	k := 3
	net1 := comm.NewNetwork(1)
	s1 := newIdealSampler(A, 0, 9)
	single, err := Run(context.Background(), net1, s1, fn.Identity{}, 10, Options{K: k, R: 40})
	if err != nil {
		t.Fatal(err)
	}
	net2 := comm.NewNetwork(1)
	s2 := newIdealSampler(A, 0, 9)
	boosted, err := Run(context.Background(), net2, s2, fn.Identity{}, 10, Options{K: k, R: 40, Boost: 5})
	if err != nil {
		t.Fatal(err)
	}
	if boosted.Score < single.Score-1e-9 {
		t.Fatalf("boost reduced score: %g < %g", boosted.Score, single.Score)
	}
}

func TestRunMultiKConsistentWithRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	A := lowRank(rng, 150, 8, 3, 0.2)
	net := comm.NewNetwork(1)
	s := newIdealSampler(A, 0, 11)
	ks := []int{2, 4, 6}
	results, err := RunMultiK(context.Background(), net, s, fn.Identity{}, 8, ks, Options{K: 6, R: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		res := results[k]
		if res == nil {
			t.Fatalf("missing k=%d", k)
		}
		// Projection rank must be k.
		vals, _ := matrix.EigenSym(res.P)
		rank := 0
		for _, v := range vals {
			if v > 0.5 {
				rank++
			}
		}
		if rank != k {
			t.Fatalf("k=%d: projection rank %d", k, rank)
		}
		if add := additiveError(A, res.P, k); add > 0.15 {
			t.Fatalf("k=%d: additive error %g", k, add)
		}
	}
	// Same B shared across ranks.
	if results[2].B != results[4].B && !results[2].B.Equalf(results[4].B, 0) {
		t.Fatal("multik should share one sampled matrix per repetition")
	}
}

func TestSampleCountDerivation(t *testing.T) {
	o := Options{K: 5, Eps: 0.5}
	if r := o.SampleCount(); r != 400 {
		t.Fatalf("r = %d, want 4·25/0.25 = 400", r)
	}
	o = Options{K: 5, R: 77}
	if o.SampleCount() != 77 {
		t.Fatal("explicit R ignored")
	}
	o = Options{K: 5, Eps: 0.5, RConstant: 1}
	if o.SampleCount() != 100 {
		t.Fatal("RConstant ignored")
	}
	o = Options{K: 50, Eps: 10} // tiny r clamped to k
	if o.SampleCount() < 50 {
		t.Fatal("r below k")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	net := comm.NewNetwork(1)
	rng := rand.New(rand.NewSource(8))
	A := lowRank(rng, 20, 4, 2, 0.1)
	s := newIdealSampler(A, 0, 1)
	if _, err := Run(context.Background(), net, s, fn.Identity{}, 4, Options{K: 0, R: 5}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Run(context.Background(), net, s, fn.Identity{}, 0, Options{K: 1, R: 5}); err == nil {
		t.Fatal("d=0 accepted")
	}
	s.fail = errors.New("boom")
	if _, err := Run(context.Background(), net, s, fn.Identity{}, 4, Options{K: 1, R: 5}); err == nil {
		t.Fatal("sampler failure swallowed")
	}
}

func TestRunRejectsInvalidQHat(t *testing.T) {
	net := comm.NewNetwork(1)
	bad := samplerFunc(func() (Sample, error) {
		return Sample{Row: 0, QHat: 0, RawRow: []float64{1, 2}}, nil
	})
	if _, err := Run(context.Background(), net, bad, fn.Identity{}, 2, Options{K: 1, R: 3}); err == nil {
		t.Fatal("QHat=0 accepted")
	}
	nan := samplerFunc(func() (Sample, error) {
		return Sample{Row: 0, QHat: math.NaN(), RawRow: []float64{1, 2}}, nil
	})
	if _, err := Run(context.Background(), net, nan, fn.Identity{}, 2, Options{K: 1, R: 3}); err == nil {
		t.Fatal("QHat=NaN accepted")
	}
	short := samplerFunc(func() (Sample, error) {
		return Sample{Row: 0, QHat: 0.5, RawRow: []float64{1}}, nil
	})
	if _, err := Run(context.Background(), net, short, fn.Identity{}, 2, Options{K: 1, R: 3}); err == nil {
		t.Fatal("short row accepted")
	}
}

type samplerFunc func() (Sample, error)

func (f samplerFunc) Draw(ctx context.Context) (Sample, error) { return f() }

func TestRunChargesProjectionBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	A := lowRank(rng, 50, 6, 2, 0.1)
	net := comm.NewNetwork(4)
	s := newIdealSampler(A, 0, 3)
	_, err := Run(context.Background(), net, s, fn.Identity{}, 6, Options{K: 2, R: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The d×k basis travels to 3 non-CP servers.
	if got := net.Breakdown()["core/projection"]; got != int64(3*6*2) {
		t.Fatalf("projection broadcast words = %d", got)
	}
}

func TestRunMultiKRejectsBadKs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	A := lowRank(rng, 30, 5, 2, 0.1)
	net := comm.NewNetwork(1)
	s := newIdealSampler(A, 0, 4)
	if _, err := RunMultiK(context.Background(), net, s, fn.Identity{}, 5, []int{0}, Options{K: 1, R: 5}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := RunMultiK(context.Background(), net, s, fn.Identity{}, 5, []int{9}, Options{K: 9, R: 5}); err == nil {
		t.Fatal("k>d accepted")
	}
	if _, err := RunMultiK(context.Background(), net, s, fn.Identity{}, 5, nil, Options{K: 1, R: 5}); err == nil {
		t.Fatal("empty ks accepted")
	}
}

func TestBoostForConfidence(t *testing.T) {
	cases := []struct {
		delta float64
		want  int
	}{{0.5, 1}, {0.1, 1}, {0.01, 2}, {1e-6, 6}}
	for _, c := range cases {
		if got := BoostForConfidence(c.delta); got != c.want {
			t.Errorf("BoostForConfidence(%g) = %d, want %d", c.delta, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoostForConfidence(0)
}
