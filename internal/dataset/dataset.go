// Package dataset generates the deterministic synthetic stand-ins for the
// five datasets of the paper's evaluation (Section VIII). The real corpora
// (UCI Forest Cover, KDDCUP99, isolet; Caltech-101 and Scenes imagery) are
// not available in this offline environment; each generator reproduces the
// structural properties that the algorithms actually interact with — row
// norm distributions, spectral decay, sparsity and skew — as documented in
// DESIGN.md §4. All generators are pure functions of their seed.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/kmeans"
	"repro/internal/matrix"
	"repro/internal/pooling"
)

// Scale selects the problem size: Small for unit tests, Medium for the
// default experiment harness, Full for paper-shaped runs (hours of CPU).
type Scale int

const (
	// Small sizes complete in milliseconds; used by unit tests.
	Small Scale = iota
	// Medium sizes reproduce the figures in minutes on one machine.
	Medium
	// Full uses the paper's dataset shapes where feasible.
	Full
)

// Info describes a generated dataset and its relation to the paper's.
type Info struct {
	Name       string
	PaperRows  int
	PaperCols  int
	Rows, Cols int
	Note       string
}

func (i Info) String() string {
	return fmt.Sprintf("%s: %dx%d (paper: %dx%d) — %s", i.Name, i.Rows, i.Cols, i.PaperRows, i.PaperCols, i.Note)
}

func pick(s Scale, small, medium, full int) int {
	switch s {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return full
	}
}

// lowRankPlusNoise returns U·diag(σ)·Vᵀ + noise·G with σ_i = base·decay^i:
// the canonical model of correlated real-valued feature matrices with a
// decaying spectrum.
func lowRankPlusNoise(n, m, rank int, base, decay, noise float64, seed int64) *matrix.Dense {
	rng := hashing.Seeded(seed)
	U := matrix.NewDense(n, rank)
	V := matrix.NewDense(m, rank)
	for i := 0; i < n; i++ {
		for j := 0; j < rank; j++ {
			U.Set(i, j, rng.NormFloat64()/math.Sqrt(float64(n)))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < rank; j++ {
			V.Set(i, j, rng.NormFloat64()/math.Sqrt(float64(m)))
		}
	}
	out := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		ui := U.Row(i)
		row := out.Row(i)
		for j := 0; j < m; j++ {
			vj := V.Row(j)
			var s float64
			for r := 0; r < rank; r++ {
				s += ui[r] * vj[r] * base * math.Pow(decay, float64(r))
			}
			row[j] = s + noise*rng.NormFloat64()
		}
	}
	return out
}

// ForestCoverRaw generates the Forest Cover stand-in: cartographic
// features — correlated continuous columns with a decaying spectrum plus a
// few binary indicator columns. The PCA experiment consumes its random
// Fourier feature expansion, not this raw matrix.
func ForestCoverRaw(s Scale, seed int64) (*matrix.Dense, Info) {
	n := pick(s, 256, 4096, 65536)
	m := 54 // the real dataset's feature count
	raw := lowRankPlusNoise(n, m, 10, 40, 0.7, 0.5, seed)
	// Make the last 14 columns binary indicators (soil type / wilderness
	// area in the real data).
	rng := hashing.Seeded(hashing.DeriveSeed(seed, 1))
	for i := 0; i < n; i++ {
		row := raw.Row(i)
		for j := 40; j < m; j++ {
			if rng.Float64() < 0.12 {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
	}
	return raw, Info{
		Name: "ForestCover", PaperRows: 522000, PaperCols: 5000, Rows: n, Cols: m,
		Note: "synthetic cartographic features; experiment uses its RFF expansion",
	}
}

// KDDCUP99Raw generates the KDDCUP99 stand-in: network connection records
// with heavy-tailed counts (most connections tiny, rare huge bursts) and
// correlated protocol columns.
func KDDCUP99Raw(s Scale, seed int64) (*matrix.Dense, Info) {
	n := pick(s, 256, 65536, 262144)
	m := 41 // the real dataset's feature count
	raw := lowRankPlusNoise(n, m, 8, 20, 0.65, 0.3, seed)
	rng := hashing.Seeded(hashing.DeriveSeed(seed, 2))
	// Heavy-tailed byte/count columns: log-normal bursts on a few columns.
	for i := 0; i < n; i++ {
		row := raw.Row(i)
		for _, j := range []int{4, 5, 22, 23} {
			row[j] = math.Exp(rng.NormFloat64()*1.8) - 1
		}
	}
	return raw, Info{
		Name: "KDDCUP99", PaperRows: 4898431, PaperCols: 50, Rows: n, Cols: m,
		Note: "synthetic network records with heavy-tailed counts; experiment uses its RFF expansion",
	}
}

// descriptorCodes reproduces the paper's visual pipeline end to end on
// synthetic imagery: generate SIFT-like local descriptors from a latent
// prototype model with per-image topical mixtures, *learn* a 1-of-V
// codebook with k-means (exactly as Section VIII prescribes), and quantize
// every patch to its nearest codeword.
func descriptorCodes(images, v, patchesPerImage, dim, prototypes int, zipf float64, seed int64) *pooling.Codes {
	rng := hashing.Seeded(seed)
	// Latent prototype descriptors with Zipfian popularity: the structure
	// real SIFT statistics exhibit (a few dominant edge/blob patterns).
	protos := matrix.NewDense(prototypes, dim)
	for i := 0; i < prototypes; i++ {
		for j := 0; j < dim; j++ {
			protos.Set(i, j, rng.NormFloat64()*3)
		}
	}
	weights := make([]float64, prototypes)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), zipf)
		total += weights[i]
	}
	cum := make([]float64, prototypes)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	drawProto := func() int {
		x := rng.Float64()
		lo, hi := 0, prototypes-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	n := images * patchesPerImage
	descs := matrix.NewDense(n, dim)
	owner := make([]int, n)
	at := 0
	for img := 0; img < images; img++ {
		// Per-image topics concentrate patch content, as categories do.
		topics := make([]int, 4)
		for t := range topics {
			topics[t] = drawProto()
		}
		for p := 0; p < patchesPerImage; p++ {
			var proto int
			if rng.Float64() < 0.6 {
				proto = topics[rng.Intn(len(topics))]
			} else {
				proto = drawProto()
			}
			row := descs.Row(at)
			src := protos.Row(proto)
			for j := 0; j < dim; j++ {
				row[j] = src[j] + rng.NormFloat64()*0.8
			}
			owner[at] = img
			at++
		}
	}

	// Learn the codebook with our own k-means, per the paper's pipeline.
	model, err := kmeans.Train(descs, kmeans.Config{
		K: v, MaxIters: 8, SampleLimit: 16384, Seed: hashing.DeriveSeed(seed, 77),
	})
	if err != nil {
		panic("dataset: codebook training: " + err.Error())
	}
	codes := model.Quantize(descs)

	out := &pooling.Codes{V: v, PerImage: make([][]int, images)}
	for i, c := range codes {
		img := owner[i]
		out.PerImage[img] = append(out.PerImage[img], c)
	}
	return out
}

// Caltech101Codes generates the Caltech-101 stand-in: SIFT-like synthetic
// descriptors quantized against a k-means codebook of size 256 — the
// paper's exact pipeline on synthetic imagery.
func Caltech101Codes(s Scale, seed int64) (*pooling.Codes, Info) {
	images := pick(s, 96, 1024, 9145)
	patches := pick(s, 60, 180, 256)
	c := descriptorCodes(images, 256, patches, 16, 512, 1.1, seed)
	return c, Info{
		Name: "Caltech-101", PaperRows: 9145, PaperCols: 256, Rows: images, Cols: 256,
		Note: "synthetic SIFT-like descriptors + learned k-means 1-of-256 codebook",
	}
}

// ScenesCodes generates the Scenes stand-in, analogous to Caltech101Codes
// with fewer images and flatter descriptor statistics.
func ScenesCodes(s Scale, seed int64) (*pooling.Codes, Info) {
	images := pick(s, 80, 768, 4485)
	patches := pick(s, 60, 160, 224)
	c := descriptorCodes(images, 256, patches, 16, 384, 0.9, seed)
	return c, Info{
		Name: "Scenes", PaperRows: 4485, PaperCols: 256, Rows: images, Cols: 256,
		Note: "synthetic SIFT-like descriptors + learned k-means 1-of-256 codebook",
	}
}

// IsoletRaw generates the isolet stand-in: spoken-letter acoustic features,
// modelled as a strongly low-rank correlated matrix (26 letter classes)
// plus noise. At Full scale it matches the paper's exact 1559×617 shape.
func IsoletRaw(s Scale, seed int64) (*matrix.Dense, Info) {
	n := pick(s, 200, 800, 1559)
	m := pick(s, 64, 200, 617)
	raw := lowRankPlusNoise(n, m, 26, 30, 0.85, 0.4, seed)
	return raw, Info{
		Name: "isolet", PaperRows: 1559, PaperCols: 617, Rows: n, Cols: m,
		Note: "synthetic acoustic features (low-rank 26-class structure + noise)",
	}
}
