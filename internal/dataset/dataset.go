// Package dataset generates the deterministic synthetic stand-ins for the
// five datasets of the paper's evaluation (Section VIII). The real corpora
// (UCI Forest Cover, KDDCUP99, isolet; Caltech-101 and Scenes imagery) are
// not available in this offline environment; each generator reproduces the
// structural properties that the algorithms actually interact with — row
// norm distributions, spectral decay, sparsity and skew — as documented in
// DESIGN.md §4. All generators are pure functions of their seed.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/kmeans"
	"repro/internal/matrix"
	"repro/internal/pooling"
)

// Scale selects the problem size: Small for unit tests, Medium for the
// default experiment harness, Full for paper-shaped runs (hours of CPU).
type Scale int

const (
	// Small sizes complete in milliseconds; used by unit tests.
	Small Scale = iota
	// Medium sizes reproduce the figures in minutes on one machine.
	Medium
	// Full uses the paper's dataset shapes where feasible.
	Full
)

// Info describes a generated dataset and its relation to the paper's.
type Info struct {
	Name       string
	PaperRows  int
	PaperCols  int
	Rows, Cols int
	// NNZ is the number of nonzero entries of the generated matrix (equal
	// to Rows·Cols only for fully dense data).
	NNZ  int64
	Note string
}

// Sparsity reports the fraction of nonzero entries — the property that
// decides whether the CSR backend pays off for this dataset.
func (i Info) Sparsity() float64 {
	total := float64(i.Rows) * float64(i.Cols)
	if total == 0 {
		return 0
	}
	return float64(i.NNZ) / total
}

func (i Info) String() string {
	return fmt.Sprintf("%s: %dx%d (paper: %dx%d, density %.1f%%) — %s",
		i.Name, i.Rows, i.Cols, i.PaperRows, i.PaperCols, 100*i.Sparsity(), i.Note)
}

func pick(s Scale, small, medium, full int) int {
	switch s {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return full
	}
}

// lowRankPlusNoise returns U·diag(σ)·Vᵀ + noise·G with σ_i = base·decay^i:
// the canonical model of correlated real-valued feature matrices with a
// decaying spectrum.
func lowRankPlusNoise(n, m, rank int, base, decay, noise float64, seed int64) *matrix.Dense {
	rng := hashing.Seeded(seed)
	U := matrix.NewDense(n, rank)
	V := matrix.NewDense(m, rank)
	for i := 0; i < n; i++ {
		for j := 0; j < rank; j++ {
			U.Set(i, j, rng.NormFloat64()/math.Sqrt(float64(n)))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < rank; j++ {
			V.Set(i, j, rng.NormFloat64()/math.Sqrt(float64(m)))
		}
	}
	out := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		ui := U.Row(i)
		row := out.Row(i)
		for j := 0; j < m; j++ {
			vj := V.Row(j)
			var s float64
			for r := 0; r < rank; r++ {
				s += ui[r] * vj[r] * base * math.Pow(decay, float64(r))
			}
			row[j] = s + noise*rng.NormFloat64()
		}
	}
	return out
}

// ForestCoverRaw generates the Forest Cover stand-in: cartographic
// features — correlated continuous columns with a decaying spectrum plus a
// few binary indicator columns. The PCA experiment consumes its random
// Fourier feature expansion, not this raw matrix.
func ForestCoverRaw(s Scale, seed int64) (*matrix.Dense, Info) {
	n := pick(s, 256, 4096, 65536)
	m := 54 // the real dataset's feature count
	raw := lowRankPlusNoise(n, m, 10, 40, 0.7, 0.5, seed)
	// Make the last 14 columns binary indicators (soil type / wilderness
	// area in the real data).
	rng := hashing.Seeded(hashing.DeriveSeed(seed, 1))
	for i := 0; i < n; i++ {
		row := raw.Row(i)
		for j := 40; j < m; j++ {
			if rng.Float64() < 0.12 {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
	}
	return raw, Info{
		Name: "ForestCover", PaperRows: 522000, PaperCols: 5000, Rows: n, Cols: m, NNZ: raw.NNZ(),
		Note: "synthetic cartographic features; experiment uses its RFF expansion",
	}
}

// KDDCUP99Raw generates the KDDCUP99 stand-in: network connection records
// with heavy-tailed counts (most connections tiny, rare huge bursts) and
// correlated protocol columns.
func KDDCUP99Raw(s Scale, seed int64) (*matrix.Dense, Info) {
	n := pick(s, 256, 65536, 262144)
	m := 41 // the real dataset's feature count
	raw := lowRankPlusNoise(n, m, 8, 20, 0.65, 0.3, seed)
	rng := hashing.Seeded(hashing.DeriveSeed(seed, 2))
	// Heavy-tailed byte/count columns: log-normal bursts on a few columns.
	for i := 0; i < n; i++ {
		row := raw.Row(i)
		for _, j := range []int{4, 5, 22, 23} {
			row[j] = math.Exp(rng.NormFloat64()*1.8) - 1
		}
	}
	return raw, Info{
		Name: "KDDCUP99", PaperRows: 4898431, PaperCols: 50, Rows: n, Cols: m, NNZ: raw.NNZ(),
		Note: "synthetic network records with heavy-tailed counts; experiment uses its RFF expansion",
	}
}

// descriptorCodes reproduces the paper's visual pipeline end to end on
// synthetic imagery: generate SIFT-like local descriptors from a latent
// prototype model with per-image topical mixtures, *learn* a 1-of-V
// codebook with k-means (exactly as Section VIII prescribes), and quantize
// every patch to its nearest codeword.
func descriptorCodes(images, v, patchesPerImage, dim, prototypes int, zipf float64, seed int64) *pooling.Codes {
	rng := hashing.Seeded(seed)
	// Latent prototype descriptors with Zipfian popularity: the structure
	// real SIFT statistics exhibit (a few dominant edge/blob patterns).
	protos := matrix.NewDense(prototypes, dim)
	for i := 0; i < prototypes; i++ {
		for j := 0; j < dim; j++ {
			protos.Set(i, j, rng.NormFloat64()*3)
		}
	}
	weights := make([]float64, prototypes)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), zipf)
		total += weights[i]
	}
	cum := make([]float64, prototypes)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	drawProto := func() int {
		x := rng.Float64()
		lo, hi := 0, prototypes-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	n := images * patchesPerImage
	descs := matrix.NewDense(n, dim)
	owner := make([]int, n)
	at := 0
	for img := 0; img < images; img++ {
		// Per-image topics concentrate patch content, as categories do.
		topics := make([]int, 4)
		for t := range topics {
			topics[t] = drawProto()
		}
		for p := 0; p < patchesPerImage; p++ {
			var proto int
			if rng.Float64() < 0.6 {
				proto = topics[rng.Intn(len(topics))]
			} else {
				proto = drawProto()
			}
			row := descs.Row(at)
			src := protos.Row(proto)
			for j := 0; j < dim; j++ {
				row[j] = src[j] + rng.NormFloat64()*0.8
			}
			owner[at] = img
			at++
		}
	}

	// Learn the codebook with our own k-means, per the paper's pipeline.
	model, err := kmeans.Train(descs, kmeans.Config{
		K: v, MaxIters: 8, SampleLimit: 16384, Seed: hashing.DeriveSeed(seed, 77),
	})
	if err != nil {
		panic("dataset: codebook training: " + err.Error())
	}
	codes := model.Quantize(descs)

	out := &pooling.Codes{V: v, PerImage: make([][]int, images)}
	for i, c := range codes {
		img := owner[i]
		out.PerImage[img] = append(out.PerImage[img], c)
	}
	return out
}

// codesNNZ counts the nonzeros of the pooled image×codebook matrix the
// codes will become: bin (i, v) is nonzero exactly when image i contains
// code v at least once, independent of the pooling exponent.
func codesNNZ(c *pooling.Codes) int64 {
	var nnz int64
	seen := make([]bool, c.V)
	for _, codes := range c.PerImage {
		for i := range seen {
			seen[i] = false
		}
		for _, v := range codes {
			if !seen[v] {
				seen[v] = true
				nnz++
			}
		}
	}
	return nnz
}

// Caltech101Codes generates the Caltech-101 stand-in: SIFT-like synthetic
// descriptors quantized against a k-means codebook of size 256 — the
// paper's exact pipeline on synthetic imagery.
func Caltech101Codes(s Scale, seed int64) (*pooling.Codes, Info) {
	images := pick(s, 96, 1024, 9145)
	patches := pick(s, 60, 180, 256)
	c := descriptorCodes(images, 256, patches, 16, 512, 1.1, seed)
	return c, Info{
		Name: "Caltech-101", PaperRows: 9145, PaperCols: 256, Rows: images, Cols: 256,
		NNZ:  codesNNZ(c),
		Note: "synthetic SIFT-like descriptors + learned k-means 1-of-256 codebook",
	}
}

// ScenesCodes generates the Scenes stand-in, analogous to Caltech101Codes
// with fewer images and flatter descriptor statistics.
func ScenesCodes(s Scale, seed int64) (*pooling.Codes, Info) {
	images := pick(s, 80, 768, 4485)
	patches := pick(s, 60, 160, 224)
	c := descriptorCodes(images, 256, patches, 16, 384, 0.9, seed)
	return c, Info{
		Name: "Scenes", PaperRows: 4485, PaperCols: 256, Rows: images, Cols: 256,
		NNZ:  codesNNZ(c),
		Note: "synthetic SIFT-like descriptors + learned k-means 1-of-256 codebook",
	}
}

// IsoletRaw generates the isolet stand-in: spoken-letter acoustic features,
// modelled as a strongly low-rank correlated matrix (26 letter classes)
// plus noise. At Full scale it matches the paper's exact 1559×617 shape.
func IsoletRaw(s Scale, seed int64) (*matrix.Dense, Info) {
	n := pick(s, 200, 800, 1559)
	m := pick(s, 64, 200, 617)
	raw := lowRankPlusNoise(n, m, 26, 30, 0.85, 0.4, seed)
	return raw, Info{
		Name: "isolet", PaperRows: 1559, PaperCols: 617, Rows: n, Cols: m, NNZ: raw.NNZ(),
		Note: "synthetic acoustic features (low-rank 26-class structure + noise)",
	}
}

// ---------------------------------------------------------------------------
// Sparse-native generators
//
// The real KDDCUP99 and Forest Cover corpora are dominated by categorical
// one-hot blocks and zero-heavy counters: after the standard one-hot
// encoding a record touches ~10 of >100 columns. The generators below
// reproduce that regime natively — they emit CSR triples directly, never
// materializing a dense matrix, so the nnz-proportional protocol paths can
// be exercised (and benchmarked) at densities the paper's evaluation
// actually exhibits (≤10%).

// zipfPick draws from {0,…,n−1} with P(i) ∝ 1/(i+1)^skew — the popularity
// profile of categorical columns like KDDCUP99's service field.
func zipfPick(rng interface{ Float64() float64 }, cum []float64) int {
	x := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func zipfCum(n int, skew float64) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), skew)
		total += w[i]
	}
	cum := make([]float64, n)
	acc := 0.0
	for i := range w {
		acc += w[i] / total
		cum[i] = acc
	}
	return cum
}

// KDDCUP99Sparse generates the one-hot-encoded KDDCUP99 stand-in as native
// CSR: per record a protocol one-hot (3 columns), a Zipf-popular service
// one-hot (70), a flag one-hot (11) and a handful of log-normal counter
// values among 38 counter columns — ≈8 nonzeros of 122 columns (~6.5%
// density), the sparse skewed regime of the paper's largest dataset.
func KDDCUP99Sparse(s Scale, seed int64) (*matrix.CSR, Info) {
	n := pick(s, 256, 65536, 262144)
	const (
		protoCols   = 3
		serviceCols = 70
		flagCols    = 11
		counterCols = 38
		d           = protoCols + serviceCols + flagCols + counterCols // 122
	)
	rng := hashing.Seeded(seed)
	serviceCum := zipfCum(serviceCols, 1.2)
	flagCum := zipfCum(flagCols, 1.5)
	triples := make([]matrix.Triple, 0, 8*n)
	for i := 0; i < n; i++ {
		triples = append(triples,
			matrix.Triple{Row: i, Col: rng.Intn(protoCols), Val: 1},
			matrix.Triple{Row: i, Col: protoCols + zipfPick(rng, serviceCum), Val: 1},
			matrix.Triple{Row: i, Col: protoCols + serviceCols + zipfPick(rng, flagCum), Val: 1},
		)
		// Heavy-tailed counters: most records touch a few counters with
		// log-normal magnitudes (rare huge bursts), the rest stay zero.
		counters := 2 + rng.Intn(6)
		base := protoCols + serviceCols + flagCols
		for c := 0; c < counters; c++ {
			col := base + rng.Intn(counterCols)
			triples = append(triples, matrix.Triple{
				Row: i, Col: col, Val: math.Exp(rng.NormFloat64()*1.8) - 1,
			})
		}
	}
	m := matrix.NewCSR(n, d, triples)
	return m, Info{
		Name: "KDDCUP99-sparse", PaperRows: 4898431, PaperCols: 122, Rows: n, Cols: d, NNZ: m.NNZ(),
		Note: "one-hot network records emitted natively as CSR (no dense materialization)",
	}
}

// ForestCoverSparse generates the binned Forest Cover stand-in as native
// CSR: ten cartographic features quantized to 1-of-10 bin indicators (with
// per-row cluster structure so the matrix has low-rank signal), a 1-of-4
// wilderness block and a 1-of-40 soil block — 12 nonzeros of 144 columns
// (~8.3% density).
func ForestCoverSparse(s Scale, seed int64) (*matrix.CSR, Info) {
	n := pick(s, 256, 4096, 65536)
	const (
		contFeatures = 10
		binsPerFeat  = 10
		wildCols     = 4
		soilCols     = 40
		d            = contFeatures*binsPerFeat + wildCols + soilCols // 144
	)
	rng := hashing.Seeded(seed)
	// Seven latent cover types pin each feature's typical bin, giving the
	// indicator matrix the correlated block structure PCA can exploit.
	const coverTypes = 7
	centers := make([][]int, coverTypes)
	for c := range centers {
		centers[c] = make([]int, contFeatures)
		for f := range centers[c] {
			centers[c][f] = rng.Intn(binsPerFeat)
		}
	}
	soilCum := zipfCum(soilCols, 1.0)
	triples := make([]matrix.Triple, 0, 12*n)
	for i := 0; i < n; i++ {
		cover := rng.Intn(coverTypes)
		for f := 0; f < contFeatures; f++ {
			bin := centers[cover][f]
			if rng.Float64() < 0.3 { // measurement jitter across bins
				bin = (bin + 1 + rng.Intn(binsPerFeat-1)) % binsPerFeat
			}
			triples = append(triples, matrix.Triple{Row: i, Col: f*binsPerFeat + bin, Val: 1})
		}
		wild := cover % wildCols
		if rng.Float64() < 0.15 {
			wild = rng.Intn(wildCols)
		}
		triples = append(triples,
			matrix.Triple{Row: i, Col: contFeatures*binsPerFeat + wild, Val: 1},
			matrix.Triple{Row: i, Col: contFeatures*binsPerFeat + wildCols + zipfPick(rng, soilCum), Val: 1},
		)
	}
	m := matrix.NewCSR(n, d, triples)
	return m, Info{
		Name: "ForestCover-sparse", PaperRows: 522000, PaperCols: 144, Rows: n, Cols: d, NNZ: m.NNZ(),
		Note: "binned cartographic indicators emitted natively as CSR (no dense materialization)",
	}
}
