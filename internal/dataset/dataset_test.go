package dataset

import (
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestShapesPerScale(t *testing.T) {
	for _, sc := range []Scale{Small, Medium} {
		fc, info := ForestCoverRaw(sc, 1)
		if fc.Rows() != info.Rows || fc.Cols() != info.Cols {
			t.Fatalf("ForestCover info mismatch at scale %d", sc)
		}
		if info.Cols != 54 {
			t.Fatal("ForestCover must have 54 raw features")
		}
		kdd, info := KDDCUP99Raw(sc, 1)
		if kdd.Cols() != 41 || info.Cols != 41 {
			t.Fatal("KDDCUP99 must have 41 raw features")
		}
		iso, info := IsoletRaw(sc, 1)
		if iso.Rows() != info.Rows {
			t.Fatal("isolet info mismatch")
		}
	}
}

func TestFullScaleIsoletMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation")
	}
	_, info := IsoletRaw(Full, 1)
	if info.Rows != 1559 || info.Cols != 617 {
		t.Fatalf("full isolet %dx%d, paper is 1559x617", info.Rows, info.Cols)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := ForestCoverRaw(Small, 42)
	b, _ := ForestCoverRaw(Small, 42)
	if !a.Equalf(b, 0) {
		t.Fatal("ForestCover not deterministic")
	}
	c, _ := ForestCoverRaw(Small, 43)
	if a.Equalf(c, 1e-9) {
		t.Fatal("different seeds identical")
	}
}

func TestForestCoverBinaryColumns(t *testing.T) {
	fc, _ := ForestCoverRaw(Small, 7)
	for i := 0; i < fc.Rows(); i++ {
		for j := 40; j < 54; j++ {
			v := fc.At(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("indicator column holds %g", v)
			}
		}
	}
}

func TestKDDHeavyTails(t *testing.T) {
	kdd, _ := KDDCUP99Raw(Medium, 3)
	// Burst columns must have max ≫ median-scale entries.
	col := kdd.ColCopy(5)
	var mx, sum float64
	for _, v := range col {
		if v > mx {
			mx = v
		}
		sum += v
	}
	mean := sum / float64(len(col))
	if mx < 10*mean {
		t.Fatalf("column 5 not heavy tailed: max %g, mean %g", mx, mean)
	}
}

func TestSpectralDecay(t *testing.T) {
	iso, _ := IsoletRaw(Small, 5)
	svd := matrix.SVD(iso)
	// Leading singular value should dominate the tail — the generators
	// promise correlated, decaying-spectrum data.
	if svd.Values[0] < 3*svd.Values[20] {
		t.Fatalf("spectrum too flat: σ0=%g σ20=%g", svd.Values[0], svd.Values[20])
	}
}

func TestCodesGenerators(t *testing.T) {
	c, info := Caltech101Codes(Small, 9)
	if c.V != 256 || info.Cols != 256 {
		t.Fatal("caltech codebook size")
	}
	if c.NumImages() != info.Rows {
		t.Fatal("caltech image count")
	}
	s, info2 := ScenesCodes(Small, 9)
	if s.V != 256 || info2.Name != "Scenes" {
		t.Fatal("scenes codes")
	}
}

func TestInfoString(t *testing.T) {
	_, info := ForestCoverRaw(Small, 1)
	str := info.String()
	if !strings.Contains(str, "ForestCover") || !strings.Contains(str, "522000") {
		t.Fatalf("info string %q", str)
	}
}

func TestPickBounds(t *testing.T) {
	if pick(Small, 1, 2, 3) != 1 || pick(Medium, 1, 2, 3) != 2 || pick(Full, 1, 2, 3) != 3 {
		t.Fatal("pick")
	}
}

func TestSparseGeneratorsDensityAndDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(Scale, int64) (*matrix.CSR, Info)
	}{
		{"KDDCUP99-sparse", KDDCUP99Sparse},
		{"ForestCover-sparse", ForestCoverSparse},
	} {
		a, info := tc.gen(Small, 7)
		if info.Name != tc.name {
			t.Fatalf("name %q, want %q", info.Name, tc.name)
		}
		if a.Rows() != info.Rows || a.Cols() != info.Cols || a.NNZ() != info.NNZ {
			t.Fatalf("%s: info does not describe the matrix", tc.name)
		}
		// The sparse regime the CSR backend exists for: ≤10% density.
		if sp := info.Sparsity(); sp <= 0 || sp > 0.10 {
			t.Fatalf("%s: density %.3f outside (0, 0.10]", tc.name, sp)
		}
		// Pure function of the seed.
		b, _ := tc.gen(Small, 7)
		if a.NNZ() != b.NNZ() {
			t.Fatalf("%s: nondeterministic nnz", tc.name)
		}
		for i := 0; i < a.Rows(); i++ {
			ok := true
			a.RowNNZ(i, func(j int, v float64) {
				if b.At(i, j) != v {
					ok = false
				}
			})
			if !ok {
				t.Fatalf("%s: row %d differs across identical seeds", tc.name, i)
			}
		}
		c, _ := tc.gen(Small, 8)
		diff := false
		for i := 0; i < a.Rows() && !diff; i++ {
			a.RowNNZ(i, func(j int, v float64) {
				if c.At(i, j) != v {
					diff = true
				}
			})
		}
		if !diff {
			t.Fatalf("%s: seed does not influence the data", tc.name)
		}
	}
}

func TestSparseGeneratorsHaveRowStructure(t *testing.T) {
	// Every record must touch its categorical blocks: no empty rows.
	m, _ := KDDCUP99Sparse(Small, 3)
	for i := 0; i < m.Rows(); i++ {
		if m.RowNorm2(i) == 0 {
			t.Fatalf("KDDCUP99-sparse row %d is empty", i)
		}
	}
	f, _ := ForestCoverSparse(Small, 3)
	for i := 0; i < f.Rows(); i++ {
		count := 0
		f.RowNNZ(i, func(int, float64) { count++ })
		// 10 bin indicators + wilderness + soil = 12 structural nonzeros.
		if count != 12 {
			t.Fatalf("ForestCover-sparse row %d has %d nonzeros, want 12", i, count)
		}
	}
}

func TestInfoSparsity(t *testing.T) {
	in := Info{Rows: 10, Cols: 10, NNZ: 25}
	if in.Sparsity() != 0.25 {
		t.Fatalf("sparsity = %g", in.Sparsity())
	}
	if (Info{}).Sparsity() != 0 {
		t.Fatal("empty info sparsity")
	}
}

// TestCodesNNZMatchesPooledMatrix pins Info.NNZ for the codes datasets to
// the real nonzero count of the pooled matrix (for any pooling exponent,
// a bin is nonzero iff the image contains that code).
func TestCodesNNZMatchesPooledMatrix(t *testing.T) {
	c, info := ScenesCodes(Small, 5)
	for _, p := range []float64{1, 5} {
		pooled, err := c.Pool(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := pooled.NNZ(); got != info.NNZ {
			t.Fatalf("p=%g: pooled nnz %d != Info.NNZ %d", p, got, info.NNZ)
		}
	}
	if info.Sparsity() >= 1 {
		t.Fatalf("pooled histograms reported as dense (sparsity %g)", info.Sparsity())
	}
}
