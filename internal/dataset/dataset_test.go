package dataset

import (
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestShapesPerScale(t *testing.T) {
	for _, sc := range []Scale{Small, Medium} {
		fc, info := ForestCoverRaw(sc, 1)
		if fc.Rows() != info.Rows || fc.Cols() != info.Cols {
			t.Fatalf("ForestCover info mismatch at scale %d", sc)
		}
		if info.Cols != 54 {
			t.Fatal("ForestCover must have 54 raw features")
		}
		kdd, info := KDDCUP99Raw(sc, 1)
		if kdd.Cols() != 41 || info.Cols != 41 {
			t.Fatal("KDDCUP99 must have 41 raw features")
		}
		iso, info := IsoletRaw(sc, 1)
		if iso.Rows() != info.Rows {
			t.Fatal("isolet info mismatch")
		}
	}
}

func TestFullScaleIsoletMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation")
	}
	_, info := IsoletRaw(Full, 1)
	if info.Rows != 1559 || info.Cols != 617 {
		t.Fatalf("full isolet %dx%d, paper is 1559x617", info.Rows, info.Cols)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := ForestCoverRaw(Small, 42)
	b, _ := ForestCoverRaw(Small, 42)
	if !a.Equalf(b, 0) {
		t.Fatal("ForestCover not deterministic")
	}
	c, _ := ForestCoverRaw(Small, 43)
	if a.Equalf(c, 1e-9) {
		t.Fatal("different seeds identical")
	}
}

func TestForestCoverBinaryColumns(t *testing.T) {
	fc, _ := ForestCoverRaw(Small, 7)
	for i := 0; i < fc.Rows(); i++ {
		for j := 40; j < 54; j++ {
			v := fc.At(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("indicator column holds %g", v)
			}
		}
	}
}

func TestKDDHeavyTails(t *testing.T) {
	kdd, _ := KDDCUP99Raw(Medium, 3)
	// Burst columns must have max ≫ median-scale entries.
	col := kdd.ColCopy(5)
	var mx, sum float64
	for _, v := range col {
		if v > mx {
			mx = v
		}
		sum += v
	}
	mean := sum / float64(len(col))
	if mx < 10*mean {
		t.Fatalf("column 5 not heavy tailed: max %g, mean %g", mx, mean)
	}
}

func TestSpectralDecay(t *testing.T) {
	iso, _ := IsoletRaw(Small, 5)
	svd := matrix.SVD(iso)
	// Leading singular value should dominate the tail — the generators
	// promise correlated, decaying-spectrum data.
	if svd.Values[0] < 3*svd.Values[20] {
		t.Fatalf("spectrum too flat: σ0=%g σ20=%g", svd.Values[0], svd.Values[20])
	}
}

func TestCodesGenerators(t *testing.T) {
	c, info := Caltech101Codes(Small, 9)
	if c.V != 256 || info.Cols != 256 {
		t.Fatal("caltech codebook size")
	}
	if c.NumImages() != info.Rows {
		t.Fatal("caltech image count")
	}
	s, info2 := ScenesCodes(Small, 9)
	if s.V != 256 || info2.Name != "Scenes" {
		t.Fatal("scenes codes")
	}
}

func TestInfoString(t *testing.T) {
	_, info := ForestCoverRaw(Small, 1)
	str := info.String()
	if !strings.Contains(str, "ForestCover") || !strings.Contains(str, "522000") {
		t.Fatalf("info string %q", str)
	}
}

func TestPickBounds(t *testing.T) {
	if pick(Small, 1, 2, 3) != 1 || pick(Medium, 1, 2, 3) != 2 || pick(Full, 1, 2, 3) != 3 {
		t.Fatal("pick")
	}
}
