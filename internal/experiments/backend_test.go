package experiments

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/fn"
	"repro/internal/matrix"
)

// sparsePanelConfig builds a minimal synthetic z-sampled panel over a
// sparse logical matrix, row-partitioned across 3 servers.
func sparsePanelConfig(backend Backend) PanelConfig {
	return PanelConfig{
		Name:    "sparse-equiv",
		Ratios:  []float64{0.5},
		Ks:      []int{3},
		Runs:    2,
		Seed:    77,
		Backend: backend,
		Build: func(seed int64) (*Built, error) {
			rng := rand.New(rand.NewSource(seed))
			const n, d, s = 120, 14, 3
			shares := make([][]matrix.Triple, s)
			for i := 0; i < n; i++ {
				t := rng.Intn(s)
				for j := 0; j < d; j++ {
					if rng.Float64() < 0.1 {
						shares[t] = append(shares[t], matrix.Triple{Row: i, Col: j, Val: rng.NormFloat64()})
					}
				}
			}
			locals := make([]matrix.Mat, s)
			for t := range locals {
				locals[t] = matrix.NewCSR(n, d, shares[t])
			}
			return &Built{
				Locals:    locals,
				F:         fn.Identity{},
				Z:         fn.Identity{},
				A:         matrix.SumMats(locals),
				DataWords: int64(n * d),
			}, nil
		},
	}
}

// TestPanelBackendEquivalence runs the same panel under every storage
// backend and demands exactly equal points — additive error, relative
// error, words, everything. This is the CI gate the tentpole's acceptance
// criterion names: backend choice must never change results, only cost.
func TestPanelBackendEquivalence(t *testing.T) {
	dense, err := RunPanel(context.Background(), sparsePanelConfig(BackendDense))
	if err != nil {
		t.Fatal(err)
	}
	if dense.Backend != "dense" {
		t.Fatalf("backend label %q", dense.Backend)
	}
	for _, backend := range []Backend{BackendCSR, BackendFast} {
		other, err := RunPanel(context.Background(), sparsePanelConfig(backend))
		if err != nil {
			t.Fatal(err)
		}
		if other.Backend != backend.String() {
			t.Fatalf("backend label %q, want %q", other.Backend, backend)
		}
		if len(dense.Points) != len(other.Points) {
			t.Fatalf("point counts differ: %d vs %d", len(dense.Points), len(other.Points))
		}
		for i := range dense.Points {
			if dense.Points[i] != other.Points[i] {
				t.Fatalf("point %d differs:\n dense: %+v\n %s:   %+v", i, dense.Points[i], backend, other.Points[i])
			}
		}
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"auto", BackendAuto, true},
		{"dense", BackendDense, true},
		{"csr", BackendCSR, true},
		{"fast", BackendFast, true},
		{"", BackendAuto, true},
		{"sparse", BackendAuto, false},
	} {
		got, err := ParseBackend(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	if BackendCSR.String() != "csr" || BackendDense.String() != "dense" ||
		BackendFast.String() != "fast" || BackendAuto.String() != "auto" {
		t.Fatal("backend names")
	}
}

// TestBackendApplyConverts checks the share conversion both ways — and
// that the default (auto) never touches CSR-native shares, which is what
// keeps sparse-built panels sparse without an explicit selection.
func TestBackendApplyConverts(t *testing.T) {
	d := matrix.NewDense(2, 2)
	d.Set(0, 1, 5)
	out := BackendCSR.Apply([]matrix.Mat{d})
	if _, ok := out[0].(*matrix.CSR); !ok {
		t.Fatalf("BackendCSR.Apply produced %T", out[0])
	}
	kept := BackendAuto.Apply(out)
	if kept[0] != out[0] {
		t.Fatal("BackendAuto.Apply must keep shares as installed")
	}
	back := BackendDense.Apply(out)
	if _, ok := back[0].(*matrix.Dense); !ok {
		t.Fatalf("BackendDense.Apply produced %T", back[0])
	}
	if back[0].At(0, 1) != 5 {
		t.Fatal("conversion lost data")
	}
}
