// Package experiments reproduces the paper's evaluation (Section VIII):
// for every panel of Figures 1 and 2 it builds the dataset pipeline,
// bounds the total communication to a fraction ("ratio") of the sum of
// local data sizes by tuning the sampler parameters and the row count r —
// exactly the paper's methodology — runs the distributed protocol, and
// reports the measured additive error, the measured relative error and the
// theoretical prediction k²/r for k = 3,…,15.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/hashing"
	"repro/internal/matrix"
	"repro/internal/parallel"
	"repro/internal/samplers"
	"repro/internal/zsampler"
)

// Backend selects the storage representation the per-server shares use
// during the protocol run: auto (the zero value) keeps whatever the panel
// builder produced, dense and csr convert. Points are bit-identical under
// every choice (the matrix.Mat iteration contract); only memory footprint
// and per-row cost differ.
type Backend = matrix.Backend

// Re-exported so harness callers need not import internal/matrix.
const (
	BackendAuto  = matrix.BackendAuto
	BackendDense = matrix.BackendDense
	BackendCSR   = matrix.BackendCSR
	BackendFast  = matrix.BackendFast
)

// ParseBackend parses a CLI backend name ("" means auto).
func ParseBackend(s string) (Backend, error) { return matrix.ParseBackend(s) }

// Built is one panel's prepared pipeline: what each server holds, the
// entrywise f, the optional weight function z (nil selects the uniform
// sampler), and the materialized ground truth for error measurement.
type Built struct {
	// Locals are the per-server shares A^t.
	Locals []matrix.Mat
	// F is the entrywise function of the generalized partition model.
	F fn.Func
	// Z selects the generalized sampler when non-nil; nil means rows have
	// near-equal norms and uniform sampling applies.
	Z fn.ZFunc
	// A is the exact global implicit matrix (ground truth; never shown to
	// the protocol).
	A *matrix.Dense
	// DataWords is the sum of local data sizes in words, the denominator
	// of the paper's communication ratio.
	DataWords int64
}

// PanelConfig describes one figure panel.
type PanelConfig struct {
	// Name matches the paper's panel title, e.g. "Caltech-101(P=5)".
	Name string
	// Ratios are the communication budgets as fractions of DataWords.
	Ratios []float64
	// Ks are the projection dimensions of the x-axis.
	Ks []int
	// Runs is the number of repetitions averaged (the paper uses 5).
	Runs int
	// Seed drives dataset generation and protocol randomness.
	Seed int64
	// Baseline additionally runs the centralized FKV sampler [11] with the
	// same row budget and records its additive error per point — the ideal
	// the distributed protocol approximates.
	Baseline bool
	// Workers bounds the worker pool the (ratio, run) sweep cells fan out
	// on (0 = one per CPU, 1 = sequential). Every cell owns a private
	// Network and a seed derived from (ratio, run), so the panel's points
	// are identical at any worker count.
	Workers int
	// Backend selects the share storage representation (auto keeps what
	// Build produced); points are identical under every choice.
	Backend Backend
	// Build constructs the pipeline (datasets are built once per panel).
	Build func(seed int64) (*Built, error)
}

// Point is one (ratio, k) measurement averaged over runs.
type Point struct {
	K          int
	Ratio      float64
	R          int     // rows sampled per run
	Prediction float64 // k²/r, the paper's theoretical additive error
	Additive   float64 // measured |‖A−AP‖²−‖A−[A]_k‖²|/‖A‖²
	Relative   float64 // measured ‖A−AP‖²/‖A−[A]_k‖²
	Words      int64   // measured communication per run (average)
	// BaselineAdditive is the centralized FKV sampler's additive error at
	// the same r (−1 when the baseline was not requested).
	BaselineAdditive float64
}

// Panel is a completed figure panel.
type Panel struct {
	Name      string
	Sampler   string
	Backend   string
	DataWords int64
	Points    []Point
}

// DefaultKs is the paper's x-axis: projection dimensions 3,6,9,12,15.
func DefaultKs() []int { return []int{3, 6, 9, 12, 15} }

// errCellSkipped marks sweep cells abandoned because an earlier cell had
// already failed; it never reaches callers (the genuine error does).
var errCellSkipped = errors.New("experiments: cell skipped after earlier failure")

// chooseZParams picks the richest sketch configuration whose traffic fits
// within half the budget, leaving the rest for row collection — the
// "adjust the number of repetitions, hash buckets, B, W and e" step of the
// paper's setup (the ladder itself lives in package zsampler).
func chooseZParams(budget int64, s, l int, seed int64) zsampler.Params {
	return zsampler.ParamsForBudget(budget/2, s, l, seed)
}

// RunPanel executes one figure panel. ctx aborts the sweep between
// protocol rounds; cells not yet started are skipped.
func RunPanel(ctx context.Context, cfg PanelConfig) (*Panel, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Runs < 1 {
		cfg.Runs = 1
	}
	if len(cfg.Ks) == 0 {
		cfg.Ks = DefaultKs()
	}
	built, err := cfg.Build(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s: %w", cfg.Name, err)
	}
	built.Locals = cfg.Backend.Apply(built.Locals)
	s := len(built.Locals)
	n, d := built.Locals[0].Rows(), built.Locals[0].Cols()
	maxK := 0
	for _, k := range cfg.Ks {
		if k > maxK {
			maxK = k
		}
	}
	// The ground-truth spectrum (a full Jacobi eigendecomposition of A's
	// Gram matrix) is the panel's dominant sequential cost at Small scale —
	// it used to run before the sweep fanned out, serializing the whole
	// panel (the BENCH_pr3 zero-speedup finding). It only gates each
	// cell's *evaluation*, not the protocol run, so it now computes
	// concurrently with the cells; getOptimal blocks the first evaluator.
	optCh := make(chan map[int]float64, 1)
	go func() { optCh <- baseline.OptimalResiduals(built.A, cfg.Ks) }()
	var optOnce sync.Once
	var optimal map[int]float64
	getOptimal := func() map[int]float64 {
		optOnce.Do(func() { optimal = <-optCh })
		return optimal
	}
	totalF2 := built.A.FrobNorm2()

	samplerName := "uniform"
	if built.Z != nil {
		samplerName = "z-sampler(" + built.Z.Name() + ")"
	}
	panel := &Panel{Name: cfg.Name, Sampler: samplerName, Backend: cfg.Backend.String(), DataWords: built.DataWords}

	// Every (ratio, run) cell of the sweep is an independent protocol
	// execution against its own Network, so the cells fan out across the
	// worker pool; the per-cell metrics land in their own slot and are
	// reduced afterwards in (ratio, run) order, keeping the averaged
	// points bit-identical to a sequential sweep.
	type cellResult struct {
		add, rel map[int]float64 // per k
		words    int64
		r        int
		err      error
	}
	cells := make([]cellResult, len(cfg.Ratios)*cfg.Runs)
	// Once any cell fails, cells that have not started yet are skipped:
	// the sweep is doomed and the remaining protocol runs would only burn
	// CPU before the same error surfaces.
	var failed atomic.Bool
	runCell := func(ratio float64, run int) cellResult {
		if failed.Load() {
			return cellResult{err: errCellSkipped}
		}
		budget := int64(ratio * float64(built.DataWords))
		net := comm.NewNetwork(s)
		runSeed := hashing.DeriveSeed(cfg.Seed, uint64(1000*run+int(ratio*1e4)))

		var sampler core.RowSampler
		if built.Z == nil {
			u, err := samplers.NewUniform(net, built.Locals, runSeed)
			if err != nil {
				return cellResult{err: err}
			}
			sampler = u
		} else {
			zp := chooseZParams(budget, s, n*d, runSeed)
			zr, err := samplers.NewZRow(ctx, net, built.Locals, built.Z, zp)
			if err != nil {
				return cellResult{err: fmt.Errorf("experiments: %s ratio %g: %w", cfg.Name, ratio, err)}
			}
			sampler = zr
		}
		setup := net.Words()
		remaining := budget - setup
		r := int(remaining / int64((s-1)*d+s))
		if r < maxK+1 {
			r = maxK + 1 // floor: below this the SVD is degenerate
		}

		results, err := core.RunMultiK(ctx, net, sampler, built.F, d, cfg.Ks, core.Options{K: maxK, R: r})
		if err != nil {
			return cellResult{err: fmt.Errorf("experiments: %s ratio %g run %d: %w", cfg.Name, ratio, run, err)}
		}
		cell := cellResult{add: make(map[int]float64, len(cfg.Ks)), rel: make(map[int]float64, len(cfg.Ks)), r: r}
		opt := getOptimal()
		for _, k := range cfg.Ks {
			m := baseline.Evaluate(built.A, results[k].P, k, opt[k])
			cell.add[k] = m.Additive
			cell.rel[k] = m.Relative
		}
		cell.words = net.Words()
		return cell
	}
	parallel.For(cfg.Workers, len(cells), func(i int) {
		cells[i] = runCell(cfg.Ratios[i/cfg.Runs], i%cfg.Runs)
		if cells[i].err != nil {
			failed.Store(true)
		}
	})
	// Surface the first genuine error in (ratio, run) order; skip markers
	// only ever accompany a real failure elsewhere in the sweep.
	for _, cell := range cells {
		if cell.err != nil && cell.err != errCellSkipped {
			return nil, cell.err
		}
	}

	for ri, ratio := range cfg.Ratios {
		var rUsed int
		var wordsSum int64
		type agg struct {
			add, rel float64
		}
		sums := make(map[int]*agg, len(cfg.Ks))
		for _, k := range cfg.Ks {
			sums[k] = &agg{}
		}
		for run := 0; run < cfg.Runs; run++ {
			cell := cells[ri*cfg.Runs+run]
			for _, k := range cfg.Ks {
				sums[k].add += cell.add[k]
				sums[k].rel += cell.rel[k]
			}
			wordsSum += cell.words
			rUsed = cell.r
		}
		for _, k := range cfg.Ks {
			a := sums[k]
			pt := Point{
				K:                k,
				Ratio:            ratio,
				R:                rUsed,
				Prediction:       float64(k*k) / float64(rUsed),
				Additive:         a.add / float64(cfg.Runs),
				Relative:         a.rel / float64(cfg.Runs),
				Words:            wordsSum / int64(cfg.Runs),
				BaselineAdditive: -1,
			}
			if cfg.Baseline {
				P := baseline.FKV(built.A, k, rUsed, hashing.DeriveSeed(cfg.Seed, uint64(9e6+k)))
				pt.BaselineAdditive = baseline.Evaluate(built.A, P, k, getOptimal()[k]).Additive
			}
			panel.Points = append(panel.Points, pt)
		}
	}
	sort.SliceStable(panel.Points, func(i, j int) bool {
		if panel.Points[i].Ratio != panel.Points[j].Ratio {
			return panel.Points[i].Ratio > panel.Points[j].Ratio
		}
		return panel.Points[i].K < panel.Points[j].K
	})
	_ = totalF2
	return panel, nil
}

// hasBaseline reports whether any point carries an FKV baseline value.
func (p *Panel) hasBaseline() bool {
	for _, pt := range p.Points {
		if pt.BaselineAdditive >= 0 {
			return true
		}
	}
	return false
}

// Format renders a panel as the textual analogue of the paper's figure
// pair: one row per (ratio, k) with prediction, additive and relative
// error (and the centralized FKV additive error when measured).
func (p *Panel) Format() string {
	var b strings.Builder
	withBase := p.hasBaseline()
	fmt.Fprintf(&b, "%s  [sampler: %s, backend: %s, data: %d words]\n", p.Name, p.Sampler, p.Backend, p.DataWords)
	fmt.Fprintf(&b, "  %-7s %-4s %-6s %-12s %-12s %-10s %-10s",
		"ratio", "k", "r", "prediction", "additive", "relative", "words")
	if withBase {
		fmt.Fprintf(&b, " %-12s", "fkv-additive")
	}
	b.WriteByte('\n')
	for _, pt := range p.Points {
		fmt.Fprintf(&b, "  %-7.3g %-4d %-6d %-12.4e %-12.4e %-10.4f %-10d",
			pt.Ratio, pt.K, pt.R, pt.Prediction, pt.Additive, pt.Relative, pt.Words)
		if withBase {
			fmt.Fprintf(&b, " %-12.4e", pt.BaselineAdditive)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the panel as CSV rows (with header) for plotting.
func (p *Panel) CSV() string {
	var b strings.Builder
	b.WriteString("panel,sampler,ratio,k,r,prediction,additive,relative,words,fkv_additive\n")
	for _, pt := range p.Points {
		fmt.Fprintf(&b, "%s,%s,%g,%d,%d,%g,%g,%g,%d,%g\n",
			p.Name, p.Sampler, pt.Ratio, pt.K, pt.R, pt.Prediction, pt.Additive, pt.Relative, pt.Words, pt.BaselineAdditive)
	}
	return b.String()
}
