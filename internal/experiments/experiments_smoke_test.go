package experiments

import (
	"context"
	"testing"

	"repro/internal/dataset"
)

func TestSmokePanels(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	su := Suite{Scale: dataset.Small, Seed: 11, Runs: 1, Ks: []int{3, 6}}
	for _, name := range []string{"ForestCover", "Caltech-101(P=2)", "isolet"} {
		cfg, err := PanelByName(su, name)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Ratios = []float64{0.5}
		p, err := RunPanel(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("\n%s", p.Format())
		for _, pt := range p.Points {
			if pt.Additive < 0 || pt.Relative < 1-1e-9 {
				t.Errorf("%s k=%d: bad metrics add=%g rel=%g", name, pt.K, pt.Additive, pt.Relative)
			}
		}
	}
}
