package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/zsampler"
)

func TestPanelsCoverThePaper(t *testing.T) {
	su := Suite{Scale: dataset.Small, Seed: 1, Runs: 1}
	panels := Panels(su)
	if len(panels) != 11 {
		t.Fatalf("%d panels, the paper's figures have 11", len(panels))
	}
	want := []string{
		"ForestCover", "KDDCUP99",
		"Caltech-101(P=1)", "Caltech-101(P=2)", "Caltech-101(P=5)", "Caltech-101(P=20)",
		"Scenes(P=1)", "Scenes(P=2)", "Scenes(P=5)", "Scenes(P=20)",
		"isolet",
	}
	for i, name := range want {
		if panels[i].Name != name {
			t.Fatalf("panel %d is %q, want %q", i, panels[i].Name, name)
		}
	}
	// Ratio sets per the paper: KDDCUP99 uses the narrow set.
	if panels[1].Ratios[0] != 0.1 || panels[1].Ratios[2] != 0.01 {
		t.Fatalf("KDDCUP99 ratios %v", panels[1].Ratios)
	}
	if panels[0].Ratios[0] != 0.5 {
		t.Fatalf("ForestCover ratios %v", panels[0].Ratios)
	}
}

func TestPanelByName(t *testing.T) {
	su := Suite{Scale: dataset.Small, Seed: 1, Runs: 1}
	if _, err := PanelByName(su, "isolet"); err != nil {
		t.Fatal(err)
	}
	if _, err := PanelByName(su, "nope"); err == nil {
		t.Fatal("unknown panel accepted")
	}
}

func TestDefaultKsMatchPaper(t *testing.T) {
	ks := DefaultKs()
	want := []int{3, 6, 9, 12, 15}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("ks = %v", ks)
		}
	}
}

func TestChooseZParamsRespectsBudget(t *testing.T) {
	const s, l = 10, 1 << 18
	budget := int64(1 << 19)
	p := chooseZParams(budget, s, l, 1)
	if cost := zsampler.EstimateSetupWords(p, s, l); cost > budget/2 {
		t.Fatalf("sketch cost %d exceeds half budget %d", cost, budget/2)
	}
}

func TestFormatAndCSV(t *testing.T) {
	p := &Panel{
		Name: "demo", Sampler: "uniform", DataWords: 1000,
		Points: []Point{{K: 3, Ratio: 0.5, R: 10, Prediction: 0.9, Additive: 0.01, Relative: 1.1, Words: 500}},
	}
	txt := p.Format()
	if !strings.Contains(txt, "demo") || !strings.Contains(txt, "prediction") {
		t.Fatalf("format output %q", txt)
	}
	csv := p.CSV()
	if !strings.HasPrefix(csv, "panel,sampler,ratio,k,r,prediction,additive,relative,words,fkv_additive\n") {
		t.Fatalf("csv header %q", csv)
	}
	if !strings.Contains(csv, "demo,uniform,0.5,3,10,0.9,0.01,1.1,500,") {
		t.Fatalf("csv row %q", csv)
	}
}

// TestBuildersProduceConsistentGroundTruth drives each builder type once
// and verifies the implicit-matrix identity A = f(Σ locals) on a few
// entries.
func TestBuildersProduceConsistentGroundTruth(t *testing.T) {
	su := Suite{Scale: dataset.Small, Seed: 3, Runs: 1, Ks: []int{3}}
	for _, name := range []string{"Scenes(P=5)", "isolet"} {
		cfg, err := PanelByName(su, name)
		if err != nil {
			t.Fatal(err)
		}
		built, err := cfg.Build(cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		implied := matrix.SumMats(built.Locals).Apply(built.F.Apply)
		if !implied.Equalf(built.A, 1e-6*built.A.MaxAbs()) {
			t.Fatalf("%s: ground truth A != f(Σ locals)", name)
		}
	}
}

// TestCommunicationWithinBudget verifies the harness's core discipline:
// measured traffic stays within a modest factor of the requested budget
// (the r floor can push slightly past it at tiny scales).
func TestCommunicationWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	su := Suite{Scale: dataset.Small, Seed: 5, Runs: 1, Ks: []int{3, 6}}
	cfg, err := PanelByName(su, "Scenes(P=2)")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ratios = []float64{0.25}
	panel, err := RunPanel(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(0.25 * float64(panel.DataWords))
	for _, pt := range panel.Points {
		if pt.Words > 2*budget {
			t.Fatalf("k=%d used %d words against budget %d", pt.K, pt.Words, budget)
		}
	}
}

// TestBaselineColumn verifies the FKV comparison column: the centralized
// ideal must be within the same error regime as the distributed protocol.
func TestBaselineColumn(t *testing.T) {
	su := Suite{Scale: dataset.Small, Seed: 9, Runs: 1, Ks: []int{3}}
	cfg, err := PanelByName(su, "isolet")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ratios = []float64{0.5}
	cfg.Baseline = true
	panel, err := RunPanel(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := panel.Points[0]
	if pt.BaselineAdditive < 0 {
		t.Fatal("baseline column missing")
	}
	// The distributed protocol should be within 10× of the centralized
	// ideal at the same r (both are noisy at Small scale).
	if pt.Additive > 10*pt.BaselineAdditive+0.1 {
		t.Fatalf("distributed %g vs baseline %g", pt.Additive, pt.BaselineAdditive)
	}
}
