package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/fn"
	"repro/internal/matrix"
	"repro/internal/pooling"
	"repro/internal/rff"
	"repro/internal/robust"
)

// Suite holds the global experiment knobs.
type Suite struct {
	// Scale selects dataset sizes (tests: Small, default: Medium).
	Scale dataset.Scale
	// Seed drives everything.
	Seed int64
	// Runs is the number of repetitions averaged per point (paper: 5).
	Runs int
	// Ks overrides the projection dimensions (nil = paper's 3..15).
	Ks []int
	// Workers bounds each panel's sweep-cell worker pool (0 = one per
	// CPU, 1 = sequential); points are identical at any setting.
	Workers int
	// Backend selects the per-server share storage (auto keeps what the
	// builder produced); points are identical under every choice.
	Backend Backend
}

// rffPanel builds a Fourier-feature panel: raw data row-partitioned across
// s servers, expanded with a shared random feature map, PCA'd with the
// uniform sampler (Section VI-A).
func rffPanel(name string, s int, features int, ratios []float64,
	gen func(sc dataset.Scale, seed int64) (*matrix.Dense, dataset.Info), su Suite) PanelConfig {
	return PanelConfig{
		Name:    name,
		Ratios:  ratios,
		Ks:      su.Ks,
		Runs:    su.Runs,
		Workers: su.Workers,
		Backend: su.Backend,
		Seed:    su.Seed,
		Build: func(seed int64) (*Built, error) {
			raw, _ := gen(su.Scale, seed)
			mp, err := rff.NewMap(raw.Cols(), features, rffBandwidth(raw), seed+1)
			if err != nil {
				return nil, err
			}
			// "We randomly distributed the original data to different
			// servers": row partition, then local projection + phase share.
			parts := robust.RowPartition(raw, s, seed+2)
			locals := rff.DistributedExpand(parts, mp)
			A := mp.ExactExpansion(raw)
			// Sum of local data sizes: each server stores its own rows of
			// the raw data; the implicit expanded matrix has n·features
			// words in total.
			n := raw.Rows()
			return &Built{
				Locals:    matrix.AsMats(locals),
				F:         fn.SqrtTwoCos{},
				Z:         nil,
				A:         A,
				DataWords: int64(n * features),
			}, nil
		},
	}
}

// rffBandwidth picks the kernel bandwidth as the root-mean-square row norm
// of the raw data — the standard median-distance heuristic's cheap cousin,
// keeping the kernel informative at any dataset scale.
func rffBandwidth(raw *matrix.Dense) float64 {
	n := raw.Rows()
	var s float64
	for i := 0; i < n; i++ {
		s += raw.RowNorm2(i)
	}
	m := s / float64(n)
	if m <= 0 {
		return 1
	}
	return math.Sqrt(m)
}

// gmPanel builds a pooled-codes panel: codes split across s servers, pooled
// locally, combined with the generalized mean via the softmax sampler
// (Section VI-B).
func gmPanel(name string, s int, p float64, ratios []float64,
	gen func(sc dataset.Scale, seed int64) (*pooling.Codes, dataset.Info), su Suite) PanelConfig {
	return PanelConfig{
		Name:    name,
		Ratios:  ratios,
		Ks:      su.Ks,
		Runs:    su.Runs,
		Workers: su.Workers,
		Backend: su.Backend,
		Seed:    su.Seed,
		Build: func(seed int64) (*Built, error) {
			codes, _ := gen(su.Scale, seed)
			split := codes.Split(s, seed+1)
			pools := make([]*matrix.Dense, s)
			for t, c := range split {
				pool, err := c.Pool(p)
				if err != nil {
					return nil, err
				}
				pools[t] = pool
			}
			locals := pooling.GMShares(pools, p)
			A := pooling.GlobalGM(pools, p)
			n, v := A.Dims()
			return &Built{
				Locals: matrix.AsMats(locals),
				F:      fn.GM{P: p},
				Z:      fn.GM{P: p},
				A:      A,
				// Every server stores a full n×V pooled matrix.
				DataWords: int64(s) * int64(n*v),
			}, nil
		},
	}
}

// robustPanel builds the isolet robust-PCA panel: corrupt a feature matrix,
// arbitrarily partition it, and cap outliers with the Huber ψ
// (Section VI-C).
func robustPanel(name string, s int, ratios []float64, su Suite) PanelConfig {
	return PanelConfig{
		Name:    name,
		Ratios:  ratios,
		Ks:      su.Ks,
		Runs:    su.Runs,
		Workers: su.Workers,
		Backend: su.Backend,
		Seed:    su.Seed,
		Build: func(seed int64) (*Built, error) {
			raw, _ := dataset.IsoletRaw(su.Scale, seed)
			corrupted, _, err := robust.Corrupt(raw, 50, 1e4, seed+1)
			if err != nil {
				return nil, err
			}
			locals := robust.ArbitraryPartition(corrupted, s, seed+2)
			// Huber threshold: cap at a few standard deviations of the
			// clean signal so genuine entries pass through and the 1e4
			// outliers are clipped.
			huber := fn.Huber{K: huberThreshold(raw)}
			A := corrupted.Apply(huber.Apply)
			n, d := A.Dims()
			return &Built{
				Locals: matrix.AsMats(locals),
				F:      huber,
				Z:      huber,
				A:      A,
				// Arbitrary partition: every server stores a full matrix.
				DataWords: int64(s) * int64(n*d),
			}, nil
		},
	}
}

// huberThreshold returns 6× the RMS entry magnitude of the clean matrix.
func huberThreshold(clean *matrix.Dense) float64 {
	n, d := clean.Dims()
	rms := math.Sqrt(clean.FrobNorm2() / float64(n*d))
	if rms <= 0 {
		return 1
	}
	return 6 * rms
}

// Panels returns all eleven figure panels of the paper's evaluation with
// its exact ratio sets and server counts: 10 servers for Forest Cover,
// Scenes and isolet; 50 for KDDCUP99 and Caltech-101.
func Panels(su Suite) []PanelConfig {
	if su.Runs < 1 {
		su.Runs = 5
	}
	if su.Ks == nil {
		su.Ks = DefaultKs()
	}
	wide := []float64{0.5, 0.25, 0.1}
	narrow := []float64{0.1, 0.05, 0.01}
	features := map[dataset.Scale]int{dataset.Small: 32, dataset.Medium: 128, dataset.Full: 512}[su.Scale]
	kddFeatures := map[dataset.Scale]int{dataset.Small: 24, dataset.Medium: 64, dataset.Full: 50}[su.Scale]

	out := []PanelConfig{
		rffPanel("ForestCover", 10, features, wide, dataset.ForestCoverRaw, su),
		rffPanel("KDDCUP99", 50, kddFeatures, narrow, dataset.KDDCUP99Raw, su),
	}
	for _, p := range []float64{1, 2, 5, 20} {
		out = append(out, gmPanel(fmt.Sprintf("Caltech-101(P=%g)", p), 50, p, wide, dataset.Caltech101Codes, su))
	}
	for _, p := range []float64{1, 2, 5, 20} {
		out = append(out, gmPanel(fmt.Sprintf("Scenes(P=%g)", p), 10, p, wide, dataset.ScenesCodes, su))
	}
	out = append(out, robustPanel("isolet", 10, wide, su))
	return out
}

// PanelByName returns the panel configuration with the given name.
func PanelByName(su Suite, name string) (PanelConfig, error) {
	for _, p := range Panels(su) {
		if p.Name == name {
			return p, nil
		}
	}
	return PanelConfig{}, fmt.Errorf("experiments: unknown panel %q", name)
}
