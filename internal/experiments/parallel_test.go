package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

// TestRunPanelWorkersDeterministic verifies the sweep-cell fan-out: a
// panel swept on four workers must produce exactly the points the
// sequential sweep produces, including measured communication.
func TestRunPanelWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running: skipped in -short (CI runs the full suite)")
	}
	run := func(workers int) []Point {
		su := Suite{Scale: dataset.Small, Seed: 21, Runs: 2, Ks: []int{3, 6}, Workers: workers}
		cfg, err := PanelByName(su, "Scenes(P=2)")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Ratios = []float64{0.5, 0.25}
		panel, err := RunPanel(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return panel.Points
	}
	sequential := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(sequential, parallel) {
		t.Fatalf("parallel sweep changed the points:\nsequential %+v\nparallel   %+v", sequential, parallel)
	}
}
