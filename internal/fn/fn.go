// Package fn is the library of entrywise functions f the paper applies to
// the summed matrix, paired with the weight functions z required by the
// generalized sampler.
//
// A weight function z must satisfy the paper's property P (Section V):
// for |x1| ≥ |x2|, x1²/z(x1) ≥ x2²/z(x2) and z(x1) ≥ z(x2), with z(0)=0.
// The sampler samples entries with probability proportional to z, and the
// framework tolerates any z with z(x)/c ≤ f(x)² ≤ c·z(x) for a constant c.
//
// The ψ-functions of Table I (Huber, L1−L2, "Fair") are implemented here
// exactly as printed in the paper.
package fn

import (
	"fmt"
	"math"
)

// Func is an entrywise function f: the global matrix is A_ij = f(Σ_t A^t_ij).
type Func interface {
	// Name identifies the function in reports and error messages.
	Name() string
	// Apply evaluates f(x).
	Apply(x float64) float64
}

// ZFunc is a weight function with property P used by the generalized
// sampler. Implementations must be even in x (depend only on |x|),
// nondecreasing in |x|, and zero at zero.
type ZFunc interface {
	Name() string
	// Z evaluates the weight z(x) ≥ 0.
	Z(x float64) float64
	// Inverse returns the smallest x ≥ 0 with Z(x) = y, or NaN when no such
	// x exists (e.g. y above the range of a bounded ψ²). The sampler's
	// coordinate-injection step skips classes whose value is not attained,
	// exactly as the paper prescribes ("if z⁻¹((1+ε)^i) does not exist,
	// S_i(a) must be empty").
	Inverse(y float64) float64
}

// Pair couples the entrywise f with a property-P weight z and the distortion
// constant c with z/c ≤ f² ≤ c·z.
type Pair struct {
	F Func
	Z ZFunc
	// C is the distortion constant relating f² and z (1 when z = f²).
	C float64
}

// ---------------------------------------------------------------------------
// Identity and powers

// Identity is f(x) = x (plain distributed PCA of the summed matrix).
type Identity struct{}

func (Identity) Name() string            { return "identity" }
func (Identity) Apply(x float64) float64 { return x }
func (Identity) Z(x float64) float64     { return x * x }
func (Identity) Inverse(y float64) float64 {
	if y < 0 {
		return math.NaN()
	}
	return math.Sqrt(y)
}

// AbsPower is f(x) = |x|^p, with z = |x|^{2p}. Property P requires the
// sampler's exponent 2p; any p > 0 is accepted here (the framework itself
// is agnostic; the paper's lower bounds kick in for p > 1 only for
// *relative* error).
type AbsPower struct{ P float64 }

func (f AbsPower) Name() string            { return fmt.Sprintf("|x|^%g", f.P) }
func (f AbsPower) Apply(x float64) float64 { return math.Pow(math.Abs(x), f.P) }
func (f AbsPower) Z(x float64) float64     { return math.Pow(math.Abs(x), 2*f.P) }
func (f AbsPower) Inverse(y float64) float64 {
	if y < 0 {
		return math.NaN()
	}
	return math.Pow(y, 1/(2*f.P))
}

// ---------------------------------------------------------------------------
// Softmax / generalized mean (Section VI-B)

// GM is the softmax (generalized mean) configuration. Server t locally
// replaces its entry M^t_ij with (1/s)·|M^t_ij|^p; the implicit global
// entry is then GM(|M^1_ij|,…,|M^s_ij|) = f(Σ_t A^t_ij) with f(x) = x^{1/p}.
// Large p approximates an entrywise max across servers.
type GM struct {
	// P is the generalized-mean exponent (p ≥ 1; p = 1 is the mean).
	P float64
}

func (g GM) Name() string { return fmt.Sprintf("GM(p=%g)", g.P) }

// Apply is f(x) = x^{1/p} on the locally prepared sums (x ≥ 0 by
// construction; negative inputs from roundoff are clamped).
func (g GM) Apply(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, 1/g.P)
}

// Z is z(x) = |x|^{2/p}; since 2/p ≤ 2 for p ≥ 1, x²/z = |x|^{2−2/p} is
// nondecreasing, so property P holds.
func (g GM) Z(x float64) float64 { return math.Pow(math.Abs(x), 2/g.P) }

func (g GM) Inverse(y float64) float64 {
	if y < 0 {
		return math.NaN()
	}
	return math.Pow(y, g.P/2)
}

// Prepare converts a raw local entry into the power-sum encoding: the value
// server t contributes to the implicit sum for GM with s servers.
func (g GM) Prepare(raw float64, s int) float64 {
	return math.Pow(math.Abs(raw), g.P) / float64(s)
}

// Value computes the exact generalized mean of the raw values, for ground
// truth in tests and experiments.
func (g GM) Value(raw []float64) float64 {
	var sum float64
	for _, v := range raw {
		sum += math.Pow(math.Abs(v), g.P)
	}
	return math.Pow(sum/float64(len(raw)), 1/g.P)
}

// ---------------------------------------------------------------------------
// ψ-functions of M-estimators (Table I, Section VI-C)

// Huber is the ψ-function of the Huber M-estimator:
// ψ(x) = x for |x| ≤ K, K·sgn(x) otherwise. It caps entries damaged by
// large noise while preserving small entries, giving robust PCA.
type Huber struct{ K float64 }

func (h Huber) Name() string { return fmt.Sprintf("huber(k=%g)", h.K) }

func (h Huber) Apply(x float64) float64 {
	if x > h.K {
		return h.K
	}
	if x < -h.K {
		return -h.K
	}
	return x
}

// Z is ψ(x)², bounded by K²: x²/z = max(1, x²/K²) is nondecreasing in |x|
// and z is nondecreasing, so property P holds.
func (h Huber) Z(x float64) float64 {
	v := h.Apply(x)
	return v * v
}

func (h Huber) Inverse(y float64) float64 {
	if y < 0 || y > h.K*h.K {
		return math.NaN()
	}
	return math.Sqrt(y)
}

// L1L2 is the ψ-function of the L1−L2 M-estimator: ψ(x) = x/(1+x²/2)^½.
type L1L2 struct{}

func (L1L2) Name() string { return "l1-l2" }

func (L1L2) Apply(x float64) float64 { return x / math.Sqrt(1+x*x/2) }

// Z is ψ² = x²/(1+x²/2), which grows from x² near zero to the constant 2:
// at most quadratic growth, hence property P.
func (f L1L2) Z(x float64) float64 {
	v := f.Apply(x)
	return v * v
}

func (f L1L2) Inverse(y float64) float64 {
	// Solve x²/(1+x²/2) = y for x ≥ 0: x² = y/(1−y/2), defined for y < 2.
	if y < 0 || y >= 2 {
		return math.NaN()
	}
	return math.Sqrt(y / (1 - y/2))
}

// Fair is the ψ-function of the "Fair" M-estimator: ψ(x) = x/(1+|x|/c).
type Fair struct{ C float64 }

func (f Fair) Name() string { return fmt.Sprintf("fair(c=%g)", f.C) }

func (f Fair) Apply(x float64) float64 { return x / (1 + math.Abs(x)/f.C) }

// Z is ψ², bounded by c²: at most quadratic growth, hence property P.
func (f Fair) Z(x float64) float64 {
	v := f.Apply(x)
	return v * v
}

func (f Fair) Inverse(y float64) float64 {
	// Solve (x/(1+x/c))² = y for x ≥ 0. With w = √y: x = w/(1−w/c), w < c.
	if y < 0 {
		return math.NaN()
	}
	w := math.Sqrt(y)
	if w >= f.C {
		return math.NaN()
	}
	return w / (1 - w/f.C)
}

// ---------------------------------------------------------------------------
// Random Fourier features (Section VI-A)

// SqrtTwoCos is f(x) = √2·cos(x), the nonlinearity of the Gaussian random
// Fourier feature expansion. Each server folds its share b_j/s of the
// random phase into its local projection, so the implicit sum is
// (MZ)_ij + b_j and the entrywise f is a pure cosine. Row norms of the
// expansion concentrate (E[f(x)²] = 1 for uniform phase), which is why the
// expansion is paired with uniform sampling rather than a ZFunc.
type SqrtTwoCos struct{}

func (SqrtTwoCos) Name() string            { return "sqrt2·cos" }
func (SqrtTwoCos) Apply(x float64) float64 { return math.Sqrt2 * math.Cos(x) }

// ---------------------------------------------------------------------------
// Max (used only by the lower bounds; no efficient sampler exists for it,
// which is Theorem 6's point — GM with large p is the practical surrogate).

// Max is the entrywise max across servers. It does not fit the summed-
// matrix form, so it implements only Func on pre-maxed values; the GM
// surrogate should be used for actual protocols.
type Max struct{}

func (Max) Name() string            { return "max" }
func (Max) Apply(x float64) float64 { return x }

// ---------------------------------------------------------------------------
// Property P verification

// CheckPropertyP verifies property P for z on a grid of |x| values up to
// span, returning a descriptive error on the first violation. Used by tests
// and by protocol constructors that accept user-supplied ZFuncs.
func CheckPropertyP(z ZFunc, span float64, steps int) error {
	if z.Z(0) != 0 {
		return fmt.Errorf("fn: %s violates property P: z(0) = %g != 0", z.Name(), z.Z(0))
	}
	prevZ := 0.0
	prevRatio := 0.0
	first := true
	for i := 1; i <= steps; i++ {
		x := span * float64(i) / float64(steps)
		zx := z.Z(x)
		if zx < 0 {
			return fmt.Errorf("fn: %s violates property P: z(%g) = %g < 0", z.Name(), x, zx)
		}
		if zx+1e-12 < prevZ {
			return fmt.Errorf("fn: %s violates property P: z decreasing at %g (%g < %g)", z.Name(), x, zx, prevZ)
		}
		if zx > 0 {
			ratio := x * x / zx
			if !first && ratio+1e-9*math.Max(1, prevRatio) < prevRatio {
				return fmt.Errorf("fn: %s violates property P: x²/z decreasing at %g (%g < %g)", z.Name(), x, ratio, prevRatio)
			}
			prevRatio = ratio
			first = false
		}
		prevZ = zx
	}
	return nil
}

// NumericInverse is a generic monotone inverse by bisection for ZFunc
// implementations that do not have a closed form. It returns the smallest
// x ≥ 0 with z(x) ≈ y, or NaN if y exceeds z(hi) after expansion.
func NumericInverse(z ZFunc, y float64) float64 {
	if y < 0 {
		return math.NaN()
	}
	if y == 0 {
		return 0
	}
	lo, hi := 0.0, 1.0
	for iter := 0; z.Z(hi) < y; iter++ {
		hi *= 2
		if iter > 200 {
			return math.NaN()
		}
	}
	for i := 0; i < 128; i++ {
		mid := (lo + hi) / 2
		if z.Z(mid) < y {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
