package fn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// allZFuncs enumerates every property-P weight function in the package.
func allZFuncs() []ZFunc {
	// Note AbsPower with p > 1 has z = |x|^{2p} of super-quadratic growth
	// and deliberately fails property P (that regime is exactly where the
	// paper's Theorem 4 lower bound lives); only p ≤ 1 appears here.
	return []ZFunc{
		Identity{},
		AbsPower{P: 1},
		AbsPower{P: 0.5},
		GM{P: 1},
		GM{P: 2},
		GM{P: 5},
		GM{P: 20},
		Huber{K: 3},
		L1L2{},
		Fair{C: 1.5},
	}
}

func TestPropertyPAll(t *testing.T) {
	for _, z := range allZFuncs() {
		if err := CheckPropertyP(z, 100, 10000); err != nil {
			t.Errorf("%s: %v", z.Name(), err)
		}
	}
}

func TestCheckPropertyPRejectsViolations(t *testing.T) {
	// z(x) = x⁴ violates "x²/z nondecreasing" is false — x²/x⁴ decreases,
	// so property P fails. (Quartic growth exceeds quadratic.)
	bad := AbsPower{P: 2} // z = |x|⁴ when used as a ZFunc
	if err := CheckPropertyP(bad, 10, 100); err == nil {
		t.Fatal("|x|⁴ must violate property P")
	}
	// z with z(0) ≠ 0.
	if err := CheckPropertyP(offsetZ{}, 10, 100); err == nil {
		t.Fatal("z(0)≠0 must be rejected")
	}
}

type offsetZ struct{}

func (offsetZ) Name() string              { return "offset" }
func (offsetZ) Z(x float64) float64       { return x*x + 1 }
func (offsetZ) Inverse(y float64) float64 { return math.NaN() }

// TestTableI verifies the ψ-functions exactly as printed in Table I.
func TestTableI(t *testing.T) {
	h := Huber{K: 2}
	cases := []struct {
		x, want float64
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {-5, -2}, {-1.5, -1.5}}
	for _, c := range cases {
		if got := h.Apply(c.x); got != c.want {
			t.Errorf("huber(%g) = %g, want %g", c.x, got, c.want)
		}
	}

	l := L1L2{}
	for _, x := range []float64{0, 0.5, -1, 3, -10} {
		want := x / math.Sqrt(1+x*x/2)
		if got := l.Apply(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("l1l2(%g) = %g, want %g", x, got, want)
		}
	}

	f := Fair{C: 3}
	for _, x := range []float64{0, 1, -2, 7} {
		want := x / (1 + math.Abs(x)/3)
		if got := f.Apply(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("fair(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestPsiFunctionsOdd(t *testing.T) {
	for _, f := range []Func{Huber{K: 2}, L1L2{}, Fair{C: 1}} {
		for _, x := range []float64{0.3, 1.7, 8} {
			if math.Abs(f.Apply(x)+f.Apply(-x)) > 1e-12 {
				t.Errorf("%s not odd at %g", f.Name(), x)
			}
		}
	}
}

func TestPsiBounded(t *testing.T) {
	if (Huber{K: 2}).Apply(1e12) != 2 {
		t.Fatal("huber unbounded")
	}
	if v := (L1L2{}).Apply(1e12); math.Abs(v-math.Sqrt2) > 1e-3 {
		t.Fatalf("l1-l2 limit = %g, want √2", v)
	}
	if v := (Fair{C: 4}).Apply(1e12); math.Abs(v-4) > 1e-3 {
		t.Fatalf("fair limit = %g, want c", v)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, z := range allZFuncs() {
		for _, x := range []float64{0, 0.1, 0.5, 1, 2} {
			y := z.Z(x)
			inv := z.Inverse(y)
			if math.IsNaN(inv) {
				t.Errorf("%s: Inverse(%g) = NaN for attained value", z.Name(), y)
				continue
			}
			if math.Abs(z.Z(inv)-y) > 1e-9*(1+y) {
				t.Errorf("%s: z(z⁻¹(%g)) = %g", z.Name(), y, z.Z(inv))
			}
		}
	}
}

func TestInverseUnattained(t *testing.T) {
	if !math.IsNaN(Huber{K: 2}.Inverse(5)) { // z ≤ 4
		t.Fatal("huber inverse beyond K² must be NaN")
	}
	if !math.IsNaN((L1L2{}).Inverse(2)) { // z < 2
		t.Fatal("l1-l2 inverse at limit must be NaN")
	}
	if !math.IsNaN((Fair{C: 1}).Inverse(1)) { // z < c²
		t.Fatal("fair inverse at limit must be NaN")
	}
	if !math.IsNaN(Identity{}.Inverse(-1)) {
		t.Fatal("negative inverse must be NaN")
	}
}

func TestGMIsMeanAtP1(t *testing.T) {
	g := GM{P: 1}
	vals := []float64{1, 2, 3, 4}
	if math.Abs(g.Value(vals)-2.5) > 1e-12 {
		t.Fatalf("GM_1 = %g", g.Value(vals))
	}
}

// TestGMApproachesMax is the paper's Section VI-B claim: for large p,
// GM > c′·max for any constant c′ < 1.
func TestGMApproachesMax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GM{P: 20}
	for trial := 0; trial < 100; trial++ {
		vals := make([]float64, 10)
		mx := 0.0
		for i := range vals {
			vals[i] = rng.Float64() * 100
			if vals[i] > mx {
				mx = vals[i]
			}
		}
		gm := g.Value(vals)
		if gm > mx+1e-9 {
			t.Fatalf("GM %g exceeds max %g", gm, mx)
		}
		if gm < 0.85*mx {
			t.Fatalf("GM_20 %g below 0.85·max %g", gm, mx)
		}
	}
}

func TestGMPrepareValueConsistency(t *testing.T) {
	// f(Σ_t Prepare(raw_t)) must equal Value(raw).
	g := GM{P: 5}
	raw := []float64{2, -3, 7, 0.5}
	var sum float64
	for _, v := range raw {
		sum += g.Prepare(v, len(raw))
	}
	if math.Abs(g.Apply(sum)-g.Value(raw)) > 1e-12 {
		t.Fatalf("f(Σ prepare) = %g, GM = %g", g.Apply(sum), g.Value(raw))
	}
}

func TestGMMonotoneInP(t *testing.T) {
	vals := []float64{1, 2, 3, 10}
	prev := 0.0
	for _, p := range []float64{1, 2, 5, 20, 100} {
		v := GM{P: p}.Value(vals)
		if v < prev-1e-9 {
			t.Fatalf("GM not monotone in p at %g", p)
		}
		prev = v
	}
}

func TestSqrtTwoCos(t *testing.T) {
	f := SqrtTwoCos{}
	if math.Abs(f.Apply(0)-math.Sqrt2) > 1e-12 {
		t.Fatal("cos(0)")
	}
	if math.Abs(f.Apply(math.Pi/2)) > 1e-12 {
		t.Fatal("cos(π/2)")
	}
}

func TestIdentityAndPower(t *testing.T) {
	if (Identity{}).Apply(3) != 3 || (Identity{}).Z(3) != 9 {
		t.Fatal("identity")
	}
	p := AbsPower{P: 2}
	if p.Apply(-3) != 9 || p.Z(2) != 16 {
		t.Fatal("abspower")
	}
}

func TestMax(t *testing.T) {
	if (Max{}).Apply(5) != 5 || (Max{}).Name() != "max" {
		t.Fatal("max passthrough")
	}
}

func TestNumericInverse(t *testing.T) {
	for _, z := range []ZFunc{Identity{}, GM{P: 2}, L1L2{}} {
		for _, y := range []float64{0, 0.25, 1, 1.5} {
			if z.Name() == "l1-l2" && y >= 2 {
				continue
			}
			inv := NumericInverse(z, y)
			if math.Abs(z.Z(inv)-y) > 1e-6*(1+y) {
				t.Errorf("%s: numeric inverse z(%g)=%g want %g", z.Name(), inv, z.Z(inv), y)
			}
		}
	}
	if !math.IsNaN(NumericInverse(Huber{K: 1}, 5)) {
		t.Fatal("numeric inverse of unattained value")
	}
	if !math.IsNaN(NumericInverse(Identity{}, -1)) {
		t.Fatal("numeric inverse of negative")
	}
}

// TestQuickZSandwich: for every (f,z) pair used by the protocols, z must
// sandwich f² within a constant: here they are equal by construction, so
// z(x) == f(x)² exactly (except GM where f applies to prepared sums).
func TestQuickZSandwich(t *testing.T) {
	pairs := []struct {
		f Func
		z ZFunc
	}{
		{Identity{}, Identity{}},
		{Huber{K: 2}, Huber{K: 2}},
		{L1L2{}, L1L2{}},
		{Fair{C: 3}, Fair{C: 3}},
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		if math.Abs(x) > 1e8 {
			x = math.Mod(x, 1e8)
		}
		for _, p := range pairs {
			fv := p.f.Apply(x)
			if math.Abs(p.z.Z(x)-fv*fv) > 1e-9*(1+fv*fv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	for _, z := range allZFuncs() {
		if z.Name() == "" {
			t.Fatal("empty name")
		}
	}
}
