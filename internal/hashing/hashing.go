// Package hashing supplies the hash-function families the sketching and
// sampling protocols rely on: k-wise independent polynomial hashing over
// the Mersenne prime field GF(2⁶¹−1), pairwise-independent bucket hashing,
// ±1 sign hashing, and deterministic seeded PRNG streams.
//
// All constructions are seeded explicitly so every protocol run in this
// repository is reproducible bit-for-bit.
package hashing

import (
	"math/rand"
	"sync"
)

// MersennePrime is 2⁶¹−1, the field modulus for polynomial hashing.
const MersennePrime uint64 = (1 << 61) - 1

// mulmod computes a*b mod 2⁶¹−1 without overflow using 128-bit products.
func mulmod(a, b uint64) uint64 {
	hi, lo := mul128(a, b)
	// Reduce: x = hi·2⁶⁴ + lo. 2⁶⁴ ≡ 2³ (mod 2⁶¹−1).
	r := (lo & MersennePrime) + (lo >> 61) + ((hi << 3) & MersennePrime) + (hi >> 58)
	for r >= MersennePrime {
		r -= MersennePrime
	}
	return r
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + (t >> 32)
	return hi, lo
}

// PolyHash is a k-wise independent hash function h(x) = Σ c_i x^i mod p,
// evaluated over GF(2⁶¹−1). A degree-(k−1) random polynomial is k-wise
// independent over the field.
type PolyHash struct {
	coeffs []uint64 // degree k-1 polynomial; coeffs[0] is the constant term
}

// NewPolyHash draws a fresh k-wise independent function from rng.
// k must be at least 1.
func NewPolyHash(rng *rand.Rand, k int) *PolyHash {
	if k < 1 {
		panic("hashing: independence k must be >= 1")
	}
	coeffs := make([]uint64, k)
	for i := range coeffs {
		coeffs[i] = uint64(rng.Int63()) % MersennePrime
	}
	// Guarantee the leading coefficient is nonzero so the polynomial has
	// full degree (required for exact k-wise independence).
	if k > 1 && coeffs[k-1] == 0 {
		coeffs[k-1] = 1
	}
	return &PolyHash{coeffs: coeffs}
}

// Eval returns h(x) as a field element in [0, 2⁶¹−1).
func (h *PolyHash) Eval(x uint64) uint64 {
	x %= MersennePrime
	var acc uint64
	for i := len(h.coeffs) - 1; i >= 0; i-- {
		acc = mulmod(acc, x)
		acc += h.coeffs[i]
		if acc >= MersennePrime {
			acc -= MersennePrime
		}
	}
	return acc
}

// Bucket maps x into [0, buckets) with near-uniform marginals.
func (h *PolyHash) Bucket(x uint64, buckets int) int {
	if buckets <= 0 {
		panic("hashing: buckets must be positive")
	}
	return int(h.Eval(x) % uint64(buckets))
}

// Unit maps x to a float in [0, 1).
func (h *PolyHash) Unit(x uint64) float64 {
	return float64(h.Eval(x)) / float64(MersennePrime)
}

// Sign maps x to ±1 with equal probability (pairwise independent when the
// underlying polynomial has degree ≥ 1).
func (h *PolyHash) Sign(x uint64) float64 {
	if h.Eval(x)&1 == 0 {
		return 1
	}
	return -1
}

// PairwiseHash is a convenience constructor for a pairwise-independent
// family (degree-1 polynomials).
func PairwiseHash(rng *rand.Rand) *PolyHash { return NewPolyHash(rng, 2) }

// FourwiseHash constructs a 4-wise independent family, used by the AMS F2
// estimator's sign function.
func FourwiseHash(rng *rand.Rand) *PolyHash { return NewPolyHash(rng, 4) }

// polyCacheKey identifies a deterministic hash function: the PRNG seed it
// is drawn from and the independence degree.
type polyCacheKey struct {
	seed int64
	k    int
}

var (
	polyCacheMu sync.RWMutex
	polyCache   = map[polyCacheKey]*PolyHash{}
)

// polyCacheLimit bounds the memo table; at the limit the table is flushed
// wholesale (entries are cheap to rebuild, and real workloads never get
// close — the key space is the handful of derived protocol seeds).
const polyCacheLimit = 1 << 16

// SeededPolyHash returns the k-wise independent function drawn from the
// deterministic stream Seeded(seed) — bit-identical to
// NewPolyHash(Seeded(seed), k) — memoized on (seed, k). The sketching
// protocols rebuild the same functions from shared seeds on every server
// and every round; PolyHash is immutable after construction, so all
// callers share one instance and skip the (comparatively expensive) PRNG
// seeding on cache hits. Safe for concurrent use.
func SeededPolyHash(seed int64, k int) *PolyHash {
	key := polyCacheKey{seed, k}
	polyCacheMu.RLock()
	h := polyCache[key]
	polyCacheMu.RUnlock()
	if h != nil {
		return h
	}
	h = NewPolyHash(Seeded(seed), k)
	polyCacheMu.Lock()
	if len(polyCache) >= polyCacheLimit {
		polyCache = map[polyCacheKey]*PolyHash{}
	}
	polyCache[key] = h
	polyCacheMu.Unlock()
	return h
}

// Seeded returns a deterministic *rand.Rand for the given seed. Protocol
// components derive their private streams via DeriveSeed so that sharing a
// root seed across servers reproduces identical shared randomness — this
// models "server 1 broadcasts random seeds" from the paper at the cost of
// one word of communication per broadcast.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// DeriveSeed mixes a root seed with a stream label into an independent-ish
// child seed using the splitmix64 finalizer.
func DeriveSeed(root int64, label uint64) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}
