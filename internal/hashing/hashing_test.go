package hashing

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulmodAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := new(big.Int).SetUint64(MersennePrime)
	for trial := 0; trial < 2000; trial++ {
		a := rng.Uint64() % MersennePrime
		b := rng.Uint64() % MersennePrime
		got := mulmod(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Fatalf("mulmod(%d,%d) = %d, want %s", a, b, got, want)
		}
	}
}

func TestMulmodEdgeCases(t *testing.T) {
	max := MersennePrime - 1
	p := new(big.Int).SetUint64(MersennePrime)
	for _, pair := range [][2]uint64{{0, 0}, {0, max}, {1, max}, {max, max}, {2, MersennePrime / 2}} {
		got := mulmod(pair[0], pair[1])
		want := new(big.Int).Mul(new(big.Int).SetUint64(pair[0]), new(big.Int).SetUint64(pair[1]))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Fatalf("mulmod(%d,%d) = %d, want %s", pair[0], pair[1], got, want)
		}
	}
}

func TestQuickMulmodMatchesBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime)
	f := func(a, b uint64) bool {
		a %= MersennePrime
		b %= MersennePrime
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return mulmod(a, b) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyHashDeterministic(t *testing.T) {
	h1 := NewPolyHash(Seeded(5), 3)
	h2 := NewPolyHash(Seeded(5), 3)
	for x := uint64(0); x < 100; x++ {
		if h1.Eval(x) != h2.Eval(x) {
			t.Fatal("same seed must give same hash")
		}
	}
}

func TestPolyHashDifferentSeeds(t *testing.T) {
	h1 := NewPolyHash(Seeded(1), 2)
	h2 := NewPolyHash(Seeded(2), 2)
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if h1.Eval(x) == h2.Eval(x) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestBucketUniformity(t *testing.T) {
	h := PairwiseHash(Seeded(7))
	const buckets = 16
	const n = 160000
	counts := make([]int, buckets)
	for x := uint64(0); x < n; x++ {
		counts[h.Bucket(x, buckets)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; χ² beyond 60 would be wildly non-uniform.
	if chi2 > 60 {
		t.Fatalf("bucket χ² = %g", chi2)
	}
}

func TestSignBalance(t *testing.T) {
	h := FourwiseHash(Seeded(9))
	var sum float64
	const n = 100000
	for x := uint64(0); x < n; x++ {
		sum += h.Sign(x)
	}
	if math.Abs(sum) > 5*math.Sqrt(n) {
		t.Fatalf("sign bias: Σ = %g", sum)
	}
}

// TestPairwiseIndependenceEmpirical estimates Pr[h(x)=h(y)] for a pairwise
// family mapping into b buckets; it must be ≈ 1/b.
func TestPairwiseIndependenceEmpirical(t *testing.T) {
	const buckets = 8
	const trials = 4000
	collisions := 0
	for s := int64(0); s < trials; s++ {
		h := PairwiseHash(Seeded(1000 + s))
		if h.Bucket(12345, buckets) == h.Bucket(67890, buckets) {
			collisions++
		}
	}
	p := float64(collisions) / trials
	if math.Abs(p-1.0/buckets) > 0.03 {
		t.Fatalf("collision rate %g, want ≈ %g", p, 1.0/buckets)
	}
}

// TestFourwiseFourthMoment verifies E[(Σ s_i)⁴] ≈ 3n²−2n for 4-wise
// independent signs, the identity AMS depends on.
func TestFourwiseFourthMoment(t *testing.T) {
	const n = 64
	const trials = 3000
	var sum4 float64
	for s := int64(0); s < trials; s++ {
		h := FourwiseHash(Seeded(5000 + s))
		var acc float64
		for x := uint64(0); x < n; x++ {
			acc += h.Sign(x)
		}
		sum4 += acc * acc * acc * acc
	}
	got := sum4 / trials
	want := float64(3*n*n - 2*n)
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("fourth moment %g, want ≈ %g", got, want)
	}
}

func TestUnitRange(t *testing.T) {
	h := NewPolyHash(Seeded(3), 4)
	for x := uint64(0); x < 10000; x++ {
		u := h.Unit(x)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit(%d) = %g out of [0,1)", x, u)
		}
	}
}

func TestUnitMean(t *testing.T) {
	h := NewPolyHash(Seeded(4), 4)
	var sum float64
	const n = 50000
	for x := uint64(0); x < n; x++ {
		sum += h.Unit(x)
	}
	if math.Abs(sum/n-0.5) > 0.02 {
		t.Fatalf("Unit mean = %g", sum/n)
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[int64]uint64)
	for label := uint64(0); label < 10000; label++ {
		s := DeriveSeed(42, label)
		if prev, dup := seen[s]; dup {
			t.Fatalf("labels %d and %d collide", prev, label)
		}
		seen[s] = label
	}
}

func TestDeriveSeedRootSensitivity(t *testing.T) {
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different roots must differ")
	}
}

func TestNewPolyHashPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPolyHash(Seeded(1), 0)
}

func TestBucketPanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PairwiseHash(Seeded(1)).Bucket(1, 0)
}
