package hh

import (
	"context"
	"math"

	"repro/internal/comm"
	"repro/internal/hashing"
	"repro/internal/ops"
	"repro/internal/sketch"
	"repro/internal/warm"
)

// DyadicHH is the hierarchical heavy hitter structure: one CountSketch per
// dyadic level of the coordinate space, so heavy coordinates are found by
// descending the implicit binary tree in O(B·log m) sketch queries instead
// of enumerating all m coordinates. This is the textbook poly(log m)-query
// construction behind the streaming algorithms the paper builds on; the
// flat HeavyHitters protocol gives the same answers with O(m) CP-side
// computation (which the model permits), so the protocols use either
// interchangeably — DyadicHH matters when the CP's local work is also a
// constraint.
//
// Level ℓ sketches the vector of 2^ℓ-aligned block sums: level 0 is a
// single total, the bottom level is the raw vector. All levels are linear,
// so the distributed merge works exactly as for the flat sketch.
type DyadicHH struct {
	m      uint64
	levels int
	sk     []*sketch.CountSketch
}

// NewDyadicHH builds an empty hierarchy over dimension m with the given
// per-level CountSketch shape.
func NewDyadicHH(seed int64, m uint64, p Params) *DyadicHH {
	levels := 1
	for (uint64(1) << (levels - 1)) < m {
		levels++
	}
	d := &DyadicHH{m: m, levels: levels}
	d.sk = make([]*sketch.CountSketch, levels)
	for l := 0; l < levels; l++ {
		d.sk[l] = sketch.NewCountSketch(hashing.DeriveSeed(seed, uint64(l)), p.Depth, p.Width)
	}
	return d
}

// BuildLocalDyadic sketches one local share at every level — the
// share-side half of DyadicHeavyHitters, executed in-process for hosted
// shares and by worker processes for remote ones. A warm-wrapped share
// serves the level hierarchy from its store: the level count is part of
// the cache key, so an append that crosses a power-of-two dimension
// boundary (changing the hierarchy depth) misses cleanly and rebuilds.
func BuildLocalDyadic(v Vec, seed int64, p Params) *DyadicHH {
	d := NewDyadicHH(seed, v.Len(), p)
	if mv, ok := v.(MatVec); ok {
		if sh, ok := mv.M.(*warm.Share); ok && sh.Store() != nil {
			levels := d.levels
			ingest := func(sks []*sketch.CountSketch, j uint64, delta float64) {
				for l := 0; l < levels; l++ {
					sks[l].Update(j>>uint(levels-1-l), delta)
				}
			}
			d.sk = sh.Store().Serve(mv.M.Rows(),
				warm.Key{Kind: warm.KindDyadic, Seed: seed, Depth: p.Depth, Width: p.Width, Levels: levels},
				func() []*sketch.CountSketch { return NewDyadicHH(seed, mv.Len(), p).sk },
				func(sks []*sketch.CountSketch, lo, hi int) {
					mv.ForEachRows(lo, hi, func(j uint64, val float64) { ingest(sks, j, val) })
				},
				ingest,
			)
			return d
		}
	}
	v.ForEach(d.Update)
	return d
}

// Update adds delta at coordinate j on every level.
func (d *DyadicHH) Update(j uint64, delta float64) {
	for l := 0; l < d.levels; l++ {
		// Node index at level l: the top (l) bits of j's path, i.e. j
		// shifted by (levels−1−l).
		d.sk[l].Update(j>>uint(d.levels-1-l), delta)
	}
}

// Merge combines a compatible hierarchy (same seed, dimension, shape).
func (d *DyadicHH) Merge(other *DyadicHH) error {
	for l := range d.sk {
		if err := d.sk[l].Merge(other.sk[l]); err != nil {
			return err
		}
	}
	return nil
}

// Flat returns the wire payload of all levels, top level first.
func (d *DyadicHH) Flat() []float64 { return ops.FlattenSketches(d.sk) }

// Words returns the transmission size of all levels.
func (d *DyadicHH) Words() int64 {
	var w int64
	for _, s := range d.sk {
		w += s.Words()
	}
	return w
}

// Heavy returns the coordinates whose estimated v_j² ≥ F̂2/B, found by
// descending the dyadic tree: a node is explored only while its estimated
// mass clears the threshold, so the query cost is O(B·log m) estimates.
func (d *DyadicHH) Heavy(B float64) []uint64 {
	bottom := d.sk[d.levels-1]
	f2 := bottom.F2Estimate()
	if f2 <= 0 {
		return nil
	}
	thresh := math.Sqrt(f2 / B)
	var out []uint64
	frontier := []uint64{0}
	for l := 1; l < d.levels; l++ {
		var next []uint64
		for _, node := range frontier {
			for _, child := range [2]uint64{2 * node, 2*node + 1} {
				// Prune children that cannot index a real coordinate.
				if child<<uint(d.levels-1-l) >= d.m {
					continue
				}
				if est := d.sk[l].Estimate(child); math.Abs(est) >= thresh {
					next = append(next, child)
				}
			}
			// Guard against adversarial blow-up: at most 4B nodes survive
			// per level when the sketch behaves; beyond that, keep the
			// heaviest by re-checking (cheap, next is small in practice).
			if len(next) > int(8*B) {
				next = next[:int(8*B)]
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}
	for _, j := range frontier {
		if est := bottom.Estimate(j); est*est >= f2/B {
			out = append(out, j)
		}
	}
	sortUint64s(out)
	return out
}

// DyadicHeavyHitters is the distributed protocol over the hierarchy: the
// CP broadcasts the sketch op, each server sketches its local share at
// every level (worker processes included), and the CP merges the arriving
// level blocks in server order and descends. Same contract as HeavyHitters
// with CP computation O(B·log² m) instead of O(m).
func DyadicHeavyHitters(ctx context.Context, net *comm.Network, locals []Vec, B float64, p Params, seed int64, tag string) ([]uint64, error) {
	m, err := dim(locals)
	if err != nil {
		return nil, err
	}
	sks, err := sketchRound(ctx, net, ops.OpDyadicSketch, ops.FlatSketchParams(seed, p.Depth, p.Width),
		tag+"/seed", tag+"/dyadic-sketch", func(t int) []*sketch.CountSketch {
			return BuildLocalDyadic(locals[t], seed, p).sk
		})
	if err != nil {
		return nil, err
	}
	merged := &DyadicHH{m: m, levels: len(sks), sk: sks}
	return merged.Heavy(B), nil
}
