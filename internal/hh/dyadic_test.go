package hh

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/comm"
)

func TestDyadicFindsPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const m = 4096
	v := make([]float64, m)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.05
	}
	heavies := []uint64{0, 777, 4095}
	for _, j := range heavies {
		v[j] = 40
	}
	locals := splitVector(v, 3, rng)
	net := comm.NewNetwork(3)
	got, err := DyadicHeavyHitters(context.Background(), net, locals, 32, Params{Depth: 5, Width: 256}, 9, "dy")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range heavies {
		if !contains(got, j) {
			t.Fatalf("dyadic missed %d (got %v)", j, got)
		}
	}
	if net.Words() == 0 {
		t.Fatal("no communication charged")
	}
}

func TestDyadicAgreesWithFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const m = 2048
	v := make([]float64, m)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.02
	}
	v[100] = 25
	v[1500] = 30
	locals := splitVector(v, 2, rng)
	p := Params{Depth: 5, Width: 256}

	netA := comm.NewNetwork(2)
	flatRes, err := HeavyHitters(context.Background(), netA, locals, 64, p, 5, "flat")
	if err != nil {
		t.Fatal(err)
	}
	flat := flatRes.Coords
	netB := comm.NewNetwork(2)
	dyad, err := DyadicHeavyHitters(context.Background(), netB, locals, 64, p, 5, "dy")
	if err != nil {
		t.Fatal(err)
	}

	for _, j := range []uint64{100, 1500} {
		if !contains(flat, j) || !contains(dyad, j) {
			t.Fatalf("planted heavy missed: flat=%v dyadic=%v", flat, dyad)
		}
	}
}

func TestDyadicNonPowerOfTwoDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m = 1000 // not a power of two
	v := make([]float64, m)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.01
	}
	v[999] = 20 // the last valid coordinate
	locals := splitVector(v, 2, rng)
	net := comm.NewNetwork(2)
	got, err := DyadicHeavyHitters(context.Background(), net, locals, 16, Params{Depth: 5, Width: 128}, 7, "dy")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(got, 999) {
		t.Fatalf("missed boundary coordinate: %v", got)
	}
	for _, j := range got {
		if j >= m {
			t.Fatalf("reported out-of-range coordinate %d", j)
		}
	}
}

func TestDyadicZeroVector(t *testing.T) {
	locals := []Vec{DenseVec(make([]float64, 64)), DenseVec(make([]float64, 64))}
	net := comm.NewNetwork(2)
	if got, err := DyadicHeavyHitters(context.Background(), net, locals, 8, Params{Depth: 3, Width: 32}, 1, "dy"); err != nil || len(got) != 0 {
		t.Fatalf("zero vector reported %v", got)
	}
}

func TestDyadicMergeLinearity(t *testing.T) {
	a := NewDyadicHH(3, 256, Params{Depth: 3, Width: 32})
	b := NewDyadicHH(3, 256, Params{Depth: 3, Width: 32})
	whole := NewDyadicHH(3, 256, Params{Depth: 3, Width: 32})
	rng := rand.New(rand.NewSource(4))
	for j := uint64(0); j < 256; j++ {
		u, v := rng.NormFloat64(), rng.NormFloat64()
		a.Update(j, u)
		b.Update(j, v)
		whole.Update(j, u+v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Identical heavy sets under any threshold.
	for _, B := range []float64{4, 16} {
		x := a.Heavy(B)
		y := whole.Heavy(B)
		if len(x) != len(y) {
			t.Fatalf("merged vs whole heavy sets differ: %v vs %v", x, y)
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("merged vs whole heavy sets differ: %v vs %v", x, y)
			}
		}
	}
}

func TestDyadicMergeIncompatible(t *testing.T) {
	a := NewDyadicHH(1, 256, Params{Depth: 3, Width: 32})
	b := NewDyadicHH(2, 256, Params{Depth: 3, Width: 32})
	if err := a.Merge(b); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestDyadicWords(t *testing.T) {
	d := NewDyadicHH(1, 1024, Params{Depth: 2, Width: 16})
	// levels = 11 (2^10 ≥ 1024), each 2×16 = 32 words.
	if d.Words() != 11*32 {
		t.Fatalf("words = %d", d.Words())
	}
}
