package hh

import (
	"context"
	"errors"

	"repro/internal/comm"
	"repro/internal/hashing"
	"repro/internal/ops"
	"repro/internal/sketch"
)

// Params controls the CountSketch shape used by the heavy hitter protocols.
// The paper's theoretical widths are impractically large; its own
// experiments tune "the number t of repetitions and number of hash buckets"
// to meet a communication budget, and these fields are those knobs.
type Params struct {
	// Depth is the number of CountSketch rows (median boosting).
	Depth int
	// Width is the number of counters per row; estimate noise is
	// O(‖v‖₂/√Width) so Width should exceed the heaviness parameter B.
	Width int
	// Workers parallelizes each server's local sketch ingestion across
	// the Depth rows (0 or 1 = sequential). Results are bit-identical at
	// any worker count; this is a local knob, never a wire parameter.
	Workers int
}

// DefaultParams returns a practical shape for a heaviness parameter B.
func DefaultParams(B float64) Params {
	w := int(4 * B)
	if w < 16 {
		w = 16
	}
	return Params{Depth: 5, Width: w}
}

// Result carries the coordinates a heavy hitter protocol reported together
// with the merged-sketch F2 estimate that thresholding used.
type Result struct {
	Coords []uint64
	F2     float64
}

// ErrRestrictionNotExpressible is returned when a closure-defined
// restriction reaches a cluster with remote servers: a worker process can
// only evaluate restrictions described by shared randomness (see
// ops.LevelFilter).
var ErrRestrictionNotExpressible = errors.New("hh: closure restriction cannot cross process boundaries (use ops.LevelFilter)")

// dim returns the global vector dimension from the CP's share (the only
// share guaranteed to be present on the coordinator).
func dim(locals []Vec) (uint64, error) {
	if len(locals) == 0 || locals[comm.CP] == nil {
		return 0, errors.New("hh: the CP's local share is required")
	}
	return locals[comm.CP].Len(), nil
}

// sketchRound runs one sketch-merge phase over the star as a comm.Round:
// the CP broadcasts the phase's op frame (shared randomness and shape, one
// charged word per parameter), every server builds its sketch set from its
// local share — in-process goroutines for hosted shares, worker processes
// for remote ones, both through the same builder — and the CP folds the
// arriving counter blocks in server order, so the accounting is
// deterministic and transport-independent. Linearity of the sketches makes
// the merged set exactly the sketch of Σ_t locals[t].
func sketchRound(ctx context.Context, net *comm.Network, op uint16, params []uint64, reqTag, respTag string,
	build func(t int) []*sketch.CountSketch) ([]*sketch.CountSketch, error) {
	merged := build(comm.CP)
	err := net.RunRound(ctx, comm.Round{
		Op:       op,
		Params:   params,
		ReqTag:   reqTag,
		RespTag:  respTag,
		RespKind: comm.KindSketch,
		Local: func(t int) ([]float64, error) {
			return ops.FlattenSketches(build(t)), nil
		},
		OnResp: func(t int, payload []float64) error {
			return ops.MergeFlat(merged, payload)
		},
	})
	if err != nil {
		return nil, err
	}
	return merged, nil
}

// HeavyHitters runs the distributed F2 heavy hitter protocol over the
// implicit vector v = Σ_t locals[t]: the CP broadcasts the sketch op (seed
// and shape), every server sketches its local share, the CP merges the
// linear sketches as the counter frames arrive and reports every
// coordinate j with estimated v_j² ≥ F̂2/B.
//
// Communication: s−1 three-word op frames + (s−1)·Depth·Width sketch
// words, charged on net under tag/seed and tag/sketch.
func HeavyHitters(ctx context.Context, net *comm.Network, locals []Vec, B float64, p Params, seed int64, tag string) (Result, error) {
	m, err := dim(locals)
	if err != nil {
		return Result{}, err
	}
	merged, err := sketchRound(ctx, net, ops.OpFlatSketch, ops.FlatSketchParams(seed, p.Depth, p.Width),
		tag+"/seed", tag+"/sketch", func(t int) []*sketch.CountSketch {
			return []*sketch.CountSketch{ops.FlatSketch(locals[t], seed, p.Depth, p.Width, p.Workers)}
		})
	if err != nil {
		return Result{}, err
	}
	cs := merged[0]
	f2 := cs.F2Estimate()
	if f2 <= 0 {
		return Result{F2: f2}, nil
	}
	thresh := f2 / B
	var cands []candidate
	for j := uint64(0); j < m; j++ {
		est := cs.Estimate(j)
		if est*est >= thresh {
			cands = append(cands, candidate{j, est * est})
		}
	}
	return Result{Coords: keepTop(cands, capFor(B)), F2: f2}, nil
}

// candidate pairs a coordinate with its estimated squared value.
type candidate struct {
	j    uint64
	est2 float64
}

// capFor bounds how many coordinates a heaviness parameter B can certify:
// at most ⌈B⌉ coordinates can truly have v_j² ≥ ‖v‖²/B, so anything beyond
// a small multiple of that is sketch noise. Capping keeps the downstream
// value-collection cost proportional to B instead of to the noise level.
func capFor(B float64) int {
	c := int(2 * B)
	if c < 4 {
		c = 4
	}
	return c
}

// keepTop returns the coordinates of the n largest estimates, sorted.
func keepTop(cands []candidate, n int) []uint64 {
	if len(cands) > n {
		// Partial selection sort: n is small.
		for i := 0; i < n; i++ {
			maxAt := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].est2 > cands[maxAt].est2 {
					maxAt = j
				}
			}
			cands[i], cands[maxAt] = cands[maxAt], cands[i]
		}
		cands = cands[:n]
	}
	out := make([]uint64, len(cands))
	for i, c := range cands {
		out[i] = c.j
	}
	sortUint64s(out)
	return out
}

// HeavyHittersFiltered is HeavyHitters on the restriction v(S) for S given
// by keep; both the local sketching and the CP-side candidate enumeration
// honor the restriction. The restriction is a closure, so this variant
// only runs on fully in-process clusters (the Z protocols use the
// wire-expressible ops.LevelFilter instead).
func HeavyHittersFiltered(ctx context.Context, net *comm.Network, locals []Vec, keep func(uint64) bool, B float64, p Params, seed int64, tag string) (Result, error) {
	if net.HasRemote() {
		return Result{}, ErrRestrictionNotExpressible
	}
	m, err := dim(locals)
	if err != nil {
		return Result{}, err
	}
	merged, err := sketchRound(ctx, net, ops.OpFlatSketch, ops.FlatSketchParams(seed, p.Depth, p.Width),
		tag+"/seed", tag+"/sketch", func(t int) []*sketch.CountSketch {
			restricted := Filtered{Base: locals[t], Keep: keep}
			return []*sketch.CountSketch{ops.FlatSketch(restricted, seed, p.Depth, p.Width, p.Workers)}
		})
	if err != nil {
		return Result{}, err
	}
	cs := merged[0]
	f2 := cs.F2Estimate()
	if f2 <= 0 {
		return Result{F2: f2}, nil
	}
	thresh := f2 / B
	var cands []candidate
	for j := uint64(0); j < m; j++ {
		if !keep(j) {
			continue
		}
		est := cs.Estimate(j)
		if est*est >= thresh {
			cands = append(cands, candidate{j, est * est})
		}
	}
	return Result{Coords: keepTop(cands, capFor(B)), F2: f2}, nil
}

// bucketRound builds — without running — the comm.Round of one
// Z-HeavyHitters bucketing repetition: per-bucket merged CountSketches
// over a hash partition of the coordinate space, optionally restricted to
// a subsampled level set. Local shares are restricted by keep (fast,
// possibly precomputed); remote workers derive the same restriction from
// filt, which travels in the op frame. merged must already hold the CP's
// own bucket sketches; worker replies fold into it in server order when
// the round runs. Repetitions do not data-depend on each other, so the Z
// protocols issue all their rounds through one pipelined RunRounds.
func bucketRound(locals []Vec, repSeed int64, buckets int, p Params,
	keep func(uint64) bool, filt *ops.LevelFilter, tag string, merged []*sketch.CountSketch) comm.Round {
	return comm.Round{
		Op:       ops.OpBucketSketch,
		Params:   ops.BucketSketchParams(repSeed, buckets, p.Depth, p.Width, filt),
		ReqTag:   tag + "/seed",
		RespTag:  tag + "/bucket-sketch",
		RespKind: comm.KindSketch,
		Local: func(t int) ([]float64, error) {
			sks := ops.BucketSketchesFiltered(locals[t], repSeed, buckets, p.Depth, p.Width, filt, keep)
			return ops.FlattenSketches(sks), nil
		},
		OnResp: func(t int, payload []float64) error {
			return ops.MergeFlat(merged, payload)
		},
	}
}

// cpBucketSketches is the CP's own contribution to one bucketing
// repetition (free local compute — never a wire transfer). filt carries
// keep's wire-expressible description so a warm-wrapped CP share can serve
// from its store; the two must agree.
func cpBucketSketches(locals []Vec, repSeed int64, buckets int, p Params, keep func(uint64) bool, filt *ops.LevelFilter) []*sketch.CountSketch {
	return ops.BucketSketchesFiltered(locals[comm.CP], repSeed, buckets, p.Depth, p.Width, filt, keep)
}

// ZParams are the practical knobs of Z-HeavyHitters (Algorithm 2). The
// paper uses Reps = ⌈20·log(1/δ)⌉ and Buckets = ⌈4B²⌉; experiments shrink
// both to meet communication budgets.
type ZParams struct {
	// Reps is the number of independent bucketing repetitions (line 5).
	Reps int
	// Buckets is the number of hash buckets per repetition (line 6).
	Buckets int
	// B is the heaviness parameter: coordinates with z(v_j) ≥ Z(v)/B are
	// the protocol's targets.
	B float64
	// Sketch is the inner HeavyHitters CountSketch shape.
	Sketch Params
}

// DefaultZParams gives a practical configuration for heaviness B.
func DefaultZParams(B float64) ZParams {
	buckets := int(B)
	if buckets < 8 {
		buckets = 8
	}
	if buckets > 512 {
		buckets = 512
	}
	return ZParams{Reps: 3, Buckets: buckets, B: B, Sketch: DefaultParams(B)}
}

// ZHeavyHitters implements Algorithm 2: hash the coordinate space into
// buckets with a pairwise-independent function so that, with constant
// probability per repetition, each z-heavy coordinate is alone among
// z-heavy coordinates in its bucket — where property P guarantees it is
// also ℓ2-heavy and hence caught by plain HeavyHitters. The union over
// repetitions and buckets is returned.
//
// Note z itself is not evaluated anywhere: property P is exactly what makes
// ℓ2 heaviness inside a bucket certify z heaviness.
func ZHeavyHitters(ctx context.Context, net *comm.Network, locals []Vec, zp ZParams, seed int64, tag string) ([]uint64, error) {
	m, err := dim(locals)
	if err != nil {
		return nil, err
	}
	// The repetitions share no data dependencies, so every repetition's
	// sketch-ingestion round is built first and issued through one
	// pipelined RunRounds: on a TCP cluster the rep requests coalesce
	// into batch envelopes and travel before any reply drains, while the
	// ledger stays bit-identical to the sequential loop.
	repSeeds := make([]int64, zp.Reps)
	parts := make([]*hashing.PolyHash, zp.Reps)
	mergeds := make([][]*sketch.CountSketch, zp.Reps)
	rounds := make([]comm.Round, zp.Reps)
	for t := 0; t < zp.Reps; t++ {
		repSeeds[t] = hashing.DeriveSeed(seed, uint64(7000+t))
		parts[t] = hashing.SeededPolyHash(repSeeds[t], 2)
		mergeds[t] = cpBucketSketches(locals, repSeeds[t], zp.Buckets, zp.Sketch, nil, nil)
		rounds[t] = bucketRound(locals, repSeeds[t], zp.Buckets, zp.Sketch, nil, nil, tag, mergeds[t])
	}
	if err := net.RunRounds(ctx, rounds); err != nil {
		return nil, err
	}
	found := make(map[uint64]struct{})
	for t := 0; t < zp.Reps; t++ {
		merged, part := mergeds[t], parts[t]
		f2 := make([]float64, zp.Buckets)
		for e := range merged {
			f2[e] = merged[e].F2Estimate()
		}
		perBucket := make([][]candidate, zp.Buckets)
		for j := uint64(0); j < m; j++ {
			e := part.Bucket(j, zp.Buckets)
			if f2[e] <= 0 {
				continue
			}
			est := merged[e].Estimate(j)
			if est*est >= f2[e]/zp.B {
				perBucket[e] = append(perBucket[e], candidate{j, est * est})
			}
		}
		for e := range perBucket {
			for _, j := range keepTop(perBucket[e], capFor(zp.B)) {
				found[j] = struct{}{}
			}
		}
	}
	out := make([]uint64, 0, len(found))
	for j := range found {
		out = append(out, j)
	}
	sortUint64s(out)
	return out, nil
}

// ZHeavyHittersFiltered runs Z-HeavyHitters on the restriction of the
// vector to a subsampled level set: keep evaluates the restriction for
// local shares and the CP's candidate scan (callers usually precompute
// it), filt is its wire-expressible description for remote workers (nil is
// allowed only on fully in-process clusters). candidates, when non-nil,
// enumerates the coordinates the CP should test — callers that know the
// restricted support supply it to avoid a full-range scan; when nil, every
// coordinate passing keep is tested.
func ZHeavyHittersFiltered(ctx context.Context, net *comm.Network, locals []Vec, keep func(uint64) bool, filt *ops.LevelFilter,
	candidates func(yield func(uint64)), zp ZParams, seed int64, tag string) ([]uint64, error) {
	m, err := dim(locals)
	if err != nil {
		return nil, err
	}
	if keep == nil {
		if filt == nil {
			return nil, errors.New("hh: filtered Z-HeavyHitters needs a restriction")
		}
		keep = filt.Keep()
	}
	if candidates == nil {
		candidates = func(yield func(uint64)) {
			for j := uint64(0); j < m; j++ {
				if keep(j) {
					yield(j)
				}
			}
		}
	}
	if net.HasRemote() && filt == nil {
		return nil, ErrRestrictionNotExpressible
	}
	// As in ZHeavyHitters: all repetitions build first, issue through one
	// pipelined RunRounds, and only then do the CP-side candidate scans.
	repSeeds := make([]int64, zp.Reps)
	parts := make([]*hashing.PolyHash, zp.Reps)
	mergeds := make([][]*sketch.CountSketch, zp.Reps)
	rounds := make([]comm.Round, zp.Reps)
	for t := 0; t < zp.Reps; t++ {
		repSeeds[t] = hashing.DeriveSeed(seed, uint64(9000+t))
		parts[t] = hashing.SeededPolyHash(repSeeds[t], 2)
		mergeds[t] = cpBucketSketches(locals, repSeeds[t], zp.Buckets, zp.Sketch, keep, filt)
		rounds[t] = bucketRound(locals, repSeeds[t], zp.Buckets, zp.Sketch, keep, filt, tag, mergeds[t])
	}
	if err := net.RunRounds(ctx, rounds); err != nil {
		return nil, err
	}
	found := make(map[uint64]struct{})
	for t := 0; t < zp.Reps; t++ {
		merged, part := mergeds[t], parts[t]
		f2 := make([]float64, zp.Buckets)
		for e := range merged {
			f2[e] = merged[e].F2Estimate()
		}
		perBucket := make([][]candidate, zp.Buckets)
		candidates(func(j uint64) {
			e := part.Bucket(j, zp.Buckets)
			if f2[e] <= 0 {
				return
			}
			est := merged[e].Estimate(j)
			if est*est >= f2[e]/zp.B {
				perBucket[e] = append(perBucket[e], candidate{j, est * est})
			}
		})
		for e := range perBucket {
			for _, j := range keepTop(perBucket[e], capFor(zp.B)) {
				found[j] = struct{}{}
			}
		}
	}
	out := make([]uint64, 0, len(found))
	for j := range found {
		out = append(out, j)
	}
	sortUint64s(out)
	return out, nil
}

func sortUint64s(xs []uint64) {
	// Insertion sort is fine for the small candidate lists these protocols
	// produce; avoid pulling in sort for a slice type it lacks a helper for.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
