package hh

import (
	"repro/internal/comm"
	"repro/internal/hashing"
	"repro/internal/sketch"
)

// Params controls the CountSketch shape used by the heavy hitter protocols.
// The paper's theoretical widths are impractically large; its own
// experiments tune "the number t of repetitions and number of hash buckets"
// to meet a communication budget, and these fields are those knobs.
type Params struct {
	// Depth is the number of CountSketch rows (median boosting).
	Depth int
	// Width is the number of counters per row; estimate noise is
	// O(‖v‖₂/√Width) so Width should exceed the heaviness parameter B.
	Width int
	// Workers parallelizes each server's local sketch ingestion across
	// the Depth rows (0 or 1 = sequential). Results are bit-identical at
	// any worker count; this only matters when per-server concurrency is
	// already exhausted (e.g. single-server runs).
	Workers int
}

// DefaultParams returns a practical shape for a heaviness parameter B.
func DefaultParams(B float64) Params {
	w := int(4 * B)
	if w < 16 {
		w = 16
	}
	return Params{Depth: 5, Width: w}
}

// Result carries the coordinates a heavy hitter protocol reported together
// with the merged-sketch F2 estimate that thresholding used.
type Result struct {
	Coords []uint64
	F2     float64
}

// concurrentMerge runs one concurrent sketch round over the star: every
// server builds its sketch set with build(t) in its own goroutine, non-CP
// servers post the flattened counters to the CP over the channel links,
// and the CP folds everything together in server order — so the
// accounting (one message of Σ Words() per non-CP server under tag) is
// deterministic and identical to a sequential formulation. The merged
// set, the CP's own sketches mutated in place, is returned; linearity of
// the sketches makes this exactly the sketch of Σ_t locals[t].
func concurrentMerge(net *comm.Network, s int, tag string, build func(t int) []*sketch.CountSketch) []*sketch.CountSketch {
	var merged []*sketch.CountSketch
	net.RunServers(func(t int) {
		local := build(t)
		if t != comm.CP {
			var words int64
			for _, cs := range local {
				words += cs.Words()
			}
			flat := make([]float64, 0, words)
			for _, cs := range local {
				flat = cs.AppendFlat(flat)
			}
			net.PostFloats(t, comm.CP, tag, flat)
			return
		}
		merged = local
		for from := 1; from < s; from++ {
			buf := net.RecvFloats(from, comm.CP, tag)
			for _, cs := range merged {
				buf = cs.AddFlat(buf)
			}
			if len(buf) != 0 {
				panic("hh: sketch payload length mismatch")
			}
		}
	})
	return merged
}

// HeavyHitters runs the distributed F2 heavy hitter protocol over the
// implicit vector v = Σ_t locals[t]: the CP broadcasts a seed, every server
// sketches its local share concurrently (one goroutine per server), the CP
// merges the linear sketches as they arrive over the channel links and
// reports every coordinate j with estimated v_j² ≥ F̂2/B.
//
// Communication: s−1 seed words + (s−1)·Depth·Width sketch words, charged
// on net under tag.
func HeavyHitters(net *comm.Network, locals []Vec, B float64, p Params, seed int64, tag string) Result {
	m := locals[0].Len()
	net.BroadcastSeed(comm.CP, tag+"/seed", seed)

	merged := concurrentMerge(net, len(locals), tag+"/sketch", func(t int) []*sketch.CountSketch {
		cs := sketch.NewCountSketch(seed, p.Depth, p.Width)
		cs.UpdateBulk(p.Workers, locals[t].ForEach)
		return []*sketch.CountSketch{cs}
	})[0]

	f2 := merged.F2Estimate()
	if f2 <= 0 {
		return Result{F2: f2}
	}
	thresh := f2 / B
	var cands []candidate
	for j := uint64(0); j < m; j++ {
		est := merged.Estimate(j)
		if est*est >= thresh {
			cands = append(cands, candidate{j, est * est})
		}
	}
	return Result{Coords: keepTop(cands, capFor(B)), F2: f2}
}

// candidate pairs a coordinate with its estimated squared value.
type candidate struct {
	j    uint64
	est2 float64
}

// capFor bounds how many coordinates a heaviness parameter B can certify:
// at most ⌈B⌉ coordinates can truly have v_j² ≥ ‖v‖²/B, so anything beyond
// a small multiple of that is sketch noise. Capping keeps the downstream
// value-collection cost proportional to B instead of to the noise level.
func capFor(B float64) int {
	c := int(2 * B)
	if c < 4 {
		c = 4
	}
	return c
}

// keepTop returns the coordinates of the n largest estimates, sorted.
func keepTop(cands []candidate, n int) []uint64 {
	if len(cands) > n {
		// Partial selection sort: n is small.
		for i := 0; i < n; i++ {
			maxAt := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].est2 > cands[maxAt].est2 {
					maxAt = j
				}
			}
			cands[i], cands[maxAt] = cands[maxAt], cands[i]
		}
		cands = cands[:n]
	}
	out := make([]uint64, len(cands))
	for i, c := range cands {
		out[i] = c.j
	}
	sortUint64s(out)
	return out
}

// HeavyHittersFiltered is HeavyHitters on the restriction v(S) for S given
// by keep; both the local sketching and the CP-side candidate enumeration
// honor the restriction, so no extra communication is needed to describe S
// (it is defined by hash seeds all servers already share).
func HeavyHittersFiltered(net *comm.Network, locals []Vec, keep func(uint64) bool, B float64, p Params, seed int64, tag string) Result {
	restricted := make([]Vec, len(locals))
	for t, lv := range locals {
		restricted[t] = Filtered{Base: lv, Keep: keep}
	}
	m := locals[0].Len()
	net.BroadcastSeed(comm.CP, tag+"/seed", seed)

	merged := concurrentMerge(net, len(locals), tag+"/sketch", func(t int) []*sketch.CountSketch {
		cs := sketch.NewCountSketch(seed, p.Depth, p.Width)
		cs.UpdateBulk(p.Workers, restricted[t].ForEach)
		return []*sketch.CountSketch{cs}
	})[0]

	f2 := merged.F2Estimate()
	if f2 <= 0 {
		return Result{F2: f2}
	}
	thresh := f2 / B
	var cands []candidate
	for j := uint64(0); j < m; j++ {
		if !keep(j) {
			continue
		}
		est := merged.Estimate(j)
		if est*est >= thresh {
			cands = append(cands, candidate{j, est * est})
		}
	}
	return Result{Coords: keepTop(cands, capFor(B)), F2: f2}
}

// bucketedSketches builds, for one repetition of Z-HeavyHitters, the
// per-bucket merged CountSketches over a hash partition of the coordinate
// space. Every server demultiplexes its share into bucket sketches in its
// own goroutine; the CP merges the arriving counter blocks in server
// order, charging each server's bucket sketches as one message.
func bucketedSketches(net *comm.Network, locals []Vec, part *hashing.PolyHash, buckets int, p Params, seed int64, tag string) []*sketch.CountSketch {
	return concurrentMerge(net, len(locals), tag+"/bucket-sketch", func(t int) []*sketch.CountSketch {
		local := make([]*sketch.CountSketch, buckets)
		for e := range local {
			local[e] = sketch.NewCountSketch(hashing.DeriveSeed(seed, uint64(e)), p.Depth, p.Width)
		}
		locals[t].ForEach(func(j uint64, v float64) {
			local[part.Bucket(j, buckets)].Update(j, v)
		})
		return local
	})
}

// ZParams are the practical knobs of Z-HeavyHitters (Algorithm 2). The
// paper uses Reps = ⌈20·log(1/δ)⌉ and Buckets = ⌈4B²⌉; experiments shrink
// both to meet communication budgets.
type ZParams struct {
	// Reps is the number of independent bucketing repetitions (line 5).
	Reps int
	// Buckets is the number of hash buckets per repetition (line 6).
	Buckets int
	// B is the heaviness parameter: coordinates with z(v_j) ≥ Z(v)/B are
	// the protocol's targets.
	B float64
	// Sketch is the inner HeavyHitters CountSketch shape.
	Sketch Params
}

// DefaultZParams gives a practical configuration for heaviness B.
func DefaultZParams(B float64) ZParams {
	buckets := int(B)
	if buckets < 8 {
		buckets = 8
	}
	if buckets > 512 {
		buckets = 512
	}
	return ZParams{Reps: 3, Buckets: buckets, B: B, Sketch: DefaultParams(B)}
}

// ZHeavyHitters implements Algorithm 2: hash the coordinate space into
// buckets with a pairwise-independent function so that, with constant
// probability per repetition, each z-heavy coordinate is alone among
// z-heavy coordinates in its bucket — where property P guarantees it is
// also ℓ2-heavy and hence caught by plain HeavyHitters. The union over
// repetitions and buckets is returned.
//
// Note z itself is not evaluated anywhere: property P is exactly what makes
// ℓ2 heaviness inside a bucket certify z heaviness.
func ZHeavyHitters(net *comm.Network, locals []Vec, zp ZParams, seed int64, tag string) []uint64 {
	m := locals[0].Len()
	found := make(map[uint64]struct{})
	for t := 0; t < zp.Reps; t++ {
		repSeed := hashing.DeriveSeed(seed, uint64(7000+t))
		net.BroadcastSeed(comm.CP, tag+"/seed", repSeed)
		part := hashing.PairwiseHash(hashing.Seeded(repSeed))

		merged := bucketedSketches(net, locals, part, zp.Buckets, zp.Sketch, repSeed, tag)

		f2 := make([]float64, zp.Buckets)
		for e := range merged {
			f2[e] = merged[e].F2Estimate()
		}
		perBucket := make([][]candidate, zp.Buckets)
		for j := uint64(0); j < m; j++ {
			e := part.Bucket(j, zp.Buckets)
			if f2[e] <= 0 {
				continue
			}
			est := merged[e].Estimate(j)
			if est*est >= f2[e]/zp.B {
				perBucket[e] = append(perBucket[e], candidate{j, est * est})
			}
		}
		for e := range perBucket {
			for _, j := range keepTop(perBucket[e], capFor(zp.B)) {
				found[j] = struct{}{}
			}
		}
	}
	out := make([]uint64, 0, len(found))
	for j := range found {
		out = append(out, j)
	}
	sortUint64s(out)
	return out
}

// ZHeavyHittersFiltered runs Z-HeavyHitters on the restriction of the
// vector to coordinates passing keep (used by the Z-estimator's subsampled
// level sets). candidates, when non-nil, enumerates the coordinates the CP
// should test — callers that know the restricted support (e.g. from a
// shared level-set hash) supply it to avoid a full-range scan; when nil,
// every coordinate passing keep is tested.
func ZHeavyHittersFiltered(net *comm.Network, locals []Vec, keep func(uint64) bool, candidates func(yield func(uint64)), zp ZParams, seed int64, tag string) []uint64 {
	restricted := make([]Vec, len(locals))
	for t, lv := range locals {
		restricted[t] = Filtered{Base: lv, Keep: keep}
	}
	if candidates == nil {
		m := locals[0].Len()
		candidates = func(yield func(uint64)) {
			for j := uint64(0); j < m; j++ {
				if keep(j) {
					yield(j)
				}
			}
		}
	}
	found := make(map[uint64]struct{})
	for t := 0; t < zp.Reps; t++ {
		repSeed := hashing.DeriveSeed(seed, uint64(9000+t))
		net.BroadcastSeed(comm.CP, tag+"/seed", repSeed)
		part := hashing.PairwiseHash(hashing.Seeded(repSeed))

		merged := bucketedSketches(net, restricted, part, zp.Buckets, zp.Sketch, repSeed, tag)

		f2 := make([]float64, zp.Buckets)
		for e := range merged {
			f2[e] = merged[e].F2Estimate()
		}
		perBucket := make([][]candidate, zp.Buckets)
		candidates(func(j uint64) {
			e := part.Bucket(j, zp.Buckets)
			if f2[e] <= 0 {
				return
			}
			est := merged[e].Estimate(j)
			if est*est >= f2[e]/zp.B {
				perBucket[e] = append(perBucket[e], candidate{j, est * est})
			}
		})
		for e := range perBucket {
			for _, j := range keepTop(perBucket[e], capFor(zp.B)) {
				found[j] = struct{}{}
			}
		}
	}
	out := make([]uint64, 0, len(found))
	for j := range found {
		out = append(out, j)
	}
	sortUint64s(out)
	return out
}

func sortUint64s(xs []uint64) {
	// Insertion sort is fine for the small candidate lists these protocols
	// produce; avoid pulling in sort for a slice type it lacks a helper for.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
