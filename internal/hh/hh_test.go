package hh

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/matrix"
)

// splitVector splits a dense global vector additively across s servers.
func splitVector(v []float64, s int, rng *rand.Rand) []Vec {
	parts := make([][]float64, s)
	for t := range parts {
		parts[t] = make([]float64, len(v))
	}
	for j, val := range v {
		var acc float64
		for t := 0; t < s-1; t++ {
			sh := rng.NormFloat64() * 0.1
			parts[t][j] = sh
			acc += sh
		}
		parts[s-1][j] = val - acc
	}
	out := make([]Vec, s)
	for t := range parts {
		out[t] = DenseVec(parts[t])
	}
	return out
}

func contains(xs []uint64, j uint64) bool {
	for _, x := range xs {
		if x == j {
			return true
		}
	}
	return false
}

func TestDenseVec(t *testing.T) {
	v := DenseVec{0, 2, 0, 5}
	if v.Len() != 4 || v.At(3) != 5 {
		t.Fatal("densevec basics")
	}
	var seen []uint64
	v.ForEach(func(j uint64, val float64) { seen = append(seen, j) })
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("foreach = %v", seen)
	}
}

func TestMatVec(t *testing.T) {
	for _, backend := range []matrix.Mat{
		matrix.FromRows([][]float64{{1, 0}, {0, 3}}),
		matrix.NewCSR(2, 2, []matrix.Triple{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 3}}),
	} {
		mv := MatVec{M: backend}
		if mv.Len() != 4 {
			t.Fatal("len")
		}
		if mv.At(3) != 3 || mv.At(0) != 1 || mv.At(1) != 0 {
			t.Fatal("at")
		}
		count := 0
		mv.ForEach(func(j uint64, v float64) { count++ })
		if count != 2 {
			t.Fatal("foreach skips zeros")
		}
	}
}

func TestFilteredVec(t *testing.T) {
	base := DenseVec{1, 2, 3, 4}
	f := Filtered{Base: base, Keep: func(j uint64) bool { return j%2 == 0 }}
	if f.At(1) != 0 || f.At(2) != 3 {
		t.Fatal("filtered at")
	}
	var sum float64
	f.ForEach(func(j uint64, v float64) { sum += v })
	if sum != 4 {
		t.Fatalf("filtered sum = %g", sum)
	}
}

func TestSumAt(t *testing.T) {
	locals := []Vec{DenseVec{1, 2}, DenseVec{10, 20}}
	if SumAt(locals, 1) != 22 {
		t.Fatal("sumat")
	}
}

func TestHeavyHittersFindsPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const m = 5000
	v := make([]float64, m)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.05
	}
	heavies := []uint64{17, 1234, 4999}
	for _, j := range heavies {
		v[j] = 30
	}
	locals := splitVector(v, 4, rng)
	net := comm.NewNetwork(4)
	res, err := HeavyHitters(context.Background(), net, locals, 64, Params{Depth: 5, Width: 256}, 99, "hh")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range heavies {
		if !contains(res.Coords, j) {
			t.Fatalf("missed heavy coordinate %d (found %v)", j, res.Coords)
		}
	}
	if len(res.Coords) > 50 {
		t.Fatalf("too many false positives: %d", len(res.Coords))
	}
	if net.Words() == 0 {
		t.Fatal("no communication charged")
	}
}

func TestHeavyHittersChargesSketches(t *testing.T) {
	net := comm.NewNetwork(3)
	locals := []Vec{DenseVec{1, 0}, DenseVec{0, 0}, DenseVec{0, 0}}
	p := Params{Depth: 2, Width: 8}
	if _, err := HeavyHitters(context.Background(), net, locals, 4, p, 1, "hh"); err != nil {
		t.Fatal(err)
	}
	// 2 non-CP servers × (3 op-frame words + 16 sketch words).
	want := int64(2 * (3 + 16))
	if net.Words() != want {
		t.Fatalf("words = %d, want %d", net.Words(), want)
	}
}

func TestHeavyHittersZeroVector(t *testing.T) {
	net := comm.NewNetwork(2)
	locals := []Vec{DenseVec(make([]float64, 10)), DenseVec(make([]float64, 10))}
	res, err := HeavyHitters(context.Background(), net, locals, 4, Params{Depth: 2, Width: 8}, 1, "hh")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coords) != 0 {
		t.Fatal("zero vector has no heavy hitters")
	}
}

func TestHeavyHittersFiltered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const m = 2000
	v := make([]float64, m)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.05
	}
	v[100] = 50 // in filter
	v[101] = 80 // out of filter — must NOT be reported
	locals := splitVector(v, 3, rng)
	net := comm.NewNetwork(3)
	keep := func(j uint64) bool { return j%2 == 0 }
	res, err := HeavyHittersFiltered(context.Background(), net, locals, keep, 64, Params{Depth: 5, Width: 256}, 7, "hh")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(res.Coords, 100) {
		t.Fatal("missed in-filter heavy coordinate")
	}
	if contains(res.Coords, 101) {
		t.Fatal("reported filtered-out coordinate")
	}
}

// TestZHeavyHittersIsolatesManyHeavy plants many equal heavy coordinates:
// plain HeavyHitters with small B would miss them (each is only 1/h of the
// mass), but Z-HeavyHitters' bucketing isolates them.
func TestZHeavyHittersIsolatesManyHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m = 4000
	const h = 24 // heavy coordinates, equal magnitude
	v := make([]float64, m)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.01
	}
	heavies := make([]uint64, h)
	for i := range heavies {
		j := uint64(rng.Intn(m))
		heavies[i] = j
		v[j] = 10
	}
	locals := splitVector(v, 4, rng)
	net := comm.NewNetwork(4)
	zp := ZParams{Reps: 4, Buckets: 64, B: 16, Sketch: Params{Depth: 5, Width: 128}}
	found, err := ZHeavyHitters(context.Background(), net, locals, zp, 11, "zhh")
	if err != nil {
		t.Fatal(err)
	}
	missed := 0
	for _, j := range heavies {
		if !contains(found, j) {
			missed++
		}
	}
	if missed > 2 {
		t.Fatalf("missed %d/%d heavy coordinates", missed, h)
	}
}

func TestZHeavyHittersFilteredCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const m = 1000
	v := make([]float64, m)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.01
	}
	v[10] = 20
	v[11] = 20
	locals := splitVector(v, 2, rng)
	net := comm.NewNetwork(2)
	keep := func(j uint64) bool { return j < 500 }
	candidates := func(yield func(uint64)) {
		for j := uint64(0); j < 500; j++ {
			yield(j)
		}
	}
	zp := ZParams{Reps: 3, Buckets: 16, B: 16, Sketch: Params{Depth: 4, Width: 64}}
	found, err := ZHeavyHittersFiltered(context.Background(), net, locals, keep, nil, candidates, zp, 5, "zhh")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(found, 10) || !contains(found, 11) {
		t.Fatalf("missed planted heavies: %v", found)
	}
	for _, j := range found {
		if j >= 500 {
			t.Fatalf("reported out-of-filter coordinate %d", j)
		}
	}
}

func TestZHeavyHittersFilteredNilCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := make([]float64, 200)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.01
	}
	v[42] = 15
	locals := splitVector(v, 2, rng)
	net := comm.NewNetwork(2)
	zp := ZParams{Reps: 2, Buckets: 8, B: 8, Sketch: Params{Depth: 4, Width: 64}}
	found, err := ZHeavyHittersFiltered(context.Background(), net, locals, func(uint64) bool { return true }, nil, nil, zp, 5, "zhh")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(found, 42) {
		t.Fatalf("nil candidates path missed heavy: %v", found)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(100)
	if p.Width < 100 || p.Depth < 1 {
		t.Fatalf("default params %+v", p)
	}
	zp := DefaultZParams(100)
	if zp.B != 100 || zp.Buckets < 8 {
		t.Fatalf("default zparams %+v", zp)
	}
}

func TestSortUint64s(t *testing.T) {
	xs := []uint64{5, 1, 4, 1, 3}
	sortUint64s(xs)
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("not sorted: %v", xs)
		}
	}
}

func TestKeepTop(t *testing.T) {
	cands := []candidate{{1, 5}, {2, 9}, {3, 1}, {4, 7}}
	out := keepTop(append([]candidate(nil), cands...), 2)
	if len(out) != 2 || out[0] != 2 || out[1] != 4 {
		t.Fatalf("keepTop = %v, want [2 4]", out)
	}
	// n larger than input keeps everything, sorted.
	all := keepTop(append([]candidate(nil), cands...), 10)
	if len(all) != 4 || all[0] != 1 || all[3] != 4 {
		t.Fatalf("keepTop all = %v", all)
	}
	if len(keepTop(nil, 3)) != 0 {
		t.Fatal("empty keepTop")
	}
}

func TestCapFor(t *testing.T) {
	if capFor(32) != 64 {
		t.Fatalf("capFor(32) = %d", capFor(32))
	}
	if capFor(0.5) != 4 {
		t.Fatalf("capFor(0.5) = %d (floor)", capFor(0.5))
	}
}

// TestHeavyHittersCapBoundsReportSize: even with a tiny noisy sketch the
// report never exceeds 2B candidates — the property that keeps the
// Z-estimator's value-collection cost inside the communication budget.
func TestHeavyHittersCapBoundsReportSize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	v := make([]float64, 3000)
	for j := range v {
		v[j] = rng.NormFloat64() // no heavy structure: everything borderline
	}
	locals := splitVector(v, 2, rng)
	net := comm.NewNetwork(2)
	B := 8.0
	res, err := HeavyHitters(context.Background(), net, locals, B, Params{Depth: 2, Width: 8}, 3, "hh")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coords) > int(2*B) {
		t.Fatalf("reported %d candidates, cap is %d", len(res.Coords), int(2*B))
	}
}
