// Package hh implements the distributed heavy hitter protocols of the
// paper: HeavyHitters (the CountSketch-based F2 heavy hitter protocol of
// reference [21], lifted to the distributed setting through sketch
// linearity) and Z-HeavyHitters (Algorithm 2), which isolates coordinates
// that are heavy with respect to an arbitrary property-P weight function z
// by pairwise-independent bucketing.
package hh

import "repro/internal/ops"

// The local-share vector abstraction lives in package ops (the op
// vocabulary shared with remote workers); these aliases keep the heavy
// hitter API self-contained for callers and tests.

// Vec is a server's local share of a distributed vector v = Σ_t v^t.
type Vec = ops.Vec

// DenseVec adapts a dense slice.
type DenseVec = ops.DenseVec

// MatVec flattens a matrix (any Mat backend) into a vector of dimension
// rows×cols without copying; coordinate j = i*cols + c.
type MatVec = ops.MatVec

// Filtered restricts a vector to coordinates where Keep returns true.
type Filtered = ops.Filtered

// SumAt returns Σ_t locals[t].At(j), the true global coordinate value.
// Protocol code must charge communication when it uses this across servers.
func SumAt(locals []Vec, j uint64) float64 { return ops.SumAt(locals, j) }
