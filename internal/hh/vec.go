// Package hh implements the distributed heavy hitter protocols of the
// paper: HeavyHitters (the CountSketch-based F2 heavy hitter protocol of
// reference [21], lifted to the distributed setting through sketch
// linearity) and Z-HeavyHitters (Algorithm 2), which isolates coordinates
// that are heavy with respect to an arbitrary property-P weight function z
// by pairwise-independent bucketing.
package hh

// Vec is a server's local share of a distributed vector v = Σ_t v^t.
// Implementations expose the global dimension and iterate local nonzeros.
type Vec interface {
	// Len is the dimension of the global vector.
	Len() uint64
	// ForEach calls f for every locally nonzero coordinate.
	ForEach(f func(j uint64, v float64))
	// At returns the local value at coordinate j (0 if absent).
	At(j uint64) float64
}

// DenseVec adapts a dense slice.
type DenseVec []float64

// Len returns the dimension.
func (d DenseVec) Len() uint64 { return uint64(len(d)) }

// ForEach iterates nonzero entries.
func (d DenseVec) ForEach(f func(j uint64, v float64)) {
	for j, v := range d {
		if v != 0 {
			f(uint64(j), v)
		}
	}
}

// At returns entry j.
func (d DenseVec) At(j uint64) float64 { return d[j] }

// MatrixVec flattens a row-major matrix held as rows into a vector of
// dimension rows×cols without copying; coordinate j = i*cols + c.
type MatrixVec struct {
	Rows [][]float64
	Cols int
}

// Len returns rows×cols.
func (m MatrixVec) Len() uint64 { return uint64(len(m.Rows) * m.Cols) }

// ForEach iterates nonzero entries in row-major coordinate order.
func (m MatrixVec) ForEach(f func(j uint64, v float64)) {
	for i, row := range m.Rows {
		base := uint64(i * m.Cols)
		for c, v := range row {
			if v != 0 {
				f(base+uint64(c), v)
			}
		}
	}
}

// At returns the value at flattened coordinate j.
func (m MatrixVec) At(j uint64) float64 {
	return m.Rows[j/uint64(m.Cols)][j%uint64(m.Cols)]
}

// Filtered restricts a vector to coordinates where Keep returns true;
// this realizes the paper's v(S) restriction for subsets defined by shared
// hash functions, with no data movement.
type Filtered struct {
	Base Vec
	Keep func(j uint64) bool
}

// Len returns the base dimension (restriction keeps the index space).
func (fv Filtered) Len() uint64 { return fv.Base.Len() }

// ForEach iterates base nonzeros that pass the filter.
func (fv Filtered) ForEach(f func(j uint64, v float64)) {
	fv.Base.ForEach(func(j uint64, v float64) {
		if fv.Keep(j) {
			f(j, v)
		}
	})
}

// At returns the filtered value at j.
func (fv Filtered) At(j uint64) float64 {
	if fv.Keep(j) {
		return fv.Base.At(j)
	}
	return 0
}

// SumAt returns Σ_t locals[t].At(j), the true global coordinate value.
// Protocol code must charge communication when it uses this across servers.
func SumAt(locals []Vec, j uint64) float64 {
	var s float64
	for _, v := range locals {
		s += v.At(j)
	}
	return s
}
