// Package hh implements the distributed heavy hitter protocols of the
// paper: HeavyHitters (the CountSketch-based F2 heavy hitter protocol of
// reference [21], lifted to the distributed setting through sketch
// linearity) and Z-HeavyHitters (Algorithm 2), which isolates coordinates
// that are heavy with respect to an arbitrary property-P weight function z
// by pairwise-independent bucketing.
package hh

import "repro/internal/matrix"

// Vec is a server's local share of a distributed vector v = Σ_t v^t.
// Implementations expose the global dimension and iterate local nonzeros.
type Vec interface {
	// Len is the dimension of the global vector.
	Len() uint64
	// ForEach calls f for every locally nonzero coordinate.
	ForEach(f func(j uint64, v float64))
	// At returns the local value at coordinate j (0 if absent).
	At(j uint64) float64
}

// DenseVec adapts a dense slice.
type DenseVec []float64

// Len returns the dimension.
func (d DenseVec) Len() uint64 { return uint64(len(d)) }

// ForEach iterates nonzero entries.
func (d DenseVec) ForEach(f func(j uint64, v float64)) {
	for j, v := range d {
		if v != 0 {
			f(uint64(j), v)
		}
	}
}

// At returns entry j.
func (d DenseVec) At(j uint64) float64 { return d[j] }

// MatVec flattens a matrix (any Mat backend) into a vector of dimension
// rows×cols without copying; coordinate j = i*cols + c. Iteration drains
// the backend's nonzero stream, so a CSR share is sketched in O(nnz) —
// and because the stream is backend-invariant (ascending columns, zeros
// skipped), the sketches and everything downstream are bit-identical
// between Dense and CSR shares of the same logical matrix.
type MatVec struct {
	M matrix.Mat
}

// Len returns rows×cols.
func (m MatVec) Len() uint64 { return uint64(m.M.Rows()) * uint64(m.M.Cols()) }

// ForEach iterates nonzero entries in row-major coordinate order.
func (m MatVec) ForEach(f func(j uint64, v float64)) {
	cols := m.M.Cols()
	for i := 0; i < m.M.Rows(); i++ {
		base := uint64(i) * uint64(cols)
		m.M.RowNNZ(i, func(c int, v float64) {
			f(base+uint64(c), v)
		})
	}
}

// At returns the value at flattened coordinate j.
func (m MatVec) At(j uint64) float64 {
	cols := uint64(m.M.Cols())
	return m.M.At(int(j/cols), int(j%cols))
}

// Filtered restricts a vector to coordinates where Keep returns true;
// this realizes the paper's v(S) restriction for subsets defined by shared
// hash functions, with no data movement.
type Filtered struct {
	Base Vec
	Keep func(j uint64) bool
}

// Len returns the base dimension (restriction keeps the index space).
func (fv Filtered) Len() uint64 { return fv.Base.Len() }

// ForEach iterates base nonzeros that pass the filter.
func (fv Filtered) ForEach(f func(j uint64, v float64)) {
	fv.Base.ForEach(func(j uint64, v float64) {
		if fv.Keep(j) {
			f(j, v)
		}
	})
}

// At returns the filtered value at j.
func (fv Filtered) At(j uint64) float64 {
	if fv.Keep(j) {
		return fv.Base.At(j)
	}
	return 0
}

// SumAt returns Σ_t locals[t].At(j), the true global coordinate value.
// Protocol code must charge communication when it uses this across servers.
func SumAt(locals []Vec, j uint64) float64 {
	var s float64
	for _, v := range locals {
		s += v.At(j)
	}
	return s
}
