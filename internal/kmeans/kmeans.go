// Package kmeans implements Lloyd's algorithm with k-means++ seeding and
// an optional training subsample — the codebook-learning step of the
// paper's Caltech-101/Scenes methodology ("densely extract SIFT
// descriptors …; use k-means to generate a codebook with size 256; and
// generate a 1-of-256 code for each patch", Section VIII).
//
// The implementation is self-contained and deterministic given a seed, so
// the experiment pipelines that build on it are reproducible.
package kmeans

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/hashing"
	"repro/internal/matrix"
)

// Config controls training.
type Config struct {
	// K is the codebook size.
	K int
	// MaxIters bounds Lloyd iterations (default 20).
	MaxIters int
	// Tol stops early when the relative decrease of the objective falls
	// below it (default 1e-4).
	Tol float64
	// SampleLimit trains on at most this many points (uniform subsample);
	// 0 trains on everything. Quantization always covers all points.
	SampleLimit int
	// Seed drives seeding and subsampling.
	Seed int64
}

// Model is a trained codebook.
type Model struct {
	// Centers holds the K centroids as rows.
	Centers *matrix.Dense
	// Objective is the final mean squared distance on the training set.
	Objective float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Train learns a codebook from the rows of data.
func Train(data *matrix.Dense, cfg Config) (*Model, error) {
	n, d := data.Dims()
	if cfg.K < 1 {
		return nil, errors.New("kmeans: K must be ≥ 1")
	}
	if n == 0 {
		return nil, errors.New("kmeans: no data")
	}
	if cfg.K > n {
		return nil, errors.New("kmeans: K exceeds the number of points")
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 20
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-4
	}
	rng := hashing.Seeded(cfg.Seed)

	train := data
	if cfg.SampleLimit > 0 && n > cfg.SampleLimit {
		idx := rng.Perm(n)[:cfg.SampleLimit]
		train = matrix.NewDense(cfg.SampleLimit, d)
		for i, src := range idx {
			train.SetRow(i, data.Row(src))
		}
	}
	tn := train.Rows()

	centers := seedPlusPlus(train, cfg.K, rng)
	assign := make([]int, tn)
	counts := make([]int, cfg.K)
	prevObj := math.Inf(1)
	iters := 0
	for ; iters < maxIters; iters++ {
		// Assignment step.
		var obj float64
		for i := 0; i < tn; i++ {
			c, d2 := Nearest(centers, train.Row(i))
			assign[i] = c
			obj += d2
		}
		obj /= float64(tn)
		// Update step.
		next := matrix.NewDense(cfg.K, d)
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < tn; i++ {
			c := assign[i]
			counts[c]++
			matrix.AXPY(1, train.Row(i), next.Row(c))
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point: standard
				// Lloyd repair, keeps K codewords alive.
				next.SetRow(c, train.Row(rng.Intn(tn)))
				continue
			}
			row := next.Row(c)
			inv := 1 / float64(counts[c])
			for j := range row {
				row[j] *= inv
			}
		}
		centers = next
		if prevObj-obj <= tol*math.Max(prevObj, 1e-300) {
			prevObj = obj
			iters++
			break
		}
		prevObj = obj
	}
	return &Model{Centers: centers, Objective: prevObj, Iters: iters}, nil
}

// seedPlusPlus picks K initial centers with D² weighting (k-means++).
func seedPlusPlus(data *matrix.Dense, k int, rng *rand.Rand) *matrix.Dense {
	n, d := data.Dims()
	centers := matrix.NewDense(k, d)
	first := rng.Intn(n)
	centers.SetRow(0, data.Row(first))
	dist2 := make([]float64, n)
	for i := 0; i < n; i++ {
		dist2[i] = sqDist(data.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dist2 {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			x := rng.Float64() * total
			for pick = 0; pick < n-1; pick++ {
				x -= dist2[pick]
				if x <= 0 {
					break
				}
			}
		}
		centers.SetRow(c, data.Row(pick))
		for i := 0; i < n; i++ {
			if d2 := sqDist(data.Row(i), centers.Row(c)); d2 < dist2[i] {
				dist2[i] = d2
			}
		}
	}
	return centers
}

// Nearest returns the index of the closest center to x and the squared
// distance to it.
func Nearest(centers *matrix.Dense, x []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	k := centers.Rows()
	for c := 0; c < k; c++ {
		if d2 := sqDist(centers.Row(c), x); d2 < bestD {
			best, bestD = c, d2
		}
	}
	return best, bestD
}

// Quantize maps every row of data to its nearest codeword index.
func (m *Model) Quantize(data *matrix.Dense) []int {
	n := data.Rows()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i], _ = Nearest(m.Centers, data.Row(i))
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		diff := v - b[i]
		s += diff * diff
	}
	return s
}
