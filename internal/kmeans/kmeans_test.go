package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// clusteredData draws n points around k well-separated centers.
func clusteredData(rng *rand.Rand, n, d, k int, sep, spread float64) (*matrix.Dense, []int) {
	centers := matrix.NewDense(k, d)
	for i := 0; i < k; i++ {
		for j := 0; j < d; j++ {
			centers.Set(i, j, rng.NormFloat64()*sep)
		}
	}
	data := matrix.NewDense(n, d)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		row := data.Row(i)
		src := centers.Row(c)
		for j := 0; j < d; j++ {
			row[j] = src[j] + rng.NormFloat64()*spread
		}
	}
	return data, truth
}

func TestTrainRecoversWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, truth := clusteredData(rng, 600, 8, 4, 20, 0.5)
	m, err := Train(data, Config{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	codes := m.Quantize(data)
	// Points of the same true cluster must map to the same codeword.
	rep := make(map[int]int)
	for i, c := range codes {
		tc := truth[i]
		if prev, ok := rep[tc]; ok {
			if prev != c {
				t.Fatalf("true cluster %d split across codewords %d and %d", tc, prev, c)
			}
		} else {
			rep[tc] = c
		}
	}
	if len(rep) != 4 {
		t.Fatalf("recovered %d clusters", len(rep))
	}
}

func TestTrainObjectiveDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, _ := clusteredData(rng, 400, 6, 8, 10, 1.0)
	prev := math.Inf(1)
	for _, k := range []int{1, 4, 16} {
		m, err := Train(data, Config{K: k, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if m.Objective > prev*1.01 {
			t.Fatalf("objective rose with K: %g after %g", m.Objective, prev)
		}
		prev = m.Objective
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, _ := clusteredData(rng, 200, 5, 3, 8, 0.8)
	a, _ := Train(data, Config{K: 3, Seed: 11})
	b, _ := Train(data, Config{K: 3, Seed: 11})
	if !a.Centers.Equalf(b.Centers, 0) {
		t.Fatal("training not deterministic")
	}
}

func TestTrainSampleLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, _ := clusteredData(rng, 1000, 4, 5, 15, 0.5)
	m, err := Train(data, Config{K: 5, Seed: 5, SampleLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Quantization still covers everything and separates the clusters.
	codes := m.Quantize(data)
	seen := map[int]bool{}
	for _, c := range codes {
		seen[c] = true
		if c < 0 || c >= 5 {
			t.Fatalf("code %d out of range", c)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("only %d codewords used", len(seen))
	}
}

func TestTrainValidation(t *testing.T) {
	data := matrix.NewDense(3, 2)
	if _, err := Train(data, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Train(data, Config{K: 5}); err == nil {
		t.Fatal("K>n accepted")
	}
	if _, err := Train(matrix.NewDense(0, 2), Config{K: 1}); err == nil {
		t.Fatal("empty data accepted")
	}
}

func TestNearest(t *testing.T) {
	centers := matrix.FromRows([][]float64{{0, 0}, {10, 0}, {0, 10}})
	c, d2 := Nearest(centers, []float64{9, 1})
	if c != 1 || math.Abs(d2-2) > 1e-12 {
		t.Fatalf("nearest = %d, d² = %g", c, d2)
	}
}

func TestEmptyClusterRepair(t *testing.T) {
	// All points identical: K=3 must still return 3 centers (duplicates),
	// not crash on empty clusters.
	data := matrix.NewDense(10, 2)
	for i := 0; i < 10; i++ {
		data.Set(i, 0, 1)
		data.Set(i, 1, 2)
	}
	m, err := Train(data, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.Centers.Rows() != 3 {
		t.Fatal("lost centers")
	}
	for c := 0; c < 3; c++ {
		if math.Abs(m.Centers.At(c, 0)-1) > 1e-9 {
			t.Fatal("degenerate centers wrong")
		}
	}
}

func TestKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := clusteredData(rng, 6, 3, 6, 30, 0.01)
	m, err := Train(data, Config{K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Objective > 0.01 {
		t.Fatalf("K=n objective %g should be ≈ 0", m.Objective)
	}
}
