// Package linearbaseline implements the comparison point from the paper's
// related work (reference [7], Kannan–Vempala–Woodruff): distributed PCA
// in the *arbitrary partition model*, where the global matrix is the plain
// sum A = Σ_t A^t with no entrywise function. There, a shared random
// subspace embedding S makes a relative-error protocol almost trivial:
// every server computes S·A^t locally, the CP sums the (tiny) sketches —
// linearity again — and the top-k right singular space of S·A is a
// (1+ε)-approximate PCA of A.
//
// The point of carrying this baseline in the repository is the paper's
// motivation made executable: the linear protocol is cheaper AND achieves
// relative error, but it approximates the PCA of Σ_t A^t — apply it to a
// robust-PCA instance (where the target is ψ(Σ_t A^t)) and it chases the
// outliers that the Huber protocol caps. TestLinearBaselineMissesHuber
// demonstrates exactly that failure, and with it why the generalized
// partition model needs the machinery of this paper.
package linearbaseline

import (
	"errors"
	"math"

	"repro/internal/comm"
	"repro/internal/hashing"
	"repro/internal/matrix"
)

// Options configures the linear-model protocol.
type Options struct {
	// K is the target rank.
	K int
	// Eps is the relative error parameter; the embedding uses
	// O(K/Eps) rows (default 0.5).
	Eps float64
	// SketchRows overrides the embedding height (0 derives it from K, Eps).
	SketchRows int
	// Seed drives the shared embedding.
	Seed int64
}

func (o Options) rows(n int) int {
	if o.SketchRows > 0 {
		return min(o.SketchRows, n)
	}
	eps := o.Eps
	if eps <= 0 {
		eps = 0.5
	}
	t := int(math.Ceil(4 * float64(o.K) / eps))
	if t < o.K+1 {
		t = o.K + 1
	}
	return min(t, n)
}

// Result carries the projection and communication cost.
type Result struct {
	P     *matrix.Dense
	V     *matrix.Dense
	Words int64
}

// Run executes the linear-model protocol: CP broadcasts the embedding
// seed; each server applies the shared Gaussian sketch S (t×n) to its
// local matrix and ships the t×d product; the CP sums the products — by
// linearity Σ_t S·A^t = S·A — and projects onto the top-k right singular
// vectors of the summed sketch. Communication: s−1 seed words +
// (s−1)·t·d sketch words + (s−1)·d·k to ship the projection back.
func Run(net *comm.Network, locals []*matrix.Dense, opts Options) (*Result, error) {
	if len(locals) == 0 {
		return nil, errors.New("linearbaseline: no servers")
	}
	if opts.K < 1 {
		return nil, errors.New("linearbaseline: K must be ≥ 1")
	}
	n, d := locals[0].Dims()
	for _, m := range locals {
		mn, md := m.Dims()
		if mn != n || md != d {
			return nil, errors.New("linearbaseline: inconsistent shapes")
		}
	}
	start := net.Snapshot()
	t := opts.rows(n)
	seed := opts.Seed
	net.BroadcastSeed(comm.CP, "linear/seed", seed)

	// Every server rematerializes the same S from the seed and sketches
	// its share locally; only the t×d products travel.
	sum := matrix.NewDense(t, d)
	for sv, local := range locals {
		S := gaussianSketch(t, n, seed)
		prod := S.Mul(local)
		if sv != comm.CP {
			net.Charge(sv, comm.CP, "linear/sketch", int64(t*d))
		}
		sum.AddInPlace(prod)
	}

	V := matrix.TopKRightSingular(sum, opts.K)
	P := V.Mul(V.T())
	net.BroadcastWords(comm.CP, "linear/projection", int64(d*opts.K))
	return &Result{P: P, V: V, Words: net.Since(start)}, nil
}

// gaussianSketch returns the t×n shared embedding with N(0, 1/t) entries.
func gaussianSketch(t, n int, seed int64) *matrix.Dense {
	rng := hashing.Seeded(hashing.DeriveSeed(seed, 0x11EA2))
	S := matrix.NewDense(t, n)
	inv := 1 / math.Sqrt(float64(t))
	for i := range S.Data() {
		S.Data()[i] = rng.NormFloat64() * inv
	}
	return S
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
