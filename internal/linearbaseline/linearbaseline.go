// Package linearbaseline implements the comparison point from the paper's
// related work (reference [7], Kannan–Vempala–Woodruff): distributed PCA
// in the *arbitrary partition model*, where the global matrix is the plain
// sum A = Σ_t A^t with no entrywise function. There, a shared random
// subspace embedding S makes a relative-error protocol almost trivial:
// every server computes S·A^t locally, the CP sums the (tiny) sketches —
// linearity again — and the top-k right singular space of S·A is a
// (1+ε)-approximate PCA of A.
//
// The point of carrying this baseline in the repository is the paper's
// motivation made executable: the linear protocol is cheaper AND achieves
// relative error, but it approximates the PCA of Σ_t A^t — apply it to a
// robust-PCA instance (where the target is ψ(Σ_t A^t)) and it chases the
// outliers that the Huber protocol caps. TestLinearBaselineMissesHuber
// demonstrates exactly that failure, and with it why the generalized
// partition model needs the machinery of this paper.
package linearbaseline

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/matrix"
	"repro/internal/ops"
)

// Options configures the linear-model protocol.
type Options struct {
	// K is the target rank.
	K int
	// Eps is the relative error parameter; the embedding uses
	// O(K/Eps) rows (default 0.5).
	Eps float64
	// SketchRows overrides the embedding height (0 derives it from K, Eps).
	SketchRows int
	// Seed drives the shared embedding.
	Seed int64
}

func (o Options) rows(n int) int {
	if o.SketchRows > 0 {
		return min(o.SketchRows, n)
	}
	eps := o.Eps
	if eps <= 0 {
		eps = 0.5
	}
	t := int(math.Ceil(4 * float64(o.K) / eps))
	if t < o.K+1 {
		t = o.K + 1
	}
	return min(t, n)
}

// Result carries the projection and communication cost.
type Result struct {
	P     *matrix.Dense
	V     *matrix.Dense
	Words int64
}

// Run executes the linear-model protocol: the CP broadcasts the embedding
// parameters as an op frame; each server applies the shared Gaussian
// sketch S (t×n) to its local matrix and ships the t×d product; the CP
// sums the products — by linearity Σ_t S·A^t = S·A — and projects onto
// the top-k right singular vectors of the summed sketch. Communication:
// (s−1)·2 op words + (s−1)·t·d sketch words + (s−1)·d·k to ship the
// projection back. Shares may be in any backend; nil entries are
// worker-hosted shares reached through the fabric.
func Run(ctx context.Context, net *comm.Network, locals []matrix.Mat, opts Options) (*Result, error) {
	if len(locals) == 0 || locals[comm.CP] == nil {
		return nil, errors.New("linearbaseline: the CP's local share is required")
	}
	if opts.K < 1 {
		return nil, errors.New("linearbaseline: K must be ≥ 1")
	}
	n, d := locals[comm.CP].Rows(), locals[comm.CP].Cols()
	for _, m := range locals {
		if m == nil {
			continue // remote share: validated at installation
		}
		mn, md := m.Rows(), m.Cols()
		if mn != n || md != d {
			return nil, errors.New("linearbaseline: inconsistent shapes")
		}
	}
	start := net.Snapshot()
	t := opts.rows(n)
	seed := opts.Seed

	// Every server rematerializes the same S from the op frame's seed and
	// sketches its share locally; only the t×d products travel — worker
	// processes compute and ship theirs over the wire.
	sum := matrix.NewDense(t, d)
	addFlat := func(flat []float64) {
		data := sum.Data()
		for i, v := range flat {
			data[i] += v
		}
	}
	addFlat(ops.LinearSketch(locals[comm.CP], seed, t))
	err := net.RunRound(ctx, comm.Round{
		Op:       ops.OpLinearSketch,
		Params:   ops.LinearSketchParams(seed, t),
		ReqTag:   "linear/seed",
		RespTag:  "linear/sketch",
		RespKind: comm.KindSketch,
		Local: func(sv int) ([]float64, error) {
			return ops.LinearSketch(locals[sv], seed, t), nil
		},
		OnResp: func(sv int, payload []float64) error {
			if len(payload) != t*d {
				return fmt.Errorf("linearbaseline: sketch of %d words from server %d, want %d", len(payload), sv, t*d)
			}
			addFlat(payload)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	V := matrix.TopKRightSingular(sum, opts.K)
	P := V.Mul(V.T())
	net.BroadcastPayload(comm.CP, "linear/projection", comm.KindProjection, V.Data())
	return &Result{P: P, V: V, Words: net.Since(start)}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
