package linearbaseline

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/fn"
	"repro/internal/matrix"
	"repro/internal/robust"
)

func lowRank(rng *rand.Rand, n, d, rank int, noise float64) *matrix.Dense {
	u := matrix.NewDense(n, rank)
	v := matrix.NewDense(d, rank)
	for i := range u.Data() {
		u.Data()[i] = rng.NormFloat64()
	}
	for i := range v.Data() {
		v.Data()[i] = rng.NormFloat64()
	}
	m := u.Mul(v.T())
	for i := range m.Data() {
		m.Data()[i] += noise * rng.NormFloat64()
	}
	return m
}

func TestLinearRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	M := lowRank(rng, 400, 20, 5, 0.3)
	s, k := 4, 5
	locals := robust.ArbitraryPartition(M, s, 7)
	net := comm.NewNetwork(s)
	res, err := Run(context.Background(), net, matrix.AsMats(locals), Options{K: k, Eps: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := baseline.Evaluate(M, res.P, k, -1)
	t.Logf("linear baseline: relative %.4f, words %d", m.Relative, res.Words)
	// The subspace-embedding protocol achieves RELATIVE error — far
	// stronger than additive when the spectrum decays.
	if m.Relative > 1.5 {
		t.Fatalf("relative error %.4f", m.Relative)
	}
	if res.Words <= 0 {
		t.Fatal("no communication recorded")
	}
}

func TestLinearCommunicationIsSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, d, s := 1000, 30, 6
	M := lowRank(rng, n, d, 4, 0.2)
	locals := robust.RowPartition(M, s, 9)
	net := comm.NewNetwork(s)
	res, err := Run(context.Background(), net, matrix.AsMats(locals), Options{K: 4, Eps: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Sketch height t = O(k/ε) ⇒ communication ≈ (s−1)·t·d ≪ n·d.
	if res.Words >= int64(n*d) {
		t.Fatalf("linear baseline used %d words, data is %d", res.Words, n*d)
	}
}

// TestLinearBaselineMissesHuber is the paper's motivation, executable: on
// a corrupted matrix the linear-model protocol computes an excellent PCA
// of the WRONG matrix (the raw sum, outliers included), while the target
// of robust PCA is ψ(sum). Its projection is therefore far worse on the
// Huber-capped ground truth than even a crude additive-error run of the
// generalized protocol.
func TestLinearBaselineMissesHuber(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	M := lowRank(rng, 300, 15, 4, 0.1)
	corrupted, _, err := robust.Corrupt(M, 30, 1e5, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, k := 4, 4
	locals := robust.ArbitraryPartition(corrupted, s, 13)

	net := comm.NewNetwork(s)
	res, err := Run(context.Background(), net, matrix.AsMats(locals), Options{K: k, Eps: 0.25, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth of the ROBUST problem: ψ applied entrywise to the sum.
	huber := fn.Huber{K: 10}
	target := corrupted.Apply(huber.Apply)
	linear := baseline.Evaluate(target, res.P, k, -1)

	// The optimal projection of the capped matrix, for scale.
	optP, _ := baseline.ExactPCA(target, k)
	opt := baseline.Evaluate(target, optP, k, -1)

	t.Logf("linear on ψ-target: additive %.4f; optimal %.4f", linear.Additive, opt.Additive)
	// The linear protocol's subspace is dominated by the 1e5 outliers; on
	// the capped target it must be much worse than optimal.
	if linear.Additive < 0.2 {
		t.Fatalf("linear baseline unexpectedly solved the robust problem (additive %.4f) — the motivating gap vanished", linear.Additive)
	}
}

func TestRunValidation(t *testing.T) {
	net := comm.NewNetwork(2)
	if _, err := Run(context.Background(), net, nil, Options{K: 1}); err == nil {
		t.Fatal("no servers accepted")
	}
	ms := []*matrix.Dense{matrix.NewDense(3, 2), matrix.NewDense(2, 2)}
	if _, err := Run(context.Background(), net, matrix.AsMats(ms), Options{K: 1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	ok := []*matrix.Dense{matrix.NewDense(3, 2), matrix.NewDense(3, 2)}
	if _, err := Run(context.Background(), net, matrix.AsMats(ok), Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestSketchRowsOverride(t *testing.T) {
	o := Options{K: 3, SketchRows: 7}
	if o.rows(100) != 7 {
		t.Fatal("override ignored")
	}
	if o.rows(5) != 5 {
		t.Fatal("rows must clamp at n")
	}
	o = Options{K: 3, Eps: 0.5}
	if o.rows(100) != 24 {
		t.Fatalf("derived rows = %d, want 24", o.rows(100))
	}
}
