// Package lowerbound makes the paper's communication lower bounds
// (Section VII) executable. Each lower bound is a reduction: if a
// low-communication protocol could compute a *relative-error* rank-k
// projection for the given f, the two players could solve a communication
// problem with a known Ω(·) bound. We implement the reduction protocols
// from the proofs of Theorems 4, 6 and 8 literally, with an exact PCA
// oracle standing in for the hypothetical protocol, and verify that they
// decide the underlying promise problems — demonstrating end to end why
// relative error forces huge communication and why the paper settles for
// additive error.
package lowerbound

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/matrix"
)

// Oracle computes a rank-k projection achieving relative error for the
// matrix it is given. The reductions invoke it as a black box; ExactOracle
// (full SVD) plays the role of the hypothetical low-communication protocol.
type Oracle func(A *matrix.Dense, k int) *matrix.Dense

// ExactOracle returns the optimal rank-k projection via full SVD.
func ExactOracle(A *matrix.Dense, k int) *matrix.Dense {
	return matrix.ProjectionTopK(A, k)
}

// ---------------------------------------------------------------------------
// Theorem 8: Gap Hamming Distance ⇒ Ω(1/ε²) bits for f(x)=x (and |x|^p).

// GHDInstance is a promise instance of the gap Hamming distance problem in
// inner-product form: x,y ∈ {−1,+1}^m with ⟨x,y⟩ > 2/ε (close) or < −2/ε
// (far).
type GHDInstance struct {
	X, Y []float64
	// PositiveGap records the ground truth: true iff ⟨x,y⟩ > +2/ε.
	PositiveGap bool
	Eps         float64
}

// NewGHDInstance builds a promise instance with m = ⌈1/ε²⌉ coordinates and
// inner product ±(2/ε + slack).
func NewGHDInstance(eps float64, positive bool, slack int, seed int64) (*GHDInstance, error) {
	if eps <= 0 || eps >= 1 {
		return nil, errors.New("lowerbound: need 0 < eps < 1")
	}
	m := int(math.Ceil(1 / (eps * eps)))
	gap := int(math.Ceil(2/eps)) + slack
	if gap > m {
		return nil, fmt.Errorf("lowerbound: gap %d exceeds dimension %d", gap, m)
	}
	// ⟨x,y⟩ = (#agree) − (#disagree) = 2a − m. Want 2a − m = ±gap with
	// matching parity.
	if (m+gap)%2 != 0 {
		gap++
	}
	target := gap
	if !positive {
		target = -gap
	}
	agree := (m + target) / 2
	rng := hashing.Seeded(seed)
	x := make([]float64, m)
	y := make([]float64, m)
	perm := rng.Perm(m)
	for i := range x {
		if rng.Intn(2) == 0 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
	for idx, i := range perm {
		if idx < agree {
			y[i] = x[i]
		} else {
			y[i] = -x[i]
		}
	}
	return &GHDInstance{X: x, Y: y, PositiveGap: positive, Eps: eps}, nil
}

// InnerProduct returns ⟨x,y⟩ for verification.
func (g *GHDInstance) InnerProduct() float64 { return matrix.Dot(g.X, g.Y) }

// SolveGHD runs the Theorem 8 reduction: Alice and Bob embed x and y into
// (1/ε²+k)×(k+1) matrices whose sum has first-column norm |x+y|²ε² and a
// designed spectrum, obtain a relative-error rank-k projection from the
// oracle, and read the answer off v₁² of the normalized first row of
// (I−P). Returns true iff the protocol declares ⟨x,y⟩ > 2/ε.
func SolveGHD(inst *GHDInstance, k int, oracle Oracle) (bool, error) {
	if k < 1 {
		return false, errors.New("lowerbound: k must be ≥ 1")
	}
	eps := inst.Eps
	m := len(inst.X)
	rows := m + k
	cols := k + 1
	A1 := matrix.NewDense(rows, cols)
	A2 := matrix.NewDense(rows, cols)
	for i := 0; i < m; i++ {
		A1.Set(i, 0, inst.X[i]*eps)
		A2.Set(i, 0, inst.Y[i]*eps)
	}
	// Alice's augmentation rows: one √2 row and k−1 rows of √(2(1+ε))/ε.
	A1.Set(m, 1, math.Sqrt2)
	big := math.Sqrt(2*(1+eps)) / eps
	for j := 0; j < k-1; j++ {
		A1.Set(m+1+j, 2+j, big)
	}
	A := A1.Add(A2)
	P := oracle(A, k)
	// u = first row of (I − P); v = u/‖u‖.
	u := make([]float64, cols)
	for j := 0; j < cols; j++ {
		if j == 0 {
			u[j] = 1 - P.At(0, j)
		} else {
			u[j] = -P.At(0, j)
		}
	}
	nu := matrix.Norm(u)
	if nu == 0 {
		// (I−P) annihilates e₁ ⇒ the x+y direction is fully captured,
		// which only happens when its energy is large ⇒ positive gap.
		return true, nil
	}
	v1 := u[0] / nu
	return v1*v1 < 0.5*(1+eps), nil
}

// ---------------------------------------------------------------------------
// Theorem 6: 2-DISJ ⇒ Ω̃(nd) bits for f = max(·) or the Huber ψ.

// DisjInstance is a promise instance of 2-DISJ on n·d-bit sets: the
// supports of X and Y intersect in exactly one position, or not at all.
type DisjInstance struct {
	N, D int
	X, Y []bool // length N*D
	// Intersects is the ground truth.
	Intersects bool
	// Pos is the intersection position when Intersects.
	Pos int
}

// NewDisjInstance generates a promise instance with the given per-player
// set density.
func NewDisjInstance(n, d int, density float64, intersects bool, seed int64) *DisjInstance {
	rng := hashing.Seeded(seed)
	total := n * d
	x := make([]bool, total)
	y := make([]bool, total)
	for i := 0; i < total; i++ {
		x[i] = rng.Float64() < density
		y[i] = rng.Float64() < density
		if x[i] && y[i] {
			y[i] = false // enforce disjoint baseline
		}
	}
	inst := &DisjInstance{N: n, D: d, X: x, Y: y, Intersects: intersects, Pos: -1}
	if intersects {
		p := rng.Intn(total)
		x[p], y[p] = true, true
		inst.Pos = p
	}
	return inst
}

// Combine mirrors the paper's entrywise combination for Theorem 6:
// CombineMax uses max of the flipped bits, CombineHuber uses the Huber ψ
// (with ψ(0)=0, ψ(1)=1, ψ(2)=1) of their sum. Both yield 0 exactly at a
// common element and 1 elsewhere.
type Combine int

const (
	// CombineMax combines with the entrywise maximum.
	CombineMax Combine = iota
	// CombineHuber combines with the Huber ψ-function of the sum.
	CombineHuber
)

func (c Combine) apply(a, b float64) float64 {
	switch c {
	case CombineMax:
		return math.Max(a, b)
	default: // Huber with K = 1: ψ(0)=0, ψ(1)=1, ψ(2)=1
		s := a + b
		if s > 1 {
			return 1
		}
		if s < -1 {
			return -1
		}
		return s
	}
}

// SolveDisj runs the Theorem 6 reduction with rank parameter k > 1: flip
// the bit vectors, arrange into n×d matrices, augment with an all-ones row
// and an identity block so the combined matrix has rank ≤ k with equality
// structure revealing the (unique) zero column, obtain P from the oracle,
// locate the column l with (ē_l 0)P = (ē_l 0), recurse on that column, and
// finish with an O(1)-word check. ShellWords receives the number of words
// the reduction itself communicated (indices and the final check — the
// point of the theorem being that everything *else* is inside the oracle).
func SolveDisj(inst *DisjInstance, k int, comb Combine, oracle Oracle) (intersects bool, shellWords int, err error) {
	if k < 2 {
		return false, 0, errors.New("lowerbound: theorem 6 needs k > 1")
	}
	if inst.D < 3 {
		// With d = 2 the span of {1_d, ē_j} is already all of R², so the
		// annihilated column stops being unique and the reduction's rank
		// argument degenerates; the theorem is about growing d anyway.
		return false, 0, errors.New("lowerbound: theorem 6 reduction needs d ≥ 3")
	}
	n, d := inst.N, inst.D
	// Flipped vectors arranged as matrices; padding (when a recursion level
	// does not fill d columns) uses 1 in the flipped domain, i.e. "no
	// element", so no artificial zeros appear in the combined matrix.
	alice := flipToMatrix(inst.X, n, d)
	bob := flipToMatrix(inst.Y, n, d)

	for round := 0; ; round++ {
		if round > 64 {
			return false, shellWords, errors.New("lowerbound: recursion failed to terminate")
		}
		nr := alice.Rows()
		A := buildDisjCombined(alice, bob, k, comb)
		P := oracle(A, k)
		l := findAnnihilatedColumn(P, d, A.Cols())
		if l < 0 {
			// No column satisfies the identity ⇒ no zero entry ⇒ disjoint.
			return false, shellWords, nil
		}
		if nr == 1 {
			// Final check: exchange the two values at (0, l): one word each
			// way. Intersection iff both flipped values are 0.
			shellWords += 2
			return alice.At(0, l) == 0 && bob.At(0, l) == 0, shellWords, nil
		}
		// Alice sends the column index to Bob: one word.
		shellWords++
		alice = rearrangeColumn(alice, l, d)
		bob = rearrangeColumn(bob, l, d)
	}
}

func flipToMatrix(bits []bool, n, d int) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if !bits[i*d+j] {
				m.Set(i, j, 1)
			}
		}
	}
	return m
}

// buildDisjCombined forms the combined matrix of the Theorem 6 protocol:
//
//	A = comb( [A′; 1_d; 0], [B′; 0; 0] ) extended with an I_{k−2} block,
//
// where the 1_d row guarantees the all-ones direction is present and the
// identity block pads the rank so a zero entry is detectable at rank k.
func buildDisjCombined(alice, bob *matrix.Dense, k int, comb Combine) *matrix.Dense {
	n, d := alice.Dims()
	rows := n + 1 + (k - 2)
	cols := d + (k - 2)
	A := matrix.NewDense(rows, cols)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			A.Set(i, j, comb.apply(alice.At(i, j), bob.At(i, j)))
		}
	}
	for j := 0; j < d; j++ {
		A.Set(n, j, comb.apply(1, 0))
	}
	for j := 0; j < k-2; j++ {
		A.Set(n+1+j, d+j, comb.apply(1, 0))
	}
	return A
}

// findAnnihilatedColumn looks for l ∈ [d] with (ē_l 0)·P = (ē_l 0), i.e.
// the "all ones except l" vector lies in the row space of A — which happens
// exactly when the combined matrix has a zero in column l.
func findAnnihilatedColumn(P *matrix.Dense, d, cols int) int {
	const tol = 1e-6
	for l := 0; l < d; l++ {
		ok := true
		for j := 0; j < cols && ok; j++ {
			// (ē_l 0)P_j = Σ_{i<d, i≠l} P_ij
			var s float64
			for i := 0; i < d; i++ {
				if i != l {
					s += P.At(i, j)
				}
			}
			want := 0.0
			if j < d && j != l {
				want = 1
			}
			if math.Abs(s-want) > tol {
				ok = false
			}
		}
		if ok {
			return l
		}
	}
	return -1
}

// rearrangeColumn reshapes column l of m (length n) into a ⌈n/d⌉×d matrix
// row-major, padding the tail with 1 (flipped-domain "absent").
func rearrangeColumn(m *matrix.Dense, l, d int) *matrix.Dense {
	n := m.Rows()
	rows := (n + d - 1) / d
	out := matrix.NewDense(rows, d)
	for pos := 0; pos < rows*d; pos++ {
		if pos < n {
			out.Set(pos/d, pos%d, m.At(pos, l))
		} else {
			out.Set(pos/d, pos%d, 1)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Theorem 4: L∞ ⇒ Ω̃((1+ε)^{−2/p}·n^{1−1/p}·d^{1−4/p}) bits for f = Ω(|x|^p).

// LInfInstance is a promise instance of the L∞ problem: x,y ∈ {0..B}^{n·d}
// with either all |x_i−y_i| ≤ 1, or exactly one coordinate at distance B.
type LInfInstance struct {
	N, D, B int
	X, Y    []int
	// Far is the ground truth: true iff some |x_i−y_i| = B.
	Far bool
	Pos int
}

// NewLInfInstance builds a promise instance. B is chosen by the caller
// (the reduction uses B = ⌈(2(1+ε)²·n·d⁴)^{1/(2p)}⌉).
func NewLInfInstance(n, d, B int, far bool, seed int64) *LInfInstance {
	rng := hashing.Seeded(seed)
	total := n * d
	x := make([]int, total)
	y := make([]int, total)
	for i := range x {
		x[i] = rng.Intn(B + 1)
		delta := rng.Intn(3) - 1 // −1, 0, +1
		y[i] = clampInt(x[i]+delta, 0, B)
	}
	inst := &LInfInstance{N: n, D: d, B: B, X: x, Y: y, Far: far, Pos: -1}
	if far {
		p := rng.Intn(total)
		if rng.Intn(2) == 0 {
			x[p], y[p] = 0, B
		} else {
			x[p], y[p] = B, 0
		}
		inst.Pos = p
	}
	return inst
}

// TheoremB returns the B the Theorem 4 reduction prescribes for the given
// ε, n, d and growth exponent p.
func TheoremB(eps float64, n, d int, p float64) int {
	v := math.Pow(2*(1+eps)*(1+eps)*float64(n)*math.Pow(float64(d), 4), 1/(2*p))
	return int(math.Ceil(v))
}

// SolveLInf runs the Theorem 4 reduction for f(x) = |x|^p: Alice arranges
// x, Bob −y; the combined matrix is |x−y|^p entrywise plus a B·I_{k−1}
// block; the huge B^p entry (if any) must be captured by any relative-error
// rank-k projection, so the column through the top-k leverage ordering
// locates it; recursion shrinks n to 1 and an O(1)-word check finishes.
func SolveLInf(inst *LInfInstance, k int, p float64, oracle Oracle) (far bool, shellWords int, err error) {
	if k < 1 {
		return false, 0, errors.New("lowerbound: k must be ≥ 1")
	}
	n, d, B := inst.N, inst.D, inst.B
	alice := intsToMatrix(inst.X, n, d, +1)
	bob := intsToMatrix(inst.Y, n, d, -1)

	for round := 0; ; round++ {
		if round > 64 {
			return false, shellWords, errors.New("lowerbound: recursion failed to terminate")
		}
		nr := alice.Rows()
		A := buildLInfCombined(alice, bob, k, p, float64(B))
		P := oracle(A, k)
		c := topKDataColumn(P, d, k)
		if c < 0 {
			return false, shellWords, nil
		}
		if nr == 1 {
			shellWords += 2
			diff := math.Abs(alice.At(0, c) + bob.At(0, c))
			return diff >= float64(B), shellWords, nil
		}
		shellWords++
		alice = rearrangeColumnZeroPad(alice, c, d)
		bob = rearrangeColumnZeroPad(bob, c, d)
	}
}

func intsToMatrix(vals []int, n, d, sign int) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, float64(sign*vals[i*d+j]))
		}
	}
	return m
}

// buildLInfCombined forms |A1+A2|^p on the data block and appends Alice's
// B·I_{k−1} block (already through f, i.e. B^p on the diagonal).
func buildLInfCombined(alice, bob *matrix.Dense, k int, p, B float64) *matrix.Dense {
	n, d := alice.Dims()
	rows := n + (k - 1)
	cols := d + (k - 1)
	A := matrix.NewDense(rows, cols)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			A.Set(i, j, math.Pow(math.Abs(alice.At(i, j)+bob.At(i, j)), p))
		}
	}
	bp := math.Pow(B, p)
	for j := 0; j < k-1; j++ {
		A.Set(n+j, d+j, bp)
	}
	return A
}

// topKDataColumn sorts the standard basis vectors by ‖e_jᵀP‖₂ descending
// (step 5 of the protocol) and returns the first data column (index < d)
// within the top-k, or −1 when the top-k contains no data column with
// meaningful leverage.
func topKDataColumn(P *matrix.Dense, d, k int) int {
	cols := P.Cols()
	type lev struct {
		j int
		v float64
	}
	levs := make([]lev, cols)
	for j := 0; j < cols; j++ {
		var s float64
		for c := 0; c < cols; c++ {
			v := P.At(j, c)
			s += v * v
		}
		levs[j] = lev{j, s}
	}
	// Selection of the top-k by leverage.
	for i := 0; i < k && i < cols; i++ {
		maxAt := i
		for j := i + 1; j < cols; j++ {
			if levs[j].v > levs[maxAt].v {
				maxAt = j
			}
		}
		levs[i], levs[maxAt] = levs[maxAt], levs[i]
		if levs[i].j < d {
			// Require non-trivial leverage: a column the projection truly
			// retains (the B^p entry forces ≈1).
			if levs[i].v > 0.5 {
				return levs[i].j
			}
		}
	}
	return -1
}

// rearrangeColumnZeroPad reshapes column c into ⌈n/d⌉×d padding with zeros
// (magnitude domain: zeros are inert).
func rearrangeColumnZeroPad(m *matrix.Dense, c, d int) *matrix.Dense {
	n := m.Rows()
	rows := (n + d - 1) / d
	out := matrix.NewDense(rows, d)
	for pos := 0; pos < n; pos++ {
		out.Set(pos/d, pos%d, m.At(pos, c))
	}
	return out
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
