package lowerbound

import (
	"math"
	"testing"
)

// ---------------------------------------------------------------------------
// Theorem 8: GHD reduction

func TestGHDInstancePromise(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		pos := seed%2 == 0
		inst, err := NewGHDInstance(0.2, pos, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		ip := inst.InnerProduct()
		if pos && ip <= 2/0.2 {
			t.Fatalf("positive instance has ⟨x,y⟩ = %g", ip)
		}
		if !pos && ip >= -2/0.2 {
			t.Fatalf("negative instance has ⟨x,y⟩ = %g", ip)
		}
		for i := range inst.X {
			if math.Abs(inst.X[i]) != 1 || math.Abs(inst.Y[i]) != 1 {
				t.Fatal("entries not ±1")
			}
		}
	}
}

func TestGHDInstanceValidation(t *testing.T) {
	if _, err := NewGHDInstance(0, true, 1, 1); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewGHDInstance(2, true, 1, 1); err == nil {
		t.Fatal("eps=2 accepted")
	}
}

// TestSolveGHD runs the Theorem 8 protocol on both promise sides for
// several ranks and seeds: with a relative-error oracle it must decide GHD,
// which is the reduction's whole point.
func TestSolveGHD(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		for seed := int64(0); seed < 10; seed++ {
			for _, pos := range []bool{true, false} {
				inst, err := NewGHDInstance(0.25, pos, 4, 100+seed)
				if err != nil {
					t.Fatal(err)
				}
				got, err := SolveGHD(inst, k, ExactOracle)
				if err != nil {
					t.Fatal(err)
				}
				if got != pos {
					t.Fatalf("k=%d seed=%d pos=%v: protocol answered %v (⟨x,y⟩=%g)",
						k, seed, pos, got, inst.InnerProduct())
				}
			}
		}
	}
}

func TestSolveGHDRejectsBadK(t *testing.T) {
	inst, _ := NewGHDInstance(0.25, true, 4, 1)
	if _, err := SolveGHD(inst, 0, ExactOracle); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// ---------------------------------------------------------------------------
// Theorem 6: 2-DISJ reduction

func TestDisjInstancePromise(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		inst := NewDisjInstance(8, 5, 0.2, seed%2 == 0, seed)
		common := 0
		pos := -1
		for i := range inst.X {
			if inst.X[i] && inst.Y[i] {
				common++
				pos = i
			}
		}
		if inst.Intersects {
			if common != 1 || pos != inst.Pos {
				t.Fatalf("intersecting instance has %d common elements", common)
			}
		} else if common != 0 {
			t.Fatalf("disjoint instance has %d common elements", common)
		}
	}
}

func TestSolveDisjMax(t *testing.T) {
	testSolveDisj(t, CombineMax)
}

func TestSolveDisjHuber(t *testing.T) {
	testSolveDisj(t, CombineHuber)
}

func testSolveDisj(t *testing.T, comb Combine) {
	t.Helper()
	for _, k := range []int{2, 3, 5} {
		for seed := int64(0); seed < 8; seed++ {
			intersects := seed%2 == 0
			inst := NewDisjInstance(12, 4, 0.15, intersects, 10+seed)
			got, shell, err := SolveDisj(inst, k, comb, ExactOracle)
			if err != nil {
				t.Fatal(err)
			}
			if got != intersects {
				t.Fatalf("k=%d seed=%d want %v got %v", k, seed, intersects, got)
			}
			// The shell must be tiny: a few index words per round — the
			// hardness lives inside the oracle.
			if shell > 64 {
				t.Fatalf("reduction shell used %d words", shell)
			}
		}
	}
}

func TestSolveDisjRejectsK1(t *testing.T) {
	inst := NewDisjInstance(4, 2, 0.1, true, 1)
	if _, _, err := SolveDisj(inst, 1, CombineMax, ExactOracle); err == nil {
		t.Fatal("k=1 accepted (theorem needs k>1)")
	}
}

func TestCombineSemantics(t *testing.T) {
	// Both combinations: 0 iff both flipped inputs are 0, else 1 on
	// {0,1}×{0,1} inputs.
	for _, comb := range []Combine{CombineMax, CombineHuber} {
		if comb.apply(0, 0) != 0 {
			t.Fatal("0,0")
		}
		if comb.apply(1, 0) != 1 || comb.apply(0, 1) != 1 || comb.apply(1, 1) != 1 {
			t.Fatal("nonzero cases")
		}
	}
}

// ---------------------------------------------------------------------------
// Theorem 4: L∞ reduction

func TestLInfInstancePromise(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		far := seed%2 == 0
		inst := NewLInfInstance(6, 4, 30, far, seed)
		big := 0
		for i := range inst.X {
			diff := inst.X[i] - inst.Y[i]
			if diff < 0 {
				diff = -diff
			}
			if diff >= inst.B {
				big++
			} else if diff > 1 {
				t.Fatalf("promise violated: |x−y| = %d", diff)
			}
		}
		if far && big != 1 {
			t.Fatalf("far instance has %d big coordinates", big)
		}
		if !far && big != 0 {
			t.Fatalf("close instance has %d big coordinates", big)
		}
	}
}

func TestTheoremB(t *testing.T) {
	// B = ⌈(2(1+ε)²·n·d⁴)^{1/2p}⌉ must grow with n and shrink with p.
	b1 := TheoremB(0.5, 100, 10, 2)
	b2 := TheoremB(0.5, 10000, 10, 2)
	b3 := TheoremB(0.5, 100, 10, 8)
	if b2 <= b1 {
		t.Fatal("B must grow with n")
	}
	if b3 >= b1 {
		t.Fatal("B must shrink with p")
	}
}

func TestSolveLInf(t *testing.T) {
	p := 2.0
	for _, k := range []int{1, 2, 3} {
		for seed := int64(0); seed < 8; seed++ {
			far := seed%2 == 0
			n, d := 10, 4
			B := TheoremB(0.5, n, d, p)
			inst := NewLInfInstance(n, d, B, far, 20+seed)
			got, shell, err := SolveLInf(inst, k, p, ExactOracle)
			if err != nil {
				t.Fatal(err)
			}
			if got != far {
				t.Fatalf("k=%d seed=%d p=%g want far=%v got %v (B=%d)", k, seed, p, far, got, B)
			}
			if shell > 64 {
				t.Fatalf("shell words %d", shell)
			}
		}
	}
}

func TestSolveLInfHigherPower(t *testing.T) {
	p := 4.0
	n, d := 8, 4
	B := TheoremB(0.25, n, d, p)
	for seed := int64(0); seed < 6; seed++ {
		far := seed%2 == 0
		inst := NewLInfInstance(n, d, B, far, 40+seed)
		got, _, err := SolveLInf(inst, 2, p, ExactOracle)
		if err != nil {
			t.Fatal(err)
		}
		if got != far {
			t.Fatalf("p=4 seed=%d want %v got %v", seed, far, got)
		}
	}
}

func TestSolveLInfRejectsBadK(t *testing.T) {
	inst := NewLInfInstance(4, 2, 10, true, 1)
	if _, _, err := SolveLInf(inst, 0, 2, ExactOracle); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestExactOracleIsRelativeError sanity-checks the oracle itself: it must
// achieve the (1+ε) guarantee trivially (it is optimal).
func TestExactOracleIsRelativeError(t *testing.T) {
	inst, _ := NewGHDInstance(0.25, true, 4, 3)
	m := len(inst.X)
	_ = m
	A := buildLInfCombined(
		intsToMatrix([]int{1, 2, 3, 4, 5, 6}, 2, 3, 1),
		intsToMatrix([]int{0, 1, 0, 1, 0, 1}, 2, 3, -1), 2, 2, 10)
	P := ExactOracle(A, 2)
	// P must be a rank-2 projection.
	if r, c := P.Dims(); r != c {
		t.Fatal("oracle output not square")
	}
	if !P.Mul(P).Equalf(P, 1e-8) {
		t.Fatal("oracle output not idempotent")
	}
}
