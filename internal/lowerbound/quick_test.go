package lowerbound

import (
	"math"
	"testing"
	"testing/quick"
)

// TestQuickGHDReductionDecides: over random promise instances and ranks,
// the Theorem 8 protocol with an exact oracle always answers correctly.
func TestQuickGHDReductionDecides(t *testing.T) {
	f := func(seed int64, kRaw, slackRaw uint8) bool {
		k := 1 + int(kRaw%4)
		slack := 2 + int(slackRaw%6)
		pos := seed%2 == 0
		inst, err := NewGHDInstance(0.3, pos, slack, seed)
		if err != nil {
			return true // invalid parameter combination, skip
		}
		got, err := SolveGHD(inst, k, ExactOracle)
		if err != nil {
			return false
		}
		return got == pos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDisjReductionDecides: random 2-DISJ promise instances, both
// combination functions.
func TestQuickDisjReductionDecides(t *testing.T) {
	f := func(seed int64, nRaw, dRaw, kRaw uint8) bool {
		n := 4 + int(nRaw%12)
		d := 3 + int(dRaw%4)
		k := 2 + int(kRaw%3)
		intersects := seed%2 == 0
		comb := CombineMax
		if seed%3 == 0 {
			comb = CombineHuber
		}
		inst := NewDisjInstance(n, d, 0.12, intersects, seed)
		got, _, err := SolveDisj(inst, k, comb, ExactOracle)
		if err != nil {
			return false
		}
		return got == intersects
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLInfReductionDecides: random L∞ promise instances with the
// theorem's own B.
func TestQuickLInfReductionDecides(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 4 + int(nRaw%10)
		d := 3
		k := 1 + int(kRaw%3)
		p := 2.0
		B := TheoremB(0.5, n, d, p)
		far := seed%2 == 0
		inst := NewLInfInstance(n, d, B, far, seed)
		got, _, err := SolveLInf(inst, k, p, ExactOracle)
		if err != nil {
			return false
		}
		return got == far
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInstancePromises: generated instances always satisfy their
// promise, independent of the solving protocols.
func TestQuickInstancePromises(t *testing.T) {
	f := func(seed int64) bool {
		ghd, err := NewGHDInstance(0.25, seed%2 == 0, 3, seed)
		if err != nil {
			return false
		}
		ip := ghd.InnerProduct()
		if seed%2 == 0 && ip <= 2/0.25 {
			return false
		}
		if seed%2 != 0 && ip >= -2/0.25 {
			return false
		}
		// Inner product parity must match dimension parity (±1 entries).
		if math.Mod(math.Abs(ip), 2) != math.Mod(float64(len(ghd.X)), 2) {
			return false
		}
		disj := NewDisjInstance(6, 4, 0.2, seed%2 == 0, seed)
		common := 0
		for i := range disj.X {
			if disj.X[i] && disj.Y[i] {
				common++
			}
		}
		if seed%2 == 0 && common != 1 {
			return false
		}
		if seed%2 != 0 && common != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
