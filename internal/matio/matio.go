// Package matio reads and writes dense matrices in two interchange
// formats: CSV (one row per line, for interoperability) and a compact
// binary format (magic "DLRA", dims, little-endian float64s) for large
// matrices. Both round-trip exactly.
package matio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/matrix"
)

// magic identifies the binary format.
var magic = [4]byte{'D', 'L', 'R', 'A'}

// WriteCSV writes m as comma-separated rows.
func WriteCSV(w io.Writer, m *matrix.Dense) error {
	bw := bufio.NewWriter(w)
	rows, cols := m.Dims()
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := 0; j < cols; j++ {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(row[j], 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses comma-separated rows into a matrix. Blank lines are
// skipped; all rows must have equal length.
func ReadCSV(r io.Reader) (*matrix.Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var rows [][]float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("matio: line %d field %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("matio: line %d has %d fields, want %d", line, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("matio: empty input")
	}
	return matrix.FromRows(rows), nil
}

// WriteBinary writes m in the compact binary format.
func WriteBinary(w io.Writer, m *matrix.Dense) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	rows, cols := m.Dims()
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(rows))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(cols))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range m.Data() {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*matrix.Dense, error) {
	br := bufio.NewReader(r)
	var mg [4]byte
	if _, err := io.ReadFull(br, mg[:]); err != nil {
		return nil, fmt.Errorf("matio: reading magic: %w", err)
	}
	if mg != magic {
		return nil, errors.New("matio: bad magic (not a DLRA matrix file)")
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("matio: reading header: %w", err)
	}
	rows := binary.LittleEndian.Uint64(hdr[0:8])
	cols := binary.LittleEndian.Uint64(hdr[8:16])
	const maxEntries = 1 << 31
	if rows*cols > maxEntries {
		return nil, fmt.Errorf("matio: matrix %dx%d too large", rows, cols)
	}
	m := matrix.NewDense(int(rows), int(cols))
	buf := make([]byte, 8)
	data := m.Data()
	for i := range data {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("matio: entry %d: %w", i, err)
		}
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return m, nil
}

// Load reads a matrix from path, dispatching on the ".bin" extension.
func Load(path string) (*matrix.Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadCSV(f)
}

// Save writes a matrix to path, dispatching on the ".bin" extension.
func Save(path string, m *matrix.Dense) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return WriteBinary(f, m)
	}
	return WriteCSV(f, m)
}
