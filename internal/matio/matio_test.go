package matio

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func randomMatrix(rng *rand.Rand, n, d int) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 7, 4)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equalf(m, 0) {
		t.Fatal("CSV round trip lost precision")
	}
}

func TestCSVSpecialValues(t *testing.T) {
	m := matrix.FromRows([][]float64{{0, -0.5, 1e-300, 1e300}})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equalf(m, 0) {
		t.Fatal("special values lost")
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("1,2\n\n3,4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.At(1, 1) != 4 {
		t.Fatal("blank line handling")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 9, 5)
	m.Set(0, 0, math.Inf(1)) // binary format preserves all bit patterns
	m.Set(0, 1, -0.0)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 9 || got.Cols() != 5 {
		t.Fatal("binary dims")
	}
	for i, v := range got.Data() {
		if math.Float64bits(v) != math.Float64bits(m.Data()[i]) {
			t.Fatal("binary round trip not bit-exact")
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 3, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestSaveLoadDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 4, 3)
	dir := t.TempDir()
	for _, name := range []string{"m.csv", "m.bin"} {
		path := filepath.Join(dir, name)
		if err := Save(path, m); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equalf(m, 0) {
			t.Fatalf("%s round trip", name)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.csv")); !os.IsNotExist(err) {
		t.Fatal("missing file error")
	}
}
