package matrix

import "fmt"

// Backend selects a storage representation for a set of shares. It is the
// single selection type every layer (public API, experiments harness,
// CLIs) plumbs through; results are bit-identical under every choice, so
// a backend only ever changes memory footprint and per-row cost.
type Backend int

const (
	// BackendAuto (the zero value) keeps every share exactly as it was
	// built — CSR-native data stays CSR, dense stays dense.
	BackendAuto Backend = iota
	// BackendDense converts every share to the dense row-major backend.
	BackendDense
	// BackendCSR compresses every share to sparse CSR rows.
	BackendCSR
	// BackendFast indexes every share into the tuned fast-dense backend
	// (dense storage plus a precomputed nonzero index and cached norms).
	BackendFast
)

// String names the backend as the CLIs spell it.
func (b Backend) String() string {
	switch b {
	case BackendDense:
		return "dense"
	case BackendCSR:
		return "csr"
	case BackendFast:
		return "fast"
	}
	return "auto"
}

// ParseBackend parses a CLI backend name ("" means auto).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return BackendAuto, nil
	case "dense":
		return BackendDense, nil
	case "csr":
		return BackendCSR, nil
	case "fast":
		return BackendFast, nil
	}
	return BackendAuto, fmt.Errorf("matrix: unknown backend %q (want auto, dense, csr or fast)", s)
}

// Apply converts every share to the backend's representation (the
// identity for BackendAuto).
func (b Backend) Apply(mats []Mat) []Mat {
	switch b {
	case BackendDense:
		return ToDenseAll(mats)
	case BackendCSR:
		return ToCSRAll(mats)
	case BackendFast:
		return ToFastAll(mats)
	}
	return mats
}
