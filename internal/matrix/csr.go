package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed sparse row matrix: for each row a sorted run of
// (column, value) pairs, stored in the classic three-array layout. It is
// the sparse backend of the Mat interface, sized at 2·nnz + rows + 1 words
// against the dense backend's rows·cols — the representation the paper's
// dominantly sparse evaluation corpora (KDDCUP99, Forest Cover) call for.
//
// CSR is immutable after construction; all Mat methods are read-only and
// safe for concurrent use.
type CSR struct {
	rows, cols int
	rowptr     []int     // len rows+1; row i occupies [rowptr[i], rowptr[i+1])
	colidx     []int     // column indices, strictly ascending within a row
	vals       []float64 // nonzero values, parallel to colidx
}

// Triple is one (row, col, value) coordinate entry for CSR construction.
type Triple struct {
	Row, Col int
	Val      float64
}

// NewCSR builds an r×c CSR matrix from coordinate triples. Construction is
// deterministic: triples are sorted by (row, col) with a stable sort,
// duplicates are summed in their input order, and entries that are (or sum
// to) exactly zero are dropped. Reordering triples with *distinct*
// coordinates never changes the result; duplicate triples for the same
// coordinate are summed in the order given (floating-point addition is not
// associative, so permuting 3+ duplicates may change their sum).
func NewCSR(r, c int, triples []Triple) *CSR {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	for _, t := range triples {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			panic(fmt.Sprintf("matrix: triple (%d,%d) out of range %dx%d", t.Row, t.Col, r, c))
		}
	}
	sorted := make([]Triple, len(triples))
	copy(sorted, triples)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	m := &CSR{rows: r, cols: c, rowptr: make([]int, r+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.colidx = append(m.colidx, sorted[i].Col)
			m.vals = append(m.vals, v)
			m.rowptr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < r; i++ {
		m.rowptr[i+1] += m.rowptr[i]
	}
	return m
}

// csrFromMat compresses any Mat by draining its nonzero stream row by row.
func csrFromMat(src Mat) *CSR {
	r, c := src.Rows(), src.Cols()
	m := &CSR{rows: r, cols: c, rowptr: make([]int, r+1)}
	for i := 0; i < r; i++ {
		src.RowNNZ(i, func(j int, v float64) {
			m.colidx = append(m.colidx, j)
			m.vals = append(m.vals, v)
		})
		m.rowptr[i+1] = len(m.colidx)
	}
	return m
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// Dims returns the number of rows and columns.
func (m *CSR) Dims() (r, c int) { return m.rows, m.cols }

// NNZ returns the number of stored nonzero entries.
func (m *CSR) NNZ() int64 { return int64(len(m.vals)) }

// At returns the (i, j) entry by binary search within row i.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowptr[i], m.rowptr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.colidx[mid] < j:
			lo = mid + 1
		case m.colidx[mid] > j:
			hi = mid
		default:
			return m.vals[mid]
		}
	}
	return 0
}

// RowNNZ calls f for every nonzero of row i in ascending column order.
func (m *CSR) RowNNZ(i int, f func(j int, v float64)) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	for p := m.rowptr[i]; p < m.rowptr[i+1]; p++ {
		f(m.colidx[p], m.vals[p])
	}
}

// RowNorm2 returns the squared Euclidean norm of row i in O(nnz(row)).
func (m *CSR) RowNorm2(i int) float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	var s float64
	for p := m.rowptr[i]; p < m.rowptr[i+1]; p++ {
		s += m.vals[p] * m.vals[p]
	}
	return s
}

// RowNorms2 returns the squared Euclidean norms of all rows in O(nnz).
func (m *CSR) RowNorms2() []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.RowNorm2(i)
	}
	return out
}

// MulVec returns m·x for a column vector x in O(nnz).
func (m *CSR) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("matrix: MulVec %dx%d · %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for p := m.rowptr[i]; p < m.rowptr[i+1]; p++ {
			s += m.vals[p] * x[m.colidx[p]]
		}
		out[i] = s
	}
	return out
}

// Words returns the storage footprint in 64-bit words (values, column
// indices and row pointers) — the memory the backend choice trades against
// the dense rows·cols.
func (m *CSR) Words() int64 {
	return 2*int64(len(m.vals)) + int64(len(m.rowptr))
}

// String renders the matrix for debugging. Large matrices are elided.
func (m *CSR) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("CSR(%dx%d, nnz=%d)", m.rows, m.cols, m.NNZ())
	}
	return ToDense(m).String()
}
