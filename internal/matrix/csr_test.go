package matrix

import (
	"math/rand"
	"testing"
)

// randomSparse builds a random n×d matrix with the given density as both a
// Dense and (via triples, in shuffled order with some duplicates) a CSR.
func randomSparse(rng *rand.Rand, n, d int, density float64) (*Dense, *CSR) {
	dense := NewDense(n, d)
	var triples []Triple
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				dense.Set(i, j, v)
				if rng.Float64() < 0.2 {
					// Split into two exact halves (v/2 + v/2 == v bitwise);
					// NewCSR must re-sum the duplicates.
					triples = append(triples, Triple{i, j, v / 2}, Triple{i, j, v / 2})
				} else {
					triples = append(triples, Triple{i, j, v})
				}
			}
		}
	}
	rng.Shuffle(len(triples), func(a, b int) { triples[a], triples[b] = triples[b], triples[a] })
	return dense, NewCSR(n, d, triples)
}

func TestCSRConstructionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	triples := []Triple{{0, 2, 1.5}, {1, 0, -2}, {0, 0, 3}, {0, 2, 0.5}, {1, 1, 0}}
	a := NewCSR(2, 3, triples)
	shuffled := make([]Triple, len(triples))
	copy(shuffled, triples)
	// Shuffles that keep duplicate (0,2) entries in input order must yield
	// identical storage; here we swap independent entries only.
	shuffled[1], shuffled[2] = shuffled[2], shuffled[1]
	b := NewCSR(2, 3, shuffled)
	if a.NNZ() != 3 || b.NNZ() != 3 {
		t.Fatalf("nnz = %d, %d, want 3 (explicit zero dropped, duplicates merged)", a.NNZ(), b.NNZ())
	}
	if a.At(0, 2) != 2.0 {
		t.Fatalf("duplicate sum At(0,2) = %g, want 2", a.At(0, 2))
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("construction order changed At(%d,%d)", i, j)
			}
		}
	}
	_ = rng
}

func TestCSRDropsEntriesSummingToZero(t *testing.T) {
	c := NewCSR(1, 2, []Triple{{0, 0, 1}, {0, 0, -1}, {0, 1, 2}})
	if c.NNZ() != 1 {
		t.Fatalf("nnz = %d, want 1 (cancelled duplicate dropped)", c.NNZ())
	}
	if c.At(0, 0) != 0 || c.At(0, 1) != 2 {
		t.Fatal("wrong surviving entries")
	}
}

func TestCSROutOfRangePanics(t *testing.T) {
	for _, tc := range []Triple{{-1, 0, 1}, {0, 5, 1}, {3, 0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("triple %v accepted", tc)
				}
			}()
			NewCSR(3, 5, []Triple{tc})
		}()
	}
}

// TestDenseCSREquivalence is the backend contract: every Mat method must
// agree bitwise between the two backends for the same logical matrix.
func TestDenseCSREquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		d := 1 + rng.Intn(30)
		density := []float64{0.02, 0.1, 0.5, 1.0}[trial%4]
		dense, csr := randomSparse(rng, n, d, density)
		if dense.NNZ() != csr.NNZ() {
			t.Fatalf("trial %d: nnz %d vs %d", trial, dense.NNZ(), csr.NNZ())
		}
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				if dense.At(i, j) != csr.At(i, j) {
					t.Fatalf("trial %d: At(%d,%d) %g vs %g", trial, i, j, dense.At(i, j), csr.At(i, j))
				}
			}
			if dense.RowNorm2(i) != csr.RowNorm2(i) {
				t.Fatalf("trial %d: RowNorm2(%d) differs", trial, i)
			}
		}
		dn, cn := dense.RowNorms2(), csr.RowNorms2()
		for i := range dn {
			if dn[i] != cn[i] {
				t.Fatalf("trial %d: RowNorms2[%d] %g vs %g", trial, i, dn[i], cn[i])
			}
		}
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		dv, cv := dense.MulVec(x), csr.MulVec(x)
		for i := range dv {
			if dv[i] != cv[i] {
				t.Fatalf("trial %d: MulVec[%d] %g vs %g", trial, i, dv[i], cv[i])
			}
		}
		// The nonzero streams must be identical element for element.
		for i := 0; i < n; i++ {
			type jv struct {
				j int
				v float64
			}
			var a, b []jv
			dense.RowNNZ(i, func(j int, v float64) { a = append(a, jv{j, v}) })
			csr.RowNNZ(i, func(j int, v float64) { b = append(b, jv{j, v}) })
			if len(a) != len(b) {
				t.Fatalf("trial %d row %d: stream lengths %d vs %d", trial, i, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("trial %d row %d: stream element %d differs", trial, i, k)
				}
			}
		}
	}
}

func TestConversionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dense, csr := randomSparse(rng, 17, 11, 0.15)
	back := ToDense(csr)
	if !back.Equalf(dense, 0) {
		t.Fatal("ToDense(CSR) != original dense")
	}
	again := ToCSR(dense)
	if again.NNZ() != csr.NNZ() {
		t.Fatal("ToCSR(Dense) nnz mismatch")
	}
	for i := 0; i < 17; i++ {
		for j := 0; j < 11; j++ {
			if again.At(i, j) != csr.At(i, j) {
				t.Fatal("ToCSR(Dense) entry mismatch")
			}
		}
	}
	// Identity fast paths.
	if ToCSR(csr) != csr || ToDense(dense) != dense {
		t.Fatal("same-backend conversion must be the identity")
	}
}

func TestSumMatsMixedBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, aCSR := randomSparse(rng, 6, 5, 0.3)
	b, _ := randomSparse(rng, 6, 5, 0.4)
	sum := SumMats([]Mat{aCSR, b})
	want := a.Add(b)
	if !sum.Equalf(want, 0) {
		t.Fatal("SumMats mismatch")
	}
}

func TestSparsityAndWords(t *testing.T) {
	c := NewCSR(4, 5, []Triple{{0, 0, 1}, {3, 4, 2}})
	if got := Sparsity(c); got != 2.0/20 {
		t.Fatalf("sparsity = %g", got)
	}
	if c.Words() != 2*2+5 {
		t.Fatalf("words = %d", c.Words())
	}
	d := NewDense(2, 2)
	d.Set(0, 1, 3)
	if got := Sparsity(d); got != 0.25 {
		t.Fatalf("dense sparsity = %g", got)
	}
}
