package matrix

import (
	"errors"
	"fmt"
)

// ErrIndex is returned by UpdateRows when a row index falls outside the
// target matrix.
var ErrIndex = errors.New("matrix: row index out of range")

// AppendRows returns a new matrix holding m with delta's rows appended
// below it, preserving m's backend family (Dense→Dense, CSR→CSR,
// Fast→Fast; any other backend materializes to Dense). The input matrices
// are never mutated — in-flight readers of m keep a consistent snapshot —
// and the appended rows are drained through delta's RowNNZ stream, so the
// result's nonzero stream is the concatenation of the two inputs' streams
// regardless of either one's backend.
func AppendRows(m, delta Mat) (Mat, error) {
	if delta.Cols() != m.Cols() {
		return nil, fmt.Errorf("%w: append %dx%d onto %dx%d",
			ErrShape, delta.Rows(), delta.Cols(), m.Rows(), m.Cols())
	}
	switch t := m.(type) {
	case *Dense:
		return appendDense(t, delta), nil
	case *CSR:
		return appendCSR(t, delta), nil
	case *Fast:
		return appendFast(t, delta), nil
	default:
		return appendDense(denseFromMat(m), delta), nil
	}
}

// UpdateRows returns a new matrix equal to m with row idx[k] replaced by
// row k of rows, preserving m's backend family as AppendRows does.
// Duplicate indices resolve last-wins. m and rows are never mutated.
func UpdateRows(m Mat, idx []int, rows Mat) (Mat, error) {
	if rows.Cols() != m.Cols() || rows.Rows() != len(idx) {
		return nil, fmt.Errorf("%w: update %dx%d (%d indices) into %dx%d",
			ErrShape, rows.Rows(), rows.Cols(), len(idx), m.Rows(), m.Cols())
	}
	ov := make(map[int]int, len(idx))
	for k, i := range idx {
		if i < 0 || i >= m.Rows() {
			return nil, fmt.Errorf("%w: index %d of %d rows", ErrIndex, i, m.Rows())
		}
		ov[i] = k
	}
	switch t := m.(type) {
	case *Dense:
		out := t.Clone()
		for i, k := range ov {
			row := out.Row(i)
			for j := range row {
				row[j] = 0
			}
			rows.RowNNZ(k, func(j int, v float64) { row[j] = v })
		}
		return out, nil
	case *CSR:
		return csrFromStream(m, ov, rows), nil
	case *Fast:
		return fastFromStream(m, ov, rows), nil
	default:
		d := denseFromMat(m)
		for i, k := range ov {
			row := d.Row(i)
			for j := range row {
				row[j] = 0
			}
			rows.RowNNZ(k, func(j int, v float64) { row[j] = v })
		}
		return d, nil
	}
}

func denseFromMat(m Mat) *Dense {
	out := NewDense(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		row := out.Row(i)
		m.RowNNZ(i, func(j int, v float64) { row[j] = v })
	}
	return out
}

func appendDense(m *Dense, delta Mat) *Dense {
	n0, d, dn := m.rows, m.cols, delta.Rows()
	out := NewDense(n0+dn, d)
	copy(out.data, m.data)
	for i := 0; i < dn; i++ {
		row := out.Row(n0 + i)
		delta.RowNNZ(i, func(j int, v float64) { row[j] = v })
	}
	return out
}

func appendCSR(m *CSR, delta Mat) *CSR {
	n0, dn := m.rows, delta.Rows()
	out := &CSR{rows: n0 + dn, cols: m.cols, rowptr: make([]int, n0+dn+1)}
	out.colidx = make([]int, len(m.colidx), len(m.colidx)+int(delta.NNZ()))
	out.vals = make([]float64, len(m.vals), len(m.vals)+int(delta.NNZ()))
	copy(out.colidx, m.colidx)
	copy(out.vals, m.vals)
	copy(out.rowptr, m.rowptr)
	for i := 0; i < dn; i++ {
		delta.RowNNZ(i, func(j int, v float64) {
			out.colidx = append(out.colidx, j)
			out.vals = append(out.vals, v)
		})
		out.rowptr[n0+i+1] = len(out.colidx)
	}
	return out
}

func appendFast(m *Fast, delta Mat) *Fast {
	n0, d, dn := m.rows, m.cols, delta.Rows()
	out := &Fast{
		rows:   n0 + dn,
		cols:   d,
		data:   make([]float64, (n0+dn)*d),
		rowptr: make([]int32, n0+dn+1),
		norms:  make([]float64, n0+dn),
	}
	copy(out.data, m.data)
	copy(out.rowptr, m.rowptr)
	copy(out.norms, m.norms)
	out.colidx = make([]int32, len(m.colidx), len(m.colidx)+int(delta.NNZ()))
	copy(out.colidx, m.colidx)
	for i := 0; i < dn; i++ {
		row := out.data[(n0+i)*d : (n0+i+1)*d]
		delta.RowNNZ(i, func(j int, v float64) {
			row[j] = v
			out.colidx = append(out.colidx, int32(j))
		})
		out.rowptr[n0+i+1] = int32(len(out.colidx))
		// Same nnz-order norm accumulation ToFast uses at construction.
		var s float64
		for _, c := range out.colidx[out.rowptr[n0+i]:] {
			v := row[c]
			s += v * v
		}
		out.norms[n0+i] = s
	}
	return out
}

// csrFromStream rebuilds a CSR from m's nonzero stream with the rows named
// in ov replaced by the corresponding rows of over.
func csrFromStream(m Mat, ov map[int]int, over Mat) *CSR {
	r, c := m.Rows(), m.Cols()
	out := &CSR{rows: r, cols: c, rowptr: make([]int, r+1)}
	for i := 0; i < r; i++ {
		src, row := m, i
		if k, ok := ov[i]; ok {
			src, row = over, k
		}
		src.RowNNZ(row, func(j int, v float64) {
			out.colidx = append(out.colidx, j)
			out.vals = append(out.vals, v)
		})
		out.rowptr[i+1] = len(out.colidx)
	}
	return out
}

// fastFromStream rebuilds a Fast the same way, with the standard nnz-order
// norm accumulation.
func fastFromStream(m Mat, ov map[int]int, over Mat) *Fast {
	r, c := m.Rows(), m.Cols()
	out := &Fast{
		rows:   r,
		cols:   c,
		data:   make([]float64, r*c),
		rowptr: make([]int32, r+1),
		norms:  make([]float64, r),
	}
	out.colidx = make([]int32, 0, m.NNZ())
	for i := 0; i < r; i++ {
		src, row := m, i
		if k, ok := ov[i]; ok {
			src, row = over, k
		}
		dst := out.data[i*c : (i+1)*c]
		src.RowNNZ(row, func(j int, v float64) {
			dst[j] = v
			out.colidx = append(out.colidx, int32(j))
		})
		out.rowptr[i+1] = int32(len(out.colidx))
		var s float64
		for _, cc := range out.colidx[out.rowptr[i]:] {
			v := dst[cc]
			s += v * v
		}
		out.norms[i] = s
	}
	return out
}
