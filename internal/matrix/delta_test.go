package matrix

import (
	"errors"
	"testing"
)

// deltaTestMat builds an n×d dense matrix mixing zeros and values so the
// sparse backends have real structure to preserve.
func deltaTestMat(n, d int, base float64) *Dense {
	m := NewDense(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			if (i+j)%3 == 0 {
				continue // keep a zero
			}
			row[j] = base + float64(i*d+j)
		}
	}
	return m
}

// sameMat asserts two Mats agree entrywise and in shape, and that their
// RowNNZ streams are identical (the bit-identity contract across backends).
func sameMat(t *testing.T, want, got Mat, label string) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < want.Rows(); i++ {
		type nz struct {
			j int
			v float64
		}
		var ws, gs []nz
		want.RowNNZ(i, func(j int, v float64) { ws = append(ws, nz{j, v}) })
		got.RowNNZ(i, func(j int, v float64) { gs = append(gs, nz{j, v}) })
		if len(ws) != len(gs) {
			t.Fatalf("%s: row %d nnz stream length %d, want %d", label, i, len(gs), len(ws))
		}
		for k := range ws {
			if ws[k] != gs[k] {
				t.Fatalf("%s: row %d stream entry %d: %+v, want %+v", label, i, k, gs[k], ws[k])
			}
		}
	}
}

// TestAppendRowsBackends: appending preserves the backend family, matches
// the dense reference on every backend, and never mutates the inputs.
func TestAppendRowsBackends(t *testing.T) {
	base := deltaTestMat(6, 4, 1)
	delta := deltaTestMat(3, 4, 100)
	want, err := AppendRows(base, delta)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		m    Mat
	}{{"dense", base.Clone()}, {"csr", ToCSR(base)}, {"fast", ToFast(base)}} {
		before := ToDense(tc.m).Clone()
		got, err := AppendRows(tc.m, ToCSR(delta)) // delta on a different backend
		if err != nil {
			t.Fatal(err)
		}
		sameMat(t, want, got, tc.name)
		sameMat(t, before, tc.m, tc.name+" input mutated")
		// Backend family preserved.
		switch tc.m.(type) {
		case *Dense:
			if _, ok := got.(*Dense); !ok {
				t.Fatalf("%s: append changed backend to %T", tc.name, got)
			}
		case *CSR:
			if _, ok := got.(*CSR); !ok {
				t.Fatalf("%s: append changed backend to %T", tc.name, got)
			}
		case *Fast:
			if _, ok := got.(*Fast); !ok {
				t.Fatalf("%s: append changed backend to %T", tc.name, got)
			}
		}
		// Derived state (norms, nnz) must match a from-scratch conversion.
		if got.NNZ() != want.NNZ() {
			t.Fatalf("%s: nnz %d, want %d", tc.name, got.NNZ(), want.NNZ())
		}
		for i := 0; i < want.Rows(); i++ {
			if got.RowNorm2(i) != want.RowNorm2(i) {
				t.Fatalf("%s: row %d norm drifted", tc.name, i)
			}
		}
	}

	if _, err := AppendRows(base, deltaTestMat(2, 5, 0)); !errors.Is(err, ErrShape) {
		t.Fatalf("column mismatch: %v", err)
	}
}

// TestUpdateRowsBackends: updates match the dense reference on every
// backend, duplicates resolve last-wins, and the inputs stay untouched.
func TestUpdateRowsBackends(t *testing.T) {
	base := deltaTestMat(7, 4, 1)
	repl := deltaTestMat(3, 4, 200)
	idx := []int{5, 1, 5} // duplicate: row 5 takes repl row 2
	want, err := UpdateRows(base, idx, repl)
	if err != nil {
		t.Fatal(err)
	}
	if want.At(5, 1) != repl.At(2, 1) {
		t.Fatal("duplicate index did not resolve last-wins")
	}

	for _, tc := range []struct {
		name string
		m    Mat
	}{{"dense", base.Clone()}, {"csr", ToCSR(base)}, {"fast", ToFast(base)}} {
		before := ToDense(tc.m).Clone()
		got, err := UpdateRows(tc.m, idx, ToFast(repl))
		if err != nil {
			t.Fatal(err)
		}
		sameMat(t, want, got, tc.name)
		sameMat(t, before, tc.m, tc.name+" input mutated")
		for i := 0; i < want.Rows(); i++ {
			if got.RowNorm2(i) != want.RowNorm2(i) {
				t.Fatalf("%s: row %d norm drifted", tc.name, i)
			}
		}
	}

	if _, err := UpdateRows(base, []int{0}, repl); !errors.Is(err, ErrShape) {
		t.Fatalf("index/row count mismatch: %v", err)
	}
	if _, err := UpdateRows(base, []int{0, -1, 2}, repl); !errors.Is(err, ErrIndex) {
		t.Fatalf("negative index: %v", err)
	}
	if _, err := UpdateRows(base, []int{0, 7, 2}, repl); !errors.Is(err, ErrIndex) {
		t.Fatalf("out-of-range index: %v", err)
	}
}
