// Package matrix provides the linear algebra substrate used by the
// distributed low rank approximation protocols: the pluggable Mat storage
// interface with dense and sparse CSR backends, QR factorization, a
// symmetric Jacobi eigensolver, singular value decomposition, best rank-k
// approximations and projection matrices.
//
// The package is self-contained (standard library only) and tuned for the
// shapes that arise in the paper's protocols: tall-and-skinny sampled
// matrices B (r×d), small Gram matrices (d×d) with d up to a few
// thousand, and large sparse data matrices consumed row-wise through Mat.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// ErrShape is returned when matrix dimensions do not conform.
var ErrShape = errors.New("matrix: dimension mismatch")

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps the given row-major backing slice without copying.
// The slice length must equal r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows, copying them.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged row %d: len %d != %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the (i,j) entry.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the (i,j) entry.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i as a slice.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RowNNZ calls f for every nonzero entry of row i in ascending column
// order — the Dense realization of the Mat iteration contract. Skipping
// exact zeros yields the same (column, value) stream a sparse backend
// holding the same logical matrix produces, which is what keeps protocol
// results bit-identical across backends.
func (m *Dense) RowNNZ(i int, f func(j int, v float64)) {
	for j, v := range m.Row(i) {
		if v != 0 {
			f(j, v)
		}
	}
}

// NNZ returns the number of nonzero entries.
func (m *Dense) NNZ() int64 {
	var c int64
	for _, v := range m.data {
		if v != 0 {
			c++
		}
	}
	return c
}

// RowCopy returns a copy of row i.
func (m *Dense) RowCopy(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.Row(i))
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: row length %d != %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// ColCopy returns a copy of column j.
func (m *Dense) ColCopy(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Data returns the row-major backing slice. Mutating it mutates the matrix.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Equalf reports whether m and n have the same shape and entries within tol.
func (m *Dense) Equalf(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns m + n.
func (m *Dense) Add(n *Dense) *Dense {
	m.mustSameShape(n)
	out := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v + n.data[i]
	}
	return out
}

// AddInPlace accumulates n into m and returns m.
func (m *Dense) AddInPlace(n *Dense) *Dense {
	m.mustSameShape(n)
	for i, v := range n.data {
		m.data[i] += v
	}
	return m
}

// Sub returns m − n.
func (m *Dense) Sub(n *Dense) *Dense {
	m.mustSameShape(n)
	out := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v - n.data[i]
	}
	return out
}

func (m *Dense) mustSameShape(n *Dense) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("matrix: shape %dx%d != %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
}

// Scale returns α·m.
func (m *Dense) Scale(alpha float64) *Dense {
	out := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = alpha * v
	}
	return out
}

// ScaleInPlace multiplies every entry by α and returns m.
func (m *Dense) ScaleInPlace(alpha float64) *Dense {
	for i := range m.data {
		m.data[i] *= alpha
	}
	return m
}

// Apply returns the entrywise image f(m).
func (m *Dense) Apply(f func(float64) float64) *Dense {
	out := NewDense(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// T returns the transpose.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Mul returns the matrix product m·n.
func (m *Dense) Mul(n *Dense) *Dense {
	if m.cols != n.rows {
		panic(fmt.Sprintf("matrix: product %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewDense(m.rows, n.cols)
	// ikj loop order keeps the inner loop streaming over contiguous rows.
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*n.cols : (i+1)*n.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			nk := n.data[k*n.cols : (k+1)*n.cols]
			for j, nkj := range nk {
				oi[j] += mik * nkj
			}
		}
	}
	return out
}

// MulVec returns m·x for a column vector x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("matrix: MulVec %dx%d · %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Gram returns mᵀ·m (cols×cols, symmetric PSD), exploiting symmetry.
func (m *Dense) Gram() *Dense {
	d := m.cols
	out := NewDense(d, d)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for a, ra := range ri {
			if ra == 0 {
				continue
			}
			oa := out.data[a*d : (a+1)*d]
			for b := a; b < d; b++ {
				oa[b] += ra * ri[b]
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			out.data[b*d+a] = out.data[a*d+b]
		}
	}
	return out
}

// FrobNorm2 returns the squared Frobenius norm Σ m_ij².
func (m *Dense) FrobNorm2() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// FrobNorm returns the Frobenius norm.
func (m *Dense) FrobNorm() float64 { return math.Sqrt(m.FrobNorm2()) }

// RowNorm2 returns the squared Euclidean norm of row i.
func (m *Dense) RowNorm2(i int) float64 {
	var s float64
	for _, v := range m.Row(i) {
		s += v * v
	}
	return s
}

// RowNorms2 returns the squared Euclidean norms of all rows.
func (m *Dense) RowNorms2() []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.RowNorm2(i)
	}
	return out
}

// MaxAbs returns the largest absolute entry value (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// SubMatrix returns a copy of rows [r0,r1) and columns [c0,c1).
func (m *Dense) SubMatrix(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: submatrix [%d:%d,%d:%d] of %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// StackRows returns the vertical concatenation of the arguments.
func StackRows(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	c := ms[0].cols
	total := 0
	for _, m := range ms {
		if m.cols != c {
			panic("matrix: StackRows column mismatch")
		}
		total += m.rows
	}
	out := NewDense(total, c)
	at := 0
	for _, m := range ms {
		copy(out.data[at*c:], m.data)
		at += m.rows
	}
	return out
}

// String renders the matrix for debugging. Large matrices are elided.
func (m *Dense) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
	}
	s := ""
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintf("%.5g\n", m.Row(i))
	}
	return s
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: dot length %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return math.Sqrt(Norm2(v)) }

// AXPY computes y ← y + αx in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("matrix: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
