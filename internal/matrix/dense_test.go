package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("dims = %d,%d", r, c)
	}
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatal("Rows/Cols mismatch")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatal("not zeroed")
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(1, 0, 3.5)
	if m.At(1, 0) != 3.5 {
		t.Fatal("set/at roundtrip failed")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong layout")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatal("empty FromRows")
	}
}

func TestIdentity(t *testing.T) {
	I := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if I.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %g", i, j, I.At(i, j))
			}
		}
	}
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 2)
	m.Row(0)[1] = 9
	if m.At(0, 1) != 9 {
		t.Fatal("Row should be a view")
	}
}

func TestRowCopyIsCopy(t *testing.T) {
	m := NewDense(2, 2)
	rc := m.RowCopy(0)
	rc[0] = 5
	if m.At(0, 0) != 0 {
		t.Fatal("RowCopy should not alias")
	}
}

func TestSetRowColCopy(t *testing.T) {
	m := NewDense(2, 3)
	m.SetRow(1, []float64{1, 2, 3})
	col := m.ColCopy(2)
	if col[0] != 0 || col[1] != 3 {
		t.Fatalf("col = %v", col)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	sum := a.Add(b)
	if sum.At(1, 1) != 12 {
		t.Fatal("add")
	}
	diff := b.Sub(a)
	if diff.At(0, 0) != 4 {
		t.Fatal("sub")
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatal("scale")
	}
	a.AddInPlace(b)
	if a.At(0, 1) != 8 {
		t.Fatal("addinplace")
	}
	a.ScaleInPlace(0)
	if a.FrobNorm2() != 0 {
		t.Fatal("scaleinplace")
	}
}

func TestApply(t *testing.T) {
	m := FromRows([][]float64{{-1, 4}})
	sq := m.Apply(func(x float64) float64 { return x * x })
	if sq.At(0, 0) != 1 || sq.At(0, 1) != 16 {
		t.Fatal("apply")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	p := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !p.Equalf(want, 1e-12) {
		t.Fatalf("got %v", p)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("mulvec = %v", v)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomDense(rng, 7, 4)
	if !m.T().T().Equalf(m, 0) {
		t.Fatal("T∘T != identity")
	}
}

func TestTransposeProductIdentity(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ on random matrices.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := randomDense(rng, 5, 3)
		b := randomDense(rng, 3, 6)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		if !lhs.Equalf(rhs, 1e-10) {
			t.Fatal("(AB)ᵀ != BᵀAᵀ")
		}
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomDense(rng, 9, 5)
	if !m.Gram().Equalf(m.T().Mul(m), 1e-10) {
		t.Fatal("Gram != AᵀA")
	}
}

func TestFrobeniusViaGramTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomDense(rng, 6, 6)
	g := m.Gram()
	var trace float64
	for i := 0; i < 6; i++ {
		trace += g.At(i, i)
	}
	if math.Abs(trace-m.FrobNorm2()) > 1e-9 {
		t.Fatalf("tr(AᵀA)=%g, ‖A‖²=%g", trace, m.FrobNorm2())
	}
}

func TestRowNorms(t *testing.T) {
	m := FromRows([][]float64{{3, 4}, {0, 0}})
	if m.RowNorm2(0) != 25 {
		t.Fatal("rownorm2")
	}
	ns := m.RowNorms2()
	if ns[0] != 25 || ns[1] != 0 {
		t.Fatal("rownorms2")
	}
	if m.FrobNorm() != 5 {
		t.Fatal("frobnorm")
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-7, 2}})
	if m.MaxAbs() != 7 {
		t.Fatal("maxabs")
	}
	if NewDense(0, 0).MaxAbs() != 0 {
		t.Fatal("empty maxabs")
	}
}

func TestSubMatrix(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.SubMatrix(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.Equalf(want, 0) {
		t.Fatalf("submatrix = %v", s)
	}
}

func TestStackRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	s := StackRows(a, b)
	if s.Rows() != 3 || s.At(2, 1) != 6 {
		t.Fatal("stackrows")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("dot")
	}
	if Norm2([]float64{3, 4}) != 25 || Norm([]float64{3, 4}) != 5 {
		t.Fatal("norm")
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("axpy")
	}
}

// TestPythagoreanProperty is the matrix Pythagorean theorem the paper's
// Section II relies on: ‖A−AP‖² = ‖A‖² − ‖AP‖² for any orthogonal
// projection P.
func TestPythagoreanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		a := randomDense(rng, 20, 8)
		k := 1 + rng.Intn(6)
		P := ProjectionTopK(randomDense(rng, 15, 8), k)
		lhs := a.Sub(a.Mul(P)).FrobNorm2()
		rhs := a.FrobNorm2() - a.Mul(P).FrobNorm2()
		if math.Abs(lhs-rhs) > 1e-7*a.FrobNorm2() {
			t.Fatalf("pythagoras violated: %g vs %g", lhs, rhs)
		}
	}
}

// Property-based: matrix addition is commutative and scaling distributes.
func TestQuickAddCommutes(t *testing.T) {
	f := func(vals [6]float64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		a := FromRows([][]float64{{vals[0], vals[1]}, {vals[2], vals[3]}})
		b := FromRows([][]float64{{vals[4], vals[5]}, {vals[1], vals[0]}})
		if !a.Add(b).Equalf(b.Add(a), 1e-12) {
			return false
		}
		lhs := a.Add(b).Scale(alpha)
		rhs := a.Scale(alpha).Add(b.Scale(alpha))
		tol := 1e-9 * (1 + math.Abs(alpha))
		return lhs.Equalf(rhs, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: Dot is bilinear in its first argument.
func TestQuickDotLinear(t *testing.T) {
	f := func(a, b, c [4]float64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		for _, arr := range [][4]float64{a, b, c} {
			for _, v := range arr {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
					return true
				}
			}
		}
		ax := a[:]
		bx := b[:]
		cx := c[:]
		sum := make([]float64, 4)
		for i := range sum {
			sum[i] = ax[i] + alpha*bx[i]
		}
		lhs := Dot(sum, cx)
		rhs := Dot(ax, cx) + alpha*Dot(bx, cx)
		scale := 1.0
		for i := range ax {
			scale += math.Abs(ax[i]*cx[i]) + math.Abs(alpha*bx[i]*cx[i])
		}
		return math.Abs(lhs-rhs) <= 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestAddShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Add(NewDense(3, 2))
}

// Property-based: matrix multiplication is associative on conforming
// random triples.
func TestQuickMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDense(rng, 2+rng.Intn(4), 2+rng.Intn(4))
		b := randomDense(rng, a.Cols(), 2+rng.Intn(4))
		c := randomDense(rng, b.Cols(), 2+rng.Intn(4))
		lhs := a.Mul(b).Mul(c)
		rhs := a.Mul(b.Mul(c))
		scale := lhs.FrobNorm() + 1
		return lhs.Equalf(rhs, 1e-10*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: Gram matrices are PSD (non-negative quadratic forms).
func TestQuickGramPSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomDense(rng, 2+rng.Intn(8), 2+rng.Intn(5))
		g := m.Gram()
		x := make([]float64, g.Cols())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		gx := g.MulVec(x)
		return Dot(x, gx) >= -1e-9*g.FrobNorm()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
