package matrix

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns eigenvalues in descending
// order and the corresponding orthonormal eigenvectors as the columns of V,
// so that m = V·diag(vals)·Vᵀ up to the convergence tolerance.
//
// Jacobi is chosen over tridiagonalization because the matrices in this
// code base are modest (d ≤ a few thousand) Gram matrices where Jacobi's
// simplicity, unconditional convergence and high relative accuracy on PSD
// inputs outweigh its O(d³) per-sweep cost.
//
// The rotation kernel exploits symmetry: a rotation touches only rows p
// and q of the work matrix (contiguous in the row-major layout) and fixes
// the 2×2 pivot block in closed form. The column halves of the two-sided
// updates — the strided walks that dominate a naive implementation — are
// deferred and flushed for batches of adjacent pivot columns at once, so
// consecutive column writes land in the same cache line (see sweepPivotRow).
// Eigenvectors accumulate in a transposed store so their update is
// contiguous too.
func EigenSym(m *Dense) (vals []float64, V *Dense) {
	n := m.rows
	if m.cols != n {
		panic(fmt.Sprintf("matrix: EigenSym on non-square %dx%d", m.rows, m.cols))
	}
	a := m.Clone()
	// VT accumulates the eigenvector matrix transposed: row j of VT is the
	// j-th eigenvector (column j of V). Rotations touch two eigenvectors at
	// a time; in this layout both live in contiguous rows.
	VT := Identity(n)
	if n == 0 {
		return nil, VT
	}

	const maxSweeps = 64
	// Convergence when the off-diagonal Frobenius mass is tiny relative to
	// the matrix scale.
	scale := a.FrobNorm()
	tol := 1e-14 * scale
	if tol == 0 {
		tol = 1e-300
	}
	small := tol / float64(n)
	applied := make([]int, 0, mirrorBatch)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			sweepPivotRow(a, VT, p, small, applied)
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a.data[i*n+i]
	}
	// Sort descending; eigenvector j of the output is row idx[j] of VT.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	sorted := make([]float64, n)
	Vs := NewDense(n, n)
	for newj, oldj := range idx {
		sorted[newj] = vals[oldj]
		row := VT.data[oldj*n : (oldj+1)*n]
		for i, v := range row {
			Vs.data[i*n+newj] = v
		}
	}
	return sorted, Vs
}

// mirrorBatch is the number of adjacent pivot columns whose symmetric
// column updates are buffered in their rows before one blocked mirror
// pass restores column consistency. 8 float64 columns span exactly one
// 64-byte cache line, so the mirror writes ≤2 lines per matrix row per
// batch instead of one line per rotation; the batch rows themselves
// (8 rows of the work matrix) stay L1-resident during the flush.
const mirrorBatch = 8

// sweepPivotRow runs the cyclic-Jacobi pivots (p, q) for q = p+1..n−1,
// applying each two-sided rotation J(p,q,θ)ᵀ·a·J(p,q,θ) and accumulating
// the J's into the transposed eigenvector store VT.
//
// Rows p and q are rotated in place (contiguous) and the 2×2 pivot block
// is set from the closed forms a'_pp = a_pp − t·a_pq, a'_qq = a_qq + t·a_pq,
// a'_pq = 0 (Golub & Van Loan §8.5 — the rotation annihilates the pivot
// exactly by construction). The column halves of the updates are NOT
// written eagerly; instead, within a batch of mirrorBatch adjacent q's,
// a row's few stale entries (column p plus the batch columns already
// rotated) are refreshed on demand from their symmetric counterparts —
// which live in rows that are current and cache-hot — and the full column
// mirror for the batch is flushed in one blocked pass. Every value read
// equals what the eager per-rotation mirror would have written, so the
// computation is bit-identical to the unbatched kernel while the strided
// column traffic shrinks by ~mirrorBatch×.
func sweepPivotRow(a, VT *Dense, p int, small float64, applied []int) {
	n := a.rows
	rp := a.data[p*n : (p+1)*n]
	for q0 := p + 1; q0 < n; q0 += mirrorBatch {
		q1 := q0 + mirrorBatch
		if q1 > n {
			q1 = n
		}
		applied = applied[:0]
		for q := q0; q < q1; q++ {
			apq := rp[q]
			if math.Abs(apq) <= small {
				continue
			}
			rq := a.data[q*n : (q+1)*n]
			rq = rq[:len(rp)]
			// Refresh the entries of row q made stale by the deferred
			// mirrors: column p (symmetric counterpart lives in row p,
			// which is always current) and the batch columns rotated
			// before q (counterparts in their own rows, untouched at
			// position q since their rotation).
			rq[p] = apq
			for _, qq := range applied {
				rq[qq] = a.data[qq*n+q]
			}
			app := rp[p]
			aqq := rq[q]
			// Classic stable rotation computation.
			theta := (aqq - app) / (2 * apq)
			var t float64
			if theta >= 0 {
				t = 1 / (theta + math.Sqrt(1+theta*theta))
			} else {
				t = -1 / (-theta + math.Sqrt(1+theta*theta))
			}
			c := 1 / math.Sqrt(1+t*t)
			s := t * c
			for j, x := range rp {
				y := rq[j]
				rp[j] = c*x - s*y
				rq[j] = s*x + c*y
			}
			rp[p] = app - t*apq
			rq[q] = aqq + t*apq
			rp[q] = 0
			rq[p] = 0
			vp := VT.data[p*n : (p+1)*n]
			vq := VT.data[q*n : (q+1)*n]
			vq = vq[:len(vp)]
			for j, x := range vp {
				y := vq[j]
				vp[j] = c*x - s*y
				vq[j] = s*x + c*y
			}
			applied = append(applied, q)
		}
		if len(applied) == 0 {
			continue
		}
		// Symmetrize the batch rows among themselves and against row p:
		// a rotation (p, q''') that ran after (p, q'') changed a[q''][q''']
		// and a[q''][p], but only rows p and q''' were written. Copy the
		// current values from those rows so every batch row is fully
		// up to date before it serves as a mirror source.
		for ai, qa := range applied {
			ra := a.data[qa*n : (qa+1)*n]
			ra[p] = rp[qa]
			for _, qb := range applied[ai+1:] {
				ra[qb] = a.data[qb*n+qa]
			}
		}
		// Blocked mirror: restore columns p and [q0, q1) from the rows
		// that carry their current values. The batch columns are adjacent,
		// so per matrix row this writes into at most two cache lines, and
		// the source rows (≤ mirrorBatch of them) stay L1-resident.
		for i := 0; i < n; i++ {
			row := a.data[i*n : i*n+n]
			row[p] = rp[i]
			for _, qq := range applied {
				row[qq] = a.data[qq*n+i]
			}
		}
	}
}

func offDiagNorm(a *Dense) float64 {
	n := a.rows
	var s float64
	for i := 0; i < n; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			if i != j {
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}
