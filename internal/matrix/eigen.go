package matrix

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns eigenvalues in descending
// order and the corresponding orthonormal eigenvectors as the columns of V,
// so that m = V·diag(vals)·Vᵀ up to the convergence tolerance.
//
// Jacobi is chosen over tridiagonalization because the matrices in this
// code base are modest (d ≤ a few thousand) Gram matrices where Jacobi's
// simplicity, unconditional convergence and high relative accuracy on PSD
// inputs outweigh its O(d³) per-sweep cost.
func EigenSym(m *Dense) (vals []float64, V *Dense) {
	n := m.rows
	if m.cols != n {
		panic(fmt.Sprintf("matrix: EigenSym on non-square %dx%d", m.rows, m.cols))
	}
	a := m.Clone()
	V = Identity(n)
	if n == 0 {
		return nil, V
	}

	const maxSweeps = 64
	// Convergence when the off-diagonal Frobenius mass is tiny relative to
	// the matrix scale.
	scale := a.FrobNorm()
	tol := 1e-14 * scale
	if tol == 0 {
		tol = 1e-300
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.data[p*n+q]
				if math.Abs(apq) <= tol/float64(n) {
					continue
				}
				app := a.data[p*n+p]
				aqq := a.data[q*n+q]
				// Classic stable rotation computation.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(a, V, p, q, c, s)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a.data[i*n+i]
	}
	// Sort descending, permuting eigenvector columns in step.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	sorted := make([]float64, n)
	Vs := NewDense(n, n)
	for newj, oldj := range idx {
		sorted[newj] = vals[oldj]
		for i := 0; i < n; i++ {
			Vs.data[i*n+newj] = V.data[i*n+oldj]
		}
	}
	return sorted, Vs
}

// rotate applies the Jacobi rotation J(p,q,θ) on both sides of a and
// accumulates it into V: a ← JᵀaJ, V ← VJ.
func rotate(a, V *Dense, p, q int, c, s float64) {
	n := a.rows
	for i := 0; i < n; i++ {
		aip := a.data[i*n+p]
		aiq := a.data[i*n+q]
		a.data[i*n+p] = c*aip - s*aiq
		a.data[i*n+q] = s*aip + c*aiq
	}
	for j := 0; j < n; j++ {
		apj := a.data[p*n+j]
		aqj := a.data[q*n+j]
		a.data[p*n+j] = c*apj - s*aqj
		a.data[q*n+j] = s*apj + c*aqj
	}
	for i := 0; i < n; i++ {
		vip := V.data[i*n+p]
		viq := V.data[i*n+q]
		V.data[i*n+p] = c*vip - s*viq
		V.data[i*n+q] = s*vip + c*viq
	}
}

func offDiagNorm(a *Dense) float64 {
	n := a.rows
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				v := a.data[i*n+j]
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}
