package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func randomSymmetric(rng *rand.Rand, n int) *Dense {
	a := randomDense(rng, n, n)
	return a.Add(a.T()).Scale(0.5)
}

func randomPSD(rng *rand.Rand, n, rank int) *Dense {
	b := randomDense(rng, rank, n)
	return b.Gram()
}

// eigenReconstructs checks m ≈ V·diag(vals)·Vᵀ.
func eigenReconstructs(t *testing.T, m *Dense, vals []float64, V *Dense, tol float64) {
	t.Helper()
	n := m.Rows()
	D := NewDense(n, n)
	for i, v := range vals {
		D.Set(i, i, v)
	}
	rec := V.Mul(D).Mul(V.T())
	if !rec.Equalf(m, tol) {
		t.Fatalf("eigen reconstruction failed (n=%d)", n)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, V := EigenSym(m)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	eigenReconstructs(t, m, vals, V, 1e-10)
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := EigenSym(m)
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestEigenSymRandomReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 3, 5, 10, 25, 60} {
		m := randomSymmetric(rng, n)
		vals, V := EigenSym(m)
		eigenReconstructs(t, m, vals, V, 1e-8*math.Max(1, m.FrobNorm()))
		// Eigenvalues sorted descending.
		for i := 1; i < len(vals); i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
	}
}

func TestEigenVectorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomSymmetric(rng, 20)
	_, V := EigenSym(m)
	if !V.Gram().Equalf(Identity(20), 1e-9) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestEigenPSDNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randomPSD(rng, 15, 6)
	vals, _ := EigenSym(m)
	for i, v := range vals {
		if v < -1e-9 {
			t.Fatalf("PSD eigenvalue %d = %g < 0", i, v)
		}
	}
	// Rank-6 Gram: eigenvalues beyond 6 vanish.
	for i := 6; i < len(vals); i++ {
		if vals[i] > 1e-8*vals[0] {
			t.Fatalf("rank leak: λ_%d = %g", i, vals[i])
		}
	}
}

func TestEigenTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomSymmetric(rng, 12)
	vals, _ := EigenSym(m)
	var trace, sum float64
	for i := 0; i < 12; i++ {
		trace += m.At(i, i)
		sum += vals[i]
	}
	if math.Abs(trace-sum) > 1e-9*math.Max(1, math.Abs(trace)) {
		t.Fatalf("trace %g != Σλ %g", trace, sum)
	}
}

func TestEigenZeroMatrix(t *testing.T) {
	vals, V := EigenSym(NewDense(4, 4))
	for _, v := range vals {
		if v != 0 {
			t.Fatal("zero matrix eigenvalues")
		}
	}
	if !V.Gram().Equalf(Identity(4), 1e-12) {
		t.Fatal("zero matrix eigenvectors")
	}
}

func TestEigenEmpty(t *testing.T) {
	vals, _ := EigenSym(NewDense(0, 0))
	if len(vals) != 0 {
		t.Fatal("empty eigen")
	}
}

func TestEigenNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigenSym(NewDense(2, 3))
}

func TestEigenRepeatedEigenvalues(t *testing.T) {
	// 2·I has a repeated eigenvalue; any orthonormal V is valid.
	m := Identity(5).Scale(2)
	vals, V := EigenSym(m)
	for _, v := range vals {
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
	if !V.Gram().Equalf(Identity(5), 1e-10) {
		t.Fatal("V not orthonormal")
	}
}
