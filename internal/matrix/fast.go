package matrix

import "fmt"

// Fast is the tuned dense backend: row-major float64 storage exactly like
// Dense — O(1) At, contiguous rows — plus a precomputed nonzero-column
// index in CSR layout (row pointers into a flat column list) and cached
// per-row norms. The protocols' per-row hot paths all reduce to the
// RowNNZ stream; Fast walks the index instead of testing every stored
// entry for zero, so sketch ingestion and row scans run at CSR speed
// while random access and row views keep their dense cost.
//
// Bit-identity: the index is built from the same RowNNZ stream every
// backend must produce (ascending columns, exact zeros skipped), values
// are read back from the dense rows, and every accumulating kernel — the
// unrolled MulVec, the cached norms — uses one sequential accumulator in
// stream order, so all results are bitwise identical to the Dense and
// CSR backends.
//
// Fast is immutable after construction (the index and cached norms would
// not survive mutation); it intentionally exposes no setters.
type Fast struct {
	rows, cols int
	data       []float64 // row-major entries, rows×cols
	rowptr     []int32   // rowptr[i]..rowptr[i+1] indexes colidx for row i
	colidx     []int32   // nonzero column indices, ascending within a row
	norms      []float64 // cached RowNorm2 per row (nnz-order accumulation)
}

var _ Mat = (*Fast)(nil)

// ToFast indexes m into the fast-dense backend. A *Fast input is returned
// unchanged (Mat consumers are read-only by contract, so sharing is safe).
func ToFast(m Mat) *Fast {
	if f, ok := m.(*Fast); ok {
		return f
	}
	rows, cols := m.Rows(), m.Cols()
	out := &Fast{
		rows:   rows,
		cols:   cols,
		data:   make([]float64, rows*cols),
		rowptr: make([]int32, rows+1),
		norms:  make([]float64, rows),
	}
	out.colidx = make([]int32, 0, m.NNZ())
	for i := 0; i < rows; i++ {
		row := out.data[i*cols : (i+1)*cols]
		m.RowNNZ(i, func(j int, v float64) {
			row[j] = v
			out.colidx = append(out.colidx, int32(j))
		})
		out.rowptr[i+1] = int32(len(out.colidx))
		var s float64
		for _, c := range out.colidx[out.rowptr[i]:] {
			v := row[c]
			s += v * v
		}
		out.norms[i] = s
	}
	return out
}

// ToFastAll converts every share to the fast-dense backend.
func ToFastAll(mats []Mat) []Mat {
	out := make([]Mat, len(mats))
	for i, m := range mats {
		out[i] = ToFast(m)
	}
	return out
}

// Rows returns the number of rows.
func (m *Fast) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Fast) Cols() int { return m.cols }

// NNZ returns the number of nonzero entries (precomputed).
func (m *Fast) NNZ() int64 { return int64(len(m.colidx)) }

// At returns the (i, j) entry in O(1).
func (m *Fast) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	return m.data[i*m.cols+j]
}

// Row returns row i as a read-only view of the backing storage.
func (m *Fast) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RowNNZ calls f for every nonzero entry of row i in ascending column
// order, walking the precomputed index — no per-entry zero test.
func (m *Fast) RowNNZ(i int, f func(j int, v float64)) {
	row := m.Row(i)
	for _, c := range m.colidx[m.rowptr[i]:m.rowptr[i+1]] {
		f(int(c), row[c])
	}
}

// RowNorm2 returns the squared Euclidean norm of row i from the cache
// (computed once at construction with the backend-standard nnz-order
// accumulation).
func (m *Fast) RowNorm2(i int) float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.norms[i]
}

// RowNorms2 returns the squared Euclidean norms of all rows.
func (m *Fast) RowNorms2() []float64 {
	out := make([]float64, m.rows)
	copy(out, m.norms)
	return out
}

// MulVec returns m·x in O(nnz), the inner gather unrolled 4-wide. The
// accumulator stays single and sequential, so the summation order — and
// hence the bits — match the other backends' nonzero streams.
func (m *Fast) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("matrix: MulVec %dx%d · %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		idx := m.colidx[m.rowptr[i]:m.rowptr[i+1]]
		var s float64
		p := 0
		for ; p+4 <= len(idx); p += 4 {
			c0, c1, c2, c3 := idx[p], idx[p+1], idx[p+2], idx[p+3]
			s += row[c0] * x[c0]
			s += row[c1] * x[c1]
			s += row[c2] * x[c2]
			s += row[c3] * x[c3]
		}
		for ; p < len(idx); p++ {
			c := idx[p]
			s += row[c] * x[c]
		}
		out[i] = s
	}
	return out
}

// Words returns the storage footprint in 64-bit words: the dense entries
// plus the nonzero index (column indices and row pointers pack two per
// word at 32 bits each).
func (m *Fast) Words() int64 {
	return int64(len(m.data)) + (int64(len(m.colidx))+int64(len(m.rowptr))+1)/2
}
