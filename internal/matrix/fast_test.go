package matrix

import (
	"math/rand"
	"testing"
)

// TestFastEquivalence extends the backend contract to the fast-dense
// backend: every Mat method must agree bitwise with Dense and CSR for the
// same logical matrix, whichever backend Fast was indexed from.
func TestFastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		d := 1 + rng.Intn(30)
		density := []float64{0.02, 0.1, 0.5, 1.0}[trial%4]
		dense, csr := randomSparse(rng, n, d, density)
		// Index from alternating sources: the result must not depend on
		// which backend the stream came from.
		var fast *Fast
		if trial%2 == 0 {
			fast = ToFast(dense)
		} else {
			fast = ToFast(csr)
		}
		if fast.NNZ() != dense.NNZ() {
			t.Fatalf("trial %d: nnz %d vs %d", trial, fast.NNZ(), dense.NNZ())
		}
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				if dense.At(i, j) != fast.At(i, j) {
					t.Fatalf("trial %d: At(%d,%d) %g vs %g", trial, i, j, dense.At(i, j), fast.At(i, j))
				}
			}
			if dense.RowNorm2(i) != fast.RowNorm2(i) {
				t.Fatalf("trial %d: RowNorm2(%d) differs", trial, i)
			}
		}
		dn, fn := dense.RowNorms2(), fast.RowNorms2()
		for i := range dn {
			if dn[i] != fn[i] {
				t.Fatalf("trial %d: RowNorms2[%d] %g vs %g", trial, i, dn[i], fn[i])
			}
		}
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		dv, fv := dense.MulVec(x), fast.MulVec(x)
		for i := range dv {
			if dv[i] != fv[i] {
				t.Fatalf("trial %d: MulVec[%d] %g vs %g", trial, i, dv[i], fv[i])
			}
		}
		// The nonzero streams must be identical element for element.
		for i := 0; i < n; i++ {
			type jv struct {
				j int
				v float64
			}
			var a, b []jv
			dense.RowNNZ(i, func(j int, v float64) { a = append(a, jv{j, v}) })
			fast.RowNNZ(i, func(j int, v float64) { b = append(b, jv{j, v}) })
			if len(a) != len(b) {
				t.Fatalf("trial %d row %d: stream lengths %d vs %d", trial, i, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("trial %d row %d: stream element %d differs", trial, i, k)
				}
			}
		}
	}
}

func TestFastConversionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dense, _ := randomSparse(rng, 17, 9, 0.3)
	fast := ToFast(dense)
	if ToFast(fast) != fast {
		t.Fatal("ToFast of a *Fast must be the identity")
	}
	back := ToDense(fast)
	for i := 0; i < 17; i++ {
		for j := 0; j < 9; j++ {
			if back.At(i, j) != dense.At(i, j) {
				t.Fatalf("roundtrip changed At(%d,%d)", i, j)
			}
		}
	}
	c := ToCSR(fast)
	if c.NNZ() != fast.NNZ() {
		t.Fatalf("CSR roundtrip nnz %d vs %d", c.NNZ(), fast.NNZ())
	}
}

func TestBackendFastPlumbing(t *testing.T) {
	if BackendFast.String() != "fast" {
		t.Fatalf("BackendFast.String() = %q", BackendFast.String())
	}
	b, err := ParseBackend("fast")
	if err != nil || b != BackendFast {
		t.Fatalf("ParseBackend(fast) = %v, %v", b, err)
	}
	rng := rand.New(rand.NewSource(13))
	dense, csr := randomSparse(rng, 5, 4, 0.5)
	out := BackendFast.Apply([]Mat{dense, csr})
	for i, m := range out {
		if _, ok := m.(*Fast); !ok {
			t.Fatalf("share %d not converted to *Fast: %T", i, m)
		}
	}
}

func TestFastMulVecUnrolledTail(t *testing.T) {
	// Exercise every tail length 0..7 of the 4-wide unroll against the
	// scalar CSR path.
	rng := rand.New(rand.NewSource(14))
	for nnz := 0; nnz <= 8; nnz++ {
		d := 16
		dense := NewDense(1, d)
		cols := rng.Perm(d)[:nnz]
		for _, c := range cols {
			dense.Set(0, c, rng.NormFloat64())
		}
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		want := ToCSR(dense).MulVec(x)
		got := ToFast(dense).MulVec(x)
		if want[0] != got[0] {
			t.Fatalf("nnz=%d: MulVec %g vs %g", nnz, got[0], want[0])
		}
	}
}
