package matrix

// Mat is the read-only row-oriented interface the distributed protocols
// consume. It is the seam between the protocol layers (samplers, sketching,
// experiments) and the storage backend: Dense keeps every entry, CSR keeps
// only nonzeros. Every per-row hot path — row norms, CountSketch ingestion,
// z-function evaluation, row collection — is written against RowNNZ, so a
// sparse backend pays O(nnz) where the dense one pays O(d) per row.
//
// The iteration contract makes backends interchangeable bit for bit: for
// the same logical matrix, RowNNZ must yield the identical (column, value)
// stream — ascending column order, zero values skipped — regardless of
// storage. Floating-point accumulations over that stream (norms, sketch
// counters, collected rows) are then bitwise identical across backends,
// which is what keeps the protocols' RNG consumption and communication
// transcripts independent of the storage choice.
type Mat interface {
	// Rows returns the number of rows.
	Rows() int
	// Cols returns the number of columns.
	Cols() int
	// At returns the (i, j) entry.
	At(i, j int) float64
	// RowNNZ calls f for every nonzero entry of row i, in ascending column
	// order. Entries whose value is exactly zero are skipped.
	RowNNZ(i int, f func(j int, v float64))
	// RowNorm2 returns the squared Euclidean norm of row i.
	RowNorm2(i int) float64
	// RowNorms2 returns the squared Euclidean norms of all rows.
	RowNorms2() []float64
	// MulVec returns the matrix-vector product with a column vector of
	// length Cols.
	MulVec(x []float64) []float64
	// NNZ returns the number of nonzero entries.
	NNZ() int64
}

// Dense, CSR and Fast must all satisfy the interface.
var (
	_ Mat = (*Dense)(nil)
	_ Mat = (*CSR)(nil)
	_ Mat = (*Fast)(nil)
)

// Sparsity returns the fraction of nonzero entries of m (0 for an empty
// matrix).
func Sparsity(m Mat) float64 {
	total := float64(m.Rows()) * float64(m.Cols())
	if total == 0 {
		return 0
	}
	return float64(m.NNZ()) / total
}

// ToDense materializes m as a Dense matrix. A *Dense input is returned
// unchanged (Mat consumers are read-only by contract, so sharing is safe).
func ToDense(m Mat) *Dense {
	if d, ok := m.(*Dense); ok {
		return d
	}
	out := NewDense(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		row := out.Row(i)
		m.RowNNZ(i, func(j int, v float64) { row[j] = v })
	}
	return out
}

// ToCSR compresses m into the CSR backend. A *CSR input is returned
// unchanged. Conversion preserves the logical matrix exactly: the nonzero
// stream of the result is identical to the input's.
func ToCSR(m Mat) *CSR {
	if c, ok := m.(*CSR); ok {
		return c
	}
	return csrFromMat(m)
}

// ToDenseAll converts every share to the dense backend.
func ToDenseAll(mats []Mat) []Mat {
	out := make([]Mat, len(mats))
	for i, m := range mats {
		out[i] = ToDense(m)
	}
	return out
}

// ToCSRAll converts every share to the CSR backend.
func ToCSRAll(mats []Mat) []Mat {
	out := make([]Mat, len(mats))
	for i, m := range mats {
		out[i] = ToCSR(m)
	}
	return out
}

// SumMats accumulates Σ_t mats[t] into a dense matrix — the materialization
// step of ground-truth and baseline code paths (protocols never call it).
func SumMats(mats []Mat) *Dense {
	if len(mats) == 0 {
		return nil
	}
	out := NewDense(mats[0].Rows(), mats[0].Cols())
	for _, m := range mats {
		for i := 0; i < m.Rows(); i++ {
			row := out.Row(i)
			m.RowNNZ(i, func(j int, v float64) { row[j] += v })
		}
	}
	return out
}

// AsMats adapts a slice of dense matrices to the Mat interface.
func AsMats(ds []*Dense) []Mat {
	out := make([]Mat, len(ds))
	for i, d := range ds {
		out[i] = d
	}
	return out
}
