package matrix

import "math"

// QR computes the thin QR factorization of an r×c matrix (r ≥ c) using
// Householder reflections: m = Q·R with Q r×c having orthonormal columns
// and R c×c upper triangular.
func QR(m *Dense) (Q, R *Dense) {
	r, c := m.Dims()
	if r < c {
		panic("matrix: QR requires rows >= cols")
	}
	a := m.Clone()
	// vs stores the Householder vectors for applying Qᵀ/Q later.
	vs := make([][]float64, 0, c)
	for j := 0; j < c; j++ {
		// Build the Householder vector for column j below the diagonal.
		var norm float64
		for i := j; i < r; i++ {
			v := a.data[i*c+j]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -norm
		if a.data[j*c+j] < 0 {
			alpha = norm
		}
		v := make([]float64, r-j)
		for i := j; i < r; i++ {
			v[i-j] = a.data[i*c+j]
		}
		v[0] -= alpha
		vn2 := Norm2(v)
		if vn2 == 0 {
			vs = append(vs, nil)
			continue
		}
		// Apply reflection H = I − 2vvᵀ/‖v‖² to the trailing submatrix.
		for jj := j; jj < c; jj++ {
			var dot float64
			for i := j; i < r; i++ {
				dot += v[i-j] * a.data[i*c+jj]
			}
			f := 2 * dot / vn2
			for i := j; i < r; i++ {
				a.data[i*c+jj] -= f * v[i-j]
			}
		}
		vs = append(vs, v)
	}

	R = NewDense(c, c)
	for i := 0; i < c; i++ {
		for j := i; j < c; j++ {
			R.data[i*c+j] = a.data[i*c+j]
		}
	}

	// Form thin Q by applying the reflections in reverse to the first c
	// columns of the identity.
	Q = NewDense(r, c)
	for j := 0; j < c; j++ {
		Q.data[j*c+j] = 1
	}
	for j := c - 1; j >= 0; j-- {
		v := vs[j]
		if v == nil {
			continue
		}
		vn2 := Norm2(v)
		for jj := 0; jj < c; jj++ {
			var dot float64
			for i := j; i < r; i++ {
				dot += v[i-j] * Q.data[i*c+jj]
			}
			f := 2 * dot / vn2
			for i := j; i < r; i++ {
				Q.data[i*c+jj] -= f * v[i-j]
			}
		}
	}
	return Q, R
}

// OrthonormalizeColumns returns a matrix whose columns are an orthonormal
// basis for the column span of m (Gram–Schmidt via QR). Columns that are
// numerically dependent are dropped.
func OrthonormalizeColumns(m *Dense) *Dense {
	r, c := m.Dims()
	if r < c {
		// Pad is unnecessary: span dimension ≤ r; fall back to modified
		// Gram–Schmidt which handles r < c directly.
		return mgs(m)
	}
	Q, R := QR(m)
	// Drop columns whose diagonal of R is ~0 (rank deficiency).
	keep := make([]int, 0, c)
	scale := R.MaxAbs()
	tol := 1e-12 * math.Max(scale, 1)
	for j := 0; j < c; j++ {
		if math.Abs(R.At(j, j)) > tol {
			keep = append(keep, j)
		}
	}
	if len(keep) == c {
		return Q
	}
	out := NewDense(r, len(keep))
	for nj, j := range keep {
		for i := 0; i < r; i++ {
			out.data[i*out.cols+nj] = Q.data[i*c+j]
		}
	}
	return out
}

// mgs performs modified Gram–Schmidt on the columns of m.
func mgs(m *Dense) *Dense {
	r, c := m.Dims()
	cols := make([][]float64, 0, c)
	for j := 0; j < c; j++ {
		v := m.ColCopy(j)
		for _, u := range cols {
			AXPY(-Dot(u, v), u, v)
		}
		n := Norm(v)
		if n < 1e-12 {
			continue
		}
		for i := range v {
			v[i] /= n
		}
		cols = append(cols, v)
	}
	out := NewDense(r, len(cols))
	for j, col := range cols {
		for i := 0; i < r; i++ {
			out.data[i*out.cols+j] = col[i]
		}
	}
	return out
}
