package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, shape := range [][2]int{{5, 5}, {10, 4}, {30, 8}, {3, 1}} {
		m := randomDense(rng, shape[0], shape[1])
		Q, R := QR(m)
		if !Q.Mul(R).Equalf(m, 1e-9*math.Max(1, m.FrobNorm())) {
			t.Fatalf("QR != A for %v", shape)
		}
		if !Q.Gram().Equalf(Identity(shape[1]), 1e-9) {
			t.Fatalf("Q not orthonormal for %v", shape)
		}
		for i := 0; i < shape[1]; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(R.At(i, j)) > 1e-10 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestQRWideInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QR(NewDense(2, 5))
}

func TestQRZeroColumn(t *testing.T) {
	m := FromRows([][]float64{{1, 0}, {0, 0}, {1, 0}})
	Q, R := QR(m)
	if !Q.Mul(R).Equalf(m, 1e-10) {
		t.Fatal("QR with zero column")
	}
}

func TestOrthonormalizeFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := randomDense(rng, 12, 5)
	B := OrthonormalizeColumns(m)
	if B.Cols() != 5 {
		t.Fatalf("dropped columns: %d", B.Cols())
	}
	if !B.Gram().Equalf(Identity(5), 1e-9) {
		t.Fatal("not orthonormal")
	}
	// Same span: projecting m's columns onto B changes nothing.
	P := B.Mul(B.T())
	if !P.Mul(m).Equalf(m, 1e-8*math.Max(1, m.FrobNorm())) {
		t.Fatal("span changed")
	}
}

func TestOrthonormalizeRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := randomDense(rng, 10, 2)
	// Third column is a combination of the first two.
	m := NewDense(10, 3)
	for i := 0; i < 10; i++ {
		m.Set(i, 0, base.At(i, 0))
		m.Set(i, 1, base.At(i, 1))
		m.Set(i, 2, 2*base.At(i, 0)-base.At(i, 1))
	}
	B := OrthonormalizeColumns(m)
	if B.Cols() != 2 {
		t.Fatalf("rank-2 input kept %d columns", B.Cols())
	}
}

func TestOrthonormalizeWide(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := randomDense(rng, 3, 7) // more columns than rows
	B := OrthonormalizeColumns(m)
	if B.Cols() > 3 {
		t.Fatalf("wide orthonormalize kept %d columns", B.Cols())
	}
	if !B.Gram().Equalf(Identity(B.Cols()), 1e-9) {
		t.Fatal("not orthonormal")
	}
}
