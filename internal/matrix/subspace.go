package matrix

import "math/rand"

// TopKSubspaceIteration approximates the top-k right singular vectors of m
// by block power iteration on the Gram matrix: starting from a random d×k
// block, repeatedly multiply by mᵀm and re-orthonormalize. For matrices
// with a spectral gap it converges geometrically and costs O(iters·d²k)
// after the one-time O(nd²) Gram computation — asymptotically cheaper than
// a full Jacobi eigendecomposition when k ≪ d.
//
// It exists as the design alternative to the Jacobi route that
// DESIGN.md §5 calls out; BenchmarkAblationEigensolver compares them. The
// protocols default to Jacobi: the sampled matrices are small enough that
// its unconditional convergence wins.
func TopKSubspaceIteration(m *Dense, k, iters int, seed int64) *Dense {
	d := m.Cols()
	if k > d {
		k = d
	}
	if k <= 0 {
		return NewDense(d, 0)
	}
	if iters < 1 {
		iters = 1
	}
	g := m.Gram()
	rng := rand.New(rand.NewSource(seed))
	block := NewDense(d, k)
	for i := range block.data {
		block.data[i] = rng.NormFloat64()
	}
	block = OrthonormalizeColumns(block)
	for it := 0; it < iters; it++ {
		block = OrthonormalizeColumns(g.Mul(block))
		if block.Cols() < k {
			// Rank-deficient product (g has rank < k): pad with fresh
			// random directions orthogonal to the current block.
			block = padRandomOrthogonal(block, k, rng)
		}
	}
	return block
}

// padRandomOrthogonal extends block to k orthonormal columns with random
// directions.
func padRandomOrthogonal(block *Dense, k int, rng *rand.Rand) *Dense {
	d := block.Rows()
	cols := make([][]float64, 0, k)
	for j := 0; j < block.Cols(); j++ {
		cols = append(cols, block.ColCopy(j))
	}
	for len(cols) < k {
		v := make([]float64, d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for _, u := range cols {
			AXPY(-Dot(u, v), u, v)
		}
		n := Norm(v)
		if n < 1e-9 {
			continue
		}
		for i := range v {
			v[i] /= n
		}
		cols = append(cols, v)
	}
	out := NewDense(d, k)
	for j, col := range cols {
		for i := 0; i < d; i++ {
			out.data[i*k+j] = col[i]
		}
	}
	return out
}

// SubspaceOverlap measures how much of the k-dimensional subspace spanned
// by the columns of U is captured by the subspace spanned by the columns
// of V: ‖UᵀV‖_F²/k ∈ [0,1], with 1 meaning identical spans. Used by tests
// to compare eigensolver outputs without fixing a basis.
func SubspaceOverlap(U, V *Dense) float64 {
	k := U.Cols()
	if k == 0 {
		return 1
	}
	return U.T().Mul(V).FrobNorm2() / float64(k)
}
