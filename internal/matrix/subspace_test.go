package matrix

import (
	"math/rand"
	"testing"
)

func TestSubspaceIterationMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	// A matrix with a clear spectral gap so both solvers agree on the span.
	m := randomDense(rng, 80, 12)
	// Amplify the top-3 directions.
	V := TopKRightSingular(m, 3)
	boost := m.Mul(V.Mul(V.T())).Scale(5)
	m = m.Add(boost)

	jac := TopKRightSingular(m, 3)
	sub := TopKSubspaceIteration(m, 3, 60, 7)
	if overlap := SubspaceOverlap(jac, sub); overlap < 0.99 {
		t.Fatalf("subspace overlap %g", overlap)
	}
}

func TestSubspaceIterationOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := randomDense(rng, 40, 10)
	B := TopKSubspaceIteration(m, 4, 20, 3)
	if r, c := B.Dims(); r != 10 || c != 4 {
		t.Fatalf("shape %dx%d", r, c)
	}
	if !B.Gram().Equalf(Identity(4), 1e-8) {
		t.Fatal("block not orthonormal")
	}
}

func TestSubspaceIterationRankDeficient(t *testing.T) {
	// Rank-2 matrix, k=4: iteration must still return 4 orthonormal
	// columns (padded), with the top-2 capturing everything.
	rng := rand.New(rand.NewSource(52))
	u := randomDense(rng, 30, 2)
	v := randomDense(rng, 8, 2)
	m := u.Mul(v.T())
	B := TopKSubspaceIteration(m, 4, 25, 9)
	if B.Cols() != 4 {
		t.Fatalf("cols %d", B.Cols())
	}
	P := B.Mul(B.T())
	if e := ProjectionError2(m, P); e > 1e-7*m.FrobNorm2() {
		t.Fatalf("rank-2 residual %g", e)
	}
}

func TestSubspaceIterationEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := randomDense(rng, 10, 5)
	if B := TopKSubspaceIteration(m, 0, 5, 1); B.Cols() != 0 {
		t.Fatal("k=0")
	}
	if B := TopKSubspaceIteration(m, 99, 5, 1); B.Cols() != 5 {
		t.Fatal("k clamp")
	}
}

func TestSubspaceOverlapSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	m := randomDense(rng, 20, 6)
	V := TopKRightSingular(m, 3)
	if o := SubspaceOverlap(V, V); o < 1-1e-9 || o > 1+1e-9 {
		t.Fatalf("self overlap %g", o)
	}
	// Orthogonal subspaces overlap 0.
	svd := SVD(m)
	top := svd.V.SubMatrix(0, 6, 0, 3)
	bot := svd.V.SubMatrix(0, 6, 3, 6).SubMatrix(0, 6, 0, 3)
	if o := SubspaceOverlap(top, bot); o > 1e-9 {
		t.Fatalf("orthogonal overlap %g", o)
	}
}
