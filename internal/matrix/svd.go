package matrix

import "math"

// SVDResult holds the thin singular value decomposition components that the
// low rank approximation protocols consume: singular values in descending
// order and the right singular vectors as columns of V (d×d).
//
// The left factor U is not stored; none of the protocols need it, and for
// tall matrices it dominates memory.
type SVDResult struct {
	// Values are the singular values σ1 ≥ σ2 ≥ … ≥ 0.
	Values []float64
	// V holds the right singular vectors as columns.
	V *Dense
}

// SVD computes the singular values and right singular vectors of m via the
// eigendecomposition of the Gram matrix mᵀm. For the r×d matrices this code
// base produces (d modest, entries well-scaled) the Gram route is accurate
// far beyond the additive-error tolerances of the protocols.
func SVD(m *Dense) *SVDResult {
	g := m.Gram()
	vals, V := EigenSym(g)
	sv := make([]float64, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0 // clamp tiny negative eigenvalues from roundoff
		}
		sv[i] = math.Sqrt(v)
	}
	return &SVDResult{Values: sv, V: V}
}

// TopKRightSingular returns the top-k right singular vectors of m as the
// columns of a d×k matrix. k is clamped to [0, d].
func TopKRightSingular(m *Dense, k int) *Dense {
	d := m.Cols()
	if k > d {
		k = d
	}
	if k < 0 {
		k = 0
	}
	res := SVD(m)
	return res.V.SubMatrix(0, d, 0, k)
}

// ProjectionTopK returns the d×d rank-k orthogonal projection P = V_k·V_kᵀ
// onto the span of the top-k right singular vectors of m.
func ProjectionTopK(m *Dense, k int) *Dense {
	Vk := TopKRightSingular(m, k)
	return Vk.Mul(Vk.T())
}

// ProjectionFromBasis returns V·Vᵀ for a d×k matrix whose columns span the
// desired subspace; columns are assumed orthonormal.
func ProjectionFromBasis(V *Dense) *Dense { return V.Mul(V.T()) }

// BestRankKError2 returns ‖m − [m]_k‖_F² = Σ_{i>k} σ_i², computed stably as
// ‖m‖_F² − Σ_{i≤k} σ_i² clamped at zero.
func BestRankKError2(m *Dense, k int) float64 {
	res := SVD(m)
	total := m.FrobNorm2()
	var cap float64
	for i := 0; i < k && i < len(res.Values); i++ {
		cap += res.Values[i] * res.Values[i]
	}
	e := total - cap
	if e < 0 {
		return 0
	}
	return e
}

// ProjectionError2 returns ‖m − mP‖_F² using the matrix Pythagorean theorem
// ‖m − mP‖_F² = ‖m‖_F² − ‖mP‖_F², which holds for any orthogonal projection
// P (Section II of the paper).
func ProjectionError2(m, P *Dense) float64 {
	mp := m.Mul(P)
	e := m.FrobNorm2() - mp.FrobNorm2()
	if e < 0 {
		return 0
	}
	return e
}

// CapturedEnergy returns ‖mP‖_F², the variance captured by projection P.
func CapturedEnergy(m, P *Dense) float64 { return m.Mul(P).FrobNorm2() }
