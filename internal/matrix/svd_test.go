package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVDKnownDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}, {0, 0}})
	res := SVD(m)
	if math.Abs(res.Values[0]-4) > 1e-10 || math.Abs(res.Values[1]-3) > 1e-10 {
		t.Fatalf("singular values = %v", res.Values)
	}
}

func TestSVDValuesMatchEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := randomDense(rng, 30, 8)
	res := SVD(m)
	vals, _ := EigenSym(m.Gram())
	for i := range res.Values {
		want := math.Sqrt(math.Max(vals[i], 0))
		if math.Abs(res.Values[i]-want) > 1e-8 {
			t.Fatalf("σ_%d = %g, want %g", i, res.Values[i], want)
		}
	}
}

func TestSVDEnergyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := randomDense(rng, 25, 10)
	res := SVD(m)
	var sum float64
	for _, s := range res.Values {
		sum += s * s
	}
	if math.Abs(sum-m.FrobNorm2()) > 1e-7*m.FrobNorm2() {
		t.Fatalf("Σσ² = %g, ‖A‖² = %g", sum, m.FrobNorm2())
	}
}

func TestProjectionTopKIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randomDense(rng, 20, 7)
	P := ProjectionTopK(m, 3)
	if !P.Mul(P).Equalf(P, 1e-9) {
		t.Fatal("P² != P")
	}
	if !P.T().Equalf(P, 1e-9) {
		t.Fatal("P not symmetric")
	}
}

func TestProjectionTopKRank(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomDense(rng, 20, 7)
	for k := 0; k <= 7; k++ {
		P := ProjectionTopK(m, k)
		vals, _ := EigenSym(P)
		rank := 0
		for _, v := range vals {
			if v > 0.5 {
				rank++
			}
		}
		if rank != k {
			t.Fatalf("k=%d: projection rank %d", k, rank)
		}
	}
}

// TestBestRankKOptimality verifies the Eckart–Young property empirically:
// the top-k projection beats random rank-k projections.
func TestBestRankKOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := randomDense(rng, 40, 10)
	k := 3
	best := ProjectionError2(m, ProjectionTopK(m, k))
	if math.Abs(best-BestRankKError2(m, k)) > 1e-7*m.FrobNorm2() {
		t.Fatalf("BestRankKError2 inconsistent: %g vs %g", best, BestRankKError2(m, k))
	}
	for trial := 0; trial < 30; trial++ {
		Q := ProjectionTopK(randomDense(rng, 15, 10), k)
		if e := ProjectionError2(m, Q); e < best-1e-9 {
			t.Fatalf("random projection beat optimum: %g < %g", e, best)
		}
	}
}

func TestBestRankKExactRecovery(t *testing.T) {
	// A rank-2 matrix has zero rank-2 residual.
	rng := rand.New(rand.NewSource(25))
	u := randomDense(rng, 30, 2)
	v := randomDense(rng, 6, 2)
	m := u.Mul(v.T())
	if e := BestRankKError2(m, 2); e > 1e-8*m.FrobNorm2() {
		t.Fatalf("rank-2 residual = %g", e)
	}
	P := ProjectionTopK(m, 2)
	if e := ProjectionError2(m, P); e > 1e-8*m.FrobNorm2() {
		t.Fatalf("projection residual = %g", e)
	}
}

func TestBestRankKMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m := randomDense(rng, 25, 9)
	prev := math.Inf(1)
	for k := 0; k <= 9; k++ {
		e := BestRankKError2(m, k)
		if e > prev+1e-9 {
			t.Fatalf("residual not monotone at k=%d: %g > %g", k, e, prev)
		}
		prev = e
	}
	if prev > 1e-8*m.FrobNorm2() {
		t.Fatalf("full-rank residual = %g", prev)
	}
}

func TestTopKRightSingularOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	m := randomDense(rng, 20, 8)
	V := TopKRightSingular(m, 5)
	if r, c := V.Dims(); r != 8 || c != 5 {
		t.Fatalf("shape %dx%d", r, c)
	}
	if !V.Gram().Equalf(Identity(5), 1e-9) {
		t.Fatal("V columns not orthonormal")
	}
}

func TestTopKClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	m := randomDense(rng, 10, 4)
	if V := TopKRightSingular(m, 99); V.Cols() != 4 {
		t.Fatal("k not clamped above")
	}
	if V := TopKRightSingular(m, -1); V.Cols() != 0 {
		t.Fatal("k not clamped below")
	}
}

func TestCapturedEnergyComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := randomDense(rng, 15, 6)
	P := ProjectionTopK(m, 2)
	if math.Abs(CapturedEnergy(m, P)+ProjectionError2(m, P)-m.FrobNorm2()) > 1e-8*m.FrobNorm2() {
		t.Fatal("captured + residual != total")
	}
}

// Property-based: for any matrix, projecting onto its own top-k right
// singular vectors never increases the Frobenius norm and the residual is
// within [0, ‖A‖²].
func TestQuickProjectionResidualBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		d := 1 + r.Intn(6)
		m := randomDense(r, n, d)
		k := r.Intn(d + 1)
		P := ProjectionTopK(m, k)
		e := ProjectionError2(m, P)
		return e >= 0 && e <= m.FrobNorm2()*(1+1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestProjectionFromBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := randomDense(rng, 12, 5)
	V := TopKRightSingular(m, 2)
	P := ProjectionFromBasis(V)
	if !P.Equalf(ProjectionTopK(m, 2), 1e-9) {
		t.Fatal("basis projection mismatch")
	}
}
