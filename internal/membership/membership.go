// Package membership is the coordinator's view of which workers are
// alive. It turns the fixed-size fabric frozen at AwaitWorkers into a
// live cluster: every worker slot carries a state machine
//
//	joining → active ⇄ suspect → dead → (re-placed) joining → active
//	            └────────────→ draining
//
// driven by two inputs — heartbeat pongs (Beat) and the passage of time
// (Tick) — plus two verdicts from outside: MarkDead when a transport
// link drops mid-frame, and Activate when a replacement worker finishes
// its handshake and share reinstall.
//
// The failure detector is deliberately clock-seamed (Config.Now,
// mirroring the TTL seam in the session pool): Tick computes missed
// beats as elapsed-time / probe-interval, so tests drive every
// threshold with a fake clock and the detector never marks a
// slow-but-alive worker dead as long as its pongs keep arriving inside
// the suspect window.
//
// The table is pure bookkeeping: it moves no frames and owns no
// goroutines. The cluster coordinator runs the probe loop, feeds the
// table, and reacts to the transitions it reports.
package membership

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is one worker slot's liveness state.
type State int

const (
	// Joining: the slot's worker is mid-handshake or mid-reinstall and
	// not yet serving protocol traffic.
	Joining State = iota
	// Active: the worker answers heartbeats and serves its share.
	Active
	// Suspect: the worker missed enough consecutive beats to be in
	// doubt, but not enough to be declared dead. A fresh pong returns
	// it to Active (flapping recovery).
	Suspect
	// Dead: the worker missed the dead threshold or its link dropped;
	// its share must be re-placed before jobs touching it can run.
	Dead
	// Draining: the worker is leaving voluntarily — no new work, but
	// not a failure.
	Draining
)

// String renders the state for logs and metrics.
func (s State) String() string {
	switch s {
	case Joining:
		return "joining"
	case Active:
		return "active"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Draining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Member is a snapshot of one worker slot.
type Member struct {
	// Index is the logical server index the slot hosts (1…s−1; the CP
	// is not a member).
	Index int
	// State is the slot's current liveness state.
	State State
	// Epoch counts the workers that have held this slot: 1 for the
	// original AwaitWorkers worker, +1 per re-placement.
	Epoch uint64
	// LastBeat is when the slot last proved liveness (a pong, or its
	// activation time before any pong arrived).
	LastBeat time.Time
	// Missed is the consecutive missed-beat count as of the last Tick.
	Missed int
	// RTT is the most recent heartbeat round-trip time (0 before the
	// first pong).
	RTT time.Duration
}

// Config tunes the failure detector.
type Config struct {
	// Interval is the heartbeat probe period. One missed beat = one
	// Interval elapsed since LastBeat without a pong.
	Interval time.Duration
	// SuspectAfter is the consecutive missed beats before a slot turns
	// Suspect.
	SuspectAfter int
	// DeadAfter is the consecutive missed beats before a slot is
	// declared Dead. Must exceed SuspectAfter.
	DeadAfter int
	// Now is the clock seam; nil means time.Now.
	Now func() time.Time
}

// Defaults for zero Config fields: probe every 200ms, suspect after 3
// missed beats, dead after 6.
const (
	DefaultInterval     = 200 * time.Millisecond
	DefaultSuspectAfter = 3
	DefaultDeadAfter    = 6
)

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + (DefaultDeadAfter - DefaultSuspectAfter)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Transition records one state change: the member snapshot after the
// change and the state it left.
type Transition struct {
	Member Member
	From   State
}

// Table is the membership table: one entry per worker slot, keyed by
// logical server index. Safe for concurrent use; the change callback is
// invoked without the table lock held.
type Table struct {
	cfg Config

	mu      sync.Mutex
	members map[int]*Member
	// failed marks slots whose occupant died and has not been replaced
	// yet — the next Activate on such a slot is a failover (epoch and
	// failover counter advance) even if the slot passed through Joining
	// on the way back.
	failed map[int]bool

	// Cumulative counters for metrics: failovers (Dead slots
	// re-activated) and the heartbeat RTT summary.
	failovers int64
	rttCount  int64
	rttSum    time.Duration

	onChange func(Transition)
}

// NewTable creates a table with every given worker index Active as of
// now — the state of a cluster the moment AwaitWorkers returns.
func NewTable(indices []int, cfg Config) *Table {
	t := &Table{
		cfg:     cfg.withDefaults(),
		members: make(map[int]*Member, len(indices)),
		failed:  make(map[int]bool),
	}
	now := t.cfg.Now()
	for _, idx := range indices {
		t.members[idx] = &Member{Index: idx, State: Active, Epoch: 1, LastBeat: now}
	}
	return t
}

// Interval returns the configured probe period.
func (t *Table) Interval() time.Duration { return t.cfg.Interval }

// OnChange installs the transition observer, called (without the table
// lock) for every state change from any input. At most one observer.
func (t *Table) OnChange(fn func(Transition)) {
	t.mu.Lock()
	t.onChange = fn
	t.mu.Unlock()
}

func (t *Table) notify(trs []Transition) {
	if len(trs) == 0 {
		return
	}
	t.mu.Lock()
	fn := t.onChange
	t.mu.Unlock()
	if fn == nil {
		return
	}
	for _, tr := range trs {
		fn(tr)
	}
}

// Beat records a heartbeat pong from a slot: the missed count resets,
// the RTT summary accumulates, and a Suspect slot returns to Active —
// the flapping-recovery edge. A Joining slot's pong proves the
// replacement is alive mid-reinstall (its stall clock refreshes) but
// never activates it: Active is reachable from Joining only through
// Activate, after the share re-feed succeeds — a pong must not resume
// the engine against a worker holding a partial share. Pongs from Dead
// or Draining slots are ignored: a slot declared dead stays dead until
// a replacement Activates it, so a zombie's late pong cannot resurrect
// a slot whose share is already being re-placed.
func (t *Table) Beat(idx int, rtt time.Duration) {
	t.mu.Lock()
	m, ok := t.members[idx]
	if !ok || m.State == Dead || m.State == Draining {
		t.mu.Unlock()
		return
	}
	from := m.State
	m.LastBeat = t.cfg.Now()
	m.Missed = 0
	m.RTT = rtt
	t.rttCount++
	t.rttSum += rtt
	var trs []Transition
	if from == Suspect {
		m.State = Active
		trs = []Transition{{Member: *m, From: from}}
	}
	t.mu.Unlock()
	t.notify(trs)
}

// Tick runs the failure detector against the clock: each live slot's
// missed-beat count is elapsed-since-LastBeat / Interval, and crossing
// SuspectAfter or DeadAfter moves it to Suspect or Dead. Returns the
// transitions it caused (also delivered to the OnChange observer), Dead
// ones last so a reactor that re-places shares sees suspects first.
func (t *Table) Tick() []Transition {
	t.mu.Lock()
	now := t.cfg.Now()
	var trs []Transition
	for _, m := range t.members {
		if m.State == Dead || m.State == Draining {
			continue
		}
		m.Missed = int(now.Sub(m.LastBeat) / t.cfg.Interval)
		from := m.State
		switch {
		case m.Missed >= t.cfg.DeadAfter:
			m.State = Dead
			t.failed[m.Index] = true
		case m.Missed >= t.cfg.SuspectAfter && from != Joining:
			// A Joining slot never turns Suspect: Suspect exists so a pong
			// can recover a doubted *serving* worker, and routing a join
			// through it would let that recovery edge activate a slot
			// whose share reinstall is still in flight. A join either
			// completes (Activate) or stalls out at the Dead threshold.
			m.State = Suspect
		}
		if m.State != from {
			trs = append(trs, Transition{Member: *m, From: from})
		}
	}
	sort.Slice(trs, func(i, j int) bool {
		if (trs[i].Member.State == Dead) != (trs[j].Member.State == Dead) {
			return trs[j].Member.State == Dead
		}
		return trs[i].Member.Index < trs[j].Member.Index
	})
	t.mu.Unlock()
	t.notify(trs)
	return trs
}

// MarkDead declares a slot dead immediately — the transport saw its
// connection drop, which outranks any heartbeat arithmetic. No-op if
// the slot is already Dead.
func (t *Table) MarkDead(idx int) {
	t.mu.Lock()
	m, ok := t.members[idx]
	if !ok || m.State == Dead {
		t.mu.Unlock()
		return
	}
	from := m.State
	m.State = Dead
	t.failed[idx] = true
	trs := []Transition{{Member: *m, From: from}}
	t.mu.Unlock()
	t.notify(trs)
}

// Joining marks a slot as mid-handshake: a replacement worker connected
// and its share reinstall is underway. The stall clock restarts at join
// time — without that, a slot vacated by a heartbeat-timeout death
// would carry its predecessor's stale LastBeat into the join and the
// next Tick would kill every rejoin attempt within one interval.
func (t *Table) Joining(idx int) {
	t.mu.Lock()
	m, ok := t.members[idx]
	if !ok {
		t.mu.Unlock()
		return
	}
	from := m.State
	if from == Joining {
		t.mu.Unlock()
		return
	}
	m.State = Joining
	m.LastBeat = t.cfg.Now()
	m.Missed = 0
	trs := []Transition{{Member: *m, From: from}}
	t.mu.Unlock()
	t.notify(trs)
}

// Activate installs a (re-placed or recovered) worker in its slot: the
// state returns to Active with a fresh beat, and if the slot's previous
// occupant died (even if the slot passed through Joining on the way
// back) the epoch and the failover counter advance.
func (t *Table) Activate(idx int) {
	t.mu.Lock()
	m, ok := t.members[idx]
	if !ok {
		m = &Member{Index: idx}
		t.members[idx] = m
	}
	from := m.State
	if t.failed[idx] || m.Epoch == 0 {
		m.Epoch++
	}
	if t.failed[idx] {
		t.failovers++
		delete(t.failed, idx)
	}
	m.State = Active
	m.Missed = 0
	m.RTT = 0
	m.LastBeat = t.cfg.Now()
	var trs []Transition
	if from != Active {
		trs = []Transition{{Member: *m, From: from}}
	}
	t.mu.Unlock()
	t.notify(trs)
}

// Draining marks a slot as voluntarily leaving.
func (t *Table) Draining(idx int) {
	t.mu.Lock()
	m, ok := t.members[idx]
	if !ok || m.State == Draining {
		t.mu.Unlock()
		return
	}
	from := m.State
	m.State = Draining
	trs := []Transition{{Member: *m, From: from}}
	t.mu.Unlock()
	t.notify(trs)
}

// Get returns the snapshot of one slot.
func (t *Table) Get(idx int) (Member, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.members[idx]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// Members returns snapshots of every slot, sorted by index.
func (t *Table) Members() []Member {
	t.mu.Lock()
	out := make([]Member, 0, len(t.members))
	for _, m := range t.members {
		out = append(out, *m)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Counts tallies slots per state.
func (t *Table) Counts() map[State]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[State]int, 5)
	for _, m := range t.members {
		out[m.State]++
	}
	return out
}

// Failovers returns how many Dead slots have been re-activated.
func (t *Table) Failovers() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failovers
}

// RTTStats returns the cumulative heartbeat round-trip summary: pong
// count and summed RTT (the Prometheus summary pair).
func (t *Table) RTTStats() (count int64, sum time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rttCount, t.rttSum
}
