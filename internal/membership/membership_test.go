package membership

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives the detector's Now seam so every threshold test is
// deterministic and instant.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTable(clk *fakeClock, workers ...int) *Table {
	return NewTable(workers, Config{
		Interval:     100 * time.Millisecond,
		SuspectAfter: 3,
		DeadAfter:    6,
		Now:          clk.now,
	})
}

func stateOf(t *testing.T, tb *Table, idx int) State {
	t.Helper()
	m, ok := tb.Get(idx)
	if !ok {
		t.Fatalf("no member %d", idx)
	}
	return m.State
}

// TestDetectorThresholds walks one silent worker through every
// missed-beat threshold: still active below SuspectAfter, suspect at 3
// misses, dead at 6 — and verifies a beating peer never transitions.
func TestDetectorThresholds(t *testing.T) {
	clk := newFakeClock()
	tb := newTestTable(clk, 1, 2)

	// Two intervals of silence: below the suspect threshold.
	clk.advance(250 * time.Millisecond)
	tb.Beat(2, time.Millisecond) // worker 2 keeps beating
	if trs := tb.Tick(); len(trs) != 0 {
		t.Fatalf("transitions below threshold: %+v", trs)
	}
	if got := stateOf(t, tb, 1); got != Active {
		t.Fatalf("worker 1 after 2 misses: %v, want active", got)
	}

	// Third missed interval: suspect.
	clk.advance(100 * time.Millisecond)
	trs := tb.Tick()
	if len(trs) != 1 || trs[0].Member.Index != 1 || trs[0].Member.State != Suspect || trs[0].From != Active {
		t.Fatalf("suspect transition: %+v", trs)
	}
	if got := stateOf(t, tb, 2); got != Active {
		t.Fatalf("beating worker 2 transitioned: %v", got)
	}

	// Sixth missed interval: dead. Worker 2 keeps beating and must not
	// transition.
	clk.advance(300 * time.Millisecond)
	tb.Beat(2, time.Millisecond)
	trs = tb.Tick()
	if len(trs) != 1 || trs[0].Member.State != Dead || trs[0].From != Suspect {
		t.Fatalf("dead transition: %+v", trs)
	}
	if c := tb.Counts(); c[Dead] != 1 || c[Active] != 1 {
		t.Fatalf("counts after death: %v", c)
	}
}

// TestFlappingWorkerRecovers drives a worker into suspect and back with
// a late pong — the suspect→active recovery edge — several times in a
// row, and verifies it never reaches dead, keeps its epoch, and counts
// no failover.
func TestFlappingWorkerRecovers(t *testing.T) {
	clk := newFakeClock()
	tb := newTestTable(clk, 1)

	var transitions []Transition
	tb.OnChange(func(tr Transition) { transitions = append(transitions, tr) })

	for round := 0; round < 3; round++ {
		clk.advance(350 * time.Millisecond) // 3 misses
		tb.Tick()
		if got := stateOf(t, tb, 1); got != Suspect {
			t.Fatalf("round %d: state %v, want suspect", round, got)
		}
		tb.Beat(1, 2*time.Millisecond)
		if got := stateOf(t, tb, 1); got != Active {
			t.Fatalf("round %d: state after recovery pong %v, want active", round, got)
		}
	}
	if len(transitions) != 6 {
		t.Fatalf("observer saw %d transitions, want 6 (3× suspect + 3× recover)", len(transitions))
	}
	m, _ := tb.Get(1)
	if m.Epoch != 1 {
		t.Fatalf("flapping changed epoch: %d", m.Epoch)
	}
	if f := tb.Failovers(); f != 0 {
		t.Fatalf("flapping counted %d failovers", f)
	}
}

// TestSlowButAliveNeverDies models a worker whose pongs always arrive
// late — just under the suspect window — over many probe cycles: it
// must never be marked suspect or dead.
func TestSlowButAliveNeverDies(t *testing.T) {
	clk := newFakeClock()
	tb := newTestTable(clk, 1)
	for i := 0; i < 50; i++ {
		clk.advance(250 * time.Millisecond) // 2 misses: inside the window
		tb.Tick()
		if got := stateOf(t, tb, 1); got != Active {
			t.Fatalf("cycle %d: slow worker marked %v", i, got)
		}
		tb.Beat(1, 240*time.Millisecond)
	}
	if count, sum := tb.RTTStats(); count != 50 || sum != 50*240*time.Millisecond {
		t.Fatalf("rtt summary: count %d sum %v", count, sum)
	}
}

// TestLinkDropOutranksHeartbeats: MarkDead (a dropped connection) kills
// a slot instantly, a zombie's late pong cannot resurrect it, and
// Activate (the re-placement) advances the epoch and failover counter.
func TestLinkDropOutranksHeartbeats(t *testing.T) {
	clk := newFakeClock()
	tb := newTestTable(clk, 1, 2)

	tb.MarkDead(1)
	if got := stateOf(t, tb, 1); got != Dead {
		t.Fatalf("after MarkDead: %v", got)
	}
	tb.Beat(1, time.Millisecond) // zombie pong
	if got := stateOf(t, tb, 1); got != Dead {
		t.Fatalf("zombie pong resurrected the slot: %v", got)
	}

	tb.Joining(1)
	if got := stateOf(t, tb, 1); got != Joining {
		t.Fatalf("after Joining: %v", got)
	}
	// A joining slot whose reinstall stalls is re-detected; worker 2
	// keeps beating through it.
	clk.advance(700 * time.Millisecond)
	tb.Beat(2, time.Millisecond)
	tb.Tick()
	if got := stateOf(t, tb, 1); got != Dead {
		t.Fatalf("stalled join not re-detected: %v", got)
	}

	tb.Joining(1)
	tb.Activate(1)
	m, _ := tb.Get(1)
	if m.State != Active || m.Epoch != 2 || m.Missed != 0 {
		t.Fatalf("after re-placement: %+v", m)
	}
	if f := tb.Failovers(); f != 1 {
		t.Fatalf("failovers: %d, want 1", f)
	}
	// The untouched worker rode through it all.
	if got := stateOf(t, tb, 2); got != Active {
		t.Fatalf("bystander worker: %v", got)
	}
}

// TestJoiningPongNeverActivates: a pong on a Joining slot proves the
// replacement is alive mid-reinstall — the stall clock refreshes — but
// must not activate the slot (its share may be partial): Active is
// reachable from Joining only through Activate. Nor may the detector
// route a join through Suspect, whose recovery pong would activate it
// the same way.
func TestJoiningPongNeverActivates(t *testing.T) {
	clk := newFakeClock()
	tb := newTestTable(clk, 1)
	var transitions []Transition
	tb.OnChange(func(tr Transition) { transitions = append(transitions, tr) })

	tb.MarkDead(1)
	tb.Joining(1)
	seen := len(transitions)

	// A mid-reinstall pong: state and observer must stay quiet.
	clk.advance(100 * time.Millisecond)
	tb.Beat(1, time.Millisecond)
	if got := stateOf(t, tb, 1); got != Joining {
		t.Fatalf("pong activated a joining slot: %v", got)
	}
	if len(transitions) != seen {
		t.Fatalf("pong on a joining slot emitted transitions: %+v", transitions[seen:])
	}

	// A long reinstall with live pongs is never re-detected — including
	// pongs arriving past the suspect threshold, where the old
	// Joining→Suspect→(pong)→Active path used to leak an activation.
	for i := 0; i < 10; i++ {
		clk.advance(400 * time.Millisecond) // 4 misses: past SuspectAfter
		tb.Tick()
		if got := stateOf(t, tb, 1); got != Joining {
			t.Fatalf("cycle %d: ponging joining slot left joining: %v", i, got)
		}
		tb.Beat(1, time.Millisecond)
		if got := stateOf(t, tb, 1); got != Joining {
			t.Fatalf("cycle %d: late pong activated a joining slot: %v", i, got)
		}
	}
	if len(transitions) != seen {
		t.Fatalf("mid-join detector/pong traffic emitted transitions: %+v", transitions[seen:])
	}

	tb.Activate(1)
	m, _ := tb.Get(1)
	if m.State != Active || m.Epoch != 2 || tb.Failovers() != 1 {
		t.Fatalf("after activate: %+v failovers=%d", m, tb.Failovers())
	}
}

// TestRejoinAfterHeartbeatDeath: a slot whose occupant died by heartbeat
// timeout carries a LastBeat that is already DeadAfter intervals stale;
// the join must restart the stall clock so the rejoin gets the full
// window instead of being re-killed on the first tick (which would
// livelock every rejoin attempt).
func TestRejoinAfterHeartbeatDeath(t *testing.T) {
	clk := newFakeClock()
	tb := newTestTable(clk, 1)

	clk.advance(700 * time.Millisecond) // 7 misses: detector declares death
	tb.Tick()
	if got := stateOf(t, tb, 1); got != Dead {
		t.Fatalf("heartbeat death: %v", got)
	}

	tb.Joining(1)
	if trs := tb.Tick(); len(trs) != 0 {
		t.Fatalf("rejoin killed on the first tick after joining: %+v", trs)
	}
	clk.advance(500 * time.Millisecond) // 5 misses: inside the join's window
	tb.Tick()
	if got := stateOf(t, tb, 1); got != Joining {
		t.Fatalf("rejoin killed inside its stall window: %v", got)
	}
	// A genuinely stalled join (no pong for the full window) still dies.
	clk.advance(100 * time.Millisecond)
	tb.Tick()
	if got := stateOf(t, tb, 1); got != Dead {
		t.Fatalf("stalled rejoin not re-detected: %v", got)
	}
}

// TestDrainingIsNotAFailure: a draining slot neither ticks toward dead
// nor answers beats, and never counts as a failover.
func TestDrainingIsNotAFailure(t *testing.T) {
	clk := newFakeClock()
	tb := newTestTable(clk, 1)
	tb.Draining(1)
	clk.advance(time.Hour)
	if trs := tb.Tick(); len(trs) != 0 {
		t.Fatalf("draining slot transitioned: %+v", trs)
	}
	tb.Activate(1)
	m, _ := tb.Get(1)
	if m.State != Active || m.Epoch != 1 || tb.Failovers() != 0 {
		t.Fatalf("drain re-activation: %+v failovers=%d", m, tb.Failovers())
	}
}

// TestConcurrentBeatsAndTicks hammers the table from racing beaters,
// tickers and readers — the -race gate for the detector's locking.
func TestConcurrentBeatsAndTicks(t *testing.T) {
	clk := newFakeClock()
	tb := newTestTable(clk, 1, 2, 3)
	tb.OnChange(func(Transition) {})

	var wg sync.WaitGroup
	for w := 1; w <= 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tb.Beat(w, time.Millisecond)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			clk.advance(10 * time.Millisecond)
			tb.Tick()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tb.Members()
			tb.Counts()
			tb.RTTStats()
		}
	}()
	wg.Wait()
}
