package ops

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/matrix"
)

func deltaWordsFromBytes(data []byte) []uint64 {
	out := make([]uint64, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, binary.BigEndian.Uint64(data))
		data = data[8:]
	}
	return out
}

func deltaBytesFromWords(ws []uint64) []byte {
	out := make([]byte, 8*len(ws))
	for i, w := range ws {
		binary.BigEndian.PutUint64(out[8*i:], w)
	}
	return out
}

func deltaMat(n, d int, base float64) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = base + float64(i*d+j)
		}
	}
	return m
}

// isDeltaErr reports whether err is one of the typed delta-payload errors
// — the only failures a malformed payload may surface as.
func isDeltaErr(err error) bool {
	return errors.Is(err, ErrDeltaTruncated) || errors.Is(err, ErrDeltaIndex) || errors.Is(err, ErrDeltaShape)
}

// TestDeltaPayloadRoundTrip: both payload kinds decode back to their
// inputs exactly.
func TestDeltaPayloadRoundTrip(t *testing.T) {
	delta := deltaMat(3, 4, 1)
	key, n0, d, got, err := ParseAppendRows(AppendRowsPayload(7, 10, 4, delta))
	if err != nil || key != 7 || n0 != 10 || d != 4 {
		t.Fatalf("append header drifted: key=%d n0=%d d=%d err=%v", key, n0, d, err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != delta.At(i, j) {
				t.Fatalf("append value (%d,%d) drifted", i, j)
			}
		}
	}

	idx := []int{2, 0, 2}
	rows := deltaMat(3, 4, 50)
	key, n, d, gotIdx, gotRows, err := ParseUpdateRows(UpdateRowsPayload(9, 6, 4, idx, rows))
	if err != nil || key != 9 || n != 6 || d != 4 || len(gotIdx) != 3 {
		t.Fatalf("update header drifted: key=%d n=%d d=%d idx=%v err=%v", key, n, d, gotIdx, err)
	}
	for k, i := range idx {
		if gotIdx[k] != i {
			t.Fatalf("update index %d drifted", k)
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if gotRows.At(i, j) != rows.At(i, j) {
				t.Fatalf("update value (%d,%d) drifted", i, j)
			}
		}
	}
}

// TestDeltaPayloadMalformed: every corruption class maps to its typed
// error.
func TestDeltaPayloadMalformed(t *testing.T) {
	appendGood := AppendRowsPayload(1, 5, 3, deltaMat(2, 3, 1))
	updateGood := UpdateRowsPayload(1, 5, 3, []int{0, 4}, deltaMat(2, 3, 1))

	appendCases := map[string]struct {
		params []uint64
		want   error
	}{
		"empty":         {nil, ErrDeltaTruncated},
		"header only":   {appendGood[:4], ErrDeltaTruncated},
		"short values":  {appendGood[:len(appendGood)-1], ErrDeltaTruncated},
		"trailing junk": {append(append([]uint64{}, appendGood...), 0), ErrDeltaTruncated},
		"zero cols":     {[]uint64{1, 5, 0, 2}, ErrDeltaShape},
		"zero delta":    {[]uint64{1, 5, 3, 0}, ErrDeltaShape},
		"absurd dims":   {[]uint64{1, 5, 1 << 40, 2}, ErrDeltaShape},
		"absurd n0":     {[]uint64{1, 1 << 40, 3, 2}, ErrDeltaShape},
	}
	for name, tc := range appendCases {
		if _, _, _, _, err := ParseAppendRows(tc.params); !errors.Is(err, tc.want) {
			t.Fatalf("append %s: got %v, want %v", name, err, tc.want)
		}
	}

	updateCases := map[string]struct {
		params []uint64
		want   error
	}{
		"empty":        {nil, ErrDeltaTruncated},
		"header only":  {updateGood[:4], ErrDeltaTruncated},
		"short values": {updateGood[:len(updateGood)-2], ErrDeltaTruncated},
		"zero rows":    {[]uint64{1, 0, 3, 1}, ErrDeltaShape},
		"zero k":       {[]uint64{1, 5, 3, 0}, ErrDeltaShape},
		"absurd k":     {[]uint64{1, 5, 3, 1 << 40}, ErrDeltaShape},
		"bad index": {func() []uint64 {
			p := append([]uint64{}, updateGood...)
			p[4] = 5 // == n: out of range
			return p
		}(), ErrDeltaIndex},
	}
	for name, tc := range updateCases {
		if _, _, _, _, _, err := ParseUpdateRows(tc.params); !errors.Is(err, tc.want) {
			t.Fatalf("update %s: got %v, want %v", name, err, tc.want)
		}
	}
}

// sameBitsOrBothSpecial compares decoded floats the way a re-encode can
// reproduce them: identical bits, or both zero (RowNNZ drops -0 to +0), or
// both NaN.
func sameBitsOrBothSpecial(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) ||
		(a == 0 && b == 0) ||
		(math.IsNaN(a) && math.IsNaN(b))
}

// FuzzParseAppendRows is the append payload's malformed-input gate:
// arbitrary word streams must either parse into a delta that re-encodes to
// an equivalent payload, or fail with a typed delta error — never panic,
// never allocate beyond the payload's own length.
func FuzzParseAppendRows(f *testing.F) {
	f.Add(deltaBytesFromWords(AppendRowsPayload(3, 8, 4, deltaMat(2, 4, 1))))
	f.Add(deltaBytesFromWords([]uint64{1, 0, 1, 1, math.Float64bits(-0.0)}))
	f.Add(deltaBytesFromWords([]uint64{1, 5, 1 << 40, 2}))
	f.Add(deltaBytesFromWords([]uint64{7, 0, 3, 2, 1, 2, 3, 4, 5})) // short values
	f.Add([]byte{0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		params := deltaWordsFromBytes(data)
		key, n0, d, delta, err := ParseAppendRows(params)
		if err != nil {
			if !isDeltaErr(err) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		re := AppendRowsPayload(key, n0, d, delta)
		if len(re) != len(params) {
			t.Fatalf("re-encode changed length: %d → %d", len(params), len(re))
		}
		key2, n02, d2, delta2, err := ParseAppendRows(re)
		if err != nil || key2 != key || n02 != n0 || d2 != d {
			t.Fatalf("re-encoded payload header drifted (err=%v)", err)
		}
		for i := 0; i < delta.Rows(); i++ {
			for j := 0; j < d; j++ {
				if !sameBitsOrBothSpecial(delta.At(i, j), delta2.At(i, j)) {
					t.Fatalf("value (%d,%d) not a fixed point: %x → %x", i, j,
						math.Float64bits(delta.At(i, j)), math.Float64bits(delta2.At(i, j)))
				}
			}
		}
	})
}

// FuzzParseUpdateRows is the same gate for update payloads, with the
// index-bound check in the loop.
func FuzzParseUpdateRows(f *testing.F) {
	f.Add(deltaBytesFromWords(UpdateRowsPayload(3, 8, 4, []int{1, 7, 1}, deltaMat(3, 4, 1))))
	f.Add(deltaBytesFromWords([]uint64{1, 2, 2, 1, 2, 0, 0})) // index == n
	f.Add(deltaBytesFromWords([]uint64{1, 0, 3, 1}))
	f.Add(deltaBytesFromWords([]uint64{9, 4, 2, 1, 0, math.Float64bits(1.5), math.Float64bits(-0.0)}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		params := deltaWordsFromBytes(data)
		key, n, d, idx, rows, err := ParseUpdateRows(params)
		if err != nil {
			if !isDeltaErr(err) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		for _, i := range idx {
			if i < 0 || i >= n {
				t.Fatalf("accepted index %d outside %d rows", i, n)
			}
		}
		re := UpdateRowsPayload(key, n, d, idx, rows)
		if len(re) != len(params) {
			t.Fatalf("re-encode changed length: %d → %d", len(params), len(re))
		}
		if _, _, _, _, _, err := ParseUpdateRows(re); err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
	})
}
