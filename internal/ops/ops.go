// Package ops is the protocol op vocabulary: the named share-side
// computations a server performs during the distributed protocols, with a
// wire-expressible parameter encoding for each. The CP-side protocol code
// (packages hh, zsampler, samplers, linearbaseline, core) expresses every
// per-server step as one of these ops inside a comm.Round; locally hosted
// servers execute the same builder functions in-process, and remote worker
// processes (internal/cluster) decode the parameters and execute them
// against their installed share — one implementation, two transports, so
// the two can never drift.
package ops

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/matrix"
	"repro/internal/sketch"
)

// Protocol opcodes. The values are part of the wire protocol; append, do
// not renumber.
const (
	OpNone uint16 = iota
	// OpFlatSketch: build one CountSketch of the local share.
	// Params: seed, depth, width.
	OpFlatSketch
	// OpBucketSketch: demultiplex the share into per-bucket CountSketches
	// over a pairwise-independent hash partition, optionally restricted to
	// a subsampled level set.
	// Params: repSeed, buckets, depth, width, hasFilter, gSeed, levels, minLevel.
	OpBucketSketch
	// OpDyadicSketch: build the dyadic CountSketch hierarchy of the share.
	// Params: seed, depth, width.
	OpDyadicSketch
	// OpRow: send the local dense row i. Params: i.
	OpRow
	// OpValue: send the local value at flattened coordinate j. Params: j.
	OpValue
	// OpShareDump: send the whole local share row-major (baselines).
	// Params: none.
	OpShareDump
	// OpLinearSketch: apply the shared Gaussian embedding S (t×n) to the
	// local share and send the t×d product. Params: seed, sketchRows.
	OpLinearSketch
	// OpInstallShare: setup — install a share a worker will serve, keyed
	// by dataset. Payload: dataset key, n, d, backend, chunk offset, total
	// values, then the chunk's row-major values. Never charged: the
	// protocol model assumes the data already resides on the servers.
	OpInstallShare
	// OpShutdown: setup — the worker exits its serve loop.
	OpShutdown
	// OpBindSession: setup — bind the frame's session namespace to the
	// dataset whose key is the single payload word; subsequent ops on the
	// session execute against that dataset's installed share.
	OpBindSession
	// OpEndSession: setup — tear down the frame's session binding. The
	// worker acknowledges after every earlier op of the session has
	// executed, so the coordinator can recycle the session id safely.
	OpEndSession
	// OpAbort: control — the coordinator canceled the frame's session
	// mid-run. The worker discards the session's still-queued ops without
	// executing or answering them (the op already executing cannot be
	// preempted, but its reply is discarded coordinator-side during
	// teardown) and still acknowledges the eventual OpEndSession.
	OpAbort
)

// Vec is a server's local share of a distributed vector v = Σ_t v^t.
// Implementations expose the global dimension and iterate local nonzeros.
type Vec interface {
	// Len is the dimension of the global vector.
	Len() uint64
	// ForEach calls f for every locally nonzero coordinate.
	ForEach(f func(j uint64, v float64))
	// At returns the local value at coordinate j (0 if absent).
	At(j uint64) float64
}

// DenseVec adapts a dense slice.
type DenseVec []float64

// Len returns the dimension.
func (d DenseVec) Len() uint64 { return uint64(len(d)) }

// ForEach iterates nonzero entries.
func (d DenseVec) ForEach(f func(j uint64, v float64)) {
	for j, v := range d {
		if v != 0 {
			f(uint64(j), v)
		}
	}
}

// At returns entry j.
func (d DenseVec) At(j uint64) float64 { return d[j] }

// MatVec flattens a matrix (any Mat backend) into a vector of dimension
// rows×cols without copying; coordinate j = i*cols + c. Iteration drains
// the backend's nonzero stream, so a CSR share is sketched in O(nnz) —
// and because the stream is backend-invariant (ascending columns, zeros
// skipped), the sketches and everything downstream are bit-identical
// between Dense and CSR shares of the same logical matrix.
type MatVec struct {
	M matrix.Mat
}

// Len returns rows×cols.
func (m MatVec) Len() uint64 { return uint64(m.M.Rows()) * uint64(m.M.Cols()) }

// ForEach iterates nonzero entries in row-major coordinate order.
func (m MatVec) ForEach(f func(j uint64, v float64)) {
	cols := m.M.Cols()
	// One closure for the whole matrix (capturing the mutable row base)
	// instead of one per row — this iterator feeds every sketch ingestion,
	// so a per-row allocation here is measurable across a protocol run.
	var base uint64
	emit := func(c int, v float64) { f(base+uint64(c), v) }
	for i := 0; i < m.M.Rows(); i++ {
		base = uint64(i) * uint64(cols)
		m.M.RowNNZ(i, emit)
	}
}

// At returns the value at flattened coordinate j.
func (m MatVec) At(j uint64) float64 {
	cols := uint64(m.M.Cols())
	return m.M.At(int(j/cols), int(j%cols))
}

// Filtered restricts a vector to coordinates where Keep returns true;
// this realizes the paper's v(S) restriction for subsets defined by shared
// hash functions, with no data movement.
type Filtered struct {
	Base Vec
	Keep func(j uint64) bool
}

// Len returns the base dimension (restriction keeps the index space).
func (fv Filtered) Len() uint64 { return fv.Base.Len() }

// ForEach iterates base nonzeros that pass the filter.
func (fv Filtered) ForEach(f func(j uint64, v float64)) {
	fv.Base.ForEach(func(j uint64, v float64) {
		if fv.Keep(j) {
			f(j, v)
		}
	})
}

// At returns the filtered value at j.
func (fv Filtered) At(j uint64) float64 {
	if fv.Keep(j) {
		return fv.Base.At(j)
	}
	return 0
}

// SumAt returns Σ_t locals[t].At(j), the true global coordinate value.
// Protocol code must charge communication when it uses this across
// servers (collectValue in package zsampler does — one OpValue round).
func SumAt(locals []Vec, j uint64) float64 {
	var s float64
	for _, v := range locals {
		s += v.At(j)
	}
	return s
}

// LevelFilter is the wire-expressible form of the Z-estimator's
// subsampled level sets: keep coordinate j iff its deepest survival level
// under the shared hash g (seeded gSeed, levels deep) is ≥ MinLevel.
// Every server can evaluate it from the three numbers alone — no
// communication describes the subset, exactly as the paper requires.
type LevelFilter struct {
	GSeed    int64
	Levels   int
	MinLevel int
}

// MaxLevelFromUnit maps a uniform unit hash value to the deepest level a
// coordinate survives: level ℓ keeps u ≤ 2^{-ℓ}. The single formula both
// the CP's precomputation and remote workers use.
func MaxLevelFromUnit(u float64, levels int) int {
	ml := levels
	if u > 0 {
		ml = int(math.Floor(-math.Log2(u)))
		if ml > levels {
			ml = levels
		}
		if ml < 0 {
			ml = 0
		}
	}
	return ml
}

// Keep materializes the filter's predicate.
func (lf *LevelFilter) Keep() func(j uint64) bool {
	g := hashing.SeededPolyHash(lf.GSeed, 8)
	min := lf.MinLevel
	levels := lf.Levels
	return func(j uint64) bool {
		return MaxLevelFromUnit(g.Unit(j), levels) >= min
	}
}

// --- Share-side builders -------------------------------------------------
//
// These produce exactly the payloads the protocols put on the wire. The
// CP-side protocol code calls them for locally hosted shares; the worker
// runtime calls them for its installed share.

// FlatSketch builds one CountSketch of the share. workers parallelizes
// ingestion across sketch rows (0 or 1 = sequential; bit-identical at any
// value, so it is a local knob, not a wire parameter).
func FlatSketch(v Vec, seed int64, depth, width, workers int) *sketch.CountSketch {
	cs := sketch.NewCountSketch(seed, depth, width)
	cs.UpdateBulk(workers, v.ForEach)
	return cs
}

// BucketSketches demultiplexes the share into buckets CountSketches over
// the pairwise-independent partition derived from repSeed (bucket e is
// seeded DeriveSeed(repSeed, e)).
func BucketSketches(v Vec, repSeed int64, buckets, depth, width int) []*sketch.CountSketch {
	part := hashing.SeededPolyHash(repSeed, 2)
	seeds := make([]int64, buckets)
	for e := range seeds {
		seeds[e] = hashing.DeriveSeed(repSeed, uint64(e))
	}
	out := sketch.NewCountSketchBlock(seeds, depth, width)
	v.ForEach(func(j uint64, val float64) {
		out[part.Bucket(j, buckets)].Update(j, val)
	})
	return out
}

// FlattenSketches appends every sketch's counter block, in order, to one
// wire payload.
func FlattenSketches(sks []*sketch.CountSketch) []float64 {
	var words int64
	for _, cs := range sks {
		words += cs.Words()
	}
	flat := make([]float64, 0, words)
	for _, cs := range sks {
		flat = cs.AppendFlat(flat)
	}
	return flat
}

// MergeFlat folds a flattened counter payload (as built by
// FlattenSketches) into the matching sketch set.
func MergeFlat(sks []*sketch.CountSketch, buf []float64) error {
	for _, cs := range sks {
		if int64(len(buf)) < cs.Words() {
			return fmt.Errorf("ops: sketch payload short by %d words", cs.Words()-int64(len(buf)))
		}
		buf = cs.AddFlat(buf)
	}
	if len(buf) != 0 {
		return fmt.Errorf("ops: sketch payload has %d trailing words", len(buf))
	}
	return nil
}

// Row assembles the share's dense row i.
func Row(m matrix.Mat, i int) ([]float64, error) {
	if i < 0 || i >= m.Rows() {
		return nil, fmt.Errorf("ops: row %d out of range [0,%d)", i, m.Rows())
	}
	out := make([]float64, m.Cols())
	m.RowNNZ(i, func(c int, v float64) { out[c] = v })
	return out, nil
}

// ShareDump flattens the whole share row-major.
func ShareDump(m matrix.Mat) []float64 {
	n, d := m.Rows(), m.Cols()
	out := make([]float64, n*d)
	for i := 0; i < n; i++ {
		base := i * d
		m.RowNNZ(i, func(c int, v float64) { out[base+c] = v })
	}
	return out
}

// GaussianSketch returns the t×n shared embedding with N(0, 1/t) entries
// every server rematerializes from the broadcast seed (the linear
// baseline's S).
func GaussianSketch(t, n int, seed int64) *matrix.Dense {
	rng := hashing.Seeded(hashing.DeriveSeed(seed, 0x11EA2))
	S := matrix.NewDense(t, n)
	inv := 1 / math.Sqrt(float64(t))
	for i := range S.Data() {
		S.Data()[i] = rng.NormFloat64() * inv
	}
	return S
}

// LinearSketch applies the shared embedding to the share: S·A^t, flattened
// row-major (t×d words).
func LinearSketch(m matrix.Mat, seed int64, sketchRows int) []float64 {
	S := GaussianSketch(sketchRows, m.Rows(), seed)
	return S.Mul(matrix.ToDense(m)).Data()
}

// --- Parameter packing ---------------------------------------------------

// FlatSketchParams packs OpFlatSketch parameters.
func FlatSketchParams(seed int64, depth, width int) []uint64 {
	return []uint64{uint64(seed), uint64(depth), uint64(width)}
}

// ParseFlatSketch unpacks OpFlatSketch parameters.
func ParseFlatSketch(params []uint64) (seed int64, depth, width int, err error) {
	if len(params) != 3 {
		return 0, 0, 0, fmt.Errorf("ops: flat sketch expects 3 params, got %d", len(params))
	}
	seed, depth, width = int64(params[0]), int(params[1]), int(params[2])
	if depth < 1 || width < 1 || depth > 1<<10 || width > 1<<24 {
		return 0, 0, 0, fmt.Errorf("ops: implausible sketch shape %d×%d", depth, width)
	}
	return seed, depth, width, nil
}

// BucketSketchParams packs OpBucketSketch parameters; filt may be nil.
func BucketSketchParams(repSeed int64, buckets, depth, width int, filt *LevelFilter) []uint64 {
	p := []uint64{uint64(repSeed), uint64(buckets), uint64(depth), uint64(width), 0, 0, 0, 0}
	if filt != nil {
		p[4] = 1
		p[5] = uint64(filt.GSeed)
		p[6] = uint64(filt.Levels)
		p[7] = uint64(filt.MinLevel)
	}
	return p
}

// ParseBucketSketch unpacks OpBucketSketch parameters.
func ParseBucketSketch(params []uint64) (repSeed int64, buckets, depth, width int, filt *LevelFilter, err error) {
	if len(params) != 8 {
		return 0, 0, 0, 0, nil, fmt.Errorf("ops: bucket sketch expects 8 params, got %d", len(params))
	}
	repSeed, buckets, depth, width = int64(params[0]), int(params[1]), int(params[2]), int(params[3])
	if buckets < 1 || buckets > 1<<20 || depth < 1 || width < 1 || depth > 1<<10 || width > 1<<24 {
		return 0, 0, 0, 0, nil, fmt.Errorf("ops: implausible bucket sketch shape %d buckets %d×%d", buckets, depth, width)
	}
	switch params[4] {
	case 0:
	case 1:
		filt = &LevelFilter{GSeed: int64(params[5]), Levels: int(params[6]), MinLevel: int(params[7])}
		if filt.Levels < 0 || filt.Levels > 64 || filt.MinLevel < 0 || filt.MinLevel > filt.Levels {
			return 0, 0, 0, 0, nil, fmt.Errorf("ops: implausible level filter %+v", *filt)
		}
	default:
		return 0, 0, 0, 0, nil, fmt.Errorf("ops: bad filter flag %d", params[4])
	}
	return repSeed, buckets, depth, width, filt, nil
}

// IndexParams packs a single index parameter (OpRow, OpValue).
func IndexParams(j uint64) []uint64 { return []uint64{j} }

// ParseIndex unpacks a single index parameter.
func ParseIndex(params []uint64) (uint64, error) {
	if len(params) != 1 {
		return 0, fmt.Errorf("ops: index op expects 1 param, got %d", len(params))
	}
	return params[0], nil
}

// LinearSketchParams packs OpLinearSketch parameters.
func LinearSketchParams(seed int64, sketchRows int) []uint64 {
	return []uint64{uint64(seed), uint64(sketchRows)}
}

// ParseLinearSketch unpacks OpLinearSketch parameters.
func ParseLinearSketch(params []uint64) (seed int64, sketchRows int, err error) {
	if len(params) != 2 {
		return 0, 0, fmt.Errorf("ops: linear sketch expects 2 params, got %d", len(params))
	}
	seed, sketchRows = int64(params[0]), int(params[1])
	if sketchRows < 1 || sketchRows > 1<<22 {
		return 0, 0, fmt.Errorf("ops: implausible embedding height %d", sketchRows)
	}
	return seed, sketchRows, nil
}
