// Package ops is the protocol op vocabulary: the named share-side
// computations a server performs during the distributed protocols, with a
// wire-expressible parameter encoding for each. The CP-side protocol code
// (packages hh, zsampler, samplers, linearbaseline, core) expresses every
// per-server step as one of these ops inside a comm.Round; locally hosted
// servers execute the same builder functions in-process, and remote worker
// processes (internal/cluster) decode the parameters and execute them
// against their installed share — one implementation, two transports, so
// the two can never drift.
package ops

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/matrix"
	"repro/internal/sketch"
	"repro/internal/warm"
)

// Protocol opcodes. The values are part of the wire protocol; append, do
// not renumber.
const (
	OpNone uint16 = iota
	// OpFlatSketch: build one CountSketch of the local share.
	// Params: seed, depth, width.
	OpFlatSketch
	// OpBucketSketch: demultiplex the share into per-bucket CountSketches
	// over a pairwise-independent hash partition, optionally restricted to
	// a subsampled level set.
	// Params: repSeed, buckets, depth, width, hasFilter, gSeed, levels, minLevel.
	OpBucketSketch
	// OpDyadicSketch: build the dyadic CountSketch hierarchy of the share.
	// Params: seed, depth, width.
	OpDyadicSketch
	// OpRow: send the local dense row i. Params: i.
	OpRow
	// OpValue: send the local value at flattened coordinate j. Params: j.
	OpValue
	// OpShareDump: send the whole local share row-major (baselines).
	// Params: none.
	OpShareDump
	// OpLinearSketch: apply the shared Gaussian embedding S (t×n) to the
	// local share and send the t×d product. Params: seed, sketchRows.
	OpLinearSketch
	// OpInstallShare: setup — install a share a worker will serve, keyed
	// by dataset. Payload: dataset key, n, d, backend, chunk offset, total
	// values, then the chunk's row-major values. Never charged: the
	// protocol model assumes the data already resides on the servers.
	OpInstallShare
	// OpShutdown: setup — the worker exits its serve loop.
	OpShutdown
	// OpBindSession: setup — bind the frame's session namespace to the
	// dataset whose key is the single payload word; subsequent ops on the
	// session execute against that dataset's installed share.
	OpBindSession
	// OpEndSession: setup — tear down the frame's session binding. The
	// worker acknowledges after every earlier op of the session has
	// executed, so the coordinator can recycle the session id safely.
	OpEndSession
	// OpAbort: control — the coordinator canceled the frame's session
	// mid-run. The worker discards the session's still-queued ops without
	// executing or answering them (the op already executing cannot be
	// preempted, but its reply is discarded coordinator-side during
	// teardown) and still acknowledges the eventual OpEndSession.
	OpAbort
	// OpAppendRows: setup — append delta rows below a worker's installed
	// share; the worker folds them into the resident share and its warm
	// sketches. Payload: dataset key, prior rows, cols, delta rows, then
	// the delta's row-major values. Charged under the "delta/append" tag.
	OpAppendRows
	// OpUpdateRows: setup — overwrite selected rows of a worker's
	// installed share; per-coordinate deltas are folded into warm
	// sketches. Payload: dataset key, rows, cols, index count, the
	// indices, then the replacement rows row-major. Charged under the
	// "delta/update" tag.
	OpUpdateRows
	// OpPing: control — a coordinator heartbeat probe. The worker answers
	// with an OpPong echoing the payload from its read loop, never from a
	// session runner, so a compute-busy worker still beats. Payload: probe
	// sequence number, coordinator send time (unix nanoseconds). Tallied
	// under the "ctl/heartbeat" control ledger, never the protocol word
	// ledger.
	OpPing
	// OpPong: control — the worker's heartbeat answer, echoing the probe's
	// sequence number and send time so the coordinator measures round-trip
	// time without clock agreement. Same accounting as OpPing.
	OpPong
)

// Vec is a server's local share of a distributed vector v = Σ_t v^t.
// Implementations expose the global dimension and iterate local nonzeros.
type Vec interface {
	// Len is the dimension of the global vector.
	Len() uint64
	// ForEach calls f for every locally nonzero coordinate.
	ForEach(f func(j uint64, v float64))
	// At returns the local value at coordinate j (0 if absent).
	At(j uint64) float64
}

// DenseVec adapts a dense slice.
type DenseVec []float64

// Len returns the dimension.
func (d DenseVec) Len() uint64 { return uint64(len(d)) }

// ForEach iterates nonzero entries.
func (d DenseVec) ForEach(f func(j uint64, v float64)) {
	for j, v := range d {
		if v != 0 {
			f(uint64(j), v)
		}
	}
}

// At returns entry j.
func (d DenseVec) At(j uint64) float64 { return d[j] }

// MatVec flattens a matrix (any Mat backend) into a vector of dimension
// rows×cols without copying; coordinate j = i*cols + c. Iteration drains
// the backend's nonzero stream, so a CSR share is sketched in O(nnz) —
// and because the stream is backend-invariant (ascending columns, zeros
// skipped), the sketches and everything downstream are bit-identical
// between Dense and CSR shares of the same logical matrix.
type MatVec struct {
	M matrix.Mat
}

// Len returns rows×cols.
func (m MatVec) Len() uint64 { return uint64(m.M.Rows()) * uint64(m.M.Cols()) }

// ForEach iterates nonzero entries in row-major coordinate order.
func (m MatVec) ForEach(f func(j uint64, v float64)) {
	cols := m.M.Cols()
	// One closure for the whole matrix (capturing the mutable row base)
	// instead of one per row — this iterator feeds every sketch ingestion,
	// so a per-row allocation here is measurable across a protocol run.
	var base uint64
	emit := func(c int, v float64) { f(base+uint64(c), v) }
	for i := 0; i < m.M.Rows(); i++ {
		base = uint64(i) * uint64(cols)
		m.M.RowNNZ(i, emit)
	}
}

// ForEachRows iterates nonzero entries of matrix rows [lo, hi) in
// row-major coordinate order — the same stream ForEach produces,
// restricted to a row range. It is the delta-ingestion primitive: folding
// rows [n₀, n) into a sketch built over [0, n₀) replays exactly the
// updates a full ForEach over n rows would have appended.
func (m MatVec) ForEachRows(lo, hi int, f func(j uint64, v float64)) {
	cols := m.M.Cols()
	var base uint64
	emit := func(c int, v float64) { f(base+uint64(c), v) }
	for i := lo; i < hi; i++ {
		base = uint64(i) * uint64(cols)
		m.M.RowNNZ(i, emit)
	}
}

// At returns the value at flattened coordinate j.
func (m MatVec) At(j uint64) float64 {
	cols := uint64(m.M.Cols())
	return m.M.At(int(j/cols), int(j%cols))
}

// warmSource reports whether v is a share wrapped with a live warm store,
// returning the MatVec and store when so. Only the plain matrix-backed
// vector qualifies — filtered or otherwise wrapped vectors take the cold
// path unless served through a filter-aware builder.
func warmSource(v Vec) (MatVec, *warm.Store, bool) {
	mv, ok := v.(MatVec)
	if !ok {
		return MatVec{}, nil, false
	}
	sh, ok := mv.M.(*warm.Share)
	if !ok || sh.Store() == nil {
		return MatVec{}, nil, false
	}
	return mv, sh.Store(), true
}

// Filtered restricts a vector to coordinates where Keep returns true;
// this realizes the paper's v(S) restriction for subsets defined by shared
// hash functions, with no data movement.
type Filtered struct {
	Base Vec
	Keep func(j uint64) bool
}

// Len returns the base dimension (restriction keeps the index space).
func (fv Filtered) Len() uint64 { return fv.Base.Len() }

// ForEach iterates base nonzeros that pass the filter.
func (fv Filtered) ForEach(f func(j uint64, v float64)) {
	fv.Base.ForEach(func(j uint64, v float64) {
		if fv.Keep(j) {
			f(j, v)
		}
	})
}

// At returns the filtered value at j.
func (fv Filtered) At(j uint64) float64 {
	if fv.Keep(j) {
		return fv.Base.At(j)
	}
	return 0
}

// SumAt returns Σ_t locals[t].At(j), the true global coordinate value.
// Protocol code must charge communication when it uses this across
// servers (collectValue in package zsampler does — one OpValue round).
func SumAt(locals []Vec, j uint64) float64 {
	var s float64
	for _, v := range locals {
		s += v.At(j)
	}
	return s
}

// LevelFilter is the wire-expressible form of the Z-estimator's
// subsampled level sets: keep coordinate j iff its deepest survival level
// under the shared hash g (seeded gSeed, levels deep) is ≥ MinLevel.
// Every server can evaluate it from the three numbers alone — no
// communication describes the subset, exactly as the paper requires.
type LevelFilter struct {
	GSeed    int64
	Levels   int
	MinLevel int
}

// MaxLevelFromUnit maps a uniform unit hash value to the deepest level a
// coordinate survives: level ℓ keeps u ≤ 2^{-ℓ}. The single formula both
// the CP's precomputation and remote workers use.
func MaxLevelFromUnit(u float64, levels int) int {
	ml := levels
	if u > 0 {
		ml = int(math.Floor(-math.Log2(u)))
		if ml > levels {
			ml = levels
		}
		if ml < 0 {
			ml = 0
		}
	}
	return ml
}

// Keep materializes the filter's predicate.
func (lf *LevelFilter) Keep() func(j uint64) bool {
	g := hashing.SeededPolyHash(lf.GSeed, 8)
	min := lf.MinLevel
	levels := lf.Levels
	return func(j uint64) bool {
		return MaxLevelFromUnit(g.Unit(j), levels) >= min
	}
}

// --- Share-side builders -------------------------------------------------
//
// These produce exactly the payloads the protocols put on the wire. The
// CP-side protocol code calls them for locally hosted shares; the worker
// runtime calls them for its installed share.

// FlatSketch builds one CountSketch of the share. workers parallelizes
// ingestion across sketch rows (0 or 1 = sequential; bit-identical at any
// value, so it is a local knob, not a wire parameter).
func FlatSketch(v Vec, seed int64, depth, width, workers int) *sketch.CountSketch {
	if mv, st, ok := warmSource(v); ok {
		sks := st.Serve(mv.M.Rows(),
			warm.Key{Kind: warm.KindFlat, Seed: seed, Depth: depth, Width: width},
			func() []*sketch.CountSketch {
				return []*sketch.CountSketch{sketch.NewCountSketch(seed, depth, width)}
			},
			func(sks []*sketch.CountSketch, lo, hi int) { mv.ForEachRows(lo, hi, sks[0].Update) },
			func(sks []*sketch.CountSketch, j uint64, delta float64) { sks[0].Update(j, delta) },
		)
		return sks[0]
	}
	cs := sketch.NewCountSketch(seed, depth, width)
	cs.UpdateBulk(workers, v.ForEach)
	return cs
}

// BucketSketches demultiplexes the share into buckets CountSketches over
// the pairwise-independent partition derived from repSeed (bucket e is
// seeded DeriveSeed(repSeed, e)).
func BucketSketches(v Vec, repSeed int64, buckets, depth, width int) []*sketch.CountSketch {
	part := hashing.SeededPolyHash(repSeed, 2)
	seeds := make([]int64, buckets)
	for e := range seeds {
		seeds[e] = hashing.DeriveSeed(repSeed, uint64(e))
	}
	out := sketch.NewCountSketchBlock(seeds, depth, width)
	v.ForEach(func(j uint64, val float64) {
		out[part.Bucket(j, buckets)].Update(j, val)
	})
	return out
}

// BucketSketchesFiltered is BucketSketches with the level-set restriction
// applied inside the builder — the warm-serveable form. keep is the
// ingestion predicate actually evaluated (a caller may pass a precomputed
// equivalent of filt.Keep(); nil means unfiltered) while filt carries the
// filter's wire parameters for the warm cache key; the two must agree.
// When v is a warm-wrapped share the bucket sketches are served from the
// store (built cold on a miss, folded forward over appended rows on a
// stale hit); otherwise the build is equivalent to
// BucketSketches(Filtered{v, keep}, ...).
func BucketSketchesFiltered(v Vec, repSeed int64, buckets, depth, width int, filt *LevelFilter, keep func(j uint64) bool) []*sketch.CountSketch {
	if filt != nil && keep == nil {
		keep = filt.Keep()
	}
	part := hashing.SeededPolyHash(repSeed, 2)
	ingestOne := func(sks []*sketch.CountSketch, j uint64, val float64) {
		if keep == nil || keep(j) {
			sks[part.Bucket(j, buckets)].Update(j, val)
		}
	}
	// A closure-only restriction (keep without filt) has no wire-expressible
	// identity to key a cache entry on, so it always builds cold.
	if mv, st, ok := warmSource(v); ok && (filt != nil || keep == nil) {
		k := warm.Key{Kind: warm.KindBucket, Seed: repSeed, Depth: depth, Width: width, Buckets: buckets}
		if filt != nil {
			k.Filtered = true
			k.GSeed = filt.GSeed
			k.Levels = filt.Levels
			k.MinLevel = uint8(filt.MinLevel)
		}
		return st.Serve(mv.M.Rows(), k,
			func() []*sketch.CountSketch {
				seeds := make([]int64, buckets)
				for e := range seeds {
					seeds[e] = hashing.DeriveSeed(repSeed, uint64(e))
				}
				return sketch.NewCountSketchBlock(seeds, depth, width)
			},
			func(sks []*sketch.CountSketch, lo, hi int) {
				mv.ForEachRows(lo, hi, func(j uint64, val float64) { ingestOne(sks, j, val) })
			},
			ingestOne,
		)
	}
	src := v
	if keep != nil {
		src = Filtered{Base: v, Keep: keep}
	}
	return BucketSketches(src, repSeed, buckets, depth, width)
}

// FlattenSketches appends every sketch's counter block, in order, to one
// wire payload.
func FlattenSketches(sks []*sketch.CountSketch) []float64 {
	var words int64
	for _, cs := range sks {
		words += cs.Words()
	}
	flat := make([]float64, 0, words)
	for _, cs := range sks {
		flat = cs.AppendFlat(flat)
	}
	return flat
}

// MergeFlat folds a flattened counter payload (as built by
// FlattenSketches) into the matching sketch set.
func MergeFlat(sks []*sketch.CountSketch, buf []float64) error {
	for _, cs := range sks {
		if int64(len(buf)) < cs.Words() {
			return fmt.Errorf("ops: sketch payload short by %d words", cs.Words()-int64(len(buf)))
		}
		buf = cs.AddFlat(buf)
	}
	if len(buf) != 0 {
		return fmt.Errorf("ops: sketch payload has %d trailing words", len(buf))
	}
	return nil
}

// Row assembles the share's dense row i.
func Row(m matrix.Mat, i int) ([]float64, error) {
	if i < 0 || i >= m.Rows() {
		return nil, fmt.Errorf("ops: row %d out of range [0,%d)", i, m.Rows())
	}
	out := make([]float64, m.Cols())
	m.RowNNZ(i, func(c int, v float64) { out[c] = v })
	return out, nil
}

// ShareDump flattens the whole share row-major.
func ShareDump(m matrix.Mat) []float64 {
	n, d := m.Rows(), m.Cols()
	out := make([]float64, n*d)
	for i := 0; i < n; i++ {
		base := i * d
		m.RowNNZ(i, func(c int, v float64) { out[base+c] = v })
	}
	return out
}

// GaussianSketch returns the t×n shared embedding with N(0, 1/t) entries
// every server rematerializes from the broadcast seed (the linear
// baseline's S).
func GaussianSketch(t, n int, seed int64) *matrix.Dense {
	rng := hashing.Seeded(hashing.DeriveSeed(seed, 0x11EA2))
	S := matrix.NewDense(t, n)
	inv := 1 / math.Sqrt(float64(t))
	for i := range S.Data() {
		S.Data()[i] = rng.NormFloat64() * inv
	}
	return S
}

// LinearSketch applies the shared embedding to the share: S·A^t, flattened
// row-major (t×d words).
func LinearSketch(m matrix.Mat, seed int64, sketchRows int) []float64 {
	S := GaussianSketch(sketchRows, m.Rows(), seed)
	return S.Mul(matrix.ToDense(m)).Data()
}

// --- Parameter packing ---------------------------------------------------

// FlatSketchParams packs OpFlatSketch parameters.
func FlatSketchParams(seed int64, depth, width int) []uint64 {
	return []uint64{uint64(seed), uint64(depth), uint64(width)}
}

// ParseFlatSketch unpacks OpFlatSketch parameters.
func ParseFlatSketch(params []uint64) (seed int64, depth, width int, err error) {
	if len(params) != 3 {
		return 0, 0, 0, fmt.Errorf("ops: flat sketch expects 3 params, got %d", len(params))
	}
	seed, depth, width = int64(params[0]), int(params[1]), int(params[2])
	if depth < 1 || width < 1 || depth > 1<<10 || width > 1<<24 {
		return 0, 0, 0, fmt.Errorf("ops: implausible sketch shape %d×%d", depth, width)
	}
	return seed, depth, width, nil
}

// BucketSketchParams packs OpBucketSketch parameters; filt may be nil.
func BucketSketchParams(repSeed int64, buckets, depth, width int, filt *LevelFilter) []uint64 {
	p := []uint64{uint64(repSeed), uint64(buckets), uint64(depth), uint64(width), 0, 0, 0, 0}
	if filt != nil {
		p[4] = 1
		p[5] = uint64(filt.GSeed)
		p[6] = uint64(filt.Levels)
		p[7] = uint64(filt.MinLevel)
	}
	return p
}

// ParseBucketSketch unpacks OpBucketSketch parameters.
func ParseBucketSketch(params []uint64) (repSeed int64, buckets, depth, width int, filt *LevelFilter, err error) {
	if len(params) != 8 {
		return 0, 0, 0, 0, nil, fmt.Errorf("ops: bucket sketch expects 8 params, got %d", len(params))
	}
	repSeed, buckets, depth, width = int64(params[0]), int(params[1]), int(params[2]), int(params[3])
	if buckets < 1 || buckets > 1<<20 || depth < 1 || width < 1 || depth > 1<<10 || width > 1<<24 {
		return 0, 0, 0, 0, nil, fmt.Errorf("ops: implausible bucket sketch shape %d buckets %d×%d", buckets, depth, width)
	}
	switch params[4] {
	case 0:
	case 1:
		filt = &LevelFilter{GSeed: int64(params[5]), Levels: int(params[6]), MinLevel: int(params[7])}
		if filt.Levels < 0 || filt.Levels > 64 || filt.MinLevel < 0 || filt.MinLevel > filt.Levels {
			return 0, 0, 0, 0, nil, fmt.Errorf("ops: implausible level filter %+v", *filt)
		}
	default:
		return 0, 0, 0, 0, nil, fmt.Errorf("ops: bad filter flag %d", params[4])
	}
	return repSeed, buckets, depth, width, filt, nil
}

// IndexParams packs a single index parameter (OpRow, OpValue).
func IndexParams(j uint64) []uint64 { return []uint64{j} }

// ParseIndex unpacks a single index parameter.
func ParseIndex(params []uint64) (uint64, error) {
	if len(params) != 1 {
		return 0, fmt.Errorf("ops: index op expects 1 param, got %d", len(params))
	}
	return params[0], nil
}

// LinearSketchParams packs OpLinearSketch parameters.
func LinearSketchParams(seed int64, sketchRows int) []uint64 {
	return []uint64{uint64(seed), uint64(sketchRows)}
}

// ParseLinearSketch unpacks OpLinearSketch parameters.
func ParseLinearSketch(params []uint64) (seed int64, sketchRows int, err error) {
	if len(params) != 2 {
		return 0, 0, fmt.Errorf("ops: linear sketch expects 2 params, got %d", len(params))
	}
	seed, sketchRows = int64(params[0]), int(params[1])
	if sketchRows < 1 || sketchRows > 1<<22 {
		return 0, 0, fmt.Errorf("ops: implausible embedding height %d", sketchRows)
	}
	return seed, sketchRows, nil
}

// --- Heartbeat payloads --------------------------------------------------

// HeartbeatParams packs an OpPing or OpPong payload: the probe sequence
// number and the coordinator's send time in unix nanoseconds. A pong
// echoes the ping's two words unchanged, so the coordinator derives the
// round-trip time from its own clock alone.
func HeartbeatParams(seq uint64, sentUnixNano int64) []uint64 {
	return []uint64{seq, uint64(sentUnixNano)}
}

// ParseHeartbeat unpacks an OpPing/OpPong payload.
func ParseHeartbeat(params []uint64) (seq uint64, sentUnixNano int64, err error) {
	if len(params) != 2 {
		return 0, 0, fmt.Errorf("ops: heartbeat expects 2 params, got %d", len(params))
	}
	return params[0], int64(params[1]), nil
}

// --- Delta-install payloads ----------------------------------------------

// Typed delta-payload errors. A malformed delta frame — fuzzed, truncated
// in transit, or built against a stale share shape — must surface as one
// of these, never as a panic in the worker's read loop.
var (
	// ErrDeltaTruncated reports a delta payload whose word count does not
	// match its own header (missing or trailing row values/indices).
	ErrDeltaTruncated = errors.New("ops: delta payload truncated")
	// ErrDeltaIndex reports an update index outside the target share.
	ErrDeltaIndex = errors.New("ops: delta update index out of range")
	// ErrDeltaShape reports implausible or inconsistent delta dimensions.
	ErrDeltaShape = errors.New("ops: implausible delta shape")
)

// maxDeltaDim bounds each delta dimension so a corrupt header cannot
// drive a multi-gigaword allocation before the length check runs.
const maxDeltaDim = 1 << 32

// AppendRowsPayload packs an OpAppendRows payload: the dataset key, the
// row count the share must currently have (n0), the column count, the
// delta row count, then the delta rows row-major as float bit patterns.
func AppendRowsPayload(key uint64, n0, d int, delta matrix.Mat) []uint64 {
	dn := delta.Rows()
	out := make([]uint64, 4, 4+dn*d)
	out[0], out[1], out[2], out[3] = key, uint64(n0), uint64(d), uint64(dn)
	for i := 0; i < dn; i++ {
		base := len(out)
		for j := 0; j < d; j++ {
			out = append(out, 0)
		}
		delta.RowNNZ(i, func(j int, v float64) { out[base+j] = math.Float64bits(v) })
	}
	return out
}

// ParseAppendRows unpacks and validates an OpAppendRows payload. The
// returned delta matrix is freshly allocated.
func ParseAppendRows(params []uint64) (key uint64, n0, d int, delta *matrix.Dense, err error) {
	if len(params) < 4 {
		return 0, 0, 0, nil, fmt.Errorf("%w: append header needs 4 words, got %d", ErrDeltaTruncated, len(params))
	}
	key = params[0]
	if params[1] >= maxDeltaDim || params[2] == 0 || params[2] >= maxDeltaDim || params[3] == 0 || params[3] >= maxDeltaDim {
		return 0, 0, 0, nil, fmt.Errorf("%w: append n0=%d d=%d dn=%d", ErrDeltaShape, params[1], params[2], params[3])
	}
	n0, d = int(params[1]), int(params[2])
	dn := int(params[3])
	if need := uint64(dn) * uint64(d); need != uint64(len(params)-4) {
		return 0, 0, 0, nil, fmt.Errorf("%w: append wants %d value words, got %d", ErrDeltaTruncated, need, len(params)-4)
	}
	data := make([]float64, dn*d)
	for i, w := range params[4:] {
		data[i] = math.Float64frombits(w)
	}
	return key, n0, d, matrix.NewDenseData(dn, d, data), nil
}

// UpdateDeltas computes the per-coordinate deltas (new−old) an update
// induces on the flattened vector, against the pre-update matrix m. The
// order is deterministic — indices in their given order (duplicates
// last-wins, matching matrix.UpdateRows), columns ascending within a row,
// zero deltas skipped — so folding them into shared-seed sketches
// produces the same bits on every server and transport.
func UpdateDeltas(m matrix.Mat, idx []int, rows matrix.Mat) (js []uint64, deltas []float64) {
	d := m.Cols()
	last := make(map[int]int, len(idx))
	for k, i := range idx {
		last[i] = k
	}
	oldRow := make([]float64, d)
	newRow := make([]float64, d)
	for k, i := range idx {
		if last[i] != k {
			continue
		}
		for j := range oldRow {
			oldRow[j], newRow[j] = 0, 0
		}
		m.RowNNZ(i, func(j int, v float64) { oldRow[j] = v })
		rows.RowNNZ(k, func(j int, v float64) { newRow[j] = v })
		base := uint64(i) * uint64(d)
		for j := 0; j < d; j++ {
			if dv := newRow[j] - oldRow[j]; dv != 0 {
				js = append(js, base+uint64(j))
				deltas = append(deltas, dv)
			}
		}
	}
	return js, deltas
}

// UpdateRowsPayload packs an OpUpdateRows payload: the dataset key, the
// share's row and column counts, the index count, the row indices, then
// the replacement rows row-major as float bit patterns.
func UpdateRowsPayload(key uint64, n, d int, idx []int, rows matrix.Mat) []uint64 {
	out := make([]uint64, 4, 4+len(idx)+len(idx)*d)
	out[0], out[1], out[2], out[3] = key, uint64(n), uint64(d), uint64(len(idx))
	for _, i := range idx {
		out = append(out, uint64(i))
	}
	for i := 0; i < rows.Rows(); i++ {
		base := len(out)
		for j := 0; j < d; j++ {
			out = append(out, 0)
		}
		rows.RowNNZ(i, func(j int, v float64) { out[base+j] = math.Float64bits(v) })
	}
	return out
}

// ParseUpdateRows unpacks and validates an OpUpdateRows payload, checking
// every index against the payload's declared row count.
func ParseUpdateRows(params []uint64) (key uint64, n, d int, idx []int, rows *matrix.Dense, err error) {
	if len(params) < 4 {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: update header needs 4 words, got %d", ErrDeltaTruncated, len(params))
	}
	key = params[0]
	if params[1] == 0 || params[1] >= maxDeltaDim || params[2] == 0 || params[2] >= maxDeltaDim || params[3] == 0 || params[3] >= maxDeltaDim {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: update n=%d d=%d k=%d", ErrDeltaShape, params[1], params[2], params[3])
	}
	n, d = int(params[1]), int(params[2])
	k := int(params[3])
	if need := uint64(k) + uint64(k)*uint64(d); need != uint64(len(params)-4) {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: update wants %d index+value words, got %d", ErrDeltaTruncated, need, len(params)-4)
	}
	idx = make([]int, k)
	for i, w := range params[4 : 4+k] {
		if w >= uint64(n) {
			return 0, 0, 0, nil, nil, fmt.Errorf("%w: index %d of %d rows", ErrDeltaIndex, w, n)
		}
		idx[i] = int(w)
	}
	data := make([]float64, k*d)
	for i, w := range params[4+k:] {
		data[i] = math.Float64frombits(w)
	}
	return key, n, d, idx, matrix.NewDenseData(k, d, data), nil
}
