// Package parallel provides the small concurrency substrate the protocol
// layers share: a bounded worker pool and deterministic parallel-for
// helpers whose results are bit-identical to a sequential run regardless
// of how the scheduler interleaves the workers.
//
// Determinism discipline: a loop body may only write to state owned by its
// own index (slice slot i, its own RNG), never to shared accumulators.
// Callers reduce the per-index results sequentially afterwards, so
// floating-point sums are accumulated in one fixed order. Randomized
// bodies use ForSeeded, which splits the root seed per task index — not
// per OS worker — so the random stream a task sees does not depend on
// which worker picked it up.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashing"
)

// Workers resolves a requested worker count: n > 0 is honored as given,
// anything else means "one per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs body(i) for every i in [0, n) on up to workers goroutines.
// workers ≤ 1 (or n ≤ 1) runs inline with no goroutines at all, so the
// sequential path is exactly the plain loop. Panics in any body propagate
// to the caller after all workers have stopped.
func For(workers, n int, body func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// ForSeeded is For with a deterministically split RNG per task: body(i)
// receives a *rand.Rand seeded from DeriveSeed(seed, i), so every index
// sees the same random stream whether the loop runs on one worker or
// sixteen.
func ForSeeded(workers, n int, seed int64, body func(i int, rng *rand.Rand)) {
	For(workers, n, func(i int) {
		body(i, hashing.Seeded(hashing.DeriveSeed(seed, uint64(i))))
	})
}

// Pool is a bounded worker pool for irregular task sets (tasks submitted
// while others run). Submit never blocks the caller beyond the bound;
// Wait blocks until every submitted task has finished.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu    sync.Mutex
	panic any
}

// NewPool creates a pool running at most workers tasks concurrently
// (workers ≤ 0 means one per CPU).
func NewPool(workers int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(workers))}
}

// Submit schedules task on the pool, blocking only while all workers are
// busy. Tasks must follow the package's determinism discipline if the
// caller needs reproducible results.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.sem <- struct{}{}
	go func() {
		defer p.wg.Done()
		defer func() { <-p.sem }()
		defer func() {
			if r := recover(); r != nil {
				p.mu.Lock()
				if p.panic == nil {
					p.panic = r
				}
				p.mu.Unlock()
			}
		}()
		task()
	}()
}

// Wait blocks until all submitted tasks complete, then re-panics the
// first task panic, if any.
func (p *Pool) Wait() {
	p.wg.Wait()
	p.mu.Lock()
	r := p.panic
	p.panic = nil
	p.mu.Unlock()
	if r != nil {
		panic(r)
	}
}
