package parallel

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int64, n)
		For(workers, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndTinyN(t *testing.T) {
	ran := 0
	For(4, 0, func(i int) { ran++ })
	if ran != 0 {
		t.Fatal("body ran for n=0")
	}
	For(4, 1, func(i int) { ran++ })
	if ran != 1 {
		t.Fatal("n=1 should run exactly once")
	}
}

func TestForSeededIsScheduleIndependent(t *testing.T) {
	const n = 64
	draw := func(workers int) []float64 {
		out := make([]float64, n)
		ForSeeded(workers, n, 42, func(i int, rng *rand.Rand) {
			out[i] = rng.Float64()
		})
		return out
	}
	sequential := draw(1)
	for _, workers := range []int{2, 8} {
		if got := draw(workers); !reflect.DeepEqual(got, sequential) {
			t.Fatalf("workers=%d produced a different random stream", workers)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	For(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("auto count must be at least 1")
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	var done int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { atomic.AddInt64(&done, 1) })
	}
	p.Wait()
	if done != 100 {
		t.Fatalf("ran %d of 100 tasks", done)
	}
	// The pool is reusable after Wait.
	p.Submit(func() { atomic.AddInt64(&done, 1) })
	p.Wait()
	if done != 101 {
		t.Fatal("pool not reusable after Wait")
	}
}

func TestPoolPanicPropagatesOnWait(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() { panic("task failure") })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Wait")
		}
	}()
	p.Wait()
}
