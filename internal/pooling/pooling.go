// Package pooling implements the P-norm (generalized mean) feature pooling
// pipeline of the paper's Caltech-101 / Scenes experiments (Sections VI-B
// and VIII, following Boureau–Ponce–LeCun, reference [13]).
//
// The pipeline the paper describes: densely extract local descriptors from
// each image, vector-quantize them against a codebook of size V into
// 1-of-V codes, and pool the codes of the same image with the generalized
// mean GM_p, so that image i gets the feature vector
//
//	F_i[v] = ( (1/m_i) Σ_patches 1{code(patch)=v}^p )^{1/p},
//
// which interpolates between average pooling (p=1), square-root pooling
// (p=2) and max pooling (p→∞).
//
// In the distributed setting each server pools its own share of an image's
// patches; the cross-server combination is again a GM, which is where the
// softmax sampler of Section VI-B comes in: server t locally raises its
// pooled entries to the p-th power and divides by s, and the implicit
// global matrix is f(x) = x^{1/p} of the sum.
package pooling

import (
	"errors"
	"math"

	"repro/internal/fn"
	"repro/internal/hashing"
	"repro/internal/matrix"
)

// Codes is a sparse representation of a bag of 1-of-V codes: for each image
// (row), the multiset of activated codewords.
type Codes struct {
	// V is the codebook size.
	V int
	// PerImage[i] lists the codeword index of every patch of image i.
	PerImage [][]int
}

// NumImages returns the number of images.
func (c *Codes) NumImages() int { return len(c.PerImage) }

// Histogram returns the n×V count matrix H with H[i][v] = #patches of
// image i assigned codeword v.
func (c *Codes) Histogram() *matrix.Dense {
	h := matrix.NewDense(len(c.PerImage), c.V)
	for i, patches := range c.PerImage {
		row := h.Row(i)
		for _, v := range patches {
			row[v]++
		}
	}
	return h
}

// Pool applies generalized-mean pooling with exponent p to the codes:
// F[i][v] = ((1/m_i)·Σ 1{code=v}^p)^{1/p} = (count(i,v)/m_i)^{1/p} for
// binary codes. p must be ≥ 1.
func (c *Codes) Pool(p float64) (*matrix.Dense, error) {
	if p < 1 {
		return nil, errors.New("pooling: exponent p must be >= 1")
	}
	out := matrix.NewDense(len(c.PerImage), c.V)
	for i, patches := range c.PerImage {
		if len(patches) == 0 {
			continue
		}
		row := out.Row(i)
		for _, v := range patches {
			row[v]++
		}
		inv := 1 / float64(len(patches))
		for v := range row {
			if row[v] > 0 {
				row[v] = math.Pow(row[v]*inv, 1/p)
			}
		}
	}
	return out, nil
}

// MaxPool returns the p→∞ limit: F[i][v] = 1 if any patch of image i maps
// to v (binary indicator), matching the paper's "simulating max pooling"
// reference for P=20.
func (c *Codes) MaxPool() *matrix.Dense {
	out := matrix.NewDense(len(c.PerImage), c.V)
	for i, patches := range c.PerImage {
		row := out.Row(i)
		for _, v := range patches {
			row[v] = 1
		}
	}
	return out
}

// Split partitions the patches of every image across s servers
// round-robin, modelling the paper's "each server locally pooled the
// binary codes of the same image": the global pooled matrix is the GM
// combination across servers.
func (c *Codes) Split(s int, seed int64) []*Codes {
	rng := hashing.Seeded(seed)
	out := make([]*Codes, s)
	for t := range out {
		out[t] = &Codes{V: c.V, PerImage: make([][]int, len(c.PerImage))}
	}
	for i, patches := range c.PerImage {
		perm := rng.Perm(len(patches))
		for idx, pi := range perm {
			t := idx % s
			out[t].PerImage[i] = append(out[t].PerImage[i], patches[pi])
		}
	}
	return out
}

// GMShares converts per-server pooled matrices into the summed-power
// encoding of the softmax model: share^t_ij = |pool^t_ij|^p / s, so that
// f(x) = x^{1/p} of the sum reproduces the cross-server generalized mean.
func GMShares(pools []*matrix.Dense, p float64) []*matrix.Dense {
	g := fn.GM{P: p}
	out := make([]*matrix.Dense, len(pools))
	for t, m := range pools {
		out[t] = m.Apply(func(x float64) float64 { return g.Prepare(x, len(pools)) })
	}
	return out
}

// GlobalGM computes the exact cross-server generalized mean matrix from
// per-server pooled matrices — the ground-truth implicit matrix A for
// error measurement.
func GlobalGM(pools []*matrix.Dense, p float64) *matrix.Dense {
	if len(pools) == 0 {
		return nil
	}
	n, v := pools[0].Dims()
	g := fn.GM{P: p}
	out := matrix.NewDense(n, v)
	raw := make([]float64, len(pools))
	for i := 0; i < n; i++ {
		for j := 0; j < v; j++ {
			for t, m := range pools {
				raw[t] = m.At(i, j)
			}
			out.Set(i, j, g.Value(raw))
		}
	}
	return out
}

// SyntheticCodes generates a corpus of 1-of-V codes with Zipfian codeword
// popularity and per-image topical concentration, standing in for the
// paper's SIFT + k-means pipeline on Caltech-101/Scenes (see DESIGN.md §4):
// what the pooling and sampling layers interact with is exactly this sparse
// skewed count structure, not the pixels.
func SyntheticCodes(images, v, patchesPerImage int, zipf float64, seed int64) *Codes {
	rng := hashing.Seeded(seed)
	// Zipfian codeword weights.
	weights := make([]float64, v)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), zipf)
		total += weights[i]
	}
	cum := make([]float64, v)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	draw := func() int {
		x := rng.Float64()
		lo, hi := 0, v-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	c := &Codes{V: v, PerImage: make([][]int, images)}
	for i := 0; i < images; i++ {
		// Each image concentrates on a few topical codewords plus global
		// Zipf background, mimicking real category structure.
		topics := make([]int, 4)
		for t := range topics {
			topics[t] = draw()
		}
		patches := make([]int, patchesPerImage)
		for pi := range patches {
			if rng.Float64() < 0.6 {
				patches[pi] = topics[rng.Intn(len(topics))]
			} else {
				patches[pi] = draw()
			}
		}
		c.PerImage[i] = patches
	}
	return c
}
