package pooling

import (
	"math"
	"testing"

	"repro/internal/fn"
	"repro/internal/matrix"
)

func smallCodes() *Codes {
	return &Codes{V: 4, PerImage: [][]int{
		{0, 0, 1, 2},
		{3, 3, 3, 3},
		{1},
	}}
}

func TestHistogram(t *testing.T) {
	h := smallCodes().Histogram()
	if h.At(0, 0) != 2 || h.At(0, 1) != 1 || h.At(1, 3) != 4 || h.At(2, 1) != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestPoolAveragePIsFrequencies(t *testing.T) {
	F, err := smallCodes().Pool(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(F.At(0, 0)-0.5) > 1e-12 || math.Abs(F.At(0, 2)-0.25) > 1e-12 {
		t.Fatalf("average pooling = %v", F)
	}
	if F.At(1, 3) != 1 {
		t.Fatal("single-code image should pool to 1")
	}
}

func TestPoolSquareRoot(t *testing.T) {
	F, err := smallCodes().Pool(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(F.At(0, 0)-math.Sqrt(0.5)) > 1e-12 {
		t.Fatalf("sqrt pooling = %g", F.At(0, 0))
	}
}

func TestPoolRejectsBadP(t *testing.T) {
	if _, err := smallCodes().Pool(0.5); err == nil {
		t.Fatal("p<1 accepted")
	}
}

func TestPoolEmptyImage(t *testing.T) {
	c := &Codes{V: 2, PerImage: [][]int{{}}}
	F, err := c.Pool(2)
	if err != nil {
		t.Fatal(err)
	}
	if F.FrobNorm2() != 0 {
		t.Fatal("empty image must pool to zeros")
	}
}

func TestMaxPoolBinary(t *testing.T) {
	F := smallCodes().MaxPool()
	want := matrix.FromRows([][]float64{{1, 1, 1, 0}, {0, 0, 0, 1}, {0, 1, 0, 0}})
	if !F.Equalf(want, 0) {
		t.Fatalf("maxpool = %v", F)
	}
}

// TestPoolApproachesMaxPool: pooled values increase with p toward the
// binary indicator (the paper's P=20 "simulating max pooling").
func TestPoolApproachesMaxPool(t *testing.T) {
	c := smallCodes()
	mx := c.MaxPool()
	prev := -1.0
	for _, p := range []float64{1, 2, 5, 20, 200} {
		F, err := c.Pool(p)
		if err != nil {
			t.Fatal(err)
		}
		v := F.At(0, 2) // frequency 1/4 rises toward 1
		if v < prev-1e-12 {
			t.Fatalf("pooling not monotone in p at %g", p)
		}
		prev = v
	}
	F, _ := c.Pool(200)
	diff := F.Sub(mx).MaxAbs()
	if diff > 0.01 {
		t.Fatalf("P=200 pooling differs from max pooling by %g", diff)
	}
}

func TestSplitPreservesMultiset(t *testing.T) {
	c := smallCodes()
	parts := c.Split(3, 7)
	if len(parts) != 3 {
		t.Fatal("split count")
	}
	for i := range c.PerImage {
		counts := make(map[int]int)
		for _, p := range parts {
			for _, v := range p.PerImage[i] {
				counts[v]++
			}
		}
		want := make(map[int]int)
		for _, v := range c.PerImage[i] {
			want[v]++
		}
		for v, n := range want {
			if counts[v] != n {
				t.Fatalf("image %d codeword %d: %d vs %d", i, v, counts[v], n)
			}
		}
	}
}

// TestGMSharesGlobalConsistency: f(Σ shares) must equal the exact
// cross-server GM, the identity the whole softmax pipeline rests on.
func TestGMSharesGlobalConsistency(t *testing.T) {
	c := SyntheticCodes(6, 8, 20, 1.0, 3)
	s := 4
	split := c.Split(s, 5)
	pools := make([]*matrix.Dense, s)
	for t2, part := range split {
		pool, err := part.Pool(5)
		if err != nil {
			t.Fatal(err)
		}
		pools[t2] = pool
	}
	shares := GMShares(pools, 5)
	sum := shares[0].Clone()
	for _, sh := range shares[1:] {
		sum.AddInPlace(sh)
	}
	g := fn.GM{P: 5}
	implicit := sum.Apply(g.Apply)
	exact := GlobalGM(pools, 5)
	if !implicit.Equalf(exact, 1e-9) {
		t.Fatal("f(Σ GMShares) != GlobalGM")
	}
}

func TestGlobalGMEmpty(t *testing.T) {
	if GlobalGM(nil, 2) != nil {
		t.Fatal("empty GlobalGM")
	}
}

func TestSyntheticCodesShape(t *testing.T) {
	c := SyntheticCodes(10, 16, 30, 1.1, 9)
	if c.NumImages() != 10 || c.V != 16 {
		t.Fatal("synthetic shape")
	}
	for i, patches := range c.PerImage {
		if len(patches) != 30 {
			t.Fatalf("image %d has %d patches", i, len(patches))
		}
		for _, v := range patches {
			if v < 0 || v >= 16 {
				t.Fatalf("codeword %d out of range", v)
			}
		}
	}
}

func TestSyntheticCodesDeterministic(t *testing.T) {
	a := SyntheticCodes(5, 8, 10, 1.0, 42)
	b := SyntheticCodes(5, 8, 10, 1.0, 42)
	for i := range a.PerImage {
		for j := range a.PerImage[i] {
			if a.PerImage[i][j] != b.PerImage[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestSyntheticCodesZipfSkew(t *testing.T) {
	// Strong Zipf: codeword 0 must be much more frequent than the median.
	c := SyntheticCodes(200, 64, 50, 1.3, 1)
	counts := make([]int, 64)
	for _, patches := range c.PerImage {
		for _, v := range patches {
			counts[v]++
		}
	}
	if counts[0] < 4*counts[32] {
		t.Fatalf("zipf skew weak: counts[0]=%d counts[32]=%d", counts[0], counts[32])
	}
}
