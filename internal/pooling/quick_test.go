package pooling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// TestQuickPoolBounds: pooled values always lie in [0,1] (frequencies to a
// power ≤ 1), and pooling preserves the support of the histogram.
func TestQuickPoolBounds(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + float64(pRaw%40)/2 // p ∈ [1, 20.5]
		c := SyntheticCodes(3+rng.Intn(5), 8, 5+rng.Intn(20), 1.0, seed)
		F, err := c.Pool(p)
		if err != nil {
			return false
		}
		h := c.Histogram()
		for i := 0; i < F.Rows(); i++ {
			for j := 0; j < F.Cols(); j++ {
				v := F.At(i, j)
				if v < 0 || v > 1+1e-12 {
					return false
				}
				if (v > 0) != (h.At(i, j) > 0) {
					return false // support must match the histogram
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplitGMIdentity: for any random split and exponent, the softmax
// identity f(Σ GMShares) = GlobalGM holds and the GM never exceeds the
// max of the per-server pools.
func TestQuickSplitGMIdentity(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + float64(pRaw%19) // p ∈ [1, 19]
		c := SyntheticCodes(3, 6, 10+rng.Intn(10), 1.0, seed)
		s := 2 + rng.Intn(3)
		parts := c.Split(s, seed+1)
		pools := make([]*matrix.Dense, s)
		for t2, part := range parts {
			pool, err := part.Pool(p)
			if err != nil {
				return false
			}
			pools[t2] = pool
		}
		shares := GMShares(pools, p)
		sum := shares[0].Clone()
		for _, sh := range shares[1:] {
			sum.AddInPlace(sh)
		}
		exact := GlobalGM(pools, p)
		for i := 0; i < exact.Rows(); i++ {
			for j := 0; j < exact.Cols(); j++ {
				// Identity: f(Σ shares) == GlobalGM.
				got := gmApply(sum.At(i, j), p)
				want := exact.At(i, j)
				if diff := got - want; diff > 1e-9*(1+want) || diff < -1e-9*(1+want) {
					return false
				}
				// GM ≤ max over server pools at this entry.
				mx := 0.0
				for _, pool := range pools {
					if v := pool.At(i, j); v > mx {
						mx = v
					}
				}
				if want > mx+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func gmApply(x, p float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, 1/p)
}
