// Package rff implements Gaussian random Fourier features (Rahimi–Recht,
// reference [10] of the paper) and their distributed expansion
// (Section VI-A).
//
// The Gaussian RBF kernel K(x,y) = exp(−‖x−y‖²/2) equals
// E_z[e^{izᵀx}·e^{−izᵀy}] for z ~ N(0, I). With samples z_1,…,z_d and
// phases b_j ~ U[0,2π), the feature map
//
//	φ̂(x)_j = √2·cos(z_jᵀx + b_j)
//
// satisfies E[φ̂(x)ᵀφ̂(y)]/d → K(x,y). Crucially for the distributed
// protocol, E[φ̂(x)_j²] = 1, so with d = Θ(log n) features every expanded
// row has squared norm Θ(d) with high probability — which is exactly why
// uniform row sampling works for PCA of the expansion.
//
// In the generalized partition model the raw matrix M = Σ_t M^t is itself
// implicit. The expansion A_ij = √2·cos((M_i Z)_j + b_j) is then an
// entrywise cos of a sum: each server computes M^t Z locally (sharing Z, b
// through a broadcast seed), and f(x) = √2·cos(x + b_j) is applied to the
// summed projections. This package provides both the local expansion and
// the shared-seed distributed transform.
package rff

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/hashing"
	"repro/internal/matrix"
)

// Map is a sampled random Fourier feature map: d directions and phases for
// inputs of dimension m.
type Map struct {
	// Z is the m×d matrix of Gaussian directions (each entry N(0,1/σ²)).
	Z *matrix.Dense
	// B holds the d uniform phases in [0, 2π).
	B []float64
	// Sigma is the kernel bandwidth: K(x,y) = exp(−‖x−y‖²/(2σ²)).
	Sigma float64
}

// NewMap samples a feature map with d features for m-dimensional inputs
// and bandwidth sigma, deterministically from seed.
func NewMap(m, d int, sigma float64, seed int64) (*Map, error) {
	if m < 1 || d < 1 {
		return nil, errors.New("rff: dimensions must be positive")
	}
	if sigma <= 0 {
		return nil, errors.New("rff: bandwidth must be positive")
	}
	rng := hashing.Seeded(seed)
	Z := matrix.NewDense(m, d)
	for i := 0; i < m; i++ {
		for j := 0; j < d; j++ {
			Z.Set(i, j, rng.NormFloat64()/sigma)
		}
	}
	B := make([]float64, d)
	for j := range B {
		B[j] = rng.Float64() * 2 * math.Pi
	}
	return &Map{Z: Z, B: B, Sigma: sigma}, nil
}

// Features returns the number of features d.
func (mp *Map) Features() int { return mp.Z.Cols() }

// InputDim returns the expected input dimension m.
func (mp *Map) InputDim() int { return mp.Z.Rows() }

// Kernel evaluates the exact Gaussian RBF kernel for this map's bandwidth.
func (mp *Map) Kernel(x, y []float64) float64 {
	var d2 float64
	for i := range x {
		diff := x[i] - y[i]
		d2 += diff * diff
	}
	return math.Exp(-d2 / (2 * mp.Sigma * mp.Sigma))
}

// ApplyRow expands one data point: φ̂(x)_j = √2·cos(xᵀZ_:,j + b_j).
func (mp *Map) ApplyRow(x []float64) []float64 {
	d := mp.Features()
	out := make([]float64, d)
	proj := projectRow(x, mp.Z)
	for j := 0; j < d; j++ {
		out[j] = math.Sqrt2 * math.Cos(proj[j]+mp.B[j])
	}
	return out
}

// Apply expands every row of the n×m matrix into an n×d feature matrix.
func (mp *Map) Apply(M *matrix.Dense) *matrix.Dense {
	n := M.Rows()
	out := matrix.NewDense(n, mp.Features())
	for i := 0; i < n; i++ {
		out.SetRow(i, mp.ApplyRow(M.Row(i)))
	}
	return out
}

// Project computes the pre-cosine projection M·Z (the linear part a server
// can evaluate locally in the distributed expansion).
func (mp *Map) Project(M *matrix.Dense) *matrix.Dense { return M.Mul(mp.Z) }

// CosineWithPhase applies the nonlinearity entrywise to a summed
// projection: A_ij = √2·cos(x + b_j). It is the column-indexed f of the
// generalized partition model for this application.
func (mp *Map) CosineWithPhase(j int, x float64) float64 {
	return math.Sqrt2 * math.Cos(x+mp.B[j])
}

// ApproxKernel estimates K(x,y) from the features: φ̂(x)ᵀφ̂(y)/d.
func (mp *Map) ApproxKernel(x, y []float64) float64 {
	fx := mp.ApplyRow(x)
	fy := mp.ApplyRow(y)
	return matrix.Dot(fx, fy) / float64(mp.Features())
}

func projectRow(x []float64, Z *matrix.Dense) []float64 {
	m, d := Z.Dims()
	if len(x) != m {
		panic("rff: input dimension mismatch")
	}
	out := make([]float64, d)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		zrow := Z.Row(i)
		for j, zij := range zrow {
			out[j] += xi * zij
		}
	}
	return out
}

// DistributedExpand expands the implicit matrix M = Σ_t locals[t] on every
// server: server t holds the projection locals[t]·Z plus its share b_j/s of
// the random phase, so that the implicit sum is (MZ)_ij + b_j and the
// expansion A_ij = √2·cos of that sum fits the generalized partition model
// with the *pure* entrywise cosine fn.SqrtTwoCos. The map travels as a
// one-word seed; Z and B are rematerialized locally by each server. The
// returned slice holds each server's local share.
func DistributedExpand(locals []*matrix.Dense, mp *Map) []*matrix.Dense {
	s := float64(len(locals))
	out := make([]*matrix.Dense, len(locals))
	for t, m := range locals {
		proj := mp.Project(m)
		n := proj.Rows()
		for i := 0; i < n; i++ {
			row := proj.Row(i)
			for j := range row {
				row[j] += mp.B[j] / s
			}
		}
		out[t] = proj
	}
	return out
}

// ExactExpansion materializes the ground-truth global expansion
// A_ij = √2·cos((MZ)_ij + b_j) for error measurement in tests and
// experiments.
func (mp *Map) ExactExpansion(M *matrix.Dense) *matrix.Dense {
	proj := mp.Project(M)
	n, d := proj.Dims()
	out := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		src := proj.Row(i)
		dst := out.Row(i)
		for j := 0; j < d; j++ {
			dst[j] = math.Sqrt2 * math.Cos(src[j]+mp.B[j])
		}
	}
	return out
}

// GaussianMixture draws n points in dimension m from c Gaussian clusters
// with the given spread — a convenience generator used by tests and
// examples to produce kernel-PCA-friendly data.
func GaussianMixture(n, m, c int, spread float64, seed int64) *matrix.Dense {
	rng := hashing.Seeded(seed)
	centers := make([][]float64, c)
	for i := range centers {
		centers[i] = make([]float64, m)
		for j := range centers[i] {
			centers[i][j] = rng.NormFloat64() * 3
		}
	}
	out := matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		ct := centers[i%c]
		row := out.Row(i)
		for j := range row {
			row[j] = ct[j] + rng.NormFloat64()*spread
		}
	}
	shuffleRows(out, rng)
	return out
}

func shuffleRows(m *matrix.Dense, rng *rand.Rand) {
	n := m.Rows()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		if i != j {
			ri, rj := m.Row(i), m.Row(j)
			for c := range ri {
				ri[c], rj[c] = rj[c], ri[c]
			}
		}
	}
}
