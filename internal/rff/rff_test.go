package rff

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(0, 4, 1, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := NewMap(4, 0, 1, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewMap(4, 4, 0, 1); err == nil {
		t.Fatal("sigma=0 accepted")
	}
}

func TestMapDeterministic(t *testing.T) {
	a, _ := NewMap(5, 8, 1, 42)
	b, _ := NewMap(5, 8, 1, 42)
	if !a.Z.Equalf(b.Z, 0) {
		t.Fatal("Z not deterministic")
	}
	for j := range a.B {
		if a.B[j] != b.B[j] {
			t.Fatal("B not deterministic")
		}
	}
}

// TestKernelApproximation is the Rahimi–Recht guarantee: the feature inner
// product converges to the RBF kernel.
func TestKernelApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mp, err := NewMap(10, 4096, 2.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, 10)
		y := make([]float64, 10)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		exact := mp.Kernel(x, y)
		approx := mp.ApproxKernel(x, y)
		if math.Abs(exact-approx) > 0.12 {
			t.Fatalf("kernel %g vs approx %g", exact, approx)
		}
	}
}

func TestKernelSelfIsOne(t *testing.T) {
	mp, _ := NewMap(4, 64, 1, 3)
	x := []float64{1, 2, 3, 4}
	if math.Abs(mp.Kernel(x, x)-1) > 1e-12 {
		t.Fatal("K(x,x) != 1")
	}
}

// TestRowNormConcentration is the property that justifies uniform sampling
// (Section VI-A): ‖φ̂(x)‖² = Θ(d) for every point.
func TestRowNormConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const d = 256
	mp, _ := NewMap(8, d, 1.5, 11)
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 8)
		for i := range x {
			x[i] = rng.NormFloat64() * 3
		}
		f := mp.ApplyRow(x)
		norm2 := matrix.Norm2(f)
		// E = d; demand within 40%.
		if norm2 < 0.6*d || norm2 > 1.4*d {
			t.Fatalf("row norm² = %g, want ≈ %d", norm2, d)
		}
	}
}

func TestApplyMatchesApplyRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mp, _ := NewMap(6, 12, 1, 5)
	M := matrix.NewDense(4, 6)
	for i := range M.Data() {
		M.Data()[i] = rng.NormFloat64()
	}
	A := mp.Apply(M)
	for i := 0; i < 4; i++ {
		row := mp.ApplyRow(M.Row(i))
		for j := range row {
			if math.Abs(A.At(i, j)-row[j]) > 1e-12 {
				t.Fatal("Apply != ApplyRow")
			}
		}
	}
}

// TestDistributedExpandConsistency: the sum of the distributed shares must
// equal MZ + b, so that √2·cos of the sum is the true expansion.
func TestDistributedExpandConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mp, _ := NewMap(5, 7, 1, 9)
	M := matrix.NewDense(6, 5)
	for i := range M.Data() {
		M.Data()[i] = rng.NormFloat64()
	}
	// Additive split of M.
	s := 3
	parts := make([]*matrix.Dense, s)
	for t2 := range parts {
		parts[t2] = matrix.NewDense(6, 5)
	}
	for idx := range M.Data() {
		var acc float64
		for t2 := 0; t2 < s-1; t2++ {
			sh := rng.NormFloat64()
			parts[t2].Data()[idx] = sh
			acc += sh
		}
		parts[s-1].Data()[idx] = M.Data()[idx] - acc
	}
	shares := DistributedExpand(parts, mp)
	sum := shares[0].Clone()
	for _, sh := range shares[1:] {
		sum.AddInPlace(sh)
	}
	want := mp.Project(M)
	for i := 0; i < 6; i++ {
		for j := 0; j < 7; j++ {
			if math.Abs(sum.At(i, j)-(want.At(i, j)+mp.B[j])) > 1e-9 {
				t.Fatalf("share sum (%d,%d) = %g, want %g", i, j, sum.At(i, j), want.At(i, j)+mp.B[j])
			}
		}
	}
	// And √2·cos of the sum equals the exact expansion.
	exact := mp.ExactExpansion(M)
	for i := 0; i < 6; i++ {
		for j := 0; j < 7; j++ {
			got := math.Sqrt2 * math.Cos(sum.At(i, j))
			if math.Abs(got-exact.At(i, j)) > 1e-9 {
				t.Fatal("cos of summed shares != exact expansion")
			}
		}
	}
}

func TestExactExpansionMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mp, _ := NewMap(4, 9, 2, 13)
	M := matrix.NewDense(5, 4)
	for i := range M.Data() {
		M.Data()[i] = rng.NormFloat64()
	}
	if !mp.ExactExpansion(M).Equalf(mp.Apply(M), 1e-10) {
		t.Fatal("ExactExpansion != Apply")
	}
}

func TestGaussianMixtureShape(t *testing.T) {
	M := GaussianMixture(30, 5, 3, 0.5, 17)
	if M.Rows() != 30 || M.Cols() != 5 {
		t.Fatal("mixture shape")
	}
	// Deterministic.
	if !M.Equalf(GaussianMixture(30, 5, 3, 0.5, 17), 0) {
		t.Fatal("mixture not deterministic")
	}
}

func TestProjectDims(t *testing.T) {
	mp, _ := NewMap(3, 6, 1, 1)
	if mp.Features() != 6 || mp.InputDim() != 3 {
		t.Fatal("accessors")
	}
	P := mp.Project(matrix.NewDense(2, 3))
	if P.Rows() != 2 || P.Cols() != 6 {
		t.Fatal("project dims")
	}
}

func TestCosineWithPhase(t *testing.T) {
	mp, _ := NewMap(2, 3, 1, 2)
	got := mp.CosineWithPhase(1, 0.5)
	want := math.Sqrt2 * math.Cos(0.5+mp.B[1])
	if math.Abs(got-want) > 1e-12 {
		t.Fatal("cosine with phase")
	}
}
