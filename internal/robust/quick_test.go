package robust

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// TestQuickPartitionsSumExactly: for any matrix and server count, both
// partition schemes reconstruct the original by summation.
func TestQuickPartitionsSumExactly(t *testing.T) {
	f := func(seed int64, sRaw, nRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 2 + int(sRaw%6)
		n := 1 + int(nRaw%12)
		d := 1 + int(dRaw%8)
		M := matrix.NewDense(n, d)
		for i := range M.Data() {
			M.Data()[i] = rng.NormFloat64() * 10
		}
		arb := ArbitraryPartition(M, s, seed+1)
		if !SumPartitions(arb).Equalf(M, 1e-8) {
			return false
		}
		row := RowPartition(M, s, seed+2)
		return SumPartitions(row).Equalf(M, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCorruptInvariants: corruption changes exactly `count` entries,
// each to ±magnitude, and never touches others.
func TestQuickCorruptInvariants(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 6+int(cRaw%5), 5
		M := matrix.NewDense(n, d)
		for i := range M.Data() {
			M.Data()[i] = rng.NormFloat64()
		}
		count := 1 + int(cRaw%7)
		out, rec, err := Corrupt(M, count, 1e3, seed+3)
		if err != nil {
			return false
		}
		changed := 0
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				if out.At(i, j) != M.At(i, j) {
					changed++
					if out.At(i, j) != 1e3 && out.At(i, j) != -1e3 {
						return false
					}
				}
			}
		}
		// Records match (an injected value may coincide with the original
		// only with probability 0 for Gaussian entries).
		return changed == count && len(rec.Rows) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
