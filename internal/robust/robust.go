// Package robust provides the robust PCA setup of Sections VI-C and VIII:
// a feature matrix is contaminated with a small number of extremely large
// entries, arbitrarily partitioned across servers (so no single server can
// detect the corruption locally), and an M-estimator ψ-function applied
// entrywise to the implicit sum caps the damaged entries while preserving
// the rest — turning the additive-error PCA framework into a robust PCA.
package robust

import (
	"errors"

	"repro/internal/hashing"
	"repro/internal/matrix"
)

// Corruption records where outliers were injected, for evaluation.
type Corruption struct {
	Rows, Cols []int
	Original   []float64
	Injected   []float64
}

// Corrupt sets `count` random entries of a copy of M to ±magnitude,
// returning the corrupted matrix and the corruption record. This matches
// the paper's isolet protocol: "we randomly changed values of 50 entries of
// the feature matrix to be extremely large".
func Corrupt(M *matrix.Dense, count int, magnitude float64, seed int64) (*matrix.Dense, *Corruption, error) {
	n, d := M.Dims()
	if count > n*d {
		return nil, nil, errors.New("robust: more corruptions than entries")
	}
	rng := hashing.Seeded(seed)
	out := M.Clone()
	c := &Corruption{}
	seen := make(map[int]struct{})
	for len(c.Rows) < count {
		pos := rng.Intn(n * d)
		if _, dup := seen[pos]; dup {
			continue
		}
		seen[pos] = struct{}{}
		i, j := pos/d, pos%d
		v := magnitude
		if rng.Intn(2) == 0 {
			v = -magnitude
		}
		c.Rows = append(c.Rows, i)
		c.Cols = append(c.Cols, j)
		c.Original = append(c.Original, out.At(i, j))
		c.Injected = append(c.Injected, v)
		out.Set(i, j, v)
	}
	return out, c, nil
}

// ArbitraryPartition splits M into s local matrices summing to M, with
// random per-entry splits — the paper's "we arbitrarily partitioned the
// matrix into different servers. Since we can arbitrarily partition the
// matrix, a server may not know whether an entry is abnormally large."
// Each entry's value is distributed across servers with random signed
// shares that cancel to the true value.
func ArbitraryPartition(M *matrix.Dense, s int, seed int64) []*matrix.Dense {
	n, d := M.Dims()
	rng := hashing.Seeded(seed)
	out := make([]*matrix.Dense, s)
	for t := range out {
		out[t] = matrix.NewDense(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := M.At(i, j)
			var acc float64
			for t := 0; t < s-1; t++ {
				share := rng.NormFloat64() * 0.25 * (1 + absf(v))
				out[t].Set(i, j, share)
				acc += share
			}
			out[s-1].Set(i, j, v-acc)
		}
	}
	return out
}

// RowPartition splits M across s servers by rows (server t gets rows
// i ≡ t mod s; other servers hold zeros there), a benign partition used by
// the Fourier feature experiments ("we randomly distributed the original
// data to different servers").
func RowPartition(M *matrix.Dense, s int, seed int64) []*matrix.Dense {
	n, d := M.Dims()
	rng := hashing.Seeded(seed)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(s)
	}
	out := make([]*matrix.Dense, s)
	for t := range out {
		out[t] = matrix.NewDense(n, d)
	}
	for i := 0; i < n; i++ {
		out[assign[i]].SetRow(i, M.Row(i))
	}
	return out
}

// SumPartitions reassembles Σ_t locals[t], for test assertions.
func SumPartitions(locals []*matrix.Dense) *matrix.Dense {
	if len(locals) == 0 {
		return nil
	}
	out := locals[0].Clone()
	for _, m := range locals[1:] {
		out.AddInPlace(m)
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
