package robust

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func randomMatrix(rng *rand.Rand, n, d int) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func TestCorruptCountAndMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	M := randomMatrix(rng, 20, 10)
	out, c, err := Corrupt(M, 15, 1e4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 15 {
		t.Fatalf("%d corruptions", len(c.Rows))
	}
	for i := range c.Rows {
		got := out.At(c.Rows[i], c.Cols[i])
		if math.Abs(got) != 1e4 {
			t.Fatalf("corrupted entry %g", got)
		}
		if got != c.Injected[i] {
			t.Fatal("record mismatch")
		}
	}
	// Original untouched.
	if M.MaxAbs() > 100 {
		t.Fatal("Corrupt mutated its input")
	}
	// Distinct positions.
	seen := map[[2]int]bool{}
	for i := range c.Rows {
		key := [2]int{c.Rows[i], c.Cols[i]}
		if seen[key] {
			t.Fatal("duplicate corruption position")
		}
		seen[key] = true
	}
}

func TestCorruptPreservesOthers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	M := randomMatrix(rng, 10, 10)
	out, c, err := Corrupt(M, 5, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := map[[2]int]bool{}
	for i := range c.Rows {
		corrupted[[2]int{c.Rows[i], c.Cols[i]}] = true
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if !corrupted[[2]int{i, j}] && out.At(i, j) != M.At(i, j) {
				t.Fatal("uncorrupted entry changed")
			}
		}
	}
}

func TestCorruptTooMany(t *testing.T) {
	if _, _, err := Corrupt(matrix.NewDense(2, 2), 5, 1, 1); err == nil {
		t.Fatal("over-corruption accepted")
	}
}

func TestArbitraryPartitionSums(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	M := randomMatrix(rng, 15, 8)
	parts := ArbitraryPartition(M, 5, 9)
	if len(parts) != 5 {
		t.Fatal("partition count")
	}
	if !SumPartitions(parts).Equalf(M, 1e-9) {
		t.Fatal("partition does not sum to original")
	}
}

// TestArbitraryPartitionHidesOutliers: with value-proportional share noise,
// a single server's view of a corrupted entry should not reveal the true
// magnitude (shares are spread across servers).
func TestArbitraryPartitionHidesOutliers(t *testing.T) {
	M := matrix.NewDense(4, 4)
	M.Set(2, 2, 1e4)
	parts := ArbitraryPartition(M, 6, 11)
	// No single server should hold the outlier exactly; shares differ from
	// the true value.
	exactHolders := 0
	for _, p := range parts {
		if p.At(2, 2) == 1e4 {
			exactHolders++
		}
	}
	if exactHolders > 0 {
		t.Fatal("a server holds the outlier verbatim")
	}
	if !SumPartitions(parts).Equalf(M, 1e-6) {
		t.Fatal("sum broken")
	}
}

func TestRowPartitionExactRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	M := randomMatrix(rng, 12, 6)
	parts := RowPartition(M, 3, 13)
	if !SumPartitions(parts).Equalf(M, 0) {
		t.Fatal("row partition does not sum to original")
	}
	// Every row lives on exactly one server.
	for i := 0; i < 12; i++ {
		holders := 0
		for _, p := range parts {
			if p.RowNorm2(i) > 0 {
				holders++
			}
		}
		if holders > 1 {
			t.Fatalf("row %d on %d servers", i, holders)
		}
	}
}

func TestSumPartitionsEmpty(t *testing.T) {
	if SumPartitions(nil) != nil {
		t.Fatal("empty sum")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	M := randomMatrix(rng, 6, 4)
	a := ArbitraryPartition(M, 3, 42)
	b := ArbitraryPartition(M, 3, 42)
	for t2 := range a {
		if !a[t2].Equalf(b[t2], 0) {
			t.Fatal("partition not deterministic")
		}
	}
}
