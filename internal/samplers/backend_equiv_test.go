package samplers

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/matrix"
	"repro/internal/zsampler"
)

// sparseRowPartition builds a random sparse n×d matrix and row-partitions
// it across s servers, returning the shares in both backends (identical
// logical matrices).
func sparseRowPartition(rng *rand.Rand, n, d, s int, density float64) (dense, csr []matrix.Mat) {
	shares := make([][]matrix.Triple, s)
	for i := 0; i < n; i++ {
		t := rng.Intn(s)
		for j := 0; j < d; j++ {
			if rng.Float64() < density {
				shares[t] = append(shares[t], matrix.Triple{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	dense = make([]matrix.Mat, s)
	csr = make([]matrix.Mat, s)
	for t := 0; t < s; t++ {
		c := matrix.NewCSR(n, d, shares[t])
		csr[t] = c
		dense[t] = matrix.ToDense(c)
	}
	return dense, csr
}

type drawRecord struct {
	row  int
	qhat float64
	raw  []float64
}

// runZRow executes one traced ZRow session and returns the draws, the total
// words and the full message transcript.
func runZRow(t *testing.T, locals []matrix.Mat, draws int) ([]drawRecord, int64, []comm.Message) {
	t.Helper()
	net := comm.NewNetwork(len(locals))
	net.EnableTrace()
	p := zsampler.ParamsForBudget(1<<14, len(locals), locals[0].Rows()*locals[0].Cols(), 99)
	zr, err := NewZRow(context.Background(), net, locals, fn.Identity{}, p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]drawRecord, draws)
	for i := range out {
		s, err := zr.Draw(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = drawRecord{row: s.Row, qhat: s.QHat, raw: s.RawRow}
	}
	return out, net.Words(), net.Transcript()
}

// TestZRowBackendBitIdentical is the backend contract at the protocol
// level: the same logical shares stored dense vs CSR must produce the
// exact same draws (indices, Q̂ and raw rows, bitwise) and the exact same
// communication transcript — RNG consumption, message order, tags and
// word counts included.
func TestZRowBackendBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	denseLocals, csrLocals := sparseRowPartition(rng, 150, 12, 3, 0.08)
	dd, dWords, dTrace := runZRow(t, denseLocals, 25)
	cd, cWords, cTrace := runZRow(t, csrLocals, 25)

	if dWords != cWords {
		t.Fatalf("words differ: dense %d, csr %d", dWords, cWords)
	}
	if len(dTrace) != len(cTrace) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(dTrace), len(cTrace))
	}
	for i := range dTrace {
		if dTrace[i] != cTrace[i] {
			t.Fatalf("transcript message %d differs: %+v vs %+v", i, dTrace[i], cTrace[i])
		}
	}
	for i := range dd {
		if dd[i].row != cd[i].row || dd[i].qhat != cd[i].qhat {
			t.Fatalf("draw %d differs: dense (row %d, q %v), csr (row %d, q %v)",
				i, dd[i].row, dd[i].qhat, cd[i].row, cd[i].qhat)
		}
		for j := range dd[i].raw {
			if dd[i].raw[j] != cd[i].raw[j] {
				t.Fatalf("draw %d raw[%d] differs bitwise", i, j)
			}
		}
	}
}

// TestUniformBackendBitIdentical covers the uniform sampler's row
// collection path the same way.
func TestUniformBackendBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	denseLocals, csrLocals := sparseRowPartition(rng, 60, 9, 4, 0.1)
	run := func(locals []matrix.Mat) ([]drawRecord, int64) {
		net := comm.NewNetwork(len(locals))
		u, err := NewUniform(net, locals, 11)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]drawRecord, 40)
		for i := range out {
			s, err := u.Draw(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			out[i] = drawRecord{row: s.Row, qhat: s.QHat, raw: s.RawRow}
		}
		return out, net.Words()
	}
	dd, dw := run(denseLocals)
	cd, cw := run(csrLocals)
	if dw != cw {
		t.Fatalf("words differ: %d vs %d", dw, cw)
	}
	for i := range dd {
		if dd[i].row != cd[i].row {
			t.Fatalf("draw %d row differs", i)
		}
		for j := range dd[i].raw {
			if dd[i].raw[j] != cd[i].raw[j] {
				t.Fatalf("draw %d raw[%d] differs bitwise", i, j)
			}
		}
	}
}

// TestFullProtocolBackendBitIdentical drives Algorithm 1 end to end on both
// backends and demands bitwise-equal projection matrices.
func TestFullProtocolBackendBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	denseLocals, csrLocals := sparseRowPartition(rng, 100, 10, 2, 0.1)
	run := func(locals []matrix.Mat) *matrix.Dense {
		net := comm.NewNetwork(len(locals))
		p := zsampler.ParamsForBudget(1<<13, len(locals), 100*10, 7)
		zr, err := NewZRow(context.Background(), net, locals, fn.Identity{}, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(context.Background(), net, zr, fn.Identity{}, 10, core.Options{K: 3, R: 40})
		if err != nil {
			t.Fatal(err)
		}
		return res.P
	}
	dp := run(denseLocals)
	cp := run(csrLocals)
	if !dp.Equalf(cp, 0) {
		t.Fatal("projection matrices differ between backends")
	}
}
