// Package samplers provides the concrete distributed row samplers that plug
// into the Algorithm 1 framework (package core):
//
//   - Uniform: rows have (near-)equal norms, so uniform indices with exact
//     Q = 1/n suffice. This is the sampler for Gaussian random Fourier
//     features (Section VI-A), whose rows concentrate at ‖A_i‖² = Θ(d).
//   - ZRow: the generalized sampler of Section V, reducing row sampling to
//     entry sampling on the flattened n·d vector via the Z-estimator and
//     Z-sampler (package zsampler). Used for softmax/GM and M-estimator
//     applications.
//   - Exact: the Frieze–Kannan–Vempala sampler with exact probabilities,
//     available only when the global matrix is materialized; it is the
//     baseline the distributed samplers are compared against.
package samplers

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/hashing"
	"repro/internal/hh"
	"repro/internal/matrix"
	"repro/internal/zsampler"
)

// CollectRawRow assembles the exact global row i = Σ_t locals[t] row i at
// the CP, charging d words from every non-CP server (Algorithm 1 line 7).
// Unlike the bulk sketch traffic, which moves over the concurrent channel
// links, a single row is latency-bound: summing in place with sender-side
// charging is both deterministic and far cheaper than s goroutine spawns
// and payload copies per draw on this hot path. Scattering each share's
// nonzeros costs O(nnz(row)) per server; the charge stays d words because
// the assembled row travels dense (the accounting is backend-invariant by
// design — see matrix.Mat).
func CollectRawRow(net *comm.Network, locals []matrix.Mat, i int, tag string) []float64 {
	d := locals[0].Cols()
	sum := make([]float64, d)
	for t, m := range locals {
		if t != comm.CP {
			net.Charge(t, comm.CP, tag, int64(d))
		}
		m.RowNNZ(i, func(c int, v float64) {
			sum[c] += v
		})
	}
	return sum
}

func validateLocals(locals []matrix.Mat) (n, d int, err error) {
	if len(locals) == 0 {
		return 0, 0, errors.New("samplers: no servers")
	}
	n, d = locals[0].Rows(), locals[0].Cols()
	for t, m := range locals {
		mn, md := m.Rows(), m.Cols()
		if mn != n || md != d {
			return 0, 0, fmt.Errorf("samplers: server %d shape %dx%d != %dx%d", t, mn, md, n, d)
		}
	}
	if n == 0 || d == 0 {
		return 0, 0, errors.New("samplers: empty local matrices")
	}
	return n, d, nil
}

// Uniform samples row indices uniformly with exact probability 1/n.
type Uniform struct {
	net    *comm.Network
	locals []matrix.Mat
	n      int
	rng    *rand.Rand
}

// NewUniform constructs the uniform sampler.
func NewUniform(net *comm.Network, locals []matrix.Mat, seed int64) (*Uniform, error) {
	n, _, err := validateLocals(locals)
	if err != nil {
		return nil, err
	}
	return &Uniform{net: net, locals: locals, n: n, rng: hashing.Seeded(seed)}, nil
}

// Draw implements core.RowSampler.
func (u *Uniform) Draw() (core.Sample, error) {
	i := u.rng.Intn(u.n)
	raw := CollectRawRow(u.net, u.locals, i, "sampler/rows")
	return core.Sample{Row: i, QHat: 1 / float64(u.n), RawRow: raw}, nil
}

// ZRow reduces ℓ2² row sampling of A = f(Σ_t A^t) to entry sampling with
// weight z ≍ f² on the flattened n·d coordinate space: if entry (i,j) is
// drawn, row i is the sample (Section V, first paragraph). The reported
// probability is Q̂_i = Σ_j z(a_ij)/Ẑ, computable exactly once the row has
// been collected, with Ẑ from the Z-estimator.
type ZRow struct {
	net    *comm.Network
	locals []matrix.Mat
	z      fn.ZFunc
	est    *zsampler.Estimator
	n, d   int
}

// NewZRow builds the sketching infrastructure (the Z-estimator) over the
// flattened local matrices. All sketch traffic is charged immediately; each
// Draw afterwards charges only the row collection.
func NewZRow(net *comm.Network, locals []matrix.Mat, z fn.ZFunc, p zsampler.Params) (*ZRow, error) {
	n, d, err := validateLocals(locals)
	if err != nil {
		return nil, err
	}
	vecs := make([]hh.Vec, len(locals))
	for t, m := range locals {
		vecs[t] = hh.MatVec{M: m}
	}
	est, err := zsampler.BuildEstimator(net, vecs, z, p)
	if err != nil {
		return nil, fmt.Errorf("samplers: z-estimator: %w", err)
	}
	return &ZRow{net: net, locals: locals, z: z, est: est, n: n, d: d}, nil
}

// Estimator exposes the underlying Z-estimator (for inspection in tests
// and experiments).
func (s *ZRow) Estimator() *zsampler.Estimator { return s.est }

// Draw implements core.RowSampler.
func (s *ZRow) Draw() (core.Sample, error) {
	j, err := s.est.Sample()
	if err != nil {
		return core.Sample{}, err
	}
	i := int(j / uint64(s.d))
	raw := CollectRawRow(s.net, s.locals, i, "sampler/rows")
	var num float64
	for _, v := range raw {
		num += s.z.Z(v)
	}
	qhat := num / s.est.ZHat()
	if qhat <= 0 {
		return core.Sample{}, fmt.Errorf("samplers: zero Q̂ for sampled row %d", i)
	}
	return core.Sample{Row: i, QHat: qhat, RawRow: raw}, nil
}

// ZRowLiteral is the literal reading of Algorithm 4: every draw rebuilds
// the full sketching infrastructure with fresh randomness, so consecutive
// samples are fully independent — at r times the sketching communication.
// The default ZRow amortizes one sketch across draws with fresh min-wise
// hashes (see DESIGN.md §4); this variant exists to measure what that
// amortization trades away.
type ZRowLiteral struct {
	net    *comm.Network
	locals []matrix.Mat
	z      fn.ZFunc
	params zsampler.Params
	n, d   int
	draws  uint64
}

// NewZRowLiteral validates the shares; no sketching happens until Draw.
func NewZRowLiteral(net *comm.Network, locals []matrix.Mat, z fn.ZFunc, p zsampler.Params) (*ZRowLiteral, error) {
	n, d, err := validateLocals(locals)
	if err != nil {
		return nil, err
	}
	return &ZRowLiteral{net: net, locals: locals, z: z, params: p, n: n, d: d}, nil
}

// Draw implements core.RowSampler, paying the full sketch cost per draw.
func (s *ZRowLiteral) Draw() (core.Sample, error) {
	s.draws++
	p := s.params
	p.Seed = hashing.DeriveSeed(s.params.Seed, 0xF0E0+s.draws)
	vecs := make([]hh.Vec, len(s.locals))
	for t, m := range s.locals {
		vecs[t] = hh.MatVec{M: m}
	}
	est, err := zsampler.BuildEstimator(s.net, vecs, s.z, p)
	if err != nil {
		return core.Sample{}, fmt.Errorf("samplers: literal z-estimator: %w", err)
	}
	j, err := est.Sample()
	if err != nil {
		return core.Sample{}, err
	}
	i := int(j / uint64(s.d))
	raw := CollectRawRow(s.net, s.locals, i, "sampler/rows")
	var num float64
	for _, v := range raw {
		num += s.z.Z(v)
	}
	qhat := num / est.ZHat()
	if qhat <= 0 {
		return core.Sample{}, fmt.Errorf("samplers: zero Q̂ for sampled row %d", i)
	}
	return core.Sample{Row: i, QHat: qhat, RawRow: raw}, nil
}

// Exact is the FKV sampler with exact squared-norm probabilities over the
// materialized global matrix — the non-distributed ideal that additive
// error analysis assumes. It charges the one-time cost of gathering the
// full matrix at the CP, making explicit what the sketching protocols
// avoid.
type Exact struct {
	net   *comm.Network
	raw   *matrix.Dense // global summed matrix (pre-f)
	f     fn.Func
	probs []float64 // exact Q_i over rows of f(raw)
	cum   []float64
	rng   *rand.Rand
	s     int
}

// NewExact gathers the global raw matrix (charging (s−1)·n·d words under
// "baseline/full-gather") and precomputes exact row probabilities of
// A = f(raw).
func NewExact(net *comm.Network, locals []matrix.Mat, f fn.Func, seed int64) (*Exact, error) {
	n, d, err := validateLocals(locals)
	if err != nil {
		return nil, err
	}
	raw := matrix.NewDense(n, d)
	for t, m := range locals {
		if t != comm.CP {
			net.Charge(t, comm.CP, "baseline/full-gather", int64(n*d))
		}
		for i := 0; i < n; i++ {
			ri := raw.Row(i)
			m.RowNNZ(i, func(c int, v float64) {
				ri[c] += v
			})
		}
	}
	a := raw.Apply(f.Apply)
	total := a.FrobNorm2()
	if total <= 0 {
		return nil, errors.New("samplers: exact sampler on all-zero matrix")
	}
	probs := make([]float64, n)
	cum := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		probs[i] = a.RowNorm2(i) / total
		acc += probs[i]
		cum[i] = acc
	}
	return &Exact{net: net, raw: raw, f: f, probs: probs, cum: cum, rng: hashing.Seeded(seed), s: len(locals)}, nil
}

// Draw implements core.RowSampler with exact probabilities.
func (e *Exact) Draw() (core.Sample, error) {
	x := e.rng.Float64()
	i := searchCum(e.cum, x)
	// The row itself still travels once per draw in a fair comparison.
	for t := 1; t < e.s; t++ {
		e.net.Charge(t, comm.CP, "sampler/rows", int64(e.raw.Cols()))
	}
	return core.Sample{Row: i, QHat: e.probs[i], RawRow: e.raw.RowCopy(i)}, nil
}

func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
