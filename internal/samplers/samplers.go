// Package samplers provides the concrete distributed row samplers that plug
// into the Algorithm 1 framework (package core):
//
//   - Uniform: rows have (near-)equal norms, so uniform indices with exact
//     Q = 1/n suffice. This is the sampler for Gaussian random Fourier
//     features (Section VI-A), whose rows concentrate at ‖A_i‖² = Θ(d).
//   - ZRow: the generalized sampler of Section V, reducing row sampling to
//     entry sampling on the flattened n·d vector via the Z-estimator and
//     Z-sampler (package zsampler). Used for softmax/GM and M-estimator
//     applications.
//   - Exact: the Frieze–Kannan–Vempala sampler with exact probabilities,
//     available only when the global matrix is materialized; it is the
//     baseline the distributed samplers are compared against.
package samplers

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fn"
	"repro/internal/hashing"
	"repro/internal/hh"
	"repro/internal/matrix"
	"repro/internal/ops"
	"repro/internal/zsampler"
)

// CollectRawRow assembles the exact global row i = Σ_t locals[t] row i at
// the CP (Algorithm 1 line 7) as one OpRow round: the CP announces the row
// index (one word per server) and every server ships its local row back
// (d words per server, dense — the accounting is backend-invariant by
// design, see matrix.Mat; a CSR share still assembles its reply in
// O(nnz(row))). Worker processes answer from their installed shares, so
// the row genuinely crosses the wire in multi-process clusters.
func CollectRawRow(ctx context.Context, net *comm.Network, locals []matrix.Mat, i int, tag string) ([]float64, error) {
	d := locals[comm.CP].Cols()
	sum, err := ops.Row(locals[comm.CP], i)
	if err != nil {
		return nil, err
	}
	err = net.RunRound(ctx, comm.Round{
		Op:       ops.OpRow,
		Params:   ops.IndexParams(uint64(i)),
		ReqTag:   tag,
		RespTag:  tag,
		RespKind: comm.KindRow,
		// Per-draw hot path: a single row is latency-bound, so the local
		// executors run inline in the drain loop instead of paying s
		// goroutine spawns per draw (transcript identical either way).
		Inline: true,
		Local: func(t int) ([]float64, error) {
			return ops.Row(locals[t], i)
		},
		OnResp: func(t int, payload []float64) error {
			if len(payload) != d {
				return fmt.Errorf("samplers: row reply of %d words from server %d, want %d", len(payload), t, d)
			}
			for c, v := range payload {
				sum[c] += v
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return sum, nil
}

// CollectRawRows assembles several exact global rows at the CP as one
// pipelined sequence of OpRow rounds (RunRounds): every row request is
// issued before any reply drains, coalescing into batch envelopes on
// remote links. The ledger transcript is identical to calling
// CollectRawRow once per index, in order — only the wire framing differs —
// so batched draws stay inside the determinism contract.
func CollectRawRows(ctx context.Context, net *comm.Network, locals []matrix.Mat, idxs []int, tag string) ([][]float64, error) {
	d := locals[comm.CP].Cols()
	sums := make([][]float64, len(idxs))
	rounds := make([]comm.Round, len(idxs))
	for q, i := range idxs {
		sum, err := ops.Row(locals[comm.CP], i)
		if err != nil {
			return nil, err
		}
		sums[q] = sum
		q, i := q, i
		rounds[q] = comm.Round{
			Op:       ops.OpRow,
			Params:   ops.IndexParams(uint64(i)),
			ReqTag:   tag,
			RespTag:  tag,
			RespKind: comm.KindRow,
			Inline:   true,
			Local: func(t int) ([]float64, error) {
				return ops.Row(locals[t], i)
			},
			OnResp: func(t int, payload []float64) error {
				if len(payload) != d {
					return fmt.Errorf("samplers: row reply of %d words from server %d, want %d", len(payload), t, d)
				}
				dst := sums[q]
				for c, v := range payload {
					dst[c] += v
				}
				return nil
			},
		}
	}
	if err := net.RunRounds(ctx, rounds); err != nil {
		return nil, err
	}
	return sums, nil
}

func validateLocals(locals []matrix.Mat) (n, d int, err error) {
	if len(locals) == 0 || locals[comm.CP] == nil {
		return 0, 0, errors.New("samplers: the CP's local share is required")
	}
	n, d = locals[comm.CP].Rows(), locals[comm.CP].Cols()
	for t, m := range locals {
		if m == nil {
			continue // remote share: its shape was validated at installation
		}
		mn, md := m.Rows(), m.Cols()
		if mn != n || md != d {
			return 0, 0, fmt.Errorf("samplers: server %d shape %dx%d != %dx%d", t, mn, md, n, d)
		}
	}
	if n == 0 || d == 0 {
		return 0, 0, errors.New("samplers: empty local matrices")
	}
	return n, d, nil
}

// Uniform samples row indices uniformly with exact probability 1/n.
type Uniform struct {
	net    *comm.Network
	locals []matrix.Mat
	n      int
	rng    *rand.Rand
}

// NewUniform constructs the uniform sampler.
func NewUniform(net *comm.Network, locals []matrix.Mat, seed int64) (*Uniform, error) {
	n, _, err := validateLocals(locals)
	if err != nil {
		return nil, err
	}
	return &Uniform{net: net, locals: locals, n: n, rng: hashing.Seeded(seed)}, nil
}

// Draw implements core.RowSampler.
func (u *Uniform) Draw(ctx context.Context) (core.Sample, error) {
	i := u.rng.Intn(u.n)
	raw, err := CollectRawRow(ctx, u.net, u.locals, i, "sampler/rows")
	if err != nil {
		return core.Sample{}, err
	}
	return core.Sample{Row: i, QHat: 1 / float64(u.n), RawRow: raw}, nil
}

// DrawBatch implements core.BatchRowSampler: the indices are pure local
// RNG, so they are all fixed first and the row collections pipeline.
func (u *Uniform) DrawBatch(ctx context.Context, count int) ([]core.Sample, error) {
	idxs := make([]int, count)
	for q := range idxs {
		idxs[q] = u.rng.Intn(u.n)
	}
	raws, err := CollectRawRows(ctx, u.net, u.locals, idxs, "sampler/rows")
	if err != nil {
		return nil, err
	}
	out := make([]core.Sample, count)
	for q, raw := range raws {
		out[q] = core.Sample{Row: idxs[q], QHat: 1 / float64(u.n), RawRow: raw}
	}
	return out, nil
}

// ZRow reduces ℓ2² row sampling of A = f(Σ_t A^t) to entry sampling with
// weight z ≍ f² on the flattened n·d coordinate space: if entry (i,j) is
// drawn, row i is the sample (Section V, first paragraph). The reported
// probability is Q̂_i = Σ_j z(a_ij)/Ẑ, computable exactly once the row has
// been collected, with Ẑ from the Z-estimator.
type ZRow struct {
	net    *comm.Network
	locals []matrix.Mat
	z      fn.ZFunc
	est    *zsampler.Estimator
	n, d   int
}

// NewZRow builds the sketching infrastructure (the Z-estimator) over the
// flattened local matrices. All sketch traffic is charged immediately; each
// Draw afterwards charges only the row collection.
func NewZRow(ctx context.Context, net *comm.Network, locals []matrix.Mat, z fn.ZFunc, p zsampler.Params) (*ZRow, error) {
	n, d, err := validateLocals(locals)
	if err != nil {
		return nil, err
	}
	vecs := matVecs(locals)
	est, err := zsampler.BuildEstimator(ctx, net, vecs, z, p)
	if err != nil {
		return nil, fmt.Errorf("samplers: z-estimator: %w", err)
	}
	return &ZRow{net: net, locals: locals, z: z, est: est, n: n, d: d}, nil
}

// Estimator exposes the underlying Z-estimator (for inspection in tests
// and experiments).
func (s *ZRow) Estimator() *zsampler.Estimator { return s.est }

// Draw implements core.RowSampler.
func (s *ZRow) Draw(ctx context.Context) (core.Sample, error) {
	j, err := s.est.Sample()
	if err != nil {
		return core.Sample{}, err
	}
	i := int(j / uint64(s.d))
	raw, err := CollectRawRow(ctx, s.net, s.locals, i, "sampler/rows")
	if err != nil {
		return core.Sample{}, err
	}
	var num float64
	for _, v := range raw {
		num += s.z.Z(v)
	}
	qhat := num / s.est.ZHat()
	if qhat <= 0 {
		return core.Sample{}, fmt.Errorf("samplers: zero Q̂ for sampled row %d", i)
	}
	return core.Sample{Row: i, QHat: qhat, RawRow: raw}, nil
}

// DrawBatch implements core.BatchRowSampler. The Z-sampler's entry draws
// are local once the estimator is built (the fallback ladder included),
// so all count indices are fixed up front — consuming the estimator's RNG
// in exactly the order sequential draws would — and the row collections
// pipeline as one RunRounds sequence.
func (s *ZRow) DrawBatch(ctx context.Context, count int) ([]core.Sample, error) {
	idxs := make([]int, count)
	for q := range idxs {
		j, err := s.est.Sample()
		if err != nil {
			return nil, err
		}
		idxs[q] = int(j / uint64(s.d))
	}
	raws, err := CollectRawRows(ctx, s.net, s.locals, idxs, "sampler/rows")
	if err != nil {
		return nil, err
	}
	out := make([]core.Sample, count)
	for q, raw := range raws {
		var num float64
		for _, v := range raw {
			num += s.z.Z(v)
		}
		qhat := num / s.est.ZHat()
		if qhat <= 0 {
			return nil, fmt.Errorf("samplers: zero Q̂ for sampled row %d", idxs[q])
		}
		out[q] = core.Sample{Row: idxs[q], QHat: qhat, RawRow: raw}
	}
	return out, nil
}

// ZRowLiteral is the literal reading of Algorithm 4: every draw rebuilds
// the full sketching infrastructure with fresh randomness, so consecutive
// samples are fully independent — at r times the sketching communication.
// The default ZRow amortizes one sketch across draws with fresh min-wise
// hashes (see DESIGN.md §4); this variant exists to measure what that
// amortization trades away.
type ZRowLiteral struct {
	net    *comm.Network
	locals []matrix.Mat
	z      fn.ZFunc
	params zsampler.Params
	n, d   int
	draws  uint64
}

// NewZRowLiteral validates the shares; no sketching happens until Draw.
func NewZRowLiteral(net *comm.Network, locals []matrix.Mat, z fn.ZFunc, p zsampler.Params) (*ZRowLiteral, error) {
	n, d, err := validateLocals(locals)
	if err != nil {
		return nil, err
	}
	return &ZRowLiteral{net: net, locals: locals, z: z, params: p, n: n, d: d}, nil
}

// Draw implements core.RowSampler, paying the full sketch cost per draw.
func (s *ZRowLiteral) Draw(ctx context.Context) (core.Sample, error) {
	s.draws++
	p := s.params
	p.Seed = hashing.DeriveSeed(s.params.Seed, 0xF0E0+s.draws)
	est, err := zsampler.BuildEstimator(ctx, s.net, matVecs(s.locals), s.z, p)
	if err != nil {
		return core.Sample{}, fmt.Errorf("samplers: literal z-estimator: %w", err)
	}
	j, err := est.Sample()
	if err != nil {
		return core.Sample{}, err
	}
	i := int(j / uint64(s.d))
	raw, err := CollectRawRow(ctx, s.net, s.locals, i, "sampler/rows")
	if err != nil {
		return core.Sample{}, err
	}
	var num float64
	for _, v := range raw {
		num += s.z.Z(v)
	}
	qhat := num / est.ZHat()
	if qhat <= 0 {
		return core.Sample{}, fmt.Errorf("samplers: zero Q̂ for sampled row %d", i)
	}
	return core.Sample{Row: i, QHat: qhat, RawRow: raw}, nil
}

// matVecs wraps each hosted share as a flattened vector (nil stays nil
// for remote shares — the op rounds never touch them locally).
func matVecs(locals []matrix.Mat) []hh.Vec {
	vecs := make([]hh.Vec, len(locals))
	for t, m := range locals {
		if m != nil {
			vecs[t] = hh.MatVec{M: m}
		}
	}
	return vecs
}

// Exact is the FKV sampler with exact squared-norm probabilities over the
// materialized global matrix — the non-distributed ideal that additive
// error analysis assumes. It charges the one-time cost of gathering the
// full matrix at the CP, making explicit what the sketching protocols
// avoid.
type Exact struct {
	net    *comm.Network
	locals []matrix.Mat
	raw    *matrix.Dense // global summed matrix (pre-f)
	f      fn.Func
	probs  []float64 // exact Q_i over rows of f(raw)
	cum    []float64
	rng    *rand.Rand
}

// NewExact gathers the global raw matrix — one OpShareDump round shipping
// every share to the CP, (s−1)·n·d words under "baseline/full-gather" —
// and precomputes exact row probabilities of A = f(raw).
func NewExact(ctx context.Context, net *comm.Network, locals []matrix.Mat, f fn.Func, seed int64) (*Exact, error) {
	n, d, err := validateLocals(locals)
	if err != nil {
		return nil, err
	}
	raw := matrix.NewDense(n, d)
	add := func(flat []float64) {
		data := raw.Data()
		for i, v := range flat {
			data[i] += v
		}
	}
	add(ops.ShareDump(locals[comm.CP]))
	err = net.RunRound(ctx, comm.Round{
		Op:       ops.OpShareDump,
		ReqTag:   "baseline/full-gather",
		RespTag:  "baseline/full-gather",
		RespKind: comm.KindShare,
		Local: func(t int) ([]float64, error) {
			return ops.ShareDump(locals[t]), nil
		},
		OnResp: func(t int, payload []float64) error {
			if len(payload) != n*d {
				return fmt.Errorf("samplers: share dump of %d words from server %d, want %d", len(payload), t, n*d)
			}
			add(payload)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	a := raw.Apply(f.Apply)
	total := a.FrobNorm2()
	if total <= 0 {
		return nil, errors.New("samplers: exact sampler on all-zero matrix")
	}
	probs := make([]float64, n)
	cum := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		probs[i] = a.RowNorm2(i) / total
		acc += probs[i]
		cum[i] = acc
	}
	return &Exact{net: net, locals: locals, raw: raw, f: f, probs: probs, cum: cum, rng: hashing.Seeded(seed)}, nil
}

// Draw implements core.RowSampler with exact probabilities. The row
// itself still travels once per draw in a fair comparison (a real OpRow
// round; its sum is bit-identical to the materialized row).
func (e *Exact) Draw(ctx context.Context) (core.Sample, error) {
	x := e.rng.Float64()
	i := searchCum(e.cum, x)
	raw, err := CollectRawRow(ctx, e.net, e.locals, i, "sampler/rows")
	if err != nil {
		return core.Sample{}, err
	}
	return core.Sample{Row: i, QHat: e.probs[i], RawRow: raw}, nil
}

// DrawBatch implements core.BatchRowSampler: exact probabilities are
// precomputed, so the indices are pure local RNG and the row collections
// pipeline.
func (e *Exact) DrawBatch(ctx context.Context, count int) ([]core.Sample, error) {
	idxs := make([]int, count)
	for q := range idxs {
		idxs[q] = searchCum(e.cum, e.rng.Float64())
	}
	raws, err := CollectRawRows(ctx, e.net, e.locals, idxs, "sampler/rows")
	if err != nil {
		return nil, err
	}
	out := make([]core.Sample, count)
	for q, raw := range raws {
		out[q] = core.Sample{Row: idxs[q], QHat: e.probs[idxs[q]], RawRow: raw}
	}
	return out, nil
}

func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
