package samplers

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/fn"
	"repro/internal/matrix"
	"repro/internal/zsampler"
)

// split additively partitions M across s servers.
func split(M *matrix.Dense, s int, rng *rand.Rand) []matrix.Mat {
	n, d := M.Dims()
	out := make([]*matrix.Dense, s)
	for t := range out {
		out[t] = matrix.NewDense(n, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			var acc float64
			for t := 0; t < s-1; t++ {
				sh := rng.NormFloat64() * 0.05
				out[t].Set(i, j, sh)
				acc += sh
			}
			out[s-1].Set(i, j, M.At(i, j)-acc)
		}
	}
	return matrix.AsMats(out)
}

func randomMatrix(rng *rand.Rand, n, d int) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func TestCollectRawRowSumsAndCharges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	M := randomMatrix(rng, 10, 6)
	locals := split(M, 3, rng)
	net := comm.NewNetwork(3)
	row, err := CollectRawRow(context.Background(), net, locals, 4, "rows")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 6; j++ {
		if math.Abs(row[j]-M.At(4, j)) > 1e-9 {
			t.Fatalf("row[%d] = %g, want %g", j, row[j], M.At(4, j))
		}
	}
	// 2 non-CP servers × (1 request word + 6 row words).
	if net.Words() != int64(2*(1+6)) {
		t.Fatalf("words = %d, want 14 (2 non-CP servers × (1 req + 6 cols))", net.Words())
	}
	// Every word travelled as a real frame: bytes == 8·words + headers.
	if net.Bytes() != 8*net.Words()+net.HeaderBytes() {
		t.Fatalf("bytes %d != 8·%d + %d", net.Bytes(), net.Words(), net.HeaderBytes())
	}
}

func TestUniformDrawDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	M := randomMatrix(rng, 20, 4)
	locals := split(M, 2, rng)
	net := comm.NewNetwork(2)
	u, err := NewUniform(net, locals, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 20)
	const draws = 4000
	for i := 0; i < draws; i++ {
		s, err := u.Draw(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if s.QHat != 1.0/20 {
			t.Fatalf("uniform QHat = %g", s.QHat)
		}
		counts[s.Row]++
	}
	for i, c := range counts {
		if c < draws/40 || c > draws/8 {
			t.Fatalf("row %d drawn %d times of %d", i, c, draws)
		}
	}
}

func TestUniformReturnsExactRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	M := randomMatrix(rng, 8, 5)
	locals := split(M, 3, rng)
	net := comm.NewNetwork(3)
	u, err := NewUniform(net, locals, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := u.Draw(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range s.RawRow {
		if math.Abs(v-M.At(s.Row, j)) > 1e-9 {
			t.Fatal("raw row mismatch")
		}
	}
}

func TestValidateLocals(t *testing.T) {
	if _, _, err := validateLocals(nil); err == nil {
		t.Fatal("nil locals accepted")
	}
	if _, _, err := validateLocals([]matrix.Mat{matrix.NewDense(2, 2), matrix.NewDense(3, 2)}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, _, err := validateLocals([]matrix.Mat{matrix.NewDense(0, 0)}); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestZRowSamplesHighNormRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, d := 300, 8
	M := matrix.NewDense(n, d)
	for i := range M.Data() {
		M.Data()[i] = rng.NormFloat64() * 0.05
	}
	// Three dominant rows carry almost all the mass.
	dominant := []int{10, 150, 299}
	for _, i := range dominant {
		for j := 0; j < d; j++ {
			M.Set(i, j, 10+rng.Float64())
		}
	}
	locals := split(M, 3, rng)
	net := comm.NewNetwork(3)
	p := zsampler.DefaultParams(n*d, 5)
	zr, err := NewZRow(context.Background(), net, locals, fn.Identity{}, p)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const draws = 200
	for i := 0; i < draws; i++ {
		s, err := zr.Draw(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, di := range dominant {
			if s.Row == di {
				hits++
			}
		}
	}
	// The dominant rows hold ≈ 99% of ‖A‖²; demand at least 80% of draws.
	if hits < draws*8/10 {
		t.Fatalf("dominant rows drawn %d/%d", hits, draws)
	}
}

func TestZRowQHatApximatesRowShare(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, d := 200, 6
	M := randomMatrix(rng, n, d)
	locals := split(M, 2, rng)
	net := comm.NewNetwork(2)
	p := zsampler.DefaultParams(n*d, 9)
	zr, err := NewZRow(context.Background(), net, locals, fn.Identity{}, p)
	if err != nil {
		t.Fatal(err)
	}
	total := M.FrobNorm2()
	for i := 0; i < 30; i++ {
		s, err := zr.Draw(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		truth := M.RowNorm2(s.Row) / total
		if s.QHat < truth/3 || s.QHat > truth*3 {
			t.Fatalf("row %d: QHat %g vs true share %g", s.Row, s.QHat, truth)
		}
	}
}

func TestZRowRawRowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	M := randomMatrix(rng, 100, 5)
	locals := split(M, 3, rng)
	net := comm.NewNetwork(3)
	zr, err := NewZRow(context.Background(), net, locals, fn.Identity{}, zsampler.DefaultParams(500, 11))
	if err != nil {
		t.Fatal(err)
	}
	s, err := zr.Draw(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range s.RawRow {
		if math.Abs(v-M.At(s.Row, j)) > 1e-9 {
			t.Fatal("zrow raw row mismatch")
		}
	}
	if zr.Estimator() == nil {
		t.Fatal("estimator accessor")
	}
}

func TestExactSamplerProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	M := randomMatrix(rng, 50, 4)
	locals := split(M, 2, rng)
	net := comm.NewNetwork(2)
	ex, err := NewExact(context.Background(), net, locals, fn.Identity{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Full gather charged.
	if net.Breakdown()["baseline/full-gather"] != int64(50*4) {
		t.Fatalf("gather words = %v", net.Breakdown())
	}
	total := M.FrobNorm2()
	for i := 0; i < 20; i++ {
		s, err := ex.Draw(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want := M.RowNorm2(s.Row) / total
		if math.Abs(s.QHat-want) > 1e-9 {
			t.Fatalf("exact QHat %g, want %g", s.QHat, want)
		}
	}
}

func TestExactSamplerAppliesF(t *testing.T) {
	// Probabilities follow f(A), not A.
	rng := rand.New(rand.NewSource(8))
	M := randomMatrix(rng, 30, 3)
	locals := split(M, 2, rng)
	net := comm.NewNetwork(2)
	h := fn.Huber{K: 0.5}
	ex, err := NewExact(context.Background(), net, locals, h, 15)
	if err != nil {
		t.Fatal(err)
	}
	fA := M.Apply(h.Apply)
	total := fA.FrobNorm2()
	s, err := ex.Draw(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.QHat-fA.RowNorm2(s.Row)/total) > 1e-9 {
		t.Fatal("exact sampler ignored f")
	}
}

func TestExactSamplerZeroMatrix(t *testing.T) {
	net := comm.NewNetwork(2)
	locals := []matrix.Mat{matrix.NewDense(5, 3), matrix.NewDense(5, 3)}
	if _, err := NewExact(context.Background(), net, locals, fn.Identity{}, 1); err == nil {
		t.Fatal("zero matrix accepted")
	}
}

func TestSearchCum(t *testing.T) {
	cum := []float64{0.25, 0.5, 0.75, 1.0}
	cases := []struct {
		x    float64
		want int
	}{{0.1, 0}, {0.3, 1}, {0.74, 2}, {0.99, 3}}
	for _, c := range cases {
		if got := searchCum(cum, c.x); got != c.want {
			t.Fatalf("searchCum(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestZRowLiteralIndependentDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, d := 150, 6
	M := randomMatrix(rng, n, d)
	locals := split(M, 2, rng)
	net := comm.NewNetwork(2)
	p := zsampler.ParamsForBudget(1<<14, 2, n*d, 21)
	lit, err := NewZRowLiteral(net, locals, fn.Identity{}, p)
	if err != nil {
		t.Fatal(err)
	}
	before := net.Words()
	if _, err := lit.Draw(context.Background()); err != nil {
		t.Fatal(err)
	}
	perDraw1 := net.Words() - before
	before = net.Words()
	if _, err := lit.Draw(context.Background()); err != nil {
		t.Fatal(err)
	}
	perDraw2 := net.Words() - before
	// The literal variant pays the full sketch cost on EVERY draw.
	min := zsampler.EstimateSetupWords(p, 2, n*d) / 2
	if perDraw1 < min || perDraw2 < min {
		t.Fatalf("literal draws too cheap: %d, %d (sketch estimate %d)", perDraw1, perDraw2, min)
	}
	// The amortized ZRow pays it once.
	net2 := comm.NewNetwork(2)
	zr, err := NewZRow(context.Background(), net2, locals, fn.Identity{}, p)
	if err != nil {
		t.Fatal(err)
	}
	setup := net2.Words()
	for i := 0; i < 3; i++ {
		if _, err := zr.Draw(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	amortized := net2.Words() - setup
	if amortized > perDraw1 {
		t.Fatalf("amortized 3 draws (%d words) should beat one literal draw (%d)", amortized, perDraw1)
	}
}

func TestZRowLiteralSamplesHighNormRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, d := 100, 5
	M := matrix.NewDense(n, d)
	for i := range M.Data() {
		M.Data()[i] = rng.NormFloat64() * 0.01
	}
	for j := 0; j < d; j++ {
		M.Set(42, j, 10)
	}
	locals := split(M, 2, rng)
	net := comm.NewNetwork(2)
	lit, err := NewZRowLiteral(net, locals, fn.Identity{}, zsampler.ParamsForBudget(1<<14, 2, n*d, 23))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 10; i++ {
		s, err := lit.Draw(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if s.Row == 42 {
			hits++
		}
	}
	if hits < 8 {
		t.Fatalf("dominant row drawn %d/10 by literal sampler", hits)
	}
}
