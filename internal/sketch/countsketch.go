// Package sketch implements the mergeable linear sketches the distributed
// protocols are built from: CountSketch (Charikar–Chen–Farach-Colton,
// reference [21] of the paper) for per-coordinate frequency estimation and
// heavy hitter detection, and the AMS estimator for the second moment F2.
//
// Linearity is the crucial property: sketch(Σ_t v^t) = Σ_t sketch(v^t), so
// each server sketches its local vector with shared randomness and the
// Central Processor simply sums the sketches — this is what turns the
// streaming algorithms of [21] into communication-efficient distributed
// protocols.
package sketch

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/hashing"
)

// CountSketch estimates coordinates of a high-dimensional vector from
// depth×width counters. With width w, the estimate of v_j has standard
// deviation O(‖v‖₂/√w) per row; the median over depth rows boosts the
// failure probability exponentially.
type CountSketch struct {
	seed   int64
	depth  int
	width  int
	rows   [][]float64
	bucket []*hashing.PolyHash
	sign   []*hashing.PolyHash
}

// NewCountSketch builds an empty sketch. Two sketches built with the same
// seed, depth and width share hash functions and may be merged.
func NewCountSketch(seed int64, depth, width int) *CountSketch {
	if depth < 1 || width < 1 {
		panic(fmt.Sprintf("sketch: invalid shape depth=%d width=%d", depth, width))
	}
	return newCountSketchIn(seed, depth, width, make([]float64, depth*width))
}

// NewCountSketchBlock builds count sketches of the given seed list that all
// share one backing counter allocation — the arena form used when a round
// materializes many bucket sketches at once. Each sketch is independent
// (disjoint counter ranges); only the allocation is shared.
func NewCountSketchBlock(seeds []int64, depth, width int) []*CountSketch {
	if depth < 1 || width < 1 {
		panic(fmt.Sprintf("sketch: invalid shape depth=%d width=%d", depth, width))
	}
	block := make([]float64, len(seeds)*depth*width)
	out := make([]*CountSketch, len(seeds))
	per := depth * width
	for i, seed := range seeds {
		out[i] = newCountSketchIn(seed, depth, width, block[i*per:(i+1)*per:(i+1)*per])
	}
	return out
}

// newCountSketchIn wires a sketch over a caller-provided zeroed counter
// block of depth*width float64s, slicing it into the per-row views. Hash
// functions come from the process-wide memo (hashing.SeededPolyHash), so
// repeated construction from the same seed is cheap.
func newCountSketchIn(seed int64, depth, width int, block []float64) *CountSketch {
	cs := &CountSketch{seed: seed, depth: depth, width: width}
	cs.rows = make([][]float64, depth)
	cs.bucket = make([]*hashing.PolyHash, depth)
	cs.sign = make([]*hashing.PolyHash, depth)
	for r := 0; r < depth; r++ {
		cs.rows[r] = block[r*width : (r+1)*width : (r+1)*width]
		cs.bucket[r] = hashing.SeededPolyHash(hashing.DeriveSeed(seed, uint64(2*r)), 2)
		cs.sign[r] = hashing.SeededPolyHash(hashing.DeriveSeed(seed, uint64(2*r+1)), 4)
	}
	return cs
}

// Clone returns a deep copy sharing no counter state with cs (the memoized
// hash functions are shared — they are immutable). The warm-sketch store
// hands out clones so callers that merge remote sketches into the result
// never corrupt the cached counters.
func (cs *CountSketch) Clone() *CountSketch {
	block := make([]float64, cs.depth*cs.width)
	out := newCountSketchIn(cs.seed, cs.depth, cs.width, block)
	for r, row := range cs.rows {
		copy(out.rows[r], row)
	}
	return out
}

// Depth returns the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// Width returns the number of counters per row.
func (cs *CountSketch) Width() int { return cs.width }

// Seed returns the seed the hash functions were derived from.
func (cs *CountSketch) Seed() int64 { return cs.seed }

// Update adds delta at coordinate j.
func (cs *CountSketch) Update(j uint64, delta float64) {
	if delta == 0 {
		return
	}
	for r := 0; r < cs.depth; r++ {
		b := cs.bucket[r].Bucket(j, cs.width)
		cs.rows[r][b] += cs.sign[r].Sign(j) * delta
	}
}

// estBuf is stack-allocatable scratch for per-coordinate estimates; heavy
// hitter scans call Estimate once per candidate coordinate, so the
// estimate path must not heap-allocate. Sketch depths beyond its capacity
// fall back to the heap.
type estBuf [32]float64

// Estimate returns the median-of-rows estimate of coordinate j.
func (cs *CountSketch) Estimate(j uint64) float64 {
	var buf estBuf
	ests := buf[:0]
	if cs.depth > len(buf) {
		ests = make([]float64, 0, cs.depth)
	}
	for r := 0; r < cs.depth; r++ {
		b := cs.bucket[r].Bucket(j, cs.width)
		ests = append(ests, cs.sign[r].Sign(j)*cs.rows[r][b])
	}
	return medianInPlace(ests)
}

// Merge adds another sketch built with identical seed and shape into cs.
func (cs *CountSketch) Merge(other *CountSketch) error {
	if cs.seed != other.seed || cs.depth != other.depth || cs.width != other.width {
		return fmt.Errorf("sketch: incompatible sketches (seed %d/%d, %dx%d vs %dx%d)",
			cs.seed, other.seed, cs.depth, cs.width, other.depth, other.width)
	}
	for r := range cs.rows {
		for b := range cs.rows[r] {
			cs.rows[r][b] += other.rows[r][b]
		}
	}
	return nil
}

// F2Estimate returns the median over rows of Σ_b counter², an unbiased
// estimator of ‖v‖₂² per row (this is exactly the AMS estimator realized on
// CountSketch counters).
func (cs *CountSketch) F2Estimate() float64 {
	var buf estBuf
	rowF2 := buf[:0]
	if cs.depth > len(buf) {
		rowF2 = make([]float64, 0, cs.depth)
	}
	for r := range cs.rows {
		var s float64
		for _, c := range cs.rows[r] {
			s += c * c
		}
		rowF2 = append(rowF2, s)
	}
	return medianInPlace(rowF2)
}

// Words returns the number of 64-bit words needed to transmit the sketch
// counters (hash functions travel as a one-word seed, charged separately).
func (cs *CountSketch) Words() int64 { return int64(cs.depth * cs.width) }

// Counters exposes the raw counter rows for serialization.
func (cs *CountSketch) Counters() [][]float64 { return cs.rows }

// AppendFlat appends the counter rows, row-major, to dst and returns the
// extended slice — the wire form a server posts on a channel link (the
// hash functions are rematerialized from the shared seed at the other
// end, so only the Words() counters travel).
func (cs *CountSketch) AppendFlat(dst []float64) []float64 {
	for _, row := range cs.rows {
		dst = append(dst, row...)
	}
	return dst
}

// AddFlat adds a row-major counter block (as produced by AppendFlat) into
// the sketch — the receiver-side half of shipping a sketch over a link.
// It consumes Words() entries of buf and returns the remainder.
func (cs *CountSketch) AddFlat(buf []float64) []float64 {
	if int64(len(buf)) < cs.Words() {
		panic(fmt.Sprintf("sketch: flat counter block has %d words, need %d", len(buf), cs.Words()))
	}
	for _, row := range cs.rows {
		for b := range row {
			row[b] += buf[b]
		}
		buf = buf[cs.width:]
	}
	return buf
}

// UpdateBulk ingests every (j, delta) pair yielded by iter, parallelizing
// across the depth rows: each worker owns a disjoint set of rows and
// replays the full stream against them, so counters receive their
// additions in exactly the stream order and the result is bit-identical
// to sequential Update calls. workers ≤ 1 is the plain sequential path.
func (cs *CountSketch) UpdateBulk(workers int, iter func(yield func(j uint64, v float64))) {
	if workers > cs.depth {
		workers = cs.depth
	}
	if workers <= 1 {
		iter(cs.Update)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One stream traversal per worker, updating every owned row
			// per element; each row still sees its additions in stream
			// order, so the counters are bit-identical to sequential.
			iter(func(j uint64, v float64) {
				if v == 0 {
					return
				}
				for r := w; r < cs.depth; r += workers {
					cs.rows[r][cs.bucket[r].Bucket(j, cs.width)] += cs.sign[r].Sign(j) * v
				}
			})
		}(w)
	}
	wg.Wait()
}

func median(xs []float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	return medianInPlace(tmp)
}

// medianInPlace sorts xs (insertion sort — the slices here are sketch
// depths, a dozen entries at most) and returns the median. The comparator
// matches sort.Float64s' total order (NaNs first), so results are
// bit-identical to the sort-based median.
func medianInPlace(xs []float64) float64 {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && (x < xs[j] || (math.IsNaN(x) && !math.IsNaN(xs[j]))) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return 0.5 * (xs[n/2-1] + xs[n/2])
}

// AMS is a standalone F2 (second frequency moment) estimator: depth
// independent ±1 linear measurements per repetition, medianed. It is kept
// separate from CountSketch for protocols that only need ‖v‖₂².
type AMS struct {
	seed  int64
	reps  int
	sums  []float64
	signs []*hashing.PolyHash
}

// NewAMS builds an F2 estimator with the given number of repetitions.
func NewAMS(seed int64, reps int) *AMS {
	if reps < 1 {
		panic("sketch: AMS needs at least one repetition")
	}
	a := &AMS{seed: seed, reps: reps, sums: make([]float64, reps)}
	a.signs = make([]*hashing.PolyHash, reps)
	for r := 0; r < reps; r++ {
		a.signs[r] = hashing.SeededPolyHash(hashing.DeriveSeed(seed, uint64(1000+r)), 4)
	}
	return a
}

// Update adds delta at coordinate j.
func (a *AMS) Update(j uint64, delta float64) {
	for r := 0; r < a.reps; r++ {
		a.sums[r] += a.signs[r].Sign(j) * delta
	}
}

// Merge adds a compatible estimator's state.
func (a *AMS) Merge(other *AMS) error {
	if a.seed != other.seed || a.reps != other.reps {
		return fmt.Errorf("sketch: incompatible AMS estimators")
	}
	for r := range a.sums {
		a.sums[r] += other.sums[r]
	}
	return nil
}

// Estimate returns the median-of-means estimate of F2: the repetitions are
// split into 4 groups, each group's squared sums are averaged (driving the
// group's distribution close to its mean F2 and away from the heavy right
// skew of a single squared sum), and the median over groups defends
// against outlier groups.
func (a *AMS) Estimate() float64 {
	group := a.reps / 4
	if group < 1 {
		group = 1
	}
	var groups []float64
	for i := 0; i < a.reps; i += group {
		end := i + group
		if end > a.reps {
			end = a.reps
		}
		var m float64
		for _, s := range a.sums[i:end] {
			m += s * s
		}
		groups = append(groups, m/float64(end-i))
	}
	return median(groups)
}

// Words returns the transmission size of the estimator state.
func (a *AMS) Words() int64 { return int64(a.reps) }

// RelErr is a helper for tests: |est−truth|/truth (0 when truth is 0).
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / truth
}
