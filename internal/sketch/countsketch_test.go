package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountSketchExactOnSparse(t *testing.T) {
	// With few nonzeros and a wide sketch, estimates are near-exact.
	cs := NewCountSketch(1, 7, 512)
	truth := map[uint64]float64{3: 10, 77: -4, 1000: 2.5}
	for j, v := range truth {
		cs.Update(j, v)
	}
	for j, v := range truth {
		if got := cs.Estimate(j); math.Abs(got-v) > 1e-9 {
			t.Fatalf("estimate(%d) = %g, want %g", j, got, v)
		}
	}
}

func TestCountSketchIncrementalUpdates(t *testing.T) {
	cs := NewCountSketch(2, 5, 128)
	cs.Update(9, 3)
	cs.Update(9, 4)
	cs.Update(9, -2)
	if got := cs.Estimate(9); math.Abs(got-5) > 1e-9 {
		t.Fatalf("accumulated estimate = %g", got)
	}
}

func TestCountSketchHeavyAmongNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cs := NewCountSketch(4, 6, 256)
	const m = 20000
	var f2 float64
	for j := uint64(0); j < m; j++ {
		v := rng.NormFloat64() * 0.1
		cs.Update(j, v)
		f2 += v * v
	}
	const heavy = 500.0
	cs.Update(42, heavy)
	f2 += heavy * heavy
	got := cs.Estimate(42)
	if math.Abs(got-heavy)/heavy > 0.1 {
		t.Fatalf("heavy estimate %g, want ≈ %g", got, heavy)
	}
	if est := cs.F2Estimate(); math.Abs(est-f2)/f2 > 0.3 {
		t.Fatalf("F2 estimate %g, truth %g", est, f2)
	}
}

// TestCountSketchLinearity is the property that makes the distributed
// protocols work: sketch(u) + sketch(v) = sketch(u+v) when seeds match.
func TestCountSketchLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewCountSketch(7, 5, 64)
	b := NewCountSketch(7, 5, 64)
	whole := NewCountSketch(7, 5, 64)
	for j := uint64(0); j < 500; j++ {
		u := rng.NormFloat64()
		v := rng.NormFloat64()
		a.Update(j, u)
		b.Update(j, v)
		whole.Update(j, u+v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for r := range a.Counters() {
		for c := range a.Counters()[r] {
			if math.Abs(a.Counters()[r][c]-whole.Counters()[r][c]) > 1e-9 {
				t.Fatal("merged sketch != sketch of sum")
			}
		}
	}
}

func TestCountSketchMergeIncompatible(t *testing.T) {
	a := NewCountSketch(1, 4, 64)
	if err := a.Merge(NewCountSketch(2, 4, 64)); err == nil {
		t.Fatal("seed mismatch not rejected")
	}
	if err := a.Merge(NewCountSketch(1, 5, 64)); err == nil {
		t.Fatal("depth mismatch not rejected")
	}
	if err := a.Merge(NewCountSketch(1, 4, 32)); err == nil {
		t.Fatal("width mismatch not rejected")
	}
}

func TestCountSketchWords(t *testing.T) {
	cs := NewCountSketch(1, 3, 10)
	if cs.Words() != 30 {
		t.Fatalf("words = %d", cs.Words())
	}
	if cs.Depth() != 3 || cs.Width() != 10 || cs.Seed() != 1 {
		t.Fatal("accessors")
	}
}

func TestCountSketchZeroUpdateNoop(t *testing.T) {
	cs := NewCountSketch(1, 3, 16)
	cs.Update(5, 0)
	if cs.F2Estimate() != 0 {
		t.Fatal("zero update changed sketch")
	}
}

func TestCountSketchPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCountSketch(1, 0, 4)
}

// TestQuickCountSketchUnbiasedSingle: for a single-coordinate vector the
// estimate is exact regardless of seed and position.
func TestQuickCountSketchSingleExact(t *testing.T) {
	f := func(seed int64, j uint64, v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		cs := NewCountSketch(seed, 3, 8)
		cs.Update(j, v)
		return math.Abs(cs.Estimate(j)-v) <= 1e-9*math.Max(1, math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAMSAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAMS(3, 64)
	var f2 float64
	for j := uint64(0); j < 5000; j++ {
		v := rng.NormFloat64()
		a.Update(j, v)
		f2 += v * v
	}
	if RelErr(a.Estimate(), f2) > 0.25 {
		t.Fatalf("AMS estimate %g, truth %g", a.Estimate(), f2)
	}
}

func TestAMSLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewAMS(9, 16)
	b := NewAMS(9, 16)
	whole := NewAMS(9, 16)
	for j := uint64(0); j < 300; j++ {
		u, v := rng.NormFloat64(), rng.NormFloat64()
		a.Update(j, u)
		b.Update(j, v)
		whole.Update(j, u+v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Estimate()-whole.Estimate()) > 1e-6*whole.Estimate() {
		t.Fatal("merged AMS != AMS of sum")
	}
}

func TestAMSMergeIncompatible(t *testing.T) {
	if err := NewAMS(1, 8).Merge(NewAMS(2, 8)); err == nil {
		t.Fatal("seed mismatch not rejected")
	}
	if err := NewAMS(1, 8).Merge(NewAMS(1, 4)); err == nil {
		t.Fatal("reps mismatch not rejected")
	}
}

func TestAMSWords(t *testing.T) {
	if NewAMS(1, 12).Words() != 12 {
		t.Fatal("AMS words")
	}
}

func TestAMSPanicsOnZeroReps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAMS(1, 0)
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Fatal("relerr")
	}
	if RelErr(0.5, 0) != 0.5 {
		t.Fatal("relerr zero truth")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cs := NewCountSketch(41, 4, 32)
	for j := uint64(0); j < 500; j++ {
		cs.Update(j, rng.NormFloat64())
	}
	words := cs.Serialize()
	if int64(len(words)) != cs.Words()+3 {
		t.Fatalf("stream length %d, want %d", len(words), cs.Words()+3)
	}
	back, err := Deserialize(words)
	if err != nil {
		t.Fatal(err)
	}
	// Estimates identical, and the deserialized sketch merges with an
	// original-seed sketch.
	for j := uint64(0); j < 500; j += 37 {
		if back.Estimate(j) != cs.Estimate(j) {
			t.Fatal("estimates differ after round trip")
		}
	}
	other := NewCountSketch(41, 4, 32)
	other.Update(3, 1)
	if err := back.Merge(other); err != nil {
		t.Fatalf("deserialized sketch lost mergeability: %v", err)
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	if _, err := Deserialize(nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	if _, err := Deserialize([]float64{1, 2, 8}); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := Deserialize([]float64{1, 0, 8}); err == nil {
		t.Fatal("zero depth accepted")
	}
}
