package sketch

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes reinterprets a fuzz byte buffer as the float64 word
// stream Deserialize consumes (8 bytes per word, trailing bytes dropped).
func floatsFromBytes(data []byte) []float64 {
	out := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.BigEndian.Uint64(data)))
		data = data[8:]
	}
	return out
}

func bytesFromFloats(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// FuzzDeserialize is the sketch stream's malformed-input gate: arbitrary
// word streams must either reconstruct a sketch that re-serializes to the
// identical stream, or return an error — never panic and never allocate
// counters beyond what the stream's own length supports.
func FuzzDeserialize(f *testing.F) {
	cs := NewCountSketch(7, 3, 16)
	cs.Update(5, 2.5)
	cs.Update(900, -1)
	f.Add(bytesFromFloats(cs.Serialize()))
	f.Add(bytesFromFloats(NewCountSketch(-3, 1, 1).Serialize()))
	f.Add(bytesFromFloats([]float64{1, 2, 3}))                  // header only, no counters
	f.Add(bytesFromFloats([]float64{1, 1e18, 1e18}))            // absurd shape must not allocate
	f.Add(bytesFromFloats([]float64{1, -2, 4, 0, 0, 0, 0, 0}))  // negative depth
	f.Add(bytesFromFloats([]float64{1, 2.5, 4, 0, 0, 0, 0, 0})) // fractional shape words
	f.Add([]byte{0x01, 0x02, 0x03})                             // not even one word
	// Warm-fold shapes: a sketch whose counters came through the delta
	// path — appended rows folded forward, then an update delta that
	// cancels a counter back to zero (the -0/+0 boundary the decoder must
	// round-trip), plus a literal stream laid out like a delta-install
	// payload header (key, n0, d, dn as small integers, then value bits) so
	// the fuzzer explores integer-valued leading words.
	warm := NewCountSketch(11, 2, 8)
	warm.Update(3, 1.5) // installed row
	warm.Update(40, 2)  // appended row folded forward
	warm.Update(40, -2) // update delta cancels it
	f.Add(bytesFromFloats(warm.Serialize()))
	f.Add(bytesFromFloats([]float64{7, 8, 3, 2, 1, 0, -2.5, 0, 4, 5}))
	f.Fuzz(func(t *testing.T, data []byte) {
		words := floatsFromBytes(data)
		cs, err := Deserialize(words)
		if err != nil {
			return
		}
		// A stream the decoder accepts must round-trip exactly.
		back := cs.Serialize()
		if len(back) != len(words) {
			t.Fatalf("re-serialize changed length: %d → %d", len(words), len(back))
		}
		for i := range back {
			same := back[i] == words[i] ||
				(math.IsNaN(back[i]) && math.IsNaN(words[i]))
			if !same {
				t.Fatalf("word %d changed: %v → %v", i, words[i], back[i])
			}
		}
	})
}
