package sketch

import "fmt"

// Serialize flattens the sketch state into the word stream a server would
// actually put on the wire: [seed, depth, width, counters...]. Together
// with Deserialize it makes the "send the sketch to the CP" step of the
// protocols concrete — the length of the slice is exactly what
// comm.Network charges for (plus the 3 header words).
func (cs *CountSketch) Serialize() []float64 {
	out := make([]float64, 0, 3+cs.depth*cs.width)
	out = append(out, float64(cs.seed), float64(cs.depth), float64(cs.width))
	for _, row := range cs.rows {
		out = append(out, row...)
	}
	return out
}

// Deserialize reconstructs a CountSketch from a Serialize stream. The hash
// functions are rematerialized from the embedded seed, so a deserialized
// sketch merges and estimates exactly like the original.
func Deserialize(words []float64) (*CountSketch, error) {
	if len(words) < 3 {
		return nil, fmt.Errorf("sketch: stream too short (%d words)", len(words))
	}
	seed := int64(words[0])
	depth := int(words[1])
	width := int(words[2])
	// Header words must be exactly representable integers: a stream whose
	// shape words truncate would not round-trip, and a corrupt or hostile
	// stream must not coerce into a plausible shape.
	if float64(seed) != words[0] || float64(depth) != words[1] || float64(width) != words[2] {
		return nil, fmt.Errorf("sketch: non-integral stream header (%g, %g, %g)", words[0], words[1], words[2])
	}
	if depth < 1 || width < 1 || len(words) != 3+depth*width {
		return nil, fmt.Errorf("sketch: inconsistent stream header (depth=%d width=%d len=%d)", depth, width, len(words))
	}
	cs := NewCountSketch(seed, depth, width)
	at := 3
	for r := 0; r < depth; r++ {
		copy(cs.rows[r], words[at:at+width])
		at += width
	}
	return cs, nil
}
