// Package warm maintains per-share warm sketch stores: mergeable sketches
// keyed by (sketch family, seed, shape, filter parameters) that persist
// across protocol rounds beside a worker's resident share. Because every
// sketch in internal/sketch is linear and its structure is a pure function
// of (seed, params), a sketch built over rows [0,n₀) can be *folded
// forward* when rows [n₀,n) are appended — each counter receives exactly
// the additions a cold build over [0,n) would have applied, in the same
// stream order, so the warm result is bit-identical to the cold one. That
// equivalence is what lets a query after N small appends pay O(delta)
// ingestion instead of O(n) without perturbing the protocol transcript.
//
// Fold rules:
//   - Append: rows [old,n) of the current share are ingested into the
//     cached sketches in stream order (bit-identical to a cold build).
//   - Update: the per-coordinate deltas (new−old) are folded through the
//     entry's FoldFunc into every cached entry covering the touched rows;
//     linearity makes the counters *numerically* exact, though the
//     floating-point grouping differs from a cold build, so updates trade
//     cold-vs-warm bit-identity for O(delta) cost (mem and TCP still agree
//     bit-for-bit with each other because both run this same fold path).
//
// Invalidation is structural: seeds, shapes, dyadic level counts and
// filter parameters are all part of the Key, so a job with different
// randomness or a power-of-two row-count crossing simply misses and
// rebuilds. A byte budget bounds the store; least-recently-served entries
// are evicted first.
package warm

import (
	"sync"

	"repro/internal/matrix"
	"repro/internal/sketch"
)

// Kind discriminates the sketch families a Store caches.
type Kind uint8

// The cached sketch families: flat full-vector CountSketch, partitioned
// bucket sketches, and the dyadic level hierarchy.
const (
	KindFlat Kind = iota + 1
	KindBucket
	KindDyadic
)

// DefaultBudget is the per-store byte budget when none is configured.
const DefaultBudget = 64 << 20

// Key identifies one warm entry. Every parameter that shapes the sketch
// structure or its ingestion filter is part of the key, so a mismatch on
// any of them is a clean miss rather than a wrong answer.
type Key struct {
	Kind     Kind
	Seed     int64
	Depth    int
	Width    int
	Buckets  int   // bucket-sketch partition count (0 otherwise)
	Levels   int   // dyadic level count / filter level count (0 otherwise)
	GSeed    int64 // level-filter unit hash seed (0 when unfiltered)
	MinLevel uint8 // level-filter threshold (0 when unfiltered)
	Filtered bool  // whether a level filter restricts ingestion
}

// FoldFunc applies one coordinate delta to an entry's sketches — the
// update-path fold. It must replicate the entry's ingestion rule
// (partitioning, filtering) exactly.
type FoldFunc func(sks []*sketch.CountSketch, j uint64, delta float64)

// Share wraps a resident share matrix together with its warm store so the
// sketch builders in internal/ops and internal/hh can discover the store
// by type assertion while every matrix.Mat method passes through
// unchanged.
type Share struct {
	matrix.Mat
	store *Store
}

// Wrap pairs a share matrix with its warm store. A nil store is allowed
// and simply disables warm serving for detection-free call sites.
func Wrap(m matrix.Mat, st *Store) *Share { return &Share{Mat: m, store: st} }

// Store returns the warm store backing the share (nil when warm serving
// is disabled).
func (s *Share) Store() *Store { return s.store }

// Unwrap returns the underlying share matrix.
func (s *Share) Unwrap() matrix.Mat { return s.Mat }

// Rebind returns a Share over a new matrix snapshot sharing the same
// store — the post-append swap.
func (s *Share) Rebind(m matrix.Mat) *Share { return &Share{Mat: m, store: s.store} }

type entry struct {
	mu    sync.Mutex
	rows  int // share rows folded in so far
	sks   []*sketch.CountSketch
	fold  FoldFunc
	bytes int64
}

// Stats is a point-in-time snapshot of a store's serving counters.
type Stats struct {
	Hits       int64 // serves answered from a cached entry (incl. folds)
	Misses     int64 // serves that built from row 0
	FoldedRows int64 // appended rows ingested via the warm fold path
	Evictions  int64 // entries dropped by the byte budget
	Bytes      int64 // resident counter bytes
	Entries    int   // resident entry count
}

// Store is one share's warm sketch cache. All methods are safe for
// concurrent use.
type Store struct {
	budget int64

	mu      sync.Mutex
	entries map[Key]*entry
	order   []Key // LRU order, least recently served first
	stats   Stats
}

// NewStore creates a store with the given byte budget (≤ 0 selects
// DefaultBudget).
func NewStore(budget int64) *Store {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Store{budget: budget, entries: make(map[Key]*entry)}
}

// Serve returns sketches over rows [0,n) of the share for key k, cloned so
// the caller may mutate (merge into) them freely. On a miss it builds via
// build() and ingests rows [0,n); on a stale hit it folds only rows
// [entry.rows, n) forward. ingest must add rows [lo,hi) of the *current*
// share matrix into the sketches in the canonical stream order; fold is
// retained for the update path.
func (st *Store) Serve(n int, k Key,
	build func() []*sketch.CountSketch,
	ingest func(sks []*sketch.CountSketch, lo, hi int),
	fold FoldFunc,
) []*sketch.CountSketch {
	st.mu.Lock()
	e, ok := st.entries[k]
	if !ok {
		e = &entry{}
		st.entries[k] = e
	}
	st.touch(k)
	st.mu.Unlock()

	e.mu.Lock()
	// Always refresh the fold closure: callers may capture per-call state
	// (e.g. a precomputed filter table sized to the current row count), and
	// only the latest one is guaranteed to cover every folded row.
	e.fold = fold
	var miss bool
	var folded int
	if e.sks == nil {
		e.sks = build()
		ingest(e.sks, 0, n)
		e.rows = n
		miss = true
	} else if e.rows < n {
		folded = n - e.rows
		ingest(e.sks, e.rows, n)
		e.rows = n
	}
	var bytes int64
	for _, cs := range e.sks {
		bytes += cs.Words() * 8
	}
	delta := bytes - e.bytes
	e.bytes = bytes
	out := make([]*sketch.CountSketch, len(e.sks))
	for i, cs := range e.sks {
		out[i] = cs.Clone()
	}
	e.mu.Unlock()

	st.mu.Lock()
	st.stats.Bytes += delta
	if miss {
		st.stats.Misses++
	} else {
		st.stats.Hits++
		st.stats.FoldedRows += int64(folded)
	}
	st.evictLocked()
	st.mu.Unlock()
	return out
}

// FoldUpdate applies per-coordinate deltas (new−old values at flattened
// coordinates js, for a share with the given column count) to every
// resident entry whose folded row range covers the touched row. Entries
// that have not yet folded past a coordinate's row skip it — those rows
// will be ingested with their post-update values on the next Serve.
func (st *Store) FoldUpdate(cols int, js []uint64, deltas []float64) {
	st.mu.Lock()
	es := make([]*entry, 0, len(st.entries))
	for _, e := range st.entries {
		es = append(es, e)
	}
	st.mu.Unlock()
	for _, e := range es {
		e.mu.Lock()
		if e.sks != nil && e.fold != nil {
			boundary := uint64(e.rows) * uint64(cols)
			for i, j := range js {
				if j < boundary && deltas[i] != 0 {
					e.fold(e.sks, j, deltas[i])
				}
			}
		}
		e.mu.Unlock()
	}
}

// Stats returns a snapshot of the serving counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.Entries = len(st.entries)
	return s
}

// Reset drops every cached entry (serving counters are kept).
func (st *Store) Reset() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.entries = make(map[Key]*entry)
	st.order = st.order[:0]
	st.stats.Bytes = 0
}

// touch moves k to the most-recently-served end of the LRU order.
// Callers hold st.mu.
func (st *Store) touch(k Key) {
	for i, ok := range st.order {
		if ok == k {
			copy(st.order[i:], st.order[i+1:])
			st.order[len(st.order)-1] = k
			return
		}
	}
	st.order = append(st.order, k)
}

// evictLocked drops least-recently-served entries until the budget holds.
// Callers hold st.mu.
func (st *Store) evictLocked() {
	for st.stats.Bytes > st.budget && len(st.order) > 1 {
		k := st.order[0]
		st.order = st.order[1:]
		if e, ok := st.entries[k]; ok {
			e.mu.Lock()
			st.stats.Bytes -= e.bytes
			e.sks = nil
			e.bytes = 0
			e.mu.Unlock()
			delete(st.entries, k)
			st.stats.Evictions++
		}
	}
}
