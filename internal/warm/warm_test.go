package warm

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/sketch"
)

// testKey returns a distinct key per id for eviction-order tests.
func testKey(id int) Key {
	return Key{Kind: KindFlat, Seed: int64(id), Depth: 3, Width: 16}
}

// rowMat builds an n×d dense matrix with entry (i,j) = base + i*d + j.
func rowMat(n, d int, base float64) *matrix.Dense {
	m := matrix.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = base + float64(i*d+j)
		}
	}
	return m
}

// serve runs one Serve over rows [0,n) of m using the canonical row-major
// flat ingestion, returning the sketches.
func serve(st *Store, m *matrix.Dense, n int, k Key) []*sketch.CountSketch {
	d := m.Cols()
	return st.Serve(n, k,
		func() []*sketch.CountSketch {
			return []*sketch.CountSketch{sketch.NewCountSketch(k.Seed, k.Depth, k.Width)}
		},
		func(sks []*sketch.CountSketch, lo, hi int) {
			for i := lo; i < hi; i++ {
				m.RowNNZ(i, func(j int, v float64) {
					sks[0].Update(uint64(i*d+j), v)
				})
			}
		},
		func(sks []*sketch.CountSketch, j uint64, delta float64) { sks[0].Update(j, delta) },
	)
}

// TestServeMissHitFold: a first serve builds cold, a repeat serve hits
// without re-ingesting, and a serve after the share grew folds exactly the
// new rows forward — bit-identical to a cold build over the full height.
func TestServeMissHitFold(t *testing.T) {
	const d = 4
	grown := rowMat(10, d, 1)
	st := NewStore(0)
	k := testKey(1)

	first := serve(st, grown, 6, k)
	if s := st.Stats(); s.Misses != 1 || s.Hits != 0 || s.Entries != 1 || s.Bytes != first[0].Words()*8 {
		t.Fatalf("after miss: %+v", s)
	}
	again := serve(st, grown, 6, k)
	if s := st.Stats(); s.Misses != 1 || s.Hits != 1 || s.FoldedRows != 0 {
		t.Fatalf("after hit: %+v", s)
	}
	folded := serve(st, grown, 10, k)
	if s := st.Stats(); s.Hits != 2 || s.FoldedRows != 4 {
		t.Fatalf("after fold: %+v", s)
	}

	cold := sketch.NewCountSketch(k.Seed, k.Depth, k.Width)
	for i := 0; i < 10; i++ {
		grown.RowNNZ(i, func(j int, v float64) { cold.Update(uint64(i*d+j), v) })
	}
	want, got := cold.Serialize(), folded[0].Serialize()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("folded sketch diverged from cold build at word %d: %v != %v", i, got[i], want[i])
		}
	}
	// Clone isolation: mutating a served sketch must not leak into the
	// cached entry.
	again[0].Update(0, 1e9)
	if clean := serve(st, grown, 10, k); clean[0].Estimate(0) == again[0].Estimate(0) {
		t.Fatal("serving returned the resident sketch, not a clone")
	}
}

// TestServeKeyIsolation: different keys are independent entries — a
// parameter change is a clean miss, never a wrong answer.
func TestServeKeyIsolation(t *testing.T) {
	m := rowMat(5, 3, 1)
	st := NewStore(0)
	serve(st, m, 5, testKey(1))
	serve(st, m, 5, testKey(2))
	filtered := testKey(1)
	filtered.Filtered = true
	filtered.MinLevel = 2
	serve(st, m, 5, filtered)
	if s := st.Stats(); s.Misses != 3 || s.Entries != 3 {
		t.Fatalf("distinct keys shared entries: %+v", s)
	}
}

// TestFoldUpdate: coordinate deltas reach only entries whose folded range
// covers the touched row; later rows arrive via the next serve instead.
func TestFoldUpdate(t *testing.T) {
	const d = 3
	m := rowMat(8, d, 1)
	st := NewStore(0)
	k := testKey(7)
	serve(st, m, 4, k) // entry covers rows [0,4)

	// Overwrite (1,2): covered — the delta folds in.
	old := m.At(1, 2)
	m.Row(1)[2] = 50
	st.FoldUpdate(d, []uint64{1*d + 2}, []float64{50 - old})
	// Overwrite (6,0): beyond the folded range — must be skipped now and
	// ingested with its new value by the fold-forward serve below.
	old6 := m.At(6, 0)
	m.Row(6)[0] = -9
	st.FoldUpdate(d, []uint64{6 * d}, []float64{-9 - old6})

	got := serve(st, m, 8, k)
	cold := sketch.NewCountSketch(k.Seed, k.Depth, k.Width)
	for i := 0; i < 8; i++ {
		m.RowNNZ(i, func(j int, v float64) { cold.Update(uint64(i*d+j), v) })
	}
	// Numerically exact (same additions, different grouping): compare
	// estimates, not bits.
	for _, j := range []uint64{1*d + 2, 6 * d, 0, 7*d + 2} {
		if w, g := cold.Estimate(j), got[0].Estimate(j); w != g {
			t.Fatalf("estimate at %d after update fold: %v, cold %v", j, g, w)
		}
	}
}

// TestEviction: entries beyond the byte budget are dropped least recently
// served first, and a re-serve of an evicted key rebuilds cold.
func TestEviction(t *testing.T) {
	m := rowMat(4, 4, 1)
	// One 3×16 float64 sketch is 384 bytes: budget two entries.
	st := NewStore(2 * 384)
	serve(st, m, 4, testKey(1))
	serve(st, m, 4, testKey(2))
	serve(st, m, 4, testKey(1)) // key 2 is now LRU
	serve(st, m, 4, testKey(3)) // evicts key 2
	s := st.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 2*384 {
		t.Fatalf("eviction accounting wrong: %+v", s)
	}
	serve(st, m, 4, testKey(1))
	if got := st.Stats(); got.Misses != 3 {
		// keys 1,2,3 missed once each; key 1 must still be resident.
		t.Fatalf("survivor rebuilt after eviction: %+v", got)
	}
	serve(st, m, 4, testKey(2))
	if got := st.Stats(); got.Misses != 4 {
		t.Fatalf("evicted key served from a ghost entry: %+v", got)
	}
}

// TestReset drops entries but keeps the counters.
func TestReset(t *testing.T) {
	m := rowMat(4, 4, 1)
	st := NewStore(0)
	serve(st, m, 4, testKey(1))
	st.Reset()
	s := st.Stats()
	if s.Entries != 0 || s.Bytes != 0 || s.Misses != 1 {
		t.Fatalf("reset state wrong: %+v", s)
	}
	serve(st, m, 4, testKey(1))
	if got := st.Stats(); got.Misses != 2 {
		t.Fatalf("entry survived reset: %+v", got)
	}
}

// TestShareWrap: the Share wrapper passes the matrix through and carries
// the store across Rebind.
func TestShareWrap(t *testing.T) {
	m := rowMat(3, 2, 1)
	st := NewStore(0)
	sh := Wrap(m, st)
	if sh.Rows() != 3 || sh.Cols() != 2 || sh.At(2, 1) != m.At(2, 1) {
		t.Fatal("wrapped share does not pass Mat through")
	}
	if sh.Store() != st || sh.Unwrap() != matrix.Mat(m) {
		t.Fatal("share lost its store or matrix")
	}
	grown := rowMat(4, 2, 1)
	re := sh.Rebind(grown)
	if re.Store() != st || re.Rows() != 4 {
		t.Fatal("rebind lost the store or the new matrix")
	}
	if nilShare := Wrap(m, nil); nilShare.Store() != nil {
		t.Fatal("nil store must stay nil")
	}
}
