package zsampler

import (
	"math"

	"repro/internal/hh"
)

// ladder is the descending sequence of sketch configurations
// ParamsForBudget walks — the programmatic form of the paper's "we adjust
// the number of repetitions, hash buckets, B, W and e to guarantee the
// ratio of total communication to the sum of local data sizes" (Section
// VIII). Entries trade recovery quality for sketch traffic.
var ladder = []Params{
	{Eps: 0.5, Levels: 0, RepsPerLevel: 2, HH: hh.ZParams{Reps: 3, Buckets: 32, B: 32, Sketch: hh.Params{Depth: 5, Width: 128}}, CountLo: 8, CountHi: 64, MaxRetries: 64},
	{Eps: 0.5, Levels: 0, RepsPerLevel: 1, HH: hh.ZParams{Reps: 2, Buckets: 32, B: 32, Sketch: hh.Params{Depth: 4, Width: 64}}, CountLo: 8, CountHi: 64, MaxRetries: 64},
	{Eps: 0.5, Levels: 0, RepsPerLevel: 1, HH: hh.ZParams{Reps: 2, Buckets: 16, B: 24, Sketch: hh.Params{Depth: 3, Width: 48}}, CountLo: 8, CountHi: 64, MaxRetries: 64},
	{Eps: 0.5, Levels: 0, RepsPerLevel: 1, HH: hh.ZParams{Reps: 1, Buckets: 16, B: 16, Sketch: hh.Params{Depth: 3, Width: 32}}, CountLo: 6, CountHi: 48, MaxRetries: 64},
	{Eps: 0.5, Levels: 12, RepsPerLevel: 1, HH: hh.ZParams{Reps: 1, Buckets: 8, B: 12, Sketch: hh.Params{Depth: 3, Width: 16}}, CountLo: 4, CountHi: 32, MaxRetries: 64},
	{Eps: 0.5, Levels: 8, RepsPerLevel: 1, HH: hh.ZParams{Reps: 1, Buckets: 4, B: 8, Sketch: hh.Params{Depth: 2, Width: 8}}, CountLo: 3, CountHi: 24, MaxRetries: 64},
}

// EstimateSetupWords predicts the sketch traffic a configuration will
// charge over an l-dimensional vector with s servers. Value-collection
// traffic (data dependent, typically small) is excluded.
func EstimateSetupWords(p Params, s, l int) int64 {
	levels := p.Levels
	if levels <= 0 {
		levels = int(math.Ceil(math.Log2(float64(l))))
		if levels < 1 {
			levels = 1
		}
	}
	perZHH := int64(s-1) * int64(p.HH.Reps) * int64(p.HH.Buckets) *
		int64(p.HH.Sketch.Depth) * int64(p.HH.Sketch.Width)
	return perZHH * int64(1+levels*p.RepsPerLevel)
}

// ParamsForBudget returns the richest ladder configuration whose estimated
// sketch traffic fits within budget words, falling back to the cheapest
// entry when none fits. The returned Params carry the given seed.
func ParamsForBudget(budget int64, s, l int, seed int64) Params {
	for _, p := range ladder {
		if EstimateSetupWords(p, s, l) <= budget {
			p.Seed = seed
			return p
		}
	}
	p := ladder[len(ladder)-1]
	p.Seed = seed
	return p
}
